#ifndef RAW_IR_EVAL_HPP
#define RAW_IR_EVAL_HPP

/**
 * @file
 * Reference semantics of the computational opcodes over 32-bit words.
 *
 * This single evaluator is used by BOTH the constant folder and the
 * tile simulator, so compile-time folding and run-time execution agree
 * bit-for-bit by construction.  Integer ops wrap modulo 2^32; integer
 * division by zero yields 0 (documented rawc semantics); floats are
 * IEEE single precision.
 */

#include <cstdint>

#include "ir/opcode.hpp"

namespace raw {

/**
 * Evaluate @p op over word operands @p a, @p b.
 * @return true and set @p out if the op is a pure computational op;
 * false for memory, communication and control opcodes.
 */
bool eval_op(Op op, uint32_t a, uint32_t b, uint32_t &out);

} // namespace raw

#endif // RAW_IR_EVAL_HPP
