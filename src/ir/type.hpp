#ifndef RAW_IR_TYPE_HPP
#define RAW_IR_TYPE_HPP

/**
 * @file
 * Scalar types of the RawCC intermediate representation.
 *
 * The Raw prototype is a 32-bit word machine with no FPRs: floating
 * point values live in GPRs (Section 3.1).  All IR values are therefore
 * 32-bit words, interpreted as either two's-complement integers or
 * IEEE-754 single-precision floats.  The paper converts all Spec92
 * doubles to single precision for the same reason.
 */

#include <bit>
#include <cstdint>

namespace raw {

/** Scalar value type: 32-bit int or 32-bit float. */
enum class Type : uint8_t { kI32 = 0, kF32 = 1 };

/** "int" / "float". */
const char *type_name(Type t);

/** Reinterpret a float as its 32-bit word pattern. */
inline uint32_t float_bits(float f) { return std::bit_cast<uint32_t>(f); }
/** Reinterpret a 32-bit word pattern as a float. */
inline float bits_float(uint32_t b) { return std::bit_cast<float>(b); }
/** Reinterpret an int as its 32-bit word pattern. */
inline uint32_t int_bits(int32_t i) { return std::bit_cast<uint32_t>(i); }
/** Reinterpret a 32-bit word pattern as an int. */
inline int32_t bits_int(uint32_t b) { return std::bit_cast<int32_t>(b); }

} // namespace raw

#endif // RAW_IR_TYPE_HPP
