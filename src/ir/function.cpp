#include "ir/function.hpp"

#include "support/error.hpp"

namespace raw {

int64_t
ArrayInfo::size() const
{
    int64_t n = 1;
    for (int64_t d : dims)
        n *= d;
    return n;
}

std::vector<int>
Block::successors() const
{
    check(!instrs.empty() && instrs.back().is_terminator(),
          "block has no terminator");
    const Instr &t = instrs.back();
    switch (t.op) {
      case Op::kJump:
        return {t.target[0]};
      case Op::kBranch:
        return {t.target[0], t.target[1]};
      default:
        return {};
    }
}

ValueId
Function::new_value(Type t, const std::string &name, bool is_var)
{
    values.push_back({t, name, is_var});
    return static_cast<ValueId>(values.size() - 1);
}

int
Function::new_array(const std::string &name, Type t,
                    std::vector<int64_t> dims)
{
    arrays.push_back({name, t, std::move(dims)});
    return static_cast<int>(arrays.size() - 1);
}

int
Function::new_block(const std::string &name)
{
    Block b;
    b.name = name.empty() ? "bb" + std::to_string(blocks.size()) : name;
    blocks.push_back(std::move(b));
    return static_cast<int>(blocks.size() - 1);
}

std::vector<ValueId>
Function::var_ids() const
{
    std::vector<ValueId> out;
    for (size_t i = 0; i < values.size(); i++)
        if (values[i].is_var)
            out.push_back(static_cast<ValueId>(i));
    return out;
}

std::vector<std::vector<int>>
Function::predecessors() const
{
    std::vector<std::vector<int>> preds(blocks.size());
    for (size_t b = 0; b < blocks.size(); b++)
        for (int s : blocks[b].successors())
            preds[s].push_back(static_cast<int>(b));
    return preds;
}

size_t
Function::num_instrs() const
{
    size_t n = 0;
    for (const Block &b : blocks)
        n += b.instrs.size();
    return n;
}

} // namespace raw
