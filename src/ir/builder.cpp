#include "ir/builder.hpp"

#include "support/error.hpp"

namespace raw {

void
IRBuilder::append(const Instr &in)
{
    check(block_ >= 0 && block_ < static_cast<int>(fn_.blocks.size()),
          "IRBuilder: no current block");
    fn_.blocks[block_].instrs.push_back(in);
}

ValueId
IRBuilder::const_int(int32_t v)
{
    ValueId d = fn_.new_value(Type::kI32);
    append(Instr::make_const_int(d, v));
    return d;
}

ValueId
IRBuilder::const_float(float v)
{
    ValueId d = fn_.new_value(Type::kF32);
    append(Instr::make_const_float(d, v));
    return d;
}

ValueId
IRBuilder::emit(Op op, Type t, ValueId a, ValueId b)
{
    ValueId d = fn_.new_value(t);
    append(Instr::make(op, t, d, a, b));
    return d;
}

void
IRBuilder::move_to(ValueId dst, ValueId src)
{
    Instr in = Instr::make(Op::kMove, fn_.values[dst].type, dst, src);
    append(in);
}

ValueId
IRBuilder::load(int array, ValueId idx)
{
    Type t = fn_.arrays[array].type;
    ValueId d = fn_.new_value(t);
    Instr in = Instr::make(Op::kLoad, t, d, idx);
    in.array = array;
    append(in);
    return d;
}

void
IRBuilder::store(int array, ValueId idx, ValueId v)
{
    Instr in = Instr::make(Op::kStore, fn_.arrays[array].type, kNoValue,
                           idx, v);
    in.array = array;
    append(in);
}

void
IRBuilder::print(ValueId v)
{
    Instr in = Instr::make(Op::kPrint, fn_.values[v].type, kNoValue, v);
    append(in);
}

void
IRBuilder::jump(int target)
{
    Instr in;
    in.op = Op::kJump;
    in.target[0] = target;
    append(in);
}

void
IRBuilder::branch(ValueId cond, int if_true, int if_false)
{
    Instr in;
    in.op = Op::kBranch;
    in.src[0] = cond;
    in.target = {if_true, if_false};
    append(in);
}

void
IRBuilder::halt()
{
    Instr in;
    in.op = Op::kHalt;
    append(in);
}

} // namespace raw
