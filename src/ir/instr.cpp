#include "ir/instr.hpp"

namespace raw {

Instr
Instr::make_const_int(ValueId dst, int32_t v)
{
    Instr i;
    i.op = Op::kConst;
    i.type = Type::kI32;
    i.dst = dst;
    i.imm_bits = int_bits(v);
    return i;
}

Instr
Instr::make_const_float(ValueId dst, float v)
{
    Instr i;
    i.op = Op::kConst;
    i.type = Type::kF32;
    i.dst = dst;
    i.imm_bits = float_bits(v);
    return i;
}

Instr
Instr::make(Op op, Type t, ValueId dst, ValueId a, ValueId b)
{
    Instr i;
    i.op = op;
    i.type = t;
    i.dst = dst;
    i.src = {a, b};
    return i;
}

} // namespace raw
