#ifndef RAW_IR_BUILDER_HPP
#define RAW_IR_BUILDER_HPP

/**
 * @file
 * Convenience builder for constructing IR, used by the frontend's
 * lowering pass and by unit tests that synthesize programs directly.
 */

#include <string>

#include "ir/function.hpp"

namespace raw {

/** Appends instructions to a current block of a Function. */
class IRBuilder
{
  public:
    explicit IRBuilder(Function &fn) : fn_(fn) {}

    /** Set the block subsequent instructions are appended to. */
    void set_block(int block_id) { block_ = block_id; }
    int block() const { return block_; }

    /** Append a raw instruction to the current block. */
    void append(const Instr &in);

    /** dst = integer constant. */
    ValueId const_int(int32_t v);
    /** dst = float constant. */
    ValueId const_float(float v);
    /** dst = unary/binary op over @p a (and @p b). */
    ValueId emit(Op op, Type t, ValueId a, ValueId b = kNoValue);
    /** Write @p src into variable/temp @p dst (typed move). */
    void move_to(ValueId dst, ValueId src);
    /** dst = load array[idx]. */
    ValueId load(int array, ValueId idx);
    /** store array[idx] = v. */
    void store(int array, ValueId idx, ValueId v);
    /** print v. */
    void print(ValueId v);
    /** Terminators. */
    void jump(int target);
    void branch(ValueId cond, int if_true, int if_false);
    void halt();

    Function &fn() { return fn_; }

  private:
    Function &fn_;
    int block_ = 0;
};

} // namespace raw

#endif // RAW_IR_BUILDER_HPP
