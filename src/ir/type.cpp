#include "ir/type.hpp"

namespace raw {

const char *
type_name(Type t)
{
    return t == Type::kI32 ? "int" : "float";
}

} // namespace raw
