#ifndef RAW_IR_OPCODE_HPP
#define RAW_IR_OPCODE_HPP

/**
 * @file
 * Opcodes of the three-operand RawCC IR (Section 3.3: "expressions in
 * the source program are decomposed into instructions in three-operand
 * form ... they correspond closely to the final machine instructions and
 * their cost attributes can easily be estimated").
 *
 * The same opcode set is executed directly by the tile simulator, so
 * the cost model the scheduler uses (Table 1 latencies via FuOp) is by
 * construction the cost model of the target.
 */

#include <cstdint>

#include "machine/machine.hpp"

namespace raw {

/** IR / machine opcodes. */
enum class Op : uint8_t {
    // Value producers.
    kConst,   ///< dst = imm (payload in Instr::imm_bits)
    kMove,    ///< dst = src0

    // Integer arithmetic / logic.
    kAdd, kSub, kMul, kDiv, kRem,
    kAnd, kOr, kXor, kShl, kShr,
    kNeg, kNot,

    // Single-precision floating point (operates on GPR words).
    kFAdd, kFSub, kFMul, kFDiv, kFNeg, kFSqrt,

    // Comparisons produce i32 0/1.
    kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,
    kFCmpEq, kFCmpNe, kFCmpLt, kFCmpLe, kFCmpGt, kFCmpGe,

    // Conversions.
    kItoF, kFtoI,

    // Memory.  Addresses are flat element indices into `array`.
    kLoad,     ///< dst = array[src0]        (home tile statically known)
    kStore,    ///< array[src0] = src1
    kDynLoad,  ///< dst = array[src0]  via the dynamic network
    kDynStore, ///< array[src0] = src1 via the dynamic network

    // Communication (inserted by the communication code generator).
    kSend,     ///< write src0 to the processor->switch output port
    kRecv,     ///< dst = read from the switch->processor input port

    // Observable output: appends (type, word) to the simulator trace.
    kPrint,    ///< print src0

    // Terminators.
    kJump,     ///< goto target[0]
    kBranch,   ///< if (src0 != 0) goto target[0] else goto target[1]
    kHalt,     ///< end of program
};

/** Number of source operands the opcode reads (0..2). */
int op_num_srcs(Op op);

/** True for kJump/kBranch/kHalt. */
bool op_is_terminator(Op op);

/** True for the four memory opcodes. */
bool op_is_memory(Op op);

/** True if the opcode produces a destination value. */
bool op_has_dst(Op op);

/** True for the commutative binary arithmetic opcodes. */
bool op_is_commutative(Op op);

/**
 * True if the opcode may be control-replicated on every tile and
 * switch (cheap integer ops with no side effects; Section 3.2 control
 * orchestration).
 */
bool op_is_replicable(Op op);

/** Functional-unit class for latency lookup (Table 1). */
FuOp op_fu(Op op);

/** Mnemonic, e.g. "add", "fmul", "load". */
const char *op_name(Op op);

} // namespace raw

#endif // RAW_IR_OPCODE_HPP
