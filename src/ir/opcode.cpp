#include "ir/opcode.hpp"

namespace raw {

int
op_num_srcs(Op op)
{
    switch (op) {
      case Op::kConst:
      case Op::kJump:
      case Op::kHalt:
        return 0;
      case Op::kMove:
      case Op::kNeg:
      case Op::kNot:
      case Op::kFNeg:
      case Op::kFSqrt:
      case Op::kItoF:
      case Op::kFtoI:
      case Op::kLoad:
      case Op::kDynLoad:
      case Op::kSend:
      case Op::kPrint:
      case Op::kBranch:
        return 1;
      case Op::kRecv:
        return 0;
      default:
        return 2;
    }
}

bool
op_is_terminator(Op op)
{
    return op == Op::kJump || op == Op::kBranch || op == Op::kHalt;
}

bool
op_is_memory(Op op)
{
    return op == Op::kLoad || op == Op::kStore || op == Op::kDynLoad ||
           op == Op::kDynStore;
}

bool
op_has_dst(Op op)
{
    switch (op) {
      case Op::kStore:
      case Op::kDynStore:
      case Op::kSend:
      case Op::kPrint:
      case Op::kJump:
      case Op::kBranch:
      case Op::kHalt:
        return false;
      default:
        return true;
    }
}

bool
op_is_commutative(Op op)
{
    switch (op) {
      case Op::kAdd:
      case Op::kMul:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kFAdd:
      case Op::kFMul:
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kFCmpEq:
      case Op::kFCmpNe:
        return true;
      default:
        return false;
    }
}

bool
op_is_replicable(Op op)
{
    switch (op) {
      case Op::kConst:
      case Op::kMove:
      case Op::kAdd:
      case Op::kSub:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kShl:
      case Op::kShr:
      case Op::kNeg:
      case Op::kNot:
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe:
        return true;
      default:
        return false;
    }
}

FuOp
op_fu(Op op)
{
    switch (op) {
      case Op::kMul:
        return FuOp::kIntMul;
      case Op::kDiv:
      case Op::kRem:
        return FuOp::kIntDiv;
      case Op::kFAdd:
      case Op::kFSub:
      case Op::kFNeg:
      case Op::kFCmpEq:
      case Op::kFCmpNe:
      case Op::kFCmpLt:
      case Op::kFCmpLe:
      case Op::kFCmpGt:
      case Op::kFCmpGe:
      case Op::kItoF:
      case Op::kFtoI:
        return FuOp::kFpAdd;
      case Op::kFMul:
        return FuOp::kFpMul;
      case Op::kFDiv:
      case Op::kFSqrt:
        return FuOp::kFpDiv;
      case Op::kLoad:
      case Op::kDynLoad:
        return FuOp::kLoad;
      case Op::kStore:
      case Op::kDynStore:
        return FuOp::kStore;
      case Op::kJump:
      case Op::kBranch:
      case Op::kHalt:
        return FuOp::kBranch;
      default:
        return FuOp::kIntAdd;
    }
}

const char *
op_name(Op op)
{
    switch (op) {
      case Op::kConst:    return "const";
      case Op::kMove:     return "move";
      case Op::kAdd:      return "add";
      case Op::kSub:      return "sub";
      case Op::kMul:      return "mul";
      case Op::kDiv:      return "div";
      case Op::kRem:      return "rem";
      case Op::kAnd:      return "and";
      case Op::kOr:       return "or";
      case Op::kXor:      return "xor";
      case Op::kShl:      return "shl";
      case Op::kShr:      return "shr";
      case Op::kNeg:      return "neg";
      case Op::kNot:      return "not";
      case Op::kFAdd:     return "fadd";
      case Op::kFSub:     return "fsub";
      case Op::kFMul:     return "fmul";
      case Op::kFDiv:     return "fdiv";
      case Op::kFNeg:     return "fneg";
      case Op::kFSqrt:    return "fsqrt";
      case Op::kCmpEq:    return "cmpeq";
      case Op::kCmpNe:    return "cmpne";
      case Op::kCmpLt:    return "cmplt";
      case Op::kCmpLe:    return "cmple";
      case Op::kCmpGt:    return "cmpgt";
      case Op::kCmpGe:    return "cmpge";
      case Op::kFCmpEq:   return "fcmpeq";
      case Op::kFCmpNe:   return "fcmpne";
      case Op::kFCmpLt:   return "fcmplt";
      case Op::kFCmpLe:   return "fcmple";
      case Op::kFCmpGt:   return "fcmpgt";
      case Op::kFCmpGe:   return "fcmpge";
      case Op::kItoF:     return "itof";
      case Op::kFtoI:     return "ftoi";
      case Op::kLoad:     return "load";
      case Op::kStore:    return "store";
      case Op::kDynLoad:  return "dynload";
      case Op::kDynStore: return "dynstore";
      case Op::kSend:     return "send";
      case Op::kRecv:     return "recv";
      case Op::kPrint:    return "print";
      case Op::kJump:     return "jump";
      case Op::kBranch:   return "branch";
      case Op::kHalt:     return "halt";
    }
    return "?";
}

} // namespace raw
