#include "ir/eval.hpp"

#include <cmath>

#include "ir/type.hpp"

namespace raw {

bool
eval_op(Op op, uint32_t a, uint32_t b, uint32_t &out)
{
    const int32_t ia = bits_int(a), ib = bits_int(b);
    const float fa = bits_float(a), fb = bits_float(b);
    auto i = [&](int64_t v) {
        out = int_bits(static_cast<int32_t>(v));
        return true;
    };
    auto f = [&](float v) {
        out = float_bits(v);
        return true;
    };
    switch (op) {
      case Op::kMove:   out = a; return true;
      case Op::kAdd:    return i(static_cast<int64_t>(ia) + ib);
      case Op::kSub:    return i(static_cast<int64_t>(ia) - ib);
      case Op::kMul:    return i(static_cast<int64_t>(ia) * ib);
      case Op::kDiv:    return i(ib == 0 ? 0 : ia / ib);
      case Op::kRem:    return i(ib == 0 ? 0 : ia % ib);
      case Op::kAnd:    return i(ia & ib);
      case Op::kOr:     return i(ia | ib);
      case Op::kXor:    return i(ia ^ ib);
      case Op::kShl:    return i(static_cast<int64_t>(ia)
                                 << (ib & 31));
      case Op::kShr:    return i(ia >> (ib & 31));
      case Op::kNeg:    return i(-static_cast<int64_t>(ia));
      case Op::kNot:    return i(~ia);
      case Op::kFAdd:   return f(fa + fb);
      case Op::kFSub:   return f(fa - fb);
      case Op::kFMul:   return f(fa * fb);
      case Op::kFDiv:   return f(fa / fb);
      case Op::kFNeg:   return f(-fa);
      case Op::kFSqrt:  return f(std::sqrt(fa));
      case Op::kCmpEq:  return i(ia == ib);
      case Op::kCmpNe:  return i(ia != ib);
      case Op::kCmpLt:  return i(ia < ib);
      case Op::kCmpLe:  return i(ia <= ib);
      case Op::kCmpGt:  return i(ia > ib);
      case Op::kCmpGe:  return i(ia >= ib);
      case Op::kFCmpEq: return i(fa == fb);
      case Op::kFCmpNe: return i(fa != fb);
      case Op::kFCmpLt: return i(fa < fb);
      case Op::kFCmpLe: return i(fa <= fb);
      case Op::kFCmpGt: return i(fa > fb);
      case Op::kFCmpGe: return i(fa >= fb);
      case Op::kItoF:   return f(static_cast<float>(ia));
      case Op::kFtoI: {
        // Saturating, NaN-safe conversion (plain casts of
        // out-of-range floats are undefined behavior in C++).
        if (std::isnan(fa))
            return i(0);
        if (fa >= 2147483648.0f)
            return i(INT32_MAX);
        if (fa < -2147483648.0f)
            return i(INT32_MIN);
        return i(static_cast<int32_t>(fa));
      }
      default:
        return false;
    }
}

} // namespace raw
