#ifndef RAW_IR_FUNCTION_HPP
#define RAW_IR_FUNCTION_HPP

/**
 * @file
 * Function: a CFG of basic blocks plus value and array symbol tables.
 *
 * The IR is deliberately "pre-SSA": a named program scalar (ValueInfo
 * with is_var == true) may be written in many blocks, exactly like the
 * SUIF IR the paper's compiler consumes.  The *initial code
 * transformation* pass (transform/rename) converts each basic block to
 * locally single-assignment form; persistent variables remain the
 * handles that cross block boundaries and get home tiles assigned by
 * the data partitioner.
 */

#include <string>
#include <vector>

#include "ir/instr.hpp"
#include "support/mathutil.hpp"

namespace raw {

/** Metadata for one value (virtual register). */
struct ValueInfo
{
    Type type = Type::kI32;
    /** Debug / variable name (may be empty for temporaries). */
    std::string name;
    /** True if this is a persistent named scalar (lives across blocks). */
    bool is_var = false;
};

/** Metadata for one array symbol. */
struct ArrayInfo
{
    std::string name;
    Type type = Type::kI32;
    /** Dimension extents, innermost last. */
    std::vector<int64_t> dims;

    /** Total number of elements (words). */
    int64_t size() const;
};

/** A congruence fact about a variable's value at block entry. */
struct EntryFact
{
    ValueId var = kNoValue;
    Congruence cong;
};

/** A basic block: straight-line instructions ending in a terminator. */
struct Block
{
    std::string name;
    std::vector<Instr> instrs;
    /**
     * Congruence facts established by the unroller for induction
     * variables at entry to this block (Section 5.3 staticization).
     */
    std::vector<EntryFact> entry_facts;
    /**
     * Source loop whose body this block was lowered from (-1: none).
     * Blocks derived from the same source loop share the id even
     * across unrolled/peeled copies and block splits (per-loop II
     * reporting groups on it).
     */
    int src_loop = -1;

    /** The terminator instruction (last in the block). */
    const Instr &terminator() const { return instrs.back(); }

    /** Successor block ids of this block's terminator. */
    std::vector<int> successors() const;
};

/**
 * A compiled unit: one function (the paper's benchmarks are single
 * kernels), with block 0 as the entry block.
 */
class Function
{
  public:
    std::string name = "main";
    std::vector<ValueInfo> values;
    std::vector<ArrayInfo> arrays;
    std::vector<Block> blocks;

    /** Create a new value; returns its id. */
    ValueId new_value(Type t, const std::string &name = "",
                      bool is_var = false);
    /** Create a new array symbol; returns its index. */
    int new_array(const std::string &name, Type t,
                  std::vector<int64_t> dims);
    /** Create a new empty block; returns its index. */
    int new_block(const std::string &name = "");

    const ValueInfo &value(ValueId v) const { return values[v]; }
    /** All persistent named scalars. */
    std::vector<ValueId> var_ids() const;

    /** Predecessor lists, indexed by block. */
    std::vector<std::vector<int>> predecessors() const;

    /** Total instruction count over all blocks. */
    size_t num_instrs() const;
};

} // namespace raw

#endif // RAW_IR_FUNCTION_HPP
