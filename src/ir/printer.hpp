#ifndef RAW_IR_PRINTER_HPP
#define RAW_IR_PRINTER_HPP

/**
 * @file
 * Text dump of IR functions (for examples, debugging and golden tests).
 */

#include <string>

#include "ir/function.hpp"

namespace raw {

/** Render one instruction, e.g. "v7 = fadd v3, v5". */
std::string print_instr(const Function &fn, const Instr &in);

/** Render one block including its label and entry facts. */
std::string print_block(const Function &fn, int block_id);

/** Render the whole function. */
std::string print_function(const Function &fn);

} // namespace raw

#endif // RAW_IR_PRINTER_HPP
