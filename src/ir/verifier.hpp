#ifndef RAW_IR_VERIFIER_HPP
#define RAW_IR_VERIFIER_HPP

/**
 * @file
 * Structural IR verifier, run between compiler phases in debug paths
 * and heavily in tests.
 */

#include <string>

#include "ir/function.hpp"

namespace raw {

/**
 * Check structural well-formedness of @p fn:
 *  - every block is non-empty and ends with exactly one terminator;
 *  - branch/jump targets are valid block ids;
 *  - operand and destination value ids are valid;
 *  - non-variable temporaries are defined before use within their block;
 *  - memory ops reference valid arrays and use i32 indices;
 *  - operand types are consistent with the opcode.
 *
 * @return empty string if OK, otherwise a description of the first
 * problem found.
 */
std::string verify_function(const Function &fn);

/** Verify and panic with the message on failure. */
void verify_or_panic(const Function &fn, const std::string &phase);

} // namespace raw

#endif // RAW_IR_VERIFIER_HPP
