#include "ir/printer.hpp"

#include <sstream>

namespace raw {

namespace {

std::string
value_name(const Function &fn, ValueId v)
{
    if (v == kNoValue)
        return "_";
    const ValueInfo &vi = fn.values[v];
    std::ostringstream os;
    if (!vi.name.empty())
        os << vi.name;
    else
        os << "v" << v;
    return os.str();
}

} // namespace

std::string
print_instr(const Function &fn, const Instr &in)
{
    std::ostringstream os;
    switch (in.op) {
      case Op::kConst:
        os << value_name(fn, in.dst) << " = ";
        if (in.type == Type::kI32)
            os << bits_int(in.imm_bits);
        else
            os << bits_float(in.imm_bits) << "f";
        return os.str();
      case Op::kLoad:
      case Op::kDynLoad:
        os << value_name(fn, in.dst) << " = " << op_name(in.op) << " "
           << fn.arrays[in.array].name << "[" << value_name(fn, in.src[0])
           << "]";
        return os.str();
      case Op::kStore:
      case Op::kDynStore:
        os << op_name(in.op) << " " << fn.arrays[in.array].name << "["
           << value_name(fn, in.src[0]) << "] = "
           << value_name(fn, in.src[1]);
        return os.str();
      case Op::kJump:
        os << "jump " << fn.blocks[in.target[0]].name;
        return os.str();
      case Op::kBranch:
        os << "branch " << value_name(fn, in.src[0]) << ", "
           << fn.blocks[in.target[0]].name << ", "
           << fn.blocks[in.target[1]].name;
        return os.str();
      case Op::kHalt:
        return "halt";
      default:
        break;
    }
    if (in.has_dst())
        os << value_name(fn, in.dst) << " = ";
    os << op_name(in.op);
    for (int i = 0; i < in.num_srcs(); i++)
        os << (i == 0 ? " " : ", ") << value_name(fn, in.src[i]);
    return os.str();
}

std::string
print_block(const Function &fn, int block_id)
{
    const Block &b = fn.blocks[block_id];
    std::ostringstream os;
    os << b.name << ":";
    for (const EntryFact &f : b.entry_facts) {
        os << "  ; " << value_name(fn, f.var);
        if (f.cong.is_exact())
            os << " == " << f.cong.residue;
        else if (!f.cong.is_top())
            os << " == " << f.cong.residue << " (mod " << f.cong.modulus
               << ")";
    }
    os << "\n";
    for (const Instr &in : b.instrs)
        os << "    " << print_instr(fn, in) << "\n";
    return os.str();
}

std::string
print_function(const Function &fn)
{
    std::ostringstream os;
    os << "function " << fn.name << "\n";
    for (const ArrayInfo &a : fn.arrays) {
        os << "  array " << type_name(a.type) << " " << a.name;
        for (int64_t d : a.dims)
            os << "[" << d << "]";
        os << "\n";
    }
    for (size_t b = 0; b < fn.blocks.size(); b++)
        os << print_block(fn, static_cast<int>(b));
    return os.str();
}

} // namespace raw
