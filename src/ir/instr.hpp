#ifndef RAW_IR_INSTR_HPP
#define RAW_IR_INSTR_HPP

/**
 * @file
 * Three-operand IR instruction.
 */

#include <array>
#include <cstdint>

#include "ir/opcode.hpp"
#include "ir/type.hpp"

namespace raw {

/** Index of a value (virtual register) in its Function's value table. */
using ValueId = int32_t;

/** Sentinel: no value. */
constexpr ValueId kNoValue = -1;

/**
 * A single three-operand instruction.
 *
 * Memory instructions address a named array with a flat element index
 * (src[0]); dimension arithmetic is lowered to explicit IR arithmetic
 * by the frontend, so indices are ordinary values the congruence
 * analysis can reason about.
 */
struct Instr
{
    Op op = Op::kHalt;
    /** Result type (also the operand type for compares/stores). */
    Type type = Type::kI32;
    ValueId dst = kNoValue;
    std::array<ValueId, 2> src = {kNoValue, kNoValue};
    /** kConst payload: i32 or f32 bit pattern, per `type`. */
    uint32_t imm_bits = 0;
    /** Array symbol index for memory ops, -1 otherwise. */
    int32_t array = -1;
    /** Terminator targets: [0] = jump/true target, [1] = false target. */
    std::array<int32_t, 2> target = {-1, -1};

    int num_srcs() const { return op_num_srcs(op); }
    bool is_terminator() const { return op_is_terminator(op); }
    bool has_dst() const { return op_has_dst(op); }

    /** Build an integer-constant instruction. */
    static Instr make_const_int(ValueId dst, int32_t v);
    /** Build a float-constant instruction. */
    static Instr make_const_float(ValueId dst, float v);
    /** Build a unary/binary arithmetic instruction. */
    static Instr make(Op op, Type t, ValueId dst, ValueId a,
                      ValueId b = kNoValue);
};

} // namespace raw

#endif // RAW_IR_INSTR_HPP
