#include "ir/verifier.hpp"

#include <sstream>
#include <vector>

#include "ir/printer.hpp"
#include "support/error.hpp"

namespace raw {

namespace {

bool
op_is_float(Op op)
{
    switch (op) {
      case Op::kFAdd:
      case Op::kFSub:
      case Op::kFMul:
      case Op::kFDiv:
      case Op::kFNeg:
      case Op::kFSqrt:
      case Op::kFtoI:
      case Op::kFCmpEq:
      case Op::kFCmpNe:
      case Op::kFCmpLt:
      case Op::kFCmpLe:
      case Op::kFCmpGt:
      case Op::kFCmpGe:
        return true;
      default:
        return false;
    }
}

bool
op_is_int_arith(Op op)
{
    switch (op) {
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kRem:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kShl:
      case Op::kShr:
      case Op::kNeg:
      case Op::kNot:
      case Op::kItoF:
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe:
        return true;
      default:
        return false;
    }
}

} // namespace

std::string
verify_function(const Function &fn)
{
    std::ostringstream err;
    auto fail = [&](int b, const Instr *in, const std::string &msg) {
        err << "block " << fn.blocks[b].name;
        if (in)
            err << " [" << print_instr(fn, *in) << "]";
        err << ": " << msg;
        return err.str();
    };

    if (fn.blocks.empty())
        return "function has no blocks";

    const int n_blocks = static_cast<int>(fn.blocks.size());
    const ValueId n_values = static_cast<ValueId>(fn.values.size());
    const int n_arrays = static_cast<int>(fn.arrays.size());

    for (int b = 0; b < n_blocks; b++) {
        const Block &blk = fn.blocks[b];
        if (blk.instrs.empty())
            return fail(b, nullptr, "empty block");
        if (!blk.instrs.back().is_terminator())
            return fail(b, nullptr, "does not end in a terminator");

        std::vector<bool> defined(fn.values.size(), false);

        for (size_t k = 0; k < blk.instrs.size(); k++) {
            const Instr &in = blk.instrs[k];
            if (in.is_terminator() && k + 1 != blk.instrs.size())
                return fail(b, &in, "terminator not at end of block");

            for (int s = 0; s < in.num_srcs(); s++) {
                ValueId v = in.src[s];
                if (v < 0 || v >= n_values)
                    return fail(b, &in, "bad source value id");
                if (!fn.values[v].is_var && !defined[v])
                    return fail(b, &in,
                                "temporary used before in-block def");
            }
            if (in.has_dst()) {
                if (in.dst < 0 || in.dst >= n_values)
                    return fail(b, &in, "bad dest value id");
                defined[in.dst] = true;
            }
            if (op_is_memory(in.op)) {
                if (in.array < 0 || in.array >= n_arrays)
                    return fail(b, &in, "bad array id");
                if (fn.values[in.src[0]].type != Type::kI32)
                    return fail(b, &in, "non-integer index");
                Type elem = fn.arrays[in.array].type;
                if (in.op == Op::kStore || in.op == Op::kDynStore) {
                    if (fn.values[in.src[1]].type != elem)
                        return fail(b, &in, "store value type mismatch");
                } else if (fn.values[in.dst].type != elem) {
                    return fail(b, &in, "load dest type mismatch");
                }
            }
            if (op_is_float(in.op)) {
                for (int s = 0; s < in.num_srcs(); s++)
                    if (fn.values[in.src[s]].type != Type::kF32)
                        return fail(b, &in, "float op on int operand");
            }
            if (op_is_int_arith(in.op)) {
                for (int s = 0; s < in.num_srcs(); s++)
                    if (fn.values[in.src[s]].type != Type::kI32)
                        return fail(b, &in, "int op on float operand");
            }
            if (in.op == Op::kJump || in.op == Op::kBranch) {
                int n_targets = in.op == Op::kJump ? 1 : 2;
                for (int t = 0; t < n_targets; t++)
                    if (in.target[t] < 0 || in.target[t] >= n_blocks)
                        return fail(b, &in, "bad branch target");
            }
        }
    }
    return "";
}

void
verify_or_panic(const Function &fn, const std::string &phase)
{
    std::string e = verify_function(fn);
    if (!e.empty())
        panic("IR verification failed after " + phase + ": " + e);
}

} // namespace raw
