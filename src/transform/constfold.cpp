#include "transform/constfold.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ir/eval.hpp"

namespace raw {

namespace {

/** Fold one block; returns number of instructions eliminated. */
int
fold_block(Function &fn, Block &blk)
{
    // value -> known constant bits, maintained sequentially (variable
    // entries are killed on reassignment).
    std::unordered_map<ValueId, uint32_t> env;
    int removed = 0;

    for (Instr &in : blk.instrs) {
        if (in.op == Op::kConst) {
            env[in.dst] = in.imm_bits;
            continue;
        }
        std::optional<uint32_t> folded;
        if (!op_is_memory(in.op) && !in.is_terminator() &&
            in.op != Op::kSend && in.op != Op::kRecv &&
            in.op != Op::kPrint) {
            bool all_const = in.num_srcs() > 0;
            uint32_t a = 0, b = 0;
            for (int s = 0; s < in.num_srcs(); s++) {
                auto it = env.find(in.src[s]);
                if (it == env.end()) {
                    all_const = false;
                    break;
                }
                (s == 0 ? a : b) = it->second;
            }
            if (all_const) {
                uint32_t out;
                if (eval_op(in.op, a, b, out))
                    folded = out;
            }
        }
        if (in.has_dst()) {
            if (folded) {
                Instr c;
                c.op = Op::kConst;
                c.type = in.type;
                c.dst = in.dst;
                c.imm_bits = *folded;
                in = c;
                env[in.dst] = *folded;
            } else {
                env.erase(in.dst);
            }
        }
    }

    // Dead-temp elimination: remove pure instructions whose
    // destination is a temporary with no later use in this block.
    std::vector<bool> used(fn.values.size(), false);
    std::vector<Instr> kept;
    kept.reserve(blk.instrs.size());
    for (size_t k = blk.instrs.size(); k-- > 0;) {
        const Instr &in = blk.instrs[k];
        bool side_effect = op_is_memory(in.op) || in.is_terminator() ||
                           in.op == Op::kSend || in.op == Op::kRecv ||
                           in.op == Op::kPrint;
        bool keeps = side_effect || !in.has_dst() ||
                     fn.values[in.dst].is_var || used[in.dst];
        if (!keeps) {
            removed++;
            continue;
        }
        for (int s = 0; s < in.num_srcs(); s++)
            used[in.src[s]] = true;
        kept.push_back(in);
    }
    std::reverse(kept.begin(), kept.end());
    blk.instrs = std::move(kept);
    return removed;
}

} // namespace

int
constfold_function(Function &fn)
{
    int removed = 0;
    for (Block &blk : fn.blocks)
        removed += fold_block(fn, blk);
    return removed;
}

} // namespace raw
