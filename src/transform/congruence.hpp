#ifndef RAW_TRANSFORM_CONGRUENCE_HPP
#define RAW_TRANSFORM_CONGRUENCE_HPP

/**
 * @file
 * Per-block modular congruence analysis (Section 5.3).
 *
 * Computes, for every value in a renamed basic block, a fact of the
 * form `value == r (mod m)` (or an exact constant).  Seeds are the
 * block's entry facts — congruences of loop induction variables
 * established by the unroller — plus kConst instructions; kAdd, kSub,
 * kMul, kShl-by-constant and kMove propagate facts.
 *
 * The orchestrater asks for an index value's residue modulo N (the
 * machine size): a known residue means the memory reference has a
 * single compile-time home tile (the *static reference property*) and
 * can be served over the static network; otherwise the reference falls
 * back to the dynamic network.
 */

#include <vector>

#include "ir/function.hpp"
#include "support/mathutil.hpp"

namespace raw {

/** Congruence facts for every value, relative to one block. */
class CongruenceMap
{
  public:
    /** Analyze @p block_id of @p fn. */
    CongruenceMap(const Function &fn, int block_id);

    /** Fact for @p v (top if unknown). */
    const Congruence &get(ValueId v) const { return facts_[v]; }

    /**
     * Residue of @p v modulo @p m, or -1 if not statically known.
     */
    int64_t residue_mod(ValueId v, int64_t m) const
    {
        return facts_[v].residue_mod(m);
    }

  private:
    std::vector<Congruence> facts_;
};

} // namespace raw

#endif // RAW_TRANSFORM_CONGRUENCE_HPP
