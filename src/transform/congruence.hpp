#ifndef RAW_TRANSFORM_CONGRUENCE_HPP
#define RAW_TRANSFORM_CONGRUENCE_HPP

/**
 * @file
 * Per-block modular congruence analysis (Section 5.3).
 *
 * Computes, for every value in a renamed basic block, a fact of the
 * form `value == r (mod m)` (or an exact constant).  Seeds are the
 * block's entry facts — congruences of loop induction variables
 * established by the unroller — plus kConst instructions; kAdd, kSub,
 * kMul, kShl-by-constant and kMove propagate facts.
 *
 * The orchestrater asks for an index value's residue modulo N (the
 * machine size): a known residue means the memory reference has a
 * single compile-time home tile (the *static reference property*) and
 * can be served over the static network; otherwise the reference falls
 * back to the dynamic network.
 */

#include <vector>

#include "ir/function.hpp"
#include "support/mathutil.hpp"

namespace raw {

/** Congruence facts for every value, relative to one block. */
class CongruenceMap
{
  public:
    /**
     * Prepare an analyzer for @p fn without analyzing any block yet.
     * The O(#values) fact table is allocated once here; analyze()
     * re-seeds it per block in O(block size) via epoch stamps, so one
     * analyzer can sweep every block of a large function cheaply.
     */
    explicit CongruenceMap(const Function &fn);

    /** Analyze @p block_id of @p fn. */
    CongruenceMap(const Function &fn, int block_id);

    /** Re-seed the analyzer with the facts of @p block_id. */
    void analyze(int block_id);

    /** Fact for @p v (top if unknown). */
    const Congruence &get(ValueId v) const
    {
        return stamp_[v] == epoch_ ? facts_[v] : top_;
    }

    /**
     * Residue of @p v modulo @p m, or -1 if not statically known.
     */
    int64_t residue_mod(ValueId v, int64_t m) const
    {
        return get(v).residue_mod(m);
    }

  private:
    void set(ValueId v, const Congruence &c)
    {
        facts_[v] = c;
        stamp_[v] = epoch_;
    }

    const Function *fn_;
    std::vector<Congruence> facts_;
    // Entries are valid only when their stamp matches the current
    // epoch; everything else reads as top without a per-block sweep.
    std::vector<uint32_t> stamp_;
    uint32_t epoch_ = 0;
    Congruence top_ = Congruence::top();
};

} // namespace raw

#endif // RAW_TRANSFORM_CONGRUENCE_HPP
