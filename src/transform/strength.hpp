#ifndef RAW_TRANSFORM_STRENGTH_HPP
#define RAW_TRANSFORM_STRENGTH_HPP

/**
 * @file
 * Strength reduction of integer multiplies by constants.
 *
 * Integer MUL costs 12 cycles on the Raw prototype (Table 1), so a
 * production back-end — like the Mips compiler the paper baselines
 * against — rewrites `x * C` into shift/add/sub sequences whenever
 * the decomposition is short.  Applied to both the RAWCC pipeline and
 * the sequential baseline so array index arithmetic costs what it
 * would under a real code generator:
 *   x * 2^k        -> shl
 *   x * (2^a+2^b)  -> shl, shl, add
 *   x * (2^a-2^b)  -> shl, shl, sub
 */

#include "ir/function.hpp"

namespace raw {

/** Rewrite constant multiplies in @p fn; returns #rewritten. */
int strength_reduce(Function &fn);

} // namespace raw

#endif // RAW_TRANSFORM_STRENGTH_HPP
