#include "transform/congruence.hpp"

#include "ir/type.hpp"

namespace raw {

CongruenceMap::CongruenceMap(const Function &fn, int block_id)
    : facts_(fn.values.size(), Congruence::top())
{
    const Block &blk = fn.blocks[block_id];
    for (const EntryFact &f : blk.entry_facts)
        facts_[f.var] = f.cong;

    for (const Instr &in : blk.instrs) {
        if (!in.has_dst())
            continue;
        Congruence out = Congruence::top();
        switch (in.op) {
          case Op::kConst:
            if (in.type == Type::kI32)
                out = Congruence::exact(bits_int(in.imm_bits));
            break;
          case Op::kMove:
            out = facts_[in.src[0]];
            break;
          case Op::kAdd:
            out = facts_[in.src[0]] + facts_[in.src[1]];
            break;
          case Op::kSub:
            out = facts_[in.src[0]] - facts_[in.src[1]];
            break;
          case Op::kMul:
            out = facts_[in.src[0]] * facts_[in.src[1]];
            break;
          case Op::kNeg:
            out = Congruence::exact(0) - facts_[in.src[0]];
            break;
          case Op::kShl: {
            const Congruence &amt = facts_[in.src[1]];
            if (amt.is_exact() && amt.residue >= 0 && amt.residue < 31) {
                Congruence scale =
                    Congruence::exact(int64_t{1} << amt.residue);
                out = facts_[in.src[0]] * scale;
            }
            break;
          }
          default:
            break;
        }
        facts_[in.dst] = out;
    }
}

} // namespace raw
