#include "transform/congruence.hpp"

#include "ir/type.hpp"

namespace raw {

CongruenceMap::CongruenceMap(const Function &fn)
    : fn_(&fn), facts_(fn.values.size(), Congruence::top()),
      stamp_(fn.values.size(), 0)
{
}

CongruenceMap::CongruenceMap(const Function &fn, int block_id)
    : CongruenceMap(fn)
{
    analyze(block_id);
}

void
CongruenceMap::analyze(int block_id)
{
    epoch_++;
    if (facts_.size() < fn_->values.size()) {
        facts_.resize(fn_->values.size(), Congruence::top());
        stamp_.resize(fn_->values.size(), 0);
    }
    const Block &blk = fn_->blocks[block_id];
    for (const EntryFact &f : blk.entry_facts)
        set(f.var, f.cong);

    for (const Instr &in : blk.instrs) {
        if (!in.has_dst())
            continue;
        Congruence out = Congruence::top();
        switch (in.op) {
          case Op::kConst:
            if (in.type == Type::kI32)
                out = Congruence::exact(bits_int(in.imm_bits));
            break;
          case Op::kMove:
            out = get(in.src[0]);
            break;
          case Op::kAdd:
            out = get(in.src[0]) + get(in.src[1]);
            break;
          case Op::kSub:
            out = get(in.src[0]) - get(in.src[1]);
            break;
          case Op::kMul:
            out = get(in.src[0]) * get(in.src[1]);
            break;
          case Op::kNeg:
            out = Congruence::exact(0) - get(in.src[0]);
            break;
          case Op::kShl: {
            const Congruence &amt = get(in.src[1]);
            if (amt.is_exact() && amt.residue >= 0 && amt.residue < 31) {
                Congruence scale =
                    Congruence::exact(int64_t{1} << amt.residue);
                out = get(in.src[0]) * scale;
            }
            break;
          }
          default:
            break;
        }
        set(in.dst, out);
    }
}

} // namespace raw
