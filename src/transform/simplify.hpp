#ifndef RAW_TRANSFORM_SIMPLIFY_HPP
#define RAW_TRANSFORM_SIMPLIFY_HPP

/**
 * @file
 * CFG simplification.
 *
 * Peeled loop iterations (Section 5.3) turn guard conditions like
 * `if (i > k)` into compile-time constants once both induction
 * variables are exact.  This pass:
 *   1. folds branches on constant conditions into jumps,
 *   2. threads jumps through empty (jump-only) blocks,
 *   3. merges a block into its unique-predecessor successor,
 *   4. removes unreachable blocks.
 *
 * Without it, peeled triangular kernels (cholesky) dissolve into
 * thousands of two-instruction blocks and per-block control overhead
 * dominates; with it, they become the large straight-line basic
 * blocks the orchestrater exists to exploit.
 */

#include "ir/function.hpp"

namespace raw {

/** Simplify @p fn in place; returns true if anything changed. */
bool simplify_cfg(Function &fn);

} // namespace raw

#endif // RAW_TRANSFORM_SIMPLIFY_HPP
