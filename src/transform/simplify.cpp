#include "transform/simplify.hpp"

#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace raw {

namespace {

/** Fold kBranch on an in-block constant condition into kJump. */
bool
fold_const_branches(Function &fn)
{
    bool changed = false;
    for (Block &blk : fn.blocks) {
        Instr &term = blk.instrs.back();
        if (term.op != Op::kBranch)
            continue;
        // Find the in-block definition of the condition.
        ValueId cond = term.src[0];
        const Instr *def = nullptr;
        for (const Instr &in : blk.instrs)
            if (in.has_dst() && in.dst == cond)
                def = &in;
        if (!def || def->op != Op::kConst)
            continue;
        int target = def->imm_bits != 0 ? term.target[0]
                                        : term.target[1];
        Instr j;
        j.op = Op::kJump;
        j.target[0] = target;
        term = j;
        changed = true;
    }
    return changed;
}

/** Redirect edges through jump-only blocks. */
bool
thread_jumps(Function &fn)
{
    const int nb = static_cast<int>(fn.blocks.size());
    std::vector<int> fwd(nb, -1);
    for (int b = 0; b < nb; b++) {
        const Block &blk = fn.blocks[b];
        if (blk.instrs.size() == 1 && blk.instrs[0].op == Op::kJump &&
            blk.instrs[0].target[0] != b)
            fwd[b] = blk.instrs[0].target[0];
    }
    auto resolve = [&](int b) {
        int steps = 0;
        while (fwd[b] >= 0 && steps++ < nb)
            b = fwd[b];
        return b;
    };
    bool changed = false;
    for (Block &blk : fn.blocks) {
        Instr &term = blk.instrs.back();
        if (term.op == Op::kJump || term.op == Op::kBranch) {
            int n_targets = term.op == Op::kJump ? 1 : 2;
            for (int t = 0; t < n_targets; t++) {
                int r = resolve(term.target[t]);
                if (r != term.target[t]) {
                    term.target[t] = r;
                    changed = true;
                }
            }
        }
    }
    return changed;
}

/** Merge blocks with a unique predecessor into that predecessor. */
bool
merge_chains(Function &fn)
{
    bool changed = false;
    const int nb = static_cast<int>(fn.blocks.size());
    // Edge-multiplicity predecessor counts (a branch with both
    // targets equal counts twice, matching fn.predecessors()).  A
    // merge only removes b's jump edge into s; the edges moved out of
    // s keep their targets, so pred_count stays exact incrementally.
    std::vector<int> pred_count(nb, 0);
    for (int b = 0; b < nb; b++)
        for (int s : fn.blocks[b].successors())
            pred_count[s]++;
    for (int b = 0; b < nb; b++) {
        for (;;) {
            Block &blk = fn.blocks[b];
            Instr &term = blk.instrs.back();
            if (term.op != Op::kJump)
                break;
            int s = term.target[0];
            if (s == b || s == 0 || pred_count[s] != 1)
                break;
            // Concatenate s into b.
            Block &succ = fn.blocks[s];
            blk.instrs.pop_back();
            blk.instrs.insert(blk.instrs.end(), succ.instrs.begin(),
                              succ.instrs.end());
            // s becomes an unreachable stub.
            succ.instrs.clear();
            Instr h;
            h.op = Op::kHalt;
            succ.instrs.push_back(h);
            pred_count[s] = 0;
            changed = true;
        }
    }
    return changed;
}

/** Drop unreachable blocks, remapping ids (entry stays block 0). */
bool
remove_unreachable(Function &fn)
{
    const int nb = static_cast<int>(fn.blocks.size());
    std::vector<bool> reach(nb, false);
    std::vector<int> work{0};
    reach[0] = true;
    while (!work.empty()) {
        int b = work.back();
        work.pop_back();
        for (int s : fn.blocks[b].successors())
            if (!reach[s]) {
                reach[s] = true;
                work.push_back(s);
            }
    }
    bool any = false;
    for (int b = 0; b < nb; b++)
        if (!reach[b])
            any = true;
    if (!any)
        return false;

    std::vector<int> remap(nb, -1);
    std::vector<Block> kept;
    for (int b = 0; b < nb; b++) {
        if (!reach[b])
            continue;
        remap[b] = static_cast<int>(kept.size());
        kept.push_back(std::move(fn.blocks[b]));
    }
    for (Block &blk : kept) {
        Instr &term = blk.instrs.back();
        int n_targets = term.op == Op::kJump
                            ? 1
                            : (term.op == Op::kBranch ? 2 : 0);
        for (int t = 0; t < n_targets; t++) {
            term.target[t] = remap[term.target[t]];
            check(term.target[t] >= 0,
                  "simplify: live edge to dead block");
        }
    }
    fn.blocks = std::move(kept);
    return true;
}

} // namespace

bool
simplify_cfg(Function &fn)
{
    bool any = false;
    for (int round = 0; round < 50; round++) {
        bool changed = false;
        changed |= fold_const_branches(fn);
        changed |= thread_jumps(fn);
        changed |= remove_unreachable(fn);
        changed |= merge_chains(fn);
        changed |= remove_unreachable(fn);
        if (!changed)
            break;
        any = true;
    }
    return any;
}

} // namespace raw
