#ifndef RAW_TRANSFORM_CONSTFOLD_HPP
#define RAW_TRANSFORM_CONSTFOLD_HPP

/**
 * @file
 * In-block constant folding, copy propagation and dead-temp
 * elimination.
 *
 * Folding matters beyond code quality here: peeled loop iterations
 * leave index expressions like (16*32 + 3) in the IR, and the
 * orchestrater can only pin a memory reference to its home tile when
 * the index value's congruence is known — an exact constant being the
 * strongest case.  Integer folding uses two's-complement int32
 * semantics and float folding uses IEEE single precision, both
 * matching the simulator exactly.
 */

#include "ir/function.hpp"

namespace raw {

/** Fold constants in every block of @p fn; returns #instrs removed. */
int constfold_function(Function &fn);

} // namespace raw

#endif // RAW_TRANSFORM_CONSTFOLD_HPP
