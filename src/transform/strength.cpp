#include "transform/strength.hpp"

#include <unordered_map>

#include "ir/type.hpp"

namespace raw {

namespace {

bool
is_pow2(int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

int
log2i(int64_t v)
{
    int k = 0;
    while ((int64_t{1} << k) < v)
        k++;
    return k;
}

} // namespace

int
strength_reduce(Function &fn)
{
    int rewritten = 0;
    for (Block &blk : fn.blocks) {
        // Constant values defined in this block so far.
        std::unordered_map<ValueId, int64_t> consts;
        std::vector<Instr> out;
        out.reserve(blk.instrs.size());

        auto emit_shift = [&](ValueId dst, ValueId x, int sh) {
            ValueId amt = fn.new_value(Type::kI32);
            out.push_back(Instr::make_const_int(
                amt, static_cast<int32_t>(sh)));
            out.push_back(
                Instr::make(Op::kShl, Type::kI32, dst, x, amt));
        };

        for (Instr &in : blk.instrs) {
            if (in.op == Op::kConst && in.type == Type::kI32) {
                consts[in.dst] = bits_int(in.imm_bits);
                out.push_back(in);
                continue;
            }
            if (in.has_dst())
                consts.erase(in.dst);
            if (in.op != Op::kMul) {
                out.push_back(in);
                continue;
            }
            // Find a constant operand.
            int64_t c = 0;
            ValueId x = kNoValue;
            for (int s = 0; s < 2; s++) {
                auto it = consts.find(in.src[s]);
                if (it != consts.end()) {
                    c = it->second;
                    x = in.src[1 - s];
                }
            }
            if (x == kNoValue || c <= 0) {
                out.push_back(in);
                continue;
            }
            if (c == 1) {
                out.push_back(
                    Instr::make(Op::kMove, Type::kI32, in.dst, x));
                rewritten++;
                continue;
            }
            if (is_pow2(c)) {
                emit_shift(in.dst, x, log2i(c));
                rewritten++;
                continue;
            }
            // Two-term decompositions: 2^a + 2^b or 2^a - 2^b.
            bool done = false;
            for (int a = 1; a < 31 && !done; a++) {
                int64_t pa = int64_t{1} << a;
                if (pa <= c / 2)
                    continue;
                if (pa >= c * 2)
                    break;
                int64_t rest = c - pa;
                if (rest != 0 && is_pow2(rest < 0 ? -rest : rest)) {
                    int b = log2i(rest < 0 ? -rest : rest);
                    ValueId t1 = fn.new_value(Type::kI32);
                    ValueId t2 = fn.new_value(Type::kI32);
                    emit_shift(t1, x, a);
                    emit_shift(t2, x, b);
                    out.push_back(Instr::make(
                        rest > 0 ? Op::kAdd : Op::kSub, Type::kI32,
                        in.dst, t1, t2));
                    rewritten++;
                    done = true;
                } else if (rest == 0) {
                    emit_shift(in.dst, x, a);
                    rewritten++;
                    done = true;
                }
            }
            if (!done)
                out.push_back(in);
        }
        blk.instrs = std::move(out);
    }
    return rewritten;
}

} // namespace raw
