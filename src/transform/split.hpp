#ifndef RAW_TRANSFORM_SPLIT_HPP
#define RAW_TRANSFORM_SPLIT_HPP

/**
 * @file
 * Bounded-block splitting.
 *
 * Aggressive peeling (Section 5.3) can produce straight-line regions
 * of tens of thousands of instructions.  Scheduling such a region as
 * one basic block makes the event scheduler expose far more
 * parallelism than 32 registers can hold (the paper's phase-ordering
 * problem, Section 4.2), drowning the code in spills.  This pass cuts
 * blocks longer than a threshold: temporaries live across a cut are
 * promoted to variables (so the stitcher routes them through home
 * tiles), and the cut edge is a fall-through jump the linker removes.
 * Congruence facts survive a cut only for variables the earlier part
 * did not redefine.
 */

#include <cstddef>

#include "ir/function.hpp"

namespace raw {

/** Split blocks longer than @p max_len instructions; returns #cuts. */
int split_large_blocks(Function &fn, size_t max_len = 300);

} // namespace raw

#endif // RAW_TRANSFORM_SPLIT_HPP
