#ifndef RAW_TRANSFORM_RENAME_HPP
#define RAW_TRANSFORM_RENAME_HPP

/**
 * @file
 * Software renaming: the paper's *initial code transformation*
 * (Section 3.3, Figure 6a).
 *
 * Each basic block is converted to a locally single-assignment form:
 * every write to a persistent variable is redirected to a fresh
 * temporary, removing anti- and output-dependences within the block
 * (the compile-time analogue of superscalar register renaming).  After
 * the pass, a variable appears
 *   - as a *source* only for its live-in value at block entry, and
 *   - as a *destination* only in a single trailing "write-back" move
 *     per block (`move v <- v_k`), which the stitcher later turns into
 *     the communication that updates v's home tile.
 */

#include "ir/function.hpp"

namespace raw {

/** Rename every block of @p fn in place. */
void rename_function(Function &fn);

/**
 * True if @p in is a trailing variable write-back produced by
 * renaming (a move whose destination is a persistent variable).
 */
bool is_writeback(const Function &fn, const Instr &in);

} // namespace raw

#endif // RAW_TRANSFORM_RENAME_HPP
