#include "transform/split.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/error.hpp"
#include "transform/congruence.hpp"

namespace raw {

namespace {

/** Split one block into chunks of at most @p max_len instructions. */
int
split_block(Function &fn, int block_id, size_t max_len)
{
    // Congruences of the unsplit block (used to preserve the facts of
    // promoted cross-cut values).
    CongruenceMap pre_cong(fn, block_id);

    // Take the body; the terminator goes to the last chunk.
    std::vector<Instr> body = std::move(fn.blocks[block_id].instrs);
    Instr term = body.back();
    body.pop_back();

    const size_t n = body.size();
    const int n_chunks = static_cast<int>((n + max_len - 1) / max_len);

    // Promote temporaries that are live across a cut to variables.
    std::unordered_map<ValueId, size_t> chunk_of_def;
    for (size_t k = 0; k < n; k++) {
        const Instr &in = body[k];
        if (in.has_dst() && !fn.values[in.dst].is_var)
            chunk_of_def[in.dst] = k / max_len;
    }
    auto crosses = [&](ValueId v, size_t use_pos) {
        auto it = chunk_of_def.find(v);
        return it != chunk_of_def.end() &&
               it->second != use_pos / max_len;
    };
    std::unordered_set<ValueId> promoted;
    for (size_t k = 0; k < n; k++) {
        const Instr &in = body[k];
        for (int s = 0; s < in.num_srcs(); s++) {
            ValueId v = in.src[s];
            if (!fn.values[v].is_var && crosses(v, k))
                promoted.insert(v);
        }
    }
    if (term.op == Op::kBranch) {
        ValueId v = term.src[0];
        if (!fn.values[v].is_var && chunk_of_def.count(v) &&
            chunk_of_def[v] != static_cast<size_t>(n_chunks - 1))
            promoted.insert(v);
    }
    // Promoted values keep their congruence facts: a cross-cut index
    // temp must not demote its memory references to the dynamic
    // network, so its fact (computed on the unsplit block) is
    // re-seeded at the entry of every chunk after its definition.
    struct PromotedFact
    {
        EntryFact fact;
        size_t def_chunk;
    };
    std::vector<PromotedFact> promoted_facts;
    for (ValueId v : promoted) {
        fn.values[v].is_var = true;
        if (fn.values[v].name.empty())
            fn.values[v].name = "t" + std::to_string(v);
        const Congruence &c = pre_cong.get(v);
        if (!c.is_top())
            promoted_facts.push_back({{v, c}, chunk_of_def[v]});
    }

    // Variables written in earlier chunks invalidate their facts.
    std::vector<EntryFact> facts = fn.blocks[block_id].entry_facts;

    // Lay the chunks out as a chain of blocks.
    std::vector<int> chunk_blocks(n_chunks);
    chunk_blocks[0] = block_id;
    for (int c = 1; c < n_chunks; c++) {
        chunk_blocks[c] =
            fn.new_block(fn.blocks[block_id].name + "_part" +
                         std::to_string(c));
        fn.blocks[chunk_blocks[c]].src_loop =
            fn.blocks[block_id].src_loop;
    }

    std::unordered_set<ValueId> written;
    for (int c = 0; c < n_chunks; c++) {
        Block &blk = fn.blocks[chunk_blocks[c]];
        blk.instrs.clear();
        blk.entry_facts.clear();
        for (const EntryFact &f : facts)
            if (!written.count(f.var))
                blk.entry_facts.push_back(f);
        for (const PromotedFact &pf : promoted_facts)
            if (pf.def_chunk < static_cast<size_t>(c))
                blk.entry_facts.push_back(pf.fact);
        size_t lo = static_cast<size_t>(c) * max_len;
        size_t hi = std::min(n, lo + max_len);
        for (size_t k = lo; k < hi; k++) {
            blk.instrs.push_back(body[k]);
            const Instr &in = body[k];
            if (in.has_dst() && fn.values[in.dst].is_var)
                written.insert(in.dst);
        }
        if (c + 1 < n_chunks) {
            Instr j;
            j.op = Op::kJump;
            j.target[0] = chunk_blocks[c + 1];
            blk.instrs.push_back(j);
        } else {
            blk.instrs.push_back(term);
        }
    }
    return n_chunks - 1;
}

} // namespace

int
split_large_blocks(Function &fn, size_t max_len)
{
    check(max_len >= 8, "split: threshold too small");
    int cuts = 0;
    const int n_blocks = static_cast<int>(fn.blocks.size());
    for (int b = 0; b < n_blocks; b++)
        if (fn.blocks[b].instrs.size() > max_len + 1)
            cuts += split_block(fn, b, max_len);
    return cuts;
}

} // namespace raw
