#include "transform/rename.hpp"

#include <unordered_map>

#include "support/error.hpp"

namespace raw {

namespace {

void
rename_block(Function &fn, Block &blk)
{
    // Current local value of each renamed variable.
    std::unordered_map<ValueId, ValueId> cur;
    // Variables written in this block, in first-write order.
    std::vector<ValueId> written;

    for (Instr &in : blk.instrs) {
        for (int s = 0; s < in.num_srcs(); s++) {
            ValueId v = in.src[s];
            if (fn.values[v].is_var) {
                auto it = cur.find(v);
                if (it != cur.end())
                    in.src[s] = it->second;
            }
        }
        if (in.has_dst() && fn.values[in.dst].is_var) {
            ValueId var = in.dst;
            const ValueInfo &vi = fn.values[var];
            ValueId t = fn.new_value(
                vi.type, vi.name + "_" + std::to_string(fn.values.size()),
                false);
            in.dst = t;
            if (!cur.count(var))
                written.push_back(var);
            cur[var] = t;
        }
    }

    // Insert trailing write-backs before the terminator.
    check(!blk.instrs.empty() && blk.instrs.back().is_terminator(),
          "rename: malformed block");
    Instr term = blk.instrs.back();
    blk.instrs.pop_back();
    for (ValueId var : written) {
        Instr mv = Instr::make(Op::kMove, fn.values[var].type, var,
                               cur[var]);
        blk.instrs.push_back(mv);
    }
    blk.instrs.push_back(term);
}

} // namespace

void
rename_function(Function &fn)
{
    for (Block &blk : fn.blocks)
        rename_block(fn, blk);
}

bool
is_writeback(const Function &fn, const Instr &in)
{
    return in.op == Op::kMove && in.dst != kNoValue &&
           fn.values[in.dst].is_var;
}

} // namespace raw
