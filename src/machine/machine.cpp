#include "machine/machine.hpp"

namespace raw {

const char *
dir_name(Dir d)
{
    switch (d) {
      case Dir::kNorth: return "N";
      case Dir::kEast:  return "E";
      case Dir::kSouth: return "S";
      case Dir::kWest:  return "W";
      case Dir::kProc:  return "P";
    }
    return "?";
}

Dir
opposite(Dir d)
{
    switch (d) {
      case Dir::kNorth: return Dir::kSouth;
      case Dir::kEast:  return Dir::kWest;
      case Dir::kSouth: return Dir::kNorth;
      case Dir::kWest:  return Dir::kEast;
      case Dir::kProc:  return Dir::kProc;
    }
    return Dir::kProc;
}

int
MachineConfig::latency(FuOp op) const
{
    if (unit_latency)
        return 1;
    switch (op) {
      case FuOp::kIntAdd: return 1;
      case FuOp::kIntMul: return 12;
      case FuOp::kIntDiv: return 35;
      case FuOp::kFpAdd:  return 2;
      case FuOp::kFpMul:  return 4;
      case FuOp::kFpDiv:  return 12;
      case FuOp::kLoad:   return 2;
      case FuOp::kStore:  return 1;
      case FuOp::kBranch: return 1;
    }
    return 1;
}

int
MachineConfig::distance(int a, int b) const
{
    int dr = row_of(a) - row_of(b);
    int dc = col_of(a) - col_of(b);
    return (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
}

Dir
MachineConfig::next_hop(int from, int to) const
{
    if (from == to)
        return Dir::kProc;
    int fc = col_of(from), tc = col_of(to);
    if (fc < tc)
        return Dir::kEast;
    if (fc > tc)
        return Dir::kWest;
    int fr = row_of(from), tr = row_of(to);
    if (fr < tr)
        return Dir::kSouth;
    return Dir::kNorth;
}

Dir
MachineConfig::next_hop_yx(int from, int to) const
{
    if (from == to)
        return Dir::kProc;
    int fr = row_of(from), tr = row_of(to);
    if (fr < tr)
        return Dir::kSouth;
    if (fr > tr)
        return Dir::kNorth;
    int fc = col_of(from), tc = col_of(to);
    if (fc < tc)
        return Dir::kEast;
    return Dir::kWest;
}

int
MachineConfig::neighbor(int tile, Dir d) const
{
    int r = row_of(tile), c = col_of(tile);
    switch (d) {
      case Dir::kNorth: r--; break;
      case Dir::kSouth: r++; break;
      case Dir::kEast:  c++; break;
      case Dir::kWest:  c--; break;
      case Dir::kProc:  return tile;
    }
    if (r < 0 || r >= rows || c < 0 || c >= cols)
        return -1;
    return tile_at(r, c);
}

void
MachineConfig::validate() const
{
    check(n_tiles >= 1, "machine must have at least one tile");
    // Dynamic-network message headers carry the home/origin tile in a
    // 10-bit field (see dyn_header), so the mesh cannot address more
    // than 1024 tiles; the scaling study tops out at 128.
    check(n_tiles <= 1024, "machine exceeds 1024 addressable tiles");
    check(rows * cols == n_tiles, "mesh shape does not match tile count");
    check(num_registers >= 8, "too few registers");
    check(num_switch_registers >= 1, "too few switch registers");
}

std::string
MachineConfig::name() const
{
    std::string s = std::to_string(rows) + "x" + std::to_string(cols);
    if (unit_latency)
        s += " 1-cycle";
    else if (num_registers > 1024)
        s += " inf-reg";
    else
        s += " base";
    return s;
}

void
mesh_shape(int n_tiles, int &rows, int &cols)
{
    rows = 1;
    while ((rows * 2) * (rows * 2) <= n_tiles)
        rows *= 2;
    // rows is the largest power of two with rows^2 <= n; cols = n / rows.
    while (n_tiles % rows != 0)
        rows--;
    cols = n_tiles / rows;
    if (rows > cols) {
        int t = rows;
        rows = cols;
        cols = t;
    }
}

MachineConfig
MachineConfig::base(int n)
{
    MachineConfig m;
    m.n_tiles = n;
    mesh_shape(n, m.rows, m.cols);
    m.validate();
    return m;
}

MachineConfig
MachineConfig::inf_reg(int n)
{
    MachineConfig m = base(n);
    m.num_registers = 1 << 20;
    return m;
}

MachineConfig
MachineConfig::one_cycle(int n)
{
    MachineConfig m = base(n);
    m.unit_latency = true;
    return m;
}

} // namespace raw
