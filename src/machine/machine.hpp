#ifndef RAW_MACHINE_MACHINE_HPP
#define RAW_MACHINE_MACHINE_HPP

/**
 * @file
 * Machine description of the MIT Raw prototype (Section 3.1 of the paper).
 *
 * A Raw machine is a 2-D mesh of identical tiles.  Each tile holds a
 * five-stage in-order processor (32 GPRs, no FPRs; floating point uses
 * GPRs), a local data memory, a programmable static switch (a stripped
 * R2000 with 8 registers) and a dynamic wormhole router.  The processor
 * and the switch are connected by one input and one output port; the
 * switch connects to its four mesh neighbors with an input and an output
 * port each.  All ports carry 32-bit words, have blocking semantics and
 * single-word capacity (near-neighbor flow control).
 *
 * The compiler sees the machine through this description only: tile
 * count, mesh shape, per-opcode latencies (Table 1), the communication
 * cost model (one cycle per injection, per hop and per reception —
 * Figure 4) and the register budget.
 */

#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace raw {

/** Port directions on a static switch.  kProc is the processor port. */
enum class Dir : uint8_t { kNorth = 0, kEast, kSouth, kWest, kProc };

/** Number of distinct switch port directions. */
constexpr int kNumDirs = 5;

/** Human-readable name of a direction ("N", "E", "S", "W", "P"). */
const char *dir_name(Dir d);

/** The direction opposite to @p d (kProc is its own opposite). */
Dir opposite(Dir d);

/** Functional-unit classes used for latency lookup (Table 1). */
enum class FuOp : uint8_t {
    kIntAdd,   ///< ADD/SUB, logic, compares, moves: 1 cycle
    kIntMul,   ///< MUL: 12 cycles
    kIntDiv,   ///< DIV: 35 cycles
    kFpAdd,    ///< ADDF/SUBF: 2 cycles
    kFpMul,    ///< MULF: 4 cycles
    kFpDiv,    ///< DIVF: 12 cycles
    kLoad,     ///< local memory load, cache hit: 2 cycles
    kStore,    ///< local memory store: 1 cycle
    kBranch,   ///< branches/jumps: 1 cycle
};

/**
 * Configuration of a Raw machine instance.
 *
 * The three evaluation configurations of the paper (Figure 8) are
 * exposed as factory functions: base(), inf_reg() and one_cycle().
 */
struct MachineConfig
{
    /** Number of tiles (must equal rows * cols). */
    int n_tiles = 4;
    /** Mesh rows. */
    int rows = 2;
    /** Mesh columns. */
    int cols = 2;

    /** General-purpose registers per tile processor. */
    int num_registers = 32;
    /** Registers per switch. */
    int num_switch_registers = 8;

    /** When true, every instruction (incl. loads) takes one cycle. */
    bool unit_latency = false;

    /**
     * The switch may execute one ALU instruction and one ROUTE in the
     * same cycle ("a switch can perform both a computation
     * instruction and a ROUTE instruction on the same cycle",
     * Section 3.1).
     */
    bool switch_dual_issue = true;

    /** Cycles the dynamic-network memory handler spends per request. */
    int dyn_handler_cycles = 5;
    /** Extra header cycles for composing/routing a dynamic message. */
    int dyn_header_cycles = 2;

    /** Cycle latency of a functional-unit op under this config. */
    int latency(FuOp op) const;

    /** Tile id at mesh coordinates (@p row, @p col). */
    int tile_at(int row, int col) const { return row * cols + col; }
    /** Mesh row of @p tile. */
    int row_of(int tile) const { return tile / cols; }
    /** Mesh column of @p tile. */
    int col_of(int tile) const { return tile % cols; }
    /** Manhattan distance between two tiles. */
    int distance(int a, int b) const;

    /**
     * Next hop direction from @p from toward @p to under
     * dimension-ordered (X-then-Y) routing; kProc when from == to.
     */
    Dir next_hop(int from, int to) const;

    /**
     * Next hop under the transposed (Y-then-X) dimension ordering.
     * Same hop count as next_hop(); the alternative route lets the
     * scheduler dodge a congested XY corner (SchedOptions::route_select).
     */
    Dir next_hop_yx(int from, int to) const;

    /** Tile adjacent to @p tile in direction @p d, or -1 off-mesh. */
    int neighbor(int tile, Dir d) const;

    /** Validate internal consistency; panics on error. */
    void validate() const;

    /** Short description like "4x8 base". */
    std::string name() const;

    /** Baseline machine with @p n tiles (Table 1 latencies, 32 regs). */
    static MachineConfig base(int n);
    /** Figure 8 "inf-reg": effectively unlimited registers per tile. */
    static MachineConfig inf_reg(int n);
    /** Figure 8 "1-cycle": every instruction takes a single cycle. */
    static MachineConfig one_cycle(int n);
};

/** Mesh shape used for a given tile count (near-square, cols >= rows). */
void mesh_shape(int n_tiles, int &rows, int &cols);

} // namespace raw

#endif // RAW_MACHINE_MACHINE_HPP
