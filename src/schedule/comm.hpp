#ifndef RAW_SCHEDULE_COMM_HPP
#define RAW_SCHEDULE_COMM_HPP

/**
 * @file
 * Communication paths and multicast route trees.
 *
 * After partitioning, every task-graph edge whose endpoints live on
 * different tiles needs static-network communication.  Edges with the
 * same source are serviced jointly by a single multicast (Section 3.3,
 * communication code generator): one SEND on the source processor, a
 * tree of ROUTE hops over dimension-ordered paths, and a RECEIVE on
 * each consuming processor.  Control broadcasts (branch conditions)
 * are paths whose destinations additionally include switch registers,
 * letting each switch branch locally (Section 3.2).
 */

#include <cstdint>
#include <vector>

#include "analysis/taskgraph.hpp"
#include "machine/machine.hpp"
#include "partition/partition.hpp"

namespace raw {

/** One destination of a communication path. */
struct CommDest
{
    int tile = 0;
    /** Deliver to the tile's processor (RECEIVE). */
    bool to_proc = false;
    /** Latch into the switch's branch register (control broadcast). */
    bool to_sw_reg = false;
};

/** A single-source multi-destination communication path. */
struct CommPath
{
    /** Producing task-graph node (instruction or import). */
    int src_node = -1;
    /** Source tile. */
    int src_tile = 0;
    /** Value carried (kNoValue: ordering token, the word sent is 0). */
    ValueId value = kNoValue;
    std::vector<CommDest> dests;
    /** True for a branch-condition broadcast. */
    bool broadcast = false;
};

/** One switch's action within a route tree. */
struct TreeHop
{
    int tile = 0;
    /** Incoming port (kProc on the source tile's switch). */
    Dir in = Dir::kProc;
    /** Bitmask over Dir of outgoing ports (bit 1 << dir). */
    uint8_t out_mask = 0;
    /** Also latch the word into the switch branch register. */
    bool to_reg = false;
    /** Hops from the source switch (source switch: 0). */
    int depth = 0;
};

/** A multicast tree rooted at the source tile's switch. */
struct RouteTree
{
    std::vector<TreeHop> hops;
    /** (tile, switch depth) for each processor delivery. */
    std::vector<std::pair<int, int>> proc_recvs;
    int max_depth = 0;
};

/** Dimension ordering of a route tree. */
enum class RouteOrder : uint8_t {
    kXY, ///< X first, then Y (the paper's choice)
    kYX, ///< transposed ordering — the contention-dodging alternative
};

/**
 * Build the dimension-ordered multicast tree for @p path.  Both
 * orderings yield minimal (Manhattan) routes with identical per-
 * destination depths, so they are interchangeable in the schedule's
 * timing model; they differ only in which switches the words transit.
 */
RouteTree build_route_tree(const MachineConfig &m, const CommPath &path,
                           RouteOrder order = RouteOrder::kXY);

/** Structural equality (same hops, same deliveries). */
bool same_route_tree(const RouteTree &a, const RouteTree &b);

/**
 * Derive the communication paths of one scheduled block: one multicast
 * per task-graph node with remote consumers (data and ordering edges),
 * plus, when @p broadcast_cond is a valid node, a control broadcast to
 * every other processor and to every switch flagged in
 * @p sw_targets (empty: all switches).
 */
std::vector<CommPath> build_comm_paths(const TaskGraph &g,
                                       const Partition &part,
                                       const MachineConfig &m,
                                       int broadcast_cond_node,
                                       const std::vector<bool> &sw_targets);

} // namespace raw

#endif // RAW_SCHEDULE_COMM_HPP
