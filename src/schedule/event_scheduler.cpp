#include "schedule/event_scheduler.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "support/error.hpp"

namespace raw {

namespace {

/** Per-switch, per-cycle reservation state. */
struct SwRes
{
    uint8_t in_used = 0;  // bitmask over Dir
    uint8_t out_used = 0; // bitmask over Dir
    bool reg_used = false;
};

/** Priorities: level (critical path) and clamped fertility. */
struct Priorities
{
    std::vector<int64_t> level;
    std::vector<int64_t> fert;
};

Priorities
compute_priorities(const TaskGraph &g, const Partition &part,
                   const MachineConfig &m)
{
    const int n = static_cast<int>(g.nodes().size());
    Priorities pr;
    pr.level.assign(n, 0);
    pr.fert.assign(n, 0);

    // Topological order.
    std::vector<int> indeg(n, 0), order;
    order.reserve(n);
    std::queue<int> q;
    for (int i = 0; i < n; i++) {
        indeg[i] = static_cast<int>(g.preds(i).size());
        if (indeg[i] == 0)
            q.push(i);
    }
    while (!q.empty()) {
        int v = q.front();
        q.pop();
        order.push_back(v);
        for (int s : g.succs(v))
            if (--indeg[s] == 0)
                q.push(s);
    }
    check(static_cast<int>(order.size()) == n,
          "scheduler: task graph has a cycle");

    constexpr int64_t kFertCap = 1000000;
    for (int k = n; k-- > 0;) {
        int v = order[k];
        int64_t lvl = 0, fert = 0;
        for (int e : g.out_edges(v)) {
            const TGEdge &edge = g.edges()[e];
            int s = edge.to;
            int64_t comm = 0;
            if (part.tile_of[v] != part.tile_of[s] &&
                edge.kind != DepKind::kAnti)
                comm = 2 + m.distance(part.tile_of[v],
                                      part.tile_of[s]);
            lvl = std::max(lvl, comm + pr.level[s]);
            fert = std::min(kFertCap, fert + 1 + pr.fert[s]);
        }
        pr.level[v] = g.nodes()[v].cost + lvl;
        pr.fert[v] = fert;
    }
    return pr;
}

} // namespace

BlockSchedule
schedule_block(const TaskGraph &g, const Partition &part,
               const MachineConfig &m,
               const std::vector<CommPath> &paths,
               const SchedOptions &opts)
{
    const int nn = static_cast<int>(g.nodes().size());
    const int np = static_cast<int>(paths.size());

    BlockSchedule out;
    out.tiles.assign(m.n_tiles, {});
    out.switches.assign(m.n_tiles, {});

    std::vector<RouteTree> trees;
    trees.reserve(np);
    for (const CommPath &p : paths)
        trees.push_back(build_route_tree(m, p));

    // node -> list of paths it sources (usually <= 2: data + bcast).
    std::vector<std::vector<int>> paths_of_node(nn);
    for (int p = 0; p < np; p++)
        paths_of_node[paths[p].src_node].push_back(p);
    // For dependence purposes the non-broadcast path carries values.
    std::vector<int> data_path_of_node(nn, -1);
    for (int p = 0; p < np; p++)
        if (!paths[p].broadcast)
            data_path_of_node[paths[p].src_node] = p;

    Priorities pr = compute_priorities(g, part, m);
    auto prio = [&](int v) {
        return pr.level[v] * opts.level_weight +
               pr.fert[v] * opts.fertility_weight;
    };

    // ---- Dependence bookkeeping. ---------------------------------
    // Each node waits on a mix of node-deps and path-deps.
    std::vector<int> deps_left(nn, 0);
    std::vector<std::vector<int>> node_waiters(nn);  // p -> nodes
    std::vector<std::vector<int>> path_waiters(np);  // path -> nodes

    std::vector<std::vector<int>> in_edges(nn);
    for (int e = 0; e < static_cast<int>(g.edges().size()); e++)
        in_edges[g.edges()[e].to].push_back(e);

    for (int e = 0; e < static_cast<int>(g.edges().size()); e++) {
        const TGEdge &edge = g.edges()[e];
        int p = edge.from, v = edge.to;
        bool same = part.tile_of[p] == part.tile_of[v];
        if (edge.kind == DepKind::kAnti) {
            if (!same)
                continue;
            // Same-tile anti-dep: wait for the node; if the producer
            // is an import with fan-out paths, also wait for those
            // paths (their sends read the register being overwritten).
            node_waiters[p].push_back(v);
            deps_left[v]++;
            if (g.nodes()[p].kind == TGKind::kImport) {
                for (int pp : paths_of_node[p]) {
                    path_waiters[pp].push_back(v);
                    deps_left[v]++;
                }
            }
            continue;
        }
        if (same) {
            node_waiters[p].push_back(v);
            deps_left[v]++;
        } else {
            int path = data_path_of_node[p];
            check(path >= 0, "scheduler: cross-tile edge without path");
            path_waiters[path].push_back(v);
            deps_left[v]++;
        }
    }

    // ---- Scheduling state. ---------------------------------------
    std::vector<bool> node_done(nn, false), path_done(np, false);
    std::vector<int64_t> finish(nn, 0), issue(nn, 0);
    std::vector<int64_t> send_issue(np, 0);
    std::vector<std::map<int, int64_t>> arrival(np); // path -> tile->recv

    std::vector<std::vector<bool>> proc_busy(m.n_tiles);
    std::vector<std::map<int64_t, SwRes>> sw_res(m.n_tiles);

    auto proc_free = [&](int tile, int64_t t) {
        auto &v = proc_busy[tile];
        return t >= static_cast<int64_t>(v.size()) || !v[t];
    };
    auto proc_take = [&](int tile, int64_t t) {
        auto &v = proc_busy[tile];
        if (t >= static_cast<int64_t>(v.size()))
            v.resize(t + 1, false);
        check(!v[t], "scheduler: double-booked processor slot");
        v[t] = true;
    };

    // Ready queue: (priority, tie-break, kind 0=node 1=path, id).
    struct Task
    {
        int64_t prio;
        int64_t seq;
        int kind;
        int id;
        bool operator<(const Task &o) const
        {
            if (prio != o.prio)
                return prio < o.prio;
            if (seq != o.seq)
                return seq > o.seq;
            return id > o.id;
        }
    };
    std::priority_queue<Task> ready;
    int64_t seq = 0;
    auto push_node = [&](int v) {
        int64_t p = opts.fifo_priority ? -seq : prio(v);
        ready.push({p, seq++, 0, v});
    };
    auto push_path = [&](int p) {
        int64_t pp =
            opts.fifo_priority ? -seq : prio(paths[p].src_node);
        ready.push({pp, seq++, 1, p});
    };

    for (int v = 0; v < nn; v++)
        if (deps_left[v] == 0)
            push_node(v);

    // Earliest start time of node v given its satisfied deps.
    auto ready_time = [&](int v) {
        int64_t t = 0;
        for (int e : in_edges[v]) {
            const TGEdge &edge = g.edges()[e];
            int p = edge.from;
            bool same = part.tile_of[p] == part.tile_of[v];
            if (edge.kind == DepKind::kAnti) {
                if (!same)
                    continue;
                t = std::max(t, issue[p] + 1);
                if (g.nodes()[p].kind == TGKind::kImport)
                    for (int pp : paths_of_node[p])
                        t = std::max(t, send_issue[pp] + 1);
                continue;
            }
            if (same) {
                t = std::max(t, finish[p]);
            } else {
                int path = data_path_of_node[p];
                auto it = arrival[path].find(part.tile_of[v]);
                check(it != arrival[path].end(),
                      "scheduler: missing arrival");
                t = std::max(t, it->second + 1);
            }
        }
        return t;
    };

    int scheduled = 0;
    auto complete_node = [&](int v) {
        node_done[v] = true;
        scheduled++;
        for (int p : paths_of_node[v])
            push_path(p);
        for (int w : node_waiters[v])
            if (--deps_left[w] == 0)
                push_node(w);
    };

    while (!ready.empty()) {
        Task task = ready.top();
        ready.pop();
        if (task.kind == 0) {
            int v = task.id;
            const TGNode &nd = g.nodes()[v];
            if (nd.kind == TGKind::kImport) {
                issue[v] = 0;
                finish[v] = 0;
                complete_node(v);
                continue;
            }
            int tile = part.tile_of[v];
            int64_t t = ready_time(v);
            while (!proc_free(tile, t))
                t++;
            proc_take(tile, t);
            out.tiles[tile].push_back({t, TileItem::Kind::kCompute, v,
                                       kNoValue, -1});
            issue[v] = t;
            finish[v] = t + std::max(1, nd.cost);
            out.makespan = std::max(out.makespan, finish[v]);
            complete_node(v);
        } else {
            int p = task.id;
            const CommPath &path = paths[p];
            const RouteTree &tree = trees[p];
            int src_tile = path.src_tile;
            int64_t r = std::max<int64_t>(finish[path.src_node], 0);

            int64_t t = r;
            for (;; t++) {
                check(t < r + 2000000,
                      "scheduler: no feasible slot for path");
                if (!proc_free(src_tile, t))
                    continue;
                bool ok = true;
                for (const TreeHop &h : tree.hops) {
                    auto it = sw_res[h.tile].find(t + 1 + h.depth);
                    if (it == sw_res[h.tile].end())
                        continue;
                    const SwRes &res = it->second;
                    uint8_t in_bit = static_cast<uint8_t>(
                        1u << static_cast<int>(h.in));
                    if ((res.in_used & in_bit) ||
                        (res.out_used & h.out_mask) ||
                        (h.to_reg && res.reg_used)) {
                        ok = false;
                        break;
                    }
                }
                if (ok) {
                    for (auto &[tile, depth] : tree.proc_recvs) {
                        if (!proc_free(tile, t + 2 + depth)) {
                            ok = false;
                            break;
                        }
                    }
                }
                if (ok)
                    break;
            }

            // Commit.
            proc_take(src_tile, t);
            out.tiles[src_tile].push_back({t, TileItem::Kind::kSend,
                                           path.src_node, path.value,
                                           p});
            for (const TreeHop &h : tree.hops) {
                SwRes &res = sw_res[h.tile][t + 1 + h.depth];
                res.in_used |= static_cast<uint8_t>(
                    1u << static_cast<int>(h.in));
                res.out_used |= h.out_mask;
                res.reg_used = res.reg_used || h.to_reg;
                out.switches[h.tile].push_back(
                    {t + 1 + h.depth, h.in, h.out_mask, h.to_reg,
                     path.value, p});
                out.makespan =
                    std::max(out.makespan, t + 2 + h.depth);
            }
            for (auto &[tile, depth] : tree.proc_recvs) {
                int64_t rc = t + 2 + depth;
                proc_take(tile, rc);
                out.tiles[tile].push_back(
                    {rc, TileItem::Kind::kRecv, -1, path.value, p});
                arrival[p][tile] = rc;
                out.makespan = std::max(out.makespan, rc + 1);
            }
            send_issue[p] = t;
            path_done[p] = true;
            for (int w : path_waiters[p])
                if (--deps_left[w] == 0)
                    push_node(w);
        }
    }

    check(scheduled == nn, "scheduler: not all nodes scheduled");
    for (int p = 0; p < np; p++)
        check(path_done[p], "scheduler: not all paths scheduled");

    for (auto &v : out.tiles)
        std::sort(v.begin(), v.end(),
                  [](const TileItem &a, const TileItem &b) {
                      return a.cycle < b.cycle;
                  });
    for (auto &v : out.switches)
        std::sort(v.begin(), v.end(),
                  [](const SwitchItem &a, const SwitchItem &b) {
                      if (a.cycle != b.cycle)
                          return a.cycle < b.cycle;
                      return a.path < b.path;
                  });
    out.tile_busy.assign(out.tiles.size(), 0);
    for (size_t t = 0; t < out.tiles.size(); t++)
        out.tile_busy[t] = static_cast<int64_t>(out.tiles[t].size());
    return out;
}

} // namespace raw
