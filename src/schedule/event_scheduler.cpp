#include "schedule/event_scheduler.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <queue>

#include "schedule/sched_internal.hpp"
#include "support/error.hpp"

namespace raw {

namespace {

// Dependence bookkeeping, priorities and reservation state live in
// schedule/sched_internal.hpp, shared with the modulo scheduler and
// the small-block oracle so all three agree on the resource model.
using sched::build_deps;
using sched::compute_priorities;
using sched::DepInfo;
using sched::Priorities;
using sched::SwRes;
using sched::topo_order;

/** One list-scheduling pass plus the timing it realized. */
struct PassResult
{
    BlockSchedule sched;
    std::vector<int64_t> finish, issue, send_issue;
    std::vector<std::map<int, int64_t>> arrival; // path -> tile->recv
};

/**
 * One greedy list-scheduling pass.  @p prio gives the priority of
 * every node (paths inherit their source node's); @p fifo ignores it
 * and serves tasks in global ready order.  @p trees_yx, when
 * non-null, enables per-path XY/YX route selection: the pass commits
 * whichever tree admits the earlier send slot (ties keep XY, so runs
 * without contention are unchanged).
 */
PassResult
run_pass(const TaskGraph &g, const Partition &part,
         const MachineConfig &m, const std::vector<CommPath> &paths,
         const std::vector<RouteTree> &trees_xy,
         const std::vector<RouteTree> *trees_yx,
         const std::vector<uint8_t> &yx_differs, const DepInfo &dep,
         const std::vector<int64_t> &prio, bool fifo)
{
    const int nn = static_cast<int>(g.nodes().size());
    const int np = static_cast<int>(paths.size());

    PassResult res;
    BlockSchedule &out = res.sched;
    out.tiles.assign(m.n_tiles, {});
    out.switches.assign(m.n_tiles, {});

    std::vector<int> deps_left = dep.deps_init;
    std::vector<bool> path_done(np, false);
    res.finish.assign(nn, 0);
    res.issue.assign(nn, 0);
    res.send_issue.assign(np, 0);
    res.arrival.assign(np, {});

    std::vector<std::vector<bool>> proc_busy(m.n_tiles);
    std::vector<std::map<int64_t, SwRes>> sw_res(m.n_tiles);

    auto proc_free = [&](int tile, int64_t t) {
        auto &v = proc_busy[tile];
        return t >= static_cast<int64_t>(v.size()) || !v[t];
    };
    auto proc_take = [&](int tile, int64_t t) {
        auto &v = proc_busy[tile];
        if (t >= static_cast<int64_t>(v.size()))
            v.resize(t + 1, false);
        check(!v[t], "scheduler: double-booked processor slot");
        v[t] = true;
    };

    // Ready queue: (priority, tie-break, kind 0=node 1=path, id).
    struct Task
    {
        int64_t prio;
        int64_t seq;
        int kind;
        int id;
        bool operator<(const Task &o) const
        {
            if (prio != o.prio)
                return prio < o.prio;
            if (seq != o.seq)
                return seq > o.seq;
            return id > o.id;
        }
    };
    std::priority_queue<Task> ready;
    int64_t seq = 0;
    int scheduled = 0;

    std::function<void(int)> complete_node;
    auto push_path = [&](int p) {
        int64_t pp = fifo ? -seq : prio[paths[p].src_node];
        ready.push({pp, seq++, 1, p});
    };
    auto push_node = [&](int v) {
        // In ready-FIFO mode a zero-cost import completes the moment
        // it becomes ready, so its paths (and the nodes they unlock)
        // enter the single global sequence right here instead of
        // after every task already in the queue — the queue round
        // trip would sequence all import-sourced communication after
        // all initially-ready nodes and skew the FIFO baseline.
        if (fifo && g.nodes()[v].kind == TGKind::kImport) {
            res.issue[v] = 0;
            res.finish[v] = 0;
            complete_node(v);
            return;
        }
        int64_t p = fifo ? -seq : prio[v];
        ready.push({p, seq++, 0, v});
    };
    complete_node = [&](int v) {
        scheduled++;
        for (int p : dep.paths_of_node[v])
            push_path(p);
        for (int w : dep.node_waiters[v])
            if (--deps_left[w] == 0)
                push_node(w);
    };

    for (int v = 0; v < nn; v++)
        if (deps_left[v] == 0)
            push_node(v);

    // Earliest start time of node v given its satisfied deps.
    auto ready_time = [&](int v) {
        int64_t t = 0;
        for (int e : dep.in_edges[v]) {
            const TGEdge &edge = g.edges()[e];
            int p = edge.from;
            bool same = part.tile_of[p] == part.tile_of[v];
            if (edge.kind == DepKind::kAnti) {
                if (!same)
                    continue;
                t = std::max(t, res.issue[p] + 1);
                if (g.nodes()[p].kind == TGKind::kImport)
                    for (int pp : dep.paths_of_node[p])
                        t = std::max(t, res.send_issue[pp] + 1);
                continue;
            }
            if (same) {
                t = std::max(t, res.finish[p]);
            } else {
                int path = dep.data_path_of_node[p];
                auto it = res.arrival[path].find(part.tile_of[v]);
                check(it != res.arrival[path].end(),
                      "scheduler: missing arrival");
                t = std::max(t, it->second + 1);
            }
        }
        return t;
    };

    // First cycle >= the path's ready time at which @p tree can run
    // start-to-finish without touching an occupied slot.
    auto find_slot = [&](const RouteTree &tree, int src_tile,
                         int64_t r) {
        int64_t t = r;
        for (;; t++) {
            check(t < r + 2000000,
                  "scheduler: no feasible slot for path");
            if (!proc_free(src_tile, t))
                continue;
            bool ok = true;
            for (const TreeHop &h : tree.hops) {
                auto it = sw_res[h.tile].find(t + 1 + h.depth);
                if (it == sw_res[h.tile].end())
                    continue;
                const SwRes &res2 = it->second;
                uint8_t in_bit = static_cast<uint8_t>(
                    1u << static_cast<int>(h.in));
                if ((res2.in_used & in_bit) ||
                    (res2.out_used & h.out_mask) ||
                    (h.to_reg && res2.reg_used)) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                for (auto &[tile, depth] : tree.proc_recvs) {
                    if (!proc_free(tile, t + 2 + depth)) {
                        ok = false;
                        break;
                    }
                }
            }
            if (ok)
                return t;
        }
    };

    while (!ready.empty()) {
        Task task = ready.top();
        ready.pop();
        if (task.kind == 0) {
            int v = task.id;
            const TGNode &nd = g.nodes()[v];
            if (nd.kind == TGKind::kImport) {
                res.issue[v] = 0;
                res.finish[v] = 0;
                complete_node(v);
                continue;
            }
            int tile = part.tile_of[v];
            int64_t t = ready_time(v);
            while (!proc_free(tile, t))
                t++;
            proc_take(tile, t);
            out.tiles[tile].push_back({t, TileItem::Kind::kCompute, v,
                                       kNoValue, -1});
            res.issue[v] = t;
            res.finish[v] = t + std::max(1, nd.cost);
            out.makespan = std::max(out.makespan, res.finish[v]);
            complete_node(v);
        } else {
            int p = task.id;
            const CommPath &path = paths[p];
            int src_tile = path.src_tile;
            int64_t r =
                std::max<int64_t>(res.finish[path.src_node], 0);

            const RouteTree *tree = &trees_xy[p];
            int64_t t = find_slot(*tree, src_tile, r);
            if (trees_yx && yx_differs[p]) {
                // Both orderings reach every destination at the same
                // depth, so the earlier send wins outright.
                int64_t t_yx =
                    find_slot((*trees_yx)[p], src_tile, r);
                if (t_yx < t) {
                    t = t_yx;
                    tree = &(*trees_yx)[p];
                }
            }

            // Commit.
            proc_take(src_tile, t);
            out.tiles[src_tile].push_back({t, TileItem::Kind::kSend,
                                           path.src_node, path.value,
                                           p});
            for (const TreeHop &h : tree->hops) {
                SwRes &swr = sw_res[h.tile][t + 1 + h.depth];
                swr.in_used |= static_cast<uint8_t>(
                    1u << static_cast<int>(h.in));
                swr.out_used |= h.out_mask;
                swr.reg_used = swr.reg_used || h.to_reg;
                out.switches[h.tile].push_back(
                    {t + 1 + h.depth, h.in, h.out_mask, h.to_reg,
                     path.value, p});
                out.makespan =
                    std::max(out.makespan, t + 2 + h.depth);
            }
            for (auto &[tile, depth] : tree->proc_recvs) {
                int64_t rc = t + 2 + depth;
                proc_take(tile, rc);
                out.tiles[tile].push_back(
                    {rc, TileItem::Kind::kRecv, -1, path.value, p});
                res.arrival[p][tile] = rc;
                out.makespan = std::max(out.makespan, rc + 1);
            }
            res.send_issue[p] = t;
            path_done[p] = true;
            for (int w : dep.path_waiters[p])
                if (--deps_left[w] == 0)
                    push_node(w);
        }
    }

    check(scheduled == nn, "scheduler: not all nodes scheduled");
    for (int p = 0; p < np; p++)
        check(path_done[p], "scheduler: not all paths scheduled");

    for (auto &v : out.tiles)
        std::sort(v.begin(), v.end(),
                  [](const TileItem &a, const TileItem &b) {
                      return a.cycle < b.cycle;
                  });
    for (auto &v : out.switches)
        std::sort(v.begin(), v.end(),
                  [](const SwitchItem &a, const SwitchItem &b) {
                      if (a.cycle != b.cycle)
                          return a.cycle < b.cycle;
                      return a.path < b.path;
                  });
    out.tile_busy.assign(out.tiles.size(), 0);
    for (size_t t = 0; t < out.tiles.size(); t++)
        out.tile_busy[t] = static_cast<int64_t>(out.tiles[t].size());
    return res;
}

/**
 * Priorities rebuilt from an achieved schedule.  Communication edge
 * weights are the *realized* producer-finish-to-consumer-ready
 * latencies — which include send serialization on the source
 * processor and ROUTE contention, not just hop distance — and each
 * node's total slack under those weights is subtracted, so ties
 * between equal realized levels break toward the tasks the achieved
 * schedule actually kept waiting.
 */
std::vector<int64_t>
realized_priorities(const TaskGraph &g, const Partition &part,
                    const MachineConfig &m,
                    const std::vector<CommPath> &paths,
                    const DepInfo &dep, const Priorities &stat,
                    const PassResult &pass, const SchedOptions &opts)
{
    (void)paths;
    const int n = static_cast<int>(g.nodes().size());
    std::vector<int> order = topo_order(g);

    // Realized latency of one edge (0 for same-tile / anti edges).
    auto comm_of = [&](const TGEdge &edge) -> int64_t {
        int p = edge.from, s = edge.to;
        if (edge.kind == DepKind::kAnti ||
            part.tile_of[p] == part.tile_of[s])
            return 0;
        int64_t est = 2 + m.distance(part.tile_of[p],
                                     part.tile_of[s]);
        int q = dep.data_path_of_node[p];
        if (q < 0)
            return est;
        auto it = pass.arrival[q].find(part.tile_of[s]);
        if (it == pass.arrival[q].end())
            return est;
        return std::max(est, it->second + 1 - pass.finish[p]);
    };

    std::vector<int64_t> level(n, 0), est(n, 0);
    for (int k = n; k-- > 0;) {
        int v = order[k];
        int64_t lvl = 0;
        for (int e : g.out_edges(v)) {
            const TGEdge &edge = g.edges()[e];
            lvl = std::max(lvl, comm_of(edge) + level[edge.to]);
        }
        level[v] = g.nodes()[v].cost + lvl;
    }
    for (int v : order) {
        for (int e : dep.in_edges[v]) {
            const TGEdge &edge = g.edges()[e];
            if (edge.kind == DepKind::kAnti)
                continue;
            int p = edge.from;
            est[v] = std::max(est[v], est[p] + g.nodes()[p].cost +
                                          comm_of(edge));
        }
    }
    int64_t span = 0;
    for (int v = 0; v < n; v++)
        span = std::max(span, est[v] + level[v]);

    std::vector<int64_t> prio(n, 0);
    for (int v = 0; v < n; v++) {
        int64_t slack = span - est[v] - level[v];
        prio[v] = level[v] * opts.level_weight +
                  stat.fert[v] * opts.fertility_weight - slack;
    }
    return prio;
}

} // namespace

BlockSchedule
schedule_block(const TaskGraph &g, const Partition &part,
               const MachineConfig &m,
               const std::vector<CommPath> &paths,
               const SchedOptions &opts)
{
    const int np = static_cast<int>(paths.size());

    std::vector<RouteTree> trees_xy;
    trees_xy.reserve(np);
    for (const CommPath &p : paths)
        trees_xy.push_back(build_route_tree(m, p));

    DepInfo dep = build_deps(g, part, paths);
    Priorities stat = compute_priorities(g, part, m);
    std::vector<int64_t> prio0(g.nodes().size(), 0);
    for (size_t v = 0; v < g.nodes().size(); v++)
        prio0[v] = stat.level[v] * opts.level_weight +
                   stat.fert[v] * opts.fertility_weight;

    // Pass 0 is the seed single greedy pass; with every optimization
    // flag off its schedule is returned untouched, and with them on
    // it is the floor no candidate may fall below (best-of-N).
    PassResult best = run_pass(g, part, m, paths, trees_xy, nullptr,
                               {}, dep, prio0, opts.fifo_priority);
    if (!opts.multi_pass())
        return std::move(best.sched);

    std::vector<RouteTree> trees_yx;
    std::vector<uint8_t> yx_differs;
    bool any_yx = false;
    if (opts.route_select) {
        trees_yx.reserve(np);
        yx_differs.assign(np, 0);
        for (int p = 0; p < np; p++) {
            trees_yx.push_back(
                build_route_tree(m, paths[p], RouteOrder::kYX));
            yx_differs[p] =
                !same_route_tree(trees_xy[p], trees_yx[p]);
            any_yx = any_yx || yx_differs[p];
        }
    }
    const std::vector<RouteTree> *yx =
        any_yx ? &trees_yx : nullptr;

    auto consider = [&](PassResult &&cand) {
        if (cand.sched.makespan < best.sched.makespan)
            best = std::move(cand);
    };

    PassResult last = run_pass(g, part, m, paths, trees_xy, yx, yx_differs,
                               dep, prio0, opts.fifo_priority);
    // run_pass with yx == nullptr and the same inputs would repeat
    // pass 0 exactly; only evaluate the route-select candidate when
    // some path actually has a distinct YX tree.
    if (yx) {
        PassResult copy = last; // feedback source for iteration 1
        consider(std::move(copy));
    }
    for (int it = 0; it < opts.sched_iters; it++) {
        std::vector<int64_t> prio = realized_priorities(
            g, part, m, paths, dep, stat, last, opts);
        last = run_pass(g, part, m, paths, trees_xy, yx, yx_differs,
                        dep, prio, false);
        PassResult copy = last;
        consider(std::move(copy));
    }
    return std::move(best.sched);
}

} // namespace raw
