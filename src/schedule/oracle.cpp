#include "schedule/oracle.hpp"

#include <algorithm>
#include <climits>
#include <map>

#include "schedule/sched_internal.hpp"
#include "support/error.hpp"

namespace raw {

namespace {

using sched::build_deps;
using sched::DepInfo;
using sched::SwRes;

/** Mutable search state: the partial schedule's timing + resources. */
struct OState
{
    std::vector<int> deps_left;
    std::vector<uint8_t> node_done;
    std::vector<uint8_t> path_done;
    std::vector<int64_t> finish, issue, send_issue;
    std::vector<std::map<int, int64_t>> arrival;
    std::vector<std::vector<bool>> proc_busy;
    std::vector<std::map<int64_t, SwRes>> sw_res;
    int64_t makespan = 0;
    int placed = 0;
};

struct Searcher
{
    const TaskGraph &g;
    const Partition &part;
    const MachineConfig &m;
    const std::vector<CommPath> &paths;
    const DepInfo &dep;
    std::vector<RouteTree> trees;
    int total = 0; // branchable tasks
    int64_t budget = 0;
    int64_t states = 0;
    int64_t best = INT64_MAX;
    bool exhausted_budget = false;

    bool proc_free(const OState &s, int tile, int64_t t) const
    {
        auto &v = s.proc_busy[tile];
        return t >= static_cast<int64_t>(v.size()) || !v[t];
    }
    void proc_take(OState &s, int tile, int64_t t) const
    {
        auto &v = s.proc_busy[tile];
        if (t >= static_cast<int64_t>(v.size()))
            v.resize(t + 1, false);
        check(!v[t], "oracle: double-booked processor slot");
        v[t] = true;
    }

    /** run_pass's ready-time rule, verbatim. */
    int64_t ready_time(const OState &s, int v) const
    {
        int64_t t = 0;
        for (int e : dep.in_edges[v]) {
            const TGEdge &edge = g.edges()[e];
            int p = edge.from;
            bool same = part.tile_of[p] == part.tile_of[v];
            if (edge.kind == DepKind::kAnti) {
                if (!same)
                    continue;
                t = std::max(t, s.issue[p] + 1);
                if (g.nodes()[p].kind == TGKind::kImport)
                    for (int pp : dep.paths_of_node[p])
                        t = std::max(t, s.send_issue[pp] + 1);
                continue;
            }
            if (same) {
                t = std::max(t, s.finish[p]);
            } else {
                int path = dep.data_path_of_node[p];
                auto it = s.arrival[path].find(part.tile_of[v]);
                check(it != s.arrival[path].end(),
                      "oracle: missing arrival");
                t = std::max(t, it->second + 1);
            }
        }
        return t;
    }

    /** run_pass's find_slot, verbatim (XY tree). */
    int64_t find_slot(const OState &s, const RouteTree &tree,
                      int src_tile, int64_t r) const
    {
        int64_t t = r;
        for (;; t++) {
            check(t < r + 2000000, "oracle: no feasible slot");
            if (!proc_free(s, src_tile, t))
                continue;
            bool ok = true;
            for (const TreeHop &h : tree.hops) {
                auto it = s.sw_res[h.tile].find(t + 1 + h.depth);
                if (it == s.sw_res[h.tile].end())
                    continue;
                const SwRes &res2 = it->second;
                uint8_t in_bit = static_cast<uint8_t>(
                    1u << static_cast<int>(h.in));
                if ((res2.in_used & in_bit) ||
                    (res2.out_used & h.out_mask) ||
                    (h.to_reg && res2.reg_used)) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                for (auto &[tile, depth] : tree.proc_recvs) {
                    if (!proc_free(s, tile, t + 2 + depth)) {
                        ok = false;
                        break;
                    }
                }
            }
            if (ok)
                return t;
        }
    }

    /** Complete a node: imports cascade (they are free and instant). */
    void complete_node(OState &s, int v) const
    {
        s.node_done[v] = 1;
        for (int w : dep.node_waiters[v]) {
            if (--s.deps_left[w] == 0 &&
                g.nodes()[w].kind == TGKind::kImport) {
                s.issue[w] = 0;
                s.finish[w] = 0;
                complete_node(s, w);
            }
        }
    }

    /** Settle every dependence-free import up front. */
    void settle_imports(OState &s) const
    {
        const int nn = static_cast<int>(g.nodes().size());
        for (int v = 0; v < nn; v++)
            if (g.nodes()[v].kind == TGKind::kImport &&
                s.deps_left[v] == 0 && !s.node_done[v]) {
                s.issue[v] = 0;
                s.finish[v] = 0;
                complete_node(s, v);
            }
    }

    void place_node(OState &s, int v) const
    {
        int tile = part.tile_of[v];
        int64_t t = ready_time(s, v);
        while (!proc_free(s, tile, t))
            t++;
        proc_take(s, tile, t);
        s.issue[v] = t;
        s.finish[v] = t + std::max(1, g.nodes()[v].cost);
        s.makespan = std::max(s.makespan, s.finish[v]);
        s.placed++;
        complete_node(s, v);
    }

    void place_path(OState &s, int p) const
    {
        const CommPath &path = paths[p];
        const RouteTree &tree = trees[p];
        int64_t r = std::max<int64_t>(s.finish[path.src_node], 0);
        int64_t t = find_slot(s, tree, path.src_tile, r);
        proc_take(s, path.src_tile, t);
        for (const TreeHop &h : tree.hops) {
            SwRes &swr = s.sw_res[h.tile][t + 1 + h.depth];
            swr.in_used |= static_cast<uint8_t>(
                1u << static_cast<int>(h.in));
            swr.out_used |= h.out_mask;
            swr.reg_used = swr.reg_used || h.to_reg;
            s.makespan = std::max(s.makespan, t + 2 + h.depth);
        }
        for (auto &[tile, depth] : tree.proc_recvs) {
            int64_t rc = t + 2 + depth;
            proc_take(s, tile, rc);
            s.arrival[p][tile] = rc;
            s.makespan = std::max(s.makespan, rc + 1);
        }
        s.send_issue[p] = t;
        s.path_done[p] = 1;
        s.placed++;
        for (int w : dep.path_waiters[p])
            s.deps_left[w]--;
    }

    void dfs(const OState &s)
    {
        if (states++ >= budget) {
            exhausted_budget = true;
            return;
        }
        if (s.placed == total) {
            best = std::min(best, s.makespan);
            return;
        }
        const int nn = static_cast<int>(g.nodes().size());
        const int np = static_cast<int>(paths.size());
        // Branch on every ready task, deterministic order.  The
        // partial makespan only grows, so >= best prunes safely.
        for (int v = 0; v < nn; v++) {
            if (s.node_done[v] || s.deps_left[v] != 0 ||
                g.nodes()[v].kind != TGKind::kInstr)
                continue;
            OState next = s;
            place_node(next, v);
            if (next.makespan < best)
                dfs(next);
            if (exhausted_budget)
                return;
        }
        for (int p = 0; p < np; p++) {
            if (s.path_done[p] ||
                !s.node_done[paths[p].src_node])
                continue;
            OState next = s;
            place_path(next, p);
            if (next.makespan < best)
                dfs(next);
            if (exhausted_budget)
                return;
        }
    }
};

} // namespace

bool
oracle_search(const TaskGraph &g, const Partition &part,
              const MachineConfig &m,
              const std::vector<CommPath> &paths, int64_t budget,
              OracleReport &out)
{
    if (budget <= 0)
        return false;
    const int nn = static_cast<int>(g.nodes().size());
    const int np = static_cast<int>(paths.size());
    int total = np;
    for (int v = 0; v < nn; v++)
        if (g.nodes()[v].kind == TGKind::kInstr)
            total++;
    if (total == 0 || total > kOracleTaskLimit)
        return false;

    DepInfo dep = build_deps(g, part, paths);
    Searcher se{g, part, m, paths, dep, {}, total, budget};
    se.trees.reserve(np);
    for (const CommPath &p : paths)
        se.trees.push_back(build_route_tree(m, p));

    // Incumbent: the single-pass greedy schedule (multi-pass options
    // off), which uses exactly these placement rules, so its ordering
    // is one leaf of the search tree below.
    SchedOptions plain;
    BlockSchedule greedy = schedule_block(g, part, m, paths, plain);
    se.best = greedy.makespan;

    OState s0;
    s0.deps_left = dep.deps_init;
    s0.node_done.assign(nn, 0);
    s0.path_done.assign(np, 0);
    s0.finish.assign(nn, 0);
    s0.issue.assign(nn, 0);
    s0.send_issue.assign(np, 0);
    s0.arrival.assign(np, {});
    s0.proc_busy.assign(m.n_tiles, {});
    s0.sw_res.assign(m.n_tiles, {});
    se.settle_imports(s0);
    se.dfs(s0);

    out.tasks = total;
    out.greedy_makespan = greedy.makespan;
    out.best_makespan = std::min<int64_t>(se.best, greedy.makespan);
    out.proved_optimal = !se.exhausted_budget;
    out.states = se.states;
    return true;
}

} // namespace raw
