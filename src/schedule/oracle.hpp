#ifndef RAW_SCHEDULE_ORACLE_HPP
#define RAW_SCHEDULE_ORACLE_HPP

/**
 * @file
 * Small-block optimal scheduling oracle (--oracle-budget).
 *
 * Budget-capped branch-and-bound over ready-task orderings: at every
 * step the search branches on which ready task (compute node or
 * communication path) to commit next and places it with exactly the
 * greedy list scheduler's placement rules (earliest free processor
 * slot; earliest start-to-finish-free slot along the XY route tree).
 * The greedy pass's own ordering is one leaf of this tree, so the
 * incumbent — seeded with the single-pass greedy makespan — can only
 * improve: best <= greedy always, and when the search exhausts the
 * tree within budget the result is the optimal makespan over all
 * list schedules under the shared resource model.
 *
 * The oracle is reporting-only: it never changes the emitted
 * schedule.  Its per-block greedy-vs-optimal gap feeds the scheduler
 * quality benchmark (BENCH_schedquality.json) as a measure of how
 * much the greedy heuristic leaves on the table for small blocks.
 */

#include <cstdint>
#include <vector>

#include "schedule/event_scheduler.hpp"

namespace raw {

/** Blocks with more branchable tasks than this are not searched. */
constexpr int kOracleTaskLimit = 12;

/** Result of the oracle search on one block. */
struct OracleReport
{
    /** Block id (filled by the orchestrater). */
    int block = -1;
    /** Branchable tasks: compute nodes plus communication paths. */
    int tasks = 0;
    /** Makespan of the single-pass greedy ordering (the incumbent). */
    int64_t greedy_makespan = 0;
    /** Best makespan found; <= greedy_makespan by construction. */
    int64_t best_makespan = 0;
    /** The search tree was exhausted within budget: best is optimal. */
    bool proved_optimal = false;
    /** Search states expanded. */
    int64_t states = 0;
};

/**
 * Run the oracle on one block.  Returns false without a report when
 * the block exceeds kOracleTaskLimit or @p budget is <= 0.
 */
bool oracle_search(const TaskGraph &g, const Partition &part,
                   const MachineConfig &m,
                   const std::vector<CommPath> &paths, int64_t budget,
                   OracleReport &out);

} // namespace raw

#endif // RAW_SCHEDULE_ORACLE_HPP
