#include "schedule/modulo.hpp"

#include <algorithm>
#include <climits>
#include <functional>
#include <map>
#include <queue>

#include "schedule/sched_internal.hpp"
#include "support/error.hpp"
#include "transform/rename.hpp"

namespace raw {

namespace {

using sched::build_deps;
using sched::compute_priorities;
using sched::DepInfo;
using sched::Priorities;
using sched::SwRes;
using sched::topo_order;

/** Recurrence-chain nodes outrank everything else in the ready queue
 *  (well above any level/fertility combination). */
constexpr int64_t kWrapBoost = int64_t{1} << 32;
/** Linear II probes before the search step starts growing. */
constexpr int kLinearProbes = 12;
/** Total II probes per block. */
constexpr int kMaxProbes = 24;
/** Per-task slot-search span before a probe is declared infeasible. */
constexpr int64_t kSlotSearchPad = 1024;
/** Window-release retries per II probe (see WindowBlame). */
constexpr int kWindowRetries = 12;
/** Skip the O(nodes * edges) flat span bound on oversized blocks. */
constexpr int kFlatBoundNodeCap = 4000;

} // namespace

std::vector<uint8_t>
loop_blocks(const Function &fn)
{
    const int nb = static_cast<int>(fn.blocks.size());
    std::vector<std::vector<int>> succs(nb);
    for (int b = 0; b < nb; b++)
        succs[b] = fn.blocks[b].successors();
    std::vector<uint8_t> on_cycle(nb, 0);
    std::vector<uint8_t> seen;
    for (int b = 0; b < nb; b++) {
        // b lies on a cycle iff b is reachable from a successor of b.
        seen.assign(nb, 0);
        std::vector<int> stack(succs[b]);
        while (!stack.empty()) {
            int v = stack.back();
            stack.pop_back();
            if (v == b) {
                on_cycle[b] = 1;
                break;
            }
            if (seen[v])
                continue;
            seen[v] = 1;
            for (int s : succs[v])
                stack.push_back(s);
        }
    }
    return on_cycle;
}

LoopPipelineInfo
analyze_loop_block(const Function &fn, int b, const TaskGraph &g,
                   bool on_cycle, int tail_len, bool any_switch_active)
{
    LoopPipelineInfo info;
    info.loop_block = on_cycle;
    // Every tile replays the control tail and then its terminator's
    // taken-path slot; active switches mirror that on their streams.
    info.proc_tail = tail_len + 1;
    info.sw_tail = tail_len + 1;
    info.any_switch_active = any_switch_active;
    if (!on_cycle)
        return info;

    const Block &blk = fn.blocks[b];
    const int nn = static_cast<int>(g.nodes().size());
    for (int i = 0; i < nn; i++) {
        const TGNode &imp = g.nodes()[i];
        if (imp.kind != TGKind::kImport)
            continue;
        for (int j = 0; j < nn; j++) {
            const TGNode &nd = g.nodes()[j];
            if (nd.kind != TGKind::kInstr)
                continue;
            const Instr &in = blk.instrs[nd.instr];
            if (in.dst == imp.var && is_writeback(fn, in)) {
                info.wraps.push_back({i, j});
                break;
            }
        }
    }
    return info;
}

MiiBounds
modulo_mii(const TaskGraph &g, const Partition &part,
           const MachineConfig &m, const std::vector<CommPath> &paths,
           const LoopPipelineInfo &loop)
{
    MiiBounds b;
    const int nn = static_cast<int>(g.nodes().size());

    // ---- Resource bound: busiest stream's slot count + its tail.
    std::vector<int64_t> proc_slots(m.n_tiles, 0);
    std::vector<int64_t> sw_slots(m.n_tiles, 0);
    for (int v = 0; v < nn; v++)
        if (g.nodes()[v].kind == TGKind::kInstr)
            proc_slots[part.tile_of[v]]++;
    for (const CommPath &p : paths) {
        RouteTree tree = build_route_tree(m, p);
        proc_slots[p.src_tile]++; // the send
        for (const TreeHop &h : tree.hops)
            sw_slots[h.tile]++;
        for (auto &[tile, depth] : tree.proc_recvs) {
            (void)depth;
            proc_slots[tile]++;
        }
    }
    int64_t busiest_proc = 0, busiest_sw = 0;
    for (int t = 0; t < m.n_tiles; t++) {
        busiest_proc = std::max(busiest_proc, proc_slots[t]);
        busiest_sw = std::max(busiest_sw, sw_slots[t]);
    }
    b.res_mii = loop.proc_tail + busiest_proc;
    if (loop.any_switch_active)
        b.res_mii =
            std::max<int64_t>(b.res_mii, loop.sw_tail + busiest_sw);
    b.res_mii = std::max<int64_t>(b.res_mii, 1);

    // ---- Dependence-distance bounds.  Both use the scheduler's own
    // minimum delays: producer latency, plus 2+distance per cross-
    // tile hop, plus the issue-after-read rule for same-tile antis.
    std::vector<int> order = topo_order(g);
    std::vector<int64_t> dist;
    auto longest_from = [&](int src) {
        dist.assign(nn, INT64_MIN);
        dist[src] = 0;
        for (int v : order) {
            if (dist[v] == INT64_MIN)
                continue;
            for (int e : g.out_edges(v)) {
                const TGEdge &edge = g.edges()[e];
                int s = edge.to;
                bool same = part.tile_of[v] == part.tile_of[s];
                int64_t w;
                if (edge.kind == DepKind::kAnti) {
                    if (!same)
                        continue;
                    w = 1; // consumer issues after the read
                } else {
                    w = std::max(1, g.nodes()[v].cost);
                    if (g.nodes()[v].kind == TGKind::kImport)
                        w = 0;
                    if (!same)
                        w += 2 + m.distance(part.tile_of[v],
                                            part.tile_of[s]);
                }
                dist[s] = std::max(dist[s], dist[v] + w);
            }
        }
    };

    // Recurrence bound: longest import -> write-back chain.
    for (auto &[imp, wb] : loop.wraps) {
        longest_from(imp);
        if (dist[wb] != INT64_MIN)
            b.rec_mii = std::max(
                b.rec_mii,
                dist[wb] + std::max(1, g.nodes()[wb].cost));
    }

    // Flat-emission span bound (see MiiBounds::flat_mii): a chain
    // that leaves a tile and returns to it pins the issue distance
    // between the tile's ops, and the replay window must cover both.
    if (nn <= kFlatBoundNodeCap) {
        for (int u = 0; u < nn; u++) {
            if (g.nodes()[u].kind != TGKind::kInstr)
                continue;
            longest_from(u);
            int tile = part.tile_of[u];
            for (int v = 0; v < nn; v++)
                if (dist[v] > 0 && part.tile_of[v] == tile &&
                    g.nodes()[v].kind == TGKind::kInstr)
                    b.flat_mii = std::max(
                        b.flat_mii, dist[v] + 1 + loop.proc_tail);
        }
    }
    return b;
}

namespace {

/** Per-node timing recovered from a committed schedule. */
struct ScheduleTimes
{
    std::vector<int64_t> issue, finish; // per node (imports: 0)
    std::vector<int64_t> send_issue;    // per path (-1 if absent)
};

ScheduleTimes
recover_times(const BlockSchedule &s, const TaskGraph &g,
              const std::vector<CommPath> &paths)
{
    ScheduleTimes tm;
    const int nn = static_cast<int>(g.nodes().size());
    tm.issue.assign(nn, 0);
    tm.finish.assign(nn, 0);
    tm.send_issue.assign(paths.size(), -1);
    for (const auto &tile : s.tiles) {
        for (const TileItem &it : tile) {
            if (it.kind == TileItem::Kind::kCompute) {
                tm.issue[it.node] = it.cycle;
                tm.finish[it.node] =
                    it.cycle + std::max(1, g.nodes()[it.node].cost);
            } else if (it.kind == TileItem::Kind::kSend) {
                tm.send_issue[it.path] = it.cycle;
            }
        }
    }
    return tm;
}

/**
 * First read of an import's live-in register: the earliest of its
 * paths' sends and its same-tile data consumers' issues.  INT64_MAX
 * when nothing reads the register (wrap imposes no constraint).
 */
int64_t
first_read_of(int imp, const TaskGraph &g, const Partition &part,
              const DepInfo &dep, const ScheduleTimes &tm)
{
    int64_t first = INT64_MAX;
    for (int p : dep.paths_of_node[imp])
        if (tm.send_issue[p] >= 0)
            first = std::min(first, tm.send_issue[p]);
    for (int e : g.out_edges(imp)) {
        const TGEdge &edge = g.edges()[e];
        if (edge.kind != DepKind::kData)
            continue;
        if (part.tile_of[imp] == part.tile_of[edge.to])
            first = std::min(first, tm.issue[edge.to]);
    }
    return first;
}

} // namespace

int64_t
steady_state_ii(const BlockSchedule &s, const TaskGraph &g,
                const Partition &part,
                const std::vector<CommPath> &paths,
                const LoopPipelineInfo &loop)
{
    // Window terms: every stream must replay II cycles after its
    // previous activation, so each contributes span + tail.
    int64_t ii = loop.proc_tail; // empty tiles still run the tail
    for (const auto &tile : s.tiles) {
        if (tile.empty())
            continue;
        int64_t span = tile.back().cycle - tile.front().cycle + 1;
        ii = std::max(ii, span + loop.proc_tail);
    }
    if (loop.any_switch_active) {
        ii = std::max<int64_t>(ii, loop.sw_tail);
        for (const auto &sw : s.switches) {
            if (sw.empty())
                continue;
            // Same-cycle hops of different paths are separate ROUTE
            // instructions (one issue slot each), so the stream
            // length binds the period even when the flat span is
            // shorter.
            int64_t span =
                std::max(sw.back().cycle - sw.front().cycle + 1,
                         static_cast<int64_t>(sw.size()));
            ii = std::max(ii, span + loop.sw_tail);
        }
    }

    // Wrap terms: the write-back must land no more than II cycles
    // after the next iteration's first read of the live-in value.
    DepInfo dep = build_deps(g, part, paths);
    ScheduleTimes tm = recover_times(s, g, paths);
    for (auto &[imp, wb] : loop.wraps) {
        int64_t first = first_read_of(imp, g, part, dep, tm);
        if (first == INT64_MAX)
            continue;
        ii = std::max(ii, tm.finish[wb] - first);
    }
    return std::max<int64_t>(ii, 1);
}

namespace {

/**
 * Why a window pass failed: stream kind (processor or switch), the
 * stream's tile, and the cycle the unplaceable op needed.  The caller
 * converts this into a release — the earliest cycle the pass may use
 * on that stream — pushing the stream's early ops later so its span
 * can cover the failing op on the next retry.  kind -1 means the
 * failure was not a window violation (nothing to release; give up on
 * this II).
 */
struct WindowBlame
{
    int kind = -1; // 0 = processor stream, 1 = switch stream
    int tile = 0;
    int64_t cycle = 0;
};

/**
 * One window-constrained list-scheduling pass at initiation interval
 * @p ii.  The placement rules are run_pass's (event_scheduler.cpp)
 * with one addition: every processor slot, switch ROUTE slot and
 * receive must keep its stream's occupied window within ii minus the
 * stream's control tail, and no op may land before its stream's
 * release cycle (@p rel_proc / @p rel_sw).  Returns false when some
 * task cannot be placed inside its window or a wrap constraint ends
 * up violated — @p blame then identifies the stream to release, and
 * the caller retries or moves to the next ii.
 */
bool
run_modulo_pass(const TaskGraph &g, const Partition &part,
                const MachineConfig &m,
                const std::vector<CommPath> &paths,
                const std::vector<RouteTree> &trees, const DepInfo &dep,
                const std::vector<int64_t> &prio, int64_t ii,
                const LoopPipelineInfo &loop,
                const std::vector<int64_t> &rel_proc,
                const std::vector<int64_t> &rel_sw, BlockSchedule &out,
                WindowBlame &blame)
{
    const int nn = static_cast<int>(g.nodes().size());
    const int np = static_cast<int>(paths.size());
    const int64_t proc_limit = ii - loop.proc_tail;
    const int64_t sw_limit = ii - loop.sw_tail;
    blame = WindowBlame{};
    if (proc_limit <= 0 || (loop.any_switch_active && sw_limit <= 0))
        return false;

    out = BlockSchedule{};
    out.tiles.assign(m.n_tiles, {});
    out.switches.assign(m.n_tiles, {});

    std::vector<int> deps_left = dep.deps_init;
    std::vector<int64_t> finish(nn, 0), issue(nn, 0);
    std::vector<int64_t> send_issue(np, 0);
    std::vector<std::map<int, int64_t>> arrival(np);

    std::vector<std::vector<bool>> proc_busy(m.n_tiles);
    std::vector<std::map<int64_t, SwRes>> sw_res(m.n_tiles);
    std::vector<int64_t> proc_lo(m.n_tiles, INT64_MAX);
    std::vector<int64_t> proc_hi(m.n_tiles, INT64_MIN);
    std::vector<int64_t> sw_lo(m.n_tiles, INT64_MAX);
    std::vector<int64_t> sw_hi(m.n_tiles, INT64_MIN);

    auto proc_free = [&](int tile, int64_t t) {
        auto &v = proc_busy[tile];
        return t >= static_cast<int64_t>(v.size()) || !v[t];
    };
    auto proc_take = [&](int tile, int64_t t) {
        auto &v = proc_busy[tile];
        if (t >= static_cast<int64_t>(v.size()))
            v.resize(t + 1, false);
        check(!v[t], "modulo: double-booked processor slot");
        v[t] = true;
        proc_lo[tile] = std::min(proc_lo[tile], t);
        proc_hi[tile] = std::max(proc_hi[tile], t);
    };
    auto proc_adm = [&](int tile, int64_t t) {
        return std::max(proc_hi[tile], t) -
                   std::min(proc_lo[tile], t) <
               proc_limit;
    };
    auto sw_adm = [&](int sw, int64_t t) {
        return std::max(sw_hi[sw], t) - std::min(sw_lo[sw], t) <
               sw_limit;
    };

    struct Task
    {
        int64_t prio;
        int64_t seq;
        int kind;
        int id;
        bool operator<(const Task &o) const
        {
            if (prio != o.prio)
                return prio < o.prio;
            if (seq != o.seq)
                return seq > o.seq;
            return id > o.id;
        }
    };
    std::priority_queue<Task> ready;
    int64_t seq = 0;
    int scheduled = 0;

    std::function<void(int)> complete_node;
    auto push_path = [&](int p) {
        ready.push({prio[paths[p].src_node], seq++, 1, p});
    };
    auto push_node = [&](int v) { ready.push({prio[v], seq++, 0, v}); };
    complete_node = [&](int v) {
        scheduled++;
        for (int p : dep.paths_of_node[v])
            push_path(p);
        for (int w : dep.node_waiters[v])
            if (--deps_left[w] == 0)
                push_node(w);
    };
    for (int v = 0; v < nn; v++)
        if (deps_left[v] == 0)
            push_node(v);

    auto ready_time = [&](int v) {
        int64_t t = 0;
        for (int e : dep.in_edges[v]) {
            const TGEdge &edge = g.edges()[e];
            int p = edge.from;
            bool same = part.tile_of[p] == part.tile_of[v];
            if (edge.kind == DepKind::kAnti) {
                if (!same)
                    continue;
                t = std::max(t, issue[p] + 1);
                if (g.nodes()[p].kind == TGKind::kImport)
                    for (int pp : dep.paths_of_node[p])
                        t = std::max(t, send_issue[pp] + 1);
                continue;
            }
            if (same) {
                t = std::max(t, finish[p]);
            } else {
                int path = dep.data_path_of_node[p];
                auto it = arrival[path].find(part.tile_of[v]);
                check(it != arrival[path].end(),
                      "modulo: missing arrival");
                t = std::max(t, it->second + 1);
            }
        }
        return t;
    };

    const int64_t pad = 4 * ii + kSlotSearchPad;

    while (!ready.empty()) {
        Task task = ready.top();
        ready.pop();
        if (task.kind == 0) {
            int v = task.id;
            const TGNode &nd = g.nodes()[v];
            if (nd.kind == TGKind::kImport) {
                issue[v] = 0;
                finish[v] = 0;
                complete_node(v);
                continue;
            }
            int tile = part.tile_of[v];
            int64_t r = ready_time(v);
            int64_t t0 = std::max(r, rel_proc[tile]);
            int64_t t = t0;
            for (;; t++) {
                if (t > t0 + pad)
                    return false;
                if (!proc_free(tile, t))
                    continue;
                if (proc_adm(tile, t))
                    break;
                // Past the window's low edge the span only grows
                // with t: this task cannot fit at this ii unless the
                // tile's early ops move later.
                if (t >= proc_lo[tile]) {
                    blame = {0, tile, t};
                    return false;
                }
            }
            proc_take(tile, t);
            out.tiles[tile].push_back({t, TileItem::Kind::kCompute, v,
                                       kNoValue, -1});
            issue[v] = t;
            finish[v] = t + std::max(1, nd.cost);
            out.makespan = std::max(out.makespan, finish[v]);
            complete_node(v);
        } else {
            int p = task.id;
            const CommPath &path = paths[p];
            const RouteTree &tree = trees[p];
            int src_tile = path.src_tile;
            int64_t r = std::max<int64_t>(finish[path.src_node], 0);
            int64_t t0 = std::max(r, rel_proc[src_tile]);
            int64_t t = t0;
            bool placed = false;
            for (; t <= t0 + pad; t++) {
                if (proc_free(src_tile, t) &&
                    !proc_adm(src_tile, t) && t >= proc_lo[src_tile]) {
                    // Monotone: larger t only widens the span.
                    blame = {0, src_tile, t};
                    return false;
                }
                if (!proc_free(src_tile, t) || !proc_adm(src_tile, t))
                    continue;
                bool ok = true;
                for (const TreeHop &h : tree.hops) {
                    int64_t c = t + 1 + h.depth;
                    if (!sw_adm(h.tile, c)) {
                        if (c >= sw_lo[h.tile]) {
                            blame = {1, h.tile, c};
                            return false;
                        }
                        ok = false;
                        break;
                    }
                    if (c < rel_sw[h.tile]) {
                        ok = false;
                        break;
                    }
                    auto it = sw_res[h.tile].find(c);
                    if (it == sw_res[h.tile].end())
                        continue;
                    const SwRes &res2 = it->second;
                    uint8_t in_bit = static_cast<uint8_t>(
                        1u << static_cast<int>(h.in));
                    if ((res2.in_used & in_bit) ||
                        (res2.out_used & h.out_mask) ||
                        (h.to_reg && res2.reg_used)) {
                        ok = false;
                        break;
                    }
                }
                if (ok) {
                    for (auto &[tile, depth] : tree.proc_recvs) {
                        int64_t c = t + 2 + depth;
                        if (proc_free(tile, c) && !proc_adm(tile, c) &&
                            c >= proc_lo[tile]) {
                            blame = {0, tile, c};
                            return false;
                        }
                        if (!proc_free(tile, c) ||
                            !proc_adm(tile, c) ||
                            c < rel_proc[tile]) {
                            ok = false;
                            break;
                        }
                    }
                }
                if (ok) {
                    placed = true;
                    break;
                }
            }
            if (!placed)
                return false;

            proc_take(src_tile, t);
            out.tiles[src_tile].push_back({t, TileItem::Kind::kSend,
                                           path.src_node, path.value,
                                           p});
            for (const TreeHop &h : tree.hops) {
                int64_t c = t + 1 + h.depth;
                SwRes &swr = sw_res[h.tile][c];
                swr.in_used |= static_cast<uint8_t>(
                    1u << static_cast<int>(h.in));
                swr.out_used |= h.out_mask;
                swr.reg_used = swr.reg_used || h.to_reg;
                sw_lo[h.tile] = std::min(sw_lo[h.tile], c);
                sw_hi[h.tile] = std::max(sw_hi[h.tile], c);
                out.switches[h.tile].push_back(
                    {c, h.in, h.out_mask, h.to_reg, path.value, p});
                out.makespan = std::max(out.makespan, c + 1);
            }
            for (auto &[tile, depth] : tree.proc_recvs) {
                int64_t rc = t + 2 + depth;
                proc_take(tile, rc);
                out.tiles[tile].push_back(
                    {rc, TileItem::Kind::kRecv, -1, path.value, p});
                arrival[p][tile] = rc;
                out.makespan = std::max(out.makespan, rc + 1);
            }
            send_issue[p] = t;
            for (int w : dep.path_waiters[p])
                if (--deps_left[w] == 0)
                    push_node(w);
        }
    }
    check(scheduled == nn, "modulo: not all nodes scheduled");

    // Wrap constraints under the committed timing.
    for (auto &[imp, wb] : loop.wraps) {
        int64_t first = INT64_MAX;
        for (int p : dep.paths_of_node[imp])
            first = std::min(first, send_issue[p]);
        for (int e : g.out_edges(imp)) {
            const TGEdge &edge = g.edges()[e];
            if (edge.kind != DepKind::kData)
                continue;
            if (part.tile_of[imp] == part.tile_of[edge.to])
                first = std::min(first, issue[edge.to]);
        }
        if (first != INT64_MAX && finish[wb] > first + ii)
            return false;
    }

    for (auto &v : out.tiles)
        std::sort(v.begin(), v.end(),
                  [](const TileItem &a, const TileItem &b) {
                      return a.cycle < b.cycle;
                  });
    for (auto &v : out.switches)
        std::sort(v.begin(), v.end(),
                  [](const SwitchItem &a, const SwitchItem &b) {
                      if (a.cycle != b.cycle)
                          return a.cycle < b.cycle;
                      return a.path < b.path;
                  });
    out.tile_busy.assign(out.tiles.size(), 0);
    for (size_t t = 0; t < out.tiles.size(); t++)
        out.tile_busy[t] = static_cast<int64_t>(out.tiles[t].size());
    return true;
}

/** Fixpoint rounds before retiming gives up (defensive; 2-3 used). */
constexpr int kRetimeRounds = 64;

/**
 * ALAP retiming of a committed schedule: keep every stream's item
 * order and its last item's cycle, and push every other event as
 * late as the dependence rules allow.  Raising each stream's first
 * cycle without moving its last shrinks the stream's replay window —
 * exactly the steady-state II terms — while the flat makespan stays
 * put.  Unlike the window-constrained pass this cannot fail to
 * converge by chasing violations: it is a one-shot difference-
 * constraint relaxation over the already-feasible greedy schedule.
 *
 * Variables are compute issues and path send issues; switch hops and
 * receives keep their rigid offsets from the send (the route stays
 * contiguous).  Constraints are the scheduler's own minimum delays
 * (ready_time/find_slot rules), per-stream program order, and
 * strict ordering between switch items sharing a port (so the
 * retimed streams stay conflict-free).  Returns false if anything
 * fails validation; the caller then keeps the input schedule.
 */
bool
retime_late(const BlockSchedule &in, const TaskGraph &g,
            const Partition &part, const std::vector<CommPath> &paths,
            const std::vector<RouteTree> &trees, const DepInfo &dep,
            BlockSchedule &out)
{
    const int nn = static_cast<int>(g.nodes().size());
    const int np = static_cast<int>(paths.size());
    const int64_t kInf = INT64_MAX / 4;
    ScheduleTimes tm = recover_times(in, g, paths);

    auto committed = [&](int var) {
        return var < nn ? tm.issue[var] : tm.send_issue[var - nn];
    };

    struct Con
    {
        int a, b;  // X_a <= X_b + k
        int64_t k;
    };
    std::vector<Con> cons;

    // The scheduler's minimum delays (mirrors ready_time).
    for (int v = 0; v < nn; v++) {
        if (g.nodes()[v].kind != TGKind::kInstr)
            continue;
        for (int e : dep.in_edges[v]) {
            const TGEdge &edge = g.edges()[e];
            int u = edge.from;
            bool same = part.tile_of[u] == part.tile_of[v];
            if (edge.kind == DepKind::kAnti) {
                if (!same)
                    continue;
                if (g.nodes()[u].kind == TGKind::kInstr)
                    cons.push_back({u, v, -1});
                else
                    for (int pp : dep.paths_of_node[u])
                        cons.push_back({nn + pp, v, -1});
                continue;
            }
            if (same) {
                if (g.nodes()[u].kind == TGKind::kInstr)
                    cons.push_back(
                        {u, v, -std::max(1, g.nodes()[u].cost)});
            } else {
                int p = dep.data_path_of_node[u];
                check(p >= 0, "retime: missing data path");
                int depth = -1;
                for (auto &[tile, d] : trees[p].proc_recvs)
                    if (tile == part.tile_of[v])
                        depth = d;
                check(depth >= 0, "retime: missing recv");
                cons.push_back({nn + p, v, -(3 + depth)});
            }
        }
    }
    // Sends wait for their source value.
    for (int p = 0; p < np; p++) {
        int u = paths[p].src_node;
        if (g.nodes()[u].kind == TGKind::kInstr)
            cons.push_back(
                {u, nn + p, -std::max(1, g.nodes()[u].cost)});
    }

    std::vector<int64_t> ub(nn + np, kInf);
    auto item_var = [&](const TileItem &it) {
        return it.kind == TileItem::Kind::kCompute ? it.node
                                                   : nn + it.path;
    };
    // Program order per tile stream; pin the last item.
    for (const auto &tile : in.tiles) {
        for (size_t i = 0; i + 1 < tile.size(); i++) {
            int a = item_var(tile[i]), b = item_var(tile[i + 1]);
            int64_t oa = tile[i].cycle - committed(a);
            int64_t ob = tile[i + 1].cycle - committed(b);
            cons.push_back({a, b, ob - oa - 1});
        }
        if (!tile.empty()) {
            int a = item_var(tile.back());
            ub[a] = std::min(ub[a], committed(a));
        }
    }
    // Strict order between switch items sharing a port; pin the last.
    for (const auto &sw : in.switches) {
        int last_res[17]; // 8 in bits, 8 out bits, reg
        std::fill(std::begin(last_res), std::end(last_res), -1);
        for (size_t i = 0; i < sw.size(); i++) {
            int res_ids[17];
            int nres = 0;
            for (int bit = 0; bit < 8; bit++)
                if (static_cast<int>(sw[i].in) == bit)
                    res_ids[nres++] = bit;
            for (int bit = 0; bit < 8; bit++)
                if (sw[i].out_mask & (1u << bit))
                    res_ids[nres++] = 8 + bit;
            if (sw[i].to_reg)
                res_ids[nres++] = 16;
            int b = nn + sw[i].path;
            int64_t ob = sw[i].cycle - committed(b);
            for (int r = 0; r < nres; r++) {
                int j = last_res[res_ids[r]];
                if (j >= 0 && sw[j].path != sw[i].path) {
                    int a = nn + sw[j].path;
                    int64_t oa = sw[j].cycle - committed(a);
                    cons.push_back({a, b, ob - oa - 1});
                }
                last_res[res_ids[r]] = static_cast<int>(i);
            }
        }
        if (!sw.empty()) {
            int a = nn + sw.back().path;
            ub[a] = std::min(ub[a], committed(a));
        }
    }

    // Greatest fixpoint: relax until stable.
    bool changed = true;
    for (int round = 0; changed; round++) {
        if (round >= kRetimeRounds)
            return false;
        changed = false;
        for (const Con &c : cons) {
            int64_t nub = ub[c.b] == kInf ? kInf : ub[c.b] + c.k;
            if (nub < ub[c.a]) {
                ub[c.a] = nub;
                changed = true;
            }
        }
    }
    // The committed times satisfy every constraint and every pin, so
    // the greatest fixpoint can only move events later.
    for (int v = 0; v < nn + np; v++) {
        if (ub[v] == kInf)
            continue;
        if (ub[v] < committed(v))
            return false;
    }

    out = in;
    for (auto &tile : out.tiles)
        for (TileItem &it : tile) {
            int var = item_var(it);
            it.cycle += ub[var] - committed(var);
        }
    for (auto &sw : out.switches)
        for (SwitchItem &it : sw) {
            int var = nn + it.path;
            it.cycle += ub[var] - committed(var);
        }
    for (auto &tile : out.tiles) {
        std::sort(tile.begin(), tile.end(),
                  [](const TileItem &a, const TileItem &b) {
                      return a.cycle < b.cycle;
                  });
        for (size_t i = 0; i + 1 < tile.size(); i++)
            if (tile[i].cycle == tile[i + 1].cycle)
                return false; // double-booked processor slot
    }
    for (auto &sw : out.switches) {
        std::sort(sw.begin(), sw.end(),
                  [](const SwitchItem &a, const SwitchItem &b) {
                      if (a.cycle != b.cycle)
                          return a.cycle < b.cycle;
                      return a.path < b.path;
                  });
        for (size_t i = 0; i < sw.size(); i++)
            for (size_t j = i + 1;
                 j < sw.size() && sw[j].cycle == sw[i].cycle; j++)
                if ((sw[i].in == sw[j].in) ||
                    (sw[i].out_mask & sw[j].out_mask) ||
                    (sw[i].to_reg && sw[j].to_reg))
                    return false; // port conflict introduced
    }
    return true;
}

/** Nodes on some import -> write-back chain of @p loop. */
std::vector<uint8_t>
wrap_chain_nodes(const TaskGraph &g, const LoopPipelineInfo &loop)
{
    const int nn = static_cast<int>(g.nodes().size());
    std::vector<uint8_t> fwd(nn, 0), bwd(nn, 0), on(nn, 0);
    auto sweep = [&](std::vector<uint8_t> &mark, int seed, bool back) {
        std::vector<int> stack{seed};
        mark[seed] = 1;
        while (!stack.empty()) {
            int v = stack.back();
            stack.pop_back();
            for (int s : back ? g.preds(v) : g.succs(v))
                if (!mark[s]) {
                    mark[s] = 1;
                    stack.push_back(s);
                }
        }
    };
    for (auto &[imp, wb] : loop.wraps) {
        std::fill(fwd.begin(), fwd.end(), 0);
        std::fill(bwd.begin(), bwd.end(), 0);
        sweep(fwd, imp, false);
        sweep(bwd, wb, true);
        for (int v = 0; v < nn; v++)
            if (fwd[v] && bwd[v])
                on[v] = 1;
    }
    return on;
}

} // namespace

BlockSchedule
schedule_block_pipelined(const TaskGraph &g, const Partition &part,
                         const MachineConfig &m,
                         const std::vector<CommPath> &paths,
                         const SchedOptions &opts,
                         const LoopPipelineInfo &loop)
{
    BlockSchedule greedy = schedule_block(g, part, m, paths, opts);
    if (!opts.modulo || !loop.loop_block)
        return greedy;

    MiiBounds bounds = modulo_mii(g, part, m, paths, loop);
    int64_t greedy_ii = steady_state_ii(greedy, g, part, paths, loop);
    greedy.ii = greedy_ii;
    greedy.mii = bounds.mii();
    greedy.res_mii = bounds.res_mii;
    greedy.rec_mii = bounds.rec_mii;
    greedy.flat_mii = bounds.flat_mii;
    if (greedy_ii <= bounds.mii())
        return greedy; // greedy already meets the lower bound

    const int np = static_cast<int>(paths.size());
    std::vector<RouteTree> trees;
    trees.reserve(np);
    for (const CommPath &p : paths)
        trees.push_back(build_route_tree(m, p));
    DepInfo dep = build_deps(g, part, paths);
    Priorities stat = compute_priorities(g, part, m);
    std::vector<uint8_t> chain = wrap_chain_nodes(g, loop);
    std::vector<int64_t> prio(g.nodes().size(), 0);
    for (size_t v = 0; v < g.nodes().size(); v++) {
        prio[v] = stat.level[v] * opts.level_weight +
                  stat.fert[v] * opts.fertility_weight;
        // Drain the loop-carried chains first: the wrap constraint
        // needs the write-backs early and the imports' reads earlier.
        if (chain[v])
            prio[v] += kWrapBoost;
    }

    // Adoption margin: the steady-state model ignores dynamic FIFO
    // coupling between blocks, so gains within ~6% of greedy are
    // noise there and not worth perturbing the schedule for.
    int64_t margin = std::max<int64_t>(1, greedy_ii / 16);
    int64_t hi = std::min<int64_t>(opts.mii_cap, greedy_ii - margin);
    int64_t ii = bounds.mii();
    // Greedy stream end cycles: the window search seeds each stream's
    // release so its window is presumed to end where greedy ended it
    // and to start as late as the limit allows.  This makes the first
    // attempt globally consistent instead of discovering the shifts
    // one blame at a time.
    std::vector<int64_t> ghi_proc(m.n_tiles, 0), ghi_sw(m.n_tiles, 0);
    for (int t = 0; t < m.n_tiles; t++) {
        if (!greedy.tiles[t].empty())
            ghi_proc[t] = greedy.tiles[t].back().cycle;
        if (!greedy.switches[t].empty())
            ghi_sw[t] = greedy.switches[t].back().cycle;
    }
    std::vector<int64_t> rel_proc(m.n_tiles), rel_sw(m.n_tiles);
    for (int probe = 0; probe < kMaxProbes && ii <= hi; probe++) {
        // Window-release retries: a failed pass blames the stream
        // whose early ops pinned its window too low; raising that
        // stream's release pushes them later so the span can cover
        // the failing op.  Releases reset per II (new window limits).
        for (int t = 0; t < m.n_tiles; t++) {
            rel_proc[t] = std::max<int64_t>(
                0, ghi_proc[t] - (ii - loop.proc_tail) + 1);
            rel_sw[t] = std::max<int64_t>(
                0, ghi_sw[t] - (ii - loop.sw_tail) + 1);
        }
        for (int retry = 0; retry < kWindowRetries; retry++) {
            BlockSchedule cand;
            WindowBlame blame;
            if (run_modulo_pass(g, part, m, paths, trees, dep, prio,
                                ii, loop, rel_proc, rel_sw, cand,
                                blame)) {
                int64_t cii =
                    steady_state_ii(cand, g, part, paths, loop);
                // Feasibility at ii bounds every window and wrap
                // term by ii < greedy_ii, so the candidate always
                // wins here.
                if (cii < greedy_ii) {
                    cand.pipelined = true;
                    cand.ii = cii;
                    cand.mii = bounds.mii();
                    cand.res_mii = bounds.res_mii;
                    cand.rec_mii = bounds.rec_mii;
                    cand.flat_mii = bounds.flat_mii;
                    return cand;
                }
                return greedy; // unreachable: cii <= ii < greedy_ii
            }
            if (blame.kind < 0)
                break; // not a window failure: releases cannot help
            std::vector<int64_t> &rel =
                blame.kind == 0 ? rel_proc : rel_sw;
            int64_t limit = blame.kind == 0 ? ii - loop.proc_tail
                                            : ii - loop.sw_tail;
            rel[blame.tile] = std::max(rel[blame.tile] + 1,
                                       blame.cycle - limit + 1);
        }
        ii += probe < kLinearProbes ? 1 : std::max<int64_t>(1, ii / 8);
    }

    // Window search came up empty: fall back to ALAP retiming of the
    // greedy schedule, which compresses stream windows directly.
    BlockSchedule ret;
    if (retime_late(greedy, g, part, paths, trees, dep, ret)) {
        int64_t rii = steady_state_ii(ret, g, part, paths, loop);
        if (rii <= greedy_ii - margin) {
            ret.makespan = greedy.makespan;
            ret.tile_busy = greedy.tile_busy;
            ret.pipelined = true;
            ret.ii = rii;
            ret.mii = bounds.mii();
            ret.res_mii = bounds.res_mii;
            ret.rec_mii = bounds.rec_mii;
            ret.flat_mii = bounds.flat_mii;
            return ret;
        }
    }
    return greedy;
}

} // namespace raw
