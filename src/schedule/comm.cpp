#include "schedule/comm.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.hpp"

namespace raw {

RouteTree
build_route_tree(const MachineConfig &m, const CommPath &path,
                 RouteOrder order)
{
    RouteTree tree;
    std::map<int, int> hop_of_tile; // tile -> index in tree.hops

    auto ensure_hop = [&](int tile, Dir in, int depth) -> TreeHop & {
        auto it = hop_of_tile.find(tile);
        if (it == hop_of_tile.end()) {
            TreeHop h;
            h.tile = tile;
            h.in = in;
            h.depth = depth;
            tree.hops.push_back(h);
            hop_of_tile[tile] = static_cast<int>(tree.hops.size()) - 1;
            tree.max_depth = std::max(tree.max_depth, depth);
            return tree.hops.back();
        }
        TreeHop &h = tree.hops[it->second];
        check(h.in == in && h.depth == depth,
              "route tree: inconsistent prefix");
        return h;
    };

    for (const CommDest &d : path.dests) {
        int cur = path.src_tile;
        Dir in = Dir::kProc;
        int depth = 0;
        while (cur != d.tile) {
            Dir dir = order == RouteOrder::kXY
                          ? m.next_hop(cur, d.tile)
                          : m.next_hop_yx(cur, d.tile);
            TreeHop &h = ensure_hop(cur, in, depth);
            h.out_mask |= static_cast<uint8_t>(1u << static_cast<int>(
                                                   dir));
            int next = m.neighbor(cur, dir);
            check(next >= 0, "route tree: fell off the mesh");
            in = opposite(dir);
            cur = next;
            depth++;
        }
        TreeHop &h = ensure_hop(cur, in, depth);
        if (d.to_proc) {
            h.out_mask |= static_cast<uint8_t>(
                1u << static_cast<int>(Dir::kProc));
            tree.proc_recvs.push_back({cur, depth});
        }
        if (d.to_sw_reg)
            h.to_reg = true;
    }
    return tree;
}

bool
same_route_tree(const RouteTree &a, const RouteTree &b)
{
    if (a.hops.size() != b.hops.size() ||
        a.proc_recvs != b.proc_recvs || a.max_depth != b.max_depth)
        return false;
    for (size_t i = 0; i < a.hops.size(); i++) {
        const TreeHop &x = a.hops[i], &y = b.hops[i];
        if (x.tile != y.tile || x.in != y.in ||
            x.out_mask != y.out_mask || x.to_reg != y.to_reg ||
            x.depth != y.depth)
            return false;
    }
    return true;
}

std::vector<CommPath>
build_comm_paths(const TaskGraph &g, const Partition &part,
                 const MachineConfig &m, int broadcast_cond_node,
                 const std::vector<bool> &sw_targets)
{
    std::vector<CommPath> paths;
    const int nn = static_cast<int>(g.nodes().size());

    for (int p = 0; p < nn; p++) {
        std::set<int> dest_tiles;
        for (int e : g.out_edges(p)) {
            const TGEdge &edge = g.edges()[e];
            if (edge.kind == DepKind::kAnti)
                continue;
            int dt = part.tile_of[edge.to];
            if (dt != part.tile_of[p])
                dest_tiles.insert(dt);
        }
        if (dest_tiles.empty())
            continue;
        CommPath path;
        path.src_node = p;
        path.src_tile = part.tile_of[p];
        path.value = g.nodes()[p].produces;
        for (int t : dest_tiles)
            path.dests.push_back({t, true, false});
        paths.push_back(std::move(path));
    }

    if (broadcast_cond_node >= 0) {
        CommPath bc;
        bc.src_node = broadcast_cond_node;
        bc.src_tile = part.tile_of[broadcast_cond_node];
        bc.value = g.nodes()[broadcast_cond_node].produces;
        bc.broadcast = true;
        for (int t = 0; t < m.n_tiles; t++) {
            bool proc = t != bc.src_tile;
            bool sw = sw_targets.empty() ||
                      (t < static_cast<int>(sw_targets.size()) &&
                       sw_targets[t]);
            if (proc || sw)
                bc.dests.push_back({t, proc, sw});
        }
        if (!bc.dests.empty())
            paths.push_back(std::move(bc));
    }
    return paths;
}

} // namespace raw
