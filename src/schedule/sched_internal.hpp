#ifndef RAW_SCHEDULE_SCHED_INTERNAL_HPP
#define RAW_SCHEDULE_SCHED_INTERNAL_HPP

/**
 * @file
 * Internals shared by the block schedulers.
 *
 * The greedy list scheduler (event_scheduler.cpp), the cross-tile
 * modulo scheduler (modulo.cpp) and the small-block optimal oracle
 * (oracle.cpp) all operate on the same task-graph-plus-comm-paths
 * model: identical dependence bookkeeping, identical priority
 * computation, identical per-switch reservation state.  This header
 * factors those pieces out so the three schedulers cannot drift on
 * the resource model — a schedule any of them accepts reserves
 * processor slots and switch ports under exactly the same rules.
 */

#include <cstdint>
#include <vector>

#include "schedule/comm.hpp"

namespace raw {
namespace sched {

/** Per-switch, per-cycle reservation state. */
struct SwRes
{
    uint8_t in_used = 0;  // bitmask over Dir
    uint8_t out_used = 0; // bitmask over Dir
    bool reg_used = false;
};

/** Priorities: level (critical path) and clamped fertility. */
struct Priorities
{
    std::vector<int64_t> level;
    std::vector<int64_t> fert;
};

/** Topological order of the task graph (panics on a cycle). */
std::vector<int> topo_order(const TaskGraph &g);

Priorities compute_priorities(const TaskGraph &g, const Partition &part,
                              const MachineConfig &m);

/** Dependence bookkeeping shared by every scheduling pass. */
struct DepInfo
{
    /** node -> paths it sources (usually <= 2: data + bcast). */
    std::vector<std::vector<int>> paths_of_node;
    /** Node's non-broadcast (value-carrying) path, or -1. */
    std::vector<int> data_path_of_node;
    /** Initial unsatisfied-dependence count per node. */
    std::vector<int> deps_init;
    std::vector<std::vector<int>> node_waiters; // node -> nodes
    std::vector<std::vector<int>> path_waiters; // path -> nodes
    std::vector<std::vector<int>> in_edges;     // node -> edge ids
};

DepInfo build_deps(const TaskGraph &g, const Partition &part,
                   const std::vector<CommPath> &paths);

} // namespace sched
} // namespace raw

#endif // RAW_SCHEDULE_SCHED_INTERNAL_HPP
