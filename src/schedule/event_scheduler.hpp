#ifndef RAW_SCHEDULE_EVENT_SCHEDULER_HPP
#define RAW_SCHEDULE_EVENT_SCHEDULER_HPP

/**
 * @file
 * Event scheduler (Section 4.2).
 *
 * Greedy list scheduling of computation instructions and communication
 * paths onto the space-time matrix (tiles x cycles).  A communication
 * path is an atomic task: when scheduled, contiguous time slots are
 * reserved along the whole route (send, one ROUTE per switch per hop,
 * receive) so the transfer proceeds without intermediate stalls in the
 * static schedule — this end-to-end reservation is also what
 * guarantees deadlock freedom, and the static ordering property
 * (Appendix A) extends the guarantee to executions whose timings
 * differ from the estimate.
 *
 * Ready tasks are prioritized by a weighted sum of *level* (longest
 * remaining path to an exit) and *fertility* (descendant count), per
 * the paper.
 */

#include <cstdint>
#include <vector>

#include "schedule/comm.hpp"

namespace raw {

/** Scheduling policy knobs (ablations and optimizations). */
struct SchedOptions
{
    int level_weight = 16;
    int fertility_weight = 1;
    /** Ablation: ignore priorities, schedule in ready-FIFO order. */
    bool fifo_priority = false;
    /**
     * Slack-driven iterated rescheduling: after the first list-
     * scheduling pass, recompute priorities from the *achieved*
     * schedule (realized communication latencies including ROUTE
     * occupancy, minus total slack) and reschedule, up to this many
     * extra passes.  The shortest schedule per block wins; 0 keeps
     * the single greedy pass of the paper.  Bounded (2-3 is enough)
     * so compile time stays near the single-pass cost.
     */
    int sched_iters = 0;
    /**
     * Contention-aware route selection: when the XY-ordered route
     * tree of a path would stall on an occupied switch port at its
     * ready time, also evaluate the YX-ordered tree and commit
     * whichever starts earlier (ties keep XY).  Each path still uses
     * exactly one single-source tree, so the static ordering property
     * and the runtime checker are unaffected.
     */
    bool route_select = false;
    /**
     * Cross-tile modulo scheduling (--modulo): software-pipeline the
     * blocks that sit on CFG cycles by searching initiation intervals
     * upward from MII under per-tile window and loop-carried (wrap)
     * constraints; the greedy list schedule stays the fallback and
     * the floor — a pipelined schedule is only adopted when its
     * modeled steady-state II beats the greedy one's.  See
     * schedule/modulo.hpp and docs/scheduling.md.
     */
    bool modulo = false;
    /**
     * Upper bound of the initiation-interval search (--mii-cap); a
     * loop whose feasible II exceeds it falls back to the greedy
     * schedule.
     */
    int mii_cap = 512;
    /**
     * Small-block optimal oracle (--oracle-budget): branch-and-bound
     * over ready-task orderings with at most this many explored
     * states per block, reporting the greedy-vs-optimal makespan gap
     * (schedule/oracle.hpp).  0 disables; the oracle never changes
     * the emitted schedule.
     */
    int64_t oracle_budget = 0;

    /** Any best-of-N mechanism beyond the seed single pass enabled? */
    bool multi_pass() const { return sched_iters > 0 || route_select; }
};

/** One processor-stream entry of the schedule. */
struct TileItem
{
    enum class Kind : uint8_t { kCompute, kSend, kRecv };
    int64_t cycle = 0;
    Kind kind = Kind::kCompute;
    /** Task graph node (kCompute, kSend); -1 for recv. */
    int node = -1;
    /** Value sent/received (kNoValue: ordering token). */
    ValueId value = kNoValue;
    /** Index into the path list (kSend/kRecv). */
    int path = -1;
};

/** One switch-stream entry (one hop of some path). */
struct SwitchItem
{
    int64_t cycle = 0;
    Dir in = Dir::kProc;
    uint8_t out_mask = 0;
    bool to_reg = false;
    ValueId value = kNoValue;
    /**
     * Owning path: same-cycle hops of different paths must become
     * separate ROUTE instructions, consistently ordered by this id on
     * every switch — fusing them would couple the paths' blocking and
     * break the deadlock-freedom argument of Appendix A.
     */
    int path = -1;
};

/** The complete space-time schedule of one basic block. */
struct BlockSchedule
{
    /** Per-tile processor items, sorted by cycle. */
    std::vector<std::vector<TileItem>> tiles;
    /** Per-tile switch items, sorted by cycle. */
    std::vector<std::vector<SwitchItem>> switches;
    /** Estimated parallel run time of the block. */
    int64_t makespan = 0;
    /**
     * Estimated issue slots the schedule occupies on each tile
     * processor (computes + sends + recvs).  The profiling layer
     * cross-checks this against the measured per-tile issue counts
     * (sim/profile.hpp) to validate the scheduler's cost model.
     */
    std::vector<int64_t> tile_busy;

    // ---- Modulo-scheduling metadata (loop blocks only). ----------
    /** The modulo schedule was adopted over the greedy fallback. */
    bool pipelined = false;
    /** Modeled steady-state initiation interval of this schedule. */
    int64_t ii = 0;
    /** Lower bound the II search started from (max of the below). */
    int64_t mii = 0;
    /** Resource bound: busiest proc/switch slot count + control tail. */
    int64_t res_mii = 0;
    /** Recurrence bound over loop-carried import->writeback chains. */
    int64_t rec_mii = 0;
    int64_t flat_mii = 0;
};

/** Schedule one block. */
BlockSchedule schedule_block(const TaskGraph &g, const Partition &part,
                             const MachineConfig &m,
                             const std::vector<CommPath> &paths,
                             const SchedOptions &opts);

} // namespace raw

#endif // RAW_SCHEDULE_EVENT_SCHEDULER_HPP
