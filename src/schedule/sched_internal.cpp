#include "schedule/sched_internal.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"

namespace raw {
namespace sched {

std::vector<int>
topo_order(const TaskGraph &g)
{
    const int n = static_cast<int>(g.nodes().size());
    std::vector<int> indeg(n, 0), order;
    order.reserve(n);
    std::queue<int> q;
    for (int i = 0; i < n; i++) {
        indeg[i] = static_cast<int>(g.preds(i).size());
        if (indeg[i] == 0)
            q.push(i);
    }
    while (!q.empty()) {
        int v = q.front();
        q.pop();
        order.push_back(v);
        for (int s : g.succs(v))
            if (--indeg[s] == 0)
                q.push(s);
    }
    check(static_cast<int>(order.size()) == n,
          "scheduler: task graph has a cycle");
    return order;
}

namespace {
constexpr int64_t kFertCap = 1000000;
} // namespace

Priorities
compute_priorities(const TaskGraph &g, const Partition &part,
                   const MachineConfig &m)
{
    const int n = static_cast<int>(g.nodes().size());
    Priorities pr;
    pr.level.assign(n, 0);
    pr.fert.assign(n, 0);

    std::vector<int> order = topo_order(g);
    for (int k = n; k-- > 0;) {
        int v = order[k];
        int64_t lvl = 0, fert = 0;
        for (int e : g.out_edges(v)) {
            const TGEdge &edge = g.edges()[e];
            int s = edge.to;
            int64_t comm = 0;
            if (part.tile_of[v] != part.tile_of[s] &&
                edge.kind != DepKind::kAnti)
                comm = 2 + m.distance(part.tile_of[v],
                                      part.tile_of[s]);
            lvl = std::max(lvl, comm + pr.level[s]);
            fert = std::min(kFertCap, fert + 1 + pr.fert[s]);
        }
        pr.level[v] = g.nodes()[v].cost + lvl;
        pr.fert[v] = fert;
    }
    return pr;
}

DepInfo
build_deps(const TaskGraph &g, const Partition &part,
           const std::vector<CommPath> &paths)
{
    const int nn = static_cast<int>(g.nodes().size());
    const int np = static_cast<int>(paths.size());
    DepInfo d;
    d.paths_of_node.assign(nn, {});
    for (int p = 0; p < np; p++)
        d.paths_of_node[paths[p].src_node].push_back(p);
    d.data_path_of_node.assign(nn, -1);
    for (int p = 0; p < np; p++)
        if (!paths[p].broadcast)
            d.data_path_of_node[paths[p].src_node] = p;

    d.deps_init.assign(nn, 0);
    d.node_waiters.assign(nn, {});
    d.path_waiters.assign(np, {});
    d.in_edges.assign(nn, {});
    for (int e = 0; e < static_cast<int>(g.edges().size()); e++)
        d.in_edges[g.edges()[e].to].push_back(e);

    for (int e = 0; e < static_cast<int>(g.edges().size()); e++) {
        const TGEdge &edge = g.edges()[e];
        int p = edge.from, v = edge.to;
        bool same = part.tile_of[p] == part.tile_of[v];
        if (edge.kind == DepKind::kAnti) {
            if (!same)
                continue;
            // Same-tile anti-dep: wait for the node; if the producer
            // is an import with fan-out paths, also wait for those
            // paths (their sends read the register being overwritten).
            d.node_waiters[p].push_back(v);
            d.deps_init[v]++;
            if (g.nodes()[p].kind == TGKind::kImport) {
                for (int pp : d.paths_of_node[p]) {
                    d.path_waiters[pp].push_back(v);
                    d.deps_init[v]++;
                }
            }
            continue;
        }
        if (same) {
            d.node_waiters[p].push_back(v);
            d.deps_init[v]++;
        } else {
            int path = d.data_path_of_node[p];
            check(path >= 0, "scheduler: cross-tile edge without path");
            d.path_waiters[path].push_back(v);
            d.deps_init[v]++;
        }
    }
    return d;
}

} // namespace sched
} // namespace raw
