#ifndef RAW_SCHEDULE_MODULO_HPP
#define RAW_SCHEDULE_MODULO_HPP

/**
 * @file
 * Cross-tile modulo scheduling (software pipelining) of loop blocks.
 *
 * Tiles execute their per-block instruction streams decoupled, in
 * order, synchronized only by the static network's blocking FIFOs.
 * For a block on a CFG cycle the steady-state cost per iteration is
 * therefore the maximum cycle mean of the timed event graph induced
 * by (a) per-tile/per-switch program order, (b) the block's data and
 * communication dependences, and (c) the loop-carried (wrap) edges
 * from each variable's write-back to the next iteration's first read
 * of its import.  The greedy list scheduler minimizes flat makespan
 * and routinely leaves that cycle mean near the makespan itself:
 * write-backs are graph sinks, so they land last and serialize
 * consecutive iterations.
 *
 * The modulo scheduler instead searches initiation intervals upward
 * from MII = max(ResMII, RecMII) and re-runs list scheduling under
 * two extra constraint families that make a period-II repetition of
 * the flat schedule self-consistent:
 *
 *  - *window* constraints — every tile's issue slots (and every
 *    switch's ROUTE slots) must fit inside a window of II minus the
 *    control-tail length, so iteration k+1's stream can start II
 *    cycles after iteration k's on every resource.  A window shorter
 *    than II also makes the mod-II projection of the flat
 *    reservation tables injective: flat conflict-freedom then equals
 *    modulo-reservation-table conflict-freedom, and each word still
 *    occupies each FIFO stage for exactly one cycle of its
 *    contiguously reserved route, so cross-iteration words cannot
 *    exceed FIFO capacity in the periodic timing;
 *  - *wrap* constraints — for every loop-carried variable,
 *    finish(write-back) <= first-read(import) + II.
 *
 * The result is still an ordinary flat block schedule: emission, the
 * static-ordering property, the runtime checker and the deadlock-
 * freedom argument (Appendix A) are untouched; the decoupled runtime
 * realizes the prologue/epilogue overlap implicitly by letting tiles
 * drift up to a window apart.  Fallback is the greedy schedule, and
 * a pipelined schedule is only adopted when its modeled steady-state
 * II is strictly better, so --modulo can never lose in the model.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/function.hpp"
#include "schedule/event_scheduler.hpp"

namespace raw {

/** Pipelining facts of one block (see analyze_loop_block). */
struct LoopPipelineInfo
{
    /** Block sits on a CFG cycle (some path leads back to it). */
    bool loop_block = false;
    /**
     * Issue slots every processor appends after the scheduled items:
     * control-tail instructions plus the taken terminator slot.
     */
    int proc_tail = 0;
    /** Same for every active switch stream (tail ALU ops + branch). */
    int sw_tail = 0;
    bool any_switch_active = false;
    /** Loop-carried pairs: (import node, write-back node) per var. */
    std::vector<std::pair<int, int>> wraps;
};

/** Blocks that lie on a cycle of the block graph. */
std::vector<uint8_t> loop_blocks(const Function &fn);

/**
 * Pipelining facts of block @p b: wrap pairs from the task graph,
 * control-tail lengths from the orchestrater (@p tail_len cloned
 * instructions; the taken branch adds one slot).
 */
LoopPipelineInfo analyze_loop_block(const Function &fn, int b,
                                    const TaskGraph &g, bool on_cycle,
                                    int tail_len,
                                    bool any_switch_active);

/** MII bounds of one block. */
struct MiiBounds
{
    int64_t res_mii = 1;
    int64_t rec_mii = 1;
    /**
     * Flat-emission span bound: two ops co-resident on a tile can
     * never issue closer than the longest dependence path between
     * them, and the tile's replay window must cover both, so
     * II >= that distance + 1 + the tile's control tail.  This is
     * specific to flat emission (a kernel-forming pipeliner that
     * staggers iterations would not be bound by it); it keeps the
     * reported MII honest for this backend and saves the II search
     * from probing intervals no flat schedule can meet.
     */
    int64_t flat_mii = 1;
    int64_t mii() const
    {
        return std::max(std::max(res_mii, rec_mii), flat_mii);
    }
};

MiiBounds modulo_mii(const TaskGraph &g, const Partition &part,
                     const MachineConfig &m,
                     const std::vector<CommPath> &paths,
                     const LoopPipelineInfo &loop);

/**
 * Modeled steady-state initiation interval of @p s when repeated
 * every iteration: the max of per-tile window spans plus tails,
 * per-switch spans plus tails, and wrap latencies.
 */
int64_t steady_state_ii(const BlockSchedule &s, const TaskGraph &g,
                        const Partition &part,
                        const std::vector<CommPath> &paths,
                        const LoopPipelineInfo &loop);

/**
 * Schedule one block with modulo scheduling when profitable.  Always
 * computes the greedy schedule first (schedule_block with @p opts
 * verbatim); for loop blocks with opts.modulo set it then searches
 * II upward from MII and returns the pipelined schedule iff its
 * modeled steady-state II beats the greedy schedule's.  The returned
 * schedule carries the ii/mii metadata either way.
 */
BlockSchedule schedule_block_pipelined(const TaskGraph &g,
                                       const Partition &part,
                                       const MachineConfig &m,
                                       const std::vector<CommPath> &paths,
                                       const SchedOptions &opts,
                                       const LoopPipelineInfo &loop);

} // namespace raw

#endif // RAW_SCHEDULE_MODULO_HPP
