#ifndef RAW_ANALYSIS_REPLICATION_HPP
#define RAW_ANALYSIS_REPLICATION_HPP

/**
 * @file
 * Control-replication analysis.
 *
 * On a Raw machine every tile (and every switch) runs its own
 * instruction stream, so at the end of a basic block each stream must
 * decide the same branch.  Two mechanisms exist:
 *
 *  1. *Broadcast*: the tile that computes the condition multicasts it
 *     over the static network; every processor receives it and every
 *     switch routes it into a local register and branches on it.
 *
 *  2. *Replication*: when the condition's backward slice consists only
 *     of cheap, side-effect-free integer instructions whose leaves are
 *     "replicable" variables (variables every one of whose writes is
 *     itself such a slice — loop counters, bounds), every tile and
 *     switch can maintain a private copy and compute the branch
 *     locally with no communication at all.  This is what makes
 *     counted loops (for-loops over constants) run without per-
 *     iteration broadcast.
 *
 * This analysis computes the replicable-variable fixpoint, the set of
 * *replicated* variables actually worth maintaining everywhere (the
 * closure of variables reachable from replicable branch conditions),
 * and per-block instruction sets to clone into every stream.
 */

#include <vector>

#include "ir/function.hpp"

namespace raw {

/** Result of the analysis for one function. */
class ReplicationAnalysis
{
  public:
    /**
     * @param fn         renamed function
     * @param max_regs   register budget for private copies (per
     *                   switch); exceeding it disables replication
     * @param max_slice  maximum instructions in one branch slice
     * @param enable     ablation switch; false forces broadcast
     */
    ReplicationAnalysis(const Function &fn, int max_regs = 8,
                        int max_slice = 12, bool enable = true);

    /** Is @p v maintained privately on every tile and switch? */
    bool var_replicated(ValueId v) const { return replicated_[v]; }

    /** Is the branch of @p block computed locally everywhere? */
    bool branch_replicated(int block) const
    {
        return branch_replicated_[block];
    }

    /**
     * Instruction indices of @p block to clone into every stream, in
     * emission order (definitions precede uses): slices of
     * replicated-variable write-backs plus the replicated branch
     * slice, grouped per variable to minimize temp liveness.  Never
     * includes the terminator.
     */
    const std::vector<int> &cloned_instrs(int block) const
    {
        return cloned_[block];
    }

    /** Number of replicated variables. */
    int num_replicated_vars() const { return n_replicated_; }

  private:
    std::vector<bool> replicated_;
    std::vector<bool> branch_replicated_;
    std::vector<std::vector<int>> cloned_;
    int n_replicated_ = 0;
};

} // namespace raw

#endif // RAW_ANALYSIS_REPLICATION_HPP
