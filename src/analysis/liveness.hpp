#ifndef RAW_ANALYSIS_LIVENESS_HPP
#define RAW_ANALYSIS_LIVENESS_HPP

/**
 * @file
 * Inter-block live-variable analysis over persistent scalars.
 *
 * Used by the basic block stitcher to avoid generating stitch
 * communication for values that are dead at a block boundary, and by
 * the register allocator to bound persistent-register lifetimes.
 */

#include <vector>

#include "ir/function.hpp"

namespace raw {

/** Backward dataflow result: live-in/live-out variable sets per block. */
class VarLiveness
{
  public:
    explicit VarLiveness(const Function &fn);

    /** Is variable @p v live at entry to @p block? */
    bool live_in(int block, ValueId v) const
    {
        return live_in_[block][slot(v)];
    }
    /** Is variable @p v live at exit of @p block? */
    bool live_out(int block, ValueId v) const
    {
        return live_out_[block][slot(v)];
    }

  private:
    int slot(ValueId v) const;

    std::vector<ValueId> vars_;          // var ids, sorted
    std::vector<std::vector<bool>> live_in_;
    std::vector<std::vector<bool>> live_out_;
};

} // namespace raw

#endif // RAW_ANALYSIS_LIVENESS_HPP
