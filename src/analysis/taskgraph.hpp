#ifndef RAW_ANALYSIS_TASKGRAPH_HPP
#define RAW_ANALYSIS_TASKGRAPH_HPP

/**
 * @file
 * Task graph builder (Section 3.3, Figure 6b).
 *
 * For one renamed basic block, builds the DAG the instruction
 * partitioner and event scheduler operate on.  Nodes are instructions
 * (labelled with Table 1 cycle costs) plus zero-cost *import* nodes
 * representing a variable's live-in value at its home tile.  Edges are
 * value flow (one word, the paper's implicit unit edge label) or
 * ordering-only constraints (memory dependences, print ordering,
 * import-before-export anti-dependences).
 *
 * Memory references with a statically known home tile are pinned to
 * that tile; the builder also disambiguates references whose index
 * congruences prove them disjoint (exact unequal indices, or distinct
 * residues modulo the interleaving factor).
 */

#include <unordered_map>
#include <vector>

#include "transform/congruence.hpp"
#include "analysis/liveness.hpp"
#include "analysis/replication.hpp"
#include "ir/function.hpp"
#include "machine/machine.hpp"

namespace raw {

/** Placement facts from the data partitioner. */
struct HomeMap
{
    /** Home tile per value id (valid for persistent vars only). */
    std::vector<int> var_home;
    /** Global word base address per array id. */
    std::vector<int64_t> array_base;
    int n_tiles = 1;

    /** Home tile of element @p idx of @p array. */
    int
    element_home(int array, int64_t idx) const
    {
        return static_cast<int>(
            floor_mod(array_base[array] + idx, n_tiles));
    }
};

/** Task graph node kinds. */
enum class TGKind : uint8_t {
    kInstr,  ///< a real instruction of the block
    kImport, ///< live-in value of a variable, at its home tile
};

/** One task graph node. */
struct TGNode
{
    TGKind kind = TGKind::kInstr;
    /** Instruction index within the block (kInstr only). */
    int instr = -1;
    /** Variable (kImport only). */
    ValueId var = kNoValue;
    /** Estimated cycles (Table 1); imports are free. */
    int cost = 0;
    /** Required tile, or -1 if the partitioner may choose. */
    int pin = -1;
    /** Value this node makes available (kNoValue if none). */
    ValueId produces = kNoValue;
};

/** Dependence edge kinds. */
enum class DepKind : uint8_t {
    kData,  ///< a word flows from producer to consumer
    kOrder, ///< semantic ordering (memory, print); token if cross-tile
    kAnti,  ///< register anti-dependence; only binds on the same tile
};

/** One dependence edge. */
struct TGEdge
{
    int from = -1;
    int to = -1;
    DepKind kind = DepKind::kData;
};

/** The per-block task graph. */
class TaskGraph
{
  public:
    TaskGraph(const Function &fn, int block_id,
              const MachineConfig &machine, const CongruenceMap &cong,
              const ReplicationAnalysis &repl, const VarLiveness &live,
              const HomeMap &homes);

    const std::vector<TGNode> &nodes() const { return nodes_; }
    const std::vector<TGEdge> &edges() const { return edges_; }
    const std::vector<int> &succs(int n) const { return succs_[n]; }
    const std::vector<int> &preds(int n) const { return preds_[n]; }
    /** Edge indices leaving node @p n. */
    const std::vector<int> &out_edges(int n) const { return out_[n]; }

    /**
     * Block instruction indices that are NOT nodes (replicated
     * control instructions handled by the orchestrater's control
     * tail, dead write-backs, and the terminator).
     */
    const std::vector<int> &skipped_instrs() const { return skipped_; }

    /** Node producing @p value, or -1. */
    int producer_of(ValueId v) const;

  private:
    void add_edge(int from, int to, DepKind kind);

    std::vector<TGNode> nodes_;
    std::vector<TGEdge> edges_;
    std::vector<std::vector<int>> succs_, preds_, out_;
    std::vector<int> skipped_;
    // Keyed by value id; sized by this block's node count, not by the
    // whole function's value count (graphs for every block are alive
    // at once in the orchestrater).
    std::unordered_map<ValueId, int> producer_;
};

} // namespace raw

#endif // RAW_ANALYSIS_TASKGRAPH_HPP
