#include "analysis/taskgraph.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "support/error.hpp"
#include "transform/rename.hpp"

namespace raw {

namespace {

/** Disambiguation verdict for two memory references. */
bool
provably_disjoint(const Congruence &a, const Congruence &b,
                  int64_t base_a, int64_t base_b, int n_tiles)
{
    // Same array => same base; different arrays never conflict and are
    // filtered before this call, so bases are equal here.  Keep them
    // in the interface for clarity.
    if (a.is_exact() && b.is_exact())
        return base_a + a.residue != base_b + b.residue;
    int64_t ra = a.residue_mod(n_tiles);
    int64_t rb = b.residue_mod(n_tiles);
    if (ra >= 0 && rb >= 0) {
        // Distinct home tiles => distinct addresses.
        return floor_mod(base_a + ra, n_tiles) !=
               floor_mod(base_b + rb, n_tiles);
    }
    return false;
}

} // namespace

void
TaskGraph::add_edge(int from, int to, DepKind kind)
{
    if (from == to)
        return;
    for (int e : out_[from])
        if (edges_[e].to == to) {
            // Keep the strongest flavour (data > order > anti).
            if (kind < edges_[e].kind)
                edges_[e].kind = kind;
            return;
        }
    edges_.push_back({from, to, kind});
    int e = static_cast<int>(edges_.size()) - 1;
    out_[from].push_back(e);
    succs_[from].push_back(to);
    preds_[to].push_back(from);
}

int
TaskGraph::producer_of(ValueId v) const
{
    auto it = producer_.find(v);
    return it == producer_.end() ? -1 : it->second;
}

TaskGraph::TaskGraph(const Function &fn, int block_id,
                     const MachineConfig &machine,
                     const CongruenceMap &cong,
                     const ReplicationAnalysis &repl,
                     const VarLiveness &live, const HomeMap &homes)
{
    const Block &blk = fn.blocks[block_id];
    const int n = static_cast<int>(blk.instrs.size());

    // ---- Decide which instructions become graph nodes. ----------
    // Start by excluding replicated control instructions; re-include
    // any whose value a kept instruction consumes (the control tail
    // recomputes its copies privately with fresh registers).
    std::vector<bool> excluded(n, false);
    for (int k : repl.cloned_instrs(block_id))
        excluded[k] = true;
    excluded[n - 1] = true; // terminator

    // Dead write-backs (variable not live out) are dropped entirely.
    std::vector<bool> dropped(n, false);
    for (int k = 0; k < n - 1; k++) {
        const Instr &in = blk.instrs[k];
        if (is_writeback(fn, in)) {
            if (repl.var_replicated(in.dst))
                dropped[k] = true; // maintained by the control tail
            else if (!live.live_out(block_id, in.dst))
                dropped[k] = true;
        }
    }

    // Map value -> defining instr (blocks are locally
    // single-assignment for temps after renaming).
    std::unordered_map<ValueId, int> def;
    for (int k = 0; k < n - 1; k++) {
        const Instr &in = blk.instrs[k];
        if (in.has_dst() && !fn.values[in.dst].is_var)
            def[in.dst] = k;
    }
    // A broadcast branch needs its condition's producer in the graph.
    if (blk.terminator().op == Op::kBranch &&
        !repl.branch_replicated(block_id)) {
        auto it = def.find(blk.terminator().src[0]);
        if (it != def.end())
            excluded[it->second] = false;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (int k = 0; k < n - 1; k++) {
            if (excluded[k] || dropped[k])
                continue;
            const Instr &in = blk.instrs[k];
            for (int s = 0; s < in.num_srcs(); s++) {
                auto it = def.find(in.src[s]);
                if (it != def.end() && excluded[it->second] &&
                    !dropped[it->second]) {
                    excluded[it->second] = false;
                    changed = true;
                }
            }
        }
    }

    // ---- Create nodes. -------------------------------------------
    std::vector<int> node_of_instr(n, -1);
    for (int k = 0; k < n - 1; k++) {
        if (excluded[k] || dropped[k]) {
            skipped_.push_back(k);
            continue;
        }
        const Instr &in = blk.instrs[k];
        TGNode nd;
        nd.kind = TGKind::kInstr;
        nd.instr = k;
        nd.cost = machine.latency(op_fu(in.op));
        if (in.op == Op::kDynLoad || in.op == Op::kDynStore) {
            // Round-trip estimate: header + average distance both
            // ways + handler service.
            nd.cost = machine.dyn_header_cycles +
                      (machine.rows + machine.cols) +
                      machine.dyn_handler_cycles;
            // All dynamic refs of one array run on one designated
            // tile: its in-order stream serializes them across
            // blocks, which conservative correctness requires (tiles
            // are otherwise decoupled between blocks).
            nd.pin = in.array % homes.n_tiles;
        }
        if (in.has_dst())
            nd.produces = in.dst;
        // Pin static memory references to their home tiles.
        if (in.op == Op::kLoad || in.op == Op::kStore) {
            int64_t r = cong.residue_mod(in.src[0], homes.n_tiles);
            check(r >= 0, "taskgraph: static reference without home");
            nd.pin = homes.element_home(in.array, r);
        }
        // Pin write-backs to the variable's home tile.
        if (is_writeback(fn, in))
            nd.pin = homes.var_home[in.dst];
        node_of_instr[k] = static_cast<int>(nodes_.size());
        nodes_.push_back(nd);
    }
    skipped_.push_back(n - 1);

    // ---- Import nodes for live-in variable reads. ----------------
    std::unordered_map<ValueId, int> import_of;
    auto ensure_import = [&](ValueId v) {
        if (!fn.values[v].is_var || repl.var_replicated(v))
            return;
        if (!import_of.count(v)) {
            TGNode nd;
            nd.kind = TGKind::kImport;
            nd.var = v;
            nd.cost = 0;
            nd.pin = homes.var_home[v];
            nd.produces = v;
            import_of[v] = static_cast<int>(nodes_.size());
            nodes_.push_back(nd);
        }
    };
    for (int k = 0; k < n - 1; k++) {
        if (node_of_instr[k] < 0)
            continue;
        const Instr &in = blk.instrs[k];
        for (int s = 0; s < in.num_srcs(); s++)
            ensure_import(in.src[s]);
    }
    // A non-replicated branch condition that is a live-in variable
    // must be importable for the control broadcast.
    if (blk.terminator().op == Op::kBranch &&
        !repl.branch_replicated(block_id))
        ensure_import(blk.terminator().src[0]);

    const int nn = static_cast<int>(nodes_.size());
    succs_.assign(nn, {});
    preds_.assign(nn, {});
    out_.assign(nn, {});

    for (int i = 0; i < nn; i++)
        if (nodes_[i].produces != kNoValue)
            producer_[nodes_[i].produces] = i;

    // ---- Value-flow edges. ----------------------------------------
    for (int i = 0; i < nn; i++) {
        if (nodes_[i].kind != TGKind::kInstr)
            continue;
        const Instr &in = blk.instrs[nodes_[i].instr];
        for (int s = 0; s < in.num_srcs(); s++) {
            ValueId v = in.src[s];
            if (fn.values[v].is_var) {
                auto it = import_of.find(v);
                if (it != import_of.end())
                    add_edge(it->second, i, DepKind::kData);
                continue;
            }
            int p = producer_of(v);
            if (p >= 0)
                add_edge(p, i, DepKind::kData);
        }
    }

    // Register anti-dependences: a variable's home register may only
    // be overwritten by its write-back after every same-tile read of
    // the old value has issued (remote reads are covered by the
    // import's send instructions; see the event scheduler).
    for (auto &[v, imp] : import_of) {
        for (int i = 0; i < nn; i++) {
            if (nodes_[i].kind != TGKind::kInstr)
                continue;
            const Instr &wi = blk.instrs[nodes_[i].instr];
            if (!is_writeback(fn, wi) || wi.dst != v)
                continue;
            add_edge(imp, i, DepKind::kAnti);
            for (int u : succs_[imp])
                if (u != i)
                    add_edge(u, i, DepKind::kAnti);
        }
    }

    // ---- Memory dependence edges (conservative, disambiguated). ---
    std::vector<int> mem_nodes;
    for (int i = 0; i < nn; i++) {
        if (nodes_[i].kind != TGKind::kInstr)
            continue;
        if (op_is_memory(blk.instrs[nodes_[i].instr].op))
            mem_nodes.push_back(i);
    }
    for (size_t a = 0; a < mem_nodes.size(); a++) {
        const Instr &ia = blk.instrs[nodes_[mem_nodes[a]].instr];
        bool a_store = ia.op == Op::kStore || ia.op == Op::kDynStore;
        for (size_t b = a + 1; b < mem_nodes.size(); b++) {
            const Instr &ib = blk.instrs[nodes_[mem_nodes[b]].instr];
            bool b_store =
                ib.op == Op::kStore || ib.op == Op::kDynStore;
            if (!a_store && !b_store)
                continue;
            if (ia.array != ib.array)
                continue;
            const Congruence &ca = cong.get(ia.src[0]);
            const Congruence &cb = cong.get(ib.src[0]);
            if (provably_disjoint(ca, cb, homes.array_base[ia.array],
                                  homes.array_base[ib.array],
                                  homes.n_tiles))
                continue;
            add_edge(mem_nodes[a], mem_nodes[b], DepKind::kOrder);
        }
    }

    // ---- Print ordering. ------------------------------------------
    int last_print = -1;
    for (int i = 0; i < nn; i++) {
        if (nodes_[i].kind == TGKind::kInstr &&
            blk.instrs[nodes_[i].instr].op == Op::kPrint) {
            if (last_print >= 0)
                add_edge(last_print, i, DepKind::kOrder);
            last_print = i;
        }
    }
}

} // namespace raw
