#include "analysis/liveness.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace raw {

int
VarLiveness::slot(ValueId v) const
{
    auto it = std::lower_bound(vars_.begin(), vars_.end(), v);
    check(it != vars_.end() && *it == v, "liveness: not a variable");
    return static_cast<int>(it - vars_.begin());
}

VarLiveness::VarLiveness(const Function &fn)
{
    vars_ = fn.var_ids();
    const size_t nv = vars_.size();
    const size_t nb = fn.blocks.size();

    // use[b]: var read before any write in b; def[b]: var written in b.
    std::vector<std::vector<bool>> use(nb, std::vector<bool>(nv, false));
    std::vector<std::vector<bool>> def(nb, std::vector<bool>(nv, false));
    for (size_t b = 0; b < nb; b++) {
        for (const Instr &in : fn.blocks[b].instrs) {
            for (int s = 0; s < in.num_srcs(); s++) {
                ValueId v = in.src[s];
                if (fn.values[v].is_var) {
                    int k = slot(v);
                    if (!def[b][k])
                        use[b][k] = true;
                }
            }
            if (in.has_dst() && fn.values[in.dst].is_var)
                def[b][slot(in.dst)] = true;
        }
    }

    live_in_.assign(nb, std::vector<bool>(nv, false));
    live_out_.assign(nb, std::vector<bool>(nv, false));

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = nb; b-- > 0;) {
            std::vector<bool> out(nv, false);
            for (int s : fn.blocks[b].successors())
                for (size_t k = 0; k < nv; k++)
                    if (live_in_[s][k])
                        out[k] = true;
            for (size_t k = 0; k < nv; k++) {
                bool in_k = use[b][k] || (out[k] && !def[b][k]);
                if (in_k != live_in_[b][k]) {
                    live_in_[b][k] = in_k;
                    changed = true;
                }
                live_out_[b][k] = out[k];
            }
        }
    }
}

} // namespace raw
