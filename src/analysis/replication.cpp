#include "analysis/replication.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <unordered_map>

#include "support/error.hpp"

namespace raw {

namespace {

/** Per-block helper: positions of temp definitions. */
std::unordered_map<ValueId, int>
def_positions(const Function &fn, const Block &blk)
{
    std::unordered_map<ValueId, int> defs;
    for (size_t k = 0; k < blk.instrs.size(); k++) {
        const Instr &in = blk.instrs[k];
        if (in.has_dst() && !fn.values[in.dst].is_var)
            defs[in.dst] = static_cast<int>(k);
    }
    return defs;
}

} // namespace

ReplicationAnalysis::ReplicationAnalysis(const Function &fn, int max_regs,
                                         int max_slice, bool enable)
    : replicated_(fn.values.size(), false),
      branch_replicated_(fn.blocks.size(), false),
      cloned_(fn.blocks.size())
{
    if (!enable)
        return;

    // ---- Phase 1: replicable-variable fixpoint. -----------------
    std::vector<bool> replicable(fn.values.size(), false);
    for (ValueId v = 0; v < static_cast<ValueId>(fn.values.size()); v++)
        replicable[v] =
            fn.values[v].is_var && fn.values[v].type == Type::kI32;

    bool changed = true;
    while (changed) {
        changed = false;
        for (const Block &blk : fn.blocks) {
            std::vector<bool> ok(fn.values.size(), false);
            for (const Instr &in : blk.instrs) {
                if (!in.has_dst())
                    continue;
                bool good = op_is_replicable(in.op);
                for (int s = 0; good && s < in.num_srcs(); s++) {
                    ValueId v = in.src[s];
                    good = fn.values[v].is_var ? replicable[v] : ok[v];
                }
                if (fn.values[in.dst].is_var) {
                    if (!good && replicable[in.dst]) {
                        replicable[in.dst] = false;
                        changed = true;
                    }
                } else {
                    ok[in.dst] = good;
                }
            }
        }
    }

    // ---- Phase 2: backward slices. ------------------------------
    // slice(block, value) -> instr indices + leaf vars, or failure.
    auto build_slice = [&](int b, ValueId root, std::set<int> &instrs,
                           std::set<ValueId> &leaves) -> bool {
        const Block &blk = fn.blocks[b];
        auto defs = def_positions(fn, blk);
        std::vector<ValueId> work{root};
        std::set<ValueId> seen;
        while (!work.empty()) {
            ValueId v = work.back();
            work.pop_back();
            if (seen.count(v))
                continue;
            seen.insert(v);
            if (fn.values[v].is_var) {
                if (!replicable[v])
                    return false;
                leaves.insert(v);
                continue;
            }
            auto it = defs.find(v);
            if (it == defs.end())
                return false;
            const Instr &in = blk.instrs[it->second];
            if (!op_is_replicable(in.op))
                return false;
            instrs.insert(it->second);
            if (static_cast<int>(instrs.size()) > max_slice)
                return false;
            for (int s = 0; s < in.num_srcs(); s++)
                work.push_back(in.src[s]);
        }
        return true;
    };

    // Branch slices seed the replicated-variable closure.
    struct BlockSlices
    {
        std::set<int> instrs;
        bool branch_ok = false;
    };
    std::vector<BlockSlices> per_block(fn.blocks.size());
    std::set<ValueId> needed;

    for (size_t b = 0; b < fn.blocks.size(); b++) {
        const Instr &term = fn.blocks[b].terminator();
        if (term.op != Op::kBranch)
            continue;
        std::set<int> instrs;
        std::set<ValueId> leaves;
        if (build_slice(static_cast<int>(b), term.src[0], instrs,
                        leaves)) {
            per_block[b].branch_ok = true;
            per_block[b].instrs.insert(instrs.begin(), instrs.end());
            needed.insert(leaves.begin(), leaves.end());
        }
    }

    // ---- Phase 3: closure over write-back slices. ---------------
    std::set<ValueId> closed;
    std::vector<ValueId> work(needed.begin(), needed.end());
    bool feasible = true;
    // One group per write-back: the slice computing a replicated
    // variable's new value plus the write-back itself.
    struct Group
    {
        int wb_idx = -1;
        ValueId var = kNoValue;
        std::set<int> instrs;
        std::set<ValueId> leaves;
    };
    std::vector<std::vector<Group>> groups(fn.blocks.size());
    while (feasible && !work.empty()) {
        ValueId v = work.back();
        work.pop_back();
        if (closed.count(v))
            continue;
        closed.insert(v);
        for (size_t b = 0; b < fn.blocks.size(); b++) {
            const Block &blk = fn.blocks[b];
            for (size_t k = 0; k < blk.instrs.size(); k++) {
                const Instr &in = blk.instrs[k];
                if (!in.has_dst() || in.dst != v)
                    continue;
                // Writes to replicable vars are write-back moves.
                Group g;
                g.wb_idx = static_cast<int>(k);
                g.var = v;
                if (!build_slice(static_cast<int>(b), in.src[0],
                                 g.instrs, g.leaves)) {
                    feasible = false;
                    break;
                }
                g.instrs.insert(static_cast<int>(k));
                for (ValueId l : g.leaves)
                    if (!closed.count(l))
                        work.push_back(l);
                groups[b].push_back(std::move(g));
            }
            if (!feasible)
                break;
        }
    }

    if (getenv("RAW_DEBUG_REPL")) {
        fprintf(stderr, "repl: feasible=%d closed=%zu\n",
                static_cast<int>(feasible), closed.size());
        for (ValueId v : closed)
            fprintf(stderr, "  closed var %s\n",
                    fn.values[v].name.c_str());
    }
    if (!feasible || closed.empty())
        return;

    // ---- Phase 4: per-block clone order + budget check. ---------
    // Order: one group per replicated-variable write-back (slice
    // computations immediately followed by the write-back), then the
    // branch slice.  Grouping keeps peak temp liveness low so the
    // switch's 8 registers suffice; when a group or the branch slice
    // reads a variable that another group overwrites, we fall back to
    // source index order (write-backs trail) to preserve semantics.
    std::vector<std::vector<int>> order(fn.blocks.size());
    std::vector<bool> branch_ok_final(fn.blocks.size(), false);
    int max_temps = 0;
    for (size_t b = 0; b < fn.blocks.size(); b++) {
        // Re-derive the branch slice against the final closure.
        std::set<int> bs_instrs;
        std::set<ValueId> bs_leaves;
        bool br = per_block[b].branch_ok;
        if (br) {
            const Instr &term = fn.blocks[b].terminator();
            br = term.op == Op::kBranch &&
                 build_slice(static_cast<int>(b), term.src[0],
                             bs_instrs, bs_leaves);
            for (ValueId l : bs_leaves)
                if (br && !closed.count(l))
                    br = false;
        }
        branch_ok_final[b] = br;
        if (groups[b].empty() && !br)
            continue;

        std::set<ValueId> written;
        for (const Group &g : groups[b])
            written.insert(g.var);
        bool hazard = false;
        for (const Group &g : groups[b])
            for (ValueId l : g.leaves)
                if (l != g.var && written.count(l))
                    hazard = true;
        if (br)
            for (ValueId l : bs_leaves)
                if (written.count(l))
                    hazard = true;

        std::vector<int> seq;
        std::set<int> emitted;
        auto push = [&](int k) {
            if (emitted.insert(k).second)
                seq.push_back(k);
        };
        std::vector<Group> ordered = groups[b];
        std::sort(ordered.begin(), ordered.end(),
                  [](const Group &x, const Group &y) {
                      return x.wb_idx < y.wb_idx;
                  });
        if (!hazard) {
            for (const Group &g : ordered)
                for (int k : g.instrs)
                    push(k);
            for (int k : bs_instrs)
                push(k);
        } else {
            // Source order with write-backs trailing.
            std::set<int> all = bs_instrs;
            std::set<int> wbs;
            for (const Group &g : ordered) {
                all.insert(g.instrs.begin(), g.instrs.end());
                wbs.insert(g.wb_idx);
            }
            for (int k : all)
                if (!wbs.count(k))
                    push(k);
            for (int k : wbs)
                push(k);
        }
        order[b] = seq;

        // Peak temp liveness over this order (the branch condition
        // stays live to the final bnez).
        std::map<ValueId, int> last_use;
        for (size_t pos = 0; pos < seq.size(); pos++) {
            const Instr &in = fn.blocks[b].instrs[seq[pos]];
            for (int s = 0; s < in.num_srcs(); s++)
                if (!fn.values[in.src[s]].is_var)
                    last_use[in.src[s]] = static_cast<int>(pos);
        }
        if (br) {
            ValueId cond = fn.blocks[b].terminator().src[0];
            if (!fn.values[cond].is_var)
                last_use[cond] = static_cast<int>(seq.size());
        }
        int live = 0, peak = 0;
        for (size_t pos = 0; pos < seq.size(); pos++) {
            const Instr &in = fn.blocks[b].instrs[seq[pos]];
            if (in.has_dst() && !fn.values[in.dst].is_var) {
                live++;
                peak = std::max(peak, live);
            }
            std::set<ValueId> freed;
            for (int s = 0; s < in.num_srcs(); s++) {
                ValueId v = in.src[s];
                auto it = last_use.find(v);
                if (it != last_use.end() &&
                    it->second == static_cast<int>(pos) &&
                    freed.insert(v).second)
                    live--;
            }
        }
        max_temps = std::max(max_temps, peak);
    }
    if (getenv("RAW_DEBUG_REPL"))
        fprintf(stderr, "repl: max_temps=%d budget=%zu/%d\n",
                max_temps, closed.size() + max_temps + 1, max_regs);
    if (static_cast<int>(closed.size()) + max_temps + 1 > max_regs)
        return;

    // ---- Commit. -------------------------------------------------
    for (ValueId v : closed) {
        replicated_[v] = true;
        n_replicated_++;
    }
    for (size_t b = 0; b < fn.blocks.size(); b++) {
        branch_replicated_[b] = branch_ok_final[b];
        cloned_[b] = order[b];
    }
}

} // namespace raw
