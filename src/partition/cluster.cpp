#include "partition/partition.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"

namespace raw {

namespace {

/** Uniform communication latency of the idealized interconnect. */
int
uniform_comm_cost(const MachineConfig &m)
{
    // inject + average mesh hops + receive.
    return 2 + (m.rows + m.cols) / 2;
}

/** Longest path from each node to any exit (comm cost on all edges). */
std::vector<int64_t>
bottom_levels(const TaskGraph &g, int comm)
{
    const int n = static_cast<int>(g.nodes().size());
    std::vector<int64_t> bl(n, 0);
    // Nodes are created in (import-after-instr) program order; compute
    // with reverse topological relaxation over explicit ordering.
    // Build a topological order first.
    std::vector<int> indeg(n, 0), order;
    for (int i = 0; i < n; i++)
        indeg[i] = static_cast<int>(g.preds(i).size());
    std::queue<int> q;
    for (int i = 0; i < n; i++)
        if (indeg[i] == 0)
            q.push(i);
    while (!q.empty()) {
        int v = q.front();
        q.pop();
        order.push_back(v);
        for (int s : g.succs(v))
            if (--indeg[s] == 0)
                q.push(s);
    }
    check(static_cast<int>(order.size()) == n,
          "taskgraph has a cycle");
    for (int k = n; k-- > 0;) {
        int v = order[k];
        int64_t best = 0;
        for (int s : g.succs(v))
            best = std::max(best, comm + bl[s]);
        bl[v] = g.nodes()[v].cost + best;
    }
    return bl;
}

} // namespace

Clustering
cluster_taskgraph(const TaskGraph &g, const MachineConfig &machine,
                  const PartitionOptions &opts)
{
    const int n = static_cast<int>(g.nodes().size());
    Clustering c;
    c.cluster_of.assign(n, -1);

    if (opts.cluster_mode == ClusterMode::kUnitNodes || n == 0) {
        for (int i = 0; i < n; i++)
            c.cluster_of[i] = i;
        c.n_clusters = n;
        c.pin_of.assign(std::max(n, 1), -1);
        c.cost_of.assign(std::max(n, 1), 0);
        for (int i = 0; i < n; i++) {
            c.pin_of[i] = g.nodes()[i].pin;
            c.cost_of[i] = g.nodes()[i].cost;
        }
        return c;
    }

    const int comm = uniform_comm_cost(machine);
    std::vector<int64_t> blevel = bottom_levels(g, comm);

    // Dominant Sequence Clustering (one-pass greedy): visit nodes in
    // topological order, always expanding the candidate with the
    // longest remaining path; try to absorb the node into a parent's
    // cluster when that reduces its start time.
    std::vector<int> cluster_pin;     // per cluster
    std::vector<int64_t> cluster_free; // earliest free time per cluster
    std::vector<int64_t> finish(n, 0);
    std::vector<int> unvisited_preds(n, 0);

    auto new_cluster = [&](int pin) {
        cluster_pin.push_back(pin);
        cluster_free.push_back(0);
        return static_cast<int>(cluster_pin.size()) - 1;
    };

    using Cand = std::pair<int64_t, int>; // (priority, node)
    std::priority_queue<Cand> ready;
    for (int i = 0; i < n; i++) {
        unvisited_preds[i] = static_cast<int>(g.preds(i).size());
        if (unvisited_preds[i] == 0)
            ready.push({blevel[i], i});
    }

    int visited = 0;
    while (!ready.empty()) {
        int v = ready.top().second;
        ready.pop();
        visited++;
        const TGNode &nd = g.nodes()[v];

        // Start time if v opens its own cluster.
        int64_t t_alone = 0;
        for (int p : g.preds(v))
            t_alone = std::max(t_alone, finish[p] + comm);

        int best_cluster = -1;
        int64_t best_t = t_alone;
        for (int p : g.preds(v)) {
            int pc = c.cluster_of[p];
            // Pin compatibility.
            if (nd.pin >= 0 && cluster_pin[pc] >= 0 &&
                cluster_pin[pc] != nd.pin)
                continue;
            int64_t t = cluster_free[pc];
            for (int q : g.preds(v)) {
                int64_t arrive =
                    finish[q] + (c.cluster_of[q] == pc ? 0 : comm);
                t = std::max(t, arrive);
            }
            if (t < best_t || (t == best_t && best_cluster < 0 &&
                               t < t_alone)) {
                best_t = t;
                best_cluster = pc;
            }
        }

        int cl = best_cluster;
        if (cl < 0) {
            cl = new_cluster(nd.pin);
            best_t = t_alone;
        } else if (nd.pin >= 0 && cluster_pin[cl] < 0) {
            cluster_pin[cl] = nd.pin;
        }
        c.cluster_of[v] = cl;
        finish[v] = best_t + nd.cost;
        cluster_free[cl] = finish[v];

        for (int s : g.succs(v))
            if (--unvisited_preds[s] == 0)
                ready.push({blevel[s], s});
    }
    check(visited == n, "DSC did not visit all nodes");

    // Compact cluster ids and fill metadata.
    std::vector<int> remap(cluster_pin.size(), -1);
    int next = 0;
    for (int i = 0; i < n; i++) {
        int &cl = c.cluster_of[i];
        if (remap[cl] < 0)
            remap[cl] = next++;
        cl = remap[cl];
    }
    c.n_clusters = next;
    c.pin_of.assign(next, -1);
    c.cost_of.assign(next, 0);
    for (int i = 0; i < n; i++) {
        int cl = c.cluster_of[i];
        if (g.nodes()[i].pin >= 0) {
            check(c.pin_of[cl] < 0 || c.pin_of[cl] == g.nodes()[i].pin,
                  "cluster with conflicting pins");
            c.pin_of[cl] = g.nodes()[i].pin;
        }
        c.cost_of[cl] += g.nodes()[i].cost;
    }
    return c;
}

} // namespace raw
