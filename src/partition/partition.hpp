#ifndef RAW_PARTITION_PARTITION_HPP
#define RAW_PARTITION_PARTITION_HPP

/**
 * @file
 * Instruction partitioner (Section 4.1): clustering, merging,
 * placement.
 *
 *  - *Clustering* groups instructions whose parallelism is too fine to
 *    pay for communication, using the Dominant Sequence Clustering
 *    heuristic of Yang & Gerasoulis under an idealized fully-connected
 *    interconnect with uniform latency.
 *  - *Merging* reduces the clusters to N partitions using the load
 *    balance heuristic: visit clusters in decreasing size and merge
 *    each into the least-loaded partition.
 *  - *Placement* drops the idealized-interconnect assumption and maps
 *    partitions onto physical mesh tiles, greedily swapping pairs to
 *    reduce total communication hops (optionally refined by simulated
 *    annealing).
 *
 * Nodes pinned to a tile (static memory references, variable homes)
 * constrain all three phases.
 */

#include <vector>

#include "analysis/taskgraph.hpp"
#include "machine/machine.hpp"

namespace raw {

/** Clustering algorithm selection (for ablation benches). */
enum class ClusterMode : uint8_t {
    kDSC,        ///< Dominant Sequence Clustering (the paper's choice)
    kUnitNodes,  ///< no clustering: every node its own cluster
};

/** Placement algorithm selection (for ablation benches). */
enum class PlaceMode : uint8_t {
    kGreedySwap, ///< greedy pairwise improvement (the paper's choice)
    kAnneal,     ///< simulated annealing refinement
    kArbitrary,  ///< identity mapping, no optimization
};

/** Distance scale of the feedback-aware placement cost (one hop). */
constexpr int64_t kPlaceDistUnit = 8;
/** Largest per-tile penalty: one fully-contended tile ~ one hop. */
constexpr int64_t kPlacePenaltyMax = 8;

/**
 * Per-tile congestion penalties observed in a profiling run
 * (profile-guided placement, --pgo).  Empty vectors mean "no
 * feedback", and placement then uses the pure hop-distance cost,
 * bit-identical to a build without PGO.  With feedback, each word
 * touching tile t pays comm_penalty[t] on top of kPlaceDistUnit per
 * hop, and each unit of compute placed on t pays proc_penalty[t] —
 * both normalized to 0..kPlacePenaltyMax — so movable partitions
 * drift away from the switches and processors the profiled run
 * actually saturated (typically regions around pinned memory homes).
 */
struct PlacementFeedback
{
    /** Per-tile switch-congestion penalty (empty = none). */
    std::vector<int64_t> comm_penalty;
    /** Per-tile processor-occupancy penalty (empty = none). */
    std::vector<int64_t> proc_penalty;

    bool empty() const
    {
        return comm_penalty.empty() && proc_penalty.empty();
    }
};

/** Options for the partitioner. */
struct PartitionOptions
{
    ClusterMode cluster_mode = ClusterMode::kDSC;
    PlaceMode place_mode = PlaceMode::kGreedySwap;
    /** RNG seed for annealing / tie-breaking. */
    uint32_t seed = 1;
    /** Profiled congestion penalties (PGO); empty = distance only. */
    PlacementFeedback feedback;
    /**
     * Criticality-weighted placement traffic (PGO): weight each
     * cross-partition edge by how close it sits to the task graph's
     * critical path, so placement shortens the hops that actually
     * gate the schedule instead of treating every word equally.  An
     * edge with zero slack counts (1 + crit_weight) times; an edge
     * with maximal slack counts once.  0 (default) keeps the
     * seed's uniform word counts bit-identical.
     */
    int crit_weight = 0;
};

/** Intermediate result of the clustering phase. */
struct Clustering
{
    /** Cluster id per node. */
    std::vector<int> cluster_of;
    /** Number of clusters. */
    int n_clusters = 0;
    /** Required tile per cluster (-1 if free). */
    std::vector<int> pin_of;
    /** Total computation cost per cluster. */
    std::vector<int64_t> cost_of;
};

/** Final result: a tile for every task graph node. */
struct Partition
{
    std::vector<int> tile_of;
    /** Number of edges whose endpoints ended up on different tiles. */
    int cross_edges = 0;
    /** Candidate swaps evaluated during placement (perf tracking). */
    int64_t swaps_evaluated = 0;
};

/**
 * Total hop-weighted communication cost of mapping partitions onto
 * tiles: sum over partition pairs of traffic × mesh distance.
 * @p w is the symmetric partition-to-partition word-traffic matrix.
 */
int64_t placement_assignment_cost(
    const std::vector<std::vector<int>> &w,
    const std::vector<int> &tile_of_partition,
    const MachineConfig &machine);

/**
 * Cost change from swapping the tiles of partitions @p i and @p j,
 * in O(n) instead of the O(n²) full recompute: only terms involving
 * i or j change, and the w[i][j] term is invariant because mesh
 * distance is symmetric.
 */
int64_t placement_swap_delta(
    const std::vector<std::vector<int>> &w,
    const std::vector<int> &tile_of_partition,
    const MachineConfig &machine, int i, int j);

/** Phase 1: cluster @p g (uniform-latency model). */
Clustering cluster_taskgraph(const TaskGraph &g,
                             const MachineConfig &machine,
                             const PartitionOptions &opts);

/**
 * Phase 2: merge clusters into at most @p machine.n_tiles partitions
 * (load balance heuristic).  Returns a new Clustering whose ids are
 * partition ids, with pins propagated.
 */
Clustering merge_clusters(const TaskGraph &g, const Clustering &c,
                          const MachineConfig &machine);

/** Phase 3: map partitions onto tiles and produce the final result. */
Partition place_partitions(const TaskGraph &g, const Clustering &merged,
                           const MachineConfig &machine,
                           const PartitionOptions &opts);

/** All three phases. */
Partition partition_taskgraph(const TaskGraph &g,
                              const MachineConfig &machine,
                              const PartitionOptions &opts);

} // namespace raw

#endif // RAW_PARTITION_PARTITION_HPP
