#include "partition/partition.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "support/error.hpp"

namespace raw {

namespace {

/** Word traffic between each pair of partitions. */
std::vector<std::vector<int>>
traffic_matrix(const TaskGraph &g, const Clustering &merged, int n_tiles)
{
    std::vector<std::vector<int>> w(n_tiles,
                                    std::vector<int>(n_tiles, 0));
    for (const TGEdge &e : g.edges()) {
        int a = merged.cluster_of[e.from];
        int b = merged.cluster_of[e.to];
        if (a != b) {
            w[a][b]++;
            w[b][a]++;
        }
    }
    return w;
}

} // namespace

int64_t
placement_assignment_cost(const std::vector<std::vector<int>> &w,
                          const std::vector<int> &tile_of_partition,
                          const MachineConfig &machine)
{
    int64_t cost = 0;
    const int n = static_cast<int>(tile_of_partition.size());
    for (int a = 0; a < n; a++)
        for (int b = a + 1; b < n; b++)
            cost += static_cast<int64_t>(w[a][b]) *
                    machine.distance(tile_of_partition[a],
                                     tile_of_partition[b]);
    return cost;
}

int64_t
placement_swap_delta(const std::vector<std::vector<int>> &w,
                     const std::vector<int> &tile_of_partition,
                     const MachineConfig &machine, int i, int j)
{
    const int n = static_cast<int>(tile_of_partition.size());
    const int ti = tile_of_partition[i];
    const int tj = tile_of_partition[j];
    int64_t delta = 0;
    for (int k = 0; k < n; k++) {
        if (k == i || k == j)
            continue;
        const int tk = tile_of_partition[k];
        if (w[i][k])
            delta += static_cast<int64_t>(w[i][k]) *
                     (machine.distance(tj, tk) -
                      machine.distance(ti, tk));
        if (w[j][k])
            delta += static_cast<int64_t>(w[j][k]) *
                     (machine.distance(ti, tk) -
                      machine.distance(tj, tk));
    }
    return delta;
}

Partition
place_partitions(const TaskGraph &g, const Clustering &merged,
                 const MachineConfig &machine,
                 const PartitionOptions &opts)
{
    const int n_tiles = machine.n_tiles;
    check(merged.n_clusters == n_tiles,
          "placement expects one partition per tile");

    // Initial assignment: pinned partitions are fixed on their tiles;
    // the rest take the remaining tiles in order.
    std::vector<int> tile_of_partition(n_tiles, -1);
    std::vector<bool> tile_used(n_tiles, false);
    std::vector<int> movable;
    for (int p = 0; p < n_tiles; p++)
        if (merged.pin_of[p] >= 0) {
            tile_of_partition[p] = merged.pin_of[p];
            tile_used[merged.pin_of[p]] = true;
        } else {
            movable.push_back(p);
        }
    {
        int t = 0;
        for (int p : movable) {
            while (tile_used[t])
                t++;
            tile_of_partition[p] = t;
            tile_used[t] = true;
        }
    }

    std::vector<std::vector<int>> w =
        traffic_matrix(g, merged, n_tiles);

    int64_t swaps_evaluated = 0;
    // Candidate swaps are evaluated by the O(n) delta, not the O(n²)
    // full recompute; `cur` is carried incrementally.  Accept
    // decisions are on exact integer deltas, so the optimized loops
    // pick the same placements as the full-recompute versions.
    auto delta_of = [&](int pi, int pj) {
        swaps_evaluated++;
        int64_t d = placement_swap_delta(w, tile_of_partition,
                                         machine, pi, pj);
#ifndef NDEBUG
        int64_t pre = placement_assignment_cost(w, tile_of_partition,
                                                machine);
        std::swap(tile_of_partition[pi], tile_of_partition[pj]);
        int64_t post = placement_assignment_cost(w, tile_of_partition,
                                                 machine);
        std::swap(tile_of_partition[pi], tile_of_partition[pj]);
        check(post - pre == d,
              "placement: swap delta disagrees with full recompute");
#endif
        return d;
    };

    if (opts.place_mode != PlaceMode::kArbitrary &&
        movable.size() > 1) {
        int64_t cur =
            placement_assignment_cost(w, tile_of_partition, machine);
        if (opts.place_mode == PlaceMode::kGreedySwap) {
            bool improved = true;
            while (improved) {
                improved = false;
                for (size_t i = 0; i < movable.size(); i++) {
                    for (size_t j = i + 1; j < movable.size(); j++) {
                        int64_t d = delta_of(movable[i], movable[j]);
                        if (d < 0) {
                            std::swap(tile_of_partition[movable[i]],
                                      tile_of_partition[movable[j]]);
                            cur += d;
                            improved = true;
                        }
                    }
                }
            }
        } else { // kAnneal
            std::mt19937 rng(opts.seed);
            std::uniform_int_distribution<int> pick(
                0, static_cast<int>(movable.size()) - 1);
            std::uniform_real_distribution<double> unit(0.0, 1.0);
            double temp = 8.0;
            std::vector<int> best = tile_of_partition;
            int64_t best_cost = cur;
            for (int iter = 0; iter < 4000; iter++) {
                int i = movable[pick(rng)];
                int j = movable[pick(rng)];
                if (i == j)
                    continue;
                int64_t d = delta_of(i, j);
                // The RNG is drawn only on uphill candidates, exactly
                // as the full-recompute loop did, so the accept
                // stream (and final placement) is unchanged.
                if (d <= 0 || unit(rng) < std::exp(-double(d) / temp)) {
                    std::swap(tile_of_partition[i],
                              tile_of_partition[j]);
                    cur += d;
                    if (cur < best_cost) {
                        best_cost = cur;
                        best = tile_of_partition;
                    }
                }
                temp *= 0.999;
            }
            tile_of_partition = best;
        }
    }

    Partition out;
    out.swaps_evaluated = swaps_evaluated;
    out.tile_of.assign(g.nodes().size(), 0);
    for (size_t i = 0; i < g.nodes().size(); i++)
        out.tile_of[i] = tile_of_partition[merged.cluster_of[i]];
    for (const TGEdge &e : g.edges())
        if (out.tile_of[e.from] != out.tile_of[e.to])
            out.cross_edges++;

    // Pins must be honored exactly.
    for (size_t i = 0; i < g.nodes().size(); i++)
        check(g.nodes()[i].pin < 0 ||
                  g.nodes()[i].pin == out.tile_of[i],
              "placement violated a pin");
    return out;
}

Partition
partition_taskgraph(const TaskGraph &g, const MachineConfig &machine,
                    const PartitionOptions &opts)
{
    Clustering c = cluster_taskgraph(g, machine, opts);
    Clustering m = merge_clusters(g, c, machine);
    return place_partitions(g, m, machine, opts);
}

} // namespace raw
