#include "partition/partition.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "support/error.hpp"

namespace raw {

namespace {

/** Word traffic between each pair of partitions. */
std::vector<std::vector<int>>
traffic_matrix(const TaskGraph &g, const Clustering &merged, int n_tiles)
{
    std::vector<std::vector<int>> w(n_tiles,
                                    std::vector<int>(n_tiles, 0));
    for (const TGEdge &e : g.edges()) {
        int a = merged.cluster_of[e.from];
        int b = merged.cluster_of[e.to];
        if (a != b) {
            w[a][b]++;
            w[b][a]++;
        }
    }
    return w;
}

/**
 * Per-edge slack under an idealized uniform-latency interconnect:
 * span minus the longest path through the edge.  Zero for edges on
 * the critical path.
 */
std::vector<int64_t>
edge_slack(const TaskGraph &g, int64_t &span_out)
{
    const int n = static_cast<int>(g.nodes().size());
    constexpr int64_t kComm = 2; // idealized cross-partition latency

    // Topological order via repeated ready-set sweeps.
    std::vector<int> indeg(n, 0), order;
    order.reserve(n);
    for (int v = 0; v < n; v++)
        indeg[v] = static_cast<int>(g.preds(v).size());
    std::vector<int> q;
    for (int v = 0; v < n; v++)
        if (indeg[v] == 0)
            q.push_back(v);
    while (!q.empty()) {
        int v = q.back();
        q.pop_back();
        order.push_back(v);
        for (int s : g.succs(v))
            if (--indeg[s] == 0)
                q.push_back(s);
    }

    std::vector<int64_t> level(n, 0), est(n, 0);
    for (int k = static_cast<int>(order.size()); k-- > 0;) {
        int v = order[k];
        int64_t lvl = 0;
        for (int s : g.succs(v))
            lvl = std::max(lvl, kComm + level[s]);
        level[v] = g.nodes()[v].cost + lvl;
    }
    for (int v : order)
        for (int s : g.succs(v))
            est[s] = std::max(est[s],
                              est[v] + g.nodes()[v].cost + kComm);
    int64_t span = 0;
    for (int v = 0; v < n; v++)
        span = std::max(span, est[v] + level[v]);
    span_out = span;

    std::vector<int64_t> slack(g.edges().size(), 0);
    for (size_t e = 0; e < g.edges().size(); e++) {
        const TGEdge &edge = g.edges()[e];
        int64_t through = est[edge.from] +
                          g.nodes()[edge.from].cost + kComm +
                          level[edge.to];
        slack[e] = std::max<int64_t>(0, span - through);
    }
    return slack;
}

/**
 * Criticality-weighted traffic: each cross-partition edge counts
 * 1 + crit_weight * (span - slack) / span words, so tight edges pull
 * their endpoint partitions together harder than slack ones.
 */
std::vector<std::vector<int>>
critical_traffic_matrix(const TaskGraph &g, const Clustering &merged,
                        int n_tiles, int crit_weight)
{
    int64_t span = 0;
    std::vector<int64_t> slack = edge_slack(g, span);
    std::vector<std::vector<int>> w(n_tiles,
                                    std::vector<int>(n_tiles, 0));
    for (size_t e = 0; e < g.edges().size(); e++) {
        const TGEdge &edge = g.edges()[e];
        int a = merged.cluster_of[edge.from];
        int b = merged.cluster_of[edge.to];
        if (a == b)
            continue;
        int64_t bonus =
            span > 0 ? (crit_weight * (span - slack[e])) / span : 0;
        int wt = 1 + static_cast<int>(bonus);
        w[a][b] += wt;
        w[b][a] += wt;
    }
    return w;
}

} // namespace

int64_t
placement_assignment_cost(const std::vector<std::vector<int>> &w,
                          const std::vector<int> &tile_of_partition,
                          const MachineConfig &machine)
{
    int64_t cost = 0;
    const int n = static_cast<int>(tile_of_partition.size());
    for (int a = 0; a < n; a++)
        for (int b = a + 1; b < n; b++)
            cost += static_cast<int64_t>(w[a][b]) *
                    machine.distance(tile_of_partition[a],
                                     tile_of_partition[b]);
    return cost;
}

int64_t
placement_swap_delta(const std::vector<std::vector<int>> &w,
                     const std::vector<int> &tile_of_partition,
                     const MachineConfig &machine, int i, int j)
{
    const int n = static_cast<int>(tile_of_partition.size());
    const int ti = tile_of_partition[i];
    const int tj = tile_of_partition[j];
    int64_t delta = 0;
    for (int k = 0; k < n; k++) {
        if (k == i || k == j)
            continue;
        const int tk = tile_of_partition[k];
        if (w[i][k])
            delta += static_cast<int64_t>(w[i][k]) *
                     (machine.distance(tj, tk) -
                      machine.distance(ti, tk));
        if (w[j][k])
            delta += static_cast<int64_t>(w[j][k]) *
                     (machine.distance(ti, tk) -
                      machine.distance(tj, tk));
    }
    return delta;
}

Partition
place_partitions(const TaskGraph &g, const Clustering &merged,
                 const MachineConfig &machine,
                 const PartitionOptions &opts)
{
    const int n_tiles = machine.n_tiles;
    check(merged.n_clusters == n_tiles,
          "placement expects one partition per tile");

    // Initial assignment: pinned partitions are fixed on their tiles;
    // the rest take the remaining tiles in order.
    std::vector<int> tile_of_partition(n_tiles, -1);
    std::vector<bool> tile_used(n_tiles, false);
    std::vector<int> movable;
    for (int p = 0; p < n_tiles; p++)
        if (merged.pin_of[p] >= 0) {
            tile_of_partition[p] = merged.pin_of[p];
            tile_used[merged.pin_of[p]] = true;
        } else {
            movable.push_back(p);
        }
    {
        int t = 0;
        for (int p : movable) {
            while (tile_used[t])
                t++;
            tile_of_partition[p] = t;
            tile_used[t] = true;
        }
    }

    std::vector<std::vector<int>> w =
        opts.crit_weight > 0
            ? critical_traffic_matrix(g, merged, n_tiles,
                                      opts.crit_weight)
            : traffic_matrix(g, merged, n_tiles);

    // Profile-guided placement: fold per-tile congestion penalties
    // into the cost model.  Without feedback the original pure-
    // distance functions run unchanged (identical costs, identical
    // anneal accept stream), so a non-PGO build is bit-identical.
    const PlacementFeedback &fb = opts.feedback;
    const bool use_fb = !fb.empty();
    auto pen_c = [&](int t) -> int64_t {
        return t < static_cast<int>(fb.comm_penalty.size())
                   ? fb.comm_penalty[t]
                   : 0;
    };
    auto pen_p = [&](int t) -> int64_t {
        return t < static_cast<int>(fb.proc_penalty.size())
                   ? fb.proc_penalty[t]
                   : 0;
    };
    // Pre-scaled per-partition compute weight keeps the swap delta
    // linear (integer division inside the delta would not be).
    std::vector<int64_t> comp(n_tiles, 0);
    if (use_fb)
        for (int p = 0; p < n_tiles; p++)
            comp[p] = merged.cost_of[p] / kPlacePenaltyMax;

    auto fb_cost = [&]() {
        int64_t cost = 0;
        for (int a = 0; a < n_tiles; a++) {
            const int ta = tile_of_partition[a];
            for (int b = a + 1; b < n_tiles; b++) {
                const int tb = tile_of_partition[b];
                if (w[a][b])
                    cost += static_cast<int64_t>(w[a][b]) *
                            (kPlaceDistUnit *
                                 machine.distance(ta, tb) +
                             pen_c(ta) + pen_c(tb));
            }
            cost += comp[a] * pen_p(ta);
        }
        return cost;
    };

    int64_t swaps_evaluated = 0;
    // Candidate swaps are evaluated by the O(n) delta, not the O(n²)
    // full recompute; `cur` is carried incrementally.  Accept
    // decisions are on exact integer deltas, so the optimized loops
    // pick the same placements as the full-recompute versions.
    auto delta_of = [&](int pi, int pj) {
        swaps_evaluated++;
        int64_t d = placement_swap_delta(w, tile_of_partition,
                                         machine, pi, pj);
        if (use_fb) {
            // Penalty terms of the swap, still O(n): the (pi,pj)
            // pair's penalty sum is symmetric and cancels, every
            // other pair swaps one endpoint's penalty.
            const int ti = tile_of_partition[pi];
            const int tj = tile_of_partition[pj];
            int64_t wi = 0, wj = 0;
            for (int k = 0; k < n_tiles; k++) {
                if (k == pi || k == pj)
                    continue;
                wi += w[pi][k];
                wj += w[pj][k];
            }
            d = kPlaceDistUnit * d +
                (pen_c(tj) - pen_c(ti)) * (wi - wj) +
                (pen_p(tj) - pen_p(ti)) * (comp[pi] - comp[pj]);
        }
#ifndef NDEBUG
        auto full = [&]() {
            return use_fb ? fb_cost()
                          : placement_assignment_cost(
                                w, tile_of_partition, machine);
        };
        int64_t pre = full();
        std::swap(tile_of_partition[pi], tile_of_partition[pj]);
        int64_t post = full();
        std::swap(tile_of_partition[pi], tile_of_partition[pj]);
        check(post - pre == d,
              "placement: swap delta disagrees with full recompute");
#endif
        return d;
    };

    if (opts.place_mode != PlaceMode::kArbitrary &&
        movable.size() > 1) {
        int64_t cur =
            use_fb ? fb_cost()
                   : placement_assignment_cost(w, tile_of_partition,
                                               machine);
        if (opts.place_mode == PlaceMode::kGreedySwap) {
            bool improved = true;
            while (improved) {
                improved = false;
                for (size_t i = 0; i < movable.size(); i++) {
                    for (size_t j = i + 1; j < movable.size(); j++) {
                        int64_t d = delta_of(movable[i], movable[j]);
                        if (d < 0) {
                            std::swap(tile_of_partition[movable[i]],
                                      tile_of_partition[movable[j]]);
                            cur += d;
                            improved = true;
                        }
                    }
                }
            }
        } else { // kAnneal
            std::mt19937 rng(opts.seed);
            std::uniform_int_distribution<int> pick(
                0, static_cast<int>(movable.size()) - 1);
            std::uniform_real_distribution<double> unit(0.0, 1.0);
            // Feedback-mode costs carry the kPlaceDistUnit scale, so
            // the start temperature scales with them to keep the
            // accept probabilities comparable.
            double temp = use_fb ? 8.0 * kPlaceDistUnit : 8.0;
            std::vector<int> best = tile_of_partition;
            int64_t best_cost = cur;
            for (int iter = 0; iter < 4000; iter++) {
                int i = movable[pick(rng)];
                int j = movable[pick(rng)];
                if (i == j)
                    continue;
                int64_t d = delta_of(i, j);
                // The RNG is drawn only on uphill candidates, exactly
                // as the full-recompute loop did, so the accept
                // stream (and final placement) is unchanged.
                if (d <= 0 || unit(rng) < std::exp(-double(d) / temp)) {
                    std::swap(tile_of_partition[i],
                              tile_of_partition[j]);
                    cur += d;
                    if (cur < best_cost) {
                        best_cost = cur;
                        best = tile_of_partition;
                    }
                }
                temp *= 0.999;
            }
            tile_of_partition = best;
        }
    }

    Partition out;
    out.swaps_evaluated = swaps_evaluated;
    out.tile_of.assign(g.nodes().size(), 0);
    for (size_t i = 0; i < g.nodes().size(); i++)
        out.tile_of[i] = tile_of_partition[merged.cluster_of[i]];
    for (const TGEdge &e : g.edges())
        if (out.tile_of[e.from] != out.tile_of[e.to])
            out.cross_edges++;

    // Pins must be honored exactly.
    for (size_t i = 0; i < g.nodes().size(); i++)
        check(g.nodes()[i].pin < 0 ||
                  g.nodes()[i].pin == out.tile_of[i],
              "placement violated a pin");
    return out;
}

Partition
partition_taskgraph(const TaskGraph &g, const MachineConfig &machine,
                    const PartitionOptions &opts)
{
    Clustering c = cluster_taskgraph(g, machine, opts);
    Clustering m = merge_clusters(g, c, machine);
    return place_partitions(g, m, machine, opts);
}

} // namespace raw
