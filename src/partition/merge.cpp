#include "partition/partition.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace raw {

Clustering
merge_clusters(const TaskGraph &g, const Clustering &c,
               const MachineConfig &machine)
{
    const int n_tiles = machine.n_tiles;
    const int n = static_cast<int>(g.nodes().size());

    Clustering out;
    out.n_clusters = n_tiles;
    out.pin_of.assign(n_tiles, -1);
    out.cost_of.assign(n_tiles, 0);
    out.cluster_of.assign(n, -1);

    // Partition k is pre-bound to tile k whenever some cluster is
    // pinned there; unpinned partitions are bound later by placement.
    // We therefore merge pinned clusters by their pin, and free
    // clusters by load balance (visit in decreasing size, merge into
    // the least-loaded partition), per the paper.
    std::vector<int> partition_of_cluster(c.n_clusters, -1);
    for (int cl = 0; cl < c.n_clusters; cl++)
        if (c.pin_of[cl] >= 0) {
            int p = c.pin_of[cl];
            partition_of_cluster[cl] = p;
            out.pin_of[p] = p;
            out.cost_of[p] += c.cost_of[cl];
        }

    std::vector<int> free_clusters;
    for (int cl = 0; cl < c.n_clusters; cl++)
        if (partition_of_cluster[cl] < 0)
            free_clusters.push_back(cl);
    std::sort(free_clusters.begin(), free_clusters.end(),
              [&](int a, int b) { return c.cost_of[a] > c.cost_of[b]; });

    for (int cl : free_clusters) {
        int best = 0;
        for (int p = 1; p < n_tiles; p++)
            if (out.cost_of[p] < out.cost_of[best])
                best = p;
        partition_of_cluster[cl] = best;
        out.cost_of[best] += c.cost_of[cl];
    }

    for (int i = 0; i < n; i++)
        out.cluster_of[i] = partition_of_cluster[c.cluster_of[i]];
    return out;
}

} // namespace raw
