#ifndef RAW_SIM_SIMULATOR_HPP
#define RAW_SIM_SIMULATOR_HPP

/**
 * @file
 * Instruction-level simulator of the Raw prototype (Section 3.1).
 *
 * Cycle-driven model of N tiles.  Each tile has:
 *  - an in-order, scoreboarded processor executing its TileProgram
 *    with Table 1 latencies (fully pipelined FUs: one issue per cycle,
 *    results ready after the op latency);
 *  - a static switch executing its SwitchProgram; a ROUTE instruction
 *    fires only when every input word is present and every output
 *    port has space (blocking semantics = near-neighbor flow control);
 *  - single-reader/single-writer port FIFOs between processor and
 *    switch and between neighboring switches (one-cycle hop);
 *  - a dynamic-network interface with a remote-memory handler
 *    (Section 5.1): wormhole routing is abstracted to a
 *    distance-proportional delivery latency plus serialized handler
 *    occupancy (a documented substitution — see DESIGN.md).
 *
 * A FaultConfig injects random dynamic events over four independent
 * channels (memory-miss latency, static-network route stalls,
 * dynamic-network message delay, per-tile clock jitter); by the
 * static ordering property (Appendix A) results must not change,
 * which the test suite and the fault campaign
 * (src/harness/campaign.hpp) verify.  An opt-in CheckConfig layers
 * live self-checking on top (sim/checker.hpp).
 *
 * Deadlock is detected exactly: when the machine is frozen with no
 * time-gated event pending it can never move again, and a
 * wait-for-graph cycle over processors/switches/port FIFOs is
 * reported (sim/deadlock.cpp).  A stall-count timeout remains as a
 * backstop for perturbation channels that redraw every cycle.
 */

#include <cstdint>
#include <array>
#include <chrono>
#include <deque>
#include <string>
#include <vector>

#include <memory>

#include "sim/checker.hpp"
#include "sim/isa.hpp"
#include "sim/memory.hpp"
#include "sim/profile.hpp"

namespace raw {

/**
 * A bounded port FIFO with one-cycle visibility (pipelined hop).
 *
 * Fixed-capacity ring buffer.  Every operation is stamped with the
 * current cycle; per-cycle push/pop counters (reset lazily when the
 * stamp advances) reproduce the latched-snapshot semantics the old
 * begin_cycle() sweep provided, without any per-cycle work on
 * untouched FIFOs: a word pushed in cycle t is poppable no earlier
 * than t+1 (avail = size - pushes_this_cycle), and space freed by a
 * pop opens no earlier than the next cycle edge
 * (space = cap - size - pops_this_cycle).  Violations (popping
 * without can_pop(), pushing without can_push()) are simulator bugs
 * and panic instead of silently forwarding same-cycle.
 *
 * Cycle stamps must be non-decreasing, which also makes the
 * simulator's quiescence fast-forward (jumping @c now over frozen
 * stretches) transparent to the FIFO.
 */
class Fifo
{
  public:
    static constexpr int kMaxCap = 4;

    explicit Fifo(int cap = 2) : cap_(cap)
    {
        if (cap < 1 || cap > kMaxCap)
            panic("fifo: capacity out of range");
    }

    bool
    can_pop(int64_t now) const
    {
        return size_ - pushed_this(now) > 0;
    }
    uint32_t
    pop(int64_t now)
    {
        sync(now);
        if (size_ - pushes_ <= 0)
            panic("fifo: pop without can_pop (same-cycle visibility "
                  "violation)");
        uint32_t v = buf_[head_];
        head_ = head_ + 1 == cap_ ? 0 : head_ + 1;
        size_--;
        pops_++;
        return v;
    }
    /** Peek without consuming (multicast routes replicate the word). */
    uint32_t
    front(int64_t now) const
    {
        if (size_ - pushed_this(now) <= 0)
            panic("fifo: front without can_pop (same-cycle visibility "
                  "violation)");
        return buf_[head_];
    }
    bool
    can_push(int64_t now) const
    {
        return cap_ - size_ - popped_this(now) > 0;
    }
    void
    push(int64_t now, uint32_t v)
    {
        sync(now);
        if (cap_ - size_ - pops_ <= 0)
            panic("fifo: push without can_push (overrun or same-cycle "
                  "reuse of freed space)");
        int idx = head_ + size_;
        if (idx >= cap_)
            idx -= cap_;
        buf_[idx] = v;
        size_++;
        pushes_++;
    }
    bool empty() const { return size_ == 0; }
    /**
     * At capacity.  Together with empty() this gives the exact value
     * of can_push/can_pop for any *strictly future* cycle: stamps
     * never exceed the current cycle, so pushed_this/popped_this are
     * zero there and the probe reduces to raw occupancy.
     */
    bool full() const { return size_ >= cap_; }
    /** Current occupancy (checker cross-validation). */
    int size() const { return size_; }
    /** Ring invariants hold (occupancy and counters in bounds). */
    bool audit_bounds() const
    {
        return size_ >= 0 && size_ <= cap_ && head_ >= 0 &&
               head_ < cap_ && pushes_ >= 0 && pushes_ <= cap_ &&
               pops_ >= 0 && pops_ <= cap_;
    }

  private:
    int
    pushed_this(int64_t now) const
    {
        return cycle_ == now ? pushes_ : 0;
    }
    int
    popped_this(int64_t now) const
    {
        return cycle_ == now ? pops_ : 0;
    }
    void
    sync(int64_t now)
    {
        if (cycle_ != now) {
            cycle_ = now;
            pushes_ = 0;
            pops_ = 0;
        }
    }

    uint32_t buf_[kMaxCap] = {0, 0, 0, 0};
    int head_ = 0;
    int size_ = 0;
    int cap_;
    /** Cycle the per-cycle counters refer to. */
    int64_t cycle_ = -1;
    int pushes_ = 0;
    int pops_ = 0;
};

/**
 * Multi-channel dynamic-event injection configuration.
 *
 * Four independent fault channels, each driven by its own xorshift64*
 * stream derived from @c seed, so enabling one channel never perturbs
 * another channel's draw sequence and every campaign point is
 * reproducible:
 *  - memory-miss latency: a memory access takes @c penalty extra
 *    cycles with probability @c miss_rate;
 *  - static-network route stalls: after a switch retires, it is held
 *    for @c route_stall_cycles of extra occupancy with probability
 *    @c route_stall_rate (drawn once per retiring cycle, so the
 *    quiescence fast-forward stays draw-free);
 *  - dynamic-network delay: a delivered message (request or reply) is
 *    held @c dyn_delay_cycles extra with probability
 *    @c dyn_delay_rate;
 *  - clock jitter: a tile processor skips its issue opportunity with
 *    probability @c jitter_rate per cycle (models per-tile clock
 *    skew).  Jitter redraws every cycle, so it disables the
 *    quiescence fast-forward and the exact frozen-machine deadlock
 *    detector; the stall-count timeout backstop still applies.
 */
struct FaultConfig
{
    /** Probability a memory access takes extra latency. */
    double miss_rate = 0.0;
    /** Extra cycles per injected miss. */
    int penalty = 20;
    /** RNG seed (deterministic per run; salts all four streams). */
    uint64_t seed = 0;

    /** Probability a retiring switch is held afterwards. */
    double route_stall_rate = 0.0;
    /** Extra switch occupancy per injected route stall. */
    int route_stall_cycles = 3;
    /** Probability a dynamic-network delivery is delayed. */
    double dyn_delay_rate = 0.0;
    /** Extra cycles per injected message delay. */
    int dyn_delay_cycles = 8;
    /** Probability per cycle a tile processor skips its cycle. */
    double jitter_rate = 0.0;

    /** Any channel beyond the legacy memory-miss one enabled? */
    bool multi_channel() const
    {
        return route_stall_rate > 0.0 || dyn_delay_rate > 0.0 ||
               jitter_rate > 0.0;
    }
    /** Any channel at all enabled? */
    bool any() const { return miss_rate > 0.0 || multi_channel(); }
};

/** One kPrint record. */
struct PrintRecord
{
    /** Program point (static print index). */
    int seq = 0;
    /** Dynamic occurrence count of this program point (iterations). */
    int occurrence = 0;
    Type type = Type::kI32;
    uint32_t bits = 0;
};

/** Aggregate statistics of a simulation run. */
struct SimResult
{
    int64_t cycles = 0;
    int64_t instrs_executed = 0;
    int64_t switch_instrs_executed = 0;
    int64_t words_routed = 0;
    int64_t dyn_messages = 0;
    int64_t proc_stall_cycles = 0;
    std::vector<PrintRecord> prints; // sorted by seq
    /** Per-tile cycle attribution (see sim/profile.hpp). */
    SimProfile profile;
    /** Self-check diagnostics (empty unless checkers enabled). */
    std::vector<CheckFailure> check_failures;
    /** Total self-check violations (may exceed recorded failures). */
    int64_t check_failure_count = 0;
    /** Provenance-stream hash (0 unless provenance checking on). */
    uint64_t prov_hash = 0;
    /**
     * Region-execution diagnostics (SimBackend::kRegion only; zero
     * everywhere else).  Backend-internal by construction, so they
     * are deliberately NOT part of the cross-backend differential:
     * regions_entered counts fused-run dispatches, region_cycles the
     * simulated cycles retired inside them.
     */
    int64_t regions_entered = 0;
    int64_t region_cycles = 0;

    /** Render the print trace, one value per line. */
    std::string print_text() const;
};

/** Thrown when the machine globally stalls. */
class DeadlockError : public FatalError
{
  public:
    explicit DeadlockError(const std::string &msg) : FatalError(msg) {}
    DeadlockError(const std::string &msg, std::string set)
        : FatalError(msg), set_(std::move(set))
    {
    }
    /**
     * The cycle-number-free part of the diagnosis: the blocking
     * cycle found by the wait-for-graph analysis plus the frozen
     * per-unit pc/stall-category list.  Identical across execution
     * backends (the detection *cycle* in what() may differ — the
     * threaded core detects quiescent freezes earlier; see
     * docs/performance.md "Error-path divergence").
     */
    const std::string &deadlock_set() const { return set_; }

  private:
    std::string set_;
};

/**
 * Thrown when a run exceeds its wall-clock budget
 * (Simulator::set_wall_budget_ms).  Distinct from DeadlockError so
 * drivers can report a structured "timeout" outcome: the machine was
 * still making progress, it was just slower than the caller's budget.
 */
class SimTimeoutError : public FatalError
{
  public:
    explicit SimTimeoutError(const std::string &msg) : FatalError(msg)
    {
    }
};

/** Dynamic-network message kinds (encoded in the header word). */
enum class DynKind : uint8_t {
    kLoadReq = 0,
    kStoreReq = 1,
    kLoadReply = 2,
    kStoreAck = 3,
};

/** Header word layout: dst(10) | src(10) | len(4) | kind(2). */
uint32_t dyn_header(int dst, int src, int len, DynKind kind);
int dyn_hdr_dst(uint32_t h);
int dyn_hdr_src(uint32_t h);
int dyn_hdr_len(uint32_t h);
DynKind dyn_hdr_kind(uint32_t h);

/**
 * One plane of the dynamic wormhole network.  Each tile has five
 * input buffers (four neighbors + local injection) and five outputs
 * (four neighbors + local ejection).  Packets are worms: a header
 * word followed by payload words; an output port is owned by one
 * input until the tail passes.  Requests and replies travel on
 * separate planes so the request-reply protocol cannot deadlock.
 */
struct DynPlane
{
    /** Input buffers, indexed [tile][dir]; dir 4 = local inject. */
    std::vector<std::array<Fifo, 5>> in_bufs;
    /** Owning input of each output (-1 free); output 4 = eject. */
    std::vector<std::array<int, 5>> out_owner;
    /** Payload words still to pass on each owned output. */
    std::vector<std::array<int, 5>> out_remaining;
    /** Payload words still to arrive on each input (mid-packet). */
    std::vector<std::array<int, 5>> in_remaining;
    /** Round-robin arbitration pointer per output. */
    std::vector<std::array<int, 5>> rr;
    /** Partially ejected message per tile. */
    std::vector<std::vector<uint32_t>> eject;
    /** Words currently resident in any input buffer (skip if 0). */
    int resident = 0;

    void init(int n_tiles);
};

/**
 * Which execution core drives the simulation.
 *
 * kReference is the original cycle-driven interpreter; kThreaded
 * pre-decodes every tile stream into flat handler records
 * (sim/threaded.cpp) and sleeps stalled units between events.
 * kRegion is the threaded core with the region compiler armed on top:
 * decode marks straight-line runs of records that touch no FIFO and
 * draw no fault randomness (sim/region.hpp), and execution fuses each
 * run into one dispatch that runs the unit ahead of global time, then
 * parks it until the mesh catches up.  All backends produce
 * bit-identical SimResults (cycles, prints, profile sums, provenance
 * hashes) — pinned by tests/test_sim_backend.cpp and the --sim-diff
 * CLI mode.
 */
enum class SimBackend : uint8_t { kReference = 0, kThreaded, kRegion };

/** Parse "reference" / "threaded" / "region"; throws otherwise. */
SimBackend sim_backend_from_string(const std::string &name);
const char *sim_backend_name(SimBackend b);

/** The whole-machine simulator. */
struct ThreadedState; // threaded.cpp: pre-decoded backend state
/** Out-of-line deleter so ThreadedState can stay incomplete here. */
struct ThreadedStateDeleter
{
    void operator()(ThreadedState *p) const;
};

class Simulator
{
  public:
    explicit Simulator(const CompiledProgram &prog,
                       FaultConfig faults = {},
                       CheckConfig checks = {},
                       SimBackend backend = SimBackend::kReference);
    ~Simulator();

    /** Run to completion; throws DeadlockError on global stall. */
    SimResult run(int64_t max_cycles = 2000000000LL);

    /**
     * Bound the *wall-clock* time of the next run(): once the budget
     * elapses, the run throws SimTimeoutError at the next poll point
     * (the clock is polled every few thousand simulated cycles, so
     * enforcement lags the deadline by microseconds, not seconds).
     * 0 disables the budget.  Both execution backends honor it; the
     * fault-campaign driver (--point-timeout) and the serve daemon's
     * per-request deadlines are the intended users.
     */
    void set_wall_budget_ms(int64_t ms) { wall_budget_ms_ = ms; }

    /**
     * Absolute steady_clock deadline for the next run(), composed
     * with any budget (whichever is earlier wins).  Zero time_point
     * disables.  Used by serve-mode requests whose deadline started
     * ticking on admission, before the simulation began.
     */
    void
    set_wall_deadline(std::chrono::steady_clock::time_point tp)
    {
        wall_deadline_override_ = tp;
    }

    /**
     * Record per-cycle category spans for Chrome trace export (costs
     * memory proportional to category transitions); call before run().
     */
    void set_trace_enabled(bool on) { stats_.profile.trace_enabled = on; }

    /** Final memory contents of a named array. */
    std::vector<uint32_t> read_array(const std::string &name) const;

    const MemorySystem &memory() const { return mem_; }

  private:
    friend struct ProcStepper;
    friend struct SwitchStepper;
    friend struct DynStepper;
    friend struct ThreadedState;

    // Processor state per tile.
    struct Proc
    {
        int64_t pc = 0;
        bool halted = false;
        bool waiting_dyn = false;
        /** Home tile of the outstanding dynamic request (-1 none). */
        int dyn_home = -1;
        /** Request words still to inject into the request plane. */
        std::vector<uint32_t> inject;
        size_t inject_pos = 0;
        std::vector<uint32_t> regs;
        std::vector<int64_t> busy; // per-register ready cycle
    };
    // Switch state per tile.
    struct Sw
    {
        int64_t pc = 0;
        bool halted = false;
        std::vector<uint32_t> regs;
    };
    // Remote-memory handler + requester state per tile.
    struct DynState
    {
        /** One assembled request with its arrival time (queue delay). */
        struct InMsg
        {
            int64_t arrival = 0;
            std::vector<uint32_t> words;
        };
        /** Fully assembled requests awaiting service. */
        std::deque<InMsg> inbox;
        int64_t handler_free = 0;
        /** Reply words being injected into the reply plane. */
        std::vector<uint32_t> outbox;
        size_t outbox_pos = 0;
        // Reply for the (single outstanding) request of this tile.
        bool reply_ready = false;
        int64_t reply_time = 0;
        uint32_t reply_value = 0;
    };

    /** Outcome of attempting one switch instruction. */
    enum class SwExec : uint8_t { kRetired, kInputWait, kOutputBlocked };

    void step_proc(int tile, int64_t now);
    void step_switch(int tile, int64_t now);
    /** Attempt the switch's current instruction. */
    SwExec exec_switch_instr(int tile, int64_t now);
    void step_dyn(int tile, int64_t now);
    /** Advance one wormhole plane by one cycle. */
    void step_plane(DynPlane &plane, bool is_reply, int64_t now);
    /** Dispatch a fully ejected message. */
    void deliver_dyn(int tile, const std::vector<uint32_t> &msg,
                     int64_t now);

    /** Extra latency injected for a memory access (0 if no fault). */
    int fault_extra();
    /** Extra delay for a dynamic-network delivery (0 if no fault). */
    int dyn_delay_extra();
    /** Extra switch occupancy after a retire (0 if no fault). */
    int route_stall_extra();
    /** Does clock jitter cancel this tile-cycle (fresh draw)? */
    bool jitter_hit();

    /**
     * Throw DeadlockError with a wait-for-graph diagnostic
     * (sim/deadlock.cpp).  @p timeout distinguishes the stall-count
     * backstop from the exact frozen-machine detection.
     */
    [[noreturn]] void report_deadlock(int64_t now, bool timeout,
                                      int64_t stall_limit);

    /** Attribute this cycle of @p tile's processor to @p c. */
    void account_proc(int tile, int64_t now, ProcCycle c);
    /** Attribute this cycle of @p tile's switch to @p c. */
    void account_switch(int tile, int64_t now, SwitchCycle c);
    /** Batched attribution of @p n contiguous cycles from @p begin. */
    void account_proc_n(int tile, int64_t begin, ProcCycle c,
                        int64_t n);
    void account_switch_n(int tile, int64_t begin, SwitchCycle c,
                          int64_t n);
    /** Count a retired processor instruction in the issue histogram. */
    void account_issue(int tile, Op op);

    /** Mark the dynamic interface of @p tile live (inbox/outbox). */
    void wake_dyn(int tile);

    /**
     * Earliest cycle > @p now at which any time-gated condition in
     * the frozen machine flips (scoreboard deadline, pending reply,
     * busy remote-memory handler), or INT64_MAX when none exists
     * (a true deadlock, left to the stall counter).
     */
    int64_t next_wake(int64_t now) const;
    /**
     * Account @p skip no-progress cycles after @p now in one batch:
     * every live unit repeats the stall category it recorded in the
     * frozen cycle, so SimProfile sums stay exact (see
     * docs/performance.md for the invariants).
     */
    void fast_forward(int64_t now, int64_t skip);

    Fifo &in_link(int tile, Dir d);
    Fifo &out_link(int tile, Dir d);

    /** Threaded-code backend entry point (sim/threaded.cpp). */
    SimResult run_threaded(int64_t max_cycles);
    /** Shared run() postlude: idle backfill, print sort, checker. */
    void finish_run(int64_t now);

    /** Resolve budget/override into wall_deadline_ at run() entry. */
    void arm_wall_deadline();
    /**
     * Cheap wall-budget poll: real clock consulted only every
     * kWallPollInterval calls; throws SimTimeoutError past deadline.
     */
    void
    poll_wall_deadline()
    {
        if (!wall_armed_ || ++wall_poll_count_ < kWallPollInterval)
            return;
        wall_poll_count_ = 0;
        check_wall_deadline();
    }
    [[noreturn]] void wall_timeout() const;
    void check_wall_deadline();

    static constexpr int kWallPollInterval = 4096;

    const CompiledProgram &prog_;
    MemorySystem mem_;
    FaultConfig faults_;
    /** Memory-miss channel stream (legacy; sequence is pinned by
     *  tests/goldens, do not reorder its draws). */
    uint64_t rng_;
    // Independent streams for the newer fault channels.
    uint64_t route_rng_;
    uint64_t dyn_rng_;
    uint64_t jitter_rng_;
    /** Injected route stall active until this cycle, per switch. */
    std::vector<int64_t> sw_stall_until_;
    /** Live self-checker; null unless CheckConfig enables one. */
    std::unique_ptr<RuntimeChecker> checker_;

    std::vector<Proc> procs_;
    std::vector<Sw> switches_;
    std::vector<DynState> dyn_;
    DynPlane req_plane_, reply_plane_;
    // Port FIFOs: proc->switch, switch->proc, and per-direction
    // outgoing link FIFOs between neighboring switches.
    std::vector<Fifo> p2s_, s2p_;
    std::vector<std::vector<Fifo>> links_; // [tile][dir 0..3]

    SimResult stats_;
    /** Per-print-point dynamic execution counts (trace ordering). */
    std::vector<int> print_count_;
    bool progress_ = false;
    /** Most recent cycle category per tile (deadlock diagnostics,
     *  fast-forward batch accounting). */
    std::vector<ProcCycle> last_proc_cat_;
    std::vector<SwitchCycle> last_sw_cat_;

    // Active-unit worklists: halted processors/switches leave their
    // list permanently; a tile's dynamic interface is listed only
    // while its inbox or outbox is non-empty.  Membership changes are
    // O(1) swap-removals; step order across tiles is immaterial
    // because port visibility is latched per cycle.
    std::vector<int> active_procs_;
    std::vector<int> active_sw_;
    std::vector<int> active_dyn_;
    std::vector<uint8_t> dyn_listed_;
    /** Tiles whose dyn_net_blocked counter ticked this cycle (one
     *  entry per increment; replayed by fast_forward). */
    std::vector<int> plane_blocked_;

    // Wall-clock budget state (see set_wall_budget_ms).
    int64_t wall_budget_ms_ = 0;
    std::chrono::steady_clock::time_point wall_deadline_override_{};
    std::chrono::steady_clock::time_point wall_deadline_{};
    bool wall_armed_ = false;
    int wall_poll_count_ = 0;

    /** Selected execution core. */
    SimBackend backend_ = SimBackend::kReference;
    /** Pre-decoded streams + sleep/wake state (threaded backend). */
    std::unique_ptr<ThreadedState, ThreadedStateDeleter> th_;
};

} // namespace raw

#endif // RAW_SIM_SIMULATOR_HPP
