#include "sim/checker.hpp"

#include <sstream>

#include "sim/simulator.hpp"

namespace raw {

namespace {

inline uint64_t
fnv_mix(uint64_t h, uint64_t x)
{
    return (h ^ x) * 0x100000001B3ULL;
}

} // namespace

std::string
CheckFailure::to_string() const
{
    std::ostringstream os;
    os << kind << " @tile" << tile << " pc" << pc << " cycle" << cycle
       << ": " << detail;
    return os.str();
}

RuntimeChecker::RuntimeChecker(int n_tiles, const CheckConfig &cfg)
    : cfg_(cfg)
{
    p2s_.resize(n_tiles);
    s2p_.resize(n_tiles);
    links_.assign(n_tiles, std::vector<std::deque<WordProv>>(4));
    proc_points_.resize(n_tiles);
    switch_points_.resize(n_tiles);
}

void
RuntimeChecker::fail(const std::string &kind, int tile, int64_t pc,
                     int64_t cycle, const std::string &detail)
{
    total_failures_++;
    if (static_cast<int>(failures_.size()) < kMaxRecorded)
        failures_.push_back({kind, tile, pc, cycle, detail});
}

void
RuntimeChecker::audit(const Fifo &f, size_t shadow_depth,
                      const char *what, int tile, int64_t cycle)
{
    if (!cfg_.fifo_bounds)
        return;
    if (!f.audit_bounds())
        fail("fifo-bounds", tile, -1, cycle,
             std::string(what) + ": ring invariants violated "
                                 "(occupancy outside [0, cap])");
    else if (static_cast<size_t>(f.size()) != shadow_depth) {
        std::ostringstream os;
        os << what << ": occupancy " << f.size()
           << " != shadow depth " << shadow_depth;
        fail("fifo-bounds", tile, -1, cycle, os.str());
    }
}

WordProv
RuntimeChecker::take(std::deque<WordProv> &q, const char *what,
                     int tile, int64_t cycle)
{
    if (q.empty()) {
        fail("shadow-underflow", tile, -1, cycle,
             std::string(what) +
                 ": pop with empty provenance shadow queue");
        return {};
    }
    WordProv p = q.front();
    q.pop_front();
    return p;
}

void
RuntimeChecker::send_p2s(int tile, int64_t pc, const Fifo &f,
                         int64_t cycle)
{
    p2s_[tile].push_back({tile, pc});
    audit(f, p2s_[tile].size(), "p2s", tile, cycle);
}

WordProv
RuntimeChecker::take_p2s(int tile, const Fifo &f, int64_t cycle)
{
    WordProv p = take(p2s_[tile], "p2s", tile, cycle);
    audit(f, p2s_[tile].size(), "p2s", tile, cycle);
    return p;
}

void
RuntimeChecker::put_s2p(int tile, WordProv p, const Fifo &f,
                        int64_t cycle)
{
    s2p_[tile].push_back(p);
    audit(f, s2p_[tile].size(), "s2p", tile, cycle);
}

WordProv
RuntimeChecker::take_s2p(int tile, const Fifo &f, int64_t cycle)
{
    WordProv p = take(s2p_[tile], "s2p", tile, cycle);
    audit(f, s2p_[tile].size(), "s2p", tile, cycle);
    return p;
}

void
RuntimeChecker::put_link(int tile, int dir, WordProv p, const Fifo &f,
                         int64_t cycle)
{
    links_[tile][dir].push_back(p);
    audit(f, links_[tile][dir].size(), "link", tile, cycle);
}

WordProv
RuntimeChecker::take_link(int tile, int dir, const Fifo &f,
                          int64_t cycle)
{
    WordProv p = take(links_[tile][dir], "link", tile, cycle);
    audit(f, links_[tile][dir].size(), "link", tile, cycle);
    return p;
}

void
RuntimeChecker::consume(std::unordered_map<int64_t, Point> &points,
                        const char *unit, int tile, int64_t pc,
                        int64_t key, WordProv origin, uint32_t value,
                        int64_t cycle)
{
    if (!cfg_.provenance)
        return;
    Point &pt = points[key];
    if (!pt.bound) {
        pt.bound = true;
        pt.first = origin;
    } else if (!(pt.first == origin)) {
        std::ostringstream os;
        os << unit << " consumption #" << pt.count
           << " came from tile" << origin.tile << "@pc" << origin.pc
           << ", statically bound to tile" << pt.first.tile << "@pc"
           << pt.first.pc << " (static-ordering violation)";
        fail("provenance", tile, pc, cycle, os.str());
    }
    pt.hash = fnv_mix(
        fnv_mix(fnv_mix(pt.hash,
                        static_cast<uint64_t>(origin.tile) + 1),
                static_cast<uint64_t>(origin.pc) + 1),
        value);
    pt.count++;
}

void
RuntimeChecker::consume_proc(int tile, int64_t pc, int slot,
                             WordProv origin, uint32_t value,
                             int64_t cycle)
{
    consume(proc_points_[tile], "proc", tile, pc, pc * 2 + slot,
            origin, value, cycle);
}

void
RuntimeChecker::consume_switch(int tile, int64_t pc, int pair,
                               WordProv origin, uint32_t value,
                               int64_t cycle)
{
    consume(switch_points_[tile], "switch", tile, pc, pc * 64 + pair,
            origin, value, cycle);
}

uint64_t
RuntimeChecker::provenance_hash() const
{
    uint64_t acc = 0;
    auto fold = [&](const std::vector<std::unordered_map<int64_t,
                                                         Point>> &maps,
                    uint64_t salt) {
        for (size_t t = 0; t < maps.size(); t++)
            for (const auto &kv : maps[t]) {
                uint64_t h = fnv_mix(salt, t * 2654435761ULL +
                                               static_cast<uint64_t>(
                                                   kv.first));
                h = fnv_mix(h, kv.second.hash);
                h = fnv_mix(h,
                            static_cast<uint64_t>(kv.second.count));
                acc ^= h;
            }
    };
    fold(proc_points_, 0x70726F63ULL);   // "proc"
    fold(switch_points_, 0x73776368ULL); // "swch"
    return acc;
}

std::vector<CheckFailure>
RuntimeChecker::take_failures()
{
    return std::move(failures_);
}

} // namespace raw
