#ifndef RAW_SIM_CHECKER_HPP
#define RAW_SIM_CHECKER_HPP

/**
 * @file
 * Opt-in runtime self-checking of the static-ordering guarantee
 * (Appendix A of the paper).
 *
 * The correctness argument for RAWCC is that a static schedule binds
 * every communication *statically*: the k-th word consumed by a given
 * static program point (a ROUTE input of a switch, or a port operand
 * of a processor instruction) always originates from the same static
 * producer point, no matter how dynamic latency perturbs timing.  The
 * test suite checks this end to end by comparing final results; the
 * RuntimeChecker verifies it *live*, word by word, while a (possibly
 * fault-injected) simulation runs:
 *
 *  - Word provenance.  Every word a processor pushes into the static
 *    network is tagged with its origin (tile, pc).  Shadow queues
 *    mirror every port FIFO, so the tag travels with the word through
 *    arbitrarily long switch routes.  At every consumption point the
 *    checker verifies the origin matches the binding established the
 *    first time that point consumed a word; a change of producer under
 *    fault injection is exactly a violation of the static-ordering
 *    property.
 *
 *  - Provenance stream hash.  Each consumption point also maintains a
 *    running FNV hash of its (origin, value) stream.  The combined
 *    hash is order-independent *across* points but order-exact
 *    *within* each point, so it is identical for every run of the same
 *    program regardless of injected latency — the fault campaign
 *    asserts this across all points of a sweep.
 *
 *  - FIFO occupancy bounds.  Shadow-queue depth is compared against
 *    the real ring-buffer occupancy at every shadowed operation, and
 *    the ring invariants are audited, in release builds too.
 *
 * Violations are reported as structured CheckFailure records in
 * SimResult::check_failures (bounded; the simulation continues), not
 * as bare panics, so a campaign can aggregate them.
 *
 * When the checker is disabled the simulator takes none of these
 * paths and results are byte-identical to a checker-free build.
 */

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace raw {

class Fifo;

/** Which runtime self-checks to enable (all off by default). */
struct CheckConfig
{
    /** Word-provenance tagging + static-binding verification. */
    bool provenance = false;
    /** FIFO occupancy-bound audits (active in release builds). */
    bool fifo_bounds = false;

    bool enabled() const { return provenance || fifo_bounds; }
};

/** Origin of a word in the static network: producing tile and pc. */
struct WordProv
{
    int tile = -1;
    int64_t pc = -1;

    bool operator==(const WordProv &o) const
    {
        return tile == o.tile && pc == o.pc;
    }
};

/** One structured self-check diagnostic. */
struct CheckFailure
{
    /** "provenance" | "fifo-bounds" | "shadow-underflow". */
    std::string kind;
    /** Tile of the consuming/checked unit. */
    int tile = 0;
    /** Static program point (pc) at the consumer. */
    int64_t pc = 0;
    /** Simulated cycle of detection. */
    int64_t cycle = 0;
    std::string detail;

    std::string to_string() const;
};

/** Live verifier the Simulator drives when checking is enabled. */
class RuntimeChecker
{
  public:
    RuntimeChecker(int n_tiles, const CheckConfig &cfg);

    // -- shadow-queue mirroring (called at the exact push/pop sites)
    /** Processor at (tile, pc) pushed a word into its p2s port. */
    void send_p2s(int tile, int64_t pc, const Fifo &f, int64_t cycle);
    /** A switch route consumed the head of tile's p2s port. */
    WordProv take_p2s(int tile, const Fifo &f, int64_t cycle);
    /** A switch route delivered a word into tile's s2p port. */
    void put_s2p(int tile, WordProv p, const Fifo &f, int64_t cycle);
    /** Processor consumed the head of tile's s2p port. */
    WordProv take_s2p(int tile, const Fifo &f, int64_t cycle);
    /** A switch route pushed into tile's outgoing link toward dir. */
    void put_link(int tile, int dir, WordProv p, const Fifo &f,
                  int64_t cycle);
    /** A switch route consumed from tile's outgoing link (dir). */
    WordProv take_link(int tile, int dir, const Fifo &f,
                       int64_t cycle);

    // -- static-binding verification at consumption points
    /** Proc instr (tile, pc) consumed @p origin via operand @p slot. */
    void consume_proc(int tile, int64_t pc, int slot, WordProv origin,
                      uint32_t value, int64_t cycle);
    /** Switch ROUTE (tile, pc) pair @p pair consumed @p origin. */
    void consume_switch(int tile, int64_t pc, int pair,
                        WordProv origin, uint32_t value, int64_t cycle);

    /**
     * Combined provenance-stream hash: XOR over consumption points of
     * each point's order-exact FNV stream hash.  Timing-invariant for
     * a correct static schedule; 0 until something was consumed.
     */
    uint64_t provenance_hash() const;

    /** Total violations seen (may exceed recorded failures). */
    int64_t failure_count() const { return total_failures_; }
    /** The first recorded failures (bounded at kMaxRecorded). */
    std::vector<CheckFailure> take_failures();

    static constexpr int kMaxRecorded = 32;

  private:
    /** Binding + stream hash of one static consumption point. */
    struct Point
    {
        bool bound = false;
        WordProv first;
        uint64_t hash = 1469598103934665603ULL; // FNV offset basis
        int64_t count = 0;
    };

    void fail(const std::string &kind, int tile, int64_t pc,
              int64_t cycle, const std::string &detail);
    void audit(const Fifo &f, size_t shadow_depth, const char *what,
               int tile, int64_t cycle);
    WordProv take(std::deque<WordProv> &q, const char *what, int tile,
                  int64_t cycle);
    void consume(std::unordered_map<int64_t, Point> &points,
                 const char *unit, int tile, int64_t pc, int64_t key,
                 WordProv origin, uint32_t value, int64_t cycle);

    CheckConfig cfg_;
    // Shadow provenance queues, one per static-network FIFO.
    std::vector<std::deque<WordProv>> p2s_, s2p_;
    std::vector<std::vector<std::deque<WordProv>>> links_;
    // Per-tile binding tables, keyed by static consumption point.
    std::vector<std::unordered_map<int64_t, Point>> proc_points_;
    std::vector<std::unordered_map<int64_t, Point>> switch_points_;
    std::vector<CheckFailure> failures_;
    int64_t total_failures_ = 0;
};

} // namespace raw

#endif // RAW_SIM_CHECKER_HPP
