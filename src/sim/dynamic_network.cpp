#include "sim/simulator.hpp"

#include <algorithm>

/**
 * @file
 * Dynamic wormhole network and remote-memory handler (Section 5.1).
 *
 * Messages are worms: a header word (destination, source, payload
 * length, kind) followed by payload words, routed dimension-ordered
 * one word per link per cycle with four-deep input buffering.  An
 * output port belongs to one worm until its tail passes (wormhole
 * allocation); free outputs arbitrate round-robin among waiting
 * headers.  Requests and replies travel on separate planes, so the
 * request-reply dependence cannot cycle through shared buffers —
 * together with dimension-ordered routing this makes the network
 * deadlock-free.
 *
 * A remote-memory handler at each tile services assembled requests
 * one at a time (dyn_handler_cycles each), performs the local memory
 * access, and injects the reply (value for loads, ack for stores).
 */

namespace raw {

namespace {

constexpr int kLocal = 4; // input/output index for inject/eject

} // namespace

uint32_t
dyn_header(int dst, int src, int len, DynKind kind)
{
    return (static_cast<uint32_t>(dst) & 0x3FF) |
           ((static_cast<uint32_t>(src) & 0x3FF) << 10) |
           ((static_cast<uint32_t>(len) & 0xF) << 20) |
           (static_cast<uint32_t>(kind) << 24);
}

int
dyn_hdr_dst(uint32_t h)
{
    return static_cast<int>(h & 0x3FF);
}

int
dyn_hdr_src(uint32_t h)
{
    return static_cast<int>((h >> 10) & 0x3FF);
}

int
dyn_hdr_len(uint32_t h)
{
    return static_cast<int>((h >> 20) & 0xF);
}

DynKind
dyn_hdr_kind(uint32_t h)
{
    return static_cast<DynKind>((h >> 24) & 0x3);
}

void
DynPlane::init(int n_tiles)
{
    in_bufs.clear();
    in_bufs.resize(n_tiles);
    for (auto &bufs : in_bufs)
        for (Fifo &f : bufs)
            f = Fifo(4);
    out_owner.assign(n_tiles, {-1, -1, -1, -1, -1});
    out_remaining.assign(n_tiles, {0, 0, 0, 0, 0});
    in_remaining.assign(n_tiles, {0, 0, 0, 0, 0});
    rr.assign(n_tiles, {0, 0, 0, 0, 0});
    eject.assign(n_tiles, {});
    resident = 0;
}

void
Simulator::step_plane(DynPlane &plane, bool is_reply, int64_t now)
{
    const MachineConfig &m = prog_.machine;
    const int n = m.n_tiles;

    // Route one word per output port per tile per cycle.
    for (int t = 0; t < n; t++) {
        for (int out = 0; out < 5; out++) {
            // Where does this output lead?
            Fifo *target = nullptr;
            if (out != kLocal) {
                int nb = m.neighbor(t, static_cast<Dir>(out));
                if (nb < 0)
                    continue; // mesh edge
                target =
                    &plane.in_bufs[nb][static_cast<int>(opposite(
                        static_cast<Dir>(out)))];
            }

            int owner = plane.out_owner[t][out];
            if (owner < 0) {
                // Arbitrate among inputs whose head word is a header
                // that dimension-ordered routing sends this way.
                for (int k = 0; k < 5 && owner < 0; k++) {
                    int in = (plane.rr[t][out] + k) % 5;
                    Fifo &src = plane.in_bufs[t][in];
                    if (!src.can_pop(now) ||
                        plane.in_remaining[t][in] > 0)
                        continue;
                    uint32_t h = src.front(now);
                    int dst = dyn_hdr_dst(h);
                    int want = dst == t
                                   ? kLocal
                                   : static_cast<int>(
                                         m.next_hop(t, dst));
                    if (want == out)
                        owner = in;
                }
                if (owner < 0)
                    continue;
                // Claim the output for this worm.
                Fifo &src = plane.in_bufs[t][owner];
                uint32_t h = src.front(now);
                if (out != kLocal && !target->can_push(now)) {
                    // Downstream backpressure: the header word sits
                    // in this tile's buffer for another cycle.
                    stats_.profile.tiles[t].dyn_net_blocked++;
                    plane_blocked_.push_back(t);
                    continue; // try again next cycle
                }
                src.pop(now);
                plane.out_owner[t][out] = owner;
                plane.out_remaining[t][out] = dyn_hdr_len(h);
                plane.in_remaining[t][owner] = dyn_hdr_len(h);
                plane.rr[t][out] = (owner + 1) % 5;
                if (out == kLocal) {
                    plane.resident--;
                    plane.eject[t].push_back(h);
                } else {
                    target->push(now, h);
                }
                if (plane.out_remaining[t][out] == 0) {
                    plane.out_owner[t][out] = -1;
                    if (out == kLocal) {
                        deliver_dyn(t, plane.eject[t], now);
                        plane.eject[t].clear();
                    }
                }
                progress_ = true;
                continue;
            }

            // Continue an owned worm: move one payload word.
            Fifo &src = plane.in_bufs[t][owner];
            if (!src.can_pop(now))
                continue;
            if (out != kLocal && !target->can_push(now)) {
                stats_.profile.tiles[t].dyn_net_blocked++;
                plane_blocked_.push_back(t);
                continue;
            }
            uint32_t w = src.pop(now);
            plane.in_remaining[t][owner]--;
            plane.out_remaining[t][out]--;
            if (out == kLocal) {
                plane.resident--;
                plane.eject[t].push_back(w);
            } else {
                target->push(now, w);
            }
            if (plane.out_remaining[t][out] == 0) {
                plane.out_owner[t][out] = -1;
                if (out == kLocal) {
                    deliver_dyn(t, plane.eject[t], now);
                    plane.eject[t].clear();
                }
            }
            progress_ = true;
        }
    }
    (void)is_reply;
}

void
Simulator::deliver_dyn(int tile, const std::vector<uint32_t> &msg,
                       int64_t now)
{
    DynKind kind = dyn_hdr_kind(msg[0]);
    if (kind == DynKind::kLoadReq || kind == DynKind::kStoreReq) {
        DynState &q = dyn_[tile];
        // Dyn-delay channel: a delayed request matures later; the
        // handler gate below honors the arrival time.
        q.inbox.push_back({now + dyn_delay_extra(), msg});
        wake_dyn(tile);
        TileProfile &tp = stats_.profile.tiles[tile];
        tp.dyn_max_queue =
            std::max(tp.dyn_max_queue,
                     static_cast<int64_t>(q.inbox.size()));
        return;
    }
    // Reply / ack for this tile's (single) outstanding request.
    DynState &d = dyn_[tile];
    check(!d.reply_ready, "dynamic network: reply overrun");
    d.reply_ready = true;
    d.reply_time = now + 1 + dyn_delay_extra();
    d.reply_value =
        kind == DynKind::kLoadReply && msg.size() > 1 ? msg[1] : 0;
}

/**
 * Remote-memory handler: drain the reply being injected, then service
 * the next assembled request.
 */
void
Simulator::step_dyn(int tile, int64_t now)
{
    DynState &d = dyn_[tile];

    // Inject one pending reply word per cycle.
    if (d.outbox_pos < d.outbox.size()) {
        Fifo &local = reply_plane_.in_bufs[tile][4];
        if (local.can_push(now)) {
            local.push(now, d.outbox[d.outbox_pos++]);
            reply_plane_.resident++;
            progress_ = true;
            if (d.outbox_pos == d.outbox.size()) {
                d.outbox.clear();
                d.outbox_pos = 0;
            }
        }
        return; // one reply at a time keeps ordering simple
    }

    if (d.inbox.empty() || d.handler_free > now ||
        d.inbox.front().arrival > now)
        return;

    const DynState::InMsg &im = d.inbox.front();
    const std::vector<uint32_t> &msg = im.words;
    DynKind kind = dyn_hdr_kind(msg[0]);
    int src = dyn_hdr_src(msg[0]);
    int64_t gaddr = bits_int(msg[1]);
    int64_t service =
        prog_.machine.dyn_handler_cycles + fault_extra();
    d.handler_free = now + service;
    TileProfile &tp = stats_.profile.tiles[tile];
    tp.dyn_requests_served++;
    tp.dyn_handler_busy += service;
    tp.dyn_queue_wait += now - im.arrival;

    if (kind == DynKind::kStoreReq) {
        mem_.write_local(tile, mem_.local_of(gaddr), msg[2]);
        d.outbox = {dyn_header(src, tile, 0, DynKind::kStoreAck)};
    } else {
        uint32_t v = mem_.read_local(tile, mem_.local_of(gaddr));
        d.outbox = {dyn_header(src, tile, 1, DynKind::kLoadReply),
                    v};
    }
    d.outbox_pos = 0;
    d.inbox.pop_front();
    progress_ = true;
}

} // namespace raw
