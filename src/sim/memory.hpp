#ifndef RAW_SIM_MEMORY_HPP
#define RAW_SIM_MEMORY_HPP

/**
 * @file
 * Distributed memory system with low-order interleaving (Section 5.2).
 *
 * The shared region is interleaved element-wise: global word address g
 * lives on tile (g mod N) at local offset (g div N) — exactly the
 * paper's Figure 7 with an interleaving granularity of one word.  Each
 * tile additionally owns a private spill region above the shared
 * region for register spills.
 */

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace raw {

/** All tiles' local data memories. */
class MemorySystem
{
  public:
    /**
     * @param n_tiles      machine size (interleaving factor)
     * @param total_words  size of the shared interleaved region
     * @param spill_slots  per-tile private spill words
     */
    MemorySystem(int n_tiles, int64_t total_words,
                 const std::vector<int> &spill_slots);

    /** Home tile of global word @p g. */
    int home_of(int64_t g) const
    {
        return static_cast<int>(g % n_tiles_);
    }
    /** Local offset of global word @p g on its home tile. */
    int64_t local_of(int64_t g) const { return g / n_tiles_; }

    /** Read/write by global address (any tile's share). */
    uint32_t read_global(int64_t g) const;
    void write_global(int64_t g, uint32_t v);

    /** Read/write a tile's local word (shared region offset). */
    uint32_t read_local(int tile, int64_t local) const;
    void write_local(int tile, int64_t local, uint32_t v);

    /** Read/write a tile's private spill slot. */
    uint32_t read_spill(int tile, int64_t slot) const;
    void write_spill(int tile, int64_t slot, uint32_t v);

  private:
    int n_tiles_;
    int64_t shared_words_; // per-tile share of the interleaved region
    std::vector<std::vector<uint32_t>> mem_;
};

} // namespace raw

#endif // RAW_SIM_MEMORY_HPP
