#ifndef RAW_SIM_ISA_HPP
#define RAW_SIM_ISA_HPP

/**
 * @file
 * Executable program representation for the Raw prototype simulator.
 *
 * After orchestration and register allocation the compiler emits one
 * processor stream per tile and one switch stream per tile.  Processor
 * instructions reuse the IR opcode set with physical register
 * operands; switch instructions are ROUTE (possibly several pairs that
 * fire atomically, as in the prototype's ROUTE instruction), a tiny
 * ALU for replicated loop control, and branches.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.hpp"
#include "ir/type.hpp"
#include "machine/machine.hpp"

namespace raw {

/** Sentinel array id: per-tile spill slot addressing (PInstr::imm). */
constexpr int kSpillArray = -2;

/**
 * Sentinel register index: the operand is a communication port.  A
 * source operand reads (pops) the switch->processor port; a
 * destination writes (pushes) the processor->switch port.  Ports are
 * exported "as extensions to the register set" (Section 3.1).
 */
constexpr int kPortOperand = -2;

/** One processor instruction (physical registers). */
struct PInstr
{
    Op op = Op::kHalt;
    Type type = Type::kI32;
    /** Destination register; -1 = none / discard (token receives). */
    int dst = -1;
    /** Source registers; src[0] = -1 on kSend means "send zero". */
    int src[2] = {-1, -1};
    /** kConst payload, or spill slot index for kSpillArray accesses. */
    uint32_t imm = 0;
    /** Array id for memory ops (kSpillArray: local spill slot). */
    int array = -1;
    /** Branch/jump target: absolute index into the tile stream. */
    int64_t target = -1;
    /** Global ordering tag for kPrint. */
    int print_seq = -1;
};

/** One routing pair of a switch ROUTE instruction. */
struct RoutePair
{
    Dir in = Dir::kProc;
    /** Output ports: bitmask over Dir (may be empty if only to_reg). */
    uint8_t out_mask = 0;
    /** Switch register to latch the word into; -1 = none. */
    int reg_dst = -1;
};

/** One switch instruction. */
struct SInstr
{
    enum class K : uint8_t { kRoute, kAlu, kBnez, kJump, kHalt };
    K k = K::kHalt;
    /** kRoute: pairs that fire atomically. */
    std::vector<RoutePair> routes;
    /** kAlu: op over switch registers (kConst uses imm). */
    Op op = Op::kAdd;
    int dst = -1;
    int a = -1;
    int b = -1;
    uint32_t imm = 0;
    /** kBnez condition register. */
    int cond = -1;
    /** kBnez / kJump target (absolute stream index). */
    int64_t target = -1;
};

/** A tile's processor program. */
struct TileProgram
{
    std::vector<PInstr> code;
};

/** A tile's switch program. */
struct SwitchProgram
{
    std::vector<SInstr> code;
};

/** Layout of one array in the interleaved global address space. */
struct ArrayLayout
{
    std::string name;
    Type type = Type::kI32;
    int64_t base = 0;
    int64_t size = 0;
};

/** A fully compiled program, ready to simulate. */
struct CompiledProgram
{
    MachineConfig machine;
    std::vector<TileProgram> tiles;
    std::vector<SwitchProgram> switches;
    std::vector<ArrayLayout> arrays;
    /** Total words of the shared interleaved region. */
    int64_t total_words = 0;
    /** Per-tile spill slots required. */
    std::vector<int> spill_slots;
    /** Number of kPrint instructions (print_seq in [0, n)). */
    int num_prints = 0;

    /** Index of array @p name, or -1. */
    int find_array(const std::string &name) const;
    /** Total static instruction count (processors + switches). */
    int64_t static_instrs() const;
};

} // namespace raw

#endif // RAW_SIM_ISA_HPP
