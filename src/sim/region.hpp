#ifndef RAW_SIM_REGION_HPP
#define RAW_SIM_REGION_HPP

/**
 * @file
 * Decode-time region compiler for the threaded simulator backend
 * (SimBackend::kRegion).
 *
 * A *region* is a per-unit run of handler records that touches no
 * FIFO, draws no fault randomness, and interacts with no other unit's
 * observable state.  Such a run can be executed as one fused dispatch
 * that advances the unit's *local* clock past the global one — no
 * awake-mask or scoreboard-wheel maintenance per cycle — after which
 * the unit parks until the mesh catches up.  The run boundaries are
 * computed here, once, at decode time; sim/threaded.cpp marks the
 * eligible records with flag bits and owns the execution loop.
 *
 * Formation rules (the transparency argument lives with each):
 *
 *  - No FIFO access.  Port operands (kSend/kRecv, port-fused ALU ops,
 *    switch ROUTEs) are excluded: FIFO words become visible to the
 *    counterparty in the cycle they were pushed, so executing a push
 *    or pop at a future local cycle would be observable.  A switch
 *    ROUTE can *never* run ahead — even a statically satisfiable one
 *    would stamp the pushed word with a future cycle, which the
 *    occupancy algebra (Fifo::pushed_this) forbids.
 *  - No dynamic-network instruction, and no static load/store to an
 *    array that any kDynLoad/kDynStore anywhere in the program can
 *    touch: dyn handlers mutate tile-local memory asynchronously
 *    while the owner keeps executing, so a run-ahead access could
 *    read/write around an in-flight remote access.  Arrays touched
 *    only by static accesses are home-tile-private and safe.
 *  - No print whose seq is shared by more than one instruction:
 *    occurrence numbers are assigned in execution order, and
 *    run-ahead reorders execution across units.  (Prints with a
 *    private seq are safe: the final trace is sorted by the unique
 *    (occurrence, seq) key, and per-unit order is preserved.)
 *  - No fault-draw point.  The region backend refuses to form
 *    regions at all when any fault channel or the checker is armed
 *    (threaded.cpp gates decode), so region bodies are draw-free and
 *    the seeded RNG streams stay aligned with the reference core.
 *
 * Branches and jumps within the unit's own stream ARE eligible:
 * regions are dynamic run-ahead, not basic blocks — the fused loop
 * follows control flow at one instruction per cycle until it reaches
 * an ineligible record or the run-length budget.
 */

#include <cstdint>
#include <vector>

namespace raw {

struct CompiledProgram;

/** Program-wide facts that gate per-record region eligibility. */
struct RegionAnalysis
{
    /** array id -> touched by any kDynLoad/kDynStore in the program. */
    std::vector<uint8_t> dyn_array;
    /** print seq -> emitted by more than one static instruction. */
    std::vector<uint8_t> shared_seq;
};

/** Walk every tile stream once and collect the analysis above. */
RegionAnalysis analyze_regions(const CompiledProgram &prog);

/**
 * Minimum straight-line run length worth fusing.  Entering a region
 * costs one extra dispatch plus (when the run outpaces global time) a
 * scoreboard-wheel push/pop; runs shorter than this lose to the
 * plain per-record path.
 */
constexpr int kMinRegionRun = 3;

/**
 * Suffix run lengths over an eligibility bitmap: out[pc] = number of
 * consecutive eligible records starting at pc.  A record starts a
 * region when out[pc] >= kMinRegionRun; computing *suffix* lengths
 * makes branch targets into the middle of a run start their own
 * (shorter) region naturally.
 */
std::vector<int32_t>
region_run_lengths(const std::vector<uint8_t> &eligible);

} // namespace raw

#endif
