#include "sim/simulator.hpp"

#include <algorithm>
#include <queue>

#include "ir/eval.hpp"
#include "sim/region.hpp"

/**
 * @file
 * Threaded-code simulator backend (SimBackend::kThreaded).
 *
 * The reference core (processor.cpp / switch.cpp) re-decodes every
 * instruction's operand kinds on every cycle and steps every live
 * unit even when it is provably stalled.  This backend removes both
 * costs while preserving bit-identical semantics:
 *
 *  - Pre-decoding: each tile's processor and switch streams are
 *    translated once into flat handler records (PRec / SRec) with
 *    operand kinds, latencies, array bases, route FIFO pointers and
 *    opcode classes resolved at decode time.  Dispatch is a computed
 *    goto where the compiler supports labels-as-values, an indexed
 *    switch otherwise.  Records are 1:1 with instruction indices, so
 *    pcs, branch targets and checker provenance keys are unchanged.
 *
 *  - Pair fusion: a producer whose result is architecturally ready
 *    one cycle after retire (const, recv, any 1-cycle ALU op) marks
 *    the scoreboard check of the immediately following consumer
 *    (const+send, recv+alu, const+alu) as skippable, provided the
 *    consumer is not a branch target.  Fusion never merges cycles —
 *    it only elides interlock checks that can never fire.
 *
 *  - Sleep/wake: a unit that blocks *durably* on a port FIFO (the
 *    counterparty has not acted this cycle, so the condition cannot
 *    clear next cycle) or on a scoreboard deadline goes to sleep.
 *    Port FIFOs are single-reader/single-writer, so the counterparty
 *    wakes it on the push/pop that unblocks it; scoreboard sleepers
 *    sit in a time wheel.  A sleeping unit would have repeated the
 *    same stall category every cycle, so its whole sleep span is
 *    accounted in one batch on wake-up — SimProfile sums stay exact.
 *    After each retire the unit additionally *peeks* the next
 *    record's gates for the coming cycle (peek_proc / peek_sw) and
 *    sleeps immediately when one is durably blocked, skipping the
 *    spin step it would otherwise burn discovering the stall.  Units
 *    whose stall re-draws RNG every cycle (clock jitter) or whose
 *    wake is not event-visible (dynamic-network waits, injected
 *    route holds) never sleep; they spin exactly like the reference.
 *    Awake units live in per-plane bitmasks scanned in ascending
 *    tile order with a live cursor, so a cycle's cost scales with
 *    the number of awake units, not the machine size, while keeping
 *    the reference's visit order.  The hottest aggregate counters
 *    are batched in ThreadedState and folded into SimResult before
 *    any exit path can observe them, and per-tile state is reached
 *    through pointers resolved once at decode (HotP / HotS).
 *
 *  - Sprint: when exactly one processor is awake and the network is
 *    empty, its straight-line records execute in a tight loop, one
 *    instruction per cycle, without the per-cycle machine scaffolding.
 *
 *  - Regions (SimBackend::kRegion only): decode marks straight-line
 *    runs of records that touch no FIFO and draw no fault randomness
 *    (formation rules in sim/region.hpp) with PF_REGION, and stamps
 *    PF_RSTART where a run of at least kMinRegionRun records starts.
 *    Hitting a PF_RSTART record fuses the whole run into one
 *    dispatch of the same straight-line loop sprint uses — the unit
 *    executes in *local* time, ahead of the global clock, with no
 *    awake-mask or wheel maintenance per cycle — then parks in the
 *    new kAhead state until global time catches up (a wheel entry at
 *    its resume cycle; FIFO wakes ignore kAhead, and stale wheel
 *    entries are filtered by the per-unit resume stamp).  Every
 *    cycle the run-ahead retires is accounted at its true cycle
 *    number through the same account_* paths, so profiles, counters
 *    and prints stay bit-identical to the reference.  Any fault
 *    channel or the runtime checker disables region formation
 *    entirely (the same gate that keeps jitter off the fast paths).
 *
 * Equivalence with the reference backend (cycles, prints, profile
 * sums, provenance hashes) is pinned by tests/test_sim_backend.cpp
 * and the rawcc --sim-diff mode.  The one documented divergence is
 * the *cycle number inside DeadlockError messages*: the backends may
 * prove a frozen machine dead at different points of the stall
 * window; the reported deadlock *set* is identical (see
 * DeadlockError::deadlock_set).  Successful runs are bit-identical.
 */

#if defined(__GNUC__) || defined(__clang__)
#define RAWCC_COMPUTED_GOTO 1
#else
#define RAWCC_COMPUTED_GOTO 0
#endif

namespace raw {

namespace {

/** May these two switch opcodes dual-issue (mirror of switch.cpp)? */
bool
dual_issue_pair_k(SInstr::K a, SInstr::K b)
{
    return (a == SInstr::K::kAlu && b == SInstr::K::kRoute) ||
           (a == SInstr::K::kRoute && b == SInstr::K::kAlu);
}

constexpr const char *kUbMsg =
    "threaded backend: instruction relies on undefined "
    "reference-simulator behavior (register index out of range)";

} // namespace

struct ThreadedState
{
    // ---- pre-decoded processor records -------------------------------
    enum PK : uint8_t {
        kConstReg = 0, ///< regs[dst] = imm
        kConstPort,    ///< push imm into p2s
        kSend,         ///< push reg/zero into p2s
        kRecv,         ///< pop s2p into reg / discard
        kLoadArr,      ///< static array load (reg addr, reg dst)
        kLoadSpill,    ///< spill-slot load
        kStoreArr,     ///< static array store (value may be a port)
        kStoreSpill,   ///< spill-slot store (value may be a port)
        kDyn,          ///< kDynLoad / kDynStore
        kPrint,        ///< print reg or port word
        kJump,
        kBranch,
        kHaltP,
        kAluRR,        ///< computational, register operands only
        kAluGen,       ///< computational with port operands
        kTrapP,        ///< pc ran off the end of the stream
        kBadP,         ///< undefined-in-reference pattern
        kNumPK
    };
    static constexpr uint8_t PF_SKIP0 = 1; ///< src0 interlock elided
    static constexpr uint8_t PF_SKIP1 = 2; ///< src1 interlock elided
    static constexpr uint8_t PF_SPRINT = 4; ///< solo fast-path eligible
    static constexpr uint8_t PF_REGION = 8; ///< region-run eligible
    static constexpr uint8_t PF_RSTART = 16; ///< run >= kMinRegionRun
    /** Region entries advancing fewer cycles than this are counted
        as unprofitable (dispatch + park churn beats the saving). */
    static constexpr int64_t kRegionMinGain = 8;
    /** Unprofitable entries a start record survives before its
        RSTART bit is cleared (see p_credit/s_credit). */
    static constexpr int8_t kRegionCredit = 4;

    struct PRec
    {
        uint8_t k = kBadP;
        uint8_t flags = 0;
        Op op = Op::kHalt;
        Type type = Type::kI32;
        uint8_t cls = 0; ///< op_class(op)
        uint8_t ns = 0;  ///< op_num_srcs (kAluGen)
        int32_t dst = -1;
        int32_t s0 = -1; ///< reg index, kPortOperand, or -1
        int32_t s1 = -1;
        int32_t lat = 1; ///< result latency (ALU/load base)
        uint32_t imm = 0;
        int64_t a = 0; ///< array base / branch target / print_seq
    };

    // ---- pre-decoded switch records ----------------------------------
    enum SK : uint8_t {
        kRoute1 = 0, ///< 1 pair, 1 out, no reg latch, no checker
        kRouteN,     ///< general ROUTE (checker hooks included)
        kSAluC,      ///< regs[dst] = imm
        kSAluOp,     ///< regs[dst] = op(a, b)
        kSBnez,
        kSJump,
        kSHalt,
        kSTrap,
        kSBad,
        kNumSK
    };

    /** Who to wake after touching a FIFO (tile < 0: nobody). */
    struct SWake
    {
        int16_t tile = -1;
        uint8_t proc = 0; ///< 1 = processor, 0 = switch
    };
    struct SOut
    {
        Fifo *f = nullptr;
        SWake w;
        uint8_t dir = 0; ///< Dir value (checker key)
    };
    struct SPair
    {
        Fifo *src = nullptr;
        SWake w;            ///< writer of src (woken on pop)
        uint8_t in_dir = 0; ///< Dir value (checker key)
        int16_t nb = -1;    ///< neighbor tile for link inputs
        int16_t reg_dst = -1;
        int32_t ob = 0, oe = 0; ///< out-pool range
    };
    static constexpr uint8_t SF_REGION = 1; ///< region-run eligible
    static constexpr uint8_t SF_RSTART = 2; ///< run >= kMinRegionRun

    struct SRec
    {
        uint8_t k = kSBad;
        uint8_t dual = 0; ///< may dual-issue with the next record
        uint8_t rflags = 0; ///< SF_* region marks (kRegion only)
        Op op = Op::kAdd;
        int16_t dst = -1, a = -1, b = -1, cond = -1;
        uint32_t imm = 0;
        int64_t target = 0;
        int32_t pb = 0, pe = 0; ///< pair-pool range
        /**
         * kRoute1 fast path: its single pair and out resolved at
         * decode, so the hot route needs no pair/out-pool loads.
         * FIFO addresses are stable (sized in the Simulator ctor).
         */
        Fifo *src = nullptr, *out = nullptr;
        SWake wsrc, wout;
    };

    /**
     * kAhead: the unit already executed (and fully accounted) its
     * cycles up to p_resume/s_resume through a fused region run; it
     * rejoins the awake set when global time reaches that stamp.
     * FIFO wakes must not (and, via the kAsleep check in wake_*,
     * do not) touch it — its future is already decided.
     */
    enum UnitState : uint8_t {
        kAsleep = 0,
        kAwake = 1,
        kHalted = 2,
        kAhead = 3
    };

    /**
     * Per-tile hot pointers resolved once after decode, so the step
     * functions touch no std::vector headers on the critical path.
     * All targets are sized in the Simulator constructor (register
     * files, FIFOs, profile tiles) or frozen at decode (records), so
     * the pointers stay valid for the life of the run.
     */
    struct HotP
    {
        const PRec *code = nullptr;
        uint32_t *regs = nullptr;
        int64_t *busy = nullptr;
        Fifo *p2s = nullptr, *s2p = nullptr;
        Simulator::Proc *p = nullptr;
        TileProfile *prof = nullptr;
    };
    struct HotS
    {
        const SRec *code = nullptr;
        Simulator::Sw *sw = nullptr;
        TileProfile *prof = nullptr;
        int64_t *stalls = nullptr; ///< prof->route_stalls.data()
    };

    struct SleepP
    {
        int64_t begin = -1; ///< first unaccounted cycle (-1: none)
        ProcCycle cat = ProcCycle::kIdle;
    };
    struct SleepS
    {
        int64_t begin = -1;
        SwitchCycle cat = SwitchCycle::kIdle;
        int64_t pc = 0; ///< route_stalls index frozen during sleep
    };

    explicit ThreadedState(Simulator &sim)
        : S(sim), n(sim.prog_.machine.n_tiles)
    {
    }

    Simulator &S;
    const int n;
    bool jitter_on = false;
    bool trace_ = false;
    bool route_fault_on = false;
    /** Region compiler armed (kRegion backend, no faults/checker). */
    bool regions_on = false;

    std::vector<std::vector<PRec>> pcode;
    std::vector<std::vector<SRec>> scode;
    std::vector<SPair> pairs;
    std::vector<SOut> souts;
    std::vector<HotP> hp;
    std::vector<HotS> hs;

    std::vector<uint8_t> p_state, s_state;
    /** Awake-unit bitmasks mirroring p_state/s_state == kAwake. */
    std::vector<uint64_t> p_mask, s_mask;
    std::vector<SleepP> p_sleep;
    std::vector<SleepS> s_sleep;
    /**
     * First cycle a kAhead unit may rejoin the awake set.  The wheel
     * holds lazily-deleted entries (a unit can sleep and wake on the
     * same deadline several times), so a pop resumes a kAhead unit
     * only when its stamp has been reached: any stale entry pops at
     * a strictly earlier cycle and is discarded by the guard.
     */
    std::vector<int64_t> p_resume, s_resume;
    /**
     * Adaptive region demotion: a start record whose entries keep
     * advancing fewer than kRegionMinGain cycles (comm-dense code
     * where the static run hits a FIFO op almost immediately) burns
     * one credit per unprofitable entry; at zero the PF_RSTART /
     * SF_RSTART bit is cleared and the pc falls back to plain
     * stepping, so park/resume churn can never exceed a constant
     * per start record.  Purely a performance policy — demotion is
     * deterministic and regions stay transparent either way.
     */
    std::vector<std::vector<int8_t>> p_credit, s_credit;
    int awake_procs = 0, awake_sw = 0;
    int live_procs = 0, live_sw = 0;
    /**
     * Batched mirrors of the hottest SimResult aggregates; folded into
     * S.stats_ by flush_counters() before any code can observe them
     * (run exit, deadlock report).
     */
    int64_t c_instrs = 0, c_sw_instrs = 0, c_words = 0, c_pstall = 0;
    /** Region diagnostics (SimResult::regions_entered/region_cycles). */
    int64_t c_regions = 0, c_region_cycles = 0;
    /** Cycle bound for region run-ahead (max_cycles of this run). */
    int64_t region_stop = 0;
    /**
     * Batched mirror of S.progress_ for unit steps (it shares the
     * hot counter line); the dyn planes still set S.progress_.
     */
    bool prog_ = false;
    /**
     * Time wheel (lazy deletion): scoreboard deadlines of sleeping
     * processors (index t) and resume stamps of run-ahead units
     * (processors at index t, switches at index n + t — a switch
     * only ever enters the wheel as kAhead).
     */
    std::priority_queue<std::pair<int64_t, int>,
                        std::vector<std::pair<int64_t, int>>,
                        std::greater<>>
        wheel;

    // ---- awake-unit bitmask helpers ----------------------------------
    static inline int
    ctz64(uint64_t v)
    {
#if defined(__GNUC__) || defined(__clang__)
        return __builtin_ctzll(v);
#else
        int c = 0;
        while (!(v & 1)) {
            v >>= 1;
            c++;
        }
        return c;
#endif
    }
    static inline void
    mask_set(std::vector<uint64_t> &m, int t)
    {
        m[t >> 6] |= uint64_t(1) << (t & 63);
    }
    static inline void
    mask_clr(std::vector<uint64_t> &m, int t)
    {
        m[t >> 6] &= ~(uint64_t(1) << (t & 63));
    }
    /**
     * Smallest set bit strictly after @p after (-1 to start), or -1.
     * Reads the live mask, so the ascending scan in run() sees units
     * woken at or ahead of the cursor this cycle and skips units woken
     * behind it — exactly the visit-time state check it replaces.
     */
    static inline int
    mask_next(const std::vector<uint64_t> &m, int after)
    {
        int w = (after + 1) >> 6;
        const int nw = static_cast<int>(m.size());
        if (w >= nw)
            return -1;
        uint64_t bits = m[w] & (~uint64_t(0) << ((after + 1) & 63));
        while (!bits) {
            if (++w >= nw)
                return -1;
            bits = m[w];
        }
        return (w << 6) + ctz64(bits);
    }

    /** Fold the batched aggregates into S.stats_. */
    inline void
    flush_counters()
    {
        S.stats_.instrs_executed += c_instrs;
        S.stats_.switch_instrs_executed += c_sw_instrs;
        S.stats_.words_routed += c_words;
        S.stats_.proc_stall_cycles += c_pstall;
        S.stats_.regions_entered += c_regions;
        S.stats_.region_cycles += c_region_cycles;
        c_instrs = c_sw_instrs = c_words = c_pstall = 0;
        c_regions = c_region_cycles = 0;
    }

    // ---- accounting (inline mirrors of Simulator::account_*) ---------
    inline void
    acct_proc(TileProfile *prof, int t, int64_t now, ProcCycle c)
    {
        if (trace_) {
            S.account_proc(t, now, c);
            return;
        }
        prof->proc_cycles[static_cast<int>(c)]++;
        S.last_proc_cat_[t] = c;
    }
    inline void
    acct_sw(TileProfile *prof, int t, int64_t now, SwitchCycle c)
    {
        if (trace_) {
            S.account_switch(t, now, c);
            return;
        }
        prof->switch_cycles[static_cast<int>(c)]++;
        S.last_sw_cat_[t] = c;
    }
    inline void
    stall_p(TileProfile *prof, int t, int64_t now, ProcCycle c)
    {
        c_pstall++;
        acct_proc(prof, t, now, c);
    }

    // ---- sleep / wake -------------------------------------------------
    inline void
    wake_proc(int t)
    {
        if (p_state[t] == kAsleep) {
            p_state[t] = kAwake;
            mask_set(p_mask, t);
            awake_procs++;
        }
    }
    inline void
    wake_sw(int t)
    {
        if (s_state[t] == kAsleep) {
            s_state[t] = kAwake;
            mask_set(s_mask, t);
            awake_sw++;
        }
    }
    inline void
    wake(const SWake &w)
    {
        if (w.tile < 0)
            return;
        if (w.proc)
            wake_proc(w.tile);
        else
            wake_sw(w.tile);
    }
    inline void
    sleep_proc(int t, int64_t now, ProcCycle cat)
    {
        p_state[t] = kAsleep;
        mask_clr(p_mask, t);
        awake_procs--;
        p_sleep[t] = {now + 1, cat};
    }
    inline void
    sleep_sw(int t, int64_t now, SwitchCycle cat, int64_t pc)
    {
        s_state[t] = kAsleep;
        mask_clr(s_mask, t);
        awake_sw--;
        s_sleep[t] = {now + 1, cat, pc};
    }
    /** Batch-account a woken unit's sleep span (frozen category). */
    inline void
    flush_proc(int t, int64_t now)
    {
        SleepP &sl = p_sleep[t];
        if (sl.begin < 0)
            return;
        int64_t span = now - sl.begin;
        if (span > 0) {
            S.account_proc_n(t, sl.begin, sl.cat, span);
            c_pstall += span;
            S.last_proc_cat_[t] = sl.cat;
        }
        sl.begin = -1;
    }
    inline void
    flush_sw(int t, int64_t now)
    {
        SleepS &sl = s_sleep[t];
        if (sl.begin < 0)
            return;
        int64_t span = now - sl.begin;
        if (span > 0) {
            S.account_switch_n(t, sl.begin, sl.cat, span);
            hs[t].stalls[sl.pc] += span;
            S.last_sw_cat_[t] = sl.cat;
        }
        sl.begin = -1;
    }

    void decode();
    void decode_proc(int t);
    void decode_switch(int t);
    void mark_regions(int t, const RegionAnalysis &ra);

    void step_proc(int t, int64_t now);
    void peek_proc(const HotP &h, int t, int64_t now);
    struct SwOutcome
    {
        Simulator::SwExec res;
        Fifo *blocker;
    };
    SwOutcome exec_srec(int t, int64_t now);
    void step_sw(int t, int64_t now);
    void peek_sw(const HotS &h, int t, int64_t now);

    int64_t straight_run(int t, int64_t now, int64_t stop,
                         uint8_t gate, int64_t &last_progress);
    void region_proc(int t, int64_t now);
    int64_t region_sw_run(int t, int64_t now);
    void region_sw(int t, int64_t now);
    void pop_wheel(int64_t now);
    void prep_deadlock(int64_t now);
    int64_t next_wake(int64_t now) const;
    void jump_forward(int64_t now, int64_t skip);
    SimResult run(int64_t max_cycles);
};

// ====================================================================
// Decode
// ====================================================================

void
ThreadedState::decode()
{
    jitter_on = S.faults_.jitter_rate > 0.0;
    trace_ = S.stats_.profile.trace_enabled;
    route_fault_on = S.faults_.route_stall_rate > 0.0;
    // Regions require draw-free, checker-free record bodies; any
    // armed fault channel or the runtime checker turns the region
    // backend into plain kThreaded (tests pin regions_entered == 0).
    regions_on = S.backend_ == SimBackend::kRegion &&
                 !S.faults_.any() && !S.checker_;
    pcode.resize(n);
    scode.resize(n);
    p_state.assign(n, kHalted);
    s_state.assign(n, kHalted);
    p_mask.assign((n + 63) / 64, 0);
    s_mask.assign((n + 63) / 64, 0);
    p_sleep.assign(n, {});
    s_sleep.assign(n, {});
    p_resume.assign(n, 0);
    s_resume.assign(n, 0);
    RegionAnalysis ra;
    if (regions_on) {
        ra = analyze_regions(S.prog_);
        p_credit.resize(n);
        s_credit.resize(n);
    }
    for (int t = 0; t < n; t++) {
        decode_proc(t);
        decode_switch(t);
        if (regions_on)
            mark_regions(t, ra);
        if (!S.procs_[t].halted) {
            p_state[t] = kAwake;
            mask_set(p_mask, t);
            awake_procs++;
            live_procs++;
        }
        if (!S.switches_[t].halted) {
            s_state[t] = kAwake;
            mask_set(s_mask, t);
            awake_sw++;
            live_sw++;
        }
    }
    // Hot pointer tables: only after every record pool is final.
    hp.resize(n);
    hs.resize(n);
    for (int t = 0; t < n; t++) {
        HotP &h = hp[t];
        h.code = pcode[t].data();
        h.regs = S.procs_[t].regs.data();
        h.busy = S.procs_[t].busy.data();
        h.p2s = &S.p2s_[t];
        h.s2p = &S.s2p_[t];
        h.p = &S.procs_[t];
        h.prof = &S.stats_.profile.tiles[t];
        HotS &g = hs[t];
        g.code = scode[t].data();
        g.sw = &S.switches_[t];
        g.prof = &S.stats_.profile.tiles[t];
        g.stalls = S.stats_.profile.tiles[t].route_stalls.data();
    }
}

void
ThreadedState::decode_proc(int t)
{
    const std::vector<PInstr> &code = S.prog_.tiles[t].code;
    const int64_t size = static_cast<int64_t>(code.size());
    const int nregs = static_cast<int>(S.procs_[t].regs.size());
    const MachineConfig &m = S.prog_.machine;
    std::vector<PRec> &recs = pcode[t];
    recs.assign(size + 1, PRec{});

    auto clamp_tgt = [&](int64_t tg) {
        return tg >= 0 && tg <= size ? tg : size;
    };
    // Branch-target map: fusion requires pure fall-through entry.
    std::vector<uint8_t> is_tgt(size + 1, 0);
    if (size > 0)
        is_tgt[0] = 1;
    for (const PInstr &in : code)
        if (in.op == Op::kJump || in.op == Op::kBranch) {
            int64_t tg = clamp_tgt(in.target);
            if (tg < size)
                is_tgt[tg] = 1;
        }

    auto reg_ok = [&](int r) { return r >= 0 && r < nregs; };
    auto opnd_ok = [&](int r) {
        return r == -1 || r == kPortOperand || reg_ok(r);
    };

    for (int64_t pc = 0; pc < size; pc++) {
        const PInstr &in = code[pc];
        PRec &r = recs[pc];
        r.op = in.op;
        r.type = in.type;
        r.cls = static_cast<uint8_t>(op_class(in.op));
        r.dst = in.dst;
        r.s0 = in.src[0];
        r.s1 = in.src[1];
        r.imm = in.imm;
        auto bad = [&] { r.k = kBadP; };
        if (!opnd_ok(in.dst) || !opnd_ok(in.src[0]) ||
            !opnd_ok(in.src[1])) {
            bad();
            continue;
        }
        switch (in.op) {
          case Op::kConst:
            if (in.dst == kPortOperand)
                r.k = kConstPort;
            else if (reg_ok(in.dst))
                r.k = kConstReg;
            else
                bad();
            break;
          case Op::kSend:
            r.k = kSend; // port src = reference's send-zero quirk
            break;
          case Op::kRecv:
            // A negative dst (including a port) discards the word in
            // the reference backend, so both are well-defined here.
            r.k = kRecv;
            break;
          case Op::kLoad:
            if (!reg_ok(in.dst)) {
                bad();
                break;
            }
            r.lat = m.latency(FuOp::kLoad);
            if (in.array == kSpillArray) {
                // The address operand is unused for spill slots; a
                // port src still gates readiness (never consumed).
                r.k = kLoadSpill;
            } else if (in.src[0] == kPortOperand || in.array < 0 ||
                       in.array >=
                           static_cast<int>(S.prog_.arrays.size())) {
                bad();
            } else {
                r.k = kLoadArr;
                r.a = S.prog_.arrays[in.array].base;
            }
            break;
          case Op::kStore:
            if (in.array == kSpillArray) {
                r.k = kStoreSpill;
            } else if (in.src[0] == kPortOperand || in.array < 0 ||
                       in.array >=
                           static_cast<int>(S.prog_.arrays.size())) {
                bad();
            } else {
                r.k = kStoreArr;
                r.a = S.prog_.arrays[in.array].base;
            }
            break;
          case Op::kDynLoad:
          case Op::kDynStore: {
            bool is_store = in.op == Op::kDynStore;
            if (!reg_ok(in.src[0]) ||
                (is_store && !reg_ok(in.src[1])) ||
                (!is_store && !reg_ok(in.dst)) || in.array < 0 ||
                in.array >=
                    static_cast<int>(S.prog_.arrays.size())) {
                bad();
                break;
            }
            r.k = kDyn;
            r.a = S.prog_.arrays[in.array].base;
            r.lat = m.latency(FuOp::kLoad);
            break;
          }
          case Op::kPrint:
            r.k = kPrint;
            r.a = in.print_seq;
            break;
          case Op::kJump:
            r.k = kJump;
            r.a = clamp_tgt(in.target);
            break;
          case Op::kBranch:
            if (!reg_ok(in.src[0])) {
                bad();
                break;
            }
            r.k = kBranch;
            r.a = clamp_tgt(in.target);
            break;
          case Op::kHalt:
            r.k = kHaltP;
            break;
          default: { // computational
            r.ns = static_cast<uint8_t>(op_num_srcs(in.op));
            r.lat = m.latency(op_fu(in.op));
            if (r.ns < 2)
                r.s1 = -1;
            if (r.ns < 1)
                r.s0 = -1;
            bool has_port = r.s0 == kPortOperand ||
                            r.s1 == kPortOperand ||
                            in.dst == kPortOperand;
            if (has_port)
                r.k = kAluGen;
            else if (reg_ok(in.dst))
                r.k = kAluRR;
            else
                bad();
            break;
          }
        }
    }
    recs[size].k = kTrapP;

    // Pair fusion: elide interlocks the producer makes unmissable.
    for (int64_t pc = 1; pc < size; pc++) {
        if (is_tgt[pc])
            continue;
        const PInstr &prev = code[pc - 1];
        if (prev.dst < 0 || recs[pc - 1].k == kBadP)
            continue;
        bool one_cycle =
            prev.op == Op::kConst || prev.op == Op::kRecv ||
            (recs[pc - 1].k == kAluRR && recs[pc - 1].lat == 1);
        if (!one_cycle)
            continue;
        PRec &r = recs[pc];
        switch (r.k) {
          case kSend:
          case kLoadArr:
          case kLoadSpill:
          case kStoreArr:
          case kStoreSpill:
          case kDyn:
          case kPrint:
          case kBranch:
          case kAluRR:
            if (r.s0 == prev.dst)
                r.flags |= PF_SKIP0;
            if (r.s1 == prev.dst)
                r.flags |= PF_SKIP1;
            break;
          default:
            break;
        }
    }

    // Sprint eligibility: touches no ports, no dynamic network.
    for (int64_t pc = 0; pc < size; pc++) {
        PRec &r = recs[pc];
        switch (r.k) {
          case kConstReg:
          case kAluRR:
          case kLoadArr:
          case kJump:
          case kBranch:
            r.flags |= PF_SPRINT;
            break;
          case kLoadSpill:
            if (r.s0 != kPortOperand)
                r.flags |= PF_SPRINT;
            break;
          case kStoreArr:
          case kStoreSpill:
            if (r.s0 != kPortOperand && r.s1 != kPortOperand)
                r.flags |= PF_SPRINT;
            break;
          case kPrint:
            if (r.s0 != kPortOperand)
                r.flags |= PF_SPRINT;
            break;
          default:
            break;
        }
    }
}

void
ThreadedState::decode_switch(int t)
{
    const std::vector<SInstr> &code = S.prog_.switches[t].code;
    const int64_t size = static_cast<int64_t>(code.size());
    const int nregs = static_cast<int>(S.switches_[t].regs.size());
    const MachineConfig &m = S.prog_.machine;
    std::vector<SRec> &recs = scode[t];
    recs.assign(size + 1, SRec{});

    auto clamp_tgt = [&](int64_t tg) {
        return tg >= 0 && tg <= size ? tg : size;
    };

    for (int64_t pc = 0; pc < size; pc++) {
        const SInstr &in = code[pc];
        SRec &r = recs[pc];
        switch (in.k) {
          case SInstr::K::kRoute: {
            bool ok = true;
            r.pb = static_cast<int32_t>(pairs.size());
            for (const RoutePair &rp : in.routes) {
                SPair pr;
                pr.in_dir = static_cast<uint8_t>(rp.in);
                if (rp.in == Dir::kProc) {
                    pr.src = &S.p2s_[t];
                    pr.w = {static_cast<int16_t>(t), 1};
                } else {
                    int nb = m.neighbor(t, rp.in);
                    if (nb < 0) {
                        ok = false; // reference panics at exec
                        break;
                    }
                    pr.nb = static_cast<int16_t>(nb);
                    pr.src =
                        &S.links_[nb]
                                 [static_cast<int>(opposite(rp.in))];
                    pr.w = {static_cast<int16_t>(nb), 0};
                }
                if (rp.reg_dst >= nregs) {
                    ok = false;
                    break;
                }
                pr.reg_dst = static_cast<int16_t>(rp.reg_dst);
                pr.ob = static_cast<int32_t>(souts.size());
                for (int d = 0; d < kNumDirs; d++) {
                    if (!(rp.out_mask & (1u << d)))
                        continue;
                    SOut o;
                    o.dir = static_cast<uint8_t>(d);
                    if (static_cast<Dir>(d) == Dir::kProc) {
                        o.f = &S.s2p_[t];
                        o.w = {static_cast<int16_t>(t), 1};
                    } else {
                        o.f = &S.links_[t][d];
                        int nb = m.neighbor(t, static_cast<Dir>(d));
                        // Off-mesh outputs have no reader; pushes
                        // accumulate until the FIFO fills, exactly as
                        // in the reference.
                        o.w = {static_cast<int16_t>(nb), 0};
                    }
                    souts.push_back(o);
                }
                pr.oe = static_cast<int32_t>(souts.size());
                pairs.push_back(pr);
            }
            r.pe = static_cast<int32_t>(pairs.size());
            if (!ok) {
                r.k = kSBad;
                break;
            }
            bool fast = !S.checker_ && r.pe - r.pb == 1 &&
                        pairs[r.pb].oe - pairs[r.pb].ob == 1 &&
                        pairs[r.pb].reg_dst < 0;
            r.k = fast ? kRoute1 : kRouteN;
            if (fast) {
                const SPair &pr = pairs[r.pb];
                r.src = pr.src;
                r.wsrc = pr.w;
                r.out = souts[pr.ob].f;
                r.wout = souts[pr.ob].w;
            }
            break;
          }
          case SInstr::K::kAlu:
            if (in.dst < 0 || in.dst >= nregs) {
                r.k = kSBad;
                break;
            }
            r.dst = static_cast<int16_t>(in.dst);
            if (in.op == Op::kConst) {
                // a/b are ignored by the reference for constants.
                r.k = kSAluC;
                r.imm = in.imm;
            } else if (in.a >= nregs || in.b >= nregs) {
                r.k = kSBad;
            } else {
                r.k = kSAluOp;
                r.op = in.op;
                r.a = static_cast<int16_t>(in.a);
                r.b = static_cast<int16_t>(in.b);
            }
            break;
          case SInstr::K::kBnez:
            if (in.cond < 0 || in.cond >= nregs) {
                r.k = kSBad;
                break;
            }
            r.k = kSBnez;
            r.cond = static_cast<int16_t>(in.cond);
            r.target = clamp_tgt(in.target);
            break;
          case SInstr::K::kJump:
            r.k = kSJump;
            r.target = clamp_tgt(in.target);
            break;
          case SInstr::K::kHalt:
            r.k = kSHalt;
            break;
        }
    }
    recs[size].k = kSTrap;

    if (m.switch_dual_issue)
        for (int64_t pc = 0; pc + 1 < size; pc++)
            if (dual_issue_pair_k(code[pc].k, code[pc + 1].k))
                recs[pc].dual = 1;
}

/**
 * Region marking (SimBackend::kRegion): flag the records a fused
 * run-ahead loop may execute, then stamp run starts.  The formation
 * rules and the transparency argument live in sim/region.hpp; in
 * terms of record kinds:
 *
 *  - processors: the sprint-eligible set (no ports, no dynamic
 *    network) minus static accesses to arrays any dyn instruction
 *    can touch, and minus prints whose seq is shared by several
 *    instructions.  Sprint may keep both — it only runs when every
 *    other unit is parked — but a region runs ahead of live peers.
 *  - switches: the private-state kinds (ALU, jump, bnez) with no
 *    dual-issue partner; a ROUTE can never run ahead because a push
 *    at a future local cycle would be visible to the counterparty
 *    early (the Fifo occupancy algebra stamps words with the cycle
 *    of the push).
 */
void
ThreadedState::mark_regions(int t, const RegionAnalysis &ra)
{
    const std::vector<PInstr> &pin = S.prog_.tiles[t].code;
    std::vector<PRec> &precs = pcode[t];
    std::vector<uint8_t> elig(pin.size(), 0);
    for (size_t pc = 0; pc < pin.size(); pc++) {
        PRec &r = precs[pc];
        if (!(r.flags & PF_SPRINT))
            continue;
        if ((r.k == kLoadArr || r.k == kStoreArr) &&
            ra.dyn_array[pin[pc].array])
            continue;
        if (r.k == kPrint &&
            (r.a < 0 ||
             r.a >= static_cast<int64_t>(ra.shared_seq.size()) ||
             ra.shared_seq[static_cast<size_t>(r.a)]))
            continue;
        elig[pc] = 1;
        r.flags |= PF_REGION;
    }
    std::vector<int32_t> run = region_run_lengths(elig);
    for (size_t pc = 0; pc < elig.size(); pc++)
        if (run[pc] >= kMinRegionRun)
            precs[pc].flags |= PF_RSTART;
    p_credit[t].assign(precs.size(), kRegionCredit);

    std::vector<SRec> &srecs = scode[t];
    std::vector<uint8_t> selig(
        S.prog_.switches[t].code.size(), 0);
    for (size_t pc = 0; pc < selig.size(); pc++) {
        SRec &r = srecs[pc];
        if (r.dual)
            continue; // co-issues a ROUTE in the same cycle
        if (r.k == kSAluC || r.k == kSAluOp || r.k == kSJump ||
            r.k == kSBnez) {
            selig[pc] = 1;
            r.rflags |= SF_REGION;
        }
    }
    std::vector<int32_t> srun = region_run_lengths(selig);
    for (size_t pc = 0; pc < selig.size(); pc++)
        if (srun[pc] >= kMinRegionRun)
            srecs[pc].rflags |= SF_RSTART;
    s_credit[t].assign(srecs.size(), kRegionCredit);
}

// ====================================================================
// Processor step
// ====================================================================

void
ThreadedState::step_proc(int t, int64_t now)
{
    const HotP &h = hp[t];
    Simulator::Proc &p = *h.p;
    TileProfile *const prof = h.prof;
    flush_proc(t, now);

    if (jitter_on && S.jitter_hit()) {
        c_pstall++;
        acct_proc(prof, t, now, ProcCycle::kOperandWait);
        return;
    }

    // Outstanding dynamic-network request: mirror of processor.cpp.
    if (p.waiting_dyn) {
        if (p.inject_pos < p.inject.size()) {
            Fifo &local = S.req_plane_.in_bufs[t][4];
            if (local.can_push(now)) {
                local.push(now, p.inject[p.inject_pos++]);
                S.req_plane_.resident++;
                prog_ = true;
                if (p.inject_pos == p.inject.size()) {
                    p.inject.clear();
                    p.inject_pos = 0;
                }
                acct_proc(prof, t, now, ProcCycle::kMemWait);
            } else {
                stall_p(prof, t, now, ProcCycle::kSendBlocked);
            }
            return;
        }
        Simulator::DynState &d = S.dyn_[t];
        const PRec &r = h.code[p.pc];
        if (d.reply_ready && d.reply_time <= now) {
            if (r.op == Op::kDynLoad && r.dst >= 0) {
                h.regs[r.dst] = d.reply_value;
                h.busy[r.dst] = now + 1;
            }
            d.reply_ready = false;
            p.waiting_dyn = false;
            p.dyn_home = -1;
            p.pc++;
            c_instrs++;
            prog_ = true;
            acct_proc(prof, t, now, ProcCycle::kIssued);
            prof->issued[r.cls]++;
            peek_proc(h, t, now);
        } else {
            stall_p(prof, t, now, ProcCycle::kMemWait);
        }
        return;
    }

    const PRec &r = h.code[p.pc];
    if (r.flags & PF_RSTART)
        return region_proc(t, now);
    Fifo &p2s = *h.p2s;
    Fifo &s2p = *h.s2p;

    auto retire = [&] {
        p.pc++;
        c_instrs++;
        prog_ = true;
        acct_proc(prof, t, now, ProcCycle::kIssued);
        prof->issued[r.cls]++;
        peek_proc(h, t, now);
    };
    auto retire_at = [&](int64_t pc_next) {
        p.pc = pc_next;
        c_instrs++;
        prog_ = true;
        acct_proc(prof, t, now, ProcCycle::kIssued);
        prof->issued[r.cls]++;
        peek_proc(h, t, now);
    };
    // Scoreboard stall: always durable (busy[] is a fixed deadline).
    auto stall_busy = [&](int reg) {
        stall_p(prof, t, now, ProcCycle::kOperandWait);
        if (!jitter_on) {
            sleep_proc(t, now, ProcCycle::kOperandWait);
            wheel.push({h.busy[reg], t});
        }
    };
    // Durable-sleep probes for now+1 reduce to raw occupancy: no
    // FIFO can be stamped past the current cycle (see Fifo::full).
    auto stall_recv = [&] {
        stall_p(prof, t, now, ProcCycle::kRecvBlocked);
        if (!jitter_on && s2p.empty())
            sleep_proc(t, now, ProcCycle::kRecvBlocked);
    };
    auto stall_send = [&] {
        stall_p(prof, t, now, ProcCycle::kSendBlocked);
        if (!jitter_on && p2s.full())
            sleep_proc(t, now, ProcCycle::kSendBlocked);
    };
    // Pop the s2p head (checker-mirrored); wakes the switch.
    auto pop_s2p = [&](int slot) -> uint32_t {
        uint32_t v = s2p.pop(now);
        wake_sw(t);
        if (S.checker_) {
            WordProv o = S.checker_->take_s2p(t, s2p, now);
            S.checker_->consume_proc(t, p.pc, slot, o, v, now);
        }
        return v;
    };
    auto push_p2s = [&](uint32_t v) {
        p2s.push(now, v);
        wake_sw(t);
        if (S.checker_)
            S.checker_->send_p2s(t, p.pc, p2s, now);
    };

#if RAWCC_COMPUTED_GOTO
    // Indexed by PK; must match the enum order exactly.
    static const void *const kDisp[kNumPK] = {
        &&H_ConstReg, &&H_ConstPort, &&H_Send,     &&H_Recv,
        &&H_LoadArr,  &&H_LoadSpill, &&H_StoreArr, &&H_StoreSpill,
        &&H_Dyn,      &&H_Print,     &&H_Jump,     &&H_Branch,
        &&H_Halt,     &&H_AluRR,     &&H_AluGen,   &&H_Trap,
        &&H_Bad,
    };
    goto *kDisp[r.k];
#else
    switch (r.k) {
      case kConstReg: goto H_ConstReg;
      case kConstPort: goto H_ConstPort;
      case kSend: goto H_Send;
      case kRecv: goto H_Recv;
      case kLoadArr: goto H_LoadArr;
      case kLoadSpill: goto H_LoadSpill;
      case kStoreArr: goto H_StoreArr;
      case kStoreSpill: goto H_StoreSpill;
      case kDyn: goto H_Dyn;
      case kPrint: goto H_Print;
      case kJump: goto H_Jump;
      case kBranch: goto H_Branch;
      case kHaltP: goto H_Halt;
      case kAluRR: goto H_AluRR;
      case kAluGen: goto H_AluGen;
      case kTrapP: goto H_Trap;
      default: goto H_Bad;
    }
#endif

H_ConstReg:
    h.regs[r.dst] = r.imm;
    h.busy[r.dst] = now + 1;
    retire();
    return;

H_ConstPort:
    if (!p2s.can_push(now))
        return stall_send();
    push_p2s(r.imm);
    retire();
    return;

H_Send: {
    if (r.s0 == kPortOperand) {
        // Reference quirk: readiness checks the input port, but the
        // value sent is zero and the port word is left unconsumed.
        if (!s2p.can_pop(now))
            return stall_recv();
    } else if (r.s0 >= 0 && !(r.flags & PF_SKIP0) &&
               h.busy[r.s0] > now) {
        return stall_busy(r.s0);
    }
    if (!p2s.can_push(now))
        return stall_send();
    push_p2s(r.s0 >= 0 ? h.regs[r.s0] : 0);
    retire();
    return;
}

H_Recv: {
    if (!s2p.can_pop(now))
        return stall_recv();
    uint32_t v = pop_s2p(0);
    if (r.dst >= 0) {
        h.regs[r.dst] = v;
        h.busy[r.dst] = now + 1;
    }
    retire();
    return;
}

H_LoadArr: {
    if (r.s0 >= 0 && !(r.flags & PF_SKIP0) && h.busy[r.s0] > now)
        return stall_busy(r.s0);
    int64_t lat = r.lat + S.fault_extra();
    int64_t g = r.a + bits_int(r.s0 >= 0 ? h.regs[r.s0] : 0);
    check(S.mem_.home_of(g) == t,
          "static load executed away from its home tile");
    h.regs[r.dst] = S.mem_.read_local(t, S.mem_.local_of(g));
    h.busy[r.dst] = now + lat;
    retire();
    return;
}

H_LoadSpill: {
    if (r.s0 == kPortOperand) {
        // Readiness gates on the port; the word is never consumed
        // (the reference ignores the address operand for spills).
        if (!s2p.can_pop(now))
            return stall_recv();
    } else if (r.s0 >= 0 && !(r.flags & PF_SKIP0) &&
               h.busy[r.s0] > now) {
        return stall_busy(r.s0);
    }
    int64_t lat = r.lat + S.fault_extra();
    h.regs[r.dst] =
        S.mem_.read_spill(t, static_cast<int64_t>(r.imm));
    h.busy[r.dst] = now + lat;
    retire();
    return;
}

H_StoreArr: {
    if (r.s0 >= 0 && !(r.flags & PF_SKIP0) && h.busy[r.s0] > now)
        return stall_busy(r.s0);
    if (r.s1 == kPortOperand) {
        if (!s2p.can_pop(now))
            return stall_recv();
    } else if (r.s1 >= 0 && !(r.flags & PF_SKIP1) &&
               h.busy[r.s1] > now) {
        return stall_busy(r.s1);
    }
    uint32_t v = r.s1 == kPortOperand
                     ? pop_s2p(1)
                     : (r.s1 >= 0 ? h.regs[r.s1] : 0);
    int64_t g = r.a + bits_int(r.s0 >= 0 ? h.regs[r.s0] : 0);
    check(S.mem_.home_of(g) == t,
          "static store executed away from its home tile");
    S.mem_.write_local(t, S.mem_.local_of(g), v);
    retire();
    return;
}

H_StoreSpill: {
    if (r.s0 == kPortOperand) {
        if (!s2p.can_pop(now))
            return stall_recv();
    } else if (r.s0 >= 0 && !(r.flags & PF_SKIP0) &&
               h.busy[r.s0] > now) {
        return stall_busy(r.s0);
    }
    if (r.s1 == kPortOperand) {
        if (!s2p.can_pop(now))
            return stall_recv();
    } else if (r.s1 >= 0 && !(r.flags & PF_SKIP1) &&
               h.busy[r.s1] > now) {
        return stall_busy(r.s1);
    }
    uint32_t v = r.s1 == kPortOperand
                     ? pop_s2p(1)
                     : (r.s1 >= 0 ? h.regs[r.s1] : 0);
    S.mem_.write_spill(t, static_cast<int64_t>(r.imm), v);
    retire();
    return;
}

H_Dyn: {
    bool is_store = r.op == Op::kDynStore;
    if (!(r.flags & PF_SKIP0) && h.busy[r.s0] > now)
        return stall_busy(r.s0);
    if (is_store && !(r.flags & PF_SKIP1) && h.busy[r.s1] > now)
        return stall_busy(r.s1);
    int64_t g = r.a + bits_int(h.regs[r.s0]);
    int home = S.mem_.home_of(g);
    if (home == t) {
        if (is_store) {
            S.mem_.write_local(t, S.mem_.local_of(g),
                               h.regs[r.s1]);
        } else {
            h.regs[r.dst] = S.mem_.read_local(t, S.mem_.local_of(g));
            h.busy[r.dst] = now + 1 + r.lat + S.fault_extra();
        }
        retire();
        return;
    }
    uint32_t addr_word = int_bits(static_cast<int32_t>(g));
    if (is_store)
        p.inject = {dyn_header(home, t, 2, DynKind::kStoreReq),
                    addr_word, h.regs[r.s1]};
    else
        p.inject = {dyn_header(home, t, 1, DynKind::kLoadReq),
                    addr_word};
    p.inject_pos = 0;
    S.stats_.dyn_messages++;
    p.waiting_dyn = true;
    p.dyn_home = home;
    prog_ = true;
    acct_proc(prof, t, now, ProcCycle::kMemWait);
    return;
}

H_Print: {
    if (r.s0 == kPortOperand) {
        if (!s2p.can_pop(now))
            return stall_recv();
    } else if (r.s0 >= 0 && !(r.flags & PF_SKIP0) &&
               h.busy[r.s0] > now) {
        return stall_busy(r.s0);
    }
    int seq = static_cast<int>(r.a);
    uint32_t v = r.s0 == kPortOperand
                     ? pop_s2p(0)
                     : (r.s0 >= 0 ? h.regs[r.s0] : 0);
    S.stats_.prints.push_back(
        {seq, S.print_count_[seq]++, r.type, v});
    retire();
    return;
}

H_Jump:
    retire_at(r.a);
    return;

H_Branch:
    if (!(r.flags & PF_SKIP0) && h.busy[r.s0] > now)
        return stall_busy(r.s0);
    retire_at(h.regs[r.s0] != 0 ? r.a : p.pc + 1);
    return;

H_Halt:
    p.halted = true;
    prog_ = true;
    acct_proc(prof, t, now, ProcCycle::kIssued);
    prof->issued[r.cls]++;
    p_state[t] = kHalted;
    mask_clr(p_mask, t);
    awake_procs--;
    live_procs--;
    return;

H_AluRR: {
    if (r.s0 >= 0 && !(r.flags & PF_SKIP0) && h.busy[r.s0] > now)
        return stall_busy(r.s0);
    if (r.s1 >= 0 && !(r.flags & PF_SKIP1) && h.busy[r.s1] > now)
        return stall_busy(r.s1);
    uint32_t a = r.s0 >= 0 ? h.regs[r.s0] : 0;
    uint32_t b = r.s1 >= 0 ? h.regs[r.s1] : 0;
    uint32_t out = 0;
    check(eval_op(r.op, a, b, out),
          "processor: unexecutable opcode");
    h.regs[r.dst] = out;
    h.busy[r.dst] = now + r.lat;
    retire();
    return;
}

H_AluGen: {
    // Computational op with port operands: mirror of the reference
    // default case, source order preserved.
    for (int s = 0; s < r.ns; s++) {
        int reg = s == 0 ? r.s0 : r.s1;
        if (reg == kPortOperand) {
            if (!s2p.can_pop(now))
                return stall_recv();
        } else if (reg >= 0 && h.busy[reg] > now) {
            return stall_busy(reg);
        }
    }
    if (r.dst == kPortOperand && !p2s.can_push(now))
        return stall_send();
    auto read_src = [&](int reg, int slot) -> uint32_t {
        if (reg == kPortOperand)
            return pop_s2p(slot);
        return reg >= 0 ? h.regs[reg] : 0;
    };
    uint32_t a = r.ns > 0 ? read_src(r.s0, 0) : 0;
    uint32_t b = r.ns > 1 ? read_src(r.s1, 1) : 0;
    uint32_t out = 0;
    check(eval_op(r.op, a, b, out),
          "processor: unexecutable opcode");
    if (r.dst == kPortOperand) {
        push_p2s(out);
    } else {
        h.regs[r.dst] = out;
        h.busy[r.dst] = now + r.lat;
    }
    retire();
    return;
}

H_Trap:
    check(false, "processor ran off the end of its stream");
    return;

H_Bad:
    check(false, kUbMsg);
    return;
}

/**
 * Predictive sleep: after a retire at @p now, walk the *next*
 * instruction's gates exactly in handler order, evaluated for cycle
 * now+1.  A failing gate at now+1 is durable by construction — port
 * pushes/pops for cycle @p now have all happened by the time the
 * owning unit runs (switch phase precedes the processor phase, and
 * port FIFOs are single-reader/single-writer), and scoreboard
 * deadlines are fixed — so the processor can skip the spin step it
 * would otherwise burn discovering the stall.  The sleep span is
 * accounted by flush_proc with the same category and cycle range the
 * spin-then-sleep path would have produced, so profiles stay exact.
 * Kinds with no (or unpredictable) gates simply stay awake.
 */
void
ThreadedState::peek_proc(const HotP &h, int t, int64_t now)
{
    if (jitter_on)
        return;
    Simulator::Proc &p = *h.p;
    const PRec &r = h.code[p.pc];
    const int64_t nn = now + 1;

    // Each gate returns true when the unit went to sleep on it.
    auto busy_gate = [&](int reg, uint8_t skip) {
        if (reg >= 0 && !(r.flags & skip) && h.busy[reg] > nn) {
            sleep_proc(t, now, ProcCycle::kOperandWait);
            wheel.push({h.busy[reg], t});
            return true;
        }
        return false;
    };
    // Port gates probe cycle now+1, where no FIFO can be stamped yet,
    // so can_pop/can_push reduce to raw occupancy (see Fifo::full).
    auto recv_gate = [&] {
        if (h.s2p->empty()) {
            sleep_proc(t, now, ProcCycle::kRecvBlocked);
            return true;
        }
        return false;
    };
    auto send_gate = [&] {
        if (h.p2s->full()) {
            sleep_proc(t, now, ProcCycle::kSendBlocked);
            return true;
        }
        return false;
    };

    switch (r.k) {
      case kConstPort:
        send_gate();
        return;
      case kSend:
        if (r.s0 == kPortOperand) {
            if (recv_gate())
                return;
        } else if (busy_gate(r.s0, PF_SKIP0)) {
            return;
        }
        send_gate();
        return;
      case kRecv:
        recv_gate();
        return;
      case kLoadArr:
      case kBranch:
        busy_gate(r.s0, PF_SKIP0);
        return;
      case kLoadSpill:
      case kPrint:
        if (r.s0 == kPortOperand)
            recv_gate();
        else
            busy_gate(r.s0, PF_SKIP0);
        return;
      case kStoreArr:
        if (busy_gate(r.s0, PF_SKIP0))
            return;
        if (r.s1 == kPortOperand)
            recv_gate();
        else
            busy_gate(r.s1, PF_SKIP1);
        return;
      case kStoreSpill:
        if (r.s0 == kPortOperand) {
            if (recv_gate())
                return;
        } else if (busy_gate(r.s0, PF_SKIP0)) {
            return;
        }
        if (r.s1 == kPortOperand)
            recv_gate();
        else
            busy_gate(r.s1, PF_SKIP1);
        return;
      case kDyn:
        if (busy_gate(r.s0, PF_SKIP0))
            return;
        if (r.op == Op::kDynStore)
            busy_gate(r.s1, PF_SKIP1);
        return;
      case kAluRR:
        if (busy_gate(r.s0, PF_SKIP0))
            return;
        busy_gate(r.s1, PF_SKIP1);
        return;
      case kAluGen: {
        // Mirror of H_AluGen: source gates in slot order (no fusion
        // flags there), then the port-destination back-pressure gate.
        for (int s = 0; s < r.ns; s++) {
            int reg = s == 0 ? r.s0 : r.s1;
            if (reg == kPortOperand) {
                if (recv_gate())
                    return;
            } else if (reg >= 0 && h.busy[reg] > nn) {
                sleep_proc(t, now, ProcCycle::kOperandWait);
                wheel.push({h.busy[reg], t});
                return;
            }
        }
        if (r.dst == kPortOperand)
            send_gate();
        return;
      }
      default: // kConstReg, kJump, kHaltP, kTrapP, kBadP: no gates
        return;
    }
}

// ====================================================================
// Switch step
// ====================================================================

ThreadedState::SwOutcome
ThreadedState::exec_srec(int t, int64_t now)
{
    const HotS &h = hs[t];
    Simulator::Sw &sw = *h.sw;
    const SRec &r = h.code[sw.pc];

    switch (r.k) {
      case kRoute1: {
        if (!r.src->can_pop(now))
            return {Simulator::SwExec::kInputWait, r.src};
        if (!r.out->can_push(now))
            return {Simulator::SwExec::kOutputBlocked, r.out};
        uint32_t v = r.src->pop(now);
        wake(r.wsrc);
        r.out->push(now, v);
        wake(r.wout);
        c_words++;
        h.prof->words_routed++;
        sw.pc++;
        c_sw_instrs++;
        prog_ = true;
        return {Simulator::SwExec::kRetired, nullptr};
      }

      case kRouteN: {
        // Atomic fire: every input present, every output has space.
        for (int32_t i = r.pb; i < r.pe; i++) {
            const SPair &pr = pairs[i];
            if (!pr.src->can_pop(now))
                return {Simulator::SwExec::kInputWait, pr.src};
            for (int32_t j = pr.ob; j < pr.oe; j++)
                if (!souts[j].f->can_push(now))
                    return {Simulator::SwExec::kOutputBlocked,
                            souts[j].f};
        }
        int pair = 0;
        for (int32_t i = r.pb; i < r.pe; i++) {
            const SPair &pr = pairs[i];
            uint32_t v = pr.src->pop(now);
            wake(pr.w);
            WordProv o{};
            if (S.checker_) {
                if (static_cast<Dir>(pr.in_dir) == Dir::kProc)
                    o = S.checker_->take_p2s(t, S.p2s_[t], now);
                else
                    o = S.checker_->take_link(
                        pr.nb,
                        static_cast<int>(
                            opposite(static_cast<Dir>(pr.in_dir))),
                        *pr.src, now);
                S.checker_->consume_switch(t, sw.pc, pair, o, v,
                                           now);
            }
            for (int32_t j = pr.ob; j < pr.oe; j++) {
                const SOut &ot = souts[j];
                ot.f->push(now, v);
                wake(ot.w);
                if (S.checker_) {
                    if (static_cast<Dir>(ot.dir) == Dir::kProc)
                        S.checker_->put_s2p(t, o, S.s2p_[t], now);
                    else
                        S.checker_->put_link(t, ot.dir, o, *ot.f,
                                             now);
                }
                c_words++;
                h.prof->words_routed++;
            }
            if (pr.reg_dst >= 0)
                sw.regs[pr.reg_dst] = v;
            pair++;
        }
        sw.pc++;
        c_sw_instrs++;
        prog_ = true;
        return {Simulator::SwExec::kRetired, nullptr};
      }

      case kSAluC:
        sw.regs[r.dst] = r.imm;
        sw.pc++;
        c_sw_instrs++;
        prog_ = true;
        return {Simulator::SwExec::kRetired, nullptr};

      case kSAluOp: {
        uint32_t a = r.a >= 0 ? sw.regs[r.a] : 0;
        uint32_t b = r.b >= 0 ? sw.regs[r.b] : 0;
        uint32_t out = 0;
        check(eval_op(r.op, a, b, out),
              "switch: unexecutable ALU opcode");
        sw.regs[r.dst] = out;
        sw.pc++;
        c_sw_instrs++;
        prog_ = true;
        return {Simulator::SwExec::kRetired, nullptr};
      }

      case kSBnez:
        sw.pc = sw.regs[r.cond] != 0 ? r.target : sw.pc + 1;
        c_sw_instrs++;
        prog_ = true;
        return {Simulator::SwExec::kRetired, nullptr};

      case kSJump:
        sw.pc = r.target;
        c_sw_instrs++;
        prog_ = true;
        return {Simulator::SwExec::kRetired, nullptr};

      case kSHalt:
        sw.halted = true;
        prog_ = true;
        s_state[t] = kHalted;
        mask_clr(s_mask, t);
        awake_sw--;
        live_sw--;
        return {Simulator::SwExec::kRetired, nullptr};

      case kSTrap:
        check(false, "switch ran off the end of its stream");
        break;
      default:
        check(false, "simulator: route reads off-mesh port");
        break;
    }
    return {Simulator::SwExec::kRetired, nullptr};
}

void
ThreadedState::step_sw(int t, int64_t now)
{
    const HotS &h = hs[t];
    Simulator::Sw &sw = *h.sw;
    flush_sw(t, now);

    // Injected route hold: time-gated, spins awake (next_wake covers).
    if (route_fault_on && S.sw_stall_until_[t] > now) {
        h.stalls[sw.pc]++;
        acct_sw(h.prof, t, now, SwitchCycle::kOutputBlocked);
        return;
    }
    int64_t pc0 = sw.pc;
    const SRec &r0 = h.code[pc0];
    if (r0.rflags & SF_RSTART)
        return region_sw(t, now);
    if (r0.k == kRoute1) {
        // Inline copy of the exec_srec kRoute1 arm — the hot case.
        // A kRoute1 retire never halts, so the dual-slot guard on
        // sw.halted is vacuous here.
        bool in_ok = r0.src->can_pop(now);
        if (in_ok && r0.out->can_push(now)) {
            uint32_t v = r0.src->pop(now);
            wake(r0.wsrc);
            r0.out->push(now, v);
            wake(r0.wout);
            c_words++;
            h.prof->words_routed++;
            sw.pc = pc0 + 1;
            c_sw_instrs++;
            prog_ = true;
            acct_sw(h.prof, t, now, SwitchCycle::kIssued);
            if (r0.dual)
                exec_srec(t, now); // second slot: stall is ignored
            if (route_fault_on) {
                int extra = S.route_stall_extra();
                if (extra > 0) {
                    S.sw_stall_until_[t] = now + 1 + extra;
                    return;
                }
            }
            if (s_state[t] == kAwake)
                peek_sw(h, t, now);
            return;
        }
        h.stalls[pc0]++;
        SwitchCycle cat = in_ok ? SwitchCycle::kOutputBlocked
                                : SwitchCycle::kInputWait;
        acct_sw(h.prof, t, now, cat);
        // Durable block at now+1: stamps never exceed now, so the
        // probe is a raw occupancy read (see Fifo::full).
        if (in_ok ? r0.out->full() : r0.src->empty())
            sleep_sw(t, now, cat, pc0);
        return;
    }
    SwOutcome res = exec_srec(t, now);
    if (res.res != Simulator::SwExec::kRetired) {
        h.stalls[pc0]++;
        bool input = res.res == Simulator::SwExec::kInputWait;
        SwitchCycle cat = input ? SwitchCycle::kInputWait
                                : SwitchCycle::kOutputBlocked;
        acct_sw(h.prof, t, now, cat);
        // Durable block: the counterparty has not acted this cycle,
        // so only its future push/pop (which wakes us) can unblock.
        if (input ? res.blocker->empty() : res.blocker->full())
            sleep_sw(t, now, cat, pc0);
        return;
    }
    acct_sw(h.prof, t, now, SwitchCycle::kIssued);
    if (h.code[pc0].dual && !sw.halted)
        exec_srec(t, now); // second slot: stall is ignored
    if (route_fault_on) {
        int extra = S.route_stall_extra();
        if (extra > 0) {
            S.sw_stall_until_[t] = now + 1 + extra;
            return; // held: spins awake until the hold expires
        }
    }
    if (s_state[t] == kAwake)
        peek_sw(h, t, now);
}

/**
 * Predictive sleep for switches: after a retire (and any dual-issue
 * companion) at @p now, probe the next record's route gates for cycle
 * now+1 in exec order.  A gate failing at now+1 is durable — every
 * FIFO the switch routes through is single-reader/single-writer, so
 * only a counterparty push/pop (which wakes this switch) can clear
 * it.  Non-route records never block and stay awake.  Held switches
 * (injected route stalls) spin so their per-cycle accounting and the
 * next_wake bound stay exact.
 */
void
ThreadedState::peek_sw(const HotS &h, int t, int64_t now)
{
    const Simulator::Sw &sw = *h.sw;
    const SRec &r = h.code[sw.pc];
    // All gates probe cycle now+1, where no FIFO can be stamped yet,
    // so can_pop/can_push reduce to raw occupancy (see Fifo::full).
    if (r.k == kRoute1) {
        if (r.src->empty())
            sleep_sw(t, now, SwitchCycle::kInputWait, sw.pc);
        else if (r.out->full())
            sleep_sw(t, now, SwitchCycle::kOutputBlocked, sw.pc);
        return;
    }
    if (r.k != kRouteN)
        return;
    for (int32_t i = r.pb; i < r.pe; i++) {
        const SPair &pr = pairs[i];
        if (pr.src->empty()) {
            sleep_sw(t, now, SwitchCycle::kInputWait, sw.pc);
            return;
        }
        for (int32_t j = pr.ob; j < pr.oe; j++)
            if (souts[j].f->full()) {
                sleep_sw(t, now, SwitchCycle::kOutputBlocked, sw.pc);
                return;
            }
    }
}

// ====================================================================
// Straight-line execution: sprint (solo) and region run-ahead
// ====================================================================

/**
 * Execute @p t's records in a tight loop, one instruction per cycle
 * in *local* time, while each record carries @p gate — PF_SPRINT for
 * the solo fast path (stop bounded by the next wheel event),
 * PF_REGION for fused region runs (stop = max_cycles; the caller
 * parks the unit as kAhead when it outruns global time).  Scoreboard
 * waits are accounted in one batched span; every issue is accounted
 * at its true cycle, so profiles stay exact in both modes.
 */
int64_t
ThreadedState::straight_run(int t, int64_t now, int64_t stop,
                            uint8_t gate, int64_t &last_progress)
{
    const HotP &h = hp[t];
    Simulator::Proc &p = *h.p;
    flush_proc(t, now);
    // One wall-budget poll per entry, not per instruction: the run is
    // bounded by @p stop, and the outer loop polls every cycle.
    S.poll_wall_deadline();
    const PRec *const recs = h.code;
    int64_t c = now;

    while (c < stop) {
        const PRec &r = recs[p.pc];
        if (!(r.flags & gate))
            break;
        // Scoreboard wait, batched.
        int64_t rdy = c;
        if (r.s0 >= 0 && !(r.flags & PF_SKIP0))
            rdy = std::max(rdy, h.busy[r.s0]);
        if (r.s1 >= 0 && !(r.flags & PF_SKIP1))
            rdy = std::max(rdy, h.busy[r.s1]);
        if (rdy > c) {
            int64_t span = std::min(rdy, stop) - c;
            S.account_proc_n(t, c, ProcCycle::kOperandWait, span);
            c_pstall += span;
            S.last_proc_cat_[t] = ProcCycle::kOperandWait;
            c += span;
            if (rdy > stop)
                break;
            continue;
        }
        switch (r.k) {
          case kConstReg:
            h.regs[r.dst] = r.imm;
            h.busy[r.dst] = c + 1;
            p.pc++;
            break;
          case kAluRR: {
            uint32_t a = r.s0 >= 0 ? h.regs[r.s0] : 0;
            uint32_t b = r.s1 >= 0 ? h.regs[r.s1] : 0;
            uint32_t out = 0;
            check(eval_op(r.op, a, b, out),
                  "processor: unexecutable opcode");
            h.regs[r.dst] = out;
            h.busy[r.dst] = c + r.lat;
            p.pc++;
            break;
          }
          case kLoadArr: {
            int64_t lat = r.lat + S.fault_extra();
            int64_t g =
                r.a + bits_int(r.s0 >= 0 ? h.regs[r.s0] : 0);
            check(S.mem_.home_of(g) == t,
                  "static load executed away from its home tile");
            h.regs[r.dst] = S.mem_.read_local(t, S.mem_.local_of(g));
            h.busy[r.dst] = c + lat;
            p.pc++;
            break;
          }
          case kLoadSpill: {
            int64_t lat = r.lat + S.fault_extra();
            h.regs[r.dst] =
                S.mem_.read_spill(t, static_cast<int64_t>(r.imm));
            h.busy[r.dst] = c + lat;
            p.pc++;
            break;
          }
          case kStoreArr: {
            uint32_t v = r.s1 >= 0 ? h.regs[r.s1] : 0;
            int64_t g =
                r.a + bits_int(r.s0 >= 0 ? h.regs[r.s0] : 0);
            check(S.mem_.home_of(g) == t,
                  "static store executed away from its home tile");
            S.mem_.write_local(t, S.mem_.local_of(g), v);
            p.pc++;
            break;
          }
          case kStoreSpill:
            S.mem_.write_spill(t, static_cast<int64_t>(r.imm),
                               r.s1 >= 0 ? h.regs[r.s1] : 0);
            p.pc++;
            break;
          case kPrint: {
            int seq = static_cast<int>(r.a);
            S.stats_.prints.push_back(
                {seq, S.print_count_[seq]++, r.type,
                 r.s0 >= 0 ? h.regs[r.s0] : 0});
            p.pc++;
            break;
          }
          case kJump:
            p.pc = r.a;
            break;
          case kBranch:
            p.pc = h.regs[r.s0] != 0 ? r.a : p.pc + 1;
            break;
          default:
            check(false, "threaded backend: unexpected sprint kind");
        }
        c_instrs++;
        acct_proc(h.prof, t, c, ProcCycle::kIssued);
        h.prof->issued[r.cls]++;
        last_progress = c;
        c++;
    }
    return c - now;
}

/**
 * Fused region dispatch for a processor whose pc carries PF_RSTART.
 * The run executes in local time up to max_cycles; if it got more
 * than one cycle ahead the unit parks as kAhead with a wheel entry
 * at its resume stamp, otherwise it behaved like a normal step and
 * peeks the next record exactly as retire() would.
 */
void
ThreadedState::region_proc(int t, int64_t now)
{
    const int32_t entry_pc = hp[t].p->pc;
    int64_t ignored = 0;
    int64_t adv =
        straight_run(t, now, region_stop, PF_REGION, ignored);
    c_regions++;
    c_region_cycles += adv;
    if (adv < kRegionMinGain && --p_credit[t][entry_pc] <= 0)
        pcode[t][entry_pc].flags &= ~PF_RSTART;
    // A region entry always advances local time (the entry record is
    // eligible and now < max_cycles), so this unit is not frozen.
    prog_ = true;
    if (adv <= 1) {
        peek_proc(hp[t], t, now);
        return;
    }
    p_state[t] = kAhead;
    mask_clr(p_mask, t);
    awake_procs--;
    p_resume[t] = now + adv;
    wheel.push({now + adv, t});
}

/** Switch flavor of straight_run: ALU/jump/bnez never stall, so the
    loop is gate-free one-instruction-per-cycle. */
int64_t
ThreadedState::region_sw_run(int t, int64_t now)
{
    const HotS &h = hs[t];
    Simulator::Sw &sw = *h.sw;
    flush_sw(t, now);
    S.poll_wall_deadline(); // once per entry; see straight_run
    const SRec *const recs = h.code;
    const int64_t stop = region_stop;
    int64_t c = now;

    while (c < stop) {
        const SRec &r = recs[sw.pc];
        if (!(r.rflags & SF_REGION))
            break;
        switch (r.k) {
          case kSAluC:
            sw.regs[r.dst] = r.imm;
            sw.pc++;
            break;
          case kSAluOp: {
            uint32_t a = r.a >= 0 ? sw.regs[r.a] : 0;
            uint32_t b = r.b >= 0 ? sw.regs[r.b] : 0;
            uint32_t out = 0;
            check(eval_op(r.op, a, b, out),
                  "switch: unexecutable ALU opcode");
            sw.regs[r.dst] = out;
            sw.pc++;
            break;
          }
          case kSBnez:
            sw.pc = sw.regs[r.cond] != 0 ? r.target : sw.pc + 1;
            break;
          case kSJump:
            sw.pc = r.target;
            break;
          default:
            check(false, "threaded backend: unexpected region kind");
        }
        c_sw_instrs++;
        acct_sw(h.prof, t, c, SwitchCycle::kIssued);
        c++;
    }
    return c - now;
}

void
ThreadedState::region_sw(int t, int64_t now)
{
    const int32_t entry_pc = hs[t].sw->pc;
    int64_t adv = region_sw_run(t, now);
    c_regions++;
    c_region_cycles += adv;
    if (adv < kRegionMinGain && --s_credit[t][entry_pc] <= 0)
        scode[t][entry_pc].rflags &= ~SF_RSTART;
    prog_ = true;
    if (adv <= 1) {
        if (s_state[t] == kAwake)
            peek_sw(hs[t], t, now);
        return;
    }
    s_state[t] = kAhead;
    mask_clr(s_mask, t);
    awake_sw--;
    s_resume[t] = now + adv;
    wheel.push({now + adv, n + t});
}

// ====================================================================
// Main loop
// ====================================================================

/**
 * Drain due wheel entries.  Index < n: a sleeping processor's
 * scoreboard deadline (stale entries are harmless — wake_proc only
 * wakes kAsleep).  Index >= n - and proc entries for kAhead units -
 * are resume stamps; the p_resume/s_resume guard discards stale
 * entries, which can only pop strictly before the live stamp.
 */
void
ThreadedState::pop_wheel(int64_t now)
{
    while (!wheel.empty() && wheel.top().first <= now) {
        const int64_t at = wheel.top().first;
        const int idx = wheel.top().second;
        wheel.pop();
        if (idx < n) {
            const int t = idx;
            if (p_state[t] == kAsleep) {
                wake_proc(t);
            } else if (p_state[t] == kAhead && at >= p_resume[t]) {
                p_state[t] = kAwake;
                mask_set(p_mask, t);
                awake_procs++;
            }
        } else {
            const int t = idx - n;
            if (s_state[t] == kAhead && at >= s_resume[t]) {
                s_state[t] = kAwake;
                mask_set(s_mask, t);
                awake_sw++;
            }
        }
    }
}

/**
 * Fold every pending batch into S before a deadlock report so the
 * diagnosis sees the frozen machine's true state.  Sleeping units
 * additionally pin their *stall category*: a unit that went to sleep
 * through a predictive peek never spun a cycle on the stall, so
 * last_proc/sw_cat_ would still read kIssued where the reference
 * (which spins every cycle) reports the blocking category — the one
 * divergence the deadlock-set parity test pins down.
 */
void
ThreadedState::prep_deadlock(int64_t now)
{
    for (int t = 0; t < n; t++) {
        if (p_sleep[t].begin >= 0) {
            const ProcCycle cat = p_sleep[t].cat;
            flush_proc(t, now);
            S.last_proc_cat_[t] = cat;
        }
        if (s_sleep[t].begin >= 0) {
            const SwitchCycle cat = s_sleep[t].cat;
            flush_sw(t, now);
            S.last_sw_cat_[t] = cat;
        }
    }
    flush_counters();
}

int64_t
ThreadedState::next_wake(int64_t now) const
{
    int64_t wake = wheel.empty() ? INT64_MAX : wheel.top().first;
    auto consider = [&](int64_t w) {
        if (w > now && w < wake)
            wake = w;
    };
    for (int t = -1; (t = mask_next(p_mask, t)) >= 0;) {
        const Simulator::Proc &p = S.procs_[t];
        if (p.waiting_dyn) {
            const Simulator::DynState &d = S.dyn_[t];
            if (p.inject.empty() && d.reply_ready)
                consider(d.reply_time);
            continue;
        }
        const PRec &r = hp[t].code[p.pc];
        if (r.s0 >= 0)
            consider(p.busy[r.s0]);
        if (r.s1 >= 0)
            consider(p.busy[r.s1]);
    }
    for (int t : S.active_dyn_) {
        const Simulator::DynState &d = S.dyn_[t];
        if (d.outbox_pos >= d.outbox.size() && !d.inbox.empty())
            consider(
                std::max(d.handler_free, d.inbox.front().arrival));
    }
    if (route_fault_on)
        for (int t = -1; (t = mask_next(s_mask, t)) >= 0;)
            consider(S.sw_stall_until_[t]);
    return wake;
}

void
ThreadedState::jump_forward(int64_t now, int64_t skip)
{
    // Awake units repeat their frozen stall verbatim (the reference
    // fast_forward); sleeping units are covered by their flush span.
    for (int t = -1; (t = mask_next(p_mask, t)) >= 0;) {
        c_pstall += skip;
        S.account_proc_n(t, now + 1, S.last_proc_cat_[t], skip);
    }
    for (int t = -1; (t = mask_next(s_mask, t)) >= 0;) {
        hs[t].stalls[S.switches_[t].pc] += skip;
        S.account_switch_n(t, now + 1, S.last_sw_cat_[t], skip);
    }
    for (int t : S.plane_blocked_)
        S.stats_.profile.tiles[t].dyn_net_blocked += skip;
}

SimResult
ThreadedState::run(int64_t max_cycles)
{
    int64_t now = 0;
    int64_t last_progress = 0;
    region_stop = max_cycles;
    // Stall window: identical to the reference computation.
    int64_t worst_penalty = S.faults_.penalty;
    if (S.faults_.route_stall_rate > 0.0)
        worst_penalty = std::max<int64_t>(
            worst_penalty, S.faults_.route_stall_cycles);
    if (S.faults_.dyn_delay_rate > 0.0)
        worst_penalty = std::max<int64_t>(worst_penalty,
                                          S.faults_.dyn_delay_cycles);
    const int64_t stall_limit = std::max<int64_t>(
        100000,
        static_cast<int64_t>(n) *
            (worst_penalty + S.prog_.machine.dyn_handler_cycles + 1) *
            1024);

    if (trace_) {
        S.stats_.profile.proc_spans.resize(n);
        S.stats_.profile.switch_spans.resize(n);
        for (int t = 0; t < n; t++) {
            S.stats_.profile.proc_spans[t].reserve(64);
            S.stats_.profile.switch_spans[t].reserve(64);
        }
    }

    while (live_procs > 0 || live_sw > 0 || !S.active_dyn_.empty()) {
        if (now >= max_cycles) {
            flush_counters();
            check(false, "simulator: cycle limit exceeded");
        }
        S.poll_wall_deadline();
        pop_wheel(now);

        // Solo fast path: one processor, empty network, no handlers.
        if (!jitter_on && awake_sw == 0 && awake_procs == 1 &&
            S.req_plane_.resident == 0 &&
            S.reply_plane_.resident == 0 && S.active_dyn_.empty()) {
            int solo = mask_next(p_mask, -1);
            if (!S.procs_[solo].waiting_dyn) {
                int64_t stop = wheel.empty()
                                   ? max_cycles
                                   : std::min(max_cycles,
                                              wheel.top().first);
                int64_t adv = straight_run(solo, now, stop,
                                           PF_SPRINT, last_progress);
                if (adv > 0) {
                    now += adv;
                    continue;
                }
            }
        }

        S.progress_ = false;
        prog_ = false;
        S.plane_blocked_.clear();

        // Fused per-tile scan: switch t, then processor t, ascending.
        // Relative order changes only across planes (processor t now
        // precedes switches u > t), which cannot change outcomes:
        // port FIFOs couple a processor only to its *own* switch
        // (still stepped first), link FIFOs couple switches (whose
        // mutual scan order is unchanged), same-cycle FIFO visibility
        // is order-independent by cycle stamping, every fault RNG
        // stream keeps its per-plane ascending draw order, and a wake
        // arriving behind a cursor defers the step to the next cycle
        // exactly as the two-phase scan did (the sleep span flushes
        // with the same category the skipped spin would have logged).
        {
            int ts = mask_next(s_mask, -1);
            int tp = mask_next(p_mask, -1);
            while (ts >= 0 || tp >= 0) {
                if (ts >= 0 && (tp < 0 || ts <= tp)) {
                    step_sw(ts, now);
                    ts = mask_next(s_mask, ts);
                } else {
                    step_proc(tp, now);
                    tp = mask_next(p_mask, tp);
                }
            }
        }
        if (S.req_plane_.resident > 0)
            S.step_plane(S.req_plane_, false, now);
        if (S.reply_plane_.resident > 0)
            S.step_plane(S.reply_plane_, true, now);
        for (size_t i = 0; i < S.active_dyn_.size();) {
            int t = S.active_dyn_[i];
            S.step_dyn(t, now);
            const Simulator::DynState &d = S.dyn_[t];
            if (d.inbox.empty() && d.outbox.empty()) {
                S.dyn_listed_[t] = 0;
                S.active_dyn_.erase(S.active_dyn_.begin() + i);
            } else {
                i++;
            }
        }

        if (prog_ || S.progress_) {
            last_progress = now;
        } else {
            if (now - last_progress > stall_limit) {
                prep_deadlock(now);
                S.report_deadlock(now, true, stall_limit);
            }
            if (!jitter_on) {
                int64_t wake_at = next_wake(now);
                if (wake_at == INT64_MAX) {
                    prep_deadlock(now);
                    S.report_deadlock(now, false, stall_limit);
                }
                int64_t skip = wake_at - now - 1;
                skip = std::min(skip,
                                last_progress + stall_limit - now);
                if (skip > 0) {
                    jump_forward(now, skip);
                    now += skip;
                }
            }
        }
        now++;
    }

    flush_counters();
    S.finish_run(now);
    return S.stats_;
}

// ====================================================================
// Simulator glue
// ====================================================================

void
ThreadedStateDeleter::operator()(ThreadedState *p) const
{
    delete p;
}

SimResult
Simulator::run_threaded(int64_t max_cycles)
{
    if (!th_) {
        th_.reset(new ThreadedState(*this));
        th_->decode();
    }
    return th_->run(max_cycles);
}

Simulator::~Simulator() = default;

} // namespace raw
