#include "sim/disasm.hpp"

#include <sstream>

namespace raw {

std::string
disasm_pinstr(const PInstr &in, const CompiledProgram &prog)
{
    std::ostringstream os;
    auto reg = [](int r) {
        if (r == kPortOperand)
            return std::string("port");
        return r < 0 ? std::string("_") : "r" + std::to_string(r);
    };
    switch (in.op) {
      case Op::kConst:
        os << reg(in.dst) << " = ";
        if (in.type == Type::kI32)
            os << bits_int(in.imm);
        else
            os << bits_float(in.imm) << "f";
        return os.str();
      case Op::kLoad:
      case Op::kDynLoad:
        if (in.array == kSpillArray)
            os << reg(in.dst) << " = spill[" << in.imm << "]";
        else
            os << reg(in.dst) << " = " << op_name(in.op) << " "
               << prog.arrays[in.array].name << "[" << reg(in.src[0])
               << "]";
        return os.str();
      case Op::kStore:
      case Op::kDynStore:
        if (in.array == kSpillArray)
            os << "spill[" << in.imm << "] = " << reg(in.src[1]);
        else
            os << op_name(in.op) << " " << prog.arrays[in.array].name
               << "[" << reg(in.src[0]) << "] = " << reg(in.src[1]);
        return os.str();
      case Op::kSend:
        os << "send " << (in.src[0] < 0 ? "0" : reg(in.src[0]));
        return os.str();
      case Op::kRecv:
        os << reg(in.dst) << " = recv()";
        return os.str();
      case Op::kJump:
        os << "jump " << in.target;
        return os.str();
      case Op::kBranch:
        os << "bnez " << reg(in.src[0]) << ", " << in.target;
        return os.str();
      case Op::kHalt:
        return "halt";
      case Op::kPrint:
        os << "print " << reg(in.src[0]) << " #" << in.print_seq;
        return os.str();
      default:
        break;
    }
    if (op_has_dst(in.op))
        os << reg(in.dst) << " = ";
    os << op_name(in.op);
    for (int s = 0; s < op_num_srcs(in.op); s++)
        os << (s == 0 ? " " : ", ") << reg(in.src[s]);
    return os.str();
}

std::string
disasm_sinstr(const SInstr &in)
{
    std::ostringstream os;
    switch (in.k) {
      case SInstr::K::kRoute: {
        os << "route";
        bool first = true;
        for (const RoutePair &r : in.routes) {
            os << (first ? " " : "; ");
            first = false;
            os << dir_name(r.in) << "->";
            for (int d = 0; d < kNumDirs; d++)
                if (r.out_mask & (1u << d))
                    os << dir_name(static_cast<Dir>(d));
            if (r.reg_dst >= 0)
                os << "$" << r.reg_dst;
        }
        return os.str();
      }
      case SInstr::K::kAlu:
        if (in.op == Op::kConst)
            os << "$" << in.dst << " = " << bits_int(in.imm);
        else {
            os << "$" << in.dst << " = " << op_name(in.op) << " $"
               << in.a;
            if (op_num_srcs(in.op) > 1)
                os << ", $" << in.b;
        }
        return os.str();
      case SInstr::K::kBnez:
        os << "bnez $" << in.cond << ", " << in.target;
        return os.str();
      case SInstr::K::kJump:
        os << "jump " << in.target;
        return os.str();
      case SInstr::K::kHalt:
        return "halt";
    }
    return "?";
}

std::string
disasm_program(const CompiledProgram &prog)
{
    std::ostringstream os;
    for (int t = 0; t < prog.machine.n_tiles; t++) {
        os << "=== tile " << t << " processor ("
           << prog.tiles[t].code.size() << " instrs) ===\n";
        for (size_t k = 0; k < prog.tiles[t].code.size(); k++)
            os << "  " << k << ": "
               << disasm_pinstr(prog.tiles[t].code[k], prog) << "\n";
        if (!prog.switches[t].code.empty()) {
            os << "=== tile " << t << " switch ("
               << prog.switches[t].code.size() << " instrs) ===\n";
            for (size_t k = 0; k < prog.switches[t].code.size(); k++)
                os << "  " << k << ": "
                   << disasm_sinstr(prog.switches[t].code[k]) << "\n";
        }
    }
    return os.str();
}

} // namespace raw
