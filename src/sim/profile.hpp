#ifndef RAW_SIM_PROFILE_HPP
#define RAW_SIM_PROFILE_HPP

/**
 * @file
 * Cycle-accurate profiling of a simulation run.
 *
 * The paper's evaluation (Tables 2-3, Figure 8) argues about *where
 * cycles go* — compute vs. send/receive occupancy vs. network stalls.
 * The simulator therefore attributes every cycle of every tile
 * processor and every switch to exactly one category; the categories
 * sum to the run's total cycle count on each tile (asserted in
 * tests/test_profile.cpp).
 *
 * Aggregate counters are always collected (cheap array increments).
 * When tracing is enabled (Simulator::set_trace_enabled) the per-cycle
 * category stream is additionally run-length encoded into spans, from
 * which chrome_trace_json() renders a Chrome trace-event file with one
 * track per tile processor and per switch (open in Perfetto or
 * chrome://tracing).  See docs/profiling.md.
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.hpp"

namespace raw {

/** What a tile processor did in one cycle (exactly one per cycle). */
enum class ProcCycle : uint8_t {
    kIssued = 0,   ///< retired an instruction
    kOperandWait,  ///< scoreboard stall on a busy register
    kSendBlocked,  ///< proc->switch port (or dyn inject) full
    kRecvBlocked,  ///< switch->proc port empty
    kMemWait,      ///< dynamic-network request in flight
    kIdle,         ///< halted
};
constexpr int kNumProcCycleCats = 6;
const char *proc_cycle_name(ProcCycle c);

/** What a switch did in one cycle (exactly one per cycle). */
enum class SwitchCycle : uint8_t {
    kIssued = 0,    ///< retired a ROUTE / ALU / branch
    kInputWait,     ///< ROUTE waiting for an input word
    kOutputBlocked, ///< ROUTE blocked on a full output port
    kIdle,          ///< halted
};
constexpr int kNumSwitchCycleCats = 4;
const char *switch_cycle_name(SwitchCycle c);

/** Coarse opcode classes for the per-tile issue histogram. */
enum class OpClass : uint8_t {
    kIntAlu = 0, ///< add/sub/logic/compare/move/const
    kIntMul,
    kIntDiv,
    kFp,      ///< all floating-point ops
    kLoad,    ///< static loads (incl. spill reloads)
    kStore,   ///< static stores (incl. spills)
    kDynMem,  ///< dynamic-network loads/stores
    kComm,    ///< send/recv
    kControl, ///< jump/branch/halt/print
};
constexpr int kNumOpClasses = 9;
OpClass op_class(Op op);
const char *op_class_name(OpClass c);

/** One run-length-encoded span of same-category cycles (tracing). */
struct TraceSpan
{
    int64_t begin = 0;
    int64_t end = 0; ///< exclusive
    uint8_t cat = 0; ///< ProcCycle or SwitchCycle value
};

/** All counters of one tile (processor + switch + dyn interface). */
struct TileProfile
{
    /** Cycles per ProcCycle category; sums to the run's cycles. */
    std::array<int64_t, kNumProcCycleCats> proc_cycles{};
    /** Cycles per SwitchCycle category; sums to the run's cycles. */
    std::array<int64_t, kNumSwitchCycleCats> switch_cycles{};
    /** Instructions retired per opcode class. */
    std::array<int64_t, kNumOpClasses> issued{};
    /** Stall cycles per static switch-instruction index. */
    std::vector<int64_t> route_stalls;
    /** Words this switch moved (all ROUTE outputs). */
    int64_t words_routed = 0;

    // Dynamic-network interface.
    int64_t dyn_requests_served = 0; ///< remote-memory handler services
    int64_t dyn_handler_busy = 0;    ///< cycles the handler was occupied
    int64_t dyn_queue_wait = 0;      ///< total inbox wait (cycles)
    int64_t dyn_max_queue = 0;       ///< peak inbox depth
    int64_t dyn_net_blocked = 0;     ///< word-cycles a worm sat blocked here

    int64_t proc_total() const;
    int64_t switch_total() const;
};

/** Whole-run profile carried inside SimResult. */
struct SimProfile
{
    std::vector<TileProfile> tiles;
    /** Per-tile RLE category streams; empty unless tracing enabled. */
    std::vector<std::vector<TraceSpan>> proc_spans;
    std::vector<std::vector<TraceSpan>> switch_spans;
    bool trace_enabled = false;
};

struct SimResult;

/**
 * Human-readable occupancy table: per-tile cycle breakdown, opcode
 * classes, dynamic-network counters, most-stalled ROUTEs, and (when
 * @p est_makespan >= 0) the event scheduler's estimated makespan
 * cross-checked against the measured cycle count.
 */
std::string format_profile(const SimResult &r,
                           int64_t est_makespan = -1);

/**
 * Chrome trace-event JSON (trace viewer / Perfetto): one complete
 * ("ph":"X") event per non-idle span, one track per tile processor
 * ("tileN.proc") and per switch ("tileN.switch").  Timestamps are in
 * simulated cycles (displayed as microseconds by the viewers).
 */
std::string chrome_trace_json(const SimProfile &p);

/** Write chrome_trace_json() to @p path; throws FatalError on I/O. */
void write_chrome_trace(const std::string &path, const SimProfile &p);

} // namespace raw

#endif // RAW_SIM_PROFILE_HPP
