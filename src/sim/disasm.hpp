#ifndef RAW_SIM_DISASM_HPP
#define RAW_SIM_DISASM_HPP

/**
 * @file
 * Disassembler for compiled Raw programs: renders each tile's
 * processor stream and each switch's route stream, used by the
 * quickstart example (the paper's Figure 6 walk-through) and by
 * debugging.
 */

#include <string>

#include "sim/isa.hpp"

namespace raw {

/** Render one processor instruction. */
std::string disasm_pinstr(const PInstr &in,
                          const CompiledProgram &prog);

/** Render one switch instruction. */
std::string disasm_sinstr(const SInstr &in);

/** Render the full program, tile by tile. */
std::string disasm_program(const CompiledProgram &prog);

} // namespace raw

#endif // RAW_SIM_DISASM_HPP
