#include "sim/simulator.hpp"

#include <sstream>

/**
 * @file
 * Exact deadlock diagnosis via a wait-for graph.
 *
 * When run() proves the machine frozen (no progress and no time-gated
 * wake pending) — or the stall-count backstop fires — this builds a
 * wait-for graph over the blocked units and reports the blocking
 * cycle: who waits on whom, at which pc, through which port.
 *
 * Nodes are processors, switches, and remote-memory handlers.  An
 * edge u -> v means "u cannot advance until v acts":
 *  - a processor blocked on an empty s2p port or a full p2s port
 *    waits on its own switch (the sole producer/consumer of those
 *    single-reader/single-writer FIFOs);
 *  - a ROUTE waits on whoever feeds each empty input (the local
 *    processor for p2s, the neighboring switch for a link) and on
 *    whoever drains each full output (AND-wait: the instruction fires
 *    only when every condition clears, so a cycle through *any*
 *    blocking edge is unresolvable);
 *  - a processor with an outstanding dynamic request waits on the
 *    home tile's handler.  Handler nodes have no outgoing edges: the
 *    dynamic network is deadlock-free (separate request/reply planes,
 *    dimension-ordered routing), so they can never close a cycle.
 * Time-gated stalls (scoreboard deadlines, injected route stalls)
 * get no edge — they clear by themselves and cannot deadlock.
 */

namespace raw {

namespace {

struct Edge
{
    int to;
    std::string why;
};

} // namespace

void
Simulator::report_deadlock(int64_t now, bool timeout,
                           int64_t stall_limit)
{
    const int n = prog_.machine.n_tiles;
    // Node ids: [0,n) processors, [n,2n) switches, [2n,3n) handlers.
    std::vector<std::vector<Edge>> g(3 * n);
    auto unit_name = [&](int v) {
        std::ostringstream os;
        if (v < n)
            os << "proc" << v << "@pc" << procs_[v].pc;
        else if (v < 2 * n)
            os << "sw" << (v - n) << "@pc" << switches_[v - n].pc;
        else
            os << "dyn" << (v - 2 * n);
        return os.str();
    };

    for (int t = 0; t < n; t++) {
        const Proc &p = procs_[t];
        if (p.halted)
            continue;
        if (p.waiting_dyn) {
            int home = p.dyn_home >= 0 ? p.dyn_home : t;
            if (p.inject_pos < p.inject.size())
                g[t].push_back({2 * n + home,
                                "request inject blocked (request-"
                                "plane backpressure)"});
            else
                g[t].push_back(
                    {2 * n + home, "awaits remote-memory reply"});
            continue;
        }
        const PInstr &in = prog_.tiles[t].code[p.pc];
        bool recv_blocked = !s2p_[t].can_pop(now);
        if (in.op == Op::kRecv && recv_blocked)
            g[t].push_back({n + t, "recv on empty s2p port"});
        for (int r : in.src)
            if (r == kPortOperand && recv_blocked) {
                g[t].push_back({n + t, "recv on empty s2p port"});
                break;
            }
        if ((in.op == Op::kSend || in.dst == kPortOperand) &&
            !p2s_[t].can_push(now))
            g[t].push_back({n + t, "send into full p2s port"});
    }
    for (int t = 0; t < n; t++) {
        const Sw &sw = switches_[t];
        if (sw.halted)
            continue;
        if (faults_.route_stall_rate > 0.0 &&
            sw_stall_until_[t] > now)
            continue; // injected hold: time-gated, clears itself
        const SInstr &in = prog_.switches[t].code[sw.pc];
        if (in.k != SInstr::K::kRoute)
            continue; // other switch opcodes always retire
        for (const RoutePair &r : in.routes) {
            Fifo &src = r.in == Dir::kProc ? p2s_[t]
                                           : in_link(t, r.in);
            if (!src.can_pop(now)) {
                if (r.in == Dir::kProc) {
                    g[n + t].push_back(
                        {t, "awaits word from its processor "
                            "(p2s empty)"});
                } else {
                    int nb = prog_.machine.neighbor(t, r.in);
                    g[n + t].push_back(
                        {n + nb, std::string("awaits word on its ") +
                                     dir_name(r.in) +
                                     " input link (empty)"});
                }
            }
            for (int d = 0; d < kNumDirs; d++) {
                if (!(r.out_mask & (1u << d)))
                    continue;
                Dir dir = static_cast<Dir>(d);
                Fifo &dst = dir == Dir::kProc ? s2p_[t]
                                              : out_link(t, dir);
                if (dst.can_push(now))
                    continue;
                if (dir == Dir::kProc) {
                    g[n + t].push_back(
                        {t, "s2p port full (processor must "
                            "consume)"});
                } else {
                    int nb = prog_.machine.neighbor(t, dir);
                    g[n + t].push_back(
                        {n + nb, std::string(dir_name(dir)) +
                                     " output link full (neighbor "
                                     "must drain)"});
                }
            }
        }
    }

    // DFS for any cycle; gray-stack membership pinpoints it.
    std::vector<int> state(3 * n, 0); // 0 white, 1 gray, 2 black
    std::vector<int> path;
    std::vector<const Edge *> via; // edge into path[i] (null at root)
    std::vector<std::pair<int, const Edge *>> cycle;
    struct Frame
    {
        int v;
        size_t ei;
    };
    for (int s = 0; s < 3 * n && cycle.empty(); s++) {
        if (state[s] != 0)
            continue;
        std::vector<Frame> st{{s, 0}};
        state[s] = 1;
        path.assign(1, s);
        via.assign(1, nullptr);
        while (!st.empty() && cycle.empty()) {
            Frame &f = st.back();
            if (f.ei < g[f.v].size()) {
                const Edge &e = g[f.v][f.ei++];
                if (state[e.to] == 0) {
                    state[e.to] = 1;
                    st.push_back({e.to, 0});
                    path.push_back(e.to);
                    via.push_back(&e);
                } else if (state[e.to] == 1) {
                    size_t k = 0;
                    while (path[k] != e.to)
                        k++;
                    for (; k < path.size(); k++)
                        cycle.push_back({path[k],
                                         k + 1 < path.size()
                                             ? via[k + 1]
                                             : &e});
                }
            } else {
                state[f.v] = 2;
                st.pop_back();
                path.pop_back();
                via.pop_back();
            }
        }
    }

    // The *set* part of the diagnosis (blocking cycle + frozen
    // per-unit state) depends only on the frozen machine state, so it
    // is identical across execution backends and exposed separately
    // through DeadlockError::deadlock_set(); only the cycle-bearing
    // prefix may differ (the threaded core proves the freeze earlier
    // — see docs/performance.md "Error-path divergence").
    std::ostringstream set;
    if (!cycle.empty()) {
        set << "blocking cycle: ";
        for (const auto &step : cycle)
            set << unit_name(step.first) << " -[" << step.second->why
                << "]-> ";
        set << unit_name(cycle.front().first);
    } else {
        set << "no wait-for cycle found"
            << (timeout ? " (livelock or perturbation-induced stall)"
                        : "");
    }
    set << "; units: ";
    for (int t = 0; t < n; t++) {
        if (!procs_[t].halted)
            set << "proc" << t << "@pc" << procs_[t].pc << "("
                << proc_cycle_name(last_proc_cat_[t]) << ") ";
        if (!switches_[t].halted)
            set << "sw" << t << "@pc" << switches_[t].pc << "("
                << switch_cycle_name(last_sw_cat_[t]) << ") ";
    }

    std::ostringstream os;
    if (timeout)
        os << "deadlock: no progress for " << stall_limit
           << " cycles at cycle " << now << "; ";
    else
        os << "deadlock (wait-for-graph) at cycle " << now
           << ": machine frozen with no pending wake; ";
    os << set.str();
    throw DeadlockError(os.str(), set.str());
}

} // namespace raw
