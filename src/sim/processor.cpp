#include "sim/simulator.hpp"

#include "ir/eval.hpp"

namespace raw {

void
Simulator::step_proc(int tile, int64_t now)
{
    Proc &p = procs_[tile];
    if (p.halted) {
        account_proc(tile, now, ProcCycle::kIdle);
        return;
    }

    // Clock-jitter channel: this tile loses its cycle entirely.
    if (jitter_hit()) {
        stats_.proc_stall_cycles++;
        account_proc(tile, now, ProcCycle::kOperandWait);
        return;
    }

    const std::vector<PInstr> &code = prog_.tiles[tile].code;
    check(p.pc >= 0 && p.pc < static_cast<int64_t>(code.size()),
          "processor ran off the end of its stream");
    const PInstr &in = code[p.pc];

    // Outstanding dynamic-network request: pump the remaining
    // request words into the network, then wait for the reply.
    if (p.waiting_dyn) {
        if (p.inject_pos < p.inject.size()) {
            Fifo &local = req_plane_.in_bufs[tile][4];
            if (local.can_push(now)) {
                local.push(now, p.inject[p.inject_pos++]);
                req_plane_.resident++;
                progress_ = true;
                if (p.inject_pos == p.inject.size()) {
                    p.inject.clear();
                    p.inject_pos = 0;
                }
                account_proc(tile, now, ProcCycle::kMemWait);
            } else {
                stats_.proc_stall_cycles++;
                account_proc(tile, now, ProcCycle::kSendBlocked);
            }
            return;
        }
        DynState &d = dyn_[tile];
        if (d.reply_ready && d.reply_time <= now) {
            if (in.op == Op::kDynLoad && in.dst >= 0) {
                p.regs[in.dst] = d.reply_value;
                p.busy[in.dst] = now + 1;
            }
            d.reply_ready = false;
            p.waiting_dyn = false;
            p.dyn_home = -1;
            p.pc++;
            stats_.instrs_executed++;
            progress_ = true;
            account_proc(tile, now, ProcCycle::kIssued);
            account_issue(tile, in.op);
        } else {
            stats_.proc_stall_cycles++;
            account_proc(tile, now, ProcCycle::kMemWait);
        }
        return;
    }

    auto ready = [&](int r) {
        if (r == kPortOperand)
            return s2p_[tile].can_pop(now);
        return r < 0 || p.busy[r] <= now;
    };
    // Read a source operand; a port operand consumes the word (only
    // call once per operand, after every readiness check passed).
    // @p slot distinguishes the two operand positions of one static
    // consumption point for the provenance checker.
    auto read_src = [&](int r, int slot) -> uint32_t {
        if (r == kPortOperand) {
            uint32_t v = s2p_[tile].pop(now);
            if (checker_) {
                WordProv o =
                    checker_->take_s2p(tile, s2p_[tile], now);
                checker_->consume_proc(tile, p.pc, slot, o, v, now);
            }
            return v;
        }
        return r >= 0 ? p.regs[r] : 0;
    };
    // Mirror a p2s push in the provenance shadow (origin = this pc).
    auto sent = [&] {
        if (checker_)
            checker_->send_p2s(tile, p.pc, p2s_[tile], now);
    };
    // Why is operand @p r not ready: empty input port or scoreboard?
    auto wait_cat = [&](int r) {
        return r == kPortOperand ? ProcCycle::kRecvBlocked
                                 : ProcCycle::kOperandWait;
    };
    auto stall = [&](ProcCycle c) {
        stats_.proc_stall_cycles++;
        account_proc(tile, now, c);
    };
    auto done = [&] {
        p.pc++;
        stats_.instrs_executed++;
        progress_ = true;
        account_proc(tile, now, ProcCycle::kIssued);
        account_issue(tile, in.op);
    };

    switch (in.op) {
      case Op::kConst:
        if (in.dst == kPortOperand) {
            if (!p2s_[tile].can_push(now))
                return stall(ProcCycle::kSendBlocked);
            p2s_[tile].push(now, in.imm);
            sent();
        } else {
            p.regs[in.dst] = in.imm;
            p.busy[in.dst] = now + 1;
        }
        done();
        return;

      case Op::kSend: {
        if (!ready(in.src[0]))
            return stall(wait_cat(in.src[0]));
        if (!p2s_[tile].can_push(now))
            return stall(ProcCycle::kSendBlocked);
        uint32_t v = in.src[0] >= 0 ? p.regs[in.src[0]] : 0;
        p2s_[tile].push(now, v);
        sent();
        done();
        return;
      }

      case Op::kRecv: {
        if (!s2p_[tile].can_pop(now))
            return stall(ProcCycle::kRecvBlocked);
        uint32_t v = s2p_[tile].pop(now);
        if (checker_) {
            WordProv o = checker_->take_s2p(tile, s2p_[tile], now);
            checker_->consume_proc(tile, p.pc, 0, o, v, now);
        }
        if (in.dst >= 0) {
            p.regs[in.dst] = v;
            p.busy[in.dst] = now + 1;
        }
        done();
        return;
      }

      case Op::kLoad: {
        if (!ready(in.src[0]))
            return stall(wait_cat(in.src[0]));
        int64_t lat = prog_.machine.latency(FuOp::kLoad) +
                      fault_extra();
        uint32_t v;
        if (in.array == kSpillArray) {
            v = mem_.read_spill(tile, static_cast<int64_t>(in.imm));
        } else {
            int64_t g = prog_.arrays[in.array].base +
                        bits_int(p.regs[in.src[0]]);
            check(mem_.home_of(g) == tile,
                  "static load executed away from its home tile");
            v = mem_.read_local(tile, mem_.local_of(g));
        }
        p.regs[in.dst] = v;
        p.busy[in.dst] = now + lat;
        done();
        return;
      }

      case Op::kStore: {
        if (!ready(in.src[0]))
            return stall(wait_cat(in.src[0]));
        if (!ready(in.src[1]))
            return stall(wait_cat(in.src[1]));
        uint32_t v = read_src(in.src[1], 1);
        if (in.array == kSpillArray) {
            mem_.write_spill(tile, static_cast<int64_t>(in.imm), v);
        } else {
            int64_t g = prog_.arrays[in.array].base +
                        bits_int(p.regs[in.src[0]]);
            check(mem_.home_of(g) == tile,
                  "static store executed away from its home tile");
            mem_.write_local(tile, mem_.local_of(g), v);
        }
        done();
        return;
      }

      case Op::kDynLoad:
      case Op::kDynStore: {
        bool is_store = in.op == Op::kDynStore;
        if (!ready(in.src[0]))
            return stall(wait_cat(in.src[0]));
        if (is_store && !ready(in.src[1]))
            return stall(wait_cat(in.src[1]));
        int64_t g = prog_.arrays[in.array].base +
                    bits_int(p.regs[in.src[0]]);
        int home = mem_.home_of(g);
        if (home == tile) {
            // Run-time check found the data local after all.
            if (is_store) {
                mem_.write_local(tile, mem_.local_of(g),
                                 p.regs[in.src[1]]);
            } else {
                p.regs[in.dst] =
                    mem_.read_local(tile, mem_.local_of(g));
                p.busy[in.dst] = now + 1 +
                                 prog_.machine.latency(FuOp::kLoad) +
                                 fault_extra();
            }
            done();
            return;
        }
        // Compose the request worm; the pump above injects it one
        // word per cycle starting next cycle.
        uint32_t addr_word = int_bits(static_cast<int32_t>(g));
        if (is_store)
            p.inject = {dyn_header(home, tile, 2, DynKind::kStoreReq),
                        addr_word, p.regs[in.src[1]]};
        else
            p.inject = {dyn_header(home, tile, 1, DynKind::kLoadReq),
                        addr_word};
        p.inject_pos = 0;
        stats_.dyn_messages++;
        p.waiting_dyn = true;
        p.dyn_home = home;
        progress_ = true;
        account_proc(tile, now, ProcCycle::kMemWait);
        return;
      }

      case Op::kPrint: {
        if (!ready(in.src[0]))
            return stall(wait_cat(in.src[0]));
        stats_.prints.push_back({in.print_seq,
                                 print_count_[in.print_seq]++,
                                 in.type, read_src(in.src[0], 0)});
        done();
        return;
      }

      case Op::kJump:
        p.pc = in.target;
        stats_.instrs_executed++;
        progress_ = true;
        account_proc(tile, now, ProcCycle::kIssued);
        account_issue(tile, in.op);
        return;

      case Op::kBranch: {
        if (!ready(in.src[0]))
            return stall(wait_cat(in.src[0]));
        p.pc = p.regs[in.src[0]] != 0 ? in.target : p.pc + 1;
        stats_.instrs_executed++;
        progress_ = true;
        account_proc(tile, now, ProcCycle::kIssued);
        account_issue(tile, in.op);
        return;
      }

      case Op::kHalt:
        p.halted = true;
        progress_ = true;
        account_proc(tile, now, ProcCycle::kIssued);
        account_issue(tile, in.op);
        return;

      default: {
        // Computational instruction; sources and destination may be
        // port operands (Section 3.1's port-as-register model).
        for (int s = 0; s < op_num_srcs(in.op); s++)
            if (!ready(in.src[s]))
                return stall(wait_cat(in.src[s]));
        if (in.dst == kPortOperand && !p2s_[tile].can_push(now))
            return stall(ProcCycle::kSendBlocked);
        uint32_t a =
            op_num_srcs(in.op) > 0 ? read_src(in.src[0], 0) : 0;
        uint32_t b =
            op_num_srcs(in.op) > 1 ? read_src(in.src[1], 1) : 0;
        uint32_t out = 0;
        check(eval_op(in.op, a, b, out),
              "processor: unexecutable opcode");
        if (in.dst == kPortOperand) {
            p2s_[tile].push(now, out);
            sent();
        } else {
            p.regs[in.dst] = out;
            p.busy[in.dst] =
                now + prog_.machine.latency(op_fu(in.op));
        }
        done();
        return;
      }
    }
}

} // namespace raw
