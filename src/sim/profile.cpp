#include "sim/profile.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "sim/simulator.hpp"

namespace raw {

const char *
proc_cycle_name(ProcCycle c)
{
    switch (c) {
      case ProcCycle::kIssued: return "issued";
      case ProcCycle::kOperandWait: return "operand-wait";
      case ProcCycle::kSendBlocked: return "send-blocked";
      case ProcCycle::kRecvBlocked: return "recv-blocked";
      case ProcCycle::kMemWait: return "mem-wait";
      case ProcCycle::kIdle: return "idle";
    }
    return "?";
}

const char *
switch_cycle_name(SwitchCycle c)
{
    switch (c) {
      case SwitchCycle::kIssued: return "issued";
      case SwitchCycle::kInputWait: return "input-wait";
      case SwitchCycle::kOutputBlocked: return "output-blocked";
      case SwitchCycle::kIdle: return "idle";
    }
    return "?";
}

OpClass
op_class(Op op)
{
    switch (op) {
      case Op::kMul:
        return OpClass::kIntMul;
      case Op::kDiv:
      case Op::kRem:
        return OpClass::kIntDiv;
      case Op::kFAdd: case Op::kFSub: case Op::kFMul: case Op::kFDiv:
      case Op::kFNeg: case Op::kFSqrt:
      case Op::kFCmpEq: case Op::kFCmpNe: case Op::kFCmpLt:
      case Op::kFCmpLe: case Op::kFCmpGt: case Op::kFCmpGe:
      case Op::kItoF: case Op::kFtoI:
        return OpClass::kFp;
      case Op::kLoad:
        return OpClass::kLoad;
      case Op::kStore:
        return OpClass::kStore;
      case Op::kDynLoad:
      case Op::kDynStore:
        return OpClass::kDynMem;
      case Op::kSend:
      case Op::kRecv:
        return OpClass::kComm;
      case Op::kPrint:
      case Op::kJump:
      case Op::kBranch:
      case Op::kHalt:
        return OpClass::kControl;
      default:
        return OpClass::kIntAlu;
    }
}

const char *
op_class_name(OpClass c)
{
    switch (c) {
      case OpClass::kIntAlu: return "int-alu";
      case OpClass::kIntMul: return "int-mul";
      case OpClass::kIntDiv: return "int-div";
      case OpClass::kFp: return "fp";
      case OpClass::kLoad: return "load";
      case OpClass::kStore: return "store";
      case OpClass::kDynMem: return "dyn-mem";
      case OpClass::kComm: return "comm";
      case OpClass::kControl: return "control";
    }
    return "?";
}

int64_t
TileProfile::proc_total() const
{
    return std::accumulate(proc_cycles.begin(), proc_cycles.end(),
                           int64_t{0});
}

int64_t
TileProfile::switch_total() const
{
    return std::accumulate(switch_cycles.begin(), switch_cycles.end(),
                           int64_t{0});
}

std::string
format_profile(const SimResult &r, int64_t est_makespan)
{
    const SimProfile &p = r.profile;
    const int n = static_cast<int>(p.tiles.size());
    std::ostringstream os;
    os << "== profile: " << n << " tile" << (n == 1 ? "" : "s") << ", "
       << r.cycles << " cycles ==\n";

    os << "processor occupancy (cycles):\n";
    os << std::setw(5) << "tile";
    for (int c = 0; c < kNumProcCycleCats; c++)
        os << std::setw(13)
           << proc_cycle_name(static_cast<ProcCycle>(c));
    os << "\n";
    for (int t = 0; t < n; t++) {
        os << std::setw(5) << t;
        for (int64_t v : p.tiles[t].proc_cycles)
            os << std::setw(13) << v;
        os << "\n";
    }

    os << "switch occupancy (cycles):\n";
    os << std::setw(5) << "tile";
    for (int c = 0; c < kNumSwitchCycleCats; c++)
        os << std::setw(15)
           << switch_cycle_name(static_cast<SwitchCycle>(c));
    os << std::setw(15) << "words-routed" << "\n";
    for (int t = 0; t < n; t++) {
        os << std::setw(5) << t;
        for (int64_t v : p.tiles[t].switch_cycles)
            os << std::setw(15) << v;
        os << std::setw(15) << p.tiles[t].words_routed << "\n";
    }

    os << "issue histogram (instructions per opcode class):\n";
    os << std::setw(5) << "tile";
    for (int c = 0; c < kNumOpClasses; c++)
        os << std::setw(9) << op_class_name(static_cast<OpClass>(c));
    os << "\n";
    for (int t = 0; t < n; t++) {
        os << std::setw(5) << t;
        for (int64_t v : p.tiles[t].issued)
            os << std::setw(9) << v;
        os << "\n";
    }

    // Dynamic network: only rows that saw traffic.
    bool any_dyn = false;
    for (const TileProfile &tp : p.tiles)
        any_dyn = any_dyn || tp.dyn_requests_served > 0 ||
                  tp.dyn_net_blocked > 0;
    if (any_dyn) {
        os << "dynamic network (remote-memory handlers):\n";
        os << std::setw(5) << "tile" << std::setw(10) << "served"
           << std::setw(14) << "busy-cycles" << std::setw(13)
           << "queue-wait" << std::setw(12) << "max-queue"
           << std::setw(13) << "net-blocked" << "\n";
        for (int t = 0; t < n; t++) {
            const TileProfile &tp = p.tiles[t];
            if (tp.dyn_requests_served == 0 && tp.dyn_net_blocked == 0)
                continue;
            os << std::setw(5) << t << std::setw(10)
               << tp.dyn_requests_served << std::setw(14)
               << tp.dyn_handler_busy << std::setw(13)
               << tp.dyn_queue_wait << std::setw(12)
               << tp.dyn_max_queue << std::setw(13)
               << tp.dyn_net_blocked << "\n";
        }
    }

    // The most contended static ROUTEs (top 5 across all switches).
    struct RouteStall
    {
        int tile;
        size_t pc;
        int64_t stalls;
    };
    std::vector<RouteStall> worst;
    for (int t = 0; t < n; t++)
        for (size_t pc = 0; pc < p.tiles[t].route_stalls.size(); pc++)
            if (p.tiles[t].route_stalls[pc] > 0)
                worst.push_back({t, pc, p.tiles[t].route_stalls[pc]});
    std::sort(worst.begin(), worst.end(),
              [](const RouteStall &a, const RouteStall &b) {
                  return a.stalls > b.stalls;
              });
    if (!worst.empty()) {
        os << "most-stalled switch instructions:\n";
        for (size_t i = 0; i < worst.size() && i < 5; i++)
            os << "  sw" << worst[i].tile << "@pc" << worst[i].pc
               << ": " << worst[i].stalls << " stall cycles\n";
    }

    if (est_makespan >= 0 && r.cycles > 0) {
        // The static schedule covers each block once; looping
        // programs execute blocks many times, so this is a
        // cross-check of the cost model only for straight-line code.
        os << "scheduler estimate: " << est_makespan
           << " cycles for one pass over every block; measured total "
           << r.cycles << "\n";
    }
    return os.str();
}

namespace {

void
emit_track(std::ostringstream &os, const std::vector<TraceSpan> &spans,
           bool is_switch, int tile, bool &first)
{
    const int tid = tile * 2 + (is_switch ? 1 : 0);
    for (const TraceSpan &s : spans) {
        const char *name =
            is_switch
                ? switch_cycle_name(static_cast<SwitchCycle>(s.cat))
                : proc_cycle_name(static_cast<ProcCycle>(s.cat));
        bool idle = is_switch ? s.cat == static_cast<uint8_t>(
                                             SwitchCycle::kIdle)
                              : s.cat == static_cast<uint8_t>(
                                             ProcCycle::kIdle);
        if (idle)
            continue; // gaps read as idle in the viewer
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"ts\":"
           << s.begin << ",\"dur\":" << (s.end - s.begin)
           << ",\"pid\":0,\"tid\":" << tid << "}";
    }
}

} // namespace

std::string
chrome_trace_json(const SimProfile &p)
{
    check(p.trace_enabled,
          "chrome_trace_json: run the simulator with tracing enabled");
    std::ostringstream os;
    os << "[\n";
    bool first = true;
    const int n = static_cast<int>(p.tiles.size());
    for (int t = 0; t < n; t++) {
        for (int sw = 0; sw < 2; sw++) {
            if (!first)
                os << ",\n";
            first = false;
            os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
               << "\"tid\":" << (t * 2 + sw) << ",\"args\":{\"name\":"
               << "\"tile" << t << (sw ? ".switch" : ".proc")
               << "\"}}";
        }
    }
    for (int t = 0; t < n; t++) {
        if (t < static_cast<int>(p.proc_spans.size()))
            emit_track(os, p.proc_spans[t], false, t, first);
        if (t < static_cast<int>(p.switch_spans.size()))
            emit_track(os, p.switch_spans[t], true, t, first);
    }
    os << "\n]\n";
    return os.str();
}

void
write_chrome_trace(const std::string &path, const SimProfile &p)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output: " + path);
    out << chrome_trace_json(p);
    if (!out)
        fatal("error writing trace output: " + path);
}

} // namespace raw
