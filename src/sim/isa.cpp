#include "sim/isa.hpp"

namespace raw {

int
CompiledProgram::find_array(const std::string &name) const
{
    for (size_t i = 0; i < arrays.size(); i++)
        if (arrays[i].name == name)
            return static_cast<int>(i);
    return -1;
}

int64_t
CompiledProgram::static_instrs() const
{
    int64_t n = 0;
    for (const TileProgram &t : tiles)
        n += static_cast<int64_t>(t.code.size());
    for (const SwitchProgram &s : switches)
        n += static_cast<int64_t>(s.code.size());
    return n;
}

} // namespace raw
