#include "sim/memory.hpp"

namespace raw {

MemorySystem::MemorySystem(int n_tiles, int64_t total_words,
                           const std::vector<int> &spill_slots)
    : n_tiles_(n_tiles)
{
    check(n_tiles >= 1, "memory: bad tile count");
    shared_words_ = (total_words + n_tiles - 1) / n_tiles;
    mem_.resize(n_tiles);
    for (int t = 0; t < n_tiles; t++) {
        int64_t spill =
            t < static_cast<int>(spill_slots.size()) ? spill_slots[t]
                                                     : 0;
        mem_[t].assign(shared_words_ + spill, 0);
    }
}

uint32_t
MemorySystem::read_global(int64_t g) const
{
    return read_local(home_of(g), local_of(g));
}

void
MemorySystem::write_global(int64_t g, uint32_t v)
{
    write_local(home_of(g), local_of(g), v);
}

uint32_t
MemorySystem::read_local(int tile, int64_t local) const
{
    check(tile >= 0 && tile < n_tiles_, "memory: bad tile");
    check(local >= 0 && local < shared_words_,
          "memory: shared access out of range");
    return mem_[tile][local];
}

void
MemorySystem::write_local(int tile, int64_t local, uint32_t v)
{
    check(tile >= 0 && tile < n_tiles_, "memory: bad tile");
    check(local >= 0 && local < shared_words_,
          "memory: shared access out of range");
    mem_[tile][local] = v;
}

uint32_t
MemorySystem::read_spill(int tile, int64_t slot) const
{
    check(slot >= 0 &&
              shared_words_ + slot <
                  static_cast<int64_t>(mem_[tile].size()),
          "memory: spill slot out of range");
    return mem_[tile][shared_words_ + slot];
}

void
MemorySystem::write_spill(int tile, int64_t slot, uint32_t v)
{
    check(slot >= 0 &&
              shared_words_ + slot <
                  static_cast<int64_t>(mem_[tile].size()),
          "memory: spill slot out of range");
    mem_[tile][shared_words_ + slot] = v;
}

} // namespace raw
