#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>

namespace raw {

namespace {

/** Append n cycles of category @p cat to an RLE span stream. */
void
extend_spans(std::vector<TraceSpan> &spans, int64_t begin, uint8_t cat,
             int64_t n)
{
    if (!spans.empty() && spans.back().cat == cat &&
        spans.back().end == begin)
        spans.back().end = begin + n;
    else
        spans.push_back({begin, begin + n, cat});
}

} // namespace

std::string
SimResult::print_text() const
{
    std::ostringstream os;
    for (const PrintRecord &p : prints) {
        if (p.type == Type::kI32)
            os << bits_int(p.bits) << "\n";
        else
            os << bits_float(p.bits) << "\n";
    }
    return os.str();
}

SimBackend
sim_backend_from_string(const std::string &name)
{
    if (name == "reference")
        return SimBackend::kReference;
    if (name == "threaded")
        return SimBackend::kThreaded;
    if (name == "region")
        return SimBackend::kRegion;
    fatal("unknown simulator backend: " + name +
          " (expected reference, threaded or region)");
}

const char *
sim_backend_name(SimBackend b)
{
    switch (b) {
    case SimBackend::kThreaded: return "threaded";
    case SimBackend::kRegion: return "region";
    default: return "reference";
    }
}

Simulator::Simulator(const CompiledProgram &prog, FaultConfig faults,
                     CheckConfig checks, SimBackend backend)
    : prog_(prog),
      mem_(prog.machine.n_tiles, prog.total_words, prog.spill_slots),
      faults_(faults), rng_(faults.seed * 0x9E3779B97F4A7C15ULL + 1),
      route_rng_((faults.seed ^ 0x526F757465ULL) *
                     0x9E3779B97F4A7C15ULL +
                 1),
      dyn_rng_((faults.seed ^ 0x44796E4E6574ULL) *
                   0x9E3779B97F4A7C15ULL +
               1),
      jitter_rng_((faults.seed ^ 0x4A697474ULL) *
                      0x9E3779B97F4A7C15ULL +
                  1),
      backend_(backend)
{
    if (checks.enabled())
        checker_ = std::make_unique<RuntimeChecker>(
            prog.machine.n_tiles, checks);
    const int n = prog_.machine.n_tiles;
    check(static_cast<int>(prog_.tiles.size()) == n &&
              static_cast<int>(prog_.switches.size()) == n,
          "simulator: program does not match machine size");
    procs_.resize(n);
    switches_.resize(n);
    dyn_.resize(n);
    for (int t = 0; t < n; t++) {
        // Size register files by what the program actually touches so
        // inf-reg configurations stay cheap to simulate.
        int max_reg = prog_.machine.num_registers;
        if (max_reg > 256) {
            int used = 31;
            for (const PInstr &in : prog_.tiles[t].code) {
                used = std::max(used, in.dst);
                used = std::max(used, in.src[0]);
                used = std::max(used, in.src[1]);
            }
            max_reg = used + 1;
        }
        procs_[t].regs.assign(max_reg, 0);
        procs_[t].busy.assign(max_reg, 0);
        switches_[t].regs.assign(prog_.machine.num_switch_registers, 0);
        if (prog_.tiles[t].code.empty())
            procs_[t].halted = true;
        if (prog_.switches[t].code.empty())
            switches_[t].halted = true;
    }
    // Size the trace-ordering counters by the largest print tag in
    // the program (hand-assembled programs may not set num_prints).
    int max_seq = prog_.num_prints - 1;
    for (const TileProgram &t : prog_.tiles)
        for (const PInstr &in : t.code)
            max_seq = std::max(max_seq, in.print_seq);
    print_count_.assign(max_seq + 2, 0);
    p2s_.assign(n, Fifo());
    s2p_.assign(n, Fifo());
    links_.assign(n, std::vector<Fifo>(4, Fifo()));
    req_plane_.init(n);
    reply_plane_.init(n);
    stats_.profile.tiles.resize(n);
    for (int t = 0; t < n; t++)
        stats_.profile.tiles[t].route_stalls.assign(
            prog_.switches[t].code.size(), 0);
    last_proc_cat_.assign(n, ProcCycle::kIdle);
    last_sw_cat_.assign(n, SwitchCycle::kIdle);
    sw_stall_until_.assign(n, 0);
    dyn_listed_.assign(n, 0);
    for (int t = 0; t < n; t++) {
        if (!procs_[t].halted)
            active_procs_.push_back(t);
        if (!switches_[t].halted)
            active_sw_.push_back(t);
    }
}

void
Simulator::account_proc(int tile, int64_t now, ProcCycle c)
{
    stats_.profile.tiles[tile].proc_cycles[static_cast<int>(c)]++;
    last_proc_cat_[tile] = c;
    if (stats_.profile.trace_enabled)
        extend_spans(stats_.profile.proc_spans[tile], now,
                     static_cast<uint8_t>(c), 1);
}

void
Simulator::account_switch(int tile, int64_t now, SwitchCycle c)
{
    stats_.profile.tiles[tile].switch_cycles[static_cast<int>(c)]++;
    last_sw_cat_[tile] = c;
    if (stats_.profile.trace_enabled)
        extend_spans(stats_.profile.switch_spans[tile], now,
                     static_cast<uint8_t>(c), 1);
}

void
Simulator::account_proc_n(int tile, int64_t begin, ProcCycle c,
                          int64_t n)
{
    stats_.profile.tiles[tile].proc_cycles[static_cast<int>(c)] += n;
    if (stats_.profile.trace_enabled)
        extend_spans(stats_.profile.proc_spans[tile], begin,
                     static_cast<uint8_t>(c), n);
}

void
Simulator::account_switch_n(int tile, int64_t begin, SwitchCycle c,
                            int64_t n)
{
    stats_.profile.tiles[tile].switch_cycles[static_cast<int>(c)] += n;
    if (stats_.profile.trace_enabled)
        extend_spans(stats_.profile.switch_spans[tile], begin,
                     static_cast<uint8_t>(c), n);
}

void
Simulator::account_issue(int tile, Op op)
{
    stats_.profile.tiles[tile]
        .issued[static_cast<int>(op_class(op))]++;
}

void
Simulator::wake_dyn(int tile)
{
    if (dyn_listed_[tile])
        return;
    dyn_listed_[tile] = 1;
    // Sorted insert: step order must stay ascending (see run()).
    active_dyn_.insert(std::lower_bound(active_dyn_.begin(),
                                        active_dyn_.end(), tile),
                       tile);
}

Fifo &
Simulator::out_link(int tile, Dir d)
{
    return links_[tile][static_cast<int>(d)];
}

Fifo &
Simulator::in_link(int tile, Dir d)
{
    int nb = prog_.machine.neighbor(tile, d);
    check(nb >= 0, "simulator: route reads off-mesh port");
    return links_[nb][static_cast<int>(opposite(d))];
}

namespace {

/**
 * One xorshift64* draw from channel stream @p s: @p extra cycles with
 * probability @p rate, else 0.  Every fault channel uses this exact
 * draw so the legacy memory-miss sequence (pinned by tests/goldens)
 * is unchanged.
 */
inline int
draw_fault(uint64_t &s, double rate, int extra)
{
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    uint64_t r = s * 0x2545F4914F6CDD1DULL;
    double u = static_cast<double>(r >> 11) / 9007199254740992.0;
    return u < rate ? extra : 0;
}

} // namespace

int
Simulator::fault_extra()
{
    if (faults_.miss_rate <= 0.0)
        return 0;
    return draw_fault(rng_, faults_.miss_rate, faults_.penalty);
}

int
Simulator::dyn_delay_extra()
{
    if (faults_.dyn_delay_rate <= 0.0)
        return 0;
    return draw_fault(dyn_rng_, faults_.dyn_delay_rate,
                      faults_.dyn_delay_cycles);
}

int
Simulator::route_stall_extra()
{
    // Drawn only when a switch retires, so frozen cycles stay
    // draw-free and the quiescence fast-forward remains sound.
    if (faults_.route_stall_rate <= 0.0)
        return 0;
    return draw_fault(route_rng_, faults_.route_stall_rate,
                      faults_.route_stall_cycles);
}

bool
Simulator::jitter_hit()
{
    // Redrawn every cycle for every live processor; run() disables
    // fast-forward and exact deadlock detection when this channel is
    // on because a frozen cycle is no longer draw-free.
    if (faults_.jitter_rate <= 0.0)
        return false;
    return draw_fault(jitter_rng_, faults_.jitter_rate, 1) != 0;
}

int64_t
Simulator::next_wake(int64_t now) const
{
    int64_t wake = INT64_MAX;
    auto consider = [&](int64_t t) {
        if (t > now && t < wake)
            wake = t;
    };
    for (int t : active_procs_) {
        const Proc &p = procs_[t];
        if (p.waiting_dyn) {
            // Pending inject words wait on FIFO space (not time);
            // a posted reply matures at a known cycle.
            const DynState &d = dyn_[t];
            if (p.inject.empty() && d.reply_ready)
                consider(d.reply_time);
            continue;
        }
        const PInstr &in = prog_.tiles[t].code[p.pc];
        for (int r : in.src)
            if (r >= 0)
                consider(p.busy[r]);
    }
    for (int t : active_dyn_) {
        const DynState &d = dyn_[t];
        if (d.outbox_pos >= d.outbox.size() && !d.inbox.empty())
            // A delayed message matures at its arrival time even when
            // the handler is already free.
            consider(std::max(d.handler_free, d.inbox.front().arrival));
    }
    if (faults_.route_stall_rate > 0.0)
        for (int t : active_sw_)
            consider(sw_stall_until_[t]);
    return wake;
}

void
Simulator::fast_forward(int64_t now, int64_t skip)
{
    // Every live unit repeats the frozen cycle's stall verbatim, so
    // replay its per-cycle counters in one batch.  (A frozen cycle
    // has no pushes/pops, no retires, no RNG draws — the only state
    // that advances is `now` itself.)
    for (int t : active_procs_) {
        stats_.proc_stall_cycles += skip;
        account_proc_n(t, now + 1, last_proc_cat_[t], skip);
    }
    for (int t : active_sw_) {
        stats_.profile.tiles[t].route_stalls[switches_[t].pc] += skip;
        account_switch_n(t, now + 1, last_sw_cat_[t], skip);
    }
    for (int t : plane_blocked_)
        stats_.profile.tiles[t].dyn_net_blocked += skip;
}

void
Simulator::finish_run(int64_t now)
{
    const int n = prog_.machine.n_tiles;
    stats_.cycles = now;
    // Tiles whose processor/switch left the worklist stopped
    // accounting; backfill the tail so the per-category sums still
    // total the run's cycle count on every tile.
    for (int t = 0; t < n; t++) {
        TileProfile &tp = stats_.profile.tiles[t];
        int64_t idle = now - tp.proc_total();
        if (idle > 0)
            account_proc_n(t, now - idle, ProcCycle::kIdle, idle);
        idle = now - tp.switch_total();
        if (idle > 0)
            account_switch_n(t, now - idle, SwitchCycle::kIdle, idle);
    }
    // Program order across loop iterations: iteration-k prints come
    // before iteration-k+1 prints, program points break ties.
    std::sort(stats_.prints.begin(), stats_.prints.end(),
              [](const PrintRecord &a, const PrintRecord &b) {
                  if (a.occurrence != b.occurrence)
                      return a.occurrence < b.occurrence;
                  return a.seq < b.seq;
              });
    if (checker_) {
        stats_.check_failure_count = checker_->failure_count();
        stats_.prov_hash = checker_->provenance_hash();
        stats_.check_failures = checker_->take_failures();
    }
}

void
Simulator::arm_wall_deadline()
{
    using clock = std::chrono::steady_clock;
    wall_armed_ = false;
    wall_poll_count_ = 0;
    clock::time_point dl{};
    if (wall_budget_ms_ > 0)
        dl = clock::now() + std::chrono::milliseconds(wall_budget_ms_);
    if (wall_deadline_override_ != clock::time_point{} &&
        (dl == clock::time_point{} || wall_deadline_override_ < dl))
        dl = wall_deadline_override_;
    if (dl != clock::time_point{}) {
        wall_deadline_ = dl;
        wall_armed_ = true;
    }
}

void
Simulator::wall_timeout() const
{
    throw SimTimeoutError(
        "simulator: wall-clock budget exceeded" +
        (wall_budget_ms_ > 0
             ? " (" + std::to_string(wall_budget_ms_) + " ms)"
             : std::string()));
}

void
Simulator::check_wall_deadline()
{
    if (std::chrono::steady_clock::now() >= wall_deadline_)
        wall_timeout();
}

SimResult
Simulator::run(int64_t max_cycles)
{
    arm_wall_deadline();
    if (backend_ != SimBackend::kReference)
        return run_threaded(max_cycles); // threaded + region cores
    const int n = prog_.machine.n_tiles;
    int64_t now = 0;
    int64_t last_progress = 0;
    // A global stall is only deadlock once every tile has had time to
    // drain its worst-case injected latency; scale the window with
    // the machine size and the worst enabled fault penalty so large
    // fault-injected runs are not misreported as deadlock.
    int64_t worst_penalty = faults_.penalty;
    if (faults_.route_stall_rate > 0.0)
        worst_penalty = std::max<int64_t>(worst_penalty,
                                          faults_.route_stall_cycles);
    if (faults_.dyn_delay_rate > 0.0)
        worst_penalty = std::max<int64_t>(worst_penalty,
                                          faults_.dyn_delay_cycles);
    const int64_t stall_limit = std::max<int64_t>(
        100000,
        static_cast<int64_t>(n) *
            (worst_penalty + prog_.machine.dyn_handler_cycles + 1) *
            1024);

    if (stats_.profile.trace_enabled) {
        stats_.profile.proc_spans.resize(n);
        stats_.profile.switch_spans.resize(n);
        for (int t = 0; t < n; t++) {
            stats_.profile.proc_spans[t].reserve(64);
            stats_.profile.switch_spans[t].reserve(64);
        }
    }

    while (!active_procs_.empty() || !active_sw_.empty() ||
           !active_dyn_.empty()) {
        check(now < max_cycles, "simulator: cycle limit exceeded");
        poll_wall_deadline();
        progress_ = false;
        plane_blocked_.clear();

        // Worklists stay in ascending tile order (ordered erase, not
        // swap-remove): the fault-injection RNG is one global stream,
        // so the cross-tile order of memory accesses within a cycle
        // must match the original 0..n-1 sweep bit for bit.
        for (size_t i = 0; i < active_sw_.size();) {
            int t = active_sw_[i];
            step_switch(t, now);
            if (switches_[t].halted)
                active_sw_.erase(active_sw_.begin() + i);
            else
                i++;
        }
        for (size_t i = 0; i < active_procs_.size();) {
            int t = active_procs_[i];
            step_proc(t, now);
            if (procs_[t].halted)
                active_procs_.erase(active_procs_.begin() + i);
            else
                i++;
        }
        if (req_plane_.resident > 0)
            step_plane(req_plane_, false, now);
        if (reply_plane_.resident > 0)
            step_plane(reply_plane_, true, now);
        for (size_t i = 0; i < active_dyn_.size();) {
            int t = active_dyn_[i];
            step_dyn(t, now);
            const DynState &d = dyn_[t];
            if (d.inbox.empty() && d.outbox.empty()) {
                dyn_listed_[t] = 0;
                active_dyn_.erase(active_dyn_.begin() + i);
            } else {
                i++;
            }
        }

        if (progress_) {
            last_progress = now;
        } else {
            if (now - last_progress > stall_limit)
                // Timeout backstop: covers stalls the exact detector
                // cannot prove frozen (e.g. under clock jitter, which
                // redraws each cycle).
                report_deadlock(now, true, stall_limit);
            // With clock jitter a stalled cycle still draws RNG, so
            // the frozen-state reasoning below does not apply: a
            // jitter-stalled processor may retry next cycle, and a
            // skip would replay draws it never made.
            if (faults_.jitter_rate <= 0.0) {
                int64_t wake = next_wake(now);
                if (wake == INT64_MAX)
                    // Zero progress and nothing time-gated: the
                    // machine state is a provable fixed point.  Every
                    // transition needs a push/pop/retire (which would
                    // have set progress_) or a timed deadline (which
                    // next_wake covers), so this is certain deadlock —
                    // diagnose it now instead of spinning to timeout.
                    report_deadlock(now, false, stall_limit);
                // Quiescence fast-forward: with zero progress this
                // cycle the machine state is frozen, so every cycle
                // up to the earliest time-gated wake replays
                // identically — jump there, batching the identical
                // per-cycle accounting.  Capped so the deadlock
                // window above still fires at the exact cycle the
                // unoptimized loop would have.
                int64_t skip = wake - now - 1;
                skip = std::min(skip,
                                last_progress + stall_limit - now);
                if (skip > 0) {
                    fast_forward(now, skip);
                    now += skip;
                }
            }
        }
        now++;
    }

    finish_run(now);
    return stats_;
}

std::vector<uint32_t>
Simulator::read_array(const std::string &name) const
{
    int a = prog_.find_array(name);
    check(a >= 0, "simulator: unknown array " + name);
    const ArrayLayout &al = prog_.arrays[a];
    std::vector<uint32_t> out(al.size);
    for (int64_t i = 0; i < al.size; i++)
        out[i] = mem_.read_global(al.base + i);
    return out;
}

} // namespace raw
