#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>

namespace raw {

std::string
SimResult::print_text() const
{
    std::ostringstream os;
    for (const PrintRecord &p : prints) {
        if (p.type == Type::kI32)
            os << bits_int(p.bits) << "\n";
        else
            os << bits_float(p.bits) << "\n";
    }
    return os.str();
}

Simulator::Simulator(const CompiledProgram &prog, FaultConfig faults)
    : prog_(prog),
      mem_(prog.machine.n_tiles, prog.total_words, prog.spill_slots),
      faults_(faults), rng_(faults.seed * 0x9E3779B97F4A7C15ULL + 1)
{
    const int n = prog_.machine.n_tiles;
    check(static_cast<int>(prog_.tiles.size()) == n &&
              static_cast<int>(prog_.switches.size()) == n,
          "simulator: program does not match machine size");
    procs_.resize(n);
    switches_.resize(n);
    dyn_.resize(n);
    for (int t = 0; t < n; t++) {
        // Size register files by what the program actually touches so
        // inf-reg configurations stay cheap to simulate.
        int max_reg = prog_.machine.num_registers;
        if (max_reg > 256) {
            int used = 31;
            for (const PInstr &in : prog_.tiles[t].code) {
                used = std::max(used, in.dst);
                used = std::max(used, in.src[0]);
                used = std::max(used, in.src[1]);
            }
            max_reg = used + 1;
        }
        procs_[t].regs.assign(max_reg, 0);
        procs_[t].busy.assign(max_reg, 0);
        switches_[t].regs.assign(prog_.machine.num_switch_registers, 0);
        if (prog_.tiles[t].code.empty())
            procs_[t].halted = true;
        if (prog_.switches[t].code.empty())
            switches_[t].halted = true;
    }
    // Size the trace-ordering counters by the largest print tag in
    // the program (hand-assembled programs may not set num_prints).
    int max_seq = prog_.num_prints - 1;
    for (const TileProgram &t : prog_.tiles)
        for (const PInstr &in : t.code)
            max_seq = std::max(max_seq, in.print_seq);
    print_count_.assign(max_seq + 2, 0);
    p2s_.assign(n, Fifo());
    s2p_.assign(n, Fifo());
    links_.assign(n, std::vector<Fifo>(4, Fifo()));
    req_plane_.init(n);
    reply_plane_.init(n);
    stats_.profile.tiles.resize(n);
    stats_.profile.proc_spans.resize(n);
    stats_.profile.switch_spans.resize(n);
    for (int t = 0; t < n; t++)
        stats_.profile.tiles[t].route_stalls.assign(
            prog_.switches[t].code.size(), 0);
    last_proc_cat_.assign(n, ProcCycle::kIdle);
    last_sw_cat_.assign(n, SwitchCycle::kIdle);
}

void
Simulator::account_proc(int tile, int64_t now, ProcCycle c)
{
    TileProfile &tp = stats_.profile.tiles[tile];
    tp.proc_cycles[static_cast<int>(c)]++;
    last_proc_cat_[tile] = c;
    if (stats_.profile.trace_enabled) {
        std::vector<TraceSpan> &spans = stats_.profile.proc_spans[tile];
        if (!spans.empty() &&
            spans.back().cat == static_cast<uint8_t>(c) &&
            spans.back().end == now)
            spans.back().end = now + 1;
        else
            spans.push_back({now, now + 1, static_cast<uint8_t>(c)});
    }
}

void
Simulator::account_switch(int tile, int64_t now, SwitchCycle c)
{
    TileProfile &tp = stats_.profile.tiles[tile];
    tp.switch_cycles[static_cast<int>(c)]++;
    last_sw_cat_[tile] = c;
    if (stats_.profile.trace_enabled) {
        std::vector<TraceSpan> &spans =
            stats_.profile.switch_spans[tile];
        if (!spans.empty() &&
            spans.back().cat == static_cast<uint8_t>(c) &&
            spans.back().end == now)
            spans.back().end = now + 1;
        else
            spans.push_back({now, now + 1, static_cast<uint8_t>(c)});
    }
}

void
Simulator::account_issue(int tile, Op op)
{
    stats_.profile.tiles[tile]
        .issued[static_cast<int>(op_class(op))]++;
}

Fifo &
Simulator::out_link(int tile, Dir d)
{
    return links_[tile][static_cast<int>(d)];
}

Fifo &
Simulator::in_link(int tile, Dir d)
{
    int nb = prog_.machine.neighbor(tile, d);
    check(nb >= 0, "simulator: route reads off-mesh port");
    return links_[nb][static_cast<int>(opposite(d))];
}

int
Simulator::fault_extra()
{
    if (faults_.miss_rate <= 0.0)
        return 0;
    // xorshift64* deterministic stream.
    rng_ ^= rng_ >> 12;
    rng_ ^= rng_ << 25;
    rng_ ^= rng_ >> 27;
    uint64_t r = rng_ * 0x2545F4914F6CDD1DULL;
    double u = static_cast<double>(r >> 11) / 9007199254740992.0;
    return u < faults_.miss_rate ? faults_.penalty : 0;
}

SimResult
Simulator::run(int64_t max_cycles)
{
    const int n = prog_.machine.n_tiles;
    int64_t now = 0;
    int64_t last_progress = 0;
    // A global stall is only deadlock once every tile has had time to
    // drain its worst-case memory latency; scale the window with the
    // machine size and the injected fault penalty so large
    // fault-injected runs are not misreported as deadlock.
    const int64_t stall_limit = std::max<int64_t>(
        100000,
        static_cast<int64_t>(n) *
            (static_cast<int64_t>(faults_.penalty) +
             prog_.machine.dyn_handler_cycles + 1) *
            1024);

    auto all_done = [&] {
        for (int t = 0; t < n; t++) {
            if (!procs_[t].halted || !switches_[t].halted)
                return false;
            if (!dyn_[t].inbox.empty() || !dyn_[t].outbox.empty())
                return false;
        }
        return true;
    };

    while (!all_done()) {
        check(now < max_cycles, "simulator: cycle limit exceeded");
        progress_ = false;

        for (Fifo &f : p2s_)
            f.begin_cycle();
        for (Fifo &f : s2p_)
            f.begin_cycle();
        for (auto &v : links_)
            for (Fifo &f : v)
                f.begin_cycle();
        req_plane_.begin_cycle();
        reply_plane_.begin_cycle();

        for (int t = 0; t < n; t++)
            step_switch(t, now);
        for (int t = 0; t < n; t++)
            step_proc(t, now);
        step_plane(req_plane_, false, now);
        step_plane(reply_plane_, true, now);
        for (int t = 0; t < n; t++)
            step_dyn(t, now);

        if (progress_)
            last_progress = now;
        if (now - last_progress > stall_limit) {
            std::ostringstream os;
            os << "deadlock: no progress for " << stall_limit
               << " cycles at cycle " << now << "; ";
            for (int t = 0; t < n; t++) {
                if (!procs_[t].halted)
                    os << "proc" << t << "@pc" << procs_[t].pc << "("
                       << proc_cycle_name(last_proc_cat_[t]) << ") ";
                if (!switches_[t].halted)
                    os << "sw" << t << "@pc" << switches_[t].pc << "("
                       << switch_cycle_name(last_sw_cat_[t]) << ") ";
            }
            throw DeadlockError(os.str());
        }
        now++;
    }

    stats_.cycles = now;
    // Program order across loop iterations: iteration-k prints come
    // before iteration-k+1 prints, program points break ties.
    std::sort(stats_.prints.begin(), stats_.prints.end(),
              [](const PrintRecord &a, const PrintRecord &b) {
                  if (a.occurrence != b.occurrence)
                      return a.occurrence < b.occurrence;
                  return a.seq < b.seq;
              });
    return stats_;
}

std::vector<uint32_t>
Simulator::read_array(const std::string &name) const
{
    int a = prog_.find_array(name);
    check(a >= 0, "simulator: unknown array " + name);
    const ArrayLayout &al = prog_.arrays[a];
    std::vector<uint32_t> out(al.size);
    for (int64_t i = 0; i < al.size; i++)
        out[i] = mem_.read_global(al.base + i);
    return out;
}

} // namespace raw
