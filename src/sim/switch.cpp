#include "sim/simulator.hpp"

#include "ir/eval.hpp"

namespace raw {

namespace {

/** May these two opcodes dual-issue (one ALU + one ROUTE)? */
bool
dual_issue_pair(SInstr::K a, SInstr::K b)
{
    return (a == SInstr::K::kAlu && b == SInstr::K::kRoute) ||
           (a == SInstr::K::kRoute && b == SInstr::K::kAlu);
}

} // namespace

void
Simulator::step_switch(int tile, int64_t now)
{
    Sw &sw = switches_[tile];
    if (sw.halted) {
        account_switch(tile, now, SwitchCycle::kIdle);
        return;
    }
    // Route-stall channel: extra occupancy injected after the last
    // retire holds the switch (time-gated; next_wake() covers it).
    if (faults_.route_stall_rate > 0.0 &&
        sw_stall_until_[tile] > now) {
        stats_.profile.tiles[tile].route_stalls[sw.pc]++;
        account_switch(tile, now, SwitchCycle::kOutputBlocked);
        return;
    }
    const std::vector<SInstr> &code = prog_.switches[tile].code;
    SInstr::K first = code[sw.pc].k;
    int64_t pc0 = sw.pc;
    SwExec res = exec_switch_instr(tile, now);
    if (res != SwExec::kRetired) {
        stats_.profile.tiles[tile].route_stalls[pc0]++;
        account_switch(tile, now,
                       res == SwExec::kInputWait
                           ? SwitchCycle::kInputWait
                           : SwitchCycle::kOutputBlocked);
        return;
    }
    account_switch(tile, now, SwitchCycle::kIssued);
    // Dual issue: one ALU and one ROUTE may retire together.
    if (prog_.machine.switch_dual_issue && !sw.halted &&
        sw.pc < static_cast<int64_t>(code.size()) &&
        dual_issue_pair(first, code[sw.pc].k))
        exec_switch_instr(tile, now);
    // One draw per retiring cycle; frozen cycles never draw.
    int extra = route_stall_extra();
    if (extra > 0)
        sw_stall_until_[tile] = now + 1 + extra;
}

Simulator::SwExec
Simulator::exec_switch_instr(int tile, int64_t now)
{
    Sw &sw = switches_[tile];
    const std::vector<SInstr> &code = prog_.switches[tile].code;
    check(sw.pc >= 0 && sw.pc < static_cast<int64_t>(code.size()),
          "switch ran off the end of its stream");
    const SInstr &in = code[sw.pc];

    switch (in.k) {
      case SInstr::K::kRoute: {
        // Blocking semantics: the whole ROUTE fires or stalls.
        for (const RoutePair &r : in.routes) {
            Fifo &src = r.in == Dir::kProc ? p2s_[tile]
                                           : in_link(tile, r.in);
            if (!src.can_pop(now))
                return SwExec::kInputWait;
            for (int d = 0; d < kNumDirs; d++) {
                if (!(r.out_mask & (1u << d)))
                    continue;
                Dir dir = static_cast<Dir>(d);
                Fifo &dst = dir == Dir::kProc ? s2p_[tile]
                                              : out_link(tile, dir);
                if (!dst.can_push(now))
                    return SwExec::kOutputBlocked;
            }
        }
        int pair = 0;
        for (const RoutePair &r : in.routes) {
            Fifo &src = r.in == Dir::kProc ? p2s_[tile]
                                           : in_link(tile, r.in);
            uint32_t v = src.pop(now);
            WordProv o{};
            if (checker_) {
                // The shadow of in_link(tile, d) is keyed by its
                // owning tile: links_[nb][opposite(d)].
                if (r.in == Dir::kProc) {
                    o = checker_->take_p2s(tile, p2s_[tile], now);
                } else {
                    int nb = prog_.machine.neighbor(tile, r.in);
                    o = checker_->take_link(
                        nb, static_cast<int>(opposite(r.in)),
                        in_link(tile, r.in), now);
                }
                checker_->consume_switch(tile, sw.pc, pair, o, v,
                                         now);
            }
            for (int d = 0; d < kNumDirs; d++) {
                if (!(r.out_mask & (1u << d)))
                    continue;
                Dir dir = static_cast<Dir>(d);
                Fifo &dst = dir == Dir::kProc ? s2p_[tile]
                                              : out_link(tile, dir);
                dst.push(now, v);
                if (checker_) {
                    if (dir == Dir::kProc)
                        checker_->put_s2p(tile, o, s2p_[tile], now);
                    else
                        checker_->put_link(tile, d, o,
                                           out_link(tile, dir), now);
                }
                stats_.words_routed++;
                stats_.profile.tiles[tile].words_routed++;
            }
            if (r.reg_dst >= 0)
                sw.regs[r.reg_dst] = v;
            pair++;
        }
        sw.pc++;
        stats_.switch_instrs_executed++;
        progress_ = true;
        return SwExec::kRetired;
      }

      case SInstr::K::kAlu: {
        uint32_t out = 0;
        if (in.op == Op::kConst) {
            out = in.imm;
        } else {
            uint32_t a = in.a >= 0 ? sw.regs[in.a] : 0;
            uint32_t b = in.b >= 0 ? sw.regs[in.b] : 0;
            check(eval_op(in.op, a, b, out),
                  "switch: unexecutable ALU opcode");
        }
        sw.regs[in.dst] = out;
        sw.pc++;
        stats_.switch_instrs_executed++;
        progress_ = true;
        return SwExec::kRetired;
      }

      case SInstr::K::kBnez:
        sw.pc = sw.regs[in.cond] != 0 ? in.target : sw.pc + 1;
        stats_.switch_instrs_executed++;
        progress_ = true;
        return SwExec::kRetired;

      case SInstr::K::kJump:
        sw.pc = in.target;
        stats_.switch_instrs_executed++;
        progress_ = true;
        return SwExec::kRetired;

      case SInstr::K::kHalt:
        sw.halted = true;
        progress_ = true;
        return SwExec::kRetired;
    }
    return SwExec::kRetired;
}

} // namespace raw
