/**
 * @file
 * Program-wide analysis for the region compiler (see region.hpp for
 * the formation rules and the transparency argument).
 */

#include "sim/region.hpp"

#include "sim/isa.hpp"

namespace raw {

RegionAnalysis
analyze_regions(const CompiledProgram &prog)
{
    RegionAnalysis ra;
    ra.dyn_array.assign(prog.arrays.size(), 0);
    ra.shared_seq.assign(
        prog.num_prints > 0 ? static_cast<size_t>(prog.num_prints) : 0,
        0);
    std::vector<uint8_t> seen_seq(ra.shared_seq.size(), 0);
    for (const TileProgram &tp : prog.tiles) {
        for (const PInstr &pi : tp.code) {
            if ((pi.op == Op::kDynLoad || pi.op == Op::kDynStore) &&
                pi.array >= 0 &&
                pi.array < static_cast<int>(ra.dyn_array.size()))
                ra.dyn_array[pi.array] = 1;
            if (pi.op == Op::kPrint && pi.print_seq >= 0 &&
                pi.print_seq < static_cast<int>(seen_seq.size())) {
                if (seen_seq[pi.print_seq])
                    ra.shared_seq[pi.print_seq] = 1;
                seen_seq[pi.print_seq] = 1;
            }
        }
    }
    return ra;
}

std::vector<int32_t>
region_run_lengths(const std::vector<uint8_t> &eligible)
{
    std::vector<int32_t> run(eligible.size(), 0);
    for (size_t i = eligible.size(); i-- > 0;)
        if (eligible[i])
            run[i] = 1 + (i + 1 < eligible.size() ? run[i + 1] : 0);
    return run;
}

} // namespace raw
