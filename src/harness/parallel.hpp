#ifndef RAW_HARNESS_PARALLEL_HPP
#define RAW_HARNESS_PARALLEL_HPP

/**
 * @file
 * Thread-pool fan-out for (benchmark × machine size × options) runs.
 *
 * Each job owns its whole pipeline — parse, compile, Simulator, fault
 * RNG — so nothing is shared between workers and results are
 * bit-identical at any thread count.  Jobs are claimed from an atomic
 * counter and write into caller-indexed slots, so output order never
 * depends on scheduling.
 *
 * The pool is exception-safe: a job that throws (FatalError,
 * PanicError, anything derived from std::exception) fails only its
 * own slot; sibling jobs always run to completion and the workers
 * always join, at any thread count including the inline path.
 */

#include <functional>
#include <string>
#include <vector>

namespace raw {

/**
 * Worker count implied by a `--jobs` value: values >= 1 are taken
 * verbatim, 0 (or negative) means one worker per hardware core.
 */
int resolve_jobs(int jobs);

/**
 * Run @p job for every index in [0, n_jobs) using up to @p n_threads
 * worker threads (clamped to n_jobs; n_threads <= 1 runs inline).
 * Blocks until every job finished.  If any job threw, the first
 * captured exception (by job index) is rethrown afterwards.
 */
void run_parallel(int n_jobs, int n_threads,
                  const std::function<void(int)> &job);

/**
 * Like run_parallel, but never throws for job failures: returns one
 * string per job slot — empty on success, the captured exception
 * message on failure.  Campaign drivers use this to aggregate
 * per-point failures instead of aborting the sweep.
 */
std::vector<std::string>
run_parallel_collect(int n_jobs, int n_threads,
                     const std::function<void(int)> &job);

} // namespace raw

#endif // RAW_HARNESS_PARALLEL_HPP
