#ifndef RAW_HARNESS_HARNESS_HPP
#define RAW_HARNESS_HARNESS_HPP

/**
 * @file
 * Experiment harness shared by tests, examples and benches: compile
 * and simulate a program under RAWCC or the sequential baseline,
 * verify bit-exact equivalence of results, and compute speedups
 * (Section 6 methodology: RAWCC cycles vs. Machsuif-style sequential
 * cycles on one tile).
 */

#include <string>

#include "baseline/baseline.hpp"
#include "programs/programs.hpp"
#include "rawcc/compiler.hpp"
#include "sim/simulator.hpp"

namespace raw {

/** One compile+simulate outcome. */
struct RunResult
{
    int64_t cycles = 0;
    SimResult sim;
    CompileStats stats;
    /** Named-array contents for verification. */
    std::vector<uint32_t> check_words;
    std::string prints;
};

/** Compile with RAWCC for @p machine and simulate. */
RunResult run_rawcc(const std::string &source,
                    const MachineConfig &machine,
                    const std::string &check_array = "",
                    const CompilerOptions &opts = {},
                    const FaultConfig &faults = {},
                    const CheckConfig &checks = {},
                    SimBackend backend = SimBackend::kReference);

/**
 * Differential backend check: simulate @p prog under the reference
 * and the threaded execution cores with identical fault/check
 * configuration and require bit-identical observable results —
 * cycle count, every aggregate counter, the full print trace, the
 * provenance hash, the per-tile cycle-attribution profile, and the
 * final contents of every named array.  Throws FatalError naming the
 * first divergent field otherwise.  Returns the (identical) result.
 */
SimResult diff_sim_backends(const CompiledProgram &prog,
                            const FaultConfig &faults = {},
                            const CheckConfig &checks = {},
                            bool trace = false);

/**
 * Profile-guided run: like run_rawcc with opts.pgo, but the
 * first-pass placement feedback (and whether it actually helped) is
 * cached per (program, machine, scheduler flags) — a sweep repeating
 * the same configuration pays the extra profiling compile+simulate
 * once, mirroring cached_baseline.  Thread-safe.
 */
RunResult run_rawcc_pgo(const std::string &source,
                        const MachineConfig &machine,
                        const std::string &check_array = "",
                        const CompilerOptions &opts = {},
                        const FaultConfig &faults = {},
                        const CheckConfig &checks = {});

/** Compile sequentially (one tile) and simulate. */
RunResult run_baseline(const std::string &source,
                       const std::string &check_array = "",
                       const FaultConfig &faults = {});

/**
 * Baseline run of @p prog, cached by benchmark name: the sequential
 * baseline depends on neither machine size nor fault config, so a
 * sweep over machine sizes (or fault points) compiles and simulates
 * it once.  Thread-safe; the returned reference stays valid for the
 * life of the process.
 */
const RunResult &cached_baseline(const BenchmarkProgram &prog);

/**
 * Run @p prog under the baseline and under RAWCC on @p machine and
 * require bit-identical results (check array and print trace).
 * Returns the speedup; throws FatalError on mismatch.
 */
double verified_speedup(const BenchmarkProgram &prog,
                        const MachineConfig &machine,
                        const CompilerOptions &opts = {},
                        const FaultConfig &faults = {});

/**
 * Canonical text summary of one simulation for the golden
 * determinism suite: cycle count, aggregate counters, per-category
 * profile sums, issue histogram and the full print trace.  Written by
 * tools/golden_gen.cpp and replayed byte-for-byte by
 * tests/test_golden_determinism.cpp.
 */
std::string golden_summary(const std::string &bench, int tiles,
                           const FaultConfig &faults,
                           const SimResult &sim);

} // namespace raw

#endif // RAW_HARNESS_HARNESS_HPP
