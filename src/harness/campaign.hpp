#ifndef RAW_HARNESS_CAMPAIGN_HPP
#define RAW_HARNESS_CAMPAIGN_HPP

/**
 * @file
 * Fault-injection campaign driver.
 *
 * A campaign compiles one benchmark once, then sweeps N fault points
 * — seeds × channels × intensities — through the parallel pool, each
 * point a full simulation with the runtime checker enabled.  Point 0
 * is always the clean (fault-free) reference; by the static-ordering
 * property (Appendix A) every other point must reproduce its print
 * trace, check-array contents and provenance-stream hash bit for bit,
 * with zero self-check failures.  Any divergence, self-check failure
 * or unexpected deadlock fails that point; the sweep always completes
 * and the aggregate report says exactly which points failed and why.
 */

#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "rawcc/compiler.hpp"
#include "sim/simulator.hpp"

namespace raw {

/** One point of the sweep: a fault config plus its outcome. */
struct CampaignPoint
{
    int index = 0;
    FaultConfig faults;
    /** "clean" | "miss" | "route" | "dyn" | "jitter" | "all". */
    std::string channels;
    int64_t cycles = 0;
    int64_t check_failures = 0;
    uint64_t prov_hash = 0;
    bool trace_match = false;
    bool array_match = false;
    bool hash_match = false;
    /** Empty on success; exception or divergence message otherwise. */
    std::string error;
    /** Point exceeded its wall-clock budget (--point-timeout). */
    bool timed_out = false;

    bool ok() const
    {
        return error.empty() && !timed_out && trace_match &&
               array_match && hash_match && check_failures == 0;
    }

    /** Structured outcome: "ok" | "timeout" | "failed". */
    const char *outcome() const
    {
        return ok() ? "ok" : timed_out ? "timeout" : "failed";
    }
};

/** Aggregate outcome of one campaign. */
struct CampaignReport
{
    std::string bench;
    int tiles = 0;
    uint64_t base_seed = 0;
    std::vector<CampaignPoint> points;

    /** Did every point reproduce the reference cleanly? */
    bool clean() const;
    int failed_points() const;
    /** Points that hit their wall-clock budget (subset of failed). */
    int timeout_points() const;
    /** Machine-readable report (schema in docs/robustness.md). */
    std::string to_json() const;
    /** One-paragraph human summary. */
    std::string summary() const;
};

/**
 * The fault config of sweep point @p index (0 = clean reference).
 * Points cycle through the channels {miss, route, dyn, jitter, all}
 * at escalating intensities, each with a distinct seed derived from
 * @p base_seed, so any point can be replayed in isolation from its
 * (index, base_seed) pair alone.
 */
FaultConfig campaign_point(uint64_t base_seed, int index);

/**
 * Run an @p n_points campaign of @p bench on @p machine with
 * @p jobs workers (0 = hardware concurrency).  Compiles once;
 * never throws for per-point failures.
 *
 * @p point_timeout_ms > 0 bounds each point's *wall-clock* time
 * (--point-timeout): a pathological point is cut off inside the
 * simulator (SimTimeoutError) and reported as a structured "timeout"
 * outcome instead of stalling the whole sweep behind one worker.
 */
CampaignReport run_fault_campaign(const std::string &bench,
                                  const MachineConfig &machine,
                                  int n_points, uint64_t base_seed,
                                  int jobs,
                                  const CompilerOptions &opts = {},
                                  int64_t point_timeout_ms = 0);

} // namespace raw

#endif // RAW_HARNESS_CAMPAIGN_HPP
