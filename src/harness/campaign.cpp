#include "harness/campaign.hpp"

#include <cstdio>
#include <sstream>

#include "harness/parallel.hpp"
#include "programs/programs.hpp"

namespace raw {

namespace {

const char *const kChannelNames[5] = {"miss", "route", "dyn",
                                      "jitter", "all"};

/** Escape a string for embedding in a JSON value. */
std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
hex64(uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

const char *
point_channels(int index)
{
    return index == 0 ? "clean" : kChannelNames[(index - 1) % 5];
}

} // namespace

FaultConfig
campaign_point(uint64_t base_seed, int index)
{
    FaultConfig f;
    // Distinct seed per point: replayable from (base_seed, index).
    f.seed = base_seed * 1000003ULL + static_cast<uint64_t>(index);
    if (index == 0)
        return f; // clean reference
    // Channels cycle {miss, route, dyn, jitter, all} at three
    // escalating intensity tiers.
    int combo = (index - 1) % 5;
    int tier = ((index - 1) / 5) % 3;
    static const double kRates[3] = {0.01, 0.1, 0.4};
    static const int kMissPen[3] = {7, 20, 61};
    static const int kRoutePen[3] = {1, 3, 9};
    static const int kDynPen[3] = {2, 8, 31};
    double rate = kRates[tier];
    if (combo == 0 || combo == 4) {
        f.miss_rate = rate;
        f.penalty = kMissPen[tier];
    }
    if (combo == 1 || combo == 4) {
        f.route_stall_rate = rate;
        f.route_stall_cycles = kRoutePen[tier];
    }
    if (combo == 2 || combo == 4) {
        f.dyn_delay_rate = rate;
        f.dyn_delay_cycles = kDynPen[tier];
    }
    if (combo == 3 || combo == 4)
        f.jitter_rate = rate * 0.5;
    return f;
}

bool
CampaignReport::clean() const
{
    for (const CampaignPoint &p : points)
        if (!p.ok())
            return false;
    return !points.empty();
}

int
CampaignReport::failed_points() const
{
    int n = 0;
    for (const CampaignPoint &p : points)
        n += p.ok() ? 0 : 1;
    return n;
}

int
CampaignReport::timeout_points() const
{
    int n = 0;
    for (const CampaignPoint &p : points)
        n += p.timed_out ? 1 : 0;
    return n;
}

std::string
CampaignReport::to_json() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"" << json_escape(bench) << "\",\n";
    os << "  \"tiles\": " << tiles << ",\n";
    os << "  \"base_seed\": " << base_seed << ",\n";
    os << "  \"points\": " << points.size() << ",\n";
    os << "  \"failed\": " << failed_points() << ",\n";
    os << "  \"timeouts\": " << timeout_points() << ",\n";
    os << "  \"clean\": " << (clean() ? "true" : "false") << ",\n";
    os << "  \"detail\": [\n";
    for (size_t i = 0; i < points.size(); i++) {
        const CampaignPoint &p = points[i];
        const FaultConfig &f = p.faults;
        os << "    {\"index\": " << p.index << ", \"channels\": \""
           << p.channels << "\", \"seed\": " << f.seed
           << ", \"miss_rate\": " << f.miss_rate
           << ", \"penalty\": " << f.penalty
           << ", \"route_stall_rate\": " << f.route_stall_rate
           << ", \"route_stall_cycles\": " << f.route_stall_cycles
           << ", \"dyn_delay_rate\": " << f.dyn_delay_rate
           << ", \"dyn_delay_cycles\": " << f.dyn_delay_cycles
           << ", \"jitter_rate\": " << f.jitter_rate
           << ", \"cycles\": " << p.cycles
           << ", \"check_failures\": " << p.check_failures
           << ", \"prov_hash\": \"" << hex64(p.prov_hash) << "\""
           << ", \"trace_match\": "
           << (p.trace_match ? "true" : "false")
           << ", \"array_match\": "
           << (p.array_match ? "true" : "false")
           << ", \"hash_match\": " << (p.hash_match ? "true" : "false")
           << ", \"ok\": " << (p.ok() ? "true" : "false")
           << ", \"outcome\": \"" << p.outcome() << "\""
           << ", \"error\": \"" << json_escape(p.error) << "\"}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

std::string
CampaignReport::summary() const
{
    std::ostringstream os;
    os << "fault campaign: " << bench << " on " << tiles << " tiles, "
       << points.size() << " points (base seed " << base_seed
       << "): ";
    if (clean()) {
        os << "all points reproduced the clean reference "
              "(bit-identical prints/arrays/provenance, zero "
              "self-check failures)";
    } else {
        os << failed_points() << " point(s) FAILED";
        if (timeout_points() > 0)
            os << " (" << timeout_points() << " timed out)";
        os << ":";
        for (const CampaignPoint &p : points) {
            if (p.ok())
                continue;
            os << "\n  point " << p.index << " [" << p.channels
               << "]: ";
            if (p.timed_out)
                os << "timeout: " << p.error;
            else if (!p.error.empty())
                os << p.error;
            else if (!p.trace_match)
                os << "print trace diverged from clean reference";
            else if (!p.array_match)
                os << "check-array contents diverged";
            else if (!p.hash_match)
                os << "provenance-stream hash diverged";
            else
                os << p.check_failures << " self-check failure(s)";
        }
    }
    return os.str();
}

CampaignReport
run_fault_campaign(const std::string &bench,
                   const MachineConfig &machine, int n_points,
                   uint64_t base_seed, int jobs,
                   const CompilerOptions &opts,
                   int64_t point_timeout_ms)
{
    const BenchmarkProgram &bp = benchmark(bench);
    // One compile; the program is immutable and shared by every
    // point's Simulator across worker threads.
    CompileOutput out = compile_source(bp.source, machine, opts);

    CampaignReport rep;
    rep.bench = bench;
    rep.tiles = machine.n_tiles;
    rep.base_seed = base_seed;
    if (n_points <= 0)
        return rep;
    rep.points.resize(n_points);
    for (int i = 0; i < n_points; i++) {
        rep.points[i].index = i;
        rep.points[i].faults = campaign_point(base_seed, i);
        rep.points[i].channels = point_channels(i);
    }

    struct PointOut
    {
        std::string prints;
        std::vector<uint32_t> words;
    };
    std::vector<PointOut> res(n_points);
    CheckConfig checks;
    checks.provenance = true;
    checks.fifo_bounds = true;

    auto run_point = [&](int i) {
        CampaignPoint &pt = rep.points[i];
        Simulator sim(out.program, pt.faults, checks);
        if (point_timeout_ms > 0)
            sim.set_wall_budget_ms(point_timeout_ms);
        SimResult sr;
        try {
            sr = sim.run();
        } catch (const SimTimeoutError &e) {
            // Structured outcome: the point exceeded its wall-clock
            // budget; the sweep continues, the report says so.
            pt.timed_out = true;
            pt.error = e.what();
            return;
        }
        pt.cycles = sr.cycles;
        pt.check_failures = sr.check_failure_count;
        pt.prov_hash = sr.prov_hash;
        res[i].prints = sr.print_text();
        if (!bp.check_array.empty() &&
            out.program.find_array(bp.check_array) >= 0)
            res[i].words = sim.read_array(bp.check_array);
        if (!sr.check_failures.empty())
            pt.error = sr.check_failures.front().to_string();
    };

    // The clean reference runs first (it defines what every fault
    // point must reproduce), then the fault points fan out.
    std::vector<std::string> ref_err =
        run_parallel_collect(1, 1, run_point);
    std::vector<std::string> errs = run_parallel_collect(
        n_points - 1, resolve_jobs(jobs),
        [&](int k) { run_point(k + 1); });

    for (int i = 0; i < n_points; i++) {
        CampaignPoint &pt = rep.points[i];
        const std::string &err = i == 0 ? ref_err[0] : errs[i - 1];
        if (!err.empty() && pt.error.empty())
            pt.error = err;
        if (!err.empty())
            continue; // run died; comparisons stay false
        if (!ref_err[0].empty())
            continue; // no reference to compare against
        pt.trace_match = res[i].prints == res[0].prints;
        pt.array_match = res[i].words == res[0].words;
        pt.hash_match = pt.prov_hash == rep.points[0].prov_hash;
    }
    return rep;
}

} // namespace raw
