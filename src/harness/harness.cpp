#include "harness/harness.hpp"

#include <array>
#include <map>
#include <mutex>
#include <sstream>

#include "sim/profile.hpp"

#include "support/error.hpp"

namespace raw {

namespace {

RunResult
simulate(CompileOutput out, const std::string &check_array,
         const FaultConfig &faults, const CheckConfig &checks = {},
         SimBackend backend = SimBackend::kReference)
{
    RunResult r;
    r.stats = out.stats;
    Simulator sim(out.program, faults, checks, backend);
    r.sim = sim.run();
    r.cycles = r.sim.cycles;
    if (!check_array.empty() &&
        out.program.find_array(check_array) >= 0)
        r.check_words = sim.read_array(check_array);
    r.prints = r.sim.print_text();
    return r;
}

} // namespace

RunResult
run_rawcc(const std::string &source, const MachineConfig &machine,
          const std::string &check_array, const CompilerOptions &opts,
          const FaultConfig &faults, const CheckConfig &checks,
          SimBackend backend)
{
    return simulate(compile_source(source, machine, opts), check_array,
                    faults, checks, backend);
}

SimResult
diff_sim_backends(const CompiledProgram &prog,
                  const FaultConfig &faults, const CheckConfig &checks,
                  bool trace)
{
    Simulator ref(prog, faults, checks, SimBackend::kReference);
    ref.set_trace_enabled(trace);
    SimResult a = ref.run();

    // Every non-reference core is held to the same bit-identical
    // bar; SimResult::regions_entered/region_cycles are deliberately
    // outside the comparison (backend-internal diagnostics).
    for (SimBackend backend :
         {SimBackend::kThreaded, SimBackend::kRegion}) {
        const std::string bn = sim_backend_name(backend);
        Simulator alt(prog, faults, checks, backend);
        alt.set_trace_enabled(trace);
        SimResult b = alt.run();

        auto mismatch = [&](const std::string &what, int64_t va,
                            int64_t vb) {
            fatal("sim backend divergence: " + what + ": reference " +
                  std::to_string(va) + " vs " + bn + " " +
                  std::to_string(vb));
        };
        auto require = [&](const std::string &what, int64_t va,
                           int64_t vb) {
            if (va != vb)
                mismatch(what, va, vb);
        };
        require("cycles", a.cycles, b.cycles);
        require("instrs_executed", a.instrs_executed,
                b.instrs_executed);
        require("switch_instrs_executed", a.switch_instrs_executed,
                b.switch_instrs_executed);
        require("words_routed", a.words_routed, b.words_routed);
        require("dyn_messages", a.dyn_messages, b.dyn_messages);
        require("proc_stall_cycles", a.proc_stall_cycles,
                b.proc_stall_cycles);
        require("check_failure_count", a.check_failure_count,
                b.check_failure_count);
        if (a.prov_hash != b.prov_hash)
            fatal("sim backend divergence: prov_hash (" + bn + ")");
        if (a.print_text() != b.print_text())
            fatal("sim backend divergence: print trace:\n"
                  "--- reference\n" +
                  a.print_text() + "--- " + bn + "\n" +
                  b.print_text());
        for (size_t t = 0; t < a.profile.tiles.size(); t++) {
            const TileProfile &ta = a.profile.tiles[t];
            const TileProfile &tb = b.profile.tiles[t];
            std::string at = "tile " + std::to_string(t) + " ";
            for (int c = 0; c < kNumProcCycleCats; c++)
                if (ta.proc_cycles[c] != tb.proc_cycles[c])
                    mismatch(at + "proc_cycles[" + std::to_string(c) +
                                 "]",
                             ta.proc_cycles[c], tb.proc_cycles[c]);
            for (int c = 0; c < kNumSwitchCycleCats; c++)
                if (ta.switch_cycles[c] != tb.switch_cycles[c])
                    mismatch(at + "switch_cycles[" +
                                 std::to_string(c) + "]",
                             ta.switch_cycles[c], tb.switch_cycles[c]);
            for (int c = 0; c < kNumOpClasses; c++)
                if (ta.issued[c] != tb.issued[c])
                    mismatch(at + "issued[" + std::to_string(c) + "]",
                             ta.issued[c], tb.issued[c]);
            if (ta.route_stalls != tb.route_stalls)
                fatal("sim backend divergence: " + at +
                      "route_stalls (" + bn + ")");
            require(at + "words_routed", ta.words_routed,
                    tb.words_routed);
            require(at + "dyn_net_blocked", ta.dyn_net_blocked,
                    tb.dyn_net_blocked);
            require(at + "dyn_requests_served",
                    ta.dyn_requests_served, tb.dyn_requests_served);
            require(at + "dyn_handler_busy", ta.dyn_handler_busy,
                    tb.dyn_handler_busy);
            require(at + "dyn_queue_wait", ta.dyn_queue_wait,
                    tb.dyn_queue_wait);
            require(at + "dyn_max_queue", ta.dyn_max_queue,
                    tb.dyn_max_queue);
        }
        for (const ArrayLayout &arr : prog.arrays)
            if (ref.read_array(arr.name) != alt.read_array(arr.name))
                fatal("sim backend divergence: array '" + arr.name +
                      "' (" + bn + ")");
    }
    return a;
}

RunResult
run_rawcc_pgo(const std::string &source, const MachineConfig &machine,
              const std::string &check_array,
              const CompilerOptions &opts, const FaultConfig &faults,
              const CheckConfig &checks)
{
    // Cached conclusion of the profiling pass: the winning
    // pgo_candidates() index plus the feedback it used, so a sweep
    // repeating the configuration compiles the winner directly.
    // Candidate 0 is the plain compile, so PGO never loses cycles —
    // on cache hits too.  Map nodes are reference-stable (see
    // cached_baseline).
    struct PgoPick
    {
        size_t winner = 0;
        PlacementFeedback fb;
    };
    static std::mutex mu;
    static std::map<std::string, PgoPick> cache;

    const SchedOptions &so = opts.orch.sched;
    std::string key = machine.name() + "/" +
                      std::to_string(machine.n_tiles) + "/" +
                      std::to_string(so.sched_iters) + "/" +
                      std::to_string(so.route_select) + "/" +
                      std::to_string(so.fifo_priority) + "/" +
                      std::to_string(so.level_weight) + "/" +
                      std::to_string(so.fertility_weight) + "/" +
                      std::to_string(opts.unroll.enable) + "/" +
                      source;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache.find(key);
        if (it != cache.end()) {
            std::vector<CompilerOptions> cands =
                pgo_candidates(opts, it->second.fb);
            const CompilerOptions &win =
                cands[it->second.winner < cands.size()
                          ? it->second.winner
                          : 0];
            return run_rawcc(source, machine, check_array, win,
                             faults, checks);
        }
    }

    // Miss: measure the plain compile fault-free, then race every
    // candidate cost-model variant and keep the fastest measured.
    CompilerOptions plain = opts;
    plain.pgo = false;
    RunResult best = run_rawcc(source, machine, check_array, plain);
    PlacementFeedback fb =
        placement_feedback_from_profile(best.sim, machine);
    std::vector<CompilerOptions> cands = pgo_candidates(opts, fb);
    size_t winner = 0;
    for (size_t c = 1; c < cands.size(); c++) {
        RunResult r =
            run_rawcc(source, machine, check_array, cands[c]);
        if (r.cycles < best.cycles) {
            best = std::move(r);
            winner = c;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        cache.emplace(key, PgoPick{winner, fb});
    }
    if (faults.any() || checks.enabled())
        return run_rawcc(source, machine, check_array, cands[winner],
                         faults, checks);
    return best;
}

RunResult
run_baseline(const std::string &source, const std::string &check_array,
             const FaultConfig &faults)
{
    return simulate(compile_baseline(source), check_array, faults);
}

const RunResult &
cached_baseline(const BenchmarkProgram &prog)
{
    // std::map nodes are reference-stable, so entries may be handed
    // out while later insertions happen.  The lock covers the whole
    // compile+simulate on a miss: baselines are cheap, and serializing
    // them keeps the first fill race-free.
    static std::mutex mu;
    static std::map<std::string, RunResult> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(prog.name);
    if (it == cache.end())
        it = cache
                 .emplace(prog.name,
                          run_baseline(prog.source, prog.check_array))
                 .first;
    return it->second;
}

double
verified_speedup(const BenchmarkProgram &prog,
                 const MachineConfig &machine,
                 const CompilerOptions &opts, const FaultConfig &faults)
{
    const RunResult &base = cached_baseline(prog);
    RunResult par =
        run_rawcc(prog.source, machine, prog.check_array, opts, faults);
    if (base.check_words != par.check_words) {
        std::ostringstream os;
        os << prog.name << " on " << machine.name()
           << ": result mismatch in array '" << prog.check_array
           << "'";
        for (size_t i = 0;
             i < base.check_words.size() && i < par.check_words.size();
             i++) {
            if (base.check_words[i] != par.check_words[i]) {
                os << " (first at index " << i << ": base 0x"
                   << std::hex << base.check_words[i] << " vs 0x"
                   << par.check_words[i] << ")";
                break;
            }
        }
        fatal(os.str());
    }
    if (base.prints != par.prints)
        fatal(prog.name + " on " + machine.name() +
              ": print trace mismatch:\n--- baseline\n" + base.prints +
              "--- rawcc\n" + par.prints);
    return static_cast<double>(base.cycles) /
           static_cast<double>(par.cycles);
}

std::string
golden_summary(const std::string &bench, int tiles,
               const FaultConfig &faults, const SimResult &s)
{
    std::ostringstream out;
    out << "bench " << bench << "\n";
    out << "tiles " << tiles << "\n";
    out << "miss_rate " << faults.miss_rate << "\n";
    // Newer fault channels print only when enabled so every golden
    // that predates them stays byte-identical.
    if (faults.multi_channel()) {
        out << "route_stall " << faults.route_stall_rate << " "
            << faults.route_stall_cycles << "\n";
        out << "dyn_delay " << faults.dyn_delay_rate << " "
            << faults.dyn_delay_cycles << "\n";
        out << "jitter " << faults.jitter_rate << "\n";
    }
    out << "cycles " << s.cycles << "\n";
    out << "instrs " << s.instrs_executed << "\n";
    out << "switch_instrs " << s.switch_instrs_executed << "\n";
    out << "words_routed " << s.words_routed << "\n";
    out << "dyn_messages " << s.dyn_messages << "\n";
    out << "proc_stalls " << s.proc_stall_cycles << "\n";
    std::array<int64_t, kNumProcCycleCats> pc{};
    std::array<int64_t, kNumSwitchCycleCats> sc{};
    std::array<int64_t, kNumOpClasses> is{};
    for (const TileProfile &tp : s.profile.tiles) {
        for (int c = 0; c < kNumProcCycleCats; c++)
            pc[c] += tp.proc_cycles[c];
        for (int c = 0; c < kNumSwitchCycleCats; c++)
            sc[c] += tp.switch_cycles[c];
        for (int c = 0; c < kNumOpClasses; c++)
            is[c] += tp.issued[c];
    }
    out << "proc_cats";
    for (int64_t v : pc)
        out << " " << v;
    out << "\nswitch_cats";
    for (int64_t v : sc)
        out << " " << v;
    out << "\nissued";
    for (int64_t v : is)
        out << " " << v;
    std::string prints = s.print_text();
    out << "\nprint_bytes " << prints.size() << "\n";
    out << prints;
    return out.str();
}

} // namespace raw
