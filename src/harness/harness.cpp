#include "harness/harness.hpp"

#include <sstream>

#include "support/error.hpp"

namespace raw {

namespace {

RunResult
simulate(CompileOutput out, const std::string &check_array,
         const FaultConfig &faults)
{
    RunResult r;
    r.stats = out.stats;
    Simulator sim(out.program, faults);
    r.sim = sim.run();
    r.cycles = r.sim.cycles;
    if (!check_array.empty() &&
        out.program.find_array(check_array) >= 0)
        r.check_words = sim.read_array(check_array);
    r.prints = r.sim.print_text();
    return r;
}

} // namespace

RunResult
run_rawcc(const std::string &source, const MachineConfig &machine,
          const std::string &check_array, const CompilerOptions &opts,
          const FaultConfig &faults)
{
    return simulate(compile_source(source, machine, opts), check_array,
                    faults);
}

RunResult
run_baseline(const std::string &source, const std::string &check_array,
             const FaultConfig &faults)
{
    return simulate(compile_baseline(source), check_array, faults);
}

double
verified_speedup(const BenchmarkProgram &prog,
                 const MachineConfig &machine,
                 const CompilerOptions &opts, const FaultConfig &faults)
{
    RunResult base = run_baseline(prog.source, prog.check_array);
    RunResult par =
        run_rawcc(prog.source, machine, prog.check_array, opts, faults);
    if (base.check_words != par.check_words) {
        std::ostringstream os;
        os << prog.name << " on " << machine.name()
           << ": result mismatch in array '" << prog.check_array
           << "'";
        for (size_t i = 0;
             i < base.check_words.size() && i < par.check_words.size();
             i++) {
            if (base.check_words[i] != par.check_words[i]) {
                os << " (first at index " << i << ": base 0x"
                   << std::hex << base.check_words[i] << " vs 0x"
                   << par.check_words[i] << ")";
                break;
            }
        }
        fatal(os.str());
    }
    if (base.prints != par.prints)
        fatal(prog.name + " on " + machine.name() +
              ": print trace mismatch:\n--- baseline\n" + base.prints +
              "--- rawcc\n" + par.prints);
    return static_cast<double>(base.cycles) /
           static_cast<double>(par.cycles);
}

} // namespace raw
