#include "harness/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>

namespace raw {

namespace {

/**
 * Shared pool core: run every job, capturing a thrown exception into
 * that job's slot.  Slots are written by exactly one worker each, so
 * no lock is needed.  The calling thread is always one of the
 * workers, so even if std::thread construction fails every job still
 * runs (degraded to fewer workers, never lost or hung).
 */
std::vector<std::exception_ptr>
run_all(int n_jobs, int n_threads,
        const std::function<void(int)> &job)
{
    std::vector<std::exception_ptr> errs(n_jobs);
    if (n_jobs <= 0)
        return errs;
    n_threads = std::min(n_threads, n_jobs);
    if (n_threads <= 1) {
        for (int i = 0; i < n_jobs; i++) {
            try {
                job(i);
            } catch (...) {
                errs[i] = std::current_exception();
            }
        }
        return errs;
    }

    std::atomic<int> next{0};
    auto worker = [&] {
        for (;;) {
            int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n_jobs)
                return;
            try {
                job(i);
            } catch (...) {
                errs[i] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(n_threads - 1);
    try {
        for (int t = 0; t < n_threads - 1; t++)
            pool.emplace_back(worker);
    } catch (...) {
        // Resource exhaustion spawning workers: whatever started is
        // joined below and the calling thread drains the rest.
    }
    worker();
    for (std::thread &t : pool)
        t.join();
    return errs;
}

} // namespace

int
resolve_jobs(int jobs)
{
    if (jobs >= 1)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

void
run_parallel(int n_jobs, int n_threads,
             const std::function<void(int)> &job)
{
    for (std::exception_ptr &e : run_all(n_jobs, n_threads, job))
        if (e)
            std::rethrow_exception(e);
}

std::vector<std::string>
run_parallel_collect(int n_jobs, int n_threads,
                     const std::function<void(int)> &job)
{
    std::vector<std::exception_ptr> errs =
        run_all(n_jobs, n_threads, job);
    std::vector<std::string> out(errs.size());
    for (size_t i = 0; i < errs.size(); i++) {
        if (!errs[i])
            continue;
        try {
            std::rethrow_exception(errs[i]);
        } catch (const std::exception &ex) {
            out[i] = ex.what()[0] ? ex.what() : "unknown error";
        } catch (...) {
            out[i] = "unknown error";
        }
    }
    return out;
}

} // namespace raw
