#include "harness/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "support/error.hpp"

namespace raw {

namespace {

/** Human-readable message of a captured exception. */
std::string
describe(const std::exception_ptr &e)
{
    try {
        std::rethrow_exception(e);
    } catch (const std::exception &ex) {
        return ex.what()[0] ? ex.what() : "unknown error";
    } catch (...) {
        return "unknown error";
    }
}

/**
 * Shared pool core: run every job, capturing a thrown exception into
 * that job's slot.  Slots are written by exactly one worker each, so
 * no lock is needed.  The calling thread is always one of the
 * workers, so even if std::thread construction fails every job still
 * runs (degraded to fewer workers, never lost or hung).
 */
std::vector<std::exception_ptr>
run_all(int n_jobs, int n_threads,
        const std::function<void(int)> &job)
{
    std::vector<std::exception_ptr> errs(n_jobs);
    if (n_jobs <= 0)
        return errs;
    n_threads = std::min(n_threads, n_jobs);
    if (n_threads <= 1) {
        for (int i = 0; i < n_jobs; i++) {
            try {
                job(i);
            } catch (...) {
                errs[i] = std::current_exception();
            }
        }
        return errs;
    }

    std::atomic<int> next{0};
    auto worker = [&] {
        for (;;) {
            int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n_jobs)
                return;
            try {
                job(i);
            } catch (...) {
                errs[i] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(n_threads - 1);
    try {
        for (int t = 0; t < n_threads - 1; t++)
            pool.emplace_back(worker);
    } catch (...) {
        // Resource exhaustion spawning workers: whatever started is
        // joined below and the calling thread drains the rest.
    }
    worker();
    for (std::thread &t : pool)
        t.join();
    return errs;
}

} // namespace

int
resolve_jobs(int jobs)
{
    if (jobs >= 1)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

void
run_parallel(int n_jobs, int n_threads,
             const std::function<void(int)> &job)
{
    // A lone failure rethrows unchanged (type and message intact).
    // Multiple sibling failures used to be silently discarded behind
    // the first; now the count and the first message of each failed
    // job are reported together.
    std::vector<std::exception_ptr> errs =
        run_all(n_jobs, n_threads, job);
    std::exception_ptr first;
    int failed = 0;
    std::string detail;
    for (size_t i = 0; i < errs.size(); i++) {
        if (!errs[i])
            continue;
        if (!first)
            first = errs[i];
        failed++;
        if (failed <= 3) {
            detail += "\n  job ";
            detail += std::to_string(i);
            detail += ": ";
            detail += describe(errs[i]);
        }
    }
    if (!first)
        return;
    if (failed == 1)
        std::rethrow_exception(first);
    if (failed > 3)
        detail += "\n  ... and " + std::to_string(failed - 3) +
                  " more";
    fatal(std::to_string(failed) + " of " +
          std::to_string(errs.size()) +
          " parallel jobs failed:" + detail);
}

std::vector<std::string>
run_parallel_collect(int n_jobs, int n_threads,
                     const std::function<void(int)> &job)
{
    std::vector<std::exception_ptr> errs =
        run_all(n_jobs, n_threads, job);
    std::vector<std::string> out(errs.size());
    for (size_t i = 0; i < errs.size(); i++)
        if (errs[i])
            out[i] = describe(errs[i]);
    return out;
}

} // namespace raw
