#include "harness/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace raw {

int
resolve_jobs(int jobs)
{
    if (jobs >= 1)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

void
run_parallel(int n_jobs, int n_threads,
             const std::function<void(int)> &job)
{
    if (n_jobs <= 0)
        return;
    n_threads = std::min(n_threads, n_jobs);
    if (n_threads <= 1) {
        for (int i = 0; i < n_jobs; i++)
            job(i);
        return;
    }

    std::atomic<int> next{0};
    std::mutex err_mu;
    std::exception_ptr first_error;
    int first_error_job = -1;

    auto worker = [&] {
        for (;;) {
            int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n_jobs)
                return;
            try {
                job(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mu);
                if (first_error_job < 0 || i < first_error_job) {
                    first_error_job = i;
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (int t = 0; t < n_threads; t++)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace raw
