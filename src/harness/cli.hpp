#ifndef RAW_HARNESS_CLI_HPP
#define RAW_HARNESS_CLI_HPP

/**
 * @file
 * Validated command-line number parsing shared by the rawcc tool and
 * the bench drivers.  std::atoi silently maps garbage to 0 and
 * accepts trailing junk and negatives, so every driver that sizes a
 * sweep or a worker pool from argv must go through these helpers:
 * they reject partial parses, overflow and out-of-range values with a
 * uniform "<tool>: <flag> expects <what>, got '<value>'" diagnostic
 * and exit code 2 (usage error), which tests/test_faults.cpp pins.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace raw {
namespace cli {

[[noreturn]] inline void
bad_value(const char *tool, const char *flag, const char *got,
          const char *want)
{
    std::fprintf(stderr, "%s: %s expects %s, got '%s'\n", tool, flag,
                 want, got);
    std::exit(2);
}

/** Parse a full decimal integer; reject trailing garbage/overflow. */
inline long
parse_long(const char *tool, const char *s, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE)
        bad_value(tool, flag, s, "an integer");
    return v;
}

inline unsigned long long
parse_u64(const char *tool, const char *s, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE ||
        std::strchr(s, '-') != nullptr)
        bad_value(tool, flag, s, "a non-negative integer");
    return v;
}

inline double
parse_double(const char *tool, const char *s, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || errno == ERANGE)
        bad_value(tool, flag, s, "a number");
    return v;
}

/** parse_long restricted to [lo, hi]; @p want names the range. */
inline long
parse_long_in(const char *tool, const char *s, const char *flag,
              long lo, long hi, const char *want)
{
    long v = parse_long(tool, s, flag);
    if (v < lo || v > hi)
        bad_value(tool, flag, s, want);
    return v;
}

/**
 * Parse a mesh size for --tiles: a power of two in [1, 1024].
 * mesh_shape() folds powers of two into near-square meshes (64 ->
 * 8x8, 128 -> 8x16); non-power-of-two counts degrade into elongated
 * shapes no benchmark schedule targets, and anything past 1024
 * exceeds what MachineConfig::validate() accepts — both are usage
 * errors, caught here with exit 2 before any compile starts.
 */
inline long
parse_tiles(const char *tool, const char *s, const char *flag)
{
    long v = parse_long(tool, s, flag);
    if (v < 1 || v > 1024 || (v & (v - 1)) != 0)
        bad_value(tool, flag, s,
                  "a power-of-two tile count in 1..1024");
    return v;
}

} // namespace cli
} // namespace raw

#endif // RAW_HARNESS_CLI_HPP
