#ifndef RAW_HARNESS_CLI_HPP
#define RAW_HARNESS_CLI_HPP

/**
 * @file
 * Validated command-line number parsing shared by the rawcc tool and
 * the bench drivers.  std::atoi silently maps garbage to 0 and
 * accepts trailing junk and negatives, so every driver that sizes a
 * sweep or a worker pool from argv must go through these helpers:
 * they reject partial parses, overflow and out-of-range values with a
 * uniform "<tool>: <flag> expects <what>, got '<value>'" diagnostic
 * and exit code 2 (usage error), which tests/test_faults.cpp pins.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace raw {
namespace cli {

[[noreturn]] inline void
bad_value(const char *tool, const char *flag, const char *got,
          const char *want)
{
    std::fprintf(stderr, "%s: %s expects %s, got '%s'\n", tool, flag,
                 want, got);
    std::exit(2);
}

/** Parse a full decimal integer; reject trailing garbage/overflow. */
inline long
parse_long(const char *tool, const char *s, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE)
        bad_value(tool, flag, s, "an integer");
    return v;
}

inline unsigned long long
parse_u64(const char *tool, const char *s, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE ||
        std::strchr(s, '-') != nullptr)
        bad_value(tool, flag, s, "a non-negative integer");
    return v;
}

inline double
parse_double(const char *tool, const char *s, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || errno == ERANGE)
        bad_value(tool, flag, s, "a number");
    return v;
}

/** parse_long restricted to [lo, hi]; @p want names the range. */
inline long
parse_long_in(const char *tool, const char *s, const char *flag,
              long lo, long hi, const char *want)
{
    long v = parse_long(tool, s, flag);
    if (v < lo || v > hi)
        bad_value(tool, flag, s, want);
    return v;
}

} // namespace cli
} // namespace raw

#endif // RAW_HARNESS_CLI_HPP
