#ifndef RAW_SUPPORT_MATHUTIL_HPP
#define RAW_SUPPORT_MATHUTIL_HPP

/**
 * @file
 * Small integer-math helpers used across the compiler: gcd/lcm on
 * 64-bit values and modular-congruence arithmetic used by the affine
 * staticization analysis (Section 5.3 of the paper).
 */

#include <cstdint>

namespace raw {

/** Greatest common divisor; gcd(0, x) == |x|. */
int64_t gcd64(int64_t a, int64_t b);

/** Least common multiple, saturating at @p cap (0 means no cap). */
int64_t lcm64(int64_t a, int64_t b, int64_t cap = 0);

/** Mathematical modulus: result is always in [0, m) for m > 0. */
int64_t floor_mod(int64_t a, int64_t m);

/**
 * A modular congruence fact about an integer value: value == residue
 * (mod modulus).  modulus == 0 means the value is exactly `residue`
 * (a compile-time constant).  A Congruence can also be "top" (nothing
 * known), represented by modulus == 1 with residue 0.
 */
struct Congruence
{
    int64_t residue = 0;
    int64_t modulus = 1; // 1 == unknown ("anything"), 0 == exact constant

    /** A congruence conveying no information. */
    static Congruence top() { return {0, 1}; }
    /** An exact compile-time constant. */
    static Congruence exact(int64_t v) { return {v, 0}; }
    /** value == r (mod m), m > 1. */
    static Congruence mod(int64_t r, int64_t m);

    bool is_exact() const { return modulus == 0; }
    bool is_top() const { return modulus == 1; }

    /** Residue of this value modulo @p m, or -1 if not determined. */
    int64_t residue_mod(int64_t m) const;

    Congruence operator+(const Congruence &o) const;
    Congruence operator-(const Congruence &o) const;
    Congruence operator*(const Congruence &o) const;

    bool operator==(const Congruence &o) const = default;
};

} // namespace raw

#endif // RAW_SUPPORT_MATHUTIL_HPP
