#include "support/error.hpp"

namespace raw {

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

} // namespace raw
