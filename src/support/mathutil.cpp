#include "support/mathutil.hpp"

#include <cstdlib>

namespace raw {

int64_t
gcd64(int64_t a, int64_t b)
{
    a = std::llabs(a);
    b = std::llabs(b);
    while (b != 0) {
        int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

int64_t
lcm64(int64_t a, int64_t b, int64_t cap)
{
    a = std::llabs(a);
    b = std::llabs(b);
    if (a == 0 || b == 0)
        return 0;
    int64_t g = gcd64(a, b);
    int64_t l = (a / g) * b;
    if (cap > 0 && l > cap)
        return cap;
    return l;
}

int64_t
floor_mod(int64_t a, int64_t m)
{
    int64_t r = a % m;
    return r < 0 ? r + m : r;
}

Congruence
Congruence::mod(int64_t r, int64_t m)
{
    if (m == 0)
        return exact(r);
    m = std::llabs(m);
    if (m == 1)
        return top();
    return {floor_mod(r, m), m};
}

int64_t
Congruence::residue_mod(int64_t m) const
{
    if (m <= 0)
        return -1;
    if (is_exact())
        return floor_mod(residue, m);
    if (modulus % m == 0)
        return floor_mod(residue, m);
    return -1;
}

Congruence
Congruence::operator+(const Congruence &o) const
{
    if (is_exact() && o.is_exact())
        return exact(residue + o.residue);
    int64_t m = gcd64(modulus, o.modulus);
    return mod(residue + o.residue, m);
}

Congruence
Congruence::operator-(const Congruence &o) const
{
    if (is_exact() && o.is_exact())
        return exact(residue - o.residue);
    int64_t m = gcd64(modulus, o.modulus);
    return mod(residue - o.residue, m);
}

Congruence
Congruence::operator*(const Congruence &o) const
{
    if (is_exact() && o.is_exact())
        return exact(residue * o.residue);
    // (r1 + m1*j) * (r2 + m2*k) == r1*r2 (mod gcd(r1*m2, r2*m1, m1*m2))
    int64_t m = gcd64(gcd64(residue * o.modulus, o.residue * modulus),
                      modulus * o.modulus);
    return mod(residue * o.residue, m);
}

} // namespace raw
