#ifndef RAW_SUPPORT_ERROR_HPP
#define RAW_SUPPORT_ERROR_HPP

/**
 * @file
 * Error reporting for the RawCC toolchain.
 *
 * Follows the gem5 fatal()/panic() discipline:
 *  - fatal():  the input program or configuration is at fault; the tool
 *              cannot continue (throws raw::FatalError, a normal failure).
 *  - panic():  an internal invariant was violated (a RawCC bug); throws
 *              raw::PanicError so tests can assert on internal checks.
 */

#include <stdexcept>
#include <string>

namespace raw {

/** Error caused by bad user input (source program, config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Error caused by an internal compiler/simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Report a user-caused error: throws FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal bug: throws PanicError. */
[[noreturn]] void panic(const std::string &msg);

/** Assert an internal invariant; panics with @p msg when @p cond is false. */
inline void
check(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace raw

#endif // RAW_SUPPORT_ERROR_HPP
