#ifndef RAW_SERVE_SERVER_HPP
#define RAW_SERVE_SERVER_HPP

/**
 * @file
 * `rawcc serve`: a hardened multi-tenant compile-and-simulate daemon.
 *
 * One process, one listening socket (Unix domain or loopback TCP),
 * line-delimited JSON in both directions (docs/serve.md has the full
 * protocol and error taxonomy).  The robustness contract:
 *
 *  - admission control: requests enter a bounded queue; when it is
 *    full the daemon replies `overloaded` immediately — no silent
 *    drops, no unbounded memory;
 *  - single-flight caching: identical concurrent compiles run once
 *    (serve/flight_cache.hpp) on top of the block-level schedule
 *    cache, with leader-failure handoff;
 *  - per-request isolation: each request carries a wall-clock
 *    deadline; simulations are preempted at the deadline
 *    (SimTimeoutError), compiles are replied-to at the deadline by a
 *    reaper thread while the worker finishes and still populates the
 *    cache; any pipeline exception becomes a structured error reply,
 *    never a daemon crash;
 *  - graceful drain: SIGTERM/SIGINT stop admission, queued requests
 *    get `shutting_down` replies, in-flight work finishes, the
 *    process exits 0.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/flight_cache.hpp"
#include "serve/queue.hpp"

namespace raw {
namespace serve {

struct ServeOptions
{
    /** Unix-domain socket path; empty = TCP on 127.0.0.1:port. */
    std::string socket_path;
    int port = 0;
    /** Worker threads executing compile/simulate requests. */
    int workers = 2;
    /** Admission queue depth (beyond in-flight work). */
    int queue_depth = 16;
    /** Request-cache capacity. */
    int cache_entries = 64;
    int64_t cache_bytes = 256 << 20;
    /** Disk tier for the block-schedule cache; empty = memory only. */
    std::string cache_dir;
    /** Default / maximum per-request deadline (ms). */
    int64_t default_timeout_ms = 30000;
    int64_t max_timeout_ms = 120000;
    /** Wall budget for finishing in-flight work on drain (ms). */
    int64_t drain_ms = 5000;
    /** Hostile-input bound: longest accepted request line (bytes). */
    size_t max_line_bytes = 4 << 20;
    /** Concurrent connection cap (excess are refused with a reply). */
    int max_conns = 64;
    /** Log request lines to stderr. */
    bool verbose = false;
};

/** Aggregate daemon counters (all monotonic unless noted). */
struct ServeStats
{
    int64_t connections = 0;
    int64_t conns_refused = 0;
    int64_t requests = 0;
    int64_t admitted = 0;
    int64_t completed = 0;
    int64_t shed = 0;        ///< overloaded replies
    int64_t timeouts = 0;    ///< timeout replies (queue or run)
    int64_t bad_requests = 0;
    int64_t compile_errors = 0;
    int64_t sim_errors = 0;
    int64_t internal_errors = 0;
    int64_t cancelled = 0;   ///< shutting_down replies during drain
    int64_t detached = 0;    ///< workers that outlived their reply
};

class ServeServer
{
  public:
    explicit ServeServer(const ServeOptions &opts);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Bind, listen, spawn workers, and serve until stop() (or a
     * signal routed through request_stop()).  Prints one
     * "listening on ..." line to stdout when ready.  Returns the
     * process exit code (0 after a clean drain).
     */
    int serve_forever();

    /** Async-signal-safe stop request (callable from a handler). */
    void request_stop();

    ServeStats stats() const;
    FlightCache::Stats cache_stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** `rawcc serve` entry point (flag parsing + signal wiring). */
int serve_main(int argc, char **argv);

} // namespace serve
} // namespace raw

#endif // RAW_SERVE_SERVER_HPP
