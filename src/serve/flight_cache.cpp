#include "serve/flight_cache.hpp"

#include <cstdio>

namespace raw {
namespace serve {

std::string
Digest::hex() const
{
    char buf[36];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(h1),
                  static_cast<unsigned long long>(h2));
    return buf;
}

Digest
digest_bytes(const std::string &s)
{
    // Two FNV-1a streams with independent offset bases; the second
    // also folds in the position so transpositions diverge.
    uint64_t h1 = 14695981039346656037ull;
    uint64_t h2 = 0x9ae16a3b2f90404full;
    uint64_t i = 0;
    for (unsigned char c : s) {
        h1 = (h1 ^ c) * 1099511628211ull;
        h2 = (h2 ^ (c + (++i << 8))) * 1099511628211ull;
    }
    h1 = (h1 ^ s.size()) * 1099511628211ull;
    return Digest{h1, h2};
}

const char *
flight_outcome_name(FlightOutcome o)
{
    switch (o) {
      case FlightOutcome::kHit: return "hit";
      case FlightOutcome::kLeader: return "miss";
      case FlightOutcome::kWaited: return "wait";
      case FlightOutcome::kTimeout: return "wait_timeout";
    }
    return "?";
}

int64_t
approx_output_bytes(const CompileOutput &out)
{
    // Dominant cost is the per-tile instruction streams plus the
    // source kept alive by fn; exact accounting doesn't matter, the
    // estimate only steers LRU eviction.
    int64_t bytes = static_cast<int64_t>(sizeof(CompileOutput));
    for (const auto &tile : out.program.tiles)
        bytes += static_cast<int64_t>(tile.code.size()) * 96;
    for (const auto &sw : out.program.switches)
        bytes += static_cast<int64_t>(sw.code.size()) * 48;
    bytes += static_cast<int64_t>(out.fn.blocks.size()) * 256;
    return bytes;
}

FlightCache::FlightCache(size_t max_entries, int64_t max_bytes)
    : max_entries_(max_entries ? max_entries : 1),
      max_bytes_(max_bytes > 0 ? max_bytes : (1 << 20))
{
}

void
FlightCache::touch_locked(Entry &e, const Digest &key)
{
    (void)key;
    lru_.splice(lru_.begin(), lru_, e.lru_it);
}

void
FlightCache::insert_locked(const Digest &key, const Value &v)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        // A racing leader already published; keep the existing entry.
        touch_locked(it->second, key);
        return;
    }
    Entry e;
    e.value = v;
    e.bytes = approx_output_bytes(*v);
    lru_.push_front(key);
    e.lru_it = lru_.begin();
    stats_.bytes += e.bytes;
    map_.emplace(key, std::move(e));
    stats_.entries = static_cast<int64_t>(map_.size());
    // Evict cold entries until both caps hold (never the one just
    // inserted — it is at the LRU head).
    while (map_.size() > 1 &&
           (map_.size() > max_entries_ || stats_.bytes > max_bytes_)) {
        const Digest victim = lru_.back();
        auto vit = map_.find(victim);
        stats_.bytes -= vit->second.bytes;
        lru_.pop_back();
        map_.erase(vit);
        stats_.evictions++;
    }
    stats_.entries = static_cast<int64_t>(map_.size());
}

FlightCache::Value
FlightCache::peek(const Digest &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end())
        return nullptr;
    touch_locked(it->second, key);
    return it->second.value;
}

FlightCache::Value
FlightCache::get_or_compute(
    const Digest &key, const Compute &compute,
    std::chrono::steady_clock::time_point deadline,
    FlightOutcome &outcome)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        auto it = map_.find(key);
        if (it != map_.end()) {
            stats_.hits++;
            touch_locked(it->second, key);
            outcome = FlightOutcome::kHit;
            return it->second.value;
        }

        auto fit = flights_.find(key);
        if (fit == flights_.end()) {
            // No flight in progress: this caller is the leader.
            auto fl = std::make_shared<Flight>();
            flights_.emplace(key, fl);
            stats_.misses++;
            lock.unlock();

            Value v;
            try {
                v = compute();
            } catch (...) {
                // Leader failed.  The error is NOT cached: tear the
                // flight down, hand leadership off to a waiter (one
                // of them loops back and retries), and rethrow to
                // this caller only.
                lock.lock();
                stats_.leader_failures++;
                flights_.erase(key);
                fl->failed = true;
                fl->done = true;
                lock.unlock();
                fl->cv.notify_all();
                throw;
            }

            lock.lock();
            stats_.compiles++;
            if (v)
                insert_locked(key, v);
            flights_.erase(key);
            fl->value = v;
            fl->done = true;
            lock.unlock();
            fl->cv.notify_all();
            outcome = FlightOutcome::kLeader;
            return v;
        }

        // Flight in progress: wait for the leader (bounded by the
        // caller's deadline; the flight itself keeps running).
        auto fl = fit->second;
        bool finished = fl->cv.wait_until(
            lock, deadline, [&] { return fl->done; });
        if (!finished) {
            stats_.wait_timeouts++;
            outcome = FlightOutcome::kTimeout;
            return nullptr;
        }
        if (fl->failed) {
            // Leader threw; this waiter retries from the top.  The
            // flights_ entry is already gone, so exactly one waiter
            // wins the race to become the new leader — the rest
            // re-queue behind the fresh flight.
            stats_.retries++;
            continue;
        }
        stats_.waits++;
        outcome = FlightOutcome::kWaited;
        return fl->value;
    }
}

FlightCache::Stats
FlightCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
FlightCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    stats_.entries = 0;
    stats_.bytes = 0;
}

} // namespace serve
} // namespace raw
