#ifndef RAW_SERVE_FLIGHT_CACHE_HPP
#define RAW_SERVE_FLIGHT_CACHE_HPP

/**
 * @file
 * Concurrent shared LRU of whole-request compile results with
 * single-flight deduplication.
 *
 * This promotes the block-level content-addressed schedule cache
 * (rawcc/schedcache.hpp) to request granularity for the serve
 * daemon: the key is a 128-bit digest of (source, machine, options
 * fingerprint), the value the finished CompileOutput.  The two tiers
 * compose — a FlightCache miss still reuses every unchanged block
 * through the SchedCache underneath.
 *
 * Single-flight: when N identical requests are in flight at once,
 * exactly one (the *leader*) runs the compile; the other N−1 wait on
 * the flight and share the leader's result.  Failure handoff: if the
 * leader throws, the error is NOT cached — the leader's own caller
 * sees the exception, and exactly one waiter is promoted to a fresh
 * leader and retries (transient failures — OOM, a disk-tier hiccup —
 * must not fan one error out to N clients).  A waiter whose deadline
 * expires before the leader finishes gets a kTimeout outcome; the
 * flight itself keeps running and still populates the cache.
 *
 * Eviction is LRU by entries and approximate bytes.  All methods are
 * thread-safe; one mutex guards the maps (operations are pointer
 * swaps and list splices — the compile itself runs unlocked).
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "rawcc/compiler.hpp"

namespace raw {
namespace serve {

/** 128-bit content digest (two independent FNV-1a streams). */
struct Digest
{
    uint64_t h1 = 0;
    uint64_t h2 = 0;
    bool operator==(const Digest &o) const
    {
        return h1 == o.h1 && h2 == o.h2;
    }
    /** "h1h2" as 32 hex digits (protocol replies, log lines). */
    std::string hex() const;
};

struct DigestHasher
{
    size_t operator()(const Digest &d) const
    {
        return static_cast<size_t>(d.h1 ^ (d.h2 >> 1));
    }
};

/** Digest of a byte string (FNV-1a x2, independent bases). */
Digest digest_bytes(const std::string &s);

/** How a get_or_compute call was served. */
enum class FlightOutcome : uint8_t {
    kHit,     ///< already cached
    kLeader,  ///< this caller ran the compile
    kWaited,  ///< shared a concurrent leader's result
    kTimeout, ///< deadline expired while waiting on the leader
};

const char *flight_outcome_name(FlightOutcome o);

class FlightCache
{
  public:
    using Value = std::shared_ptr<const CompileOutput>;
    using Compute = std::function<Value()>;

    struct Stats
    {
        int64_t hits = 0;
        int64_t misses = 0; ///< leader compiles started
        int64_t compiles = 0; ///< leader compiles succeeded
        int64_t waits = 0; ///< calls served by waiting on a leader
        int64_t wait_timeouts = 0;
        int64_t leader_failures = 0;
        int64_t retries = 0; ///< waiters promoted after a failure
        int64_t evictions = 0;
        int64_t entries = 0; ///< current
        int64_t bytes = 0;   ///< current (approximate)
    };

    FlightCache(size_t max_entries, int64_t max_bytes);

    /**
     * Return the cached value for @p key, or run @p compute under
     * single-flight and cache its result.  Blocks at most until
     * @p deadline when another caller holds the flight; returns
     * nullptr with outcome kTimeout in that case.  Rethrows
     * compute's exception to the caller that ran it (leader or
     * promoted waiter); other waiters retry or time out.
     */
    Value get_or_compute(const Digest &key, const Compute &compute,
                         std::chrono::steady_clock::time_point deadline,
                         FlightOutcome &outcome);

    /** Cache lookup only (no flight, no blocking). */
    Value peek(const Digest &key);

    Stats stats() const;
    void clear();

  private:
    struct Flight
    {
        std::condition_variable cv;
        bool done = false;
        bool failed = false;
        Value value;
    };

    struct Entry
    {
        Value value;
        int64_t bytes = 0;
        std::list<Digest>::iterator lru_it;
    };

    void touch_locked(Entry &e, const Digest &key);
    void insert_locked(const Digest &key, const Value &v);

    mutable std::mutex mu_;
    std::unordered_map<Digest, Entry, DigestHasher> map_;
    std::unordered_map<Digest, std::shared_ptr<Flight>, DigestHasher>
        flights_;
    /** Most-recent first. */
    std::list<Digest> lru_;
    const size_t max_entries_;
    const int64_t max_bytes_;
    Stats stats_;
};

/** Approximate resident size of a compile result (LRU accounting). */
int64_t approx_output_bytes(const CompileOutput &out);

} // namespace serve
} // namespace raw

#endif // RAW_SERVE_FLIGHT_CACHE_HPP
