#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "support/error.hpp"

namespace raw {
namespace serve {

using Clock = std::chrono::steady_clock;

ServeClient::~ServeClient() { close(); }

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

void
ServeClient::connect(const std::string &endpoint)
{
    close();
    int fd = -1;
    if (endpoint.rfind("unix:", 0) == 0) {
        std::string path = endpoint.substr(5);
        sockaddr_un addr;
        std::memset(&addr, 0, sizeof addr);
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof addr.sun_path)
            throw FatalError("socket path too long: " + path);
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof addr.sun_path - 1);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            throw FatalError("socket(): " +
                             std::string(std::strerror(errno)));
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            int e = errno;
            ::close(fd);
            throw FatalError("connect(" + path +
                             "): " + std::strerror(e));
        }
    } else if (endpoint.rfind("tcp:", 0) == 0) {
        std::string hostport = endpoint.substr(4);
        size_t colon = hostport.rfind(':');
        if (colon == std::string::npos)
            throw FatalError("bad tcp endpoint: " + endpoint);
        std::string host = hostport.substr(0, colon);
        int port = std::atoi(hostport.c_str() + colon + 1);
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof addr);
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
            throw FatalError("bad tcp host: " + host);
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            throw FatalError("socket(): " +
                             std::string(std::strerror(errno)));
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            int e = errno;
            ::close(fd);
            throw FatalError("connect(" + hostport +
                             "): " + std::strerror(e));
        }
    } else {
        throw FatalError("endpoint must be unix:PATH or "
                         "tcp:HOST:PORT, got " +
                         endpoint);
    }
    fd_ = fd;
}

void
ServeClient::send_line(const std::string &line)
{
    if (fd_ < 0)
        throw FatalError("not connected");
    std::string out = line;
    out.push_back('\n');
    size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::send(fd_, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            throw FatalError("send(): " +
                             std::string(std::strerror(errno)));
        }
        off += static_cast<size_t>(n);
    }
}

bool
ServeClient::recv_line(std::string &out, int64_t timeout_ms)
{
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        if (timeout_ms > 0) {
            auto left = std::chrono::duration_cast<
                            std::chrono::milliseconds>(deadline -
                                                       Clock::now())
                            .count();
            if (left <= 0)
                throw FatalError("timed out waiting for reply");
            pollfd pfd{fd_, POLLIN, 0};
            int rc = ::poll(&pfd, 1, static_cast<int>(left));
            if (rc < 0 && errno != EINTR)
                throw FatalError("poll(): " +
                                 std::string(std::strerror(errno)));
            if (rc == 0)
                throw FatalError("timed out waiting for reply");
        }
        char chunk[16384];
        ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        buf_.append(chunk, static_cast<size_t>(n));
    }
}

Json
ServeClient::request(const std::string &line, int64_t timeout_ms)
{
    send_line(line);
    std::string reply;
    if (!recv_line(reply, timeout_ms))
        throw FatalError("connection closed before reply");
    Json j;
    std::string err;
    if (!json_parse(reply, j, err))
        throw FatalError("bad reply JSON (" + err + "): " + reply);
    return j;
}

// ---------------------------------------------------------------
// ServeDaemon
// ---------------------------------------------------------------

ServeDaemon::~ServeDaemon()
{
    if (pid_ > 0) {
        ::kill(pid_, SIGKILL);
        int status;
        ::waitpid(pid_, &status, 0);
    }
    if (stdout_fd_ >= 0)
        ::close(stdout_fd_);
}

void
ServeDaemon::start(const std::string &rawcc_bin,
                   const std::vector<std::string> &args,
                   int64_t start_timeout_ms)
{
    int pipefd[2];
    if (::pipe(pipefd) != 0)
        throw FatalError("pipe(): " +
                         std::string(std::strerror(errno)));
    int pid = ::fork();
    if (pid < 0)
        throw FatalError("fork(): " +
                         std::string(std::strerror(errno)));
    if (pid == 0) {
        ::close(pipefd[0]);
        ::dup2(pipefd[1], STDOUT_FILENO);
        ::close(pipefd[1]);
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(rawcc_bin.c_str()));
        static const char *kServe = "serve";
        argv.push_back(const_cast<char *>(kServe));
        for (const auto &a : args)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        ::execv(rawcc_bin.c_str(), argv.data());
        std::perror("execv");
        ::_exit(127);
    }
    ::close(pipefd[1]);
    pid_ = pid;
    stdout_fd_ = pipefd[0];

    // Wait for the readiness line: "listening on <endpoint> ...".
    std::string buf;
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(start_timeout_ms);
    for (;;) {
        size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf.substr(0, nl);
            size_t at = line.find("listening on ");
            if (at != std::string::npos) {
                std::string rest = line.substr(at + 13);
                size_t sp = rest.find(' ');
                endpoint_ = sp == std::string::npos
                                ? rest
                                : rest.substr(0, sp);
                return;
            }
            buf.erase(0, nl + 1);
            continue;
        }
        auto left = std::chrono::duration_cast<
                        std::chrono::milliseconds>(deadline -
                                                   Clock::now())
                        .count();
        if (left <= 0)
            throw FatalError("daemon did not become ready in time");
        pollfd pfd{stdout_fd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, static_cast<int>(left));
        if (rc <= 0)
            throw FatalError("daemon did not become ready in time");
        char chunk[4096];
        ssize_t n = ::read(stdout_fd_, chunk, sizeof chunk);
        if (n <= 0)
            throw FatalError(
                "daemon exited before becoming ready");
        buf.append(chunk, static_cast<size_t>(n));
    }
}

void
ServeDaemon::kill_with(int signo)
{
    if (pid_ > 0)
        ::kill(pid_, signo);
}

int
ServeDaemon::stop(int64_t wait_timeout_ms)
{
    if (pid_ <= 0)
        return -1;
    ::kill(pid_, SIGTERM);
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(wait_timeout_ms);
    int status = 0;
    for (;;) {
        int rc = ::waitpid(pid_, &status, WNOHANG);
        if (rc == pid_)
            break;
        if (rc < 0) {
            pid_ = -1;
            return -1;
        }
        if (Clock::now() >= deadline) {
            ::kill(pid_, SIGKILL);
            ::waitpid(pid_, &status, 0);
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    pid_ = -1;
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return -1;
}

} // namespace serve
} // namespace raw
