#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>
#include <unordered_set>

#include "harness/cli.hpp"
#include "programs/programs.hpp"
#include "rawcc/compiler.hpp"
#include "serve/json.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace raw {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
ms_between(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** One client connection; writes are serialized by wmu. */
struct Conn
{
    int fd = -1;
    std::mutex wmu;
    std::atomic<bool> open{true};

    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }

    /** Write one protocol line; false (and closed) on error. */
    bool
    send_line(const std::string &body)
    {
        std::string line = body;
        line.push_back('\n');
        std::lock_guard<std::mutex> lock(wmu);
        if (!open.load())
            return false;
        size_t off = 0;
        while (off < line.size()) {
            ssize_t n = ::send(fd, line.data() + off,
                               line.size() - off, MSG_NOSIGNAL);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                open.store(false);
                return false;
            }
            off += static_cast<size_t>(n);
        }
        return true;
    }
};

/**
 * One admitted request.  The `replied` flag is the reply race: the
 * worker (success/error), the reaper (deadline) and the drain path
 * (cancellation) all try to claim it; exactly one wins, so the client
 * gets exactly one reply per request.
 */
struct Pending
{
    std::shared_ptr<Conn> conn;
    uint64_t seq = 0;          ///< server-assigned, for logs
    std::string client_id;     ///< echoed "id" field, may be empty
    std::string op;
    Json body;
    Clock::time_point arrival{};
    Clock::time_point deadline{};
    std::atomic<bool> replied{false};

    /** Claim the reply slot; true if this caller won. */
    bool claim() { return !replied.exchange(true); }
};

using PendingPtr = std::shared_ptr<Pending>;

} // namespace

// ---------------------------------------------------------------
// Impl
// ---------------------------------------------------------------

struct ServeServer::Impl
{
    ServeOptions opts;
    AdmissionQueue<PendingPtr> queue;
    FlightCache cache;

    int listen_fd = -1;
    int wake_rd = -1, wake_wr = -1;
    std::atomic<bool> draining{false};
    std::atomic<bool> reaper_stop{false};
    std::atomic<bool> drain_done{false};
    Clock::time_point started = Clock::now();
    std::atomic<uint64_t> next_seq{1};

    std::vector<std::thread> workers;
    std::thread reaper;
    std::vector<std::thread> conn_threads;
    std::mutex conns_mu;
    std::vector<std::shared_ptr<Conn>> conns;

    std::mutex pending_mu;
    std::vector<PendingPtr> pending;

    mutable std::mutex stats_mu;
    ServeStats st;

    explicit Impl(const ServeOptions &o)
        : opts(o),
          queue(static_cast<size_t>(std::max(1, o.queue_depth))),
          cache(static_cast<size_t>(std::max(1, o.cache_entries)),
                o.cache_bytes)
    {
    }

    // -- logging ------------------------------------------------

    void
    logf(const char *fmt, ...)
    {
        char buf[512];
        va_list ap;
        va_start(ap, fmt);
        std::vsnprintf(buf, sizeof buf, fmt, ap);
        va_end(ap);
        std::fprintf(stderr, "[serve] %s\n", buf);
    }

    void
    log_req(const Pending &p, const char *what)
    {
        if (opts.verbose)
            logf("req=%llu op=%s %s",
                 static_cast<unsigned long long>(p.seq),
                 p.op.c_str(), what);
    }

    // -- replies ------------------------------------------------

    JsonBuilder
    reply_head(const Pending &p)
    {
        JsonBuilder b;
        if (!p.client_id.empty())
            b.kv("id", p.client_id);
        b.kv("req", static_cast<int64_t>(p.seq));
        b.kv("op", p.op);
        return b;
    }

    /** Structured error reply; returns true if this caller won. */
    bool
    reply_error(Pending &p, const char *kind, const std::string &msg)
    {
        if (!p.claim())
            return false;
        JsonBuilder b = reply_head(p);
        b.kv("ok", false).kv("error", kind).kv("message", msg);
        p.conn->send_line(b.str());
        if (opts.verbose)
            logf("req=%llu op=%s error=%s %s",
                 static_cast<unsigned long long>(p.seq),
                 p.op.c_str(), kind, msg.c_str());
        return true;
    }

    void
    count(int64_t ServeStats::*field, int64_t by = 1)
    {
        std::lock_guard<std::mutex> lock(stats_mu);
        st.*field += by;
    }

    // -- request parsing ----------------------------------------

    /** Resolve the deadline of @p body (clamped to the max). */
    Clock::time_point
    request_deadline(const Json &body, Clock::time_point arrival)
    {
        int64_t ms = body.int_or("timeout_ms", opts.default_timeout_ms);
        if (ms <= 0)
            ms = opts.default_timeout_ms;
        ms = std::min(ms, opts.max_timeout_ms);
        return arrival + std::chrono::milliseconds(ms);
    }

    /**
     * Source text of a compile/simulate request: inline "source" or
     * a built-in "bench" name.  Throws FatalError on bad requests.
     */
    static std::string
    request_source(const Json &body)
    {
        const Json *src = body.find("source");
        if (src && src->is_string() && !src->string.empty())
            return src->string;
        std::string bench = body.str_or("bench", "");
        if (!bench.empty())
            return benchmark(bench).source; // fatal if unknown
        throw FatalError("request needs \"source\" or \"bench\"");
    }

    static MachineConfig
    request_machine(const Json &body)
    {
        int64_t tiles = body.int_or("tiles", 4);
        if (tiles < 1 || tiles > 64)
            throw FatalError("\"tiles\" must be in [1, 64]");
        std::string kind = body.str_or("machine", "base");
        int n = static_cast<int>(tiles);
        if (kind == "base")
            return MachineConfig::base(n);
        if (kind == "inf_reg")
            return MachineConfig::inf_reg(n);
        if (kind == "one_cycle")
            return MachineConfig::one_cycle(n);
        throw FatalError("unknown \"machine\": " + kind);
    }

    CompilerOptions
    request_options(const Json &body)
    {
        CompilerOptions copts;
        // Per-request concurrency comes from the worker pool, not
        // from per-compile fan-out.
        copts.orch.jobs = 1;
        copts.orch.use_cache = true;
        copts.orch.cache_dir = opts.cache_dir;
        const Json *o = body.find("options");
        if (!o)
            return copts;
        if (!o->is_object())
            throw FatalError("\"options\" must be an object");
        copts.pgo = o->bool_or("pgo", false);
        copts.smart_homes = o->bool_or("smart_homes", false);
        copts.verify_ir = o->bool_or("verify_ir", true);
        int64_t iters = o->int_or("sched_iters", 0);
        if (iters < 0 || iters > 64)
            throw FatalError("\"sched_iters\" must be in [0, 64]");
        copts.orch.sched.sched_iters = static_cast<int>(iters);
        copts.orch.sched.route_select =
            o->bool_or("route_select", false);
        return copts;
    }

    static Digest
    request_digest(const std::string &source, const MachineConfig &m,
                   const CompilerOptions &copts)
    {
        std::string key;
        key.reserve(source.size() + 64);
        key += source;
        key.push_back('\0');
        key += m.name();
        key.push_back('/');
        key += std::to_string(m.num_registers);
        key.push_back('/');
        key += m.unit_latency ? '1' : '0';
        key.push_back('\0');
        key += options_fingerprint(copts);
        return digest_bytes(key);
    }

    // -- ops ----------------------------------------------------

    /** Compile through the single-flight cache; shared by ops. */
    FlightCache::Value
    cached_compile(Pending &p, const std::string &source,
                   const MachineConfig &machine,
                   const CompilerOptions &copts, Digest &key,
                   FlightOutcome &outcome)
    {
        key = request_digest(source, machine, copts);
        return cache.get_or_compute(
            key,
            [&]() -> FlightCache::Value {
                log_req(p, "compiling");
                return std::make_shared<const CompileOutput>(
                    compile_source(source, machine, copts));
            },
            p.deadline, outcome);
    }

    void
    do_compile(Pending &p)
    {
        std::string source = request_source(p.body);
        MachineConfig machine = request_machine(p.body);
        CompilerOptions copts = request_options(p.body);
        Digest key;
        FlightOutcome outcome;
        Clock::time_point t0 = Clock::now();
        FlightCache::Value out =
            cached_compile(p, source, machine, copts, key, outcome);
        if (!out) {
            if (reply_error(p, "timeout",
                            "deadline expired waiting for an "
                            "in-flight identical compile"))
                count(&ServeStats::timeouts);
            return;
        }
        if (!p.claim()) {
            count(&ServeStats::detached);
            return;
        }
        JsonBuilder b = reply_head(p);
        b.kv("ok", true)
            .kv("digest", key.hex())
            .kv("cache", flight_outcome_name(outcome))
            .kv("tiles", machine.n_tiles)
            .kv("static_instrs", out->stats.static_instrs)
            .kv("ir_instrs", out->stats.ir_instrs)
            .kv("est_makespan", out->stats.estimated_makespan())
            .kv("queue_ms", ms_between(p.arrival, t0))
            .kv("run_ms", ms_between(t0, Clock::now()));
        p.conn->send_line(b.str());
        count(&ServeStats::completed);
    }

    static FaultConfig
    request_faults(const Json &body)
    {
        FaultConfig f;
        const Json *o = body.find("faults");
        if (!o)
            return f;
        if (!o->is_object())
            throw FatalError("\"faults\" must be an object");
        f.miss_rate = o->num_or("miss_rate", 0.0);
        f.penalty = static_cast<int>(o->int_or("penalty", f.penalty));
        f.seed = static_cast<uint64_t>(o->int_or("seed", 0));
        f.route_stall_rate = o->num_or("route_stall_rate", 0.0);
        f.dyn_delay_rate = o->num_or("dyn_delay_rate", 0.0);
        f.jitter_rate = o->num_or("jitter_rate", 0.0);
        const double rates[] = {f.miss_rate, f.route_stall_rate,
                                f.dyn_delay_rate, f.jitter_rate};
        for (double r : rates)
            if (r < 0.0 || r > 1.0)
                throw FatalError("fault rates must be in [0, 1]");
        return f;
    }

    static CheckConfig
    request_checks(const Json &body)
    {
        CheckConfig c;
        const Json *o = body.find("checks");
        if (!o)
            return c;
        if (!o->is_object())
            throw FatalError("\"checks\" must be an object");
        c.provenance = o->bool_or("provenance", false);
        c.fifo_bounds = o->bool_or("fifo_bounds", false);
        return c;
    }

    void
    do_simulate(Pending &p)
    {
        std::string source = request_source(p.body);
        MachineConfig machine = request_machine(p.body);
        CompilerOptions copts = request_options(p.body);
        FaultConfig faults = request_faults(p.body);
        CheckConfig checks = request_checks(p.body);
        SimBackend backend = sim_backend_from_string(
            p.body.str_or("backend", "reference"));
        int64_t max_cycles =
            p.body.int_or("max_cycles", 2000000000LL);
        if (max_cycles < 1)
            throw FatalError("\"max_cycles\" must be positive");

        Digest key;
        FlightOutcome outcome;
        Clock::time_point t0 = Clock::now();
        FlightCache::Value out =
            cached_compile(p, source, machine, copts, key, outcome);
        if (!out) {
            if (reply_error(p, "timeout",
                            "deadline expired waiting for an "
                            "in-flight identical compile"))
                count(&ServeStats::timeouts);
            return;
        }

        // The simulation honors the request deadline from the
        // inside: the sim polls the wall clock and throws
        // SimTimeoutError, which the firewall below turns into a
        // structured timeout reply.
        Simulator sim(out->program, faults, checks, backend);
        sim.set_wall_deadline(p.deadline);
        Clock::time_point t1 = Clock::now();
        SimResult r = sim.run(max_cycles);

        if (!p.claim()) {
            count(&ServeStats::detached);
            return;
        }
        char prov[24];
        std::snprintf(prov, sizeof prov, "%016llx",
                      static_cast<unsigned long long>(r.prov_hash));
        JsonBuilder b = reply_head(p);
        b.kv("ok", true)
            .kv("digest", key.hex())
            .kv("cache", flight_outcome_name(outcome))
            .kv("backend", sim_backend_name(backend))
            .kv("cycles", r.cycles)
            .kv("instrs", r.instrs_executed)
            .kv("words_routed", r.words_routed)
            .kv("dyn_messages", r.dyn_messages)
            .kv("prints", static_cast<int64_t>(r.prints.size()))
            .kv("check_failures", r.check_failure_count)
            .kv("prov_hash", prov)
            .kv("queue_ms", ms_between(p.arrival, t0))
            .kv("compile_ms", ms_between(t0, t1))
            .kv("sim_ms", ms_between(t1, Clock::now()));
        p.conn->send_line(b.str());
        count(&ServeStats::completed);
    }

    /** Debug op: hold a worker for N ms (deterministic overload). */
    void
    do_stall(Pending &p)
    {
        int64_t ms = p.body.int_or("ms", 100);
        if (ms < 0 || ms > 60000)
            throw FatalError("\"ms\" must be in [0, 60000]");
        // The stall is measured from execution start (not arrival):
        // the point of the op is to hold a *worker* for ms.
        Clock::time_point until =
            Clock::now() + std::chrono::milliseconds(ms);
        while (Clock::now() < until) {
            if (Clock::now() >= p.deadline) {
                if (reply_error(p, "timeout", "stall hit deadline"))
                    count(&ServeStats::timeouts);
                return;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        if (!p.claim()) {
            count(&ServeStats::detached);
            return;
        }
        JsonBuilder b = reply_head(p);
        b.kv("ok", true).kv("stalled_ms", ms);
        p.conn->send_line(b.str());
        count(&ServeStats::completed);
    }

    // -- worker loop + exception firewall -----------------------

    void
    worker_loop()
    {
        PendingPtr p;
        while (queue.pop(p)) {
            run_one(*p);
            p.reset();
        }
    }

    void
    run_one(Pending &p)
    {
        if (p.replied.load()) {
            // Reaper (queue timeout) or drain cancelled it while it
            // sat in the queue; nothing left to do.
            return;
        }
        if (Clock::now() >= p.deadline) {
            if (reply_error(p, "timeout", "deadline expired in queue"))
                count(&ServeStats::timeouts);
            return;
        }
        // Exception firewall: nothing a request does may kill the
        // daemon.  Every failure mode maps to one taxonomy kind.
        try {
            if (p.op == "compile")
                do_compile(p);
            else if (p.op == "simulate")
                do_simulate(p);
            else
                do_stall(p);
        } catch (const SimTimeoutError &e) {
            if (reply_error(p, "timeout", e.what()))
                count(&ServeStats::timeouts);
        } catch (const DeadlockError &e) {
            if (reply_error(p, "sim_error", e.what()))
                count(&ServeStats::sim_errors);
        } catch (const FatalError &e) {
            const char *kind =
                p.op == "simulate" ? "sim_error" : "compile_error";
            if (reply_error(p, kind, e.what())) {
                if (p.op == "simulate")
                    count(&ServeStats::sim_errors);
                else
                    count(&ServeStats::compile_errors);
            }
        } catch (const std::exception &e) {
            if (reply_error(p, "internal", e.what()))
                count(&ServeStats::internal_errors);
        } catch (...) {
            if (reply_error(p, "internal", "unknown exception"))
                count(&ServeStats::internal_errors);
        }
    }

    // -- reaper -------------------------------------------------

    void
    reaper_loop()
    {
        while (!reaper_stop.load()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            Clock::time_point now = Clock::now();
            std::vector<PendingPtr> expired;
            {
                std::lock_guard<std::mutex> lock(pending_mu);
                auto keep = pending.begin();
                for (auto &p : pending) {
                    if (p->replied.load())
                        continue; // drop
                    if (now >= p->deadline)
                        expired.push_back(p);
                    *keep++ = p;
                }
                pending.erase(keep, pending.end());
            }
            for (auto &p : expired) {
                // The worker may finish concurrently; the claim
                // race decides.  A compile keeps running after this
                // reply and still populates the cache — the worker
                // is reclaimed when it finishes, not abandoned.
                if (reply_error(*p, "timeout",
                                "deadline expired during execution"))
                    count(&ServeStats::timeouts);
            }
        }
    }

    // -- per-connection protocol loop ---------------------------

    std::string
    stats_line(const Pending &p)
    {
        ServeStats s;
        {
            std::lock_guard<std::mutex> lock(stats_mu);
            s = st;
        }
        FlightCache::Stats cs = cache.stats();
        JsonBuilder c;
        c.kv("hits", cs.hits)
            .kv("misses", cs.misses)
            .kv("compiles", cs.compiles)
            .kv("waits", cs.waits)
            .kv("wait_timeouts", cs.wait_timeouts)
            .kv("leader_failures", cs.leader_failures)
            .kv("retries", cs.retries)
            .kv("evictions", cs.evictions)
            .kv("entries", cs.entries)
            .kv("bytes", cs.bytes);
        JsonBuilder b;
        if (!p.client_id.empty())
            b.kv("id", p.client_id);
        b.kv("req", static_cast<int64_t>(p.seq))
            .kv("op", "stats")
            .kv("ok", true)
            .kv("uptime_ms", ms_between(started, Clock::now()))
            .kv("connections", s.connections)
            .kv("requests", s.requests)
            .kv("admitted", s.admitted)
            .kv("completed", s.completed)
            .kv("shed", s.shed)
            .kv("timeouts", s.timeouts)
            .kv("bad_requests", s.bad_requests)
            .kv("compile_errors", s.compile_errors)
            .kv("sim_errors", s.sim_errors)
            .kv("internal_errors", s.internal_errors)
            .kv("cancelled", s.cancelled)
            .kv("detached", s.detached)
            .kv("queue_depth", static_cast<int64_t>(queue.size()))
            .kv("queue_cap", static_cast<int64_t>(queue.depth()))
            .kv("workers", opts.workers)
            .kv("draining", draining.load())
            .raw("cache", c.str());
        return b.str();
    }

    void
    handle_line(const std::shared_ptr<Conn> &conn,
                const std::string &line)
    {
        count(&ServeStats::requests);
        auto p = std::make_shared<Pending>();
        p->conn = conn;
        p->seq = next_seq.fetch_add(1);
        p->arrival = Clock::now();

        Json body;
        std::string err;
        if (!json_parse(line, body, err) || !body.is_object()) {
            p->op = "?";
            if (err.empty())
                err = "request must be a JSON object";
            if (reply_error(*p, "bad_request", err))
                count(&ServeStats::bad_requests);
            return;
        }
        p->body = std::move(body);
        p->client_id = p->body.str_or("id", "");
        p->op = p->body.str_or("op", "");
        p->deadline = request_deadline(p->body, p->arrival);
        log_req(*p, "received");

        if (p->op == "ping") {
            if (p->claim()) {
                JsonBuilder b = reply_head(*p);
                b.kv("ok", true);
                conn->send_line(b.str());
            }
            return;
        }
        if (p->op == "stats") {
            if (p->claim())
                conn->send_line(stats_line(*p));
            return;
        }
        if (p->op != "compile" && p->op != "simulate" &&
            p->op != "stall") {
            if (reply_error(*p, "bad_request",
                            "unknown op: " +
                                (p->op.empty() ? "(missing)"
                                               : p->op)))
                count(&ServeStats::bad_requests);
            return;
        }

        // Admission decision, synchronously at the front door.
        if (!queue.try_push(p)) {
            if (draining.load()) {
                if (reply_error(*p, "shutting_down",
                                "daemon is draining"))
                    count(&ServeStats::cancelled);
            } else {
                if (reply_error(
                        *p, "overloaded",
                        "queue full (depth " +
                            std::to_string(queue.depth()) +
                            "); retry with backoff"))
                    count(&ServeStats::shed);
            }
            return;
        }
        count(&ServeStats::admitted);
        std::lock_guard<std::mutex> lock(pending_mu);
        pending.push_back(std::move(p));
    }

    void
    conn_loop(std::shared_ptr<Conn> conn)
    {
        std::string buf;
        char chunk[16384];
        for (;;) {
            ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                break;
            buf.append(chunk, static_cast<size_t>(n));
            size_t start = 0;
            for (;;) {
                size_t nl = buf.find('\n', start);
                if (nl == std::string::npos)
                    break;
                std::string line =
                    buf.substr(start, nl - start);
                start = nl + 1;
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                if (!line.empty())
                    handle_line(conn, line);
            }
            buf.erase(0, start);
            if (buf.size() > opts.max_line_bytes) {
                // Hostile input bound: a line that long is not a
                // protocol request.  Reply once and hang up.
                JsonBuilder b;
                b.kv("ok", false)
                    .kv("error", "bad_request")
                    .kv("message",
                        "request line exceeds " +
                            std::to_string(opts.max_line_bytes) +
                            " bytes");
                conn->send_line(b.str());
                count(&ServeStats::bad_requests);
                break;
            }
        }
        conn->open.store(false);
        ::shutdown(conn->fd, SHUT_RDWR);
    }

    // -- listener -----------------------------------------------

    int
    bind_and_listen(std::string &where)
    {
        int fd = -1;
        if (!opts.socket_path.empty()) {
            sockaddr_un addr;
            std::memset(&addr, 0, sizeof addr);
            addr.sun_family = AF_UNIX;
            if (opts.socket_path.size() >= sizeof addr.sun_path)
                throw FatalError("socket path too long: " +
                                 opts.socket_path);
            std::strncpy(addr.sun_path, opts.socket_path.c_str(),
                         sizeof addr.sun_path - 1);
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0)
                throw FatalError("socket(): " +
                                 std::string(std::strerror(errno)));
            ::unlink(opts.socket_path.c_str());
            if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr) != 0) {
                int e = errno;
                ::close(fd);
                throw FatalError("bind(" + opts.socket_path +
                                 "): " + std::strerror(e));
            }
            where = "unix:" + opts.socket_path;
        } else {
            fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd < 0)
                throw FatalError("socket(): " +
                                 std::string(std::strerror(errno)));
            int one = 1;
            ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof one);
            sockaddr_in addr;
            std::memset(&addr, 0, sizeof addr);
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            addr.sin_port =
                htons(static_cast<uint16_t>(opts.port));
            if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr) != 0) {
                int e = errno;
                ::close(fd);
                throw FatalError("bind(127.0.0.1:" +
                                 std::to_string(opts.port) +
                                 "): " + std::strerror(e));
            }
            socklen_t len = sizeof addr;
            ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                          &len);
            where = "tcp:127.0.0.1:" +
                    std::to_string(ntohs(addr.sin_port));
        }
        if (::listen(fd, 64) != 0) {
            int e = errno;
            ::close(fd);
            throw FatalError("listen(): " +
                             std::string(std::strerror(e)));
        }
        return fd;
    }

    void
    accept_one()
    {
        int cfd = ::accept(listen_fd, nullptr, nullptr);
        if (cfd < 0)
            return;
        // Bound a stuck client's damage: writes give up after 5s.
        timeval tv{5, 0};
        ::setsockopt(cfd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

        size_t active;
        {
            std::lock_guard<std::mutex> lock(conns_mu);
            conns.erase(
                std::remove_if(conns.begin(), conns.end(),
                               [](const std::shared_ptr<Conn> &c) {
                                   return !c->open.load();
                               }),
                conns.end());
            active = conns.size();
        }
        if (active >= static_cast<size_t>(opts.max_conns)) {
            JsonBuilder b;
            b.kv("ok", false)
                .kv("error", "overloaded")
                .kv("message",
                    "connection limit (" +
                        std::to_string(opts.max_conns) +
                        ") reached");
            std::string line = b.str();
            line.push_back('\n');
            (void)!::send(cfd, line.data(), line.size(),
                          MSG_NOSIGNAL);
            ::close(cfd);
            count(&ServeStats::conns_refused);
            return;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = cfd;
        {
            std::lock_guard<std::mutex> lock(conns_mu);
            conns.push_back(conn);
        }
        count(&ServeStats::connections);
        conn_threads.emplace_back(
            [this, conn] { conn_loop(conn); });
    }

    // -- drain --------------------------------------------------

    int
    drain()
    {
        logf("drain: admission closed, %zu queued, draining for "
             "up to %lld ms",
             queue.size(),
             static_cast<long long>(opts.drain_ms));
        draining.store(true);
        queue.close_admission();

        // Anything still queued is cancelled with a structured
        // reply — a drained daemon never ghosts a client.
        PendingPtr p;
        while (queue.try_pop(p)) {
            if (reply_error(*p, "shutting_down",
                            "daemon is draining"))
                count(&ServeStats::cancelled);
        }
        queue.close();

        // Hard backstop: if an in-flight request outlives the drain
        // budget, exit anyway (still 0 — the work owed to clients
        // was already replied-to or cancelled above).
        std::thread watchdog([this] {
            Clock::time_point give_up =
                Clock::now() +
                std::chrono::milliseconds(opts.drain_ms);
            while (Clock::now() < give_up) {
                if (drain_done.load())
                    return;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
            if (!drain_done.load()) {
                logf("drain deadline exceeded; exiting");
                std::fflush(nullptr);
                ::_exit(0);
            }
        });

        for (auto &w : workers)
            w.join();
        reaper_stop.store(true);
        if (reaper.joinable())
            reaper.join();

        // Release connection threads blocked in recv().
        {
            std::lock_guard<std::mutex> lock(conns_mu);
            for (auto &c : conns) {
                c->open.store(false);
                ::shutdown(c->fd, SHUT_RDWR);
            }
        }
        for (auto &t : conn_threads)
            t.join();

        drain_done.store(true);
        watchdog.join();

        FlightCache::Stats cs = cache.stats();
        ServeStats s;
        {
            std::lock_guard<std::mutex> lock(stats_mu);
            s = st;
        }
        // The disk cache tier is write-through with fdatasync before
        // each atomic rename, so there is nothing left to flush —
        // every published entry is already durable.
        logf("exit: %lld completed, %lld shed, %lld timeouts, "
             "%lld cancelled; cache %lld hits / %lld compiles",
             static_cast<long long>(s.completed),
             static_cast<long long>(s.shed),
             static_cast<long long>(s.timeouts),
             static_cast<long long>(s.cancelled),
             static_cast<long long>(cs.hits),
             static_cast<long long>(cs.compiles));
        return 0;
    }

    int
    serve_forever()
    {
        int pipefd[2];
        if (::pipe(pipefd) != 0)
            throw FatalError("pipe(): " +
                             std::string(std::strerror(errno)));
        wake_rd = pipefd[0];
        wake_wr = pipefd[1];

        std::string where;
        listen_fd = bind_and_listen(where);

        int nworkers = std::max(1, opts.workers);
        workers.reserve(static_cast<size_t>(nworkers));
        for (int i = 0; i < nworkers; i++)
            workers.emplace_back([this] { worker_loop(); });
        reaper = std::thread([this] { reaper_loop(); });

        // Readiness line on stdout: clients (and the smoke test)
        // block on this before connecting.
        std::printf("listening on %s workers=%d queue=%d\n",
                    where.c_str(), nworkers, opts.queue_depth);
        std::fflush(stdout);
        logf("up: %s", where.c_str());

        for (;;) {
            pollfd fds[2];
            fds[0] = {listen_fd, POLLIN, 0};
            fds[1] = {wake_rd, POLLIN, 0};
            int rc = ::poll(fds, 2, 200);
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (fds[1].revents & POLLIN)
                break; // signal: drain
            if (fds[0].revents & POLLIN)
                accept_one();
        }

        ::close(listen_fd);
        listen_fd = -1;
        int code = drain();
        if (!opts.socket_path.empty())
            ::unlink(opts.socket_path.c_str());
        ::close(wake_rd);
        ::close(wake_wr);
        return code;
    }
};

// ---------------------------------------------------------------
// ServeServer facade
// ---------------------------------------------------------------

ServeServer::ServeServer(const ServeOptions &opts)
    : impl_(new Impl(opts))
{
}

ServeServer::~ServeServer() = default;

int
ServeServer::serve_forever()
{
    return impl_->serve_forever();
}

void
ServeServer::request_stop()
{
    // Async-signal-safe: one write(2), nothing else.
    if (impl_->wake_wr >= 0) {
        char c = 's';
        (void)!::write(impl_->wake_wr, &c, 1);
    }
}

ServeStats
ServeServer::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->stats_mu);
    return impl_->st;
}

FlightCache::Stats
ServeServer::cache_stats() const
{
    return impl_->cache.stats();
}

// ---------------------------------------------------------------
// serve_main: flags + signals
// ---------------------------------------------------------------

namespace {

ServeServer *g_server = nullptr;

void
on_signal(int)
{
    if (g_server)
        g_server->request_stop();
}

void
serve_usage()
{
    std::fprintf(
        stderr,
        "usage: rawcc serve [options]\n"
        "  --socket PATH      listen on a Unix socket\n"
        "  --port N           listen on 127.0.0.1:N (0 = ephemeral)\n"
        "  --workers N        worker threads (default 2)\n"
        "  --queue-depth N    admission queue depth (default 16)\n"
        "  --cache-entries N  request-cache entries (default 64)\n"
        "  --cache-mb N       request-cache size cap (default 256)\n"
        "  --cache-dir DIR    on-disk block-schedule cache tier\n"
        "  --timeout MS       default per-request deadline\n"
        "  --max-timeout MS   per-request deadline ceiling\n"
        "  --drain MS         drain budget on SIGTERM/SIGINT\n"
        "  --max-conns N      concurrent connection cap\n"
        "  --verbose          log every request to stderr\n"
        "(protocol: docs/serve.md)\n");
}

} // namespace

int
serve_main(int argc, char **argv)
{
    ServeOptions opts;
    bool have_endpoint = false;
    const char *kTool = "rawcc serve";
    for (int i = 0; i < argc; i++) {
        std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             kTool, flag);
                std::exit(2);
            }
            return argv[++i];
        };
        auto num = [&](const char *flag, long lo, long hi,
                       const char *want) -> long {
            return cli::parse_long_in(kTool, next(flag), flag, lo,
                                      hi, want);
        };
        if (a == "--socket") {
            opts.socket_path = next("--socket");
            have_endpoint = true;
        } else if (a == "--port") {
            opts.port = static_cast<int>(
                num("--port", 0, 65535, "a port in [0, 65535]"));
            have_endpoint = true;
        } else if (a == "--workers") {
            opts.workers = static_cast<int>(
                num("--workers", 1, 256, "a count in [1, 256]"));
        } else if (a == "--queue-depth") {
            opts.queue_depth = static_cast<int>(num(
                "--queue-depth", 1, 65536, "a depth in [1, 65536]"));
        } else if (a == "--cache-entries") {
            opts.cache_entries = static_cast<int>(
                num("--cache-entries", 1, 1000000,
                    "a count in [1, 1000000]"));
        } else if (a == "--cache-mb") {
            opts.cache_bytes =
                static_cast<int64_t>(num("--cache-mb", 1, 65536,
                                         "MB in [1, 65536]"))
                << 20;
        } else if (a == "--cache-dir") {
            opts.cache_dir = next("--cache-dir");
        } else if (a == "--timeout") {
            opts.default_timeout_ms =
                num("--timeout", 1, 86400000,
                    "milliseconds in [1, 86400000]");
        } else if (a == "--max-timeout") {
            opts.max_timeout_ms =
                num("--max-timeout", 1, 86400000,
                    "milliseconds in [1, 86400000]");
        } else if (a == "--drain") {
            opts.drain_ms = num("--drain", 1, 86400000,
                                "milliseconds in [1, 86400000]");
        } else if (a == "--max-conns") {
            opts.max_conns = static_cast<int>(num(
                "--max-conns", 1, 4096, "a count in [1, 4096]"));
        } else if (a == "--verbose") {
            opts.verbose = true;
        } else if (a == "--help" || a == "-h") {
            serve_usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
            serve_usage();
            return 2;
        }
    }
    if (!have_endpoint) {
        std::fprintf(
            stderr,
            "rawcc serve: need --socket PATH or --port N\n");
        serve_usage();
        return 2;
    }
    if (opts.max_timeout_ms < opts.default_timeout_ms)
        opts.max_timeout_ms = opts.default_timeout_ms;

    ServeServer server(opts);
    g_server = &server;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = on_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    int code;
    try {
        code = server.serve_forever();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "rawcc serve: %s\n", e.what());
        code = 1;
    }
    g_server = nullptr;
    return code;
}

} // namespace serve
} // namespace raw
