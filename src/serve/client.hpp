#ifndef RAW_SERVE_CLIENT_HPP
#define RAW_SERVE_CLIENT_HPP

/**
 * @file
 * Blocking line-protocol client for `rawcc serve`, shared by the
 * load generator (bench/bench_serve.cpp) and the end-to-end smoke
 * test (tests/test_serve_cli.cpp).  Also a small daemon-process
 * helper that forks `rawcc serve`, waits for its readiness line, and
 * shuts it down with SIGTERM — exactly the lifecycle a supervisor
 * would drive.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "serve/json.hpp"

namespace raw {
namespace serve {

/** One blocking connection to a serve daemon. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Connect to "unix:PATH" or "tcp:HOST:PORT" (the daemon's
     * readiness-line syntax).  Throws FatalError on failure.
     */
    void connect(const std::string &endpoint);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Send one request line (no trailing newline needed). */
    void send_line(const std::string &line);

    /**
     * Receive the next reply line; false on EOF.  @p timeout_ms
     * bounds the wait (0 = forever); expiry throws FatalError.
     */
    bool recv_line(std::string &out, int64_t timeout_ms = 0);

    /** send_line + recv_line + json_parse; throws on protocol error. */
    Json request(const std::string &line, int64_t timeout_ms = 30000);

  private:
    int fd_ = -1;
    std::string buf_;
};

/** A forked `rawcc serve` process under test/bench control. */
class ServeDaemon
{
  public:
    ~ServeDaemon();

    /**
     * Fork+exec `<rawcc_bin> serve <args...>` and block until the
     * daemon prints its readiness line.  Throws FatalError if the
     * process dies or stays silent for @p start_timeout_ms.
     */
    void start(const std::string &rawcc_bin,
               const std::vector<std::string> &args,
               int64_t start_timeout_ms = 15000);

    /** Endpoint from the readiness line ("unix:..." / "tcp:..."). */
    const std::string &endpoint() const { return endpoint_; }
    int pid() const { return pid_; }

    /** SIGTERM + waitpid; returns the exit code (-1 on signal). */
    int stop(int64_t wait_timeout_ms = 15000);
    /** Send a signal without waiting. */
    void kill_with(int signo);

  private:
    int pid_ = -1;
    int stdout_fd_ = -1;
    std::string endpoint_;
};

} // namespace serve
} // namespace raw

#endif // RAW_SERVE_CLIENT_HPP
