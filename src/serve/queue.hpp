#ifndef RAW_SERVE_QUEUE_HPP
#define RAW_SERVE_QUEUE_HPP

/**
 * @file
 * Bounded admission-controlled work queue for the serve daemon.
 *
 * The daemon's overload contract is: admission is decided at the
 * front door, synchronously, and a rejected request gets a structured
 * `overloaded` reply — never a silent drop, never unbounded queue
 * growth.  This queue is the mechanism: try_push never blocks and
 * never exceeds the configured depth; what doesn't fit is the
 * caller's problem to reply to (that's the point).
 *
 * Lifecycle for graceful drain:
 *   close_admission()  — new try_push calls fail; queued items still
 *                        pop normally (drain phase);
 *   close()            — additionally wakes blocked poppers; pop
 *                        returns false once the queue is empty.
 * Items still queued after close() can be recovered with try_pop for
 * structured `shutting_down` replies (cancelled, not lost).
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace raw {
namespace serve {

template <typename T>
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(size_t depth) : depth_(depth) {}

    /**
     * Admit @p v if there is room and admission is open.  Never
     * blocks; false means the caller owes the client a structured
     * rejection (overloaded / shutting_down).
     */
    bool
    try_push(T v)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (admission_closed_ || q_.size() >= depth_)
                return false;
            q_.push_back(std::move(v));
        }
        cv_.notify_one();
        return true;
    }

    /**
     * Blocking pop for workers.  Returns false only after close()
     * with the queue empty (worker shutdown signal).
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        return true;
    }

    /** Non-blocking pop (drain recovery of cancelled items). */
    bool
    try_pop(T &out)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        return true;
    }

    /** Stop admitting; queued items still drain through pop(). */
    void
    close_admission()
    {
        std::lock_guard<std::mutex> lock(mu_);
        admission_closed_ = true;
    }

    /** Stop admitting and release blocked poppers once empty. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            admission_closed_ = true;
            closed_ = true;
        }
        cv_.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return q_.size();
    }

    size_t depth() const { return depth_; }

    bool
    admission_closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return admission_closed_;
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T> q_;
    const size_t depth_;
    bool admission_closed_ = false;
    bool closed_ = false;
};

} // namespace serve
} // namespace raw

#endif // RAW_SERVE_QUEUE_HPP
