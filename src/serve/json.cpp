#include "serve/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace raw {
namespace serve {

const Json *
Json::find(const std::string &key) const
{
    if (kind != Kind::kObject)
        return nullptr;
    for (const auto &kv : object)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

std::string
Json::str_or(const std::string &key, const std::string &dflt) const
{
    const Json *v = find(key);
    return v && v->kind == Kind::kString ? v->string : dflt;
}

int64_t
Json::int_or(const std::string &key, int64_t dflt) const
{
    const Json *v = find(key);
    if (!v || v->kind != Kind::kNumber)
        return dflt;
    return v->is_int ? v->integer : static_cast<int64_t>(v->number);
}

double
Json::num_or(const std::string &key, double dflt) const
{
    const Json *v = find(key);
    return v && v->kind == Kind::kNumber ? v->number : dflt;
}

bool
Json::bool_or(const std::string &key, bool dflt) const
{
    const Json *v = find(key);
    return v && v->kind == Kind::kBool ? v->boolean : dflt;
}

// ---------------------------------------------------------------
// Parser: recursive descent, depth-capped, error strings not throws.
// ---------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 32;

struct Parser
{
    const char *p;
    const char *end;
    std::string err;

    bool
    fail(const char *what)
    {
        if (err.empty()) {
            err = what;
            err += " at offset ";
            err += std::to_string(pos());
        }
        return false;
    }

    size_t pos() const { return static_cast<size_t>(p - begin_); }
    const char *begin_;

    void
    ws()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            p++;
    }

    bool
    lit(const char *s, size_t n)
    {
        if (static_cast<size_t>(end - p) < n ||
            std::memcmp(p, s, n) != 0)
            return false;
        p += n;
        return true;
    }

    /** Append code point @p cp to @p out as UTF-8. */
    static void
    utf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    hex4(uint32_t &v)
    {
        v = 0;
        for (int k = 0; k < 4; k++) {
            if (p >= end)
                return false;
            char c = *p++;
            int d = c >= '0' && c <= '9'   ? c - '0'
                    : c >= 'a' && c <= 'f' ? c - 'a' + 10
                    : c >= 'A' && c <= 'F' ? c - 'A' + 10
                                           : -1;
            if (d < 0)
                return false;
            v = (v << 4) | static_cast<uint32_t>(d);
        }
        return true;
    }

    bool
    string_body(std::string &out)
    {
        // Caller consumed the opening quote.
        for (;;) {
            if (p >= end)
                return fail("unterminated string");
            unsigned char c = static_cast<unsigned char>(*p++);
            if (c == '"')
                return true;
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                continue;
            }
            if (p >= end)
                return fail("unterminated escape");
            char e = *p++;
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                  uint32_t cp;
                  if (!hex4(cp))
                      return fail("bad \\u escape");
                  // Surrogate pair: a high surrogate must be
                  // followed by \u + low surrogate.
                  if (cp >= 0xD800 && cp <= 0xDBFF) {
                      uint32_t lo;
                      if (!lit("\\u", 2) || !hex4(lo) ||
                          lo < 0xDC00 || lo > 0xDFFF)
                          return fail("bad surrogate pair");
                      cp = 0x10000 + ((cp - 0xD800) << 10) +
                           (lo - 0xDC00);
                  } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                      return fail("stray low surrogate");
                  }
                  utf8(out, cp);
                  break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    number(Json &out)
    {
        const char *start = p;
        if (p < end && *p == '-')
            p++;
        bool any = false;
        while (p < end && *p >= '0' && *p <= '9') {
            p++;
            any = true;
        }
        bool integral = true;
        if (p < end && *p == '.') {
            integral = false;
            p++;
            bool frac = false;
            while (p < end && *p >= '0' && *p <= '9') {
                p++;
                frac = true;
            }
            if (!frac)
                return fail("bad number");
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
            integral = false;
            p++;
            if (p < end && (*p == '+' || *p == '-'))
                p++;
            bool ex = false;
            while (p < end && *p >= '0' && *p <= '9') {
                p++;
                ex = true;
            }
            if (!ex)
                return fail("bad exponent");
        }
        if (!any)
            return fail("bad number");
        std::string tok(start, static_cast<size_t>(p - start));
        out.kind = Json::Kind::kNumber;
        out.number = std::strtod(tok.c_str(), nullptr);
        if (integral) {
            errno = 0;
            long long v = std::strtoll(tok.c_str(), nullptr, 10);
            if (errno != ERANGE) {
                out.integer = v;
                out.is_int = true;
            }
        }
        if (!out.is_int)
            out.integer = static_cast<int64_t>(out.number);
        return true;
    }

    bool
    value(Json &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        ws();
        if (p >= end)
            return fail("unexpected end of input");
        char c = *p;
        if (c == '{') {
            p++;
            out.kind = Json::Kind::kObject;
            ws();
            if (p < end && *p == '}') {
                p++;
                return true;
            }
            for (;;) {
                ws();
                if (p >= end || *p != '"')
                    return fail("expected object key");
                p++;
                std::string key;
                if (!string_body(key))
                    return false;
                ws();
                if (p >= end || *p++ != ':')
                    return fail("expected ':'");
                Json v;
                if (!value(v, depth + 1))
                    return false;
                out.object.emplace_back(std::move(key),
                                        std::move(v));
                ws();
                if (p >= end)
                    return fail("unterminated object");
                char d = *p++;
                if (d == '}')
                    return true;
                if (d != ',')
                    return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            p++;
            out.kind = Json::Kind::kArray;
            ws();
            if (p < end && *p == ']') {
                p++;
                return true;
            }
            for (;;) {
                Json v;
                if (!value(v, depth + 1))
                    return false;
                out.array.push_back(std::move(v));
                ws();
                if (p >= end)
                    return fail("unterminated array");
                char d = *p++;
                if (d == ']')
                    return true;
                if (d != ',')
                    return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            p++;
            out.kind = Json::Kind::kString;
            return string_body(out.string);
        }
        if (c == 't') {
            if (!lit("true", 4))
                return fail("bad literal");
            out.kind = Json::Kind::kBool;
            out.boolean = true;
            return true;
        }
        if (c == 'f') {
            if (!lit("false", 5))
                return fail("bad literal");
            out.kind = Json::Kind::kBool;
            out.boolean = false;
            return true;
        }
        if (c == 'n') {
            if (!lit("null", 4))
                return fail("bad literal");
            out.kind = Json::Kind::kNull;
            return true;
        }
        return number(out);
    }
};

} // namespace

bool
json_parse(const std::string &text, Json &out, std::string &err)
{
    Parser ps;
    ps.p = text.data();
    ps.begin_ = text.data();
    ps.end = text.data() + text.size();
    out = Json();
    if (!ps.value(out, 0)) {
        err = ps.err.empty() ? "malformed JSON" : ps.err;
        return false;
    }
    ps.ws();
    if (ps.p != ps.end) {
        ps.fail("trailing garbage");
        err = ps.err;
        return false;
    }
    return true;
}

std::string
json_quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

// ---------------------------------------------------------------
// JsonBuilder
// ---------------------------------------------------------------

void
JsonBuilder::key(const char *k)
{
    if (!first_)
        s_.push_back(',');
    first_ = false;
    s_ += json_quote(k);
    s_.push_back(':');
}

JsonBuilder &
JsonBuilder::kv(const char *k, const std::string &v)
{
    key(k);
    s_ += json_quote(v);
    return *this;
}

JsonBuilder &
JsonBuilder::kv(const char *k, const char *v)
{
    key(k);
    s_ += json_quote(v);
    return *this;
}

JsonBuilder &
JsonBuilder::kv(const char *k, int64_t v)
{
    key(k);
    s_ += std::to_string(v);
    return *this;
}

JsonBuilder &
JsonBuilder::kv(const char *k, double v)
{
    key(k);
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        s_ += buf;
    } else {
        // JSON has no inf/nan; null keeps the reply parseable.
        s_ += "null";
    }
    return *this;
}

JsonBuilder &
JsonBuilder::kv(const char *k, bool v)
{
    key(k);
    s_ += v ? "true" : "false";
    return *this;
}

JsonBuilder &
JsonBuilder::raw(const char *k, const std::string &v)
{
    key(k);
    s_ += v;
    return *this;
}

std::string
JsonBuilder::str()
{
    if (!done_) {
        s_.push_back('}');
        done_ = true;
    }
    return s_;
}

} // namespace serve
} // namespace raw
