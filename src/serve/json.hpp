#ifndef RAW_SERVE_JSON_HPP
#define RAW_SERVE_JSON_HPP

/**
 * @file
 * Minimal JSON for the serve daemon's line-delimited protocol.
 *
 * The daemon speaks one JSON object per line in both directions
 * (docs/serve.md), over sockets fed by arbitrary clients — so the
 * parser is written for hostile input: strict grammar, a recursion
 * depth cap, no allocation proportional to anything but the input
 * size, and every failure is a clean error string, never a throw.
 * It supports exactly the JSON subset the protocol needs: objects,
 * arrays, strings (with escapes incl. \uXXXX), numbers, bools, null.
 *
 * Emission goes through JsonBuilder, which produces a flat object
 * incrementally; replies never nest more than two levels, so a
 * builder beats a value tree on the reply hot path.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace raw {
namespace serve {

/** One parsed JSON value (tree). */
class Json
{
  public:
    enum class Kind : uint8_t {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };

    Kind kind = Kind::kNull;
    bool boolean = false;
    /** Numbers keep both views; is_int marks a lossless integer. */
    double number = 0.0;
    int64_t integer = 0;
    bool is_int = false;
    std::string string;
    std::vector<Json> array;
    std::vector<std::pair<std::string, Json>> object;

    bool is_object() const { return kind == Kind::kObject; }
    bool is_string() const { return kind == Kind::kString; }
    bool is_number() const { return kind == Kind::kNumber; }
    bool is_bool() const { return kind == Kind::kBool; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Typed accessors with defaults (non-matching kind = default). */
    std::string str_or(const std::string &key,
                       const std::string &dflt) const;
    int64_t int_or(const std::string &key, int64_t dflt) const;
    double num_or(const std::string &key, double dflt) const;
    bool bool_or(const std::string &key, bool dflt) const;
};

/**
 * Parse one complete JSON value from @p text (trailing whitespace
 * allowed, anything else after the value is an error).  Returns false
 * and fills @p err on malformed input; never throws.
 */
bool json_parse(const std::string &text, Json &out, std::string &err);

/** Quote + escape @p s as a JSON string literal. */
std::string json_quote(const std::string &s);

/**
 * Incremental flat-object builder for protocol replies:
 *   JsonBuilder b; b.kv("ok", true).kv("cycles", n); b.str();
 * Nested objects via raw(): b.raw("error", sub.str()).
 */
class JsonBuilder
{
  public:
    JsonBuilder() : s_("{") {}

    JsonBuilder &kv(const char *k, const std::string &v);
    JsonBuilder &kv(const char *k, const char *v);
    JsonBuilder &kv(const char *k, int64_t v);
    JsonBuilder &kv(const char *k, int v) noexcept
    {
        return kv(k, static_cast<int64_t>(v));
    }
    JsonBuilder &kv(const char *k, double v);
    JsonBuilder &kv(const char *k, bool v);
    /** Pre-serialized value (nested object/array or raw token). */
    JsonBuilder &raw(const char *k, const std::string &v);

    /** Finish and return the object text (single line, no '\n'). */
    std::string str();

  private:
    void key(const char *k);
    std::string s_;
    bool first_ = true;
    bool done_ = false;
};

} // namespace serve
} // namespace raw

#endif // RAW_SERVE_JSON_HPP
