#include "baseline/baseline.hpp"

#include "analysis/replication.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "ir/verifier.hpp"
#include "rawcc/data_partitioner.hpp"
#include "rawcc/regalloc.hpp"
#include "support/error.hpp"
#include "transform/constfold.hpp"
#include "transform/simplify.hpp"
#include "transform/strength.hpp"

namespace raw {

namespace {

/**
 * Latency-aware local list scheduling of one block, standing in for
 * the instruction scheduling a production Mips back-end performs.
 * Dependences: value flow, WAR/WAW on multiply-written variables,
 * conservative same-array memory order, print order.  Returns a new
 * instruction order.
 */
std::vector<VInstr>
schedule_baseline_block(const Function &fn,
                        const std::vector<VInstr> &code,
                        const MachineConfig &m)
{
    const int n = static_cast<int>(code.size());
    if (n <= 2)
        return code;
    // The terminator pair (branch [+ jump]) stays at the end.
    int body = n;
    while (body > 0 && (code[body - 1].op == Op::kJump ||
                        code[body - 1].op == Op::kBranch ||
                        code[body - 1].op == Op::kHalt))
        body--;

    std::vector<std::vector<int>> succs(body);
    std::vector<int> preds_left(body, 0);
    std::vector<int> lat(body, 1);
    auto add_edge = [&](int a, int b) {
        if (a < 0 || a == b)
            return;
        succs[a].push_back(b);
        preds_left[b]++;
    };

    std::vector<int> last_write(fn.values.size(), -1);
    std::vector<std::vector<int>> readers(fn.values.size());
    int last_mem_store = -1;
    std::vector<int> mem_refs;
    int last_print = -1;
    for (int k = 0; k < body; k++) {
        const VInstr &in = code[k];
        lat[k] = m.latency(op_fu(in.op));
        for (ValueId s : in.src) {
            if (s == kNoValue)
                continue;
            add_edge(last_write[s], k);
            readers[s].push_back(k);
        }
        if (in.dst != kNoValue) {
            add_edge(last_write[in.dst], k); // WAW
            for (int r : readers[in.dst])
                add_edge(r, k); // WAR
            readers[in.dst].clear();
            last_write[in.dst] = k;
        }
        if (op_is_memory(in.op)) {
            bool is_store =
                in.op == Op::kStore || in.op == Op::kDynStore;
            if (is_store) {
                for (int r : mem_refs)
                    if (code[r].array == in.array)
                        add_edge(r, k);
            } else if (last_mem_store >= 0) {
                for (int r : mem_refs) {
                    const VInstr &o = code[r];
                    if (o.array == in.array &&
                        (o.op == Op::kStore || o.op == Op::kDynStore))
                        add_edge(r, k);
                }
            }
            mem_refs.push_back(k);
            if (is_store)
                last_mem_store = k;
        }
        if (in.op == Op::kPrint) {
            add_edge(last_print, k);
            last_print = k;
        }
    }
    // The terminator's condition must still be computed last-ish; all
    // remaining instructions precede the terminators implicitly.

    // Bottom levels for priority.
    std::vector<int64_t> blevel(body, 0);
    for (int k = body; k-- > 0;) {
        int64_t best = 0;
        for (int s : succs[k])
            best = std::max(best, blevel[s]);
        blevel[k] = lat[k] + best;
    }

    // Greedy time-driven selection.
    std::vector<int64_t> ready_at(body, 0);
    std::vector<bool> emitted(body, false);
    std::vector<int> ready;
    for (int k = 0; k < body; k++)
        if (preds_left[k] == 0)
            ready.push_back(k);
    std::vector<VInstr> out;
    out.reserve(n);
    int64_t now = 0;
    int remaining = body;
    while (remaining > 0) {
        int pick = -1;
        // Prefer the ready instruction with operands available now
        // and the longest remaining path; else the soonest-ready.
        for (int k : ready) {
            if (emitted[k])
                continue;
            if (ready_at[k] <= now &&
                (pick < 0 || blevel[k] > blevel[pick] ||
                 (blevel[k] == blevel[pick] && k < pick)))
                pick = k;
        }
        if (pick < 0) {
            int64_t soonest = INT64_MAX;
            for (int k : ready) {
                if (emitted[k])
                    continue;
                if (ready_at[k] < soonest) {
                    soonest = ready_at[k];
                    pick = k;
                }
            }
            now = ready_at[pick];
        }
        emitted[pick] = true;
        remaining--;
        out.push_back(code[pick]);
        int64_t fin = std::max(now, ready_at[pick]) + lat[pick];
        now = std::max(now + 1, std::max(now, ready_at[pick]) + 1);
        for (int s : succs[pick]) {
            ready_at[s] = std::max(ready_at[s], fin);
            if (--preds_left[s] == 0)
                ready.push_back(s);
        }
    }
    for (int k = body; k < n; k++)
        out.push_back(code[k]);
    return out;
}

} // namespace

CompileOutput
compile_baseline(const std::string &source)
{
    return compile_baseline_for(source, MachineConfig::base(1));
}

CompileOutput
compile_baseline_for(const std::string &source,
                     const MachineConfig &machine)
{
    check(machine.n_tiles == 1, "baseline compiles for one tile");
    Program ast = parse_program(source);
    Function fn = lower_program(ast);
    constfold_function(fn);
    while (simplify_cfg(fn))
        constfold_function(fn);
    strength_reduce(fn);
    constfold_function(fn);
    verify_or_panic(fn, "baseline lowering");

    // No replication, no parallel orchestration: straight-line
    // per-block code on tile 0.
    ReplicationAnalysis no_repl(fn, 8, 12, false);
    DataPartition data = partition_data(fn, no_repl, machine);

    const int n_blocks = static_cast<int>(fn.blocks.size());
    std::vector<std::vector<VInstr>> blocks(n_blocks);
    int num_prints = 0;
    for (int b = 0; b < n_blocks; b++) {
        const Block &blk = fn.blocks[b];
        for (size_t k = 0; k + 1 < blk.instrs.size(); k++) {
            const Instr &in = blk.instrs[k];
            VInstr v;
            v.op = in.op;
            v.type = in.type;
            v.dst = in.dst;
            v.src[0] = in.src[0];
            v.src[1] = in.src[1];
            v.imm = in.imm_bits;
            v.array = in.array;
            if (in.op == Op::kPrint)
                v.print_seq = num_prints++;
            blocks[b].push_back(v);
        }
        const Instr &term = blk.terminator();
        if (term.op == Op::kJump) {
            VInstr v;
            v.op = Op::kJump;
            v.target_block = term.target[0];
            blocks[b].push_back(v);
        } else if (term.op == Op::kBranch) {
            VInstr br;
            br.op = Op::kBranch;
            br.src[0] = term.src[0];
            br.target_block = term.target[0];
            blocks[b].push_back(br);
            VInstr jf;
            jf.op = Op::kJump;
            jf.target_block = term.target[1];
            blocks[b].push_back(jf);
        } else {
            VInstr v;
            v.op = Op::kHalt;
            blocks[b].push_back(v);
        }
        blocks[b] = schedule_baseline_block(fn, blocks[b], machine);
    }

    // Assemble a one-tile VirtualProgram and reuse the linker.
    VirtualProgram vp;
    vp.tiles.assign(1, std::move(blocks));
    vp.switches.assign(1,
                       std::vector<std::vector<SInstr>>(n_blocks));
    vp.switch_active.assign(1, false);
    vp.persistent.assign(1, fn.var_ids());
    vp.data = data;
    vp.num_prints = num_prints;

    CompileOutput out;
    LinkStats ls;
    out.program = link_program(fn, vp, machine, &ls);
    out.stats.spill_ops = ls.spill_ops;
    out.stats.ir_instrs = static_cast<int64_t>(fn.num_instrs());
    out.stats.static_instrs = out.program.static_instrs();
    out.fn = std::move(fn);
    return out;
}

} // namespace raw
