#ifndef RAW_BASELINE_BASELINE_HPP
#define RAW_BASELINE_BASELINE_HPP

/**
 * @file
 * Sequential baseline compiler — the stand-in for the "basic Mips
 * compiler provided by Machsuif" the paper's speedups are measured
 * against (Section 6).
 *
 * Compiles the original (un-unrolled) program for a single tile:
 * instructions in program order, no renaming, no orchestration, no
 * communication; variables are register-allocated with the same
 * linear-scan allocator the parallel compiler uses.  Speedup of a
 * RAWCC compilation is sequential cycles / parallel cycles.
 */

#include <string>

#include "rawcc/compiler.hpp"

namespace raw {

/** Compile @p source sequentially for one tile. */
CompileOutput compile_baseline(const std::string &source);

/**
 * Compile sequentially for a one-tile machine with custom parameters
 * (e.g. inf-reg or 1-cycle configurations for the Figure 8
 * experiment).  @p machine.n_tiles must be 1.
 */
CompileOutput compile_baseline_for(const std::string &source,
                                   const MachineConfig &machine);

} // namespace raw

#endif // RAW_BASELINE_BASELINE_HPP
