#ifndef RAW_PROGRAMS_FPPPP_GEN_HPP
#define RAW_PROGRAMS_FPPPP_GEN_HPP

/**
 * @file
 * fpppp-kernel generator.
 *
 * The paper's fpppp-kernel is the 735-line straight-line basic block
 * that accounts for half of Spec92 fpppp's run time: a large amount
 * of *irregular* instruction-level parallelism with many live scalar
 * values — historically resistant to both superscalars (too few
 * registers) and multiprocessors (no loop-level parallelism).
 *
 * We emulate it with a deterministic generator: @p n_vars float
 * scalars seeded from constants, then @p n_stmts statements of the
 * form  v[x] = v[a] * c1 + v[b] * c2  (two multiplies and an add,
 * occasionally a divide), with a, b, x drawn from a fixed xorshift
 * stream.  The resulting DAG is irregular, has high ILP and keeps
 * dozens of values live — the properties the paper's Figure 8
 * experiment depends on.
 */

#include <cstdint>
#include <string>

namespace raw {

/** Generate the fpppp-kernel rawc source. */
std::string generate_fpppp(int n_vars = 48, int n_stmts = 220,
                           uint64_t seed = 0xF0F0F0F0ULL);

} // namespace raw

#endif // RAW_PROGRAMS_FPPPP_GEN_HPP
