#include "programs/programs.hpp"

#include "programs/fpppp_gen.hpp"
#include "support/error.hpp"

namespace raw {

namespace {

const char *kJacobi = R"rawc(
// jacobi: Jacobi relaxation on a 32x32 grid (Rawbench)
float A[32][32];
float B[32][32];
int i; int j; int t;
for (i = 0; i < 32; i = i + 1) {
  for (j = 0; j < 32; j = j + 1) {
    A[i][j] = (float)(i * 3 + j * 7 + (i * j) % 11);
    B[i][j] = A[i][j];
  }
}
for (t = 0; t < 4; t = t + 1) {
  for (i = 1; i < 31; i = i + 1) {
    for (j = 1; j < 31; j = j + 1) {
      B[i][j] = 0.25 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);
    }
  }
  for (i = 1; i < 31; i = i + 1) {
    for (j = 1; j < 31; j = j + 1) {
      A[i][j] = B[i][j];
    }
  }
}
print(A[7][9]);
print(A[16][16]);
)rawc";

const char *kLife = R"rawc(
// life: Conway's Game of Life, 32x32, toroidal interior (Rawbench)
int world[32][32];
int nw[32][32];
int i; int j; int g; int sum; int cs;
for (i = 0; i < 32; i = i + 1) {
  for (j = 0; j < 32; j = j + 1) {
    world[i][j] = (((i * j) + 3 * i + 7 * j) % 5 == 0);
    nw[i][j] = 0;
  }
}
for (g = 0; g < 4; g = g + 1) {
  for (i = 1; i < 31; i = i + 1) {
    for (j = 1; j < 31; j = j + 1) {
      sum = world[i-1][j-1] + world[i-1][j] + world[i-1][j+1]
          + world[i][j-1] + world[i][j+1]
          + world[i+1][j-1] + world[i+1][j] + world[i+1][j+1];
      if (sum == 3) {
        nw[i][j] = 1;
      } else {
        if (sum == 2) {
          nw[i][j] = world[i][j];
        } else {
          nw[i][j] = 0;
        }
      }
    }
  }
  for (i = 1; i < 31; i = i + 1) {
    for (j = 1; j < 31; j = j + 1) {
      world[i][j] = nw[i][j];
    }
  }
}
cs = 0;
for (i = 0; i < 32; i = i + 1) {
  for (j = 0; j < 32; j = j + 1) {
    cs = cs + world[i][j];
  }
}
print(cs);
)rawc";

const char *kMxm = R"rawc(
// mxm: matrix multiply, 32x64 times 64x8 (nasa7 / Spec92)
float A[32][64];
float B[64][8];
float C[32][8];
int i; int j; int k;
float s;
for (i = 0; i < 32; i = i + 1) {
  for (k = 0; k < 64; k = k + 1) {
    A[i][k] = (float)((i + 2 * k) % 9) * 0.5 + 0.25;
  }
}
for (k = 0; k < 64; k = k + 1) {
  for (j = 0; j < 8; j = j + 1) {
    B[k][j] = (float)((3 * k + j) % 7) * 0.25 + 0.125;
  }
}
for (i = 0; i < 32; i = i + 1) {
  for (j = 0; j < 8; j = j + 1) {
    s = 0.0;
    for (k = 0; k < 64; k = k + 1) {
      s = s + A[i][k] * B[k][j];
    }
    C[i][j] = s;
  }
}
print(C[5][3]);
print(C[31][7]);
)rawc";

const char *kVpenta = R"rawc(
// vpenta: simultaneous pentadiagonal elimination sweeps (nasa7).
// Fortran vpenta walks columns, so the C equivalent carries the
// recurrence along the *row* index of x[i][j]: the inner loop over i
// strides by 32 (static without unrolling) while the outer j loop
// must be unrolled/peeled to satisfy the static reference property.
float a[32][32];
float b[32][32];
float c[32][32];
float x[32][32];
float y[32][32];
int i; int j;
for (i = 0; i < 32; i = i + 1) {
  for (j = 0; j < 32; j = j + 1) {
    a[i][j] = 0.1 + (float)((i + j) % 5) * 0.05;
    b[i][j] = 0.2 + (float)((2 * i + j) % 7) * 0.03;
    c[i][j] = 1.5 + (float)((i * j) % 3) * 0.1;
    x[i][j] = (float)((i * 5 + j * 3) % 13) * 0.25;
    y[i][j] = (float)((i + 4 * j) % 11) * 0.125;
  }
}
// Forward elimination along j, vector over i.
for (j = 2; j < 32; j = j + 1) {
  for (i = 0; i < 32; i = i + 1) {
    x[i][j] = x[i][j] - a[i][j] * x[i][j-1] - b[i][j] * x[i][j-2];
    y[i][j] = y[i][j] - a[i][j] * y[i][j-1] - b[i][j] * y[i][j-2];
  }
}
// Back substitution along j, vector over i.
for (j = 29; j >= 0; j = j - 1) {
  for (i = 0; i < 32; i = i + 1) {
    x[i][j] = (x[i][j] - a[i][j] * x[i][j+1]) / c[i][j];
    y[i][j] = (y[i][j] - a[i][j] * y[i][j+1]) / c[i][j];
  }
}
print(x[3][4]);
print(y[17][21]);
)rawc";

const char *kCholesky = R"rawc(
// cholesky: decomposition of three 15x15 SPD matrices (nasa7).
// Rows padded to 16 words, the usual alignment practice.
float a[3][15][16];
int m; int i; int j; int k;
for (m = 0; m < 3; m = m + 1) {
  for (i = 0; i < 15; i = i + 1) {
    for (j = 0; j < 15; j = j + 1) {
      if (i < j) {
        a[m][i][j] = (float)(i + 1 + m);
      } else {
        a[m][i][j] = (float)(j + 1 + m);
      }
      if (i == j) {
        a[m][i][j] = a[m][i][j] + 16.0;
      }
    }
  }
}
for (m = 0; m < 3; m = m + 1) {
  for (k = 0; k < 15; k = k + 1) {
    a[m][k][k] = sqrt(a[m][k][k]);
    for (i = 0; i < 15; i = i + 1) {
      if (i > k) {
        a[m][i][k] = a[m][i][k] / a[m][k][k];
      }
    }
    for (j = 0; j < 15; j = j + 1) {
      for (i = 0; i < 15; i = i + 1) {
        if (j > k) {
          if (i >= j) {
            a[m][i][j] = a[m][i][j] - a[m][i][k] * a[m][j][k];
          }
        }
      }
    }
  }
}
print(a[0][14][14]);
print(a[1][7][3]);
print(a[2][14][0]);
)rawc";

const char *kTomcatv = R"rawc(
// tomcatv: vectorized mesh generation with Thompson's solver
// (Spec92), 32x32 mesh, iteration count reduced for simulation.
float xx[32][32];
float yy[32][32];
float rx[32][32];
float ry[32][32];
float dd[32][32];
int i; int j; int it;
for (i = 0; i < 32; i = i + 1) {
  for (j = 0; j < 32; j = j + 1) {
    xx[i][j] = (float)i * 0.3 + (float)j * 0.011;
    yy[i][j] = (float)j * 0.3 + (float)(i * j) * 0.002;
    rx[i][j] = 0.0;
    ry[i][j] = 0.0;
    dd[i][j] = 0.0;
  }
}
for (it = 0; it < 3; it = it + 1) {
  // Residual computation (central differences).
  for (i = 1; i < 31; i = i + 1) {
    for (j = 1; j < 31; j = j + 1) {
      rx[i][j] = xx[i+1][j] + xx[i-1][j] + xx[i][j+1] + xx[i][j-1]
               - 4.0 * xx[i][j];
      ry[i][j] = yy[i+1][j] + yy[i-1][j] + yy[i][j+1] + yy[i][j-1]
               - 4.0 * yy[i][j];
      dd[i][j] = sqrt(rx[i][j] * rx[i][j] + ry[i][j] * ry[i][j]
               + 0.0001);
    }
  }
  // SLOR-style update sweep.
  for (i = 1; i < 31; i = i + 1) {
    for (j = 1; j < 31; j = j + 1) {
      xx[i][j] = xx[i][j] + rx[i][j] * 0.125 / dd[i][j];
      yy[i][j] = yy[i][j] + ry[i][j] * 0.125 / dd[i][j];
    }
  }
}
print(xx[16][16]);
print(yy[8][24]);
)rawc";

std::vector<BenchmarkProgram>
make_suite()
{
    std::vector<BenchmarkProgram> v;
    v.push_back({"life", kLife, "world",
                 "Conway's Game of Life (irregular control)"});
    v.push_back({"vpenta", kVpenta, "x",
                 "Inverts pentadiagonals simultaneously"});
    v.push_back({"cholesky", kCholesky, "a",
                 "Cholesky decomposition/substitution"});
    v.push_back({"tomcatv", kTomcatv, "xx",
                 "Mesh generation with Thompson's solver"});
    v.push_back({"fpppp-kernel", generate_fpppp(), "__fvars",
                 "Electron interval derivatives (irregular FP block)"});
    v.push_back({"mxm", kMxm, "C", "Matrix multiplication"});
    v.push_back({"jacobi", kJacobi, "A", "Jacobi relaxation"});
    return v;
}

} // namespace

const std::vector<BenchmarkProgram> &
benchmark_suite()
{
    static const std::vector<BenchmarkProgram> suite = make_suite();
    return suite;
}

const BenchmarkProgram &
benchmark(const std::string &name)
{
    for (const BenchmarkProgram &b : benchmark_suite())
        if (b.name == name)
            return b;
    fatal("unknown benchmark: " + name);
}

} // namespace raw
