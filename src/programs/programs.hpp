#ifndef RAW_PROGRAMS_PROGRAMS_HPP
#define RAW_PROGRAMS_PROGRAMS_HPP

/**
 * @file
 * The benchmark suite of Table 2, rewritten in rawc.
 *
 * | name          | origin            | arrays        | parallelism |
 * |---------------|-------------------|---------------|-------------|
 * | life          | Rawbench          | 32x32         | irregular (control inside loop) |
 * | vpenta        | nasa7 / Spec92    | 32x32 (x5)    | column sweeps (outer unroll)    |
 * | cholesky      | nasa7 / Spec92    | 3x15x16       | triangular, peeled |
 * | tomcatv       | Spec92            | 32x32 (x5)    | stencil sweeps |
 * | fpppp-kernel  | Spec92            | scalar        | one huge irregular FP block |
 * | mxm           | nasa7 / Spec92    | 32x64 * 64x8  | dense matmul |
 * | jacobi        | Rawbench          | 32x32         | stencil |
 *
 * Iteration counts are scaled so full-machine simulation stays
 * tractable (see EXPERIMENTS.md); per-iteration structure matches the
 * original kernels.  All floating point is single precision, as in
 * the paper.
 */

#include <string>
#include <vector>

namespace raw {

/** Descriptor of one benchmark program. */
struct BenchmarkProgram
{
    std::string name;
    std::string source;
    /** Array whose final contents identify the computation's result. */
    std::string check_array;
    /** Short description (Table 2 column). */
    std::string description;
};

/** All seven Table 2 benchmarks. */
const std::vector<BenchmarkProgram> &benchmark_suite();

/** Look up one benchmark by name; fatal if unknown. */
const BenchmarkProgram &benchmark(const std::string &name);

} // namespace raw

#endif // RAW_PROGRAMS_PROGRAMS_HPP
