#include "programs/fpppp_gen.hpp"

#include <sstream>

namespace raw {

namespace {

uint64_t
next_rand(uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

} // namespace

std::string
generate_fpppp(int n_vars, int n_stmts, uint64_t seed)
{
    std::ostringstream os;
    uint64_t s = seed | 1;

    os << "// fpppp-kernel: generated irregular straight-line FP "
          "block\n";
    // Seed the scalars from memory so the kernel is opaque to
    // constant folding (the real kernel reads integral tables).
    os << "float inp[" << n_vars << "];\n";
    os << "int ii;\n";
    os << "for (ii = 0; ii < " << n_vars << "; ii = ii + 1) {\n";
    os << "  inp[ii] = 0.25 + (float)((ii * 7919) % 997) / 499.0;\n";
    os << "}\n";
    for (int i = 0; i < n_vars; i++)
        os << "float v" << i << " = inp[" << i << "];\n";
    for (int k = 0; k < n_stmts; k++) {
        int x = static_cast<int>(next_rand(s) % n_vars);
        int a = static_cast<int>(next_rand(s) % n_vars);
        int b = static_cast<int>(next_rand(s) % n_vars);
        double c1 = 0.3 + static_cast<double>(next_rand(s) % 400) /
                              1000.0;
        double c2 = 0.3 + static_cast<double>(next_rand(s) % 400) /
                              1000.0;
        if (k % 17 == 9) {
            os << "v" << x << " = v" << a << " / (v" << b << " * v"
               << b << " + 1.5) + v" << x << " * " << c2 << ";\n";
        } else {
            os << "v" << x << " = v" << a << " * " << c1 << " + v"
               << b << " * " << c2 << ";\n";
        }
    }
    // Checksum keeps every variable live to the end of the block.
    os << "float cs = 0.0;\n";
    for (int i = 0; i < n_vars; i++)
        os << "cs = cs + v" << i << ";\n";
    os << "print(cs);\n";
    return os.str();
}

} // namespace raw
