#include "frontend/unroll.hpp"

#include <functional>

#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace raw {

namespace {

int64_t
expr_weight(const Expr &e)
{
    int64_t w = 1;
    for (const ExprPtr &k : e.kids)
        w += expr_weight(*k);
    return w;
}

/** An affine form: const + sum(coeff * var). */
struct Affine
{
    bool valid = true;
    int64_t c0 = 0;
    std::map<std::string, int64_t> coeffs;

    static Affine invalid()
    {
        Affine a;
        a.valid = false;
        return a;
    }
};

/** Environment of compile-time-constant scalars. */
using ConstEnv = std::unordered_map<std::string, int64_t>;

Affine
affine_of(const Expr &e, const ConstEnv &consts)
{
    switch (e.kind) {
      case ExprKind::kIntLit: {
        Affine a;
        a.c0 = e.int_val;
        return a;
      }
      case ExprKind::kVar: {
        auto it = consts.find(e.name);
        Affine a;
        if (it != consts.end()) {
            a.c0 = it->second;
        } else {
            a.coeffs[e.name] = 1;
        }
        return a;
      }
      case ExprKind::kUnary: {
        if (e.op != "-")
            return Affine::invalid();
        Affine a = affine_of(*e.kids[0], consts);
        if (!a.valid)
            return a;
        a.c0 = -a.c0;
        for (auto &kv : a.coeffs)
            kv.second = -kv.second;
        return a;
      }
      case ExprKind::kBinary: {
        Affine l = affine_of(*e.kids[0], consts);
        Affine r = affine_of(*e.kids[1], consts);
        if (!l.valid || !r.valid)
            return Affine::invalid();
        if (e.op == "+" || e.op == "-") {
            int64_t sign = e.op == "+" ? 1 : -1;
            l.c0 += sign * r.c0;
            for (auto &kv : r.coeffs) {
                l.coeffs[kv.first] += sign * kv.second;
                if (l.coeffs[kv.first] == 0)
                    l.coeffs.erase(kv.first);
            }
            return l;
        }
        if (e.op == "*") {
            const Affine *cst = r.coeffs.empty() ? &r : nullptr;
            const Affine *var = cst == &r ? &l : nullptr;
            if (!cst && l.coeffs.empty()) {
                cst = &l;
                var = &r;
            }
            if (!cst)
                return Affine::invalid();
            Affine out;
            out.c0 = var->c0 * cst->c0;
            for (auto &kv : var->coeffs) {
                if (kv.second * cst->c0 != 0)
                    out.coeffs[kv.first] = kv.second * cst->c0;
            }
            return out;
        }
        return Affine::invalid();
      }
      default:
        return Affine::invalid();
    }
}

/** Constant-fold an int expression under @p consts; nullopt if not. */
std::optional<int64_t>
const_eval(const Expr &e, const ConstEnv &consts)
{
    Affine a = affine_of(e, consts);
    if (a.valid && a.coeffs.empty())
        return a.c0;
    // Allow a few non-affine constant folds (/, %, <<).
    if (e.kind == ExprKind::kBinary) {
        auto l = const_eval(*e.kids[0], consts);
        auto r = const_eval(*e.kids[1], consts);
        if (l && r) {
            if (e.op == "/" && *r != 0)
                return *l / *r;
            if (e.op == "%" && *r != 0)
                return *l % *r;
            if (e.op == "<<")
                return *l << *r;
            if (e.op == ">>")
                return *l >> *r;
        }
    }
    return std::nullopt;
}

/** Names assigned anywhere in a statement list (recursively). */
void
collect_assigned(const std::vector<StmtPtr> &stmts,
                 std::unordered_set<std::string> &out)
{
    for (const StmtPtr &s : stmts) {
        switch (s->kind) {
          case StmtKind::kAssign:
            out.insert(s->name);
            break;
          case StmtKind::kFor:
            out.insert(s->name);
            collect_assigned(s->body, out);
            break;
          case StmtKind::kIf:
            collect_assigned(s->body, out);
            collect_assigned(s->else_body, out);
            break;
          case StmtKind::kWhile:
            collect_assigned(s->body, out);
            break;
          default:
            break;
        }
    }
}

/** True if the statement list assigns @p name anywhere. */
bool
assigns_var(const std::vector<StmtPtr> &stmts, const std::string &name)
{
    std::unordered_set<std::string> assigned;
    collect_assigned(stmts, assigned);
    return assigned.count(name) > 0;
}

/** Substitute variable @p iv in an expression. */
ExprPtr
subst_expr(const Expr &e, const std::string &iv, int64_t offset,
           bool exact, int64_t exact_value)
{
    if (e.kind == ExprKind::kVar && e.name == iv) {
        if (exact)
            return make_int_lit(static_cast<int32_t>(exact_value));
        if (offset == 0)
            return e.clone();
        return make_binary("+", e.clone(),
                           make_int_lit(static_cast<int32_t>(offset)));
    }
    ExprPtr c = e.clone();
    for (ExprPtr &k : c->kids)
        k = subst_expr(*k, iv, offset, exact, exact_value);
    return c;
}

StmtPtr
subst_stmt(const Stmt &s, const std::string &iv, int64_t offset,
           bool exact, int64_t exact_value)
{
    StmtPtr c = s.clone();
    auto fix = [&](ExprPtr &e) {
        if (e)
            e = subst_expr(*e, iv, offset, exact, exact_value);
    };
    fix(c->expr);
    for (ExprPtr &i : c->indices)
        i = subst_expr(*i, iv, offset, exact, exact_value);
    fix(c->bound);
    for (StmtPtr &b : c->body)
        b = subst_stmt(*b, iv, offset, exact, exact_value);
    for (StmtPtr &b : c->else_body)
        b = subst_stmt(*b, iv, offset, exact, exact_value);
    return c;
}

/** The unroll pass. */
class Unroller
{
  public:
    Unroller(const UnrollOptions &opts,
             const std::unordered_map<std::string, std::vector<int64_t>>
                 &array_dims,
             const ConstEnv &consts)
        : opts_(opts), array_dims_(array_dims), consts_(consts)
    {}

    UnrollStats stats;

    void
    run(std::vector<StmtPtr> &stmts)
    {
        std::vector<StmtPtr> out;
        for (StmtPtr &s : stmts) {
            switch (s->kind) {
              case StmtKind::kIf:
                run(s->body);
                run(s->else_body);
                out.push_back(std::move(s));
                break;
              case StmtKind::kWhile:
                run(s->body);
                out.push_back(std::move(s));
                break;
              case StmtKind::kFor:
                run(s->body);
                stats.loops_seen++;
                transform_for(std::move(s), out);
                break;
              default:
                out.push_back(std::move(s));
                break;
            }
        }
        stmts = std::move(out);
    }

  private:
    const UnrollOptions &opts_;
    const std::unordered_map<std::string, std::vector<int64_t>>
        &array_dims_;
    const ConstEnv &consts_;

    /** Flat-index coefficient of @p iv over one array access. */
    void
    access_coeff(const std::string &array,
                 const std::vector<ExprPtr> &indices,
                 const std::string &iv, std::vector<int64_t> &coeffs)
    {
        auto it = array_dims_.find(array);
        if (it == array_dims_.end())
            return;
        const std::vector<int64_t> &dims = it->second;
        int64_t stride = 1;
        int64_t c = 0;
        bool ok = true;
        for (size_t d = indices.size(); d-- > 0;) {
            Affine a = affine_of(*indices[d], consts_);
            if (!a.valid) {
                ok = false;
                break;
            }
            auto ci = a.coeffs.find(iv);
            if (ci != a.coeffs.end())
                c += ci->second * stride;
            stride *= dims[d];
        }
        if (ok && c != 0)
            coeffs.push_back(c);
    }

    /** Collect iv coefficients of all affine accesses in a subtree. */
    void
    collect_coeffs_expr(const Expr &e, const std::string &iv,
                        std::vector<int64_t> &coeffs)
    {
        if (e.kind == ExprKind::kArray)
            access_coeff(e.name, e.kids, iv, coeffs);
        for (const ExprPtr &k : e.kids)
            collect_coeffs_expr(*k, iv, coeffs);
    }
    void
    collect_coeffs(const std::vector<StmtPtr> &stmts,
                   const std::string &iv, std::vector<int64_t> &coeffs)
    {
        for (const StmtPtr &s : stmts) {
            if (s->expr)
                collect_coeffs_expr(*s->expr, iv, coeffs);
            if (s->bound)
                collect_coeffs_expr(*s->bound, iv, coeffs);
            if (s->kind == StmtKind::kArrayAssign)
                access_coeff(s->name, s->indices, iv, coeffs);
            for (const ExprPtr &i : s->indices)
                collect_coeffs_expr(*i, iv, coeffs);
            collect_coeffs(s->body, iv, coeffs);
            collect_coeffs(s->else_body, iv, coeffs);
        }
    }

    void
    transform_for(StmtPtr loop, std::vector<StmtPtr> &out)
    {
        const std::string &iv = loop->name;
        if (!opts_.enable || assigns_var(loop->body, iv)) {
            out.push_back(std::move(loop));
            return;
        }
        auto start = const_eval(*loop->expr, consts_);
        auto bound = const_eval(*loop->bound, consts_);
        if (!start || !bound) {
            out.push_back(std::move(loop));
            return;
        }
        int64_t s = *start, b = *bound, st = loop->step;
        int64_t trip = 0;
        if (loop->cmp == "<")
            trip = st > 0 ? (b - s + st - 1) / st : -1;
        else if (loop->cmp == "<=")
            trip = st > 0 ? (b - s + st) / st : -1;
        else if (loop->cmp == ">")
            trip = st < 0 ? (s - b - st - 1) / (-st) : -1;
        else if (loop->cmp == ">=")
            trip = st < 0 ? (s - b - st) / (-st) : -1;
        if (trip < 0) {
            out.push_back(std::move(loop));
            return;
        }
        if (trip == 0) {
            // Loop never runs; iv still gets its initial value.
            auto as = std::make_unique<Stmt>();
            as->kind = StmtKind::kAssign;
            as->name = iv;
            as->expr = make_int_lit(static_cast<int32_t>(s));
            out.push_back(std::move(as));
            return;
        }

        const int64_t n = opts_.n_tiles;
        std::vector<int64_t> coeffs;
        collect_coeffs(loop->body, iv, coeffs);
        int64_t u0 = 1;
        for (int64_t c : coeffs) {
            int64_t d = n / gcd64(c * st, n);
            u0 = lcm64(u0, d, n);
        }

        int64_t weight = 0;
        for (const StmtPtr &bs : loop->body)
            weight += stmt_weight(*bs);
        weight = weight > 0 ? weight : 1;

        bool peel = false;
        if (u0 >= trip) {
            // Partial unrolling cannot reach the static reference
            // property; peeling (exact indices) can.
            peel = (u0 > 1 && trip * weight <= opts_.forced_peel_limit) ||
                   trip * weight <= opts_.small_peel_limit;
        } else {
            peel = trip * weight <= opts_.small_peel_limit;
        }

        if (peel) {
            stats.loops_peeled++;
            for (int64_t t = 0; t < trip; t++) {
                int64_t val = s + t * st;
                for (const StmtPtr &bs : loop->body)
                    out.push_back(subst_stmt(*bs, iv, 0, true, val));
            }
            auto as = std::make_unique<Stmt>();
            as->kind = StmtKind::kAssign;
            as->name = iv;
            as->expr = make_int_lit(static_cast<int32_t>(s + trip * st));
            out.push_back(std::move(as));
            return;
        }

        int64_t u = u0;
        // Partial unrolling duplicates the (already transformed) body
        // u times; allow more head-room than peeling since the static
        // reference property is otherwise lost for every access.
        if (u <= 1 || u > trip ||
            u * weight > 4 * opts_.forced_peel_limit) {
            // Keep the loop rolled; annotate the trivial congruence
            // iv == s (mod st) so stride-aligned accesses still
            // staticize when st itself covers the interleaving.
            loop->iv_modulus = st < 0 ? -st : st;
            loop->iv_residue = floor_mod(s, loop->iv_modulus == 0
                                                ? 1
                                                : loop->iv_modulus);
            out.push_back(std::move(loop));
            return;
        }

        stats.loops_unrolled++;
        int64_t t_main = trip / u;
        int64_t t_rem = trip % u;

        auto main_loop = std::make_unique<Stmt>();
        main_loop->kind = StmtKind::kFor;
        main_loop->name = iv;
        main_loop->expr = make_int_lit(static_cast<int32_t>(s));
        main_loop->cmp = st > 0 ? "<" : ">";
        main_loop->bound =
            make_int_lit(static_cast<int32_t>(s + t_main * u * st));
        main_loop->step = u * st;
        main_loop->iv_modulus = std::abs(u * st);
        main_loop->iv_residue = floor_mod(s, main_loop->iv_modulus);
        for (int64_t k = 0; k < u; k++)
            for (const StmtPtr &bs : loop->body)
                main_loop->body.push_back(
                    subst_stmt(*bs, iv, k * st, false, 0));
        if (t_main > 0)
            out.push_back(std::move(main_loop));

        for (int64_t t = t_main * u; t < trip; t++) {
            int64_t val = s + t * st;
            for (const StmtPtr &bs : loop->body)
                out.push_back(subst_stmt(*bs, iv, 0, true, val));
        }
        (void)t_rem;

        auto as = std::make_unique<Stmt>();
        as->kind = StmtKind::kAssign;
        as->name = iv;
        as->expr = make_int_lit(static_cast<int32_t>(s + trip * st));
        out.push_back(std::move(as));
    }
};

} // namespace

int64_t
stmt_weight(const Stmt &s)
{
    int64_t w = 1;
    if (s.expr)
        w += expr_weight(*s.expr);
    if (s.bound)
        w += expr_weight(*s.bound);
    for (const ExprPtr &i : s.indices)
        w += expr_weight(*i);
    for (const StmtPtr &b : s.body)
        w += stmt_weight(*b);
    for (const StmtPtr &b : s.else_body)
        w += stmt_weight(*b);
    return w;
}

UnrollStats
unroll_program(Program &prog, const UnrollOptions &opts)
{
    check(opts.n_tiles >= 1, "unroll: bad tile count");

    // Build the constant environment: scalars with constant
    // initializers that are never reassigned.
    std::unordered_set<std::string> assigned;
    collect_assigned(prog.stmts, assigned);
    ConstEnv consts;
    for (const StmtPtr &s : prog.stmts) {
        if (s->kind == StmtKind::kDeclScalar && s->expr &&
            !assigned.count(s->name) && s->type == Type::kI32) {
            auto v = const_eval(*s->expr, consts);
            if (v)
                consts[s->name] = *v;
        }
    }

    std::unordered_map<std::string, std::vector<int64_t>> dims;
    for (const StmtPtr &s : prog.stmts)
        if (s->kind == StmtKind::kDeclArray)
            dims[s->name] = s->dims;

    // Stamp source-loop identities before any transformation so
    // unrolled and peeled copies inherit them via clone().
    int next_loop_id = 0;
    std::function<void(const std::vector<StmtPtr> &)> stamp =
        [&](const std::vector<StmtPtr> &stmts) {
            for (const StmtPtr &s : stmts) {
                if (s->kind == StmtKind::kFor)
                    s->loop_id = next_loop_id++;
                stamp(s->body);
                stamp(s->else_body);
            }
        };
    stamp(prog.stmts);

    Unroller u(opts, dims, consts);
    u.run(prog.stmts);
    return u.stats;
}

} // namespace raw
