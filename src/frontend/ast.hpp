#ifndef RAW_FRONTEND_AST_HPP
#define RAW_FRONTEND_AST_HPP

/**
 * @file
 * Abstract syntax tree for `rawc`, the C-subset input language of this
 * reproduction (standing in for the paper's SUIF C/Fortran frontend).
 *
 * rawc supports: `int`/`float` scalars and multi-dimensional arrays,
 * assignments, arithmetic/logic/comparison expressions, casts,
 * `if`/`else`, `while`, canonical `for` loops and `print(e);`.
 * Benchmarks (Table 2) are written in rawc; see src/programs.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace raw {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node kinds. */
enum class ExprKind : uint8_t {
    kIntLit,   ///< integer literal
    kFloatLit, ///< float literal
    kVar,      ///< scalar variable reference
    kArray,    ///< array element reference, one index per dimension
    kUnary,    ///< unary op: '-' or '!'
    kBinary,   ///< binary op (see Expr::op)
    kCast,     ///< (int)/(float) cast
};

/** An expression tree node. */
struct Expr
{
    ExprKind kind;
    /** Static type, filled in by the parser. */
    Type type = Type::kI32;
    int32_t int_val = 0;
    float float_val = 0.0f;
    /** Variable or array name. */
    std::string name;
    /**
     * Operator spelling for kUnary/kBinary: "+", "-", "*", "/", "%",
     * "<", "<=", ">", ">=", "==", "!=", "&", "|", "^", "<<", ">>",
     * "&&", "||", "!" (logical ops are evaluated without
     * short-circuiting, on canonical 0/1 values).
     */
    std::string op;
    /** Children: 1 for unary/cast, 2 for binary, indices for kArray. */
    std::vector<ExprPtr> kids;

    /** Deep copy. */
    ExprPtr clone() const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** Statement node kinds. */
enum class StmtKind : uint8_t {
    kDeclScalar, ///< int x; / float x = e;
    kDeclArray,  ///< float A[32][32];
    kAssign,     ///< x = e;
    kArrayAssign,///< A[i][j] = e;
    kIf,         ///< if (c) {..} else {..}
    kWhile,      ///< while (c) {..}
    kFor,        ///< for (i = e; i < e; i = i + c) {..}  (canonical)
    kPrint,      ///< print(e);
};

/** A statement node. */
struct Stmt
{
    StmtKind kind;
    Type type = Type::kI32; ///< declared type
    std::string name;       ///< declared/assigned variable or array name
    std::vector<int64_t> dims; ///< array extents
    ExprPtr expr;           ///< init / rhs / condition / print argument
    std::vector<ExprPtr> indices; ///< kArrayAssign subscripts
    std::vector<StmtPtr> body;
    std::vector<StmtPtr> else_body;

    // Canonical for-loop fields (kFor): for (name=expr; name CMP bound;
    // name = name + step).
    ExprPtr bound;
    int64_t step = 1;
    /** Comparison in the for condition: "<", "<=", ">", ">=". */
    std::string cmp;
    /**
     * Congruence annotation produced by the unroller: at entry to each
     * iteration, loop_var == residue (mod modulus).  modulus == 1 means
     * no fact.
     */
    int64_t iv_residue = 0;
    int64_t iv_modulus = 1;
    /**
     * Stable source-loop identity, assigned pre-order by the unroller
     * before any unrolling or peeling; clones inherit it, so every
     * block lowered from any copy of this loop's body can be traced
     * back to the one source loop (per-loop II reporting).
     */
    int loop_id = -1;

    /** Deep copy. */
    StmtPtr clone() const;
};

/** A whole rawc translation unit. */
struct Program
{
    std::vector<StmtPtr> stmts;
};

/** Helpers to build AST nodes (used by tests and the unroller). */
ExprPtr make_int_lit(int32_t v);
ExprPtr make_float_lit(float v);
ExprPtr make_var(const std::string &name, Type t);
ExprPtr make_binary(const std::string &op, ExprPtr l, ExprPtr r);

} // namespace raw

#endif // RAW_FRONTEND_AST_HPP
