#ifndef RAW_FRONTEND_LEXER_HPP
#define RAW_FRONTEND_LEXER_HPP

/**
 * @file
 * Hand-written lexer for rawc.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace raw {

/** Token kinds. */
enum class Tok : uint8_t {
    kEof,
    kIdent,
    kIntLit,
    kFloatLit,
    kKwInt, kKwFloat, kKwIf, kKwElse, kKwWhile, kKwFor, kKwPrint,
    kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
    kSemi, kComma,
    kAssign,                       // =
    kPlus, kMinus, kStar, kSlash, kPercent,
    kLt, kLe, kGt, kGe, kEq, kNe,
    kAmp, kPipe, kCaret, kShl, kShr,
    kAndAnd, kOrOr, kBang,
};

/** One token with its source position. */
struct Token
{
    Tok kind = Tok::kEof;
    std::string text;
    int32_t int_val = 0;
    float float_val = 0.0f;
    int line = 0;
    int col = 0;
};

/**
 * Tokenize @p source.  Throws FatalError with line/column info on a
 * lexical error.  Supports // and block comments.
 */
std::vector<Token> tokenize(const std::string &source);

} // namespace raw

#endif // RAW_FRONTEND_LEXER_HPP
