#ifndef RAW_FRONTEND_PARSER_HPP
#define RAW_FRONTEND_PARSER_HPP

/**
 * @file
 * Recursive-descent parser + type checker for rawc.
 */

#include <string>

#include "frontend/ast.hpp"

namespace raw {

/**
 * Parse and type-check @p source into an AST.  Throws FatalError with
 * position info on syntax or type errors.  Implicit int->float
 * conversions are made explicit as kCast nodes.
 */
Program parse_program(const std::string &source);

} // namespace raw

#endif // RAW_FRONTEND_PARSER_HPP
