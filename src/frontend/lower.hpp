#ifndef RAW_FRONTEND_LOWER_HPP
#define RAW_FRONTEND_LOWER_HPP

/**
 * @file
 * AST -> IR lowering.
 *
 * Multi-dimensional array references are flattened to explicit index
 * arithmetic; logical operators are normalized to 0/1 integer values
 * (no short-circuiting); each named scalar becomes a persistent
 * variable (ValueInfo::is_var).  A hidden epilogue stores every named
 * scalar into the `__ivars` / `__fvars` arrays so the harness can read
 * final scalar values out of simulated memory for verification.
 */

#include "frontend/ast.hpp"
#include "ir/function.hpp"

namespace raw {

/** Lower a (possibly unrolled) program to an IR function. */
Function lower_program(const Program &prog);

} // namespace raw

#endif // RAW_FRONTEND_LOWER_HPP
