#include "frontend/lower.hpp"

#include <unordered_map>

#include "ir/builder.hpp"
#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace raw {

namespace {

class Lowerer
{
  public:
    Function
    run(const Program &prog)
    {
        fn_.name = "main";
        int entry = fn_.new_block("entry");
        b_ = std::make_unique<IRBuilder>(fn_);
        b_->set_block(entry);
        lower_stmts(prog.stmts);
        store_scalars();
        b_->halt();
        return std::move(fn_);
    }

  private:
    Function fn_;
    std::unique_ptr<IRBuilder> b_;
    std::unordered_map<std::string, ValueId> scalars_;
    std::unordered_map<std::string, int> arrays_;
    std::vector<EntryFact> active_facts_;

    int
    new_block(const std::string &name)
    {
        int id = fn_.new_block(name);
        fn_.blocks[id].entry_facts = active_facts_;
        return id;
    }

    ValueId
    scalar(const std::string &name)
    {
        auto it = scalars_.find(name);
        check(it != scalars_.end(), "lower: unknown scalar " + name);
        return it->second;
    }

    /** Flatten multi-dim subscripts to one element index value. */
    ValueId
    flat_index(int array, const std::vector<ExprPtr> &indices)
    {
        const ArrayInfo &ai = fn_.arrays[array];
        ValueId idx = lower_expr(*indices[0]);
        for (size_t d = 1; d < indices.size(); d++) {
            ValueId dim =
                b_->const_int(static_cast<int32_t>(ai.dims[d]));
            ValueId scaled = b_->emit(Op::kMul, Type::kI32, idx, dim);
            ValueId sub = lower_expr(*indices[d]);
            idx = b_->emit(Op::kAdd, Type::kI32, scaled, sub);
        }
        return idx;
    }

    /** Normalize an int value to 0/1. */
    ValueId
    normalize_bool(ValueId v)
    {
        ValueId zero = b_->const_int(0);
        return b_->emit(Op::kCmpNe, Type::kI32, v, zero);
    }

    ValueId
    lower_expr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::kIntLit:
            return b_->const_int(e.int_val);
          case ExprKind::kFloatLit:
            return b_->const_float(e.float_val);
          case ExprKind::kVar:
            return scalar(e.name);
          case ExprKind::kArray: {
            int a = arrays_.at(e.name);
            return b_->load(a, flat_index(a, e.kids));
          }
          case ExprKind::kCast: {
            ValueId v = lower_expr(*e.kids[0]);
            if (fn_.values[v].type == e.type)
                return v;
            Op op = e.type == Type::kF32 ? Op::kItoF : Op::kFtoI;
            return b_->emit(op, e.type, v);
          }
          case ExprKind::kUnary: {
            ValueId v = lower_expr(*e.kids[0]);
            if (e.op == "-") {
                Op op = e.type == Type::kF32 ? Op::kFNeg : Op::kNeg;
                return b_->emit(op, e.type, v);
            }
            if (e.op == "sqrt")
                return b_->emit(Op::kFSqrt, Type::kF32, v);
            check(e.op == "!", "lower: bad unary op " + e.op);
            ValueId zero = b_->const_int(0);
            return b_->emit(Op::kCmpEq, Type::kI32, v, zero);
          }
          case ExprKind::kBinary:
            return lower_binary(e);
        }
        panic("lower: bad expr kind");
    }

    ValueId
    lower_binary(const Expr &e)
    {
        if (e.op == "&&" || e.op == "||") {
            ValueId l = normalize_bool(lower_expr(*e.kids[0]));
            ValueId r = normalize_bool(lower_expr(*e.kids[1]));
            Op op = e.op == "&&" ? Op::kAnd : Op::kOr;
            return b_->emit(op, Type::kI32, l, r);
        }
        ValueId l = lower_expr(*e.kids[0]);
        ValueId r = lower_expr(*e.kids[1]);
        bool f = fn_.values[l].type == Type::kF32;
        Op op;
        if (e.op == "+")
            op = f ? Op::kFAdd : Op::kAdd;
        else if (e.op == "-")
            op = f ? Op::kFSub : Op::kSub;
        else if (e.op == "*")
            op = f ? Op::kFMul : Op::kMul;
        else if (e.op == "/")
            op = f ? Op::kFDiv : Op::kDiv;
        else if (e.op == "%")
            op = Op::kRem;
        else if (e.op == "&")
            op = Op::kAnd;
        else if (e.op == "|")
            op = Op::kOr;
        else if (e.op == "^")
            op = Op::kXor;
        else if (e.op == "<<")
            op = Op::kShl;
        else if (e.op == ">>")
            op = Op::kShr;
        else if (e.op == "<")
            op = f ? Op::kFCmpLt : Op::kCmpLt;
        else if (e.op == "<=")
            op = f ? Op::kFCmpLe : Op::kCmpLe;
        else if (e.op == ">")
            op = f ? Op::kFCmpGt : Op::kCmpGt;
        else if (e.op == ">=")
            op = f ? Op::kFCmpGe : Op::kCmpGe;
        else if (e.op == "==")
            op = f ? Op::kFCmpEq : Op::kCmpEq;
        else if (e.op == "!=")
            op = f ? Op::kFCmpNe : Op::kCmpNe;
        else
            panic("lower: bad binary op " + e.op);
        return b_->emit(op, e.type, l, r);
    }

    void
    lower_stmts(const std::vector<StmtPtr> &stmts)
    {
        for (const StmtPtr &s : stmts)
            lower_stmt(*s);
    }

    void
    lower_stmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::kDeclScalar: {
            ValueId v = fn_.new_value(s.type, s.name, true);
            scalars_[s.name] = v;
            if (s.expr)
                b_->move_to(v, lower_expr(*s.expr));
            break;
          }
          case StmtKind::kDeclArray:
            arrays_[s.name] = fn_.new_array(s.name, s.type, s.dims);
            break;
          case StmtKind::kAssign:
            b_->move_to(scalar(s.name), lower_expr(*s.expr));
            break;
          case StmtKind::kArrayAssign: {
            int a = arrays_.at(s.name);
            ValueId idx = flat_index(a, s.indices);
            b_->store(a, idx, lower_expr(*s.expr));
            break;
          }
          case StmtKind::kPrint:
            b_->print(lower_expr(*s.expr));
            break;
          case StmtKind::kIf:
            lower_if(s);
            break;
          case StmtKind::kWhile:
            lower_while(s);
            break;
          case StmtKind::kFor:
            lower_for(s);
            break;
        }
    }

    void
    lower_if(const Stmt &s)
    {
        ValueId cond = lower_expr(*s.expr);
        int then_b = new_block("then");
        int join_b = -1;
        if (s.else_body.empty()) {
            join_b = new_block("join");
            b_->branch(cond, then_b, join_b);
            b_->set_block(then_b);
            lower_stmts(s.body);
            b_->jump(join_b);
        } else {
            int else_b = new_block("else");
            join_b = new_block("join");
            b_->branch(cond, then_b, else_b);
            b_->set_block(then_b);
            lower_stmts(s.body);
            b_->jump(join_b);
            b_->set_block(else_b);
            lower_stmts(s.else_body);
            b_->jump(join_b);
        }
        b_->set_block(join_b);
    }

    void
    lower_while(const Stmt &s)
    {
        int header = new_block("while_head");
        b_->jump(header);
        b_->set_block(header);
        ValueId cond = lower_expr(*s.expr);
        int body = new_block("while_body");
        int exit = new_block("while_exit");
        b_->branch(cond, body, exit);
        b_->set_block(body);
        lower_stmts(s.body);
        b_->jump(header);
        b_->set_block(exit);
    }

    void
    lower_for(const Stmt &s)
    {
        ValueId iv = scalar(s.name);
        b_->move_to(iv, lower_expr(*s.expr));

        bool have_fact = s.iv_modulus > 1;
        if (have_fact)
            active_facts_.push_back(
                {iv, Congruence::mod(s.iv_residue, s.iv_modulus)});

        int header = new_block("for_head");
        b_->jump(header);
        b_->set_block(header);
        ValueId bound = lower_expr(*s.bound);
        Op cmp;
        if (s.cmp == "<")
            cmp = Op::kCmpLt;
        else if (s.cmp == "<=")
            cmp = Op::kCmpLe;
        else if (s.cmp == ">")
            cmp = Op::kCmpGt;
        else
            cmp = Op::kCmpGe;
        ValueId cond = b_->emit(cmp, Type::kI32, iv, bound);
        int body = new_block("for_body");
        b_->fn().blocks[body].src_loop = s.loop_id;
        int exit;
        {
            // The exit block is outside the fact's scope.
            if (have_fact)
                active_facts_.pop_back();
            exit = new_block("for_exit");
            if (have_fact)
                active_facts_.push_back(
                    {iv, Congruence::mod(s.iv_residue, s.iv_modulus)});
        }
        b_->branch(cond, body, exit);
        b_->set_block(body);
        lower_stmts(s.body);
        ValueId step =
            b_->const_int(static_cast<int32_t>(s.step));
        ValueId next = b_->emit(Op::kAdd, Type::kI32, iv, step);
        b_->move_to(iv, next);
        b_->jump(header);

        if (have_fact)
            active_facts_.pop_back();
        b_->set_block(exit);
    }

    /** Epilogue: store every named scalar to __ivars / __fvars. */
    void
    store_scalars()
    {
        std::vector<ValueId> ivars, fvars;
        for (ValueId v : fn_.var_ids()) {
            if (fn_.values[v].type == Type::kI32)
                ivars.push_back(v);
            else
                fvars.push_back(v);
        }
        if (!ivars.empty()) {
            int a = fn_.new_array("__ivars", Type::kI32,
                                  {static_cast<int64_t>(ivars.size())});
            for (size_t k = 0; k < ivars.size(); k++)
                b_->store(a, b_->const_int(static_cast<int32_t>(k)),
                          ivars[k]);
        }
        if (!fvars.empty()) {
            int a = fn_.new_array("__fvars", Type::kF32,
                                  {static_cast<int64_t>(fvars.size())});
            for (size_t k = 0; k < fvars.size(); k++)
                b_->store(a, b_->const_int(static_cast<int32_t>(k)),
                          fvars[k]);
        }
    }
};

} // namespace

Function
lower_program(const Program &prog)
{
    Lowerer l;
    return l.run(prog);
}

} // namespace raw
