#ifndef RAW_FRONTEND_UNROLL_HPP
#define RAW_FRONTEND_UNROLL_HPP

/**
 * @file
 * AST-level loop unrolling for affine staticization (Section 5.3).
 *
 * With element-wise low-order interleaving over N tiles, the home tile
 * of `A[c0 + c1*i]` repeats with period d = N / gcd(c1 * step, N) as
 * the loop over i advances.  Unrolling the loop by the lcm of the
 * repetition distances of every affine access makes each unrolled
 * access hit a single home tile every iteration — the *static
 * reference property* — so the reference can be served over the static
 * network.  The unroll factor per loop dimension is at most N (the
 * paper's bound).
 *
 * The pass:
 *  - computes constant loop trip counts (canonical for loops whose
 *    init/bound fold to constants);
 *  - fully peels a loop when the required factor reaches the trip
 *    count (every access index becomes an exact constant);
 *  - otherwise unrolls by the lcm requirement, emitting a peeled
 *    remainder, and annotates the loop with the congruence fact
 *    `iv == start (mod U*step)` consumed by the IR congruence
 *    analysis;
 *  - leaves non-canonical or non-constant loops untouched (their
 *    references fall back to the dynamic network).
 */

#include <cstdint>

#include "frontend/ast.hpp"

namespace raw {

/** Tuning knobs for the unroller. */
struct UnrollOptions
{
    /** Machine size: the interleaving factor and unroll cap. */
    int n_tiles = 1;
    /** Disable entirely (ablation: every varying reference dynamic). */
    bool enable = true;
    /** Peel loops opportunistically when T * weight is below this. */
    int64_t small_peel_limit = 500;
    /** Upper bound on T * weight for staticization-forced peeling. */
    int64_t forced_peel_limit = 160000;
};

/** Statistics reported by the unroller (used by tests and benches). */
struct UnrollStats
{
    int loops_seen = 0;
    int loops_unrolled = 0;
    int loops_peeled = 0;
};

/**
 * Unroll loops in @p prog in place for a machine with
 * @p opts.n_tiles tiles.  Returns statistics.
 */
UnrollStats unroll_program(Program &prog, const UnrollOptions &opts);

/** AST weight: total node count of a statement (code-size estimate). */
int64_t stmt_weight(const Stmt &s);

} // namespace raw

#endif // RAW_FRONTEND_UNROLL_HPP
