#include "frontend/ast.hpp"

namespace raw {

ExprPtr
Expr::clone() const
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->type = type;
    e->int_val = int_val;
    e->float_val = float_val;
    e->name = name;
    e->op = op;
    for (const ExprPtr &k : kids)
        e->kids.push_back(k->clone());
    return e;
}

StmtPtr
Stmt::clone() const
{
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->type = type;
    s->name = name;
    s->dims = dims;
    if (expr)
        s->expr = expr->clone();
    for (const ExprPtr &i : indices)
        s->indices.push_back(i->clone());
    for (const StmtPtr &b : body)
        s->body.push_back(b->clone());
    for (const StmtPtr &b : else_body)
        s->else_body.push_back(b->clone());
    if (bound)
        s->bound = bound->clone();
    s->step = step;
    s->cmp = cmp;
    s->iv_residue = iv_residue;
    s->iv_modulus = iv_modulus;
    s->loop_id = loop_id;
    return s;
}

ExprPtr
make_int_lit(int32_t v)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kIntLit;
    e->type = Type::kI32;
    e->int_val = v;
    return e;
}

ExprPtr
make_float_lit(float v)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kFloatLit;
    e->type = Type::kF32;
    e->float_val = v;
    return e;
}

ExprPtr
make_var(const std::string &name, Type t)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kVar;
    e->type = t;
    e->name = name;
    return e;
}

ExprPtr
make_binary(const std::string &op, ExprPtr l, ExprPtr r)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->op = op;
    e->type = (l->type == Type::kF32 || r->type == Type::kF32)
                  ? Type::kF32
                  : Type::kI32;
    bool is_cmp = op == "<" || op == "<=" || op == ">" || op == ">=" ||
                  op == "==" || op == "!=";
    e->kids.push_back(std::move(l));
    e->kids.push_back(std::move(r));
    if (is_cmp)
        e->type = Type::kI32;
    return e;
}

} // namespace raw
