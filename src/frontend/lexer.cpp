#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/error.hpp"

namespace raw {

namespace {

const std::unordered_map<std::string, Tok> kKeywords = {
    {"int", Tok::kKwInt},     {"float", Tok::kKwFloat},
    {"if", Tok::kKwIf},       {"else", Tok::kKwElse},
    {"while", Tok::kKwWhile}, {"for", Tok::kKwFor},
    {"print", Tok::kKwPrint},
};

} // namespace

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1, col = 1;

    auto advance = [&](size_t n) {
        for (size_t k = 0; k < n; k++) {
            if (i < src.size() && src[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
            i++;
        }
    };
    auto err = [&](const std::string &msg) {
        fatal("lex error at " + std::to_string(line) + ":" +
              std::to_string(col) + ": " + msg);
    };
    auto push = [&](Tok k, const std::string &text) {
        Token t;
        t.kind = k;
        t.text = text;
        t.line = line;
        t.col = col;
        out.push_back(t);
        advance(text.size());
    };

    while (i < src.size()) {
        char c = src[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
            while (i < src.size() && src[i] != '\n')
                advance(1);
            continue;
        }
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
            advance(2);
            while (i + 1 < src.size() &&
                   !(src[i] == '*' && src[i + 1] == '/'))
                advance(1);
            if (i + 1 >= src.size())
                err("unterminated block comment");
            advance(2);
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t j = i;
            while (j < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[j])) ||
                    src[j] == '_'))
                j++;
            std::string word = src.substr(i, j - i);
            auto kw = kKeywords.find(word);
            push(kw != kKeywords.end() ? kw->second : Tok::kIdent, word);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            bool is_float = false;
            while (j < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[j])))
                j++;
            if (j < src.size() && src[j] == '.') {
                is_float = true;
                j++;
                while (j < src.size() &&
                       std::isdigit(static_cast<unsigned char>(src[j])))
                    j++;
            }
            if (j < src.size() && (src[j] == 'e' || src[j] == 'E')) {
                is_float = true;
                j++;
                if (j < src.size() && (src[j] == '+' || src[j] == '-'))
                    j++;
                while (j < src.size() &&
                       std::isdigit(static_cast<unsigned char>(src[j])))
                    j++;
            }
            if (j < src.size() && src[j] == 'f') {
                is_float = true;
                j++;
            }
            std::string text = src.substr(i, j - i);
            Token t;
            t.text = text;
            t.line = line;
            t.col = col;
            if (is_float) {
                t.kind = Tok::kFloatLit;
                t.float_val = std::strtof(text.c_str(), nullptr);
            } else {
                t.kind = Tok::kIntLit;
                t.int_val =
                    static_cast<int32_t>(std::strtol(text.c_str(),
                                                     nullptr, 10));
            }
            out.push_back(t);
            advance(text.size());
            continue;
        }
        // Two-character operators first.
        if (i + 1 < src.size()) {
            std::string two = src.substr(i, 2);
            Tok k = Tok::kEof;
            if (two == "<=") k = Tok::kLe;
            else if (two == ">=") k = Tok::kGe;
            else if (two == "==") k = Tok::kEq;
            else if (two == "!=") k = Tok::kNe;
            else if (two == "<<") k = Tok::kShl;
            else if (two == ">>") k = Tok::kShr;
            else if (two == "&&") k = Tok::kAndAnd;
            else if (two == "||") k = Tok::kOrOr;
            if (k != Tok::kEof) {
                push(k, two);
                continue;
            }
        }
        Tok k = Tok::kEof;
        switch (c) {
          case '(': k = Tok::kLParen; break;
          case ')': k = Tok::kRParen; break;
          case '{': k = Tok::kLBrace; break;
          case '}': k = Tok::kRBrace; break;
          case '[': k = Tok::kLBracket; break;
          case ']': k = Tok::kRBracket; break;
          case ';': k = Tok::kSemi; break;
          case ',': k = Tok::kComma; break;
          case '=': k = Tok::kAssign; break;
          case '+': k = Tok::kPlus; break;
          case '-': k = Tok::kMinus; break;
          case '*': k = Tok::kStar; break;
          case '/': k = Tok::kSlash; break;
          case '%': k = Tok::kPercent; break;
          case '<': k = Tok::kLt; break;
          case '>': k = Tok::kGt; break;
          case '&': k = Tok::kAmp; break;
          case '|': k = Tok::kPipe; break;
          case '^': k = Tok::kCaret; break;
          case '!': k = Tok::kBang; break;
          default:
            err(std::string("unexpected character '") + c + "'");
        }
        push(k, std::string(1, c));
    }

    Token eof;
    eof.kind = Tok::kEof;
    eof.line = line;
    eof.col = col;
    out.push_back(eof);
    return out;
}

} // namespace raw
