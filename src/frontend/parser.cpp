#include "frontend/parser.hpp"

#include <unordered_map>

#include "frontend/lexer.hpp"
#include "support/error.hpp"

namespace raw {

namespace {

/** Parser state: token stream plus symbol tables. */
class Parser
{
  public:
    explicit Parser(const std::string &src) : toks_(tokenize(src)) {}

    Program
    parse()
    {
        Program p;
        while (peek().kind != Tok::kEof)
            p.stmts.push_back(parse_stmt());
        return p;
    }

  private:
    std::vector<Token> toks_;
    size_t pos_ = 0;
    std::unordered_map<std::string, Type> scalars_;
    std::unordered_map<std::string, std::pair<Type, size_t>> arrays_;

    const Token &peek(int ahead = 0) const
    {
        size_t i = pos_ + ahead;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    const Token &
    next()
    {
        const Token &t = peek();
        if (pos_ + 1 < toks_.size())
            pos_++;
        return t;
    }
    [[noreturn]] void
    err(const std::string &msg)
    {
        const Token &t = peek();
        fatal("parse error at " + std::to_string(t.line) + ":" +
              std::to_string(t.col) + " near '" + t.text + "': " + msg);
    }
    const Token &
    expect(Tok k, const std::string &what)
    {
        if (peek().kind != k)
            err("expected " + what);
        return next();
    }

    ExprPtr
    coerce(ExprPtr e, Type want)
    {
        if (e->type == want)
            return e;
        auto c = std::make_unique<Expr>();
        c->kind = ExprKind::kCast;
        c->type = want;
        c->kids.push_back(std::move(e));
        return c;
    }

    /** Unify operand types for arithmetic; returns result type. */
    Type
    unify(ExprPtr &l, ExprPtr &r)
    {
        if (l->type == Type::kF32 || r->type == Type::kF32) {
            l = coerce(std::move(l), Type::kF32);
            r = coerce(std::move(r), Type::kF32);
            return Type::kF32;
        }
        return Type::kI32;
    }

    ExprPtr
    binary(const std::string &op, ExprPtr l, ExprPtr r)
    {
        bool cmp = op == "<" || op == "<=" || op == ">" || op == ">=" ||
                   op == "==" || op == "!=";
        bool int_only = op == "%" || op == "&" || op == "|" || op == "^" ||
                        op == "<<" || op == ">>" || op == "&&" ||
                        op == "||";
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kBinary;
        e->op = op;
        if (int_only) {
            if (l->type != Type::kI32 || r->type != Type::kI32)
                err("operator '" + op + "' requires int operands");
            e->type = Type::kI32;
        } else {
            Type t = unify(l, r);
            e->type = cmp ? Type::kI32 : t;
        }
        e->kids.push_back(std::move(l));
        e->kids.push_back(std::move(r));
        return e;
    }

    // Expression grammar, lowest precedence first.
    ExprPtr
    parse_expr()
    {
        return parse_or();
    }
    ExprPtr
    parse_or()
    {
        ExprPtr e = parse_and();
        while (peek().kind == Tok::kOrOr) {
            next();
            e = binary("||", std::move(e), parse_and());
        }
        return e;
    }
    ExprPtr
    parse_and()
    {
        ExprPtr e = parse_bitor();
        while (peek().kind == Tok::kAndAnd) {
            next();
            e = binary("&&", std::move(e), parse_bitor());
        }
        return e;
    }
    ExprPtr
    parse_bitor()
    {
        ExprPtr e = parse_bitxor();
        while (peek().kind == Tok::kPipe) {
            next();
            e = binary("|", std::move(e), parse_bitxor());
        }
        return e;
    }
    ExprPtr
    parse_bitxor()
    {
        ExprPtr e = parse_bitand();
        while (peek().kind == Tok::kCaret) {
            next();
            e = binary("^", std::move(e), parse_bitand());
        }
        return e;
    }
    ExprPtr
    parse_bitand()
    {
        ExprPtr e = parse_equality();
        while (peek().kind == Tok::kAmp) {
            next();
            e = binary("&", std::move(e), parse_equality());
        }
        return e;
    }
    ExprPtr
    parse_equality()
    {
        ExprPtr e = parse_rel();
        while (peek().kind == Tok::kEq || peek().kind == Tok::kNe) {
            std::string op = next().text;
            e = binary(op, std::move(e), parse_rel());
        }
        return e;
    }
    ExprPtr
    parse_rel()
    {
        ExprPtr e = parse_shift();
        while (peek().kind == Tok::kLt || peek().kind == Tok::kLe ||
               peek().kind == Tok::kGt || peek().kind == Tok::kGe) {
            std::string op = next().text;
            e = binary(op, std::move(e), parse_shift());
        }
        return e;
    }
    ExprPtr
    parse_shift()
    {
        ExprPtr e = parse_add();
        while (peek().kind == Tok::kShl || peek().kind == Tok::kShr) {
            std::string op = next().text;
            e = binary(op, std::move(e), parse_add());
        }
        return e;
    }
    ExprPtr
    parse_add()
    {
        ExprPtr e = parse_mul();
        while (peek().kind == Tok::kPlus || peek().kind == Tok::kMinus) {
            std::string op = next().text;
            e = binary(op, std::move(e), parse_mul());
        }
        return e;
    }
    ExprPtr
    parse_mul()
    {
        ExprPtr e = parse_unary();
        while (peek().kind == Tok::kStar || peek().kind == Tok::kSlash ||
               peek().kind == Tok::kPercent) {
            std::string op = next().text;
            e = binary(op, std::move(e), parse_unary());
        }
        return e;
    }
    ExprPtr
    parse_unary()
    {
        if (peek().kind == Tok::kMinus) {
            next();
            ExprPtr k = parse_unary();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::kUnary;
            e->op = "-";
            e->type = k->type;
            e->kids.push_back(std::move(k));
            return e;
        }
        if (peek().kind == Tok::kBang) {
            next();
            ExprPtr k = parse_unary();
            if (k->type != Type::kI32)
                err("'!' requires int operand");
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::kUnary;
            e->op = "!";
            e->type = Type::kI32;
            e->kids.push_back(std::move(k));
            return e;
        }
        // Cast: (int) or (float) followed by unary.
        if (peek().kind == Tok::kLParen &&
            (peek(1).kind == Tok::kKwInt || peek(1).kind == Tok::kKwFloat)
            && peek(2).kind == Tok::kRParen) {
            next();
            Type t = next().kind == Tok::kKwInt ? Type::kI32 : Type::kF32;
            next();
            ExprPtr k = parse_unary();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::kCast;
            e->type = t;
            e->kids.push_back(std::move(k));
            return e;
        }
        return parse_primary();
    }
    ExprPtr
    parse_primary()
    {
        const Token &t = peek();
        if (t.kind == Tok::kIntLit) {
            next();
            return make_int_lit(t.int_val);
        }
        if (t.kind == Tok::kFloatLit) {
            next();
            return make_float_lit(t.float_val);
        }
        if (t.kind == Tok::kLParen) {
            next();
            ExprPtr e = parse_expr();
            expect(Tok::kRParen, "')'");
            return e;
        }
        if (t.kind == Tok::kIdent) {
            std::string name = next().text;
            if (name == "sqrt" && peek().kind == Tok::kLParen) {
                next();
                ExprPtr arg = coerce(parse_expr(), Type::kF32);
                expect(Tok::kRParen, "')'");
                auto e = std::make_unique<Expr>();
                e->kind = ExprKind::kUnary;
                e->op = "sqrt";
                e->type = Type::kF32;
                e->kids.push_back(std::move(arg));
                return e;
            }
            if (peek().kind == Tok::kLBracket) {
                auto it = arrays_.find(name);
                if (it == arrays_.end())
                    err("undeclared array '" + name + "'");
                auto e = std::make_unique<Expr>();
                e->kind = ExprKind::kArray;
                e->name = name;
                e->type = it->second.first;
                while (peek().kind == Tok::kLBracket) {
                    next();
                    ExprPtr idx = parse_expr();
                    if (idx->type != Type::kI32)
                        err("array index must be int");
                    e->kids.push_back(std::move(idx));
                    expect(Tok::kRBracket, "']'");
                }
                if (e->kids.size() != it->second.second)
                    err("wrong number of subscripts for '" + name + "'");
                return e;
            }
            auto it = scalars_.find(name);
            if (it == scalars_.end())
                err("undeclared variable '" + name + "'");
            return make_var(name, it->second);
        }
        err("expected expression");
    }

    std::vector<StmtPtr>
    parse_block()
    {
        expect(Tok::kLBrace, "'{'");
        std::vector<StmtPtr> out;
        while (peek().kind != Tok::kRBrace)
            out.push_back(parse_stmt());
        next();
        return out;
    }

    StmtPtr
    parse_stmt()
    {
        const Token &t = peek();
        if (t.kind == Tok::kKwInt || t.kind == Tok::kKwFloat)
            return parse_decl();
        if (t.kind == Tok::kKwIf)
            return parse_if();
        if (t.kind == Tok::kKwWhile)
            return parse_while();
        if (t.kind == Tok::kKwFor)
            return parse_for();
        if (t.kind == Tok::kKwPrint) {
            next();
            expect(Tok::kLParen, "'('");
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kPrint;
            s->expr = parse_expr();
            expect(Tok::kRParen, "')'");
            expect(Tok::kSemi, "';'");
            return s;
        }
        if (t.kind == Tok::kIdent)
            return parse_assign();
        err("expected statement");
    }

    StmtPtr
    parse_decl()
    {
        Type ty = next().kind == Tok::kKwInt ? Type::kI32 : Type::kF32;
        std::string name = expect(Tok::kIdent, "identifier").text;
        if (scalars_.count(name) || arrays_.count(name))
            err("redeclaration of '" + name + "'");
        auto s = std::make_unique<Stmt>();
        s->type = ty;
        s->name = name;
        if (peek().kind == Tok::kLBracket) {
            s->kind = StmtKind::kDeclArray;
            while (peek().kind == Tok::kLBracket) {
                next();
                const Token &d = expect(Tok::kIntLit,
                                        "constant array dimension");
                if (d.int_val <= 0)
                    err("array dimension must be positive");
                s->dims.push_back(d.int_val);
                expect(Tok::kRBracket, "']'");
            }
            arrays_[name] = {ty, s->dims.size()};
        } else {
            s->kind = StmtKind::kDeclScalar;
            if (peek().kind == Tok::kAssign) {
                next();
                s->expr = coerce(parse_expr(), ty);
            }
            scalars_[name] = ty;
        }
        expect(Tok::kSemi, "';'");
        return s;
    }

    StmtPtr
    parse_assign()
    {
        std::string name = next().text;
        auto s = std::make_unique<Stmt>();
        s->name = name;
        if (peek().kind == Tok::kLBracket) {
            auto it = arrays_.find(name);
            if (it == arrays_.end())
                err("undeclared array '" + name + "'");
            s->kind = StmtKind::kArrayAssign;
            while (peek().kind == Tok::kLBracket) {
                next();
                ExprPtr idx = parse_expr();
                if (idx->type != Type::kI32)
                    err("array index must be int");
                s->indices.push_back(std::move(idx));
                expect(Tok::kRBracket, "']'");
            }
            if (s->indices.size() != it->second.second)
                err("wrong number of subscripts for '" + name + "'");
            expect(Tok::kAssign, "'='");
            s->expr = coerce(parse_expr(), it->second.first);
        } else {
            auto it = scalars_.find(name);
            if (it == scalars_.end())
                err("undeclared variable '" + name + "'");
            s->kind = StmtKind::kAssign;
            expect(Tok::kAssign, "'='");
            s->expr = coerce(parse_expr(), it->second);
        }
        expect(Tok::kSemi, "';'");
        return s;
    }

    StmtPtr
    parse_if()
    {
        next();
        expect(Tok::kLParen, "'('");
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kIf;
        s->expr = parse_expr();
        if (s->expr->type != Type::kI32)
            err("condition must be int");
        expect(Tok::kRParen, "')'");
        s->body = parse_block();
        if (peek().kind == Tok::kKwElse) {
            next();
            if (peek().kind == Tok::kKwIf) {
                s->else_body.push_back(parse_if());
            } else {
                s->else_body = parse_block();
            }
        }
        return s;
    }

    StmtPtr
    parse_while()
    {
        next();
        expect(Tok::kLParen, "'('");
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kWhile;
        s->expr = parse_expr();
        if (s->expr->type != Type::kI32)
            err("condition must be int");
        expect(Tok::kRParen, "')'");
        s->body = parse_block();
        return s;
    }

    /** for (i = e; i CMP e; i = i +/- c) — canonical form only. */
    StmtPtr
    parse_for()
    {
        next();
        expect(Tok::kLParen, "'('");
        std::string iv = expect(Tok::kIdent, "loop variable").text;
        auto it = scalars_.find(iv);
        if (it == scalars_.end())
            err("undeclared loop variable '" + iv + "'");
        if (it->second != Type::kI32)
            err("loop variable must be int");
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kFor;
        s->name = iv;
        expect(Tok::kAssign, "'='");
        s->expr = coerce(parse_expr(), Type::kI32);
        expect(Tok::kSemi, "';'");
        std::string iv2 = expect(Tok::kIdent, "loop variable").text;
        if (iv2 != iv)
            err("for condition must test the loop variable");
        Tok cmp = peek().kind;
        if (cmp != Tok::kLt && cmp != Tok::kLe && cmp != Tok::kGt &&
            cmp != Tok::kGe)
            err("for condition must be a comparison");
        s->cmp = next().text;
        s->bound = coerce(parse_expr(), Type::kI32);
        expect(Tok::kSemi, "';'");
        std::string iv3 = expect(Tok::kIdent, "loop variable").text;
        if (iv3 != iv)
            err("for increment must update the loop variable");
        expect(Tok::kAssign, "'='");
        std::string iv4 = expect(Tok::kIdent, "loop variable").text;
        if (iv4 != iv)
            err("for increment must be i = i +/- constant");
        bool neg = false;
        if (peek().kind == Tok::kPlus) {
            next();
        } else if (peek().kind == Tok::kMinus) {
            next();
            neg = true;
        } else {
            err("for increment must be i = i +/- constant");
        }
        const Token &st = expect(Tok::kIntLit, "constant step");
        if (st.int_val <= 0)
            err("for step must be a positive constant");
        s->step = neg ? -st.int_val : st.int_val;
        expect(Tok::kRParen, "')'");
        s->body = parse_block();
        return s;
    }
};

} // namespace

Program
parse_program(const std::string &source)
{
    Parser p(source);
    return p.parse();
}

} // namespace raw
