#include "rawcc/linker.hpp"

#include "rawcc/regalloc.hpp"
#include "support/error.hpp"

namespace raw {

CompiledProgram
link_program(const Function &fn, VirtualProgram &vp,
             const MachineConfig &machine, LinkStats *stats)
{
    const int n_tiles = machine.n_tiles;
    const int n_blocks = static_cast<int>(fn.blocks.size());

    CompiledProgram cp;
    cp.machine = machine;
    cp.arrays = vp.data.arrays;
    cp.total_words = vp.data.total_words;
    cp.num_prints = vp.num_prints;
    cp.spill_slots.assign(n_tiles, 0);
    cp.tiles.resize(n_tiles);
    cp.switches.resize(n_tiles);

    for (int t = 0; t < n_tiles; t++) {
        RegallocResult ra = allocate_registers(
            fn, vp.tiles[t], vp.persistent[t], machine.num_registers);
        cp.spill_slots[t] = ra.spill_slots;
        if (stats) {
            stats->spill_ops += ra.spill_ops;
            stats->total_spill_slots += ra.spill_slots;
        }

        // Decide trailing-jump elimination and block start offsets.
        std::vector<int64_t> start(n_blocks + 1, 0);
        std::vector<bool> drop(n_blocks, false);
        int64_t off = 0;
        for (int b = 0; b < n_blocks; b++) {
            start[b] = off;
            const auto &code = ra.blocks[b];
            size_t sz = code.size();
            if (!code.empty() && code.back().op == Op::kJump &&
                code.back().target == b + 1) {
                drop[b] = true;
                sz--;
            }
            off += static_cast<int64_t>(sz);
        }
        start[n_blocks] = off;

        TileProgram &tp = cp.tiles[t];
        tp.code.reserve(off);
        for (int b = 0; b < n_blocks; b++) {
            const auto &code = ra.blocks[b];
            size_t n = code.size() - (drop[b] ? 1 : 0);
            for (size_t k = 0; k < n; k++) {
                PInstr p = code[k];
                if (p.op == Op::kJump || p.op == Op::kBranch) {
                    check(p.target >= 0 && p.target < n_blocks,
                          "linker: bad processor branch target");
                    p.target = start[p.target];
                }
                tp.code.push_back(p);
            }
        }
    }

    for (int t = 0; t < n_tiles; t++) {
        if (!vp.switch_active[t])
            continue;
        std::vector<int64_t> start(n_blocks + 1, 0);
        std::vector<bool> drop(n_blocks, false);
        int64_t off = 0;
        for (int b = 0; b < n_blocks; b++) {
            start[b] = off;
            const auto &code = vp.switches[t][b];
            size_t sz = code.size();
            if (!code.empty() && code.back().k == SInstr::K::kJump &&
                code.back().target == b + 1) {
                drop[b] = true;
                sz--;
            }
            off += static_cast<int64_t>(sz);
        }
        start[n_blocks] = off;

        SwitchProgram &sp = cp.switches[t];
        sp.code.reserve(off);
        for (int b = 0; b < n_blocks; b++) {
            const auto &code = vp.switches[t][b];
            size_t n = code.size() - (drop[b] ? 1 : 0);
            for (size_t k = 0; k < n; k++) {
                SInstr s = code[k];
                if (s.k == SInstr::K::kJump ||
                    s.k == SInstr::K::kBnez) {
                    check(s.target >= 0 && s.target < n_blocks,
                          "linker: bad switch branch target");
                    s.target = start[s.target];
                }
                sp.code.push_back(std::move(s));
            }
        }
    }
    return cp;
}

} // namespace raw
