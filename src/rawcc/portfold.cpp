#include "rawcc/portfold.hpp"

#include <unordered_map>

#include "ir/eval.hpp"

#include "support/error.hpp"

namespace raw {

namespace {

/** May this opcode consume a port word as a source operand? */
bool
can_take_port_src(Op op)
{
    if (op == Op::kPrint)
        return true;
    if (op == Op::kStore)
        return true; // value operand only
    uint32_t dummy;
    return eval_op(op, 0, 0, dummy) || op == Op::kMove;
}

/** May this opcode's result go straight to the output port?
 *  Restricted to single-cycle producers so the latency model stays
 *  sound (the port has no scoreboard). */
bool
can_put_port_dst(Op op)
{
    switch (op) {
      case Op::kConst:
      case Op::kMove:
      case Op::kAdd:
      case Op::kSub:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kShl:
      case Op::kShr:
      case Op::kNeg:
      case Op::kNot:
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe:
        return true;
      default:
        return false;
    }
}

int
fold_block(std::vector<VInstr> &code, const Function &fn)
{
    // Use counts of every value within this stream.
    std::unordered_map<ValueId, int> uses;
    for (const VInstr &in : code)
        for (ValueId s : in.src)
            if (s >= 0)
                uses[s]++;

    int folded = 0;
    std::vector<VInstr> out;
    out.reserve(code.size());
    size_t k = 0;
    while (k < code.size()) {
        const VInstr &cur = code[k];

        // RECV t ; op ..., t, ...   ->   op ..., <port>, ...
        if (cur.op == Op::kRecv && k + 1 < code.size() &&
            cur.dst >= 0 && !fn.values[cur.dst].is_var &&
            uses[cur.dst] == 1) {
            VInstr next = code[k + 1];
            bool next_has_port = next.src[0] == kPortOperand ||
                                 next.src[1] == kPortOperand;
            int slot = -1;
            if (next.src[0] == cur.dst && next.src[1] != cur.dst)
                slot = 0;
            else if (next.src[1] == cur.dst &&
                     next.src[0] != cur.dst)
                slot = 1;
            // Store addresses must stay in registers (the home-tile
            // assertion reads them), so only the value operand folds.
            bool slot_ok =
                next.op != Op::kStore || slot == 1;
            if (slot >= 0 && slot_ok && !next_has_port &&
                can_take_port_src(next.op)) {
                next.src[slot] = kPortOperand;
                out.push_back(next);
                folded++;
                k += 2;
                continue;
            }
        }

        // op t, ... ; SEND t   ->   op <port>, ...
        if (k + 1 < code.size() && cur.dst >= 0 &&
            !fn.values[cur.dst].is_var && uses[cur.dst] == 1 &&
            can_put_port_dst(cur.op) &&
            cur.src[0] != kPortOperand &&
            cur.src[1] != kPortOperand) {
            const VInstr &next = code[k + 1];
            if (next.op == Op::kSend && next.src[0] == cur.dst) {
                VInstr prod = cur;
                prod.dst = kPortOperand;
                out.push_back(prod);
                folded++;
                k += 2;
                continue;
            }
        }

        out.push_back(cur);
        k++;
    }
    code = std::move(out);
    return folded;
}

} // namespace

int
fold_port_operands(VirtualProgram &vp, const Function &fn)
{
    int folded = 0;
    for (auto &tile : vp.tiles)
        for (auto &block : tile)
            folded += fold_block(block, fn);
    return folded;
}

} // namespace raw
