#ifndef RAW_RAWCC_COMPILER_HPP
#define RAW_RAWCC_COMPILER_HPP

/**
 * @file
 * RAWCC public API: compile a rawc source program for a Raw machine.
 *
 * Pipeline (Section 3.2): basic block identification with loop
 * unrolling (frontend + unroller), basic block orchestration
 * (renaming, task graph, partitioning, stitching, communication
 * generation, event scheduling), code generation (register
 * allocation + linking).
 *
 * Typical use:
 * @code
 *   raw::MachineConfig m = raw::MachineConfig::base(16);
 *   raw::CompileOutput out = raw::compile_source(src, m);
 *   raw::Simulator sim(out.program);
 *   raw::SimResult r = sim.run();
 * @endcode
 */

#include <string>

#include "frontend/unroll.hpp"
#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "rawcc/linker.hpp"
#include "rawcc/orchestrater.hpp"
#include "sim/isa.hpp"

namespace raw {

/** All compilation knobs. */
struct CompilerOptions
{
    UnrollOptions unroll;
    OrchestraterOptions orch;
    /** Run the IR verifier between phases. */
    bool verify_ir = true;
    /** Blocks longer than this are cut (see transform/split.hpp). */
    size_t max_block_len = 20000;
    /**
     * Usage-aware data partitioning (the paper's stated future work
     * for the round-robin policy): compile once, observe where each
     * scalar's producers/consumers land, then recompile with each
     * scalar homed on its most-voted tile.
     */
    bool smart_homes = false;
    /**
     * Profile-guided optimization (--pgo): compile, simulate the
     * result fault-free once, then race a small portfolio of
     * semantically equivalent compile variants (pgo_candidates():
     * congestion-feedback placement folding the measured per-tile
     * occupancy into the cost model, criticality-weighted traffic,
     * alternative scheduler priorities, usage-voted homes, peeling
     * aggressiveness) and keep the fastest measured program.  The
     * plain compile is always candidate 0, so this never loses
     * cycles.  Acts in compile_source (unroll variants precede
     * lowering); ignored when orch.partition.feedback is already
     * populated (the harness's cached-profile path sets it
     * directly).
     */
    bool pgo = false;
};

/** Wall-clock timing of each compile stage (milliseconds). */
struct PhaseTimings
{
    double parse_ms = 0;
    double unroll_ms = 0;
    double lower_ms = 0;
    double transform_ms = 0;
    double orchestrate_ms = 0;
    double link_ms = 0;
    double total_ms = 0;
};

/** Compilation statistics (consumed by benches and tests). */
struct CompileStats
{
    UnrollStats unroll;
    int dynamic_refs = 0;
    int replicated_branches = 0;
    int broadcast_branches = 0;
    int64_t spill_ops = 0;
    int folded_port_ops = 0;
    /** Placement candidate swaps evaluated during orchestration. */
    int64_t placement_swaps = 0;
    int64_t ir_instrs = 0;
    int64_t static_instrs = 0;
    /** Scheduler makespan estimate per block. */
    std::vector<int64_t> block_makespan;
    /** Scheduler-estimated issue slots per tile (all blocks). */
    std::vector<int64_t> est_tile_busy;
    /** Per-loop-block modulo-scheduling outcomes (--modulo). */
    std::vector<BlockPipelineStats> block_pipeline;
    /** Small-block oracle reports (--oracle-budget). */
    std::vector<OracleReport> oracle_reports;
    /** Per-stage compile time. */
    PhaseTimings timings;
    /** Block-schedule cache traffic (includes smart-homes probes). */
    SchedCacheCounters cache;
    /** Parallel partition phase inside orchestrate_ms (ms). */
    double orch_partition_ms = 0;
    /** Parallel schedule+emit phase inside orchestrate_ms (ms). */
    double orch_schedule_ms = 0;

    /** Sum of the per-block makespan estimates. */
    int64_t estimated_makespan() const;
};

/** Result of a compilation. */
struct CompileOutput
{
    CompiledProgram program;
    CompileStats stats;
    /** Final IR (post-unroll/rename), useful for dumps and tests. */
    Function fn;
};

struct SimResult;

/**
 * Fold a profiled run into per-tile placement penalties: switch load
 * (words routed plus ROUTE stall cycles) and processor occupancy
 * (issue plus send/receive-blocked cycles), each normalized to
 * 0..kPlacePenaltyMax.  Returns an empty feedback (no-op) when the
 * profile is missing or degenerate.
 */
PlacementFeedback placement_feedback_from_profile(
    const SimResult &sim, const MachineConfig &machine);

/**
 * The candidate variants a PGO pass explores, all semantically
 * equivalent compiles of the same program: the options as given,
 * congestion-feedback placement (@p fb from the first pass),
 * criticality-weighted placement traffic, a small set of alternative
 * scheduler priority weightings, usage-voted data homes, and a more
 * aggressive peeling limit.  Candidate 0 is always @p base
 * unchanged, so a measured best-of pick can never lose to the plain
 * compile.  Every candidate has pgo cleared.
 */
std::vector<CompilerOptions> pgo_candidates(
    const CompilerOptions &base, const PlacementFeedback &fb);

/**
 * Canonical serialization of every option that can change the
 * compiled program.  Two option sets with equal fingerprints compile
 * any source to the same output; knobs that only affect how the
 * compiler runs (verify_ir, pgo driver flag, jobs, cache tiers) are
 * excluded.  pgo_candidates() uses this to drop duplicate candidates
 * before racing them.
 */
std::string options_fingerprint(const CompilerOptions &opts);

/** Compile rawc source text for @p machine. */
CompileOutput compile_source(const std::string &source,
                             const MachineConfig &machine,
                             const CompilerOptions &opts = {});

/**
 * Compile an already-lowered IR function (tests that synthesize IR
 * directly).  Runs folding, renaming and orchestration; no unrolling.
 */
CompileOutput compile_function(Function fn, const MachineConfig &machine,
                               const CompilerOptions &opts = {});

} // namespace raw

#endif // RAW_RAWCC_COMPILER_HPP
