#ifndef RAW_RAWCC_SCHEDCACHE_HPP
#define RAW_RAWCC_SCHEDCACHE_HPP

/**
 * @file
 * Content-addressed block-schedule cache.
 *
 * RAWCC schedules each basic block independently (per-block task
 * graphs, partitions, placements, event schedules), so the result of
 * orchestrating one block is a pure function of (a) the block's
 * renamed instructions plus its control tail, (b) the per-block slice
 * of the global analyses — variable homes, liveness, replication,
 * switch-register binding, entry congruence facts, array bases — and
 * (c) the machine configuration and the scheduling-relevant compiler
 * options.  This module canonicalizes exactly those inputs into a
 * content-addressed key and caches the per-block outputs, so that
 * --pgo candidate races, smart-homes double compiles and repeated
 * runs reuse every block they don't actually change.
 *
 * Keys are *alpha-invariant*: value ids and array ids are renumbered
 * by first appearance inside the block, so renaming churn caused by
 * unrelated edits elsewhere in the program still hits.  Cached
 * streams are stored in the same canonical numbering and remapped
 * onto the hitting block's real ids on the way out, which is what
 * makes a hit bit-identical to a recompute.
 *
 * Two entry kinds per block, matching the two expensive pipeline
 * stages:
 *  - a *partition* entry (placement, usage votes, switch-activity
 *    probe), keyed by block content + partition options;
 *  - a *schedule* entry (the final per-tile / per-switch instruction
 *    streams of the block), keyed by the partition key + event
 *    scheduler options + the global switch-activity vector.
 *
 * Tiers: a process-wide in-memory map (bounded; insertions stop at
 * the cap) and an opt-in on-disk tier (--cache-dir) whose entries
 * carry a format version stamp, the full key and a checksum —
 * mismatch, truncation or corruption of any kind degrades to a clean
 * recompute and the entry is rewritten.  Both tiers store entries in
 * serialized form, one flat buffer per entry, parsed on hit: keeping
 * hundreds of thousands of structured entries (nested stream/route
 * vectors) resident degraded the allocator for the whole process.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/liveness.hpp"
#include "analysis/replication.hpp"
#include "analysis/taskgraph.hpp"
#include "rawcc/orchestrater.hpp"
#include "sim/isa.hpp"

namespace raw {

/** Bump whenever key construction or payload layout changes. */
extern const char *const kSchedCacheVersion;

/**
 * Canonical per-block renumbering of value and array ids, in order of
 * first appearance over the block's instructions followed by its
 * control tail.  The forward vectors turn cached canonical streams
 * back into real ids; the inverse direction is served by sorted
 * (id, canon) vectors and binary search — blocks are looked up
 * thousands of times per compile, and hash maps here cost one node
 * allocation per distinct id, which dominated warm-cache compiles.
 */
struct BlockCanon
{
    std::vector<ValueId> canon_to_value;
    std::vector<int32_t> canon_to_array;
    /** (real id, canonical id), sorted by real id. */
    std::vector<std::pair<ValueId, int32_t>> value_lookup;
    std::vector<std::pair<int32_t, int32_t>> array_lookup;
    /** Global print_seq of the block's first kPrint (-1: none). */
    int print_base = -1;

    int32_t canon_value(ValueId v) const;
    ValueId value_of(int32_t canon) const;
    int32_t canon_array(int32_t a) const;
    int32_t array_of(int32_t canon) const;
    /** canon_value without the must-exist check (-1 when absent). */
    int32_t find_value(ValueId v) const;
};

/**
 * A content-addressed cache key: a 128-bit digest (two independent
 * FNV-1a streams over the canonical content) plus, optionally, the
 * full canonical text.  The in-memory tier is keyed by the digest
 * alone — at 128 bits an accidental collision is negligible even
 * across billions of entries, and hashing/compare of multi-kilobyte
 * key strings was the dominant cost of warm compiles.  The text is
 * materialized only when the on-disk tier is active, which embeds it
 * in each entry file and byte-verifies it on read.
 */
struct BlockKey
{
    uint64_t h1 = 0;
    uint64_t h2 = 0;
    std::string text;
};

/** Cached result of the partition stage of one block. */
struct PartEntry
{
    /** Tile per task-graph node (canonical == real node order). */
    std::vector<int32_t> tile_of;
    int32_t cross_edges = 0;
    int64_t swaps_evaluated = 0;
    /**
     * Switches touched by the block's (broadcast-free) comm paths.
     * Computing this mask costs a full comm-routing pass, so it is
     * only filled when the compile actually consumes it (no
     * broadcast forcing every switch active); probe_valid records
     * whether it was.  An entry without it still serves compiles
     * that don't need it; one that does treats it as a miss and
     * re-puts the upgraded entry.
     */
    std::vector<uint8_t> probe_switch;
    bool probe_valid = false;
    /** Usage votes: (canonical var, tile, count). */
    std::vector<std::array<int64_t, 3>> votes;
};

/** Cached result of the scheduling + stream-emission stage. */
struct SchedEntry
{
    int64_t makespan = 0;
    std::vector<int64_t> tile_busy;
    /**
     * Modulo-scheduling outcome (BlockSchedule metadata): carrying it
     * in the payload keeps --stats and the quality benches identical
     * between cold and warm compiles.
     */
    uint8_t pipelined = 0;
    int64_t ii = 0;
    int64_t mii = 0;
    int64_t res_mii = 0;
    int64_t rec_mii = 0;
    int64_t flat_mii = 0;
    /**
     * Per-tile processor / switch streams in canonical form: value
     * and array ids canonicalized, print_seq relative to the block's
     * first print, branch targets replaced by terminator slots
     * (kTargetSlot0 / kTargetSlot1).
     */
    std::vector<std::vector<VInstr>> tiles;
    std::vector<std::vector<SInstr>> switches;
};

/** Sentinels for terminator-target slots inside cached streams. */
constexpr int32_t kTargetSlot0 = -2;
constexpr int32_t kTargetSlot1 = -3;

/**
 * Build the canonical renumbering of block @p b.  @p tail is the
 * block's control tail (cloned replicated instructions, fresh temps
 * included); @p pseq holds the block's global print tags per
 * instruction (-1: not a print).
 */
BlockCanon block_canon(const Function &fn, int b,
                       const std::vector<VInstr> &tail,
                       const std::vector<int> &pseq);

/**
 * Alpha-invariant content key of block @p b for the partition stage:
 * canonical instructions and control tail, per-value context (type,
 * home, replication, switch register, liveness), per-array context
 * (base, dynamic-pin residue), entry congruence facts, machine
 * configuration and partition options.  @p svreg_count is the total
 * number of bound switch registers (it fixes where switch-temp
 * recycling starts during emission).  @p want_text additionally
 * materializes the canonical key text (needed by the disk tier).
 */
BlockKey block_partition_key(const Function &fn, int b,
                             const std::vector<VInstr> &tail,
                             const BlockCanon &canon,
                             const MachineConfig &machine,
                             const HomeMap &homes,
                             const ReplicationAnalysis &repl,
                             const VarLiveness &live,
                             const std::vector<int> &svreg_of,
                             int svreg_count,
                             const PartitionOptions &popts,
                             bool want_text);

/**
 * Schedule-stage key: partition key + scheduler options + context.
 * The digest continues the partition key's streams; text is carried
 * over (and extended) only if the partition key has it.
 */
BlockKey block_schedule_key(const BlockKey &part_key,
                            const SchedOptions &sopts,
                            const std::vector<bool> &switch_active);

/**
 * Canonicalize freshly emitted block streams for insertion
 * (dehydrate).  @p term is the block's terminator (target slots);
 * @p sched supplies the makespan, busy estimate and pipeline stats.
 */
SchedEntry dehydrate_streams(const BlockCanon &canon, const Instr &term,
                             const BlockSchedule &sched,
                             const std::vector<std::vector<VInstr>> &tiles,
                             const std::vector<std::vector<SInstr>> &switches);

/**
 * Decode a cached schedule payload straight into the block's output
 * streams (ids remapped onto block @p b's real ids, print_seq
 * rebased, terminator slots resolved via @p term).  Fusing decode
 * and rehydration skips the intermediate SchedEntry — the hit path
 * runs once per block per compile, and the temporary's nested
 * vectors were most of its cost.  Returns false on a payload this
 * version cannot decode (caller recomputes and overwrites).
 */
bool rehydrate_sched_payload(const std::string &payload,
                             const BlockCanon &canon, const Instr &term,
                             int64_t &makespan,
                             std::vector<int64_t> &tile_busy,
                             BlockPipelineStats &pipe,
                             std::vector<std::vector<VInstr>> &tiles_out,
                             std::vector<std::vector<SInstr>> &switches_out);

/**
 * The process-wide cache.  All methods are thread-safe; identical
 * keys always carry identical payloads (outputs are deterministic
 * functions of the key), so concurrent insert races are benign.
 */
class SchedCache
{
  public:
    static SchedCache &instance();

    /**
     * Look up a partition / schedule entry: memory first, then the
     * on-disk tier when @p dir is non-empty.  Returns nullptr on
     * miss.  @p c accumulates hit/miss/traffic counters.  An entry
     * whose switch-probe mask is absent counts as a miss when
     * @p need_probe is set.
     */
    std::shared_ptr<const PartEntry>
    get_part(const BlockKey &key, const std::string &dir,
             bool need_probe, SchedCacheCounters &c);
    /**
     * A schedule hit returns the serialized payload; callers feed it
     * to rehydrate_sched_payload, so a hit never materializes a
     * structured entry.
     */
    std::shared_ptr<const std::string>
    get_sched(const BlockKey &key, const std::string &dir,
              SchedCacheCounters &c);

    /**
     * Insert into memory and, when @p dir is non-empty, disk.  Disk
     * writes require the key's text (callers build keys with
     * want_text whenever a cache dir is configured).
     */
    void put_part(const BlockKey &key, const std::string &dir,
                  std::shared_ptr<const PartEntry> e,
                  SchedCacheCounters &c);
    void put_sched(const BlockKey &key, const std::string &dir,
                   std::shared_ptr<const SchedEntry> e,
                   SchedCacheCounters &c);

    /** Drop every in-memory entry (tests; disk is untouched). */
    void clear_memory();

    /** Approximate bytes held by the in-memory tier. */
    int64_t memory_bytes() const;

    /** Process-wide counters (sum over all compilations). */
    SchedCacheCounters totals() const;

  private:
    SchedCache() = default;
};

/**
 * Validate @p dir for use as --cache-dir: create it if missing and
 * prove it writable with a probe file.  Throws FatalError with a
 * clear message otherwise.
 */
void validate_cache_dir(const std::string &dir);

} // namespace raw

#endif // RAW_RAWCC_SCHEDCACHE_HPP
