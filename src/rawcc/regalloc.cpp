#include "rawcc/regalloc.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "support/error.hpp"

namespace raw {

namespace {

struct Interval
{
    ValueId value;
    int start;
    int end;
};

} // namespace

RegallocResult
allocate_registers(const Function &fn,
                   const std::vector<std::vector<VInstr>> &blocks,
                   const std::vector<ValueId> &persistent, int num_regs)
{
    check(num_regs >= 8, "regalloc: too few registers");
    const int s0 = num_regs - 3, s1 = num_regs - 2, s2 = num_regs - 1;
    const int pool_size = num_regs - 3;

    RegallocResult out;
    out.blocks.resize(blocks.size());

    // ---- Persistent assignment by use count. ---------------------
    std::unordered_map<ValueId, int64_t> use_count;
    for (ValueId v : persistent)
        use_count[v] = 0;
    for (const auto &blk : blocks) {
        for (const VInstr &in : blk) {
            for (ValueId s : in.src)
                if (s != kNoValue && use_count.count(s))
                    use_count[s]++;
            if (in.dst != kNoValue && use_count.count(in.dst))
                use_count[in.dst]++;
        }
    }
    std::vector<ValueId> pers_sorted = persistent;
    std::sort(pers_sorted.begin(), pers_sorted.end(),
              [&](ValueId a, ValueId b) {
                  if (use_count[a] != use_count[b])
                      return use_count[a] > use_count[b];
                  return a < b;
              });
    // Keep at least 8 pool registers for temporaries.
    int max_pers = pool_size > 16 ? pool_size - 8 : pool_size / 2;
    std::unordered_map<ValueId, int> pers_reg;   // value -> phys
    std::unordered_map<ValueId, int> mem_slot;   // value -> spill slot
    int next_slot = 0;
    for (size_t i = 0; i < pers_sorted.size(); i++) {
        if (static_cast<int>(i) < max_pers)
            pers_reg[pers_sorted[i]] = static_cast<int>(i);
        else
            mem_slot[pers_sorted[i]] = next_slot++;
    }
    const int temp_base = std::min<int>(
        static_cast<int>(pers_sorted.size()), max_pers);
    const int n_temp_regs = pool_size - temp_base;
    check(n_temp_regs >= 1, "regalloc: no temp registers left");

    // ---- Per-block temporaries. ----------------------------------
    for (size_t b = 0; b < blocks.size(); b++) {
        const std::vector<VInstr> &code = blocks[b];

        std::unordered_map<ValueId, Interval> ivals;
        auto touch = [&](ValueId v, int pos) {
            if (v == kNoValue || v == kPortOperand ||
                pers_reg.count(v) || mem_slot.count(v))
                return;
            if (fn.values[v].is_var && use_count.count(v))
                return; // persistent handled above
            auto it = ivals.find(v);
            if (it == ivals.end())
                ivals[v] = {v, pos, pos};
            else
                it->second.end = pos;
        };
        for (size_t k = 0; k < code.size(); k++) {
            const VInstr &in = code[k];
            touch(in.src[0], static_cast<int>(k));
            touch(in.src[1], static_cast<int>(k));
            touch(in.dst, static_cast<int>(k));
        }

        std::vector<Interval> order;
        order.reserve(ivals.size());
        for (auto &kv : ivals)
            order.push_back(kv.second);
        std::sort(order.begin(), order.end(),
                  [](const Interval &a, const Interval &b) {
                      if (a.start != b.start)
                          return a.start < b.start;
                      return a.value < b.value;
                  });

        // Linear scan with furthest-end spilling.
        std::unordered_map<ValueId, int> temp_reg;
        std::unordered_map<ValueId, int> temp_slot;
        std::vector<int> free_regs;
        for (int r = n_temp_regs; r-- > 0;)
            free_regs.push_back(temp_base + r);
        // Active intervals sorted by end.
        std::multimap<int, ValueId> active;
        for (const Interval &iv : order) {
            while (!active.empty() &&
                   active.begin()->first < iv.start) {
                free_regs.push_back(temp_reg[active.begin()->second]);
                active.erase(active.begin());
            }
            if (!free_regs.empty()) {
                temp_reg[iv.value] = free_regs.back();
                free_regs.pop_back();
                active.insert({iv.end, iv.value});
                continue;
            }
            // Spill the interval with the furthest end.
            auto victim = std::prev(active.end());
            if (victim->first > iv.end) {
                ValueId vv = victim->second;
                temp_reg[iv.value] = temp_reg[vv];
                temp_reg.erase(vv);
                if (!temp_slot.count(vv))
                    temp_slot[vv] = next_slot++;
                active.erase(victim);
                active.insert({iv.end, iv.value});
            } else {
                if (!temp_slot.count(iv.value))
                    temp_slot[iv.value] = next_slot++;
            }
        }

        // ---- Rewrite. --------------------------------------------
        std::vector<PInstr> &dst_code = out.blocks[b];
        auto emit_spill_load = [&](int slot, int scratch, Type ty) {
            PInstr l;
            l.op = Op::kLoad;
            l.type = ty;
            l.dst = scratch;
            l.array = kSpillArray;
            l.imm = static_cast<uint32_t>(slot);
            dst_code.push_back(l);
            out.spill_ops++;
        };
        auto emit_spill_store = [&](int slot, int scratch, Type ty) {
            PInstr st;
            st.op = Op::kStore;
            st.type = ty;
            st.src[1] = scratch;
            st.array = kSpillArray;
            st.imm = static_cast<uint32_t>(slot);
            dst_code.push_back(st);
            out.spill_ops++;
        };
        auto src_reg = [&](ValueId v, int scratch) -> int {
            if (v == kNoValue)
                return -1;
            if (v == kPortOperand)
                return kPortOperand;
            auto pr = pers_reg.find(v);
            if (pr != pers_reg.end())
                return pr->second;
            auto pm = mem_slot.find(v);
            if (pm != mem_slot.end()) {
                emit_spill_load(pm->second, scratch,
                                fn.values[v].type);
                return scratch;
            }
            auto tr = temp_reg.find(v);
            if (tr != temp_reg.end())
                return tr->second;
            auto ts = temp_slot.find(v);
            check(ts != temp_slot.end(),
                  "regalloc: use of unallocated value");
            emit_spill_load(ts->second, scratch, fn.values[v].type);
            return scratch;
        };

        for (const VInstr &in : code) {
            PInstr p;
            p.op = in.op;
            p.type = in.type;
            p.imm = in.imm;
            p.array = in.array;
            p.print_seq = in.print_seq;
            p.target = in.target_block;
            p.src[0] = src_reg(in.src[0], s0);
            p.src[1] = src_reg(in.src[1], s1);

            ValueId d = in.dst;
            int store_slot = -1;
            Type store_type = Type::kI32;
            if (d == kNoValue) {
                p.dst = -1;
            } else if (d == kPortOperand) {
                p.dst = kPortOperand;
            } else if (pers_reg.count(d)) {
                p.dst = pers_reg[d];
            } else if (mem_slot.count(d)) {
                p.dst = s2;
                store_slot = mem_slot[d];
                store_type = fn.values[d].type;
            } else if (temp_reg.count(d)) {
                p.dst = temp_reg[d];
            } else {
                check(temp_slot.count(d) > 0,
                      "regalloc: def of unallocated value");
                p.dst = s2;
                store_slot = temp_slot[d];
                store_type = fn.values[d].type;
            }
            dst_code.push_back(p);
            if (store_slot >= 0)
                emit_spill_store(store_slot, s2, store_type);
        }
    }

    out.spill_slots = next_slot;
    return out;
}

} // namespace raw
