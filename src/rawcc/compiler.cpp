#include "rawcc/compiler.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "ir/verifier.hpp"
#include "rawcc/portfold.hpp"
#include "sim/simulator.hpp"
#include "transform/constfold.hpp"
#include "transform/rename.hpp"
#include "transform/simplify.hpp"
#include "transform/split.hpp"
#include "transform/strength.hpp"

namespace raw {

namespace {

using Clock = std::chrono::steady_clock;

/** Milliseconds elapsed since @p t0, advancing @p t0 to now. */
double
lap_ms(Clock::time_point &t0)
{
    Clock::time_point t1 = Clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
    t0 = t1;
    return ms;
}

} // namespace

PlacementFeedback
placement_feedback_from_profile(const SimResult &sim,
                                const MachineConfig &machine)
{
    PlacementFeedback fb;
    const auto &tiles = sim.profile.tiles;
    if (static_cast<int>(tiles.size()) != machine.n_tiles)
        return fb;

    std::vector<int64_t> comm(machine.n_tiles, 0);
    std::vector<int64_t> proc(machine.n_tiles, 0);
    for (int t = 0; t < machine.n_tiles; t++) {
        const TileProfile &tp = tiles[t];
        int64_t stalls = std::accumulate(tp.route_stalls.begin(),
                                         tp.route_stalls.end(),
                                         int64_t{0});
        comm[t] = tp.words_routed + stalls;
        proc[t] =
            tp.proc_cycles[static_cast<int>(ProcCycle::kIssued)] +
            tp.proc_cycles[static_cast<int>(
                ProcCycle::kSendBlocked)] +
            tp.proc_cycles[static_cast<int>(ProcCycle::kRecvBlocked)];
    }

    auto normalize = [](std::vector<int64_t> &v) {
        int64_t mx = *std::max_element(v.begin(), v.end());
        if (mx <= 0) {
            v.clear();
            return;
        }
        for (int64_t &x : v)
            x = (x * kPlacePenaltyMax + mx / 2) / mx;
    };
    normalize(comm);
    normalize(proc);
    fb.comm_penalty = std::move(comm);
    fb.proc_penalty = std::move(proc);
    return fb;
}

std::vector<CompilerOptions>
pgo_candidates(const CompilerOptions &base, const PlacementFeedback &fb)
{
    CompilerOptions plain = base;
    plain.pgo = false;
    std::vector<CompilerOptions> cands;
    cands.push_back(plain);
    if (!fb.empty()) {
        CompilerOptions c = plain;
        c.orch.partition.feedback = fb;
        cands.push_back(c);
    }
    {
        CompilerOptions c = plain;
        c.orch.partition.crit_weight = 8;
        cands.push_back(c);
        if (!fb.empty()) {
            c.orch.partition.feedback = fb;
            cands.push_back(c);
        }
    }
    // Alternative priority weightings: block makespans usually tie,
    // but the resulting issue orders measure differently; the
    // simulated pick keeps whichever order the machine favors.
    for (auto [lw, fw] : {std::pair<int, int>{4, 1},
                          {16, 4},
                          {16, 0},
                          {2, 1}}) {
        CompilerOptions c = plain;
        c.orch.sched.level_weight = lw;
        c.orch.sched.fertility_weight = fw;
        cands.push_back(c);
    }
    // Usage-voted data homes (the paper's stated future work for the
    // round-robin policy).
    {
        CompilerOptions c = plain;
        c.smart_homes = true;
        cands.push_back(c);
    }
    // More aggressive loop peeling: staticizes more references at
    // the cost of code size.  This often wins big (whole loop nests
    // become static) but can also lose (replicated work outgrows the
    // tile count), so it only ever enters the program through the
    // measured pick.
    if (plain.unroll.enable) {
        CompilerOptions c = plain;
        c.unroll.small_peel_limit *= 4;
        c.unroll.forced_peel_limit *= 4;
        cands.push_back(c);
    }
    return cands;
}

int64_t
CompileStats::estimated_makespan() const
{
    return std::accumulate(block_makespan.begin(),
                           block_makespan.end(), int64_t{0});
}

CompileOutput
compile_function(Function fn, const MachineConfig &machine,
                 const CompilerOptions &opts)
{
    machine.validate();

    CompileOutput out;
    Clock::time_point t0 = Clock::now();

    // Malformed input must fail cleanly before any transform touches
    // it (the passes assume structurally valid blocks).
    if (opts.verify_ir)
        verify_or_panic(fn, "input");

    constfold_function(fn);
    while (simplify_cfg(fn))
        constfold_function(fn);
    strength_reduce(fn);
    constfold_function(fn);
    split_large_blocks(fn, opts.max_block_len);
    if (opts.verify_ir)
        verify_or_panic(fn, "constfold");
    rename_function(fn);
    if (opts.verify_ir)
        verify_or_panic(fn, "rename");
    out.stats.ir_instrs = static_cast<int64_t>(fn.num_instrs());
    out.stats.timings.transform_ms = lap_ms(t0);

    OrchestraterOptions orch_opts = opts.orch;
    if (opts.smart_homes && orch_opts.var_home_override.empty()) {
        // Phase 1: trial orchestration on a copy to collect usage
        // votes; phase 2 (below) re-runs with the voted homes.
        Function trial = fn;
        VirtualProgram probe = orchestrate(trial, machine, orch_opts);
        orch_opts.var_home_override.assign(fn.values.size(), -1);
        for (const auto &[v, votes] : probe.var_votes) {
            int best_tile = -1, best = 0;
            for (const auto &[tile, n] : votes)
                if (n > best) {
                    best = n;
                    best_tile = tile;
                }
            if (v < static_cast<ValueId>(fn.values.size()))
                orch_opts.var_home_override[v] = best_tile;
        }
    }
    VirtualProgram vp = orchestrate(fn, machine, orch_opts);
    out.stats.timings.orchestrate_ms = lap_ms(t0);
    if (opts.orch.fold_ports)
        out.stats.folded_port_ops = fold_port_operands(vp, fn);
    LinkStats ls;
    out.program = link_program(fn, vp, machine, &ls);
    out.stats.timings.link_ms = lap_ms(t0);

    out.stats.dynamic_refs = vp.dynamic_refs;
    out.stats.placement_swaps = vp.placement_swaps;
    out.stats.replicated_branches = vp.replicated_branches;
    out.stats.broadcast_branches = vp.broadcast_branches;
    out.stats.spill_ops = ls.spill_ops;
    out.stats.static_instrs = out.program.static_instrs();
    out.stats.block_makespan = vp.block_makespan;
    out.stats.est_tile_busy = vp.est_tile_busy;
    out.stats.timings.total_ms = out.stats.timings.transform_ms +
                                 out.stats.timings.orchestrate_ms +
                                 out.stats.timings.link_ms;
    out.fn = std::move(fn);
    return out;
}

CompileOutput
compile_source(const std::string &source, const MachineConfig &machine,
               const CompilerOptions &opts)
{
    machine.validate();

    if (opts.pgo && opts.orch.partition.feedback.empty()) {
        // Profile-guided pass: a first full compile+simulate
        // measures where cycles actually went, then each candidate
        // variant (congestion-feedback placement, criticality-
        // weighted traffic, alternative priorities, voted homes,
        // peeling aggressiveness) is compiled and simulated
        // fault-free, and the fastest measured program wins.
        // Candidate 0 is the plain compile, so --pgo can never lose
        // cycles; all candidates run with pgo cleared, keeping this
        // recursion one level deep.  The portfolio lives here rather
        // than in compile_function because unrolling variants act
        // before lowering.
        CompilerOptions probe_opts = opts;
        probe_opts.pgo = false;
        CompileOutput best =
            compile_source(source, machine, probe_opts);
        Simulator sim(best.program);
        SimResult measured = sim.run();
        int64_t best_cycles = measured.cycles;
        PlacementFeedback fb =
            placement_feedback_from_profile(measured, machine);
        std::vector<CompilerOptions> cands = pgo_candidates(opts, fb);
        for (size_t c = 1; c < cands.size(); c++) {
            CompileOutput cand =
                compile_source(source, machine, cands[c]);
            Simulator csim(cand.program);
            int64_t cycles = csim.run().cycles;
            if (cycles < best_cycles) {
                best_cycles = cycles;
                best = std::move(cand);
            }
        }
        return best;
    }

    Clock::time_point t0 = Clock::now();
    Program ast = parse_program(source);
    double parse_ms = lap_ms(t0);
    UnrollOptions uo = opts.unroll;
    uo.n_tiles = machine.n_tiles;
    UnrollStats us = unroll_program(ast, uo);
    double unroll_ms = lap_ms(t0);
    Function fn = lower_program(ast);
    if (opts.verify_ir)
        verify_or_panic(fn, "lowering");
    double lower_ms = lap_ms(t0);
    CompileOutput out = compile_function(std::move(fn), machine, opts);
    out.stats.unroll = us;
    out.stats.timings.parse_ms = parse_ms;
    out.stats.timings.unroll_ms = unroll_ms;
    out.stats.timings.lower_ms = lower_ms;
    out.stats.timings.total_ms += parse_ms + unroll_ms + lower_ms;
    return out;
}

} // namespace raw
