#include "rawcc/compiler.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <set>
#include <sstream>

#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "ir/verifier.hpp"
#include "rawcc/portfold.hpp"
#include "sim/simulator.hpp"
#include "transform/constfold.hpp"
#include "transform/rename.hpp"
#include "transform/simplify.hpp"
#include "transform/split.hpp"
#include "transform/strength.hpp"

namespace raw {

namespace {

using Clock = std::chrono::steady_clock;

/** Milliseconds elapsed since @p t0, advancing @p t0 to now. */
double
lap_ms(Clock::time_point &t0)
{
    Clock::time_point t1 = Clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
    t0 = t1;
    return ms;
}

} // namespace

PlacementFeedback
placement_feedback_from_profile(const SimResult &sim,
                                const MachineConfig &machine)
{
    PlacementFeedback fb;
    const auto &tiles = sim.profile.tiles;
    if (static_cast<int>(tiles.size()) != machine.n_tiles)
        return fb;

    std::vector<int64_t> comm(machine.n_tiles, 0);
    std::vector<int64_t> proc(machine.n_tiles, 0);
    for (int t = 0; t < machine.n_tiles; t++) {
        const TileProfile &tp = tiles[t];
        int64_t stalls = std::accumulate(tp.route_stalls.begin(),
                                         tp.route_stalls.end(),
                                         int64_t{0});
        comm[t] = tp.words_routed + stalls;
        proc[t] =
            tp.proc_cycles[static_cast<int>(ProcCycle::kIssued)] +
            tp.proc_cycles[static_cast<int>(
                ProcCycle::kSendBlocked)] +
            tp.proc_cycles[static_cast<int>(ProcCycle::kRecvBlocked)];
    }

    auto normalize = [](std::vector<int64_t> &v) {
        int64_t mx = *std::max_element(v.begin(), v.end());
        if (mx <= 0) {
            v.clear();
            return;
        }
        for (int64_t &x : v)
            x = (x * kPlacePenaltyMax + mx / 2) / mx;
    };
    normalize(comm);
    normalize(proc);
    fb.comm_penalty = std::move(comm);
    fb.proc_penalty = std::move(proc);
    return fb;
}

std::string
options_fingerprint(const CompilerOptions &opts)
{
    std::ostringstream os;
    const UnrollOptions &u = opts.unroll;
    os << "u:" << u.enable << " " << u.n_tiles << " "
       << u.small_peel_limit << " " << u.forced_peel_limit;
    const PartitionOptions &p = opts.orch.partition;
    os << "|p:" << static_cast<int>(p.cluster_mode) << " "
       << static_cast<int>(p.place_mode) << " " << p.seed << " "
       << p.crit_weight << " fb";
    for (int64_t v : p.feedback.comm_penalty)
        os << " " << v;
    os << " /";
    for (int64_t v : p.feedback.proc_penalty)
        os << " " << v;
    const SchedOptions &s = opts.orch.sched;
    os << "|s:" << s.level_weight << " " << s.fertility_weight << " "
       << s.fifo_priority << " " << s.sched_iters << " "
       << s.route_select << " " << s.modulo << " " << s.mii_cap;
    os << "|o:" << opts.orch.enable_replication << " "
       << opts.orch.fold_ports << " hv";
    for (int v : opts.orch.var_home_override)
        os << " " << v;
    os << "|c:" << opts.max_block_len << " " << opts.smart_homes;
    return os.str();
}

std::vector<CompilerOptions>
pgo_candidates(const CompilerOptions &base, const PlacementFeedback &fb)
{
    CompilerOptions plain = base;
    plain.pgo = false;
    std::vector<CompilerOptions> cands;
    std::set<std::string> seen;
    auto add = [&](const CompilerOptions &c) {
        // Drop candidates whose effective options duplicate an
        // earlier one (the base may already carry a PGO knob).
        if (seen.insert(options_fingerprint(c)).second)
            cands.push_back(c);
    };
    add(plain);
    if (!fb.empty()) {
        CompilerOptions c = plain;
        c.orch.partition.feedback = fb;
        add(c);
    }
    {
        CompilerOptions c = plain;
        c.orch.partition.crit_weight = 8;
        add(c);
        if (!fb.empty()) {
            c.orch.partition.feedback = fb;
            add(c);
        }
    }
    // Alternative priority weightings: block makespans usually tie,
    // but the resulting issue orders measure differently; the
    // simulated pick keeps whichever order the machine favors.
    for (auto [lw, fw] : {std::pair<int, int>{4, 1},
                          {16, 4},
                          {16, 0},
                          {2, 1}}) {
        CompilerOptions c = plain;
        c.orch.sched.level_weight = lw;
        c.orch.sched.fertility_weight = fw;
        add(c);
    }
    // Usage-voted data homes (the paper's stated future work for the
    // round-robin policy).
    {
        CompilerOptions c = plain;
        c.smart_homes = true;
        add(c);
    }
    // Modulo scheduling optimizes the modeled steady-state II, which
    // can trade away flat makespan; when the base compile pipelines,
    // race the plain greedy schedule too so the measured pick keeps
    // whichever the machine actually runs faster.
    if (plain.orch.sched.modulo) {
        CompilerOptions c = plain;
        c.orch.sched.modulo = false;
        add(c);
    }
    // More aggressive loop peeling: staticizes more references at
    // the cost of code size.  This often wins big (whole loop nests
    // become static) but can also lose (replicated work outgrows the
    // tile count), so it only ever enters the program through the
    // measured pick.
    if (plain.unroll.enable) {
        CompilerOptions c = plain;
        c.unroll.small_peel_limit *= 4;
        c.unroll.forced_peel_limit *= 4;
        add(c);
    }
    return cands;
}

int64_t
CompileStats::estimated_makespan() const
{
    return std::accumulate(block_makespan.begin(),
                           block_makespan.end(), int64_t{0});
}

namespace {

/**
 * The option-independent transform pipeline between lowering and
 * orchestration.  Given equal (max_block_len, verify_ir) this is a
 * pure function of the lowered IR, which is what lets a PGO race
 * share one transformed function across its candidates.
 */
void
transform_function(Function &fn, const CompilerOptions &opts)
{
    // Malformed input must fail cleanly before any transform touches
    // it (the passes assume structurally valid blocks).
    if (opts.verify_ir)
        verify_or_panic(fn, "input");

    constfold_function(fn);
    while (simplify_cfg(fn))
        constfold_function(fn);
    strength_reduce(fn);
    constfold_function(fn);
    split_large_blocks(fn, opts.max_block_len);
    if (opts.verify_ir)
        verify_or_panic(fn, "constfold");
    rename_function(fn);
    if (opts.verify_ir)
        verify_or_panic(fn, "rename");
}

/**
 * Orchestrate and link an already-transformed function.  total_ms
 * covers only these back-end stages; callers fold in whatever
 * frontend time produced @p fn.
 */
CompileOutput
orchestrate_and_link(Function fn, const MachineConfig &machine,
                     const CompilerOptions &opts)
{
    CompileOutput out;
    Clock::time_point t0 = Clock::now();
    out.stats.ir_instrs = static_cast<int64_t>(fn.num_instrs());

    OrchestraterOptions orch_opts = opts.orch;
    if (opts.smart_homes && orch_opts.var_home_override.empty()) {
        // Phase 1: trial orchestration on a copy to collect usage
        // votes; phase 2 (below) re-runs with the voted homes.
        // With the schedule cache on, this probe is typically a full
        // hit of an earlier plain compile of the same program.
        Function trial = fn;
        VirtualProgram probe = orchestrate(trial, machine, orch_opts);
        out.stats.cache.add(probe.cache);
        out.stats.orch_partition_ms += probe.partition_phase_ms;
        out.stats.orch_schedule_ms += probe.schedule_phase_ms;
        orch_opts.var_home_override.assign(fn.values.size(), -1);
        for (const auto &[v, votes] : probe.var_votes) {
            int best_tile = -1, best = 0;
            for (const auto &[tile, n] : votes)
                if (n > best) {
                    best = n;
                    best_tile = tile;
                }
            if (v < static_cast<ValueId>(fn.values.size()))
                orch_opts.var_home_override[v] = best_tile;
        }
    }
    VirtualProgram vp = orchestrate(fn, machine, orch_opts);
    out.stats.cache.add(vp.cache);
    out.stats.orch_partition_ms += vp.partition_phase_ms;
    out.stats.orch_schedule_ms += vp.schedule_phase_ms;
    out.stats.timings.orchestrate_ms = lap_ms(t0);
    if (opts.orch.fold_ports)
        out.stats.folded_port_ops = fold_port_operands(vp, fn);
    LinkStats ls;
    out.program = link_program(fn, vp, machine, &ls);
    out.stats.timings.link_ms = lap_ms(t0);

    out.stats.dynamic_refs = vp.dynamic_refs;
    out.stats.placement_swaps = vp.placement_swaps;
    out.stats.replicated_branches = vp.replicated_branches;
    out.stats.broadcast_branches = vp.broadcast_branches;
    out.stats.spill_ops = ls.spill_ops;
    out.stats.static_instrs = out.program.static_instrs();
    out.stats.block_makespan = vp.block_makespan;
    out.stats.est_tile_busy = vp.est_tile_busy;
    out.stats.block_pipeline = vp.block_pipeline;
    out.stats.oracle_reports = vp.oracle_reports;
    out.stats.timings.total_ms = out.stats.timings.orchestrate_ms +
                                 out.stats.timings.link_ms;
    out.fn = std::move(fn);
    return out;
}

/** Everything a compile does before orchestration, plus its cost. */
struct FrontendResult
{
    Function fn;
    UnrollStats us;
    double parse_ms = 0;
    double unroll_ms = 0;
    double lower_ms = 0;
    double transform_ms = 0;
};

FrontendResult
run_frontend(const std::string &source, const MachineConfig &machine,
             const CompilerOptions &opts)
{
    FrontendResult f;
    Clock::time_point t0 = Clock::now();
    Program ast = parse_program(source);
    f.parse_ms = lap_ms(t0);
    UnrollOptions uo = opts.unroll;
    uo.n_tiles = machine.n_tiles;
    f.us = unroll_program(ast, uo);
    f.unroll_ms = lap_ms(t0);
    f.fn = lower_program(ast);
    if (opts.verify_ir)
        verify_or_panic(f.fn, "lowering");
    f.lower_ms = lap_ms(t0);
    transform_function(f.fn, opts);
    f.transform_ms = lap_ms(t0);
    return f;
}

/**
 * 128-bit digest of an executable program, used to skip re-measuring
 * PGO candidates that emitted byte-identical programs (alternative
 * priority weightings tie on small blocks all the time).  Field-wise
 * FNV over both streams; struct padding never enters the hash.
 */
std::pair<uint64_t, uint64_t>
program_digest(const CompiledProgram &p)
{
    uint64_t h1 = 1469598103934665603ull;
    uint64_t h2 = 0x9e3779b97f4a7c15ull;
    constexpr uint64_t kPrime = 1099511628211ull;
    auto mix = [&](int64_t v) {
        uint64_t u = static_cast<uint64_t>(v);
        h1 = (h1 ^ u) * kPrime;
        h2 = (h2 ^ (u + 0x9e3779b97f4a7c15ull)) * kPrime;
    };
    mix(static_cast<int64_t>(p.tiles.size()));
    for (const TileProgram &t : p.tiles) {
        mix(static_cast<int64_t>(t.code.size()));
        for (const PInstr &i : t.code) {
            mix(static_cast<int>(i.op));
            mix(static_cast<int>(i.type));
            mix(i.dst);
            mix(i.src[0]);
            mix(i.src[1]);
            mix(static_cast<int64_t>(i.imm));
            mix(i.array);
            mix(i.target);
            mix(i.print_seq);
        }
    }
    for (const SwitchProgram &s : p.switches) {
        mix(static_cast<int64_t>(s.code.size()));
        for (const SInstr &i : s.code) {
            mix(static_cast<int>(i.k));
            mix(static_cast<int>(i.op));
            mix(i.dst);
            mix(i.a);
            mix(i.b);
            mix(static_cast<int64_t>(i.imm));
            mix(i.cond);
            mix(i.target);
            mix(static_cast<int64_t>(i.routes.size()));
            for (const RoutePair &rp : i.routes) {
                mix(static_cast<int>(rp.in));
                mix(rp.out_mask);
                mix(rp.reg_dst);
            }
        }
    }
    return {h1, h2};
}

/**
 * Credit the frontend stages that produced a candidate's IR to the
 * candidate's stats, keeping the per-phase timings summing to
 * total_ms even when several candidates shared one frontend run.
 */
void
attribute_frontend(CompileOutput &out, const FrontendResult &f)
{
    out.stats.unroll = f.us;
    out.stats.timings.parse_ms = f.parse_ms;
    out.stats.timings.unroll_ms = f.unroll_ms;
    out.stats.timings.lower_ms = f.lower_ms;
    out.stats.timings.transform_ms = f.transform_ms;
    out.stats.timings.total_ms += f.parse_ms + f.unroll_ms +
                                  f.lower_ms + f.transform_ms;
}

} // namespace

CompileOutput
compile_function(Function fn, const MachineConfig &machine,
                 const CompilerOptions &opts)
{
    machine.validate();
    Clock::time_point t0 = Clock::now();
    transform_function(fn, opts);
    double transform_ms = lap_ms(t0);
    CompileOutput out =
        orchestrate_and_link(std::move(fn), machine, opts);
    out.stats.timings.transform_ms = transform_ms;
    out.stats.timings.total_ms += transform_ms;
    return out;
}

CompileOutput
compile_source(const std::string &source, const MachineConfig &machine,
               const CompilerOptions &opts)
{
    machine.validate();

    if (opts.pgo && opts.orch.partition.feedback.empty()) {
        // Profile-guided pass: a first full compile+simulate
        // measures where cycles actually went, then each candidate
        // variant (congestion-feedback placement, criticality-
        // weighted traffic, alternative priorities, voted homes,
        // peeling aggressiveness) is compiled and simulated
        // fault-free, and the fastest measured program wins.
        // Candidate 0 is the plain compile, so --pgo can never lose
        // cycles; all candidates run with pgo cleared, keeping this
        // recursion one level deep.  The portfolio lives here rather
        // than in compile_function because unrolling variants act
        // before lowering.
        //
        // The race shares one frontend per distinct unroll slice:
        // parse/unroll/lower/transform cannot observe any other
        // candidate knob, so only the peeling candidate pays for its
        // own, and every other candidate orchestrates a copy of the
        // prepared IR.  Each candidate's stats still carry the
        // frontend timings that produced its IR.
        std::vector<std::pair<std::string, FrontendResult>> fronts;
        auto compile_cand = [&](const CompilerOptions &co) {
            const UnrollOptions &u = co.unroll;
            std::string fkey = std::to_string(u.enable) + ":" +
                               std::to_string(u.small_peel_limit) +
                               ":" +
                               std::to_string(u.forced_peel_limit);
            FrontendResult *f = nullptr;
            for (auto &kv : fronts)
                if (kv.first == fkey)
                    f = &kv.second;
            if (!f) {
                fronts.emplace_back(
                    fkey, run_frontend(source, machine, co));
                f = &fronts.back().second;
            }
            CompileOutput out =
                orchestrate_and_link(Function(f->fn), machine, co);
            attribute_frontend(out, *f);
            return out;
        };

        CompilerOptions probe_opts = opts;
        probe_opts.pgo = false;
        CompileOutput best = compile_cand(probe_opts);
        Simulator sim(best.program);
        SimResult measured = sim.run();
        int64_t best_cycles = measured.cycles;
        PlacementFeedback fb =
            placement_feedback_from_profile(measured, machine);
        // A candidate whose program is byte-identical to one already
        // measured would report the same cycles; don't re-simulate
        // it.  Candidate compiles differ only in options, and option
        // variants frequently tie once blocks are small.
        std::vector<std::pair<std::pair<uint64_t, uint64_t>, int64_t>>
            simmed{{program_digest(best.program), best_cycles}};
        std::vector<CompilerOptions> cands = pgo_candidates(opts, fb);
        for (size_t c = 1; c < cands.size(); c++) {
            CompileOutput cand = compile_cand(cands[c]);
            std::pair<uint64_t, uint64_t> d =
                program_digest(cand.program);
            int64_t cycles = -1;
            for (const auto &kv : simmed)
                if (kv.first == d)
                    cycles = kv.second;
            if (cycles < 0) {
                Simulator csim(cand.program);
                cycles = csim.run().cycles;
                simmed.emplace_back(d, cycles);
            }
            if (cycles < best_cycles) {
                best_cycles = cycles;
                best = std::move(cand);
            }
        }
        return best;
    }

    FrontendResult f = run_frontend(source, machine, opts);
    CompileOutput out =
        orchestrate_and_link(std::move(f.fn), machine, opts);
    attribute_frontend(out, f);
    return out;
}

} // namespace raw
