#include "rawcc/compiler.hpp"

#include <chrono>
#include <numeric>

#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "ir/verifier.hpp"
#include "rawcc/portfold.hpp"
#include "transform/constfold.hpp"
#include "transform/rename.hpp"
#include "transform/simplify.hpp"
#include "transform/split.hpp"
#include "transform/strength.hpp"

namespace raw {

namespace {

using Clock = std::chrono::steady_clock;

/** Milliseconds elapsed since @p t0, advancing @p t0 to now. */
double
lap_ms(Clock::time_point &t0)
{
    Clock::time_point t1 = Clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
    t0 = t1;
    return ms;
}

} // namespace

int64_t
CompileStats::estimated_makespan() const
{
    return std::accumulate(block_makespan.begin(),
                           block_makespan.end(), int64_t{0});
}

CompileOutput
compile_function(Function fn, const MachineConfig &machine,
                 const CompilerOptions &opts)
{
    machine.validate();
    CompileOutput out;
    Clock::time_point t0 = Clock::now();

    // Malformed input must fail cleanly before any transform touches
    // it (the passes assume structurally valid blocks).
    if (opts.verify_ir)
        verify_or_panic(fn, "input");

    constfold_function(fn);
    while (simplify_cfg(fn))
        constfold_function(fn);
    strength_reduce(fn);
    constfold_function(fn);
    split_large_blocks(fn, opts.max_block_len);
    if (opts.verify_ir)
        verify_or_panic(fn, "constfold");
    rename_function(fn);
    if (opts.verify_ir)
        verify_or_panic(fn, "rename");
    out.stats.ir_instrs = static_cast<int64_t>(fn.num_instrs());
    out.stats.timings.transform_ms = lap_ms(t0);

    OrchestraterOptions orch_opts = opts.orch;
    if (opts.smart_homes && orch_opts.var_home_override.empty()) {
        // Phase 1: trial orchestration on a copy to collect usage
        // votes; phase 2 (below) re-runs with the voted homes.
        Function trial = fn;
        VirtualProgram probe = orchestrate(trial, machine, orch_opts);
        orch_opts.var_home_override.assign(fn.values.size(), -1);
        for (const auto &[v, votes] : probe.var_votes) {
            int best_tile = -1, best = 0;
            for (const auto &[tile, n] : votes)
                if (n > best) {
                    best = n;
                    best_tile = tile;
                }
            if (v < static_cast<ValueId>(fn.values.size()))
                orch_opts.var_home_override[v] = best_tile;
        }
    }
    VirtualProgram vp = orchestrate(fn, machine, orch_opts);
    out.stats.timings.orchestrate_ms = lap_ms(t0);
    if (opts.orch.fold_ports)
        out.stats.folded_port_ops = fold_port_operands(vp, fn);
    LinkStats ls;
    out.program = link_program(fn, vp, machine, &ls);
    out.stats.timings.link_ms = lap_ms(t0);

    out.stats.dynamic_refs = vp.dynamic_refs;
    out.stats.placement_swaps = vp.placement_swaps;
    out.stats.replicated_branches = vp.replicated_branches;
    out.stats.broadcast_branches = vp.broadcast_branches;
    out.stats.spill_ops = ls.spill_ops;
    out.stats.static_instrs = out.program.static_instrs();
    out.stats.block_makespan = vp.block_makespan;
    out.stats.est_tile_busy = vp.est_tile_busy;
    out.stats.timings.total_ms = out.stats.timings.transform_ms +
                                 out.stats.timings.orchestrate_ms +
                                 out.stats.timings.link_ms;
    out.fn = std::move(fn);
    return out;
}

CompileOutput
compile_source(const std::string &source, const MachineConfig &machine,
               const CompilerOptions &opts)
{
    machine.validate();
    Clock::time_point t0 = Clock::now();
    Program ast = parse_program(source);
    double parse_ms = lap_ms(t0);
    UnrollOptions uo = opts.unroll;
    uo.n_tiles = machine.n_tiles;
    UnrollStats us = unroll_program(ast, uo);
    double unroll_ms = lap_ms(t0);
    Function fn = lower_program(ast);
    if (opts.verify_ir)
        verify_or_panic(fn, "lowering");
    double lower_ms = lap_ms(t0);
    CompileOutput out = compile_function(std::move(fn), machine, opts);
    out.stats.unroll = us;
    out.stats.timings.parse_ms = parse_ms;
    out.stats.timings.unroll_ms = unroll_ms;
    out.stats.timings.lower_ms = lower_ms;
    out.stats.timings.total_ms += parse_ms + unroll_ms + lower_ms;
    return out;
}

} // namespace raw
