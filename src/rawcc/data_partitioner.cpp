#include "rawcc/data_partitioner.hpp"

namespace raw {

DataPartition
partition_data(const Function &fn, const ReplicationAnalysis &repl,
               const MachineConfig &machine,
               const std::vector<int> &home_override)
{
    DataPartition dp;
    dp.homes.n_tiles = machine.n_tiles;
    dp.homes.var_home.assign(fn.values.size(), -1);
    dp.homes.array_base.assign(fn.arrays.size(), 0);

    int64_t offset = 0;
    for (size_t a = 0; a < fn.arrays.size(); a++) {
        const ArrayInfo &ai = fn.arrays[a];
        ArrayLayout al;
        al.name = ai.name;
        al.type = ai.type;
        al.base = offset;
        al.size = ai.size();
        dp.homes.array_base[a] = offset;
        offset += al.size;
        dp.arrays.push_back(al);
    }
    dp.total_words = offset;

    int next = 0;
    for (ValueId v : fn.var_ids()) {
        if (repl.var_replicated(v))
            continue;
        if (v < static_cast<ValueId>(home_override.size()) &&
            home_override[v] >= 0 &&
            home_override[v] < machine.n_tiles) {
            dp.homes.var_home[v] = home_override[v];
            continue;
        }
        dp.homes.var_home[v] = next;
        next = (next + 1) % machine.n_tiles;
    }
    return dp;
}

} // namespace raw
