#ifndef RAW_RAWCC_ORCHESTRATER_HPP
#define RAW_RAWCC_ORCHESTRATER_HPP

/**
 * @file
 * Basic block orchestrater (Section 3.3, Figure 5).
 *
 * Transforms each basic block of a renamed function into an
 * equivalent set of per-tile and per-switch instruction sequences:
 *
 *   task graph builder -> instruction partitioner -> data partitioner
 *     -> basic block stitcher -> communication code generator
 *     -> event scheduler
 *
 * The stitch code (home-to-consumer imports at block entry,
 * producer-to-home write-backs at block exit) is represented by
 * import nodes and write-back moves inside the task graph, so it is
 * scheduled together with all other communication rather than in
 * separate synchronizing phases, exactly as the paper describes.
 *
 * Control flow is orchestrated per block: branch conditions are
 * either control-replicated (counted loops) or multicast to every
 * processor and active switch over the static network.
 *
 * The output is a *virtual* program: instruction streams over value
 * ids, consumed by the register allocator and linker.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/replication.hpp"
#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "partition/partition.hpp"
#include "rawcc/data_partitioner.hpp"
#include "schedule/event_scheduler.hpp"
#include "schedule/oracle.hpp"
#include "sim/isa.hpp"

namespace raw {

/**
 * Modulo-scheduling outcome of one loop block (--modulo).  Collected
 * for every block on a CFG cycle; `pipelined` records whether the
 * modulo schedule beat the greedy fallback (schedule/modulo.hpp).
 */
struct BlockPipelineStats
{
    int block = -1;
    /** Source loop the block was lowered from (-1: none). */
    int src_loop = -1;
    bool pipelined = false;
    /** Modeled steady-state initiation interval of the emitted sched. */
    int64_t ii = 0;
    /** Lower bound max(res_mii, rec_mii, flat_mii). */
    int64_t mii = 0;
    int64_t res_mii = 0;
    int64_t rec_mii = 0;
    int64_t flat_mii = 0;
};

/** A processor instruction over value ids (pre register allocation). */
struct VInstr
{
    Op op = Op::kHalt;
    Type type = Type::kI32;
    ValueId dst = kNoValue;
    ValueId src[2] = {kNoValue, kNoValue};
    uint32_t imm = 0;
    int array = -1;
    int print_seq = -1;
    /** kBranch (true) / kJump target: block id, patched by the linker. */
    int target_block = -1;
};

/** Hit/miss/traffic counters of the block-schedule cache. */
struct SchedCacheCounters
{
    int64_t part_hits = 0;
    int64_t part_misses = 0;
    int64_t sched_hits = 0;
    int64_t sched_misses = 0;
    /** Hits served from --cache-dir (also counted in *_hits). */
    int64_t disk_hits = 0;
    /** Entries dropped for version/checksum/key mismatch. */
    int64_t disk_corrupt = 0;
    int64_t bytes_read = 0;
    int64_t bytes_written = 0;

    int64_t hits() const { return part_hits + sched_hits; }
    int64_t misses() const { return part_misses + sched_misses; }
    void add(const SchedCacheCounters &o);
};

/** Orchestration knobs (ablation switches included). */
struct OrchestraterOptions
{
    PartitionOptions partition;
    SchedOptions sched;
    /**
     * Worker threads for the per-block partition and schedule phases
     * (the `--jobs` contract: >= 1 verbatim, 0 = one per core).
     * Results are bit-identical at any value: blocks are independent,
     * all function mutation happens serially before the fan-out, and
     * cross-block merges run serially in block order afterwards.
     */
    int jobs = 1;
    /** Consult/fill the in-memory block-schedule cache. */
    bool use_cache = true;
    /** On-disk cache tier directory; empty = memory tier only. */
    std::string cache_dir;
    /** Disable control replication (every branch broadcasts). */
    bool enable_replication = true;
    /** Fold communication ports into instruction operands
     *  (Section 3.1; Figure 4's two-cycle effective overhead). */
    bool fold_ports = true;
    /**
     * Per-value home-tile override from a previous compilation
     * (usage-aware data partitioning; empty = round-robin).  Entries
     * of -1 fall back to round-robin.
     */
    std::vector<int> var_home_override;
};

/** The orchestrated program, pre register allocation. */
struct VirtualProgram
{
    /** tiles[t][b]: processor stream of block b on tile t. */
    std::vector<std::vector<std::vector<VInstr>>> tiles;
    /**
     * switches[t][b]: switch stream of block b on switch t; branch
     * targets in SInstr::target hold block ids until linking.
     */
    std::vector<std::vector<std::vector<SInstr>>> switches;
    /** Switches that carry any route (inactive ones stay empty). */
    std::vector<bool> switch_active;
    /** persistent[t]: values register-resident across blocks on t. */
    std::vector<std::vector<ValueId>> persistent;
    DataPartition data;
    int num_prints = 0;
    /** Scheduler makespan estimate per block (stats/benches). */
    std::vector<int64_t> block_makespan;
    /** Estimated issue slots per tile, summed over blocks. */
    std::vector<int64_t> est_tile_busy;
    /** Count of memory refs that fell back to the dynamic network. */
    int dynamic_refs = 0;
    /** Placement candidate swaps evaluated, summed over blocks. */
    int64_t placement_swaps = 0;
    /** Count of blocks whose branch was control-replicated. */
    int replicated_branches = 0;
    int broadcast_branches = 0;
    /**
     * Usage votes per variable: var_votes[v][tile] counts how often
     * v's value was produced or consumed on that tile.  Feed back via
     * OrchestraterOptions::var_home_override for the usage-aware data
     * partitioning the paper lists as future work.
     */
    std::map<ValueId, std::map<int, int>> var_votes;
    /**
     * Per-loop-block modulo-scheduling outcomes, in block order
     * (empty unless the sched options enable --modulo).
     */
    std::vector<BlockPipelineStats> block_pipeline;
    /**
     * Small-block oracle reports, in block order (empty unless
     * --oracle-budget > 0); reporting-only, never affects streams.
     */
    std::vector<OracleReport> oracle_reports;
    /** Block-schedule cache traffic of this orchestration. */
    SchedCacheCounters cache;
    /** Wall-clock of the parallel partition phase (ms). */
    double partition_phase_ms = 0;
    /** Wall-clock of the parallel schedule+emit phase (ms). */
    double schedule_phase_ms = 0;
};

/**
 * Orchestrate @p fn (renamed, folded) for @p machine.
 * @p fn is mutated: statically unanalyzable memory references are
 * rewritten to dynamic ones and fresh values are created for control
 * tails.
 */
VirtualProgram orchestrate(Function &fn, const MachineConfig &machine,
                           const OrchestraterOptions &opts);

} // namespace raw

#endif // RAW_RAWCC_ORCHESTRATER_HPP
