#ifndef RAW_RAWCC_DATA_PARTITIONER_HPP
#define RAW_RAWCC_DATA_PARTITIONER_HPP

/**
 * @file
 * Data partitioner (Section 3.3 / Section 5.2).
 *
 * Arrays are placed in a single low-order-interleaved global address
 * space: element (base + idx) lives on tile ((base + idx) mod N), the
 * paper's default best-effort policy for fine-grained parallel memory
 * access.  Persistent scalars are assigned home tiles round-robin (the
 * paper's current policy); their values live in a register on the home
 * tile.  Control-replicated variables have no home — every tile keeps
 * a private copy.
 */

#include <vector>

#include "analysis/replication.hpp"
#include "analysis/taskgraph.hpp"
#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "sim/isa.hpp"

namespace raw {

/** Result of data partitioning. */
struct DataPartition
{
    HomeMap homes;
    std::vector<ArrayLayout> arrays;
    int64_t total_words = 0;
};

/**
 * Assign array bases and scalar home tiles.  @p home_override (may
 * be empty) pins specific variables to specific tiles — used by the
 * usage-aware second compilation pass; everything else is assigned
 * round-robin, the paper's current policy.
 */
DataPartition partition_data(const Function &fn,
                             const ReplicationAnalysis &repl,
                             const MachineConfig &machine,
                             const std::vector<int> &home_override = {});

} // namespace raw

#endif // RAW_RAWCC_DATA_PARTITIONER_HPP
