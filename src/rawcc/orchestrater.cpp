#include "rawcc/orchestrater.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "harness/parallel.hpp"
#include "rawcc/schedcache.hpp"
#include "schedule/modulo.hpp"
#include "support/error.hpp"
#include "transform/congruence.hpp"
#include "transform/rename.hpp"

namespace raw {

namespace {

/** Control tail: cloned replicated instructions with fresh temps. */
struct TailTemplate
{
    std::vector<VInstr> instrs;
    std::unordered_map<ValueId, ValueId> remap;
};

TailTemplate
build_tail(Function &fn, int b, const ReplicationAnalysis &repl)
{
    TailTemplate t;
    const std::vector<int> cloned = repl.cloned_instrs(b);
    for (int k : cloned) {
        const Instr &in = fn.blocks[b].instrs[k];
        VInstr v;
        v.op = in.op;
        v.type = in.type;
        v.imm = in.imm_bits;
        v.array = in.array;
        for (int s = 0; s < in.num_srcs(); s++) {
            ValueId x = in.src[s];
            if (!fn.values[x].is_var) {
                auto it = t.remap.find(x);
                check(it != t.remap.end(),
                      "control tail: slice temp without a cloned def");
                x = it->second;
            }
            v.src[s] = x;
        }
        if (in.has_dst()) {
            if (fn.values[in.dst].is_var) {
                v.dst = in.dst;
            } else {
                ValueId fresh = fn.new_value(in.type);
                t.remap[in.dst] = fresh;
                v.dst = fresh;
            }
        }
        t.instrs.push_back(v);
    }
    return t;
}

/**
 * Rewrite statically unanalyzable refs to the dynamic network.
 *
 * Correctness requires more than flipping the opcode: tiles are
 * decoupled across basic blocks, so two dynamic references to the
 * same array in different blocks would race if they executed on
 * different tiles.  The conservative model (Section 5.1 "fails for
 * other memory references") therefore treats any array with at least
 * one unanalyzable access as *fully dynamic*: every access to it
 * becomes a dynamic reference, and the task graph pins all of them to
 * one designated tile per array, whose in-order instruction stream
 * serializes them program-wide.
 */
int
rewrite_dynamic_refs(Function &fn, const HomeMap &homes)
{
    // Pass 1: find arrays with any statically unanalyzable access.
    std::vector<bool> dynamic_array(fn.arrays.size(), false);
    CongruenceMap cong(fn);
    for (size_t b = 0; b < fn.blocks.size(); b++) {
        cong.analyze(static_cast<int>(b));
        for (const Instr &in : fn.blocks[b].instrs) {
            if (in.op != Op::kLoad && in.op != Op::kStore)
                continue;
            if (cong.residue_mod(in.src[0], homes.n_tiles) < 0)
                dynamic_array[in.array] = true;
        }
    }
    // Pass 2: demote every access of a dynamic array.
    int count = 0;
    for (size_t b = 0; b < fn.blocks.size(); b++) {
        cong.analyze(static_cast<int>(b));
        for (Instr &in : fn.blocks[b].instrs) {
            if (in.op != Op::kLoad && in.op != Op::kStore)
                continue;
            if (dynamic_array[in.array]) {
                if (getenv("RAW_DEBUG_DYN") && count < 10) {
                    const Congruence &c = cong.get(in.src[0]);
                    fprintf(stderr,
                            "dyn ref: block %s array %s idx v%d "
                            "cong (%lld mod %lld)\n",
                            fn.blocks[b].name.c_str(),
                            fn.arrays[in.array].name.c_str(),
                            in.src[0],
                            static_cast<long long>(c.residue),
                            static_cast<long long>(c.modulus));
                }
                in.op = in.op == Op::kLoad ? Op::kDynLoad
                                           : Op::kDynStore;
                count++;
            }
        }
    }
    return count;
}

/** Translate one block instruction to a VInstr. */
VInstr
to_vinstr(const Instr &in, int print_seq)
{
    VInstr v;
    v.op = in.op;
    v.type = in.type;
    v.dst = in.dst;
    v.src[0] = in.src[0];
    v.src[1] = in.src[1];
    v.imm = in.imm_bits;
    v.array = in.array;
    v.print_seq = print_seq;
    return v;
}

/**
 * A small free-list of congruence analyzers: each one holds an
 * O(#values) fact table, so parallel workers reuse released analyzers
 * instead of allocating one per block.
 */
class CongruencePool
{
  public:
    explicit CongruencePool(const Function &fn) : fn_(fn) {}

    std::unique_ptr<CongruenceMap>
    acquire()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (!free_.empty()) {
                std::unique_ptr<CongruenceMap> p =
                    std::move(free_.back());
                free_.pop_back();
                return p;
            }
        }
        return std::make_unique<CongruenceMap>(fn_);
    }

    void
    release(std::unique_ptr<CongruenceMap> p)
    {
        std::lock_guard<std::mutex> lock(mu_);
        free_.push_back(std::move(p));
    }

  private:
    const Function &fn_;
    std::mutex mu_;
    std::vector<std::unique_ptr<CongruenceMap>> free_;
};

/**
 * Emit the per-tile processor and switch streams of one scheduled
 * block into @p tiles_b / @p switches_b (both sized n_tiles).  Pure
 * with respect to everything but its outputs, so blocks can emit
 * concurrently.
 */
void
emit_block_streams(const Function &fn, int b, const TaskGraph &graph,
                   const BlockSchedule &sched, const TailTemplate &tail,
                   const ReplicationAnalysis &repl,
                   const std::map<ValueId, int> &svreg,
                   const std::vector<bool> &switch_active,
                   const std::vector<int> &pseq_b,
                   const MachineConfig &machine,
                   std::vector<std::vector<VInstr>> &tiles_b,
                   std::vector<std::vector<SInstr>> &switches_b)
{
    const int n_tiles = machine.n_tiles;
    const Block &blk = fn.blocks[b];
    const Instr &term = blk.terminator();
    tiles_b.assign(n_tiles, {});
    switches_b.assign(n_tiles, {});

    // ---- Processor streams. ---------------------------------
    for (int t = 0; t < n_tiles; t++) {
        std::vector<VInstr> &code = tiles_b[t];
        for (const TileItem &item : sched.tiles[t]) {
            switch (item.kind) {
              case TileItem::Kind::kCompute: {
                const TGNode &nd = graph.nodes()[item.node];
                check(nd.kind == TGKind::kInstr,
                      "orchestrater: scheduled import");
                code.push_back(to_vinstr(blk.instrs[nd.instr],
                                         pseq_b[nd.instr]));
                break;
              }
              case TileItem::Kind::kSend: {
                VInstr v;
                v.op = Op::kSend;
                v.src[0] = item.value;
                code.push_back(v);
                break;
              }
              case TileItem::Kind::kRecv: {
                VInstr v;
                v.op = Op::kRecv;
                v.dst = item.value;
                code.push_back(v);
                break;
              }
            }
        }
        // Control tail + terminator.
        for (const VInstr &v : tail.instrs)
            code.push_back(v);
        switch (term.op) {
          case Op::kJump: {
            VInstr v;
            v.op = Op::kJump;
            v.target_block = term.target[0];
            code.push_back(v);
            break;
          }
          case Op::kHalt: {
            VInstr v;
            v.op = Op::kHalt;
            code.push_back(v);
            break;
          }
          case Op::kBranch: {
            ValueId cond = term.src[0];
            if (repl.branch_replicated(b) &&
                !fn.values[cond].is_var) {
                auto it = tail.remap.find(cond);
                check(it != tail.remap.end(),
                      "orchestrater: replicated branch condition "
                      "not in tail");
                cond = it->second;
            }
            VInstr br;
            br.op = Op::kBranch;
            br.src[0] = cond;
            br.target_block = term.target[0];
            code.push_back(br);
            VInstr jf;
            jf.op = Op::kJump;
            jf.target_block = term.target[1];
            code.push_back(jf);
            break;
          }
          default:
            panic("orchestrater: bad terminator");
        }
    }

    // ---- Switch streams. ------------------------------------
    for (int t = 0; t < n_tiles; t++) {
        if (!switch_active[t])
            continue;
        std::vector<SInstr> &code = switches_b[t];
        // One ROUTE per hop: same-cycle hops of distinct paths
        // stay separate instructions in a globally consistent
        // (cycle, path) order — see SwitchItem::path.
        for (const SwitchItem &item : sched.switches[t]) {
            SInstr route;
            route.k = SInstr::K::kRoute;
            RoutePair rp;
            rp.in = item.in;
            rp.out_mask = item.out_mask;
            rp.reg_dst = item.to_reg ? 0 : -1;
            route.routes.push_back(rp);
            code.push_back(std::move(route));
        }
        // Control tail: every active switch maintains the
        // replicated variables in every block, not only in
        // blocks that end in a replicated branch — the loop
        // counter's init and update slices live in jump blocks.
        // Temp switch registers are reused after a temp's last
        // use (the replication analysis budgets on this).
        std::map<ValueId, int> stemp;
        std::vector<int> sfree;
        for (int r = machine.num_switch_registers;
             r-- > 1 + static_cast<int>(svreg.size());)
            sfree.push_back(r);
        std::map<ValueId, size_t> last_use;
        for (size_t pos = 0; pos < tail.instrs.size(); pos++) {
            const VInstr &v = tail.instrs[pos];
            for (ValueId s : v.src)
                if (s != kNoValue && !fn.values[s].is_var)
                    last_use[s] = pos;
        }
        ValueId br_cond = kNoValue;
        if (term.op == Op::kBranch &&
            repl.branch_replicated(b)) {
            br_cond = term.src[0];
            if (!fn.values[br_cond].is_var) {
                auto it = tail.remap.find(br_cond);
                check(it != tail.remap.end(),
                      "orchestrater: replicated condition "
                      "missing from tail");
                br_cond = it->second;
                last_use[br_cond] = tail.instrs.size();
            }
        }
        auto sreg = [&](ValueId v) -> int {
            auto iv = svreg.find(v);
            if (iv != svreg.end())
                return iv->second;
            auto it = stemp.find(v);
            check(it != stemp.end(),
                  "orchestrater: unmapped switch value");
            return it->second;
        };
        for (size_t pos = 0; pos < tail.instrs.size(); pos++) {
            const VInstr &v = tail.instrs[pos];
            SInstr si;
            si.k = SInstr::K::kAlu;
            si.op = v.op;
            si.imm = v.imm;
            if (v.src[0] != kNoValue)
                si.a = sreg(v.src[0]);
            if (v.src[1] != kNoValue)
                si.b = sreg(v.src[1]);
            if (v.dst != kNoValue) {
                auto iv = svreg.find(v.dst);
                if (iv != svreg.end()) {
                    si.dst = iv->second;
                } else {
                    check(!sfree.empty(),
                          "orchestrater: switch register "
                          "budget exceeded");
                    stemp[v.dst] = sfree.back();
                    sfree.pop_back();
                    si.dst = stemp[v.dst];
                }
            }
            code.push_back(si);
            // Free temps whose last use was this instruction.
            for (ValueId s : v.src) {
                if (s == kNoValue || fn.values[s].is_var)
                    continue;
                auto lu = last_use.find(s);
                auto tr = stemp.find(s);
                if (lu != last_use.end() && lu->second == pos &&
                    tr != stemp.end()) {
                    sfree.push_back(tr->second);
                    stemp.erase(tr);
                }
            }
        }
        if (term.op == Op::kBranch &&
            repl.branch_replicated(b)) {
            ValueId cond = term.src[0];
            if (!fn.values[cond].is_var) {
                auto it = tail.remap.find(cond);
                check(it != tail.remap.end(),
                      "orchestrater: switch branch condition "
                      "not in tail");
                cond = it->second;
            }
            SInstr bn;
            bn.k = SInstr::K::kBnez;
            bn.cond = sreg(cond);
            bn.target = term.target[0];
            code.push_back(bn);
            SInstr jf;
            jf.k = SInstr::K::kJump;
            jf.target = term.target[1];
            code.push_back(jf);
        } else if (term.op == Op::kBranch) {
            SInstr bn;
            bn.k = SInstr::K::kBnez;
            bn.cond = 0;
            bn.target = term.target[0];
            code.push_back(bn);
            SInstr jf;
            jf.k = SInstr::K::kJump;
            jf.target = term.target[1];
            code.push_back(jf);
        } else if (term.op == Op::kJump) {
            SInstr j;
            j.k = SInstr::K::kJump;
            j.target = term.target[0];
            code.push_back(j);
        } else {
            SInstr h;
            h.k = SInstr::K::kHalt;
            code.push_back(h);
        }
    }
}

} // namespace

VirtualProgram
orchestrate(Function &fn, const MachineConfig &machine,
            const OrchestraterOptions &opts)
{
    using Clock = std::chrono::steady_clock;
    auto ms_since = [](Clock::time_point t0) {
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         t0)
            .count();
    };

    const int n_tiles = machine.n_tiles;
    const int n_blocks = static_cast<int>(fn.blocks.size());
    const int n_threads = resolve_jobs(opts.jobs);

    VirtualProgram vp;
    ReplicationAnalysis repl(fn, machine.num_switch_registers, 12,
                             opts.enable_replication);
    VarLiveness live(fn);
    vp.data = partition_data(fn, repl, machine,
                             opts.var_home_override);
    vp.dynamic_refs = rewrite_dynamic_refs(fn, vp.data.homes);

    // Global print ordering tags (program order).
    std::vector<std::vector<int>> pseq(n_blocks);
    for (int b = 0; b < n_blocks; b++) {
        pseq[b].assign(fn.blocks[b].instrs.size(), -1);
        for (size_t k = 0; k < fn.blocks[b].instrs.size(); k++)
            if (fn.blocks[b].instrs[k].op == Op::kPrint)
                pseq[b][k] = vp.num_prints++;
    }

    // Control tails for every block, up front and in block order:
    // build_tail creates fresh values, and keeping all function
    // mutation serial (and before the parallel phases) makes value id
    // allocation identical at any job count and any cache state.
    std::vector<TailTemplate> tails;
    tails.reserve(n_blocks);
    for (int b = 0; b < n_blocks; b++)
        tails.push_back(build_tail(fn, b, repl));

    // Switch register binding for replicated control: register 0 is
    // the broadcast register; replicated variables get 1..k.
    std::map<ValueId, int> svreg;
    {
        int next = 1;
        for (ValueId v : fn.var_ids())
            if (repl.var_replicated(v))
                svreg[v] = next++;
    }
    std::vector<int> svreg_of(fn.values.size(), -1);
    for (const auto &[v, r] : svreg)
        svreg_of[v] = r;

    // Which branches broadcast?  The condition's producing node is
    // resolved lazily on a schedule-cache miss, where the task graph
    // exists anyway.
    std::vector<bool> needs_bcast(n_blocks, false);
    bool any_bcast = false;
    for (int b = 0; b < n_blocks; b++) {
        const Instr &term = fn.blocks[b].terminator();
        if (term.op != Op::kBranch)
            continue;
        if (repl.branch_replicated(b)) {
            vp.replicated_branches++;
            continue;
        }
        vp.broadcast_branches++;
        needs_bcast[b] = true;
        any_bcast = true;
    }

    const bool use_cache = opts.use_cache || !opts.cache_dir.empty();
    const std::string &dir = opts.cache_dir;
    SchedCache &cache = SchedCache::instance();

    // Per-block working state.  Each parallel job owns exactly its
    // own index; every cross-block merge below runs serially in block
    // order, so results are bit-identical at any thread count.
    std::vector<SchedCacheCounters> ctr(n_blocks);
    std::vector<BlockCanon> canons(n_blocks);
    std::vector<BlockKey> part_keys(n_blocks);
    std::vector<std::shared_ptr<const PartEntry>> pentries(n_blocks);
    std::vector<std::unique_ptr<TaskGraph>> graphs(n_blocks);
    std::vector<Partition> parts(n_blocks);
    std::vector<std::vector<uint8_t>> probes(n_blocks);
    CongruencePool cong_pool(fn);

    auto ensure_graph = [&](int b) -> TaskGraph & {
        if (!graphs[b]) {
            std::unique_ptr<CongruenceMap> cg = cong_pool.acquire();
            cg->analyze(b);
            graphs[b] = std::make_unique<TaskGraph>(
                fn, b, machine, *cg, repl, live, vp.data.homes);
            cong_pool.release(std::move(cg));
        }
        return *graphs[b];
    };

    // The switch-probe mask costs a comm-routing pass per block, so
    // it is only computed when something will consume it: any
    // broadcast on a multi-tile machine activates every switch and
    // the mask is moot.  Cache entries record whether they carry it
    // (probe_valid); an entry without it misses for compiles that
    // need it and is re-put upgraded.
    const bool need_probe = !(any_bcast && n_tiles > 1);

    // ---- Phase 1 (parallel): partition every block. -------------
    Clock::time_point t_part = Clock::now();
    run_parallel(n_blocks, n_threads, [&](int b) {
        if (use_cache) {
            canons[b] = block_canon(fn, b, tails[b].instrs, pseq[b]);
            // Key text is only needed for disk-tier byte verification.
            part_keys[b] = block_partition_key(
                fn, b, tails[b].instrs, canons[b], machine,
                vp.data.homes, repl, live, svreg_of,
                static_cast<int>(svreg.size()), opts.partition,
                /*want_text=*/!dir.empty());
            pentries[b] = cache.get_part(part_keys[b], dir,
                                         need_probe, ctr[b]);
            if (pentries[b]) {
                const PartEntry &e = *pentries[b];
                parts[b].tile_of.assign(e.tile_of.begin(),
                                        e.tile_of.end());
                parts[b].cross_edges = e.cross_edges;
                parts[b].swaps_evaluated = e.swaps_evaluated;
                return;
            }
        }
        const TaskGraph &g = ensure_graph(b);
        parts[b] =
            partition_taskgraph(g, machine, opts.partition);
        if (need_probe) {
            // Switch activity this block contributes without any
            // broadcast: switches its route trees transit.
            probes[b].assign(n_tiles, 0);
            std::vector<CommPath> paths =
                build_comm_paths(g, parts[b], machine, -1, {});
            for (const CommPath &p : paths) {
                RouteTree tree = build_route_tree(machine, p);
                for (const TreeHop &h : tree.hops)
                    probes[b][h.tile] = 1;
            }
        }
        if (use_cache) {
            auto e = std::make_shared<PartEntry>();
            e->tile_of.assign(parts[b].tile_of.begin(),
                              parts[b].tile_of.end());
            e->cross_edges = parts[b].cross_edges;
            e->swaps_evaluated = parts[b].swaps_evaluated;
            e->probe_switch = probes[b];
            e->probe_valid = need_probe;
            // Usage votes in canonical numbering, aggregated in
            // deterministic (var, tile) order.
            std::map<std::pair<int32_t, int32_t>, int64_t> votes;
            for (size_t i = 0; i < g.nodes().size(); i++) {
                const TGNode &nd = g.nodes()[i];
                if (nd.kind == TGKind::kImport) {
                    for (int u : g.succs(static_cast<int>(i)))
                        votes[{canons[b].canon_value(nd.var),
                               parts[b].tile_of[u]}]++;
                } else if (is_writeback(
                               fn, fn.blocks[b].instrs[nd.instr])) {
                    for (int p : g.preds(static_cast<int>(i)))
                        votes[{canons[b].canon_value(
                                   fn.blocks[b].instrs[nd.instr].dst),
                               parts[b].tile_of[p]}]++;
                }
            }
            for (const auto &[k, n] : votes)
                e->votes.push_back({k.first, k.second, n});
            cache.put_part(part_keys[b], dir, e, ctr[b]);
            pentries[b] = e;
        }
    });
    vp.partition_phase_ms = ms_since(t_part);

    // ---- Serial merge: swaps, votes, switch activity. -----------
    for (int b = 0; b < n_blocks; b++) {
        vp.placement_swaps += parts[b].swaps_evaluated;
        if (pentries[b]) {
            for (const auto &v : pentries[b]->votes)
                vp.var_votes[canons[b].value_of(
                    static_cast<int32_t>(v[0]))]
                            [static_cast<int>(v[1])] +=
                    static_cast<int>(v[2]);
        } else {
            const TaskGraph &g = *graphs[b];
            for (size_t i = 0; i < g.nodes().size(); i++) {
                const TGNode &nd = g.nodes()[i];
                if (nd.kind == TGKind::kImport) {
                    for (int u : g.succs(static_cast<int>(i)))
                        vp.var_votes[nd.var][parts[b].tile_of[u]]++;
                } else if (is_writeback(
                               fn, fn.blocks[b].instrs[nd.instr])) {
                    for (int p : g.preds(static_cast<int>(i)))
                        vp.var_votes[fn.blocks[b].instrs[nd.instr].dst]
                                    [parts[b].tile_of[p]]++;
                }
            }
        }
    }

    // Switch activity: any switch that routes a word anywhere must
    // follow all control flow; broadcasts transit arbitrary switches,
    // so any broadcast on a multi-tile machine activates every switch.
    vp.switch_active.assign(n_tiles, false);
    if (any_bcast && n_tiles > 1) {
        vp.switch_active.assign(n_tiles, true);
    } else {
        for (int b = 0; b < n_blocks; b++) {
            const std::vector<uint8_t> &mask =
                pentries[b] ? pentries[b]->probe_switch : probes[b];
            for (int t = 0; t < n_tiles; t++)
                if (t < static_cast<int>(mask.size()) && mask[t])
                    vp.switch_active[t] = true;
        }
    }

    // ---- Phase 2 (parallel): schedule + emit every block. -------
    std::vector<int64_t> makespans(n_blocks, 0);
    std::vector<std::vector<int64_t>> busys(n_blocks);
    std::vector<BlockPipelineStats> pstats(n_blocks);
    std::vector<uint8_t> have_oracle(n_blocks, 0);
    std::vector<OracleReport> oracles(n_blocks);
    std::vector<std::vector<std::vector<VInstr>>> btiles(n_blocks);
    std::vector<std::vector<std::vector<SInstr>>> bswitches(n_blocks);

    // Modulo scheduling targets blocks on CFG cycles; the CFG is
    // frozen by now (all mutation happened serially above), so the
    // loop-block mask is computed once, outside the fan-out.
    std::vector<uint8_t> on_cycle;
    if (opts.sched.modulo)
        on_cycle = loop_blocks(fn);
    bool any_sw_active = false;
    for (int t = 0; t < n_tiles; t++)
        any_sw_active = any_sw_active || vp.switch_active[t];

    // The oracle is reporting-only and independent of the schedule
    // cache: it runs per compile (budget-gated) so its reports exist
    // on warm compiles too, identically to cold ones.
    auto run_oracle = [&](int b) {
        if (opts.sched.oracle_budget <= 0)
            return;
        const TaskGraph &g = ensure_graph(b);
        const Instr &term = fn.blocks[b].terminator();
        int bcast = -1;
        if (needs_bcast[b])
            bcast = g.producer_of(term.src[0]);
        std::vector<CommPath> paths = build_comm_paths(
            g, parts[b], machine, bcast, vp.switch_active);
        if (oracle_search(g, parts[b], machine, paths,
                          opts.sched.oracle_budget, oracles[b])) {
            oracles[b].block = b;
            have_oracle[b] = 1;
        }
    };

    Clock::time_point t_sched = Clock::now();
    run_parallel(n_blocks, n_threads, [&](int b) {
        const Instr &term = fn.blocks[b].terminator();
        BlockKey skey;
        if (use_cache) {
            skey = block_schedule_key(part_keys[b], opts.sched,
                                      vp.switch_active);
            if (std::shared_ptr<const std::string> blob =
                    cache.get_sched(skey, dir, ctr[b])) {
                if (rehydrate_sched_payload(*blob, canons[b], term,
                                            makespans[b], busys[b],
                                            pstats[b], btiles[b],
                                            bswitches[b])) {
                    run_oracle(b);
                    return;
                }
                // Undecodable payload (stale survivor): recompute
                // below and re-put a fresh entry.
            }
        }
        const TaskGraph &g = ensure_graph(b);
        int bcast = -1;
        if (needs_bcast[b]) {
            bcast = g.producer_of(term.src[0]);
            check(bcast >= 0, "orchestrater: branch condition has no "
                              "producing node");
        }
        std::vector<CommPath> paths = build_comm_paths(
            g, parts[b], machine, bcast, vp.switch_active);
        LoopPipelineInfo loop;
        if (opts.sched.modulo)
            loop = analyze_loop_block(
                fn, b, g, on_cycle[b] != 0,
                static_cast<int>(tails[b].instrs.size()),
                any_sw_active);
        BlockSchedule sched = schedule_block_pipelined(
            g, parts[b], machine, paths, opts.sched, loop);
        makespans[b] = sched.makespan;
        busys[b] = sched.tile_busy;
        pstats[b] = {b,         fn.blocks[b].src_loop, sched.pipelined,
                     sched.ii,  sched.mii,             sched.res_mii,
                     sched.rec_mii, sched.flat_mii};
        emit_block_streams(fn, b, g, sched, tails[b], repl, svreg,
                           vp.switch_active, pseq[b], machine,
                           btiles[b], bswitches[b]);
        if (use_cache) {
            auto e = std::make_shared<SchedEntry>(dehydrate_streams(
                canons[b], term, sched, btiles[b], bswitches[b]));
            cache.put_sched(skey, dir, e, ctr[b]);
        }
        run_oracle(b);
    });
    vp.schedule_phase_ms = ms_since(t_sched);

    // ---- Serial finalize. ---------------------------------------
    vp.tiles.assign(n_tiles,
                    std::vector<std::vector<VInstr>>(n_blocks));
    vp.switches.assign(n_tiles,
                       std::vector<std::vector<SInstr>>(n_blocks));
    vp.est_tile_busy.assign(n_tiles, 0);
    for (int b = 0; b < n_blocks; b++) {
        vp.block_makespan.push_back(makespans[b]);
        for (int t = 0; t < n_tiles; t++) {
            vp.est_tile_busy[t] += busys[b][t];
            vp.tiles[t][b] = std::move(btiles[b][t]);
            vp.switches[t][b] = std::move(bswitches[b][t]);
        }
        // Loop blocks carry mii >= 1 (whether computed or rehydrated
        // from a cached payload); everything else stays all-zero.
        if (opts.sched.modulo && pstats[b].mii > 0) {
            pstats[b].block = b;
            pstats[b].src_loop = fn.blocks[b].src_loop;
            vp.block_pipeline.push_back(pstats[b]);
        }
        if (have_oracle[b])
            vp.oracle_reports.push_back(oracles[b]);
        vp.cache.add(ctr[b]);
    }

    // Persistent value sets per tile.
    vp.persistent.assign(n_tiles, {});
    for (ValueId v : fn.var_ids()) {
        if (repl.var_replicated(v)) {
            for (int t = 0; t < n_tiles; t++)
                vp.persistent[t].push_back(v);
        } else {
            vp.persistent[vp.data.homes.var_home[v]].push_back(v);
        }
    }
    return vp;
}

} // namespace raw
