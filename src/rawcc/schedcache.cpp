#include "rawcc/schedcache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "support/error.hpp"

namespace raw {

const char *const kSchedCacheVersion = "rawsc-3";

void
SchedCacheCounters::add(const SchedCacheCounters &o)
{
    part_hits += o.part_hits;
    part_misses += o.part_misses;
    sched_hits += o.sched_hits;
    sched_misses += o.sched_misses;
    disk_hits += o.disk_hits;
    disk_corrupt += o.disk_corrupt;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
}

// ---------------------------------------------------------------
// Canonical renumbering.
// ---------------------------------------------------------------

namespace {

/** Binary search in a sorted (id, canon) vector; -1 when absent. */
template <typename Id>
int32_t
lookup_canon(const std::vector<std::pair<Id, int32_t>> &sorted, Id id)
{
    auto it = std::lower_bound(
        sorted.begin(), sorted.end(), id,
        [](const std::pair<Id, int32_t> &e, Id k) { return e.first < k; });
    if (it == sorted.end() || it->first != id)
        return -1;
    return it->second;
}

} // namespace

int32_t
BlockCanon::canon_value(ValueId v) const
{
    if (v == kNoValue)
        return -1;
    int32_t c = lookup_canon(value_lookup, v);
    check(c >= 0, "schedcache: stream value not in block canon");
    return c;
}

int32_t
BlockCanon::find_value(ValueId v) const
{
    if (v == kNoValue)
        return -1;
    return lookup_canon(value_lookup, v);
}

ValueId
BlockCanon::value_of(int32_t canon) const
{
    if (canon < 0)
        return kNoValue;
    check(canon < static_cast<int32_t>(canon_to_value.size()),
          "schedcache: canonical value out of range");
    return canon_to_value[canon];
}

int32_t
BlockCanon::canon_array(int32_t a) const
{
    if (a < 0)
        return a; // includes kSpillArray
    int32_t c = lookup_canon(array_lookup, a);
    check(c >= 0, "schedcache: stream array not in block canon");
    return c;
}

int32_t
BlockCanon::array_of(int32_t canon) const
{
    if (canon < 0)
        return canon;
    check(canon < static_cast<int32_t>(canon_to_array.size()),
          "schedcache: canonical array out of range");
    return canon_to_array[canon];
}

BlockCanon
block_canon(const Function &fn, int b, const std::vector<VInstr> &tail,
            const std::vector<int> &pseq)
{
    // First-appearance dedup via an epoch-stamped dense scratch
    // (thread-local: one array per worker, reused across blocks, no
    // per-block allocation once grown).  A hash map here costs one
    // node allocation per distinct id, thousands per compile.
    thread_local std::vector<uint64_t> vstamp, astamp;
    thread_local uint64_t epoch = 0;
    epoch++;
    if (vstamp.size() < fn.values.size())
        vstamp.resize(fn.values.size(), 0);

    BlockCanon c;
    auto note_value = [&](ValueId v) {
        if (v == kNoValue)
            return;
        if (v >= static_cast<ValueId>(vstamp.size()))
            vstamp.resize(v + 1, 0);
        if (vstamp[v] != epoch) {
            vstamp[v] = epoch;
            c.canon_to_value.push_back(v);
        }
    };
    auto note_array = [&](int32_t a) {
        if (a < 0)
            return;
        if (a >= static_cast<int32_t>(astamp.size()))
            astamp.resize(a + 1, 0);
        if (astamp[a] != epoch) {
            astamp[a] = epoch;
            c.canon_to_array.push_back(a);
        }
    };
    for (const Instr &in : fn.blocks[b].instrs) {
        note_value(in.src[0]);
        note_value(in.src[1]);
        if (in.has_dst())
            note_value(in.dst);
        note_array(in.array);
    }
    for (const VInstr &v : tail) {
        note_value(v.src[0]);
        note_value(v.src[1]);
        note_value(v.dst);
        note_array(v.array);
    }
    for (size_t k = 0; k < fn.blocks[b].instrs.size(); k++)
        if (pseq[k] >= 0) {
            c.print_base = pseq[k];
            break;
        }
    c.value_lookup.reserve(c.canon_to_value.size());
    for (size_t i = 0; i < c.canon_to_value.size(); i++)
        c.value_lookup.emplace_back(c.canon_to_value[i],
                                    static_cast<int32_t>(i));
    std::sort(c.value_lookup.begin(), c.value_lookup.end());
    c.array_lookup.reserve(c.canon_to_array.size());
    for (size_t i = 0; i < c.canon_to_array.size(); i++)
        c.array_lookup.emplace_back(c.canon_to_array[i],
                                    static_cast<int32_t>(i));
    std::sort(c.array_lookup.begin(), c.array_lookup.end());
    return c;
}

// ---------------------------------------------------------------
// Key construction.
// ---------------------------------------------------------------

namespace {

/** Append a decimal int plus separator (fast path, no snprintf). */
void
app(std::string &s, int64_t v)
{
    char buf[24];
    char *p = buf + sizeof(buf);
    *--p = ' ';
    uint64_t u = v < 0 ? ~static_cast<uint64_t>(v) + 1
                       : static_cast<uint64_t>(v);
    do {
        *--p = static_cast<char>('0' + u % 10);
        u /= 10;
    } while (u);
    if (v < 0)
        *--p = '-';
    s.append(p, static_cast<size_t>(buf + sizeof(buf) - p));
}

constexpr uint64_t kFnvBasis = 1469598103934665603ull;
constexpr uint64_t kFnvBasis2 = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnv1a64(const std::string &s, uint64_t h = kFnvBasis)
{
    for (unsigned char ch : s) {
        h ^= ch;
        h *= kFnvPrime;
    }
    return h;
}

/**
 * Streams key content into the two FNV digests and, optionally, the
 * canonical key text.  The digests run over the raw field bytes (not
 * the decimal text), so a hash-only key never formats a single
 * digit; text and digest are each deterministic functions of the
 * same content, which is all content addressing needs.
 */
struct KeySink
{
    uint64_t h1 = kFnvBasis;
    uint64_t h2 = kFnvBasis2;
    std::string *text = nullptr;

    void
    raw(const void *p, size_t n)
    {
        const unsigned char *c = static_cast<const unsigned char *>(p);
        uint64_t a = h1, b = h2;
        for (size_t k = 0; k < n; k++) {
            a = (a ^ c[k]) * kFnvPrime;
            b = (b ^ c[k]) * kFnvPrime;
        }
        h1 = a;
        h2 = b;
    }

    void
    lit(const char *s)
    {
        size_t n = std::strlen(s);
        raw(s, n);
        if (text)
            text->append(s, n);
    }

    void
    num(int64_t v)
    {
        raw(&v, sizeof v);
        if (text)
            app(*text, v);
    }

    void
    bit(bool v)
    {
        char c = v ? '1' : '0';
        raw(&c, 1);
        if (text)
            text->push_back(c);
    }
};

void
app_instr(KeySink &s, const BlockCanon &canon, int op, int type,
          int32_t csrc0, int32_t csrc1, int32_t cdst, uint32_t imm,
          int32_t array)
{
    s.num(op);
    s.num(type);
    s.num(csrc0);
    s.num(csrc1);
    s.num(cdst);
    s.num(static_cast<int64_t>(imm));
    s.num(canon.canon_array(array));
}

} // namespace

BlockKey
block_partition_key(const Function &fn, int b,
                    const std::vector<VInstr> &tail,
                    const BlockCanon &canon,
                    const MachineConfig &machine, const HomeMap &homes,
                    const ReplicationAnalysis &repl,
                    const VarLiveness &live,
                    const std::vector<int> &svreg_of, int svreg_count,
                    const PartitionOptions &popts, bool want_text)
{
    BlockKey k;
    KeySink s;
    if (want_text) {
        k.text.reserve(256 + 48 * fn.blocks[b].instrs.size());
        s.text = &k.text;
    }
    s.lit(kSchedCacheVersion);
    s.lit("|m:");
    s.num(svreg_count);
    s.num(machine.n_tiles);
    s.num(machine.rows);
    s.num(machine.cols);
    s.num(machine.num_registers);
    s.num(machine.num_switch_registers);
    s.num(machine.unit_latency);
    s.num(machine.switch_dual_issue);
    s.num(machine.dyn_handler_cycles);
    s.num(machine.dyn_header_cycles);
    s.lit("|p:");
    s.num(static_cast<int>(popts.cluster_mode));
    s.num(static_cast<int>(popts.place_mode));
    s.num(popts.seed);
    s.num(popts.crit_weight);
    s.num(static_cast<int64_t>(popts.feedback.comm_penalty.size()));
    for (int64_t v : popts.feedback.comm_penalty)
        s.num(v);
    s.num(static_cast<int64_t>(popts.feedback.proc_penalty.size()));
    for (int64_t v : popts.feedback.proc_penalty)
        s.num(v);
    const Block &blk = fn.blocks[b];
    s.lit("|b:");
    s.num(repl.branch_replicated(b));
    s.num(static_cast<int64_t>(blk.instrs.size()));
    for (const Instr &in : blk.instrs)
        app_instr(s, canon, static_cast<int>(in.op),
                  static_cast<int>(in.type),
                  canon.canon_value(in.src[0]),
                  canon.canon_value(in.src[1]),
                  in.has_dst() ? canon.canon_value(in.dst) : -1,
                  in.imm_bits, in.array);
    s.lit("|t:");
    s.num(static_cast<int64_t>(tail.size()));
    for (const VInstr &v : tail)
        app_instr(s, canon, static_cast<int>(v.op),
                  static_cast<int>(v.type), canon.canon_value(v.src[0]),
                  canon.canon_value(v.src[1]), canon.canon_value(v.dst),
                  v.imm, v.array);
    s.lit("|f:");
    for (const EntryFact &ef : blk.entry_facts) {
        int32_t cv = canon.find_value(ef.var);
        if (cv < 0)
            continue; // var unused in the block: fact can't matter
        s.num(cv);
        s.num(ef.cong.residue);
        s.num(ef.cong.modulus);
    }
    s.lit("|v:");
    s.num(static_cast<int64_t>(canon.canon_to_value.size()));
    for (ValueId v : canon.canon_to_value) {
        const ValueInfo &vi = fn.values[v];
        s.num(static_cast<int>(vi.type));
        s.num(vi.is_var);
        if (vi.is_var) {
            bool rep = repl.var_replicated(v);
            s.num(rep);
            s.num(rep ? -1 : homes.var_home[v]);
            s.num(v < static_cast<ValueId>(svreg_of.size())
                      ? svreg_of[v]
                      : -1);
            s.num(live.live_in(b, v));
            s.num(live.live_out(b, v));
        }
    }
    s.lit("|a:");
    s.num(static_cast<int64_t>(canon.canon_to_array.size()));
    for (int32_t a : canon.canon_to_array) {
        s.num(homes.array_base[a]);
        // Dynamic references are pinned to tile (array id mod N).
        s.num(a % homes.n_tiles);
    }
    k.h1 = s.h1;
    k.h2 = s.h2;
    return k;
}

BlockKey
block_schedule_key(const BlockKey &part_key, const SchedOptions &so,
                   const std::vector<bool> &switch_active)
{
    BlockKey k;
    KeySink s;
    s.h1 = part_key.h1;
    s.h2 = part_key.h2;
    if (!part_key.text.empty()) {
        k.text = part_key.text;
        s.text = &k.text;
    }
    s.lit("|s:");
    s.num(so.level_weight);
    s.num(so.fertility_weight);
    s.num(so.fifo_priority);
    s.num(so.sched_iters);
    s.num(so.route_select);
    s.num(so.modulo);
    s.num(so.mii_cap);
    // The oracle never changes the emitted streams, but its reports
    // ride in the compile stats; keying on the budget keeps a --stats
    // run from being satisfied by an oracle-less entry and vice versa.
    s.num(so.oracle_budget);
    s.lit("|w:");
    s.num(static_cast<int64_t>(switch_active.size()));
    for (bool v : switch_active)
        s.bit(v);
    k.h1 = s.h1;
    k.h2 = s.h2;
    return k;
}

// ---------------------------------------------------------------
// Stream dehydration / rehydration.
// ---------------------------------------------------------------

namespace {

int32_t
target_to_slot(int32_t target, const Instr &term)
{
    if (target < 0)
        return target;
    if (term.op == Op::kBranch && target == term.target[1])
        return kTargetSlot1;
    check(target == term.target[0],
          "schedcache: stream target is not a terminator target");
    return kTargetSlot0;
}

int32_t
slot_to_target(int32_t slot, const Instr &term)
{
    if (slot == kTargetSlot0)
        return term.target[0];
    if (slot == kTargetSlot1)
        return term.target[1];
    check(slot < 0, "schedcache: cached stream carries a raw target");
    return slot;
}

} // namespace

SchedEntry
dehydrate_streams(const BlockCanon &canon, const Instr &term,
                  const BlockSchedule &sched,
                  const std::vector<std::vector<VInstr>> &tiles,
                  const std::vector<std::vector<SInstr>> &switches)
{
    SchedEntry e;
    e.makespan = sched.makespan;
    e.tile_busy = sched.tile_busy;
    e.pipelined = sched.pipelined ? 1 : 0;
    e.ii = sched.ii;
    e.mii = sched.mii;
    e.res_mii = sched.res_mii;
    e.rec_mii = sched.rec_mii;
    e.flat_mii = sched.flat_mii;
    e.tiles.resize(tiles.size());
    for (size_t t = 0; t < tiles.size(); t++) {
        e.tiles[t].reserve(tiles[t].size());
        for (VInstr v : tiles[t]) {
            v.dst = canon.canon_value(v.dst);
            v.src[0] = canon.canon_value(v.src[0]);
            v.src[1] = canon.canon_value(v.src[1]);
            v.array = canon.canon_array(v.array);
            if (v.print_seq >= 0)
                v.print_seq -= canon.print_base;
            v.target_block = target_to_slot(v.target_block, term);
            e.tiles[t].push_back(v);
        }
    }
    e.switches.resize(switches.size());
    for (size_t t = 0; t < switches.size(); t++) {
        e.switches[t].reserve(switches[t].size());
        for (SInstr si : switches[t]) {
            si.target = si.target < 0
                            ? si.target
                            : target_to_slot(
                                  static_cast<int32_t>(si.target), term);
            e.switches[t].push_back(std::move(si));
        }
    }
    return e;
}

// rehydrate_sched_payload lives below the serialization helpers; it
// decodes payload bytes directly, so it needs the Reader.

// ---------------------------------------------------------------
// Entry serialization (disk tier).
// ---------------------------------------------------------------

namespace {

/**
 * Payload number encoding: zigzag varint (LEB128).  Entries are
 * parsed on every memory-tier hit, so decode speed is the hit path;
 * a one-byte fast path covers nearly every field (ids, opcodes,
 * tile indices are all small).
 */
void
put(std::string &s, int64_t v)
{
    uint64_t u = (static_cast<uint64_t>(v) << 1) ^
                 static_cast<uint64_t>(v >> 63);
    while (u >= 0x80) {
        s.push_back(static_cast<char>(u | 0x80));
        u >>= 7;
    }
    s.push_back(static_cast<char>(u));
}

struct Reader
{
    const char *p;
    const char *end;
    bool ok = true;

    int64_t
    i()
    {
        if (p < end) {
            unsigned char b0 = static_cast<unsigned char>(*p);
            if (b0 < 0x80) {
                p++;
                return static_cast<int64_t>(b0 >> 1) ^
                       -static_cast<int64_t>(b0 & 1);
            }
        }
        uint64_t u = 0;
        int shift = 0;
        for (;;) {
            if (p >= end || shift > 63) {
                ok = false;
                return 0;
            }
            unsigned char b = static_cast<unsigned char>(*p++);
            u |= static_cast<uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                break;
            shift += 7;
        }
        return static_cast<int64_t>(u >> 1) ^
               -static_cast<int64_t>(u & 1);
    }
};

void
serialize_part(std::string &s, const PartEntry &e)
{
    put(s, static_cast<int64_t>(e.tile_of.size()));
    for (int32_t t : e.tile_of)
        put(s, t);
    put(s, e.cross_edges);
    put(s, e.swaps_evaluated);
    put(s, e.probe_valid ? 1 : 0);
    put(s, static_cast<int64_t>(e.probe_switch.size()));
    for (uint8_t v : e.probe_switch)
        put(s, v);
    put(s, static_cast<int64_t>(e.votes.size()));
    for (const auto &v : e.votes) {
        put(s, v[0]);
        put(s, v[1]);
        put(s, v[2]);
    }
}

bool
parse_part(Reader &r, PartEntry &e)
{
    int64_t n = r.i();
    if (!r.ok || n < 0 || n > (1 << 28))
        return false;
    e.tile_of.resize(n);
    for (int64_t k = 0; k < n; k++)
        e.tile_of[k] = static_cast<int32_t>(r.i());
    e.cross_edges = static_cast<int32_t>(r.i());
    e.swaps_evaluated = r.i();
    e.probe_valid = r.i() != 0;
    n = r.i();
    if (!r.ok || n < 0 || n > (1 << 20))
        return false;
    e.probe_switch.resize(n);
    for (int64_t k = 0; k < n; k++)
        e.probe_switch[k] = static_cast<uint8_t>(r.i());
    n = r.i();
    if (!r.ok || n < 0 || n > (1 << 28))
        return false;
    e.votes.resize(n);
    for (int64_t k = 0; k < n; k++) {
        e.votes[k][0] = r.i();
        e.votes[k][1] = r.i();
        e.votes[k][2] = r.i();
    }
    return r.ok;
}

void
serialize_sched(std::string &s, const SchedEntry &e)
{
    put(s, e.makespan);
    put(s, static_cast<int64_t>(e.tile_busy.size()));
    for (int64_t v : e.tile_busy)
        put(s, v);
    put(s, static_cast<int64_t>(e.pipelined));
    put(s, e.ii);
    put(s, e.mii);
    put(s, e.res_mii);
    put(s, e.rec_mii);
    put(s, e.flat_mii);
    put(s, static_cast<int64_t>(e.tiles.size()));
    for (const auto &code : e.tiles) {
        put(s, static_cast<int64_t>(code.size()));
        for (const VInstr &v : code) {
            put(s, static_cast<int>(v.op));
            put(s, static_cast<int>(v.type));
            put(s, v.dst);
            put(s, v.src[0]);
            put(s, v.src[1]);
            put(s, static_cast<int64_t>(v.imm));
            put(s, v.array);
            put(s, v.print_seq);
            put(s, v.target_block);
        }
    }
    put(s, static_cast<int64_t>(e.switches.size()));
    for (const auto &code : e.switches) {
        put(s, static_cast<int64_t>(code.size()));
        for (const SInstr &si : code) {
            put(s, static_cast<int>(si.k));
            put(s, static_cast<int>(si.op));
            put(s, si.dst);
            put(s, si.a);
            put(s, si.b);
            put(s, static_cast<int64_t>(si.imm));
            put(s, si.cond);
            put(s, si.target);
            put(s, static_cast<int64_t>(si.routes.size()));
            for (const RoutePair &rp : si.routes) {
                put(s, static_cast<int>(rp.in));
                put(s, rp.out_mask);
                put(s, rp.reg_dst);
            }
        }
    }
}

// Schedule payloads are decoded only by rehydrate_sched_payload
// (defined after this namespace), which fuses parsing with the remap
// onto the hitting block's real ids.

// ------------------------------------------------------------
// Disk tier.
// ------------------------------------------------------------

std::string
entry_path(const std::string &dir, char kind, const BlockKey &key)
{
    // The 128-bit content digest names the file; the stored key text
    // is still byte-verified on read.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "/%c%016" PRIx64 "%016" PRIx64
                  ".rsc",
                  kind, key.h1, key.h2);
    return dir + buf;
}

std::string
file_body(char kind, const std::string &key, const std::string &payload)
{
    std::string s = "RAWSC ";
    s += kSchedCacheVersion;
    s += "\n";
    s.push_back(kind);
    s += " ";
    app(s, static_cast<int64_t>(key.size()));
    s += "\n";
    s += key;
    s += "\n";
    s += payload;
    s += "\n";
    return s;
}

bool
write_entry_file(const std::string &path, const std::string &body_in)
{
    std::string body = body_in;
    char crc[32];
    std::snprintf(crc, sizeof(crc), "crc %016" PRIx64 "\n",
                  fnv1a64(body));
    body += crc;
    // Crash-safe publish: write a per-writer unique temp file in the
    // same directory, fdatasync it, then atomically rename(2) into
    // place.  A reader can never observe a torn entry (the name only
    // exists once the bytes do), concurrent writers of the same key
    // are idempotent (identical payloads, last rename wins), and a
    // process killed mid-write leaves only a stale .tmp — swept by
    // validate_cache_dir, never mistaken for an entry.
    static std::atomic<uint64_t> seq{0};
    std::string tmp = path + ".tmp" +
                      std::to_string(static_cast<uint64_t>(getpid())) +
                      "." + std::to_string(seq.fetch_add(1));
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0)
        return false;
    size_t off = 0;
    while (off < body.size()) {
        ssize_t n = ::write(fd, body.data() + off, body.size() - off);
        if (n <= 0) {
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    // Data must hit the disk before the rename publishes the name;
    // otherwise a power cut can leave a fully-named, half-written
    // entry that only the CRC catches (as a counted drop).
    if (::fdatasync(fd) != 0 || ::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

/**
 * Read and validate one cache file.  Returns the payload substring on
 * success; any structural problem (missing file aside) bumps
 * @p corrupt.
 */
bool
read_entry_file(const std::string &path, char kind,
                const std::string &key, std::string &payload,
                SchedCacheCounters &c)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    std::string body = os.str();
    c.bytes_read += static_cast<int64_t>(body.size());
    auto corrupt = [&]() {
        c.disk_corrupt++;
        return false;
    };
    // Trailing checksum line: "crc <16 hex>\n".
    if (body.size() < 22)
        return corrupt();
    size_t crc_at = body.size() - 21;
    if (body.compare(crc_at, 4, "crc ") != 0)
        return corrupt();
    uint64_t want = 0;
    for (size_t k = crc_at + 4; k < body.size() - 1; k++) {
        char ch = body[k];
        int d = ch >= '0' && ch <= '9'   ? ch - '0'
                : ch >= 'a' && ch <= 'f' ? ch - 'a' + 10
                                         : -1;
        if (d < 0)
            return corrupt();
        want = (want << 4) | static_cast<uint64_t>(d);
    }
    if (fnv1a64(body.substr(0, crc_at)) != want)
        return corrupt();
    std::string expect_head =
        std::string("RAWSC ") + kSchedCacheVersion + "\n";
    if (body.compare(0, expect_head.size(), expect_head) != 0)
        return corrupt(); // version mismatch: rebuild
    if (body[expect_head.size()] != kind)
        return corrupt();
    // Header line "<kind> <klen> \n" is decimal text; the payload is
    // binary, so it never goes through this parse.
    const char *hp = body.data() + expect_head.size() + 2;
    const char *hend = body.data() + crc_at;
    int64_t klen = 0;
    bool any_digit = false;
    while (hp < hend && *hp >= '0' && *hp <= '9') {
        klen = klen * 10 + (*hp++ - '0');
        any_digit = true;
    }
    if (!any_digit)
        return corrupt();
    const char *kstart = hp;
    while (kstart < hend && (*kstart == ' ' || *kstart == '\n'))
        kstart++;
    if (klen > hend - kstart)
        return corrupt();
    if (std::string_view(kstart, static_cast<size_t>(klen)) != key)
        return corrupt(); // hash collision or foreign entry
    // The payload sits between two single '\n' delimiters; being
    // binary, its bounds come from position, never from scanning.
    const char *pstart = kstart + klen;
    if (hend - pstart < 2 || *pstart != '\n' || hend[-1] != '\n')
        return corrupt();
    payload.assign(pstart + 1,
                   static_cast<size_t>(hend - 1 - (pstart + 1)));
    return true;
}

} // namespace

bool
rehydrate_sched_payload(const std::string &payload,
                        const BlockCanon &canon, const Instr &term,
                        int64_t &makespan,
                        std::vector<int64_t> &tile_busy,
                        BlockPipelineStats &pipe,
                        std::vector<std::vector<VInstr>> &tiles_out,
                        std::vector<std::vector<SInstr>> &switches_out)
{
    Reader r{payload.data(), payload.data() + payload.size()};
    makespan = r.i();
    int64_t n = r.i();
    if (!r.ok || n < 0 || n > (1 << 20))
        return false;
    tile_busy.resize(n);
    for (int64_t k = 0; k < n; k++)
        tile_busy[k] = r.i();
    pipe.pipelined = r.i() != 0;
    pipe.ii = r.i();
    pipe.mii = r.i();
    pipe.res_mii = r.i();
    pipe.rec_mii = r.i();
    pipe.flat_mii = r.i();
    n = r.i();
    if (!r.ok || n < 0 || n > (1 << 20))
        return false;
    tiles_out.resize(n);
    for (auto &code : tiles_out) {
        int64_t m = r.i();
        if (!r.ok || m < 0 || m > (1 << 28))
            return false;
        code.clear();
        code.resize(m);
        for (VInstr &v : code) {
            v.op = static_cast<Op>(r.i());
            v.type = static_cast<Type>(r.i());
            v.dst = canon.value_of(static_cast<int32_t>(r.i()));
            v.src[0] = canon.value_of(static_cast<int32_t>(r.i()));
            v.src[1] = canon.value_of(static_cast<int32_t>(r.i()));
            v.imm = static_cast<uint32_t>(r.i());
            v.array = canon.array_of(static_cast<int32_t>(r.i()));
            v.print_seq = static_cast<int>(r.i());
            if (v.print_seq >= 0)
                v.print_seq += canon.print_base;
            v.target_block =
                slot_to_target(static_cast<int32_t>(r.i()), term);
        }
    }
    n = r.i();
    if (!r.ok || n < 0 || n > (1 << 20))
        return false;
    switches_out.resize(n);
    for (auto &code : switches_out) {
        int64_t m = r.i();
        if (!r.ok || m < 0 || m > (1 << 28))
            return false;
        code.clear();
        code.resize(m);
        for (SInstr &si : code) {
            si.k = static_cast<SInstr::K>(r.i());
            si.op = static_cast<Op>(r.i());
            si.dst = static_cast<int>(r.i());
            si.a = static_cast<int>(r.i());
            si.b = static_cast<int>(r.i());
            si.imm = static_cast<uint32_t>(r.i());
            si.cond = static_cast<int>(r.i());
            si.target = r.i();
            if (si.target == kTargetSlot0 || si.target == kTargetSlot1)
                si.target = slot_to_target(
                    static_cast<int32_t>(si.target), term);
            int64_t nr = r.i();
            if (!r.ok || nr < 0 || nr > (1 << 16))
                return false;
            si.routes.resize(nr);
            for (RoutePair &rp : si.routes) {
                rp.in = static_cast<Dir>(r.i());
                rp.out_mask = static_cast<uint8_t>(r.i());
                rp.reg_dst = static_cast<int>(r.i());
            }
        }
    }
    return r.ok;
}

// ---------------------------------------------------------------
// The process-wide cache.
// ---------------------------------------------------------------

namespace {

/** Cap on the in-memory tier; insertions stop beyond it. */
constexpr int64_t kMemoryCapBytes = int64_t{512} << 20;

/** In-memory map key: the 128-bit content digest. */
using KeyDigest = std::pair<uint64_t, uint64_t>;

struct DigestHash
{
    size_t
    operator()(const KeyDigest &d) const
    {
        // h1 is already a well-mixed FNV stream; fold in h2.
        return static_cast<size_t>(d.first ^ (d.second >> 1));
    }
};

KeyDigest
digest(const BlockKey &k)
{
    return {k.h1, k.h2};
}

/**
 * Resident entries are kept *serialized*, one flat string per entry,
 * and parsed on hit.  A structured SchedEntry pins one heap block
 * per per-tile stream and per-instruction route vector — millions of
 * small live allocations across a PGO portfolio — which degraded the
 * allocator for the whole process (even simulation slowed by ~20%).
 * Parsing a few-KB payload per hit is far cheaper than that.
 * probe_valid is mirrored here so a probe-less partition entry can
 * be rejected without parsing.
 */
struct PartBlob
{
    bool probe_valid = false;
    std::string payload;
};

struct CacheState
{
    std::mutex mu;
    std::unordered_map<KeyDigest, std::shared_ptr<const PartBlob>,
                       DigestHash>
        part;
    std::unordered_map<KeyDigest, std::shared_ptr<const std::string>,
                       DigestHash>
        sched;
    int64_t bytes = 0;
    SchedCacheCounters totals;
};

CacheState &
state()
{
    static CacheState s;
    return s;
}

} // namespace

SchedCache &
SchedCache::instance()
{
    static SchedCache c;
    return c;
}

namespace {

/**
 * Insert a partition entry into the in-memory map (st.mu held).  A
 * probe-carrying entry replaces a probe-less one for the same key;
 * otherwise first insert wins (identical payloads).
 */
void
insert_part_locked(CacheState &st, const KeyDigest &key,
                   const std::shared_ptr<const PartBlob> &blob)
{
    auto it = st.part.find(key);
    if (it == st.part.end()) {
        if (st.bytes < kMemoryCapBytes) {
            st.bytes +=
                static_cast<int64_t>(blob->payload.size()) + 64;
            st.part.emplace(key, blob);
        }
    } else if (blob->probe_valid && !it->second->probe_valid) {
        st.bytes += static_cast<int64_t>(blob->payload.size()) -
                    static_cast<int64_t>(it->second->payload.size());
        it->second = blob;
    }
}

} // namespace

std::shared_ptr<const PartEntry>
SchedCache::get_part(const BlockKey &key, const std::string &dir,
                     bool need_probe, SchedCacheCounters &c)
{
    CacheState &st = state();
    std::shared_ptr<const PartBlob> blob;
    {
        std::lock_guard<std::mutex> lock(st.mu);
        auto it = st.part.find(digest(key));
        if (it != st.part.end() &&
            (!need_probe || it->second->probe_valid)) {
            c.part_hits++;
            st.totals.part_hits++;
            blob = it->second;
        }
    }
    if (blob) {
        auto e = std::make_shared<PartEntry>();
        Reader r{blob->payload.data(),
                 blob->payload.data() + blob->payload.size()};
        check(parse_part(r, *e),
              "schedcache: resident partition entry unparsable");
        return e;
    }
    if (!dir.empty()) {
        check(!key.text.empty(),
              "schedcache: disk get without key text");
        std::string payload;
        if (read_entry_file(entry_path(dir, 'p', key), 'p', key.text,
                            payload, c)) {
            auto e = std::make_shared<PartEntry>();
            Reader r{payload.data(), payload.data() + payload.size()};
            if (parse_part(r, *e)) {
                if (!need_probe || e->probe_valid) {
                    c.part_hits++;
                    c.disk_hits++;
                    auto b = std::make_shared<PartBlob>();
                    b->probe_valid = e->probe_valid;
                    b->payload = std::move(payload);
                    std::lock_guard<std::mutex> lock(st.mu);
                    st.totals.part_hits++;
                    st.totals.disk_hits++;
                    insert_part_locked(st, digest(key), b);
                    return e;
                }
                // Entry is intact but lacks the probe mask this
                // compile needs: recompute and re-put the upgrade.
            } else {
                c.disk_corrupt++;
            }
        }
    }
    c.part_misses++;
    std::lock_guard<std::mutex> lock(st.mu);
    st.totals.part_misses++;
    return nullptr;
}

std::shared_ptr<const std::string>
SchedCache::get_sched(const BlockKey &key, const std::string &dir,
                      SchedCacheCounters &c)
{
    CacheState &st = state();
    {
        std::lock_guard<std::mutex> lock(st.mu);
        auto it = st.sched.find(digest(key));
        if (it != st.sched.end()) {
            c.sched_hits++;
            st.totals.sched_hits++;
            return it->second;
        }
    }
    if (!dir.empty()) {
        check(!key.text.empty(),
              "schedcache: disk get without key text");
        std::string payload;
        if (read_entry_file(entry_path(dir, 's', key), 's', key.text,
                            payload, c)) {
            c.sched_hits++;
            c.disk_hits++;
            auto b = std::make_shared<std::string>(std::move(payload));
            std::lock_guard<std::mutex> lock(st.mu);
            st.totals.sched_hits++;
            st.totals.disk_hits++;
            if (st.bytes < kMemoryCapBytes &&
                st.sched.emplace(digest(key), b).second)
                st.bytes += static_cast<int64_t>(b->size()) + 64;
            return b;
        }
    }
    c.sched_misses++;
    std::lock_guard<std::mutex> lock(st.mu);
    st.totals.sched_misses++;
    return nullptr;
}

void
SchedCache::put_part(const BlockKey &key, const std::string &dir,
                     std::shared_ptr<const PartEntry> e,
                     SchedCacheCounters &c)
{
    CacheState &st = state();
    auto blob = std::make_shared<PartBlob>();
    blob->probe_valid = e->probe_valid;
    serialize_part(blob->payload, *e);
    {
        std::lock_guard<std::mutex> lock(st.mu);
        insert_part_locked(st, digest(key), blob);
    }
    if (!dir.empty()) {
        check(!key.text.empty(),
              "schedcache: disk put without key text");
        std::string body = file_body('p', key.text, blob->payload);
        if (write_entry_file(entry_path(dir, 'p', key), body)) {
            c.bytes_written += static_cast<int64_t>(body.size()) + 21;
            std::lock_guard<std::mutex> lock(st.mu);
            st.totals.bytes_written +=
                static_cast<int64_t>(body.size()) + 21;
        }
    }
}

void
SchedCache::put_sched(const BlockKey &key, const std::string &dir,
                      std::shared_ptr<const SchedEntry> e,
                      SchedCacheCounters &c)
{
    CacheState &st = state();
    auto blob = std::make_shared<std::string>();
    serialize_sched(*blob, *e);
    {
        std::lock_guard<std::mutex> lock(st.mu);
        if (st.bytes < kMemoryCapBytes &&
            st.sched.emplace(digest(key), blob).second)
            st.bytes += static_cast<int64_t>(blob->size()) + 64;
    }
    if (!dir.empty()) {
        check(!key.text.empty(),
              "schedcache: disk put without key text");
        std::string body = file_body('s', key.text, *blob);
        if (write_entry_file(entry_path(dir, 's', key), body)) {
            c.bytes_written += static_cast<int64_t>(body.size()) + 21;
            std::lock_guard<std::mutex> lock(st.mu);
            st.totals.bytes_written +=
                static_cast<int64_t>(body.size()) + 21;
        }
    }
}

void
SchedCache::clear_memory()
{
    CacheState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    st.part.clear();
    st.sched.clear();
    st.bytes = 0;
}

int64_t
SchedCache::memory_bytes() const
{
    CacheState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    return st.bytes;
}

SchedCacheCounters
SchedCache::totals() const
{
    CacheState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    return st.totals;
}

void
validate_cache_dir(const std::string &dir)
{
    if (dir.empty())
        fatal("--cache-dir: empty path");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("--cache-dir: cannot create '" + dir +
              "': " + ec.message());
    if (!std::filesystem::is_directory(dir, ec) || ec)
        fatal("--cache-dir: '" + dir + "' is not a directory");
    std::string probe = dir + "/.rawcc-probe-" +
                        std::to_string(static_cast<uint64_t>(getpid()));
    {
        std::ofstream out(probe, std::ios::binary);
        out << "probe";
        if (!out)
            fatal("--cache-dir: '" + dir + "' is not writable");
    }
    std::filesystem::remove(probe, ec);

    // Sweep temp files orphaned by killed writers.  Only temps that
    // have sat untouched for a while are removed: a live writer's
    // temp exists for milliseconds, so an age threshold keeps the
    // sweep safe under concurrent processes sharing the directory.
    const auto cutoff = std::filesystem::file_time_type::clock::now() -
                        std::chrono::minutes(10);
    for (const auto &ent :
         std::filesystem::directory_iterator(dir, ec)) {
        if (ec)
            break;
        const std::string name = ent.path().filename().string();
        if (name.find(".rsc.tmp") == std::string::npos)
            continue;
        std::error_code tec;
        auto mtime = std::filesystem::last_write_time(ent.path(), tec);
        if (!tec && mtime < cutoff)
            std::filesystem::remove(ent.path(), tec);
    }
}

} // namespace raw
