#ifndef RAW_RAWCC_PORTFOLD_HPP
#define RAW_RAWCC_PORTFOLD_HPP

/**
 * @file
 * Port-operand folding.
 *
 * The Raw prototype exports its communication ports "as extensions to
 * the register set: they can be used like normal registers as
 * operands to any computation instruction" (Section 3.1), which is
 * why the paper's Figure 4 counts only two cycles of *effective*
 * overhead for a four-cycle message — the send and receive slots do
 * useful computation.
 *
 * This pass realizes that: in each tile stream it folds
 *   RECV t ; op d, t, x      ->  op d, <port>, x
 *   op t, a, b ; SEND t      ->  op <port>, a, b
 * whenever the two instructions are adjacent and the intermediate
 * value has no other use.  Adjacency guarantees that per-port
 * pop/push order — the property the static ordering argument depends
 * on — is unchanged.
 */

#include "rawcc/orchestrater.hpp"

namespace raw {

/** Fold port operands across @p vp; returns #instructions removed. */
int fold_port_operands(VirtualProgram &vp, const Function &fn);

} // namespace raw

#endif // RAW_RAWCC_PORTFOLD_HPP
