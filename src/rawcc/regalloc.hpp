#ifndef RAW_RAWCC_REGALLOC_HPP
#define RAW_RAWCC_REGALLOC_HPP

/**
 * @file
 * Per-tile register allocator.
 *
 * Runs after event scheduling, mirroring the paper's phase order (and
 * its consequence: the scheduler exposes parallelism without regard
 * to register pressure, so wide schedules can spill — the fpppp
 * Section 6 effect).
 *
 * Two value classes exist on a tile:
 *  - *persistent* values (variables homed here, and replicated loop
 *    counters) live across blocks; the hottest get dedicated physical
 *    registers, the rest become memory-resident in the tile's spill
 *    region;
 *  - *temporaries* live within one block; linear scan with
 *    furthest-end spilling.
 *
 * Spill code (2-cycle reloads) is inserted into the stream; by the
 * static ordering property this never affects correctness, only time.
 */

#include <vector>

#include "ir/function.hpp"
#include "rawcc/orchestrater.hpp"
#include "sim/isa.hpp"

namespace raw {

/** Result of allocating one tile. */
struct RegallocResult
{
    /** blocks[b]: physical-register code of block b. */
    std::vector<std::vector<PInstr>> blocks;
    /** Spill slots used. */
    int spill_slots = 0;
    /** Number of spill loads/stores inserted. */
    int spill_ops = 0;
};

/**
 * Allocate registers for one tile's virtual code.
 *
 * @param fn         the function (value table)
 * @param blocks     per-block virtual instructions of this tile
 * @param persistent values register-resident across blocks here
 * @param num_regs   GPRs available on this tile
 */
RegallocResult allocate_registers(
    const Function &fn,
    const std::vector<std::vector<VInstr>> &blocks,
    const std::vector<ValueId> &persistent, int num_regs);

} // namespace raw

#endif // RAW_RAWCC_REGALLOC_HPP
