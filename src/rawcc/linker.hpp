#ifndef RAW_RAWCC_LINKER_HPP
#define RAW_RAWCC_LINKER_HPP

/**
 * @file
 * Final code assembly: register allocation per tile, block layout,
 * branch target resolution, and jump-to-next-block elimination.
 */

#include "ir/function.hpp"
#include "rawcc/orchestrater.hpp"
#include "sim/isa.hpp"

namespace raw {

/** Statistics from linking. */
struct LinkStats
{
    int64_t spill_ops = 0;
    int total_spill_slots = 0;
};

/** Allocate registers and lay out the final CompiledProgram. */
CompiledProgram link_program(const Function &fn, VirtualProgram &vp,
                             const MachineConfig &machine,
                             LinkStats *stats = nullptr);

} // namespace raw

#endif // RAW_RAWCC_LINKER_HPP
