/**
 * @file
 * trace_check — validate a Chrome trace-event JSON file produced by
 * `rawcc --trace-out` (and by write_chrome_trace() generally).
 *
 * Checks, exiting nonzero with a message on the first violation:
 *   - the file parses as JSON and the top level is an array;
 *   - every event is an object with a string "name", a "ph" of "X"
 *     (complete event) or "M" (metadata), and integer "pid"/"tid";
 *   - every "X" event has ts >= 0 and dur >= 1;
 *   - timestamps are monotonically non-decreasing per (pid, tid)
 *     track, and spans on one track do not overlap;
 *   - every (pid, tid) track with events has a thread_name metadata
 *     record.
 *
 * Usage: trace_check <trace.json> [more.json ...]
 *
 * The parser below is a deliberately small recursive-descent JSON
 * reader (objects, arrays, strings, numbers, literals) — enough to
 * validate our own emitter without an external dependency.
 */

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct JsonValue
{
    enum class K { kNull, kBool, kNumber, kString, kArray, kObject };
    K k = K::kNull;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skip_ws();
        if (pos_ != s_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg)
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + msg);
    }

    void
    skip_ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            pos_++;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos_++;
    }

    JsonValue
    value()
    {
        skip_ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string_value();
          case 't': case 'f': return boolean();
          case 'n': return null_value();
          default: return number();
        }
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.k = JsonValue::K::kObject;
        expect('{');
        skip_ws();
        if (peek() == '}') {
            pos_++;
            return v;
        }
        for (;;) {
            skip_ws();
            JsonValue key = string_value();
            skip_ws();
            expect(':');
            v.obj[key.str] = value();
            skip_ws();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.k = JsonValue::K::kArray;
        expect('[');
        skip_ws();
        if (peek() == ']') {
            pos_++;
            return v;
        }
        for (;;) {
            v.arr.push_back(value());
            skip_ws();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    string_value()
    {
        JsonValue v;
        v.k = JsonValue::K::kString;
        expect('"');
        while (peek() != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                char e = peek();
                pos_++;
                switch (e) {
                  case '"': v.str += '"'; break;
                  case '\\': v.str += '\\'; break;
                  case '/': v.str += '/'; break;
                  case 'n': v.str += '\n'; break;
                  case 't': v.str += '\t'; break;
                  case 'r': v.str += '\r'; break;
                  case 'b': case 'f': break;
                  case 'u':
                    // Our emitter never writes \u escapes; accept
                    // and skip the four hex digits.
                    for (int i = 0; i < 4 && pos_ < s_.size(); i++)
                        pos_++;
                    break;
                  default: fail("bad escape");
                }
            } else {
                v.str += c;
            }
        }
        pos_++;
        return v;
    }

    JsonValue
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            pos_++;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-'))
            pos_++;
        if (pos_ == start)
            fail("expected a number");
        JsonValue v;
        v.k = JsonValue::K::kNumber;
        v.num = std::stod(s_.substr(start, pos_ - start));
        return v;
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.k = JsonValue::K::kBool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.b = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            v.b = false;
            pos_ += 5;
        } else {
            fail("expected true/false");
        }
        return v;
    }

    JsonValue
    null_value()
    {
        if (s_.compare(pos_, 4, "null") != 0)
            fail("expected null");
        pos_ += 4;
        return JsonValue{};
    }

    const std::string &s_;
    size_t pos_ = 0;
};

int
check_file(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "trace_check: cannot open %s\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream os;
    os << in.rdbuf();

    JsonValue doc;
    try {
        doc = JsonParser(os.str()).parse();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "trace_check: %s: %s\n", path.c_str(),
                     e.what());
        return 1;
    }

    auto bad = [&](size_t idx, const char *msg) {
        std::fprintf(stderr, "trace_check: %s: event %zu: %s\n",
                     path.c_str(), idx, msg);
        return 1;
    };

    if (doc.k != JsonValue::K::kArray) {
        std::fprintf(stderr,
                     "trace_check: %s: top level is not an array\n",
                     path.c_str());
        return 1;
    }

    // Per-track last span end, for monotonicity / overlap checks.
    std::map<std::pair<double, double>, double> track_end;
    std::map<std::pair<double, double>, bool> track_named;
    size_t n_events = 0, n_meta = 0;
    for (size_t i = 0; i < doc.arr.size(); i++) {
        const JsonValue &ev = doc.arr[i];
        if (ev.k != JsonValue::K::kObject)
            return bad(i, "not an object");
        auto field = [&](const char *name) -> const JsonValue * {
            auto it = ev.obj.find(name);
            return it == ev.obj.end() ? nullptr : &it->second;
        };
        const JsonValue *name = field("name");
        const JsonValue *ph = field("ph");
        const JsonValue *pid = field("pid");
        const JsonValue *tid = field("tid");
        if (!name || name->k != JsonValue::K::kString)
            return bad(i, "missing string \"name\"");
        if (!ph || ph->k != JsonValue::K::kString)
            return bad(i, "missing string \"ph\"");
        if (!pid || pid->k != JsonValue::K::kNumber)
            return bad(i, "missing numeric \"pid\"");
        if (!tid || tid->k != JsonValue::K::kNumber)
            return bad(i, "missing numeric \"tid\"");
        std::pair<double, double> track{pid->num, tid->num};

        if (ph->str == "M") {
            if (name->str == "thread_name")
                track_named[track] = true;
            n_meta++;
            continue;
        }
        if (ph->str != "X")
            return bad(i, "\"ph\" is neither \"X\" nor \"M\"");
        const JsonValue *ts = field("ts");
        const JsonValue *dur = field("dur");
        if (!ts || ts->k != JsonValue::K::kNumber || ts->num < 0)
            return bad(i, "\"X\" event lacks non-negative \"ts\"");
        if (!dur || dur->k != JsonValue::K::kNumber || dur->num < 1)
            return bad(i, "\"X\" event lacks positive \"dur\"");
        auto it = track_end.find(track);
        if (it != track_end.end() && ts->num < it->second)
            return bad(i, "timestamps not monotone on track "
                          "(span overlaps previous)");
        track_end[track] = ts->num + dur->num;
        if (!track_named.count(track))
            return bad(i, "track has no thread_name metadata");
        n_events++;
    }

    std::printf("trace_check: %s ok (%zu events, %zu metadata, %zu "
                "tracks)\n",
                path.c_str(), n_events, n_meta, track_end.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: trace_check <trace.json> [...]\n");
        return 2;
    }
    int rc = 0;
    for (int i = 1; i < argc; i++)
        rc |= check_file(argv[i]);
    return rc;
}
