/**
 * @file
 * golden_gen — record golden simulator outputs for the determinism
 * suite (tests/test_golden_determinism.cpp).
 *
 * For a fixed set of (benchmark, machine size, compiler flags, fault
 * config) points this writes one text file per point into the
 * directory given as the last argument, capturing everything the
 * simulator promises to keep bit-identical across performance work:
 * the cycle count, the aggregate instruction/route/stall counters,
 * the per-category profile sums (which must also sum to cycles on
 * every tile), the issue histogram, and the full print trace.
 *
 * Modes:
 *   golden_gen <dir>            write every golden (fresh record)
 *   golden_gen --update <dir>   regenerate: re-runs every point with
 *       the runtime self-checker armed (provenance + FIFO bounds,
 *       which must stay silent), rewrites the files, and prints a
 *       cycle-delta table (old -> new per golden) so an intentional
 *       semantic change documents exactly what moved.
 *
 * The committed files under tests/goldens/ were generated from the
 * pre-optimization (PR 1) simulator; the *_sched points record the
 * schedule-quality optimizer (--sched-iters 3 --route-select).
 * Regenerate only when semantics intentionally change, never for
 * performance work.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/harness.hpp"
#include "sim/profile.hpp"

namespace {

struct GoldenPoint
{
    const char *bench;
    int tiles;
    raw::FaultConfig faults;
    /** Schedule-quality optimizer on (--sched-iters 3 --route-select). */
    bool sched_opt = false;
    /** Cross-tile modulo scheduling on (--modulo). */
    bool modulo = false;
};

const GoldenPoint kPoints[] = {
    {"life", 1, {}},      {"life", 4, {}},      {"life", 16, {}},
    {"cholesky", 1, {}},  {"cholesky", 4, {}},  {"cholesky", 16, {}},
    {"mxm", 1, {}},       {"mxm", 4, {}},       {"mxm", 16, {}},
    {"jacobi", 1, {}},    {"jacobi", 4, {}},    {"jacobi", 16, {}},
    // One fault-injected point so the quiescence fast-forward is
    // pinned under random extra memory latency too.
    {"jacobi", 4, {0.01, 20, 42}},
    // All four fault channels at once (miss + route stalls + dyn
    // delay + jitter), pinning the multi-channel RNG streams.
    {"jacobi", 4, {0.02, 9, 7, 0.05, 3, 0.05, 6, 0.02}},
    // Schedule-quality optimizer points: best-of-N rescheduling plus
    // contention-aware route selection must stay deterministic too.
    {"life", 16, {}, true},
    {"cholesky", 16, {}, true},
    {"mxm", 16, {}, true},
    {"jacobi", 16, {}, true},
    // Modulo-scheduling points: software-pipelined loop blocks must
    // stay deterministic and checker-clean too.
    {"life", 16, {}, false, true},
    {"jacobi", 16, {}, false, true},
    {"mxm", 16, {}, false, true},
};

std::string
point_filename(const GoldenPoint &p)
{
    std::string name = std::string(p.bench) + "_n" +
                       std::to_string(p.tiles);
    if (p.sched_opt)
        name += "_sched";
    if (p.modulo)
        name += "_mod";
    if (p.faults.multi_channel())
        name += "_mfault";
    else if (p.faults.miss_rate > 0)
        name += "_fault";
    return name + ".golden";
}

raw::CompilerOptions
point_options(const GoldenPoint &p)
{
    raw::CompilerOptions opts;
    if (p.sched_opt) {
        opts.orch.sched.sched_iters = 3;
        opts.orch.sched.route_select = true;
    }
    opts.orch.sched.modulo = p.modulo;
    return opts;
}

/** Cycle count recorded in an existing golden file, or -1. */
long long
recorded_cycles(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return -1;
    std::string key;
    long long v;
    while (in >> key) {
        if (key == "cycles" && in >> v)
            return v;
        in.ignore(1 << 20, '\n');
    }
    return -1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool update = false;
    const char *dir_arg = nullptr;
    bool bad_args = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--update") == 0)
            update = true;
        else if (!dir_arg)
            dir_arg = argv[i];
        else
            bad_args = true;
    }
    if (!dir_arg || bad_args) {
        std::fprintf(stderr,
                     "usage: golden_gen [--update] <output-dir>\n");
        return 2;
    }
    const std::string dir = dir_arg;

    if (update)
        std::printf("%-26s %12s %12s %8s\n", "golden", "old", "new",
                    "delta");
    for (const GoldenPoint &p : kPoints) {
        const raw::BenchmarkProgram &prog = raw::benchmark(p.bench);
        raw::CompilerOptions opts = point_options(p);
        raw::RunResult r =
            raw::run_rawcc(prog.source,
                           raw::MachineConfig::base(p.tiles),
                           prog.check_array, opts, p.faults);
        const raw::SimResult &s = r.sim;
        if (update) {
            // Re-run with the runtime self-checker armed: a golden
            // must never record an execution the checker rejects.
            raw::CheckConfig checks;
            checks.provenance = true;
            checks.fifo_bounds = true;
            raw::RunResult checked =
                raw::run_rawcc(prog.source,
                               raw::MachineConfig::base(p.tiles),
                               prog.check_array, opts, p.faults,
                               checks);
            if (!checked.sim.check_failures.empty()) {
                std::fprintf(stderr,
                             "%s: %zu self-check failures, not "
                             "recording\n",
                             point_filename(p).c_str(),
                             checked.sim.check_failures.size());
                return 1;
            }
        }
        std::string path = dir + "/" + point_filename(p);
        long long old_cycles = update ? recorded_cycles(path) : -1;
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        out << raw::golden_summary(p.bench, p.tiles, p.faults, s);
        if (update) {
            long long nw = static_cast<long long>(s.cycles);
            if (old_cycles < 0)
                std::printf("%-26s %12s %12lld %8s\n",
                            point_filename(p).c_str(), "(new)", nw,
                            "-");
            else
                std::printf("%-26s %12lld %12lld %+8lld\n",
                            point_filename(p).c_str(), old_cycles, nw,
                            nw - old_cycles);
        } else {
            std::printf("wrote %s (cycles %lld)\n", path.c_str(),
                        static_cast<long long>(s.cycles));
        }
    }
    return 0;
}
