/**
 * @file
 * golden_gen — record golden simulator outputs for the determinism
 * suite (tests/test_golden_determinism.cpp).
 *
 * For a fixed set of (benchmark, machine size, fault config) points
 * this writes one text file per point into the directory given as
 * argv[1], capturing everything the simulator promises to keep
 * bit-identical across performance work: the cycle count, the
 * aggregate instruction/route/stall counters, the per-category
 * profile sums (which must also sum to cycles on every tile), the
 * issue histogram, and the full print trace.
 *
 * The committed files under tests/goldens/ were generated from the
 * pre-optimization (PR 1) simulator.  Regenerate only when simulator
 * *semantics* intentionally change, never for performance work.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "harness/harness.hpp"
#include "sim/profile.hpp"

namespace {

struct GoldenPoint
{
    const char *bench;
    int tiles;
    raw::FaultConfig faults;
};

const GoldenPoint kPoints[] = {
    {"life", 1, {}},      {"life", 4, {}},      {"life", 16, {}},
    {"cholesky", 1, {}},  {"cholesky", 4, {}},  {"cholesky", 16, {}},
    {"mxm", 1, {}},       {"mxm", 4, {}},       {"mxm", 16, {}},
    {"jacobi", 1, {}},    {"jacobi", 4, {}},    {"jacobi", 16, {}},
    // One fault-injected point so the quiescence fast-forward is
    // pinned under random extra memory latency too.
    {"jacobi", 4, {0.01, 20, 42}},
    // All four fault channels at once (miss + route stalls + dyn
    // delay + jitter), pinning the multi-channel RNG streams.
    {"jacobi", 4, {0.02, 9, 7, 0.05, 3, 0.05, 6, 0.02}},
};

std::string
point_filename(const GoldenPoint &p)
{
    std::string name = std::string(p.bench) + "_n" +
                       std::to_string(p.tiles);
    if (p.faults.multi_channel())
        name += "_mfault";
    else if (p.faults.miss_rate > 0)
        name += "_fault";
    return name + ".golden";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: golden_gen <output-dir>\n");
        return 2;
    }
    const std::string dir = argv[1];
    for (const GoldenPoint &p : kPoints) {
        const raw::BenchmarkProgram &prog = raw::benchmark(p.bench);
        raw::RunResult r =
            raw::run_rawcc(prog.source,
                           raw::MachineConfig::base(p.tiles),
                           prog.check_array, {}, p.faults);
        const raw::SimResult &s = r.sim;
        std::string path = dir + "/" + point_filename(p);
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        out << raw::golden_summary(p.bench, p.tiles, p.faults, s);
        std::printf("wrote %s (cycles %lld)\n", path.c_str(),
                    static_cast<long long>(s.cycles));
    }
    return 0;
}
