/**
 * @file
 * rawcc — command-line driver for the Raw compiler and simulator.
 *
 * Usage:
 *   rawcc [options] <file.rawc | benchmark-name>
 *
 * Options:
 *   --tiles N          machine size (default 4)
 *   --config C         base | inf-reg | 1-cycle      (default base)
 *   --baseline         compile sequentially instead of with RAWCC
 *   --dump-ir          print the IR after renaming
 *   --disasm           print the per-tile / per-switch streams
 *   --stats            print compile statistics (incl. stage timings)
 *   --no-run           compile only
 *   --speedup          also run the sequential baseline and report
 *   --profile          print the per-tile cycle-attribution table
 *   --trace-out F      write a Chrome trace-event JSON to F
 *   --miss-rate R      inject cache misses with probability R (0..1)
 *   --miss-penalty P   extra cycles per miss (default 20)
 *   --seed S           fault-injection seed
 *   --route-stall-rate R    hold a retiring switch with prob. R
 *   --route-stall-cycles P  extra switch occupancy per hold
 *   --dyn-delay-rate R      delay a dynamic message with prob. R
 *   --dyn-delay-cycles P    extra cycles per delayed message
 *   --jitter-rate R         a tile loses its cycle with prob. R
 *   --check            enable runtime self-checks (provenance + FIFO
 *                      bounds); failures are reported and exit 1
 *   --fault-campaign N sweep N fault points (seeds x channels x
 *                      intensities) and verify bit-identical results
 *   --campaign-out F   campaign JSON report path
 *   --point-timeout MS wall-clock budget per campaign point; a point
 *                      over budget reports a structured "timeout"
 *                      outcome instead of stalling the sweep
 *   --jobs N           worker threads (0 = all cores): campaign
 *                      points, and per-block compile phases
 *   --cache-dir D      on-disk block-schedule cache (created if
 *                      missing; must be writable)
 *   --no-sched-cache   disable the in-memory block-schedule cache
 *   --no-unroll        disable affine staticization (ablation)
 *   --no-replication   broadcast every branch (ablation)
 *   --no-port-fold     keep explicit send/receive instructions
 *   --sched-iters N    slack-driven rescheduling passes (default 0)
 *   --route-select     contention-aware XY/YX route selection
 *   --modulo           software-pipeline loop blocks (cross-tile
 *                      modulo scheduling; greedy stays the fallback)
 *   --mii-cap N        initiation-interval search cap (default 512)
 *   --oracle-budget N  branch-and-bound states per small block for
 *                      the optimal-schedule oracle report (0 = off)
 *   --sim-backend B    execution core: reference | threaded
 *   --sim-diff         run both backends, require identical results
 *   --pgo              profile-guided placement (compile, simulate,
 *                      recompile around the measured congestion)
 *   --list-benchmarks  list the built-in Table 2 programs
 *
 * The input is a rawc source file, or the name of a built-in
 * benchmark (life, vpenta, cholesky, tomcatv, fpppp-kernel, mxm,
 * jacobi).
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/campaign.hpp"
#include "harness/cli.hpp"
#include "harness/harness.hpp"
#include "harness/parallel.hpp"
#include "ir/printer.hpp"
#include "rawcc/schedcache.hpp"
#include "serve/server.hpp"
#include "sim/disasm.hpp"
#include "sim/profile.hpp"

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: rawcc [options] <file.rawc | benchmark>\n"
        "  --tiles N --config base|inf-reg|1-cycle --baseline\n"
        "  --dump-ir --disasm --stats --no-run --speedup\n"
        "  --profile --trace-out FILE\n"
        "  --miss-rate R --miss-penalty P --seed S\n"
        "  --route-stall-rate R --route-stall-cycles P\n"
        "  --dyn-delay-rate R --dyn-delay-cycles P --jitter-rate R\n"
        "  --check --fault-campaign N --campaign-out FILE\n"
        "  --point-timeout MS --jobs N\n"
        "  --cache-dir DIR --no-sched-cache\n"
        "  --no-unroll --no-replication --no-port-fold\n"
        "  --sched-iters N --route-select --pgo\n"
        "  --modulo --mii-cap N --oracle-budget N\n"
        "  --sim-backend reference|threaded|region --sim-diff\n"
        "  --list-benchmarks\n");
}

[[noreturn]] void
bad_value(const char *flag, const char *got, const char *want)
{
    raw::cli::bad_value("rawcc", flag, got, want);
}

long
parse_long(const char *s, const char *flag)
{
    return raw::cli::parse_long("rawcc", s, flag);
}

unsigned long long
parse_u64(const char *s, const char *flag)
{
    return raw::cli::parse_u64("rawcc", s, flag);
}

double
parse_double(const char *s, const char *flag)
{
    return raw::cli::parse_double("rawcc", s, flag);
}

/** Compile-throughput report: stage timings + schedule-cache traffic. */
void
print_compile_timing(const raw::CompileStats &st)
{
    const raw::PhaseTimings &tm = st.timings;
    std::printf("compile stages (ms): parse %.2f, unroll "
                "%.2f, lower %.2f, transform %.2f, "
                "orchestrate %.2f, link %.2f (total %.2f)\n",
                tm.parse_ms, tm.unroll_ms, tm.lower_ms,
                tm.transform_ms, tm.orchestrate_ms, tm.link_ms,
                tm.total_ms);
    std::printf("orchestrate phases:  partition %.2f ms, "
                "schedule %.2f ms\n",
                st.orch_partition_ms, st.orch_schedule_ms);
    const raw::SchedCacheCounters &c = st.cache;
    std::printf("sched cache:         %lld hit(s), %lld miss(es) "
                "(part %lld/%lld, sched %lld/%lld)\n",
                static_cast<long long>(c.hits()),
                static_cast<long long>(c.misses()),
                static_cast<long long>(c.part_hits),
                static_cast<long long>(c.part_misses),
                static_cast<long long>(c.sched_hits),
                static_cast<long long>(c.sched_misses));
    if (c.disk_hits || c.disk_corrupt || c.bytes_read ||
        c.bytes_written)
        std::printf("sched cache disk:    %lld hit(s), %lld "
                    "dropped, %lld bytes read, %lld written\n",
                    static_cast<long long>(c.disk_hits),
                    static_cast<long long>(c.disk_corrupt),
                    static_cast<long long>(c.bytes_read),
                    static_cast<long long>(c.bytes_written));
}

std::string
load_input(const std::string &arg)
{
    for (const raw::BenchmarkProgram &b : raw::benchmark_suite())
        if (b.name == arg)
            return b.source;
    std::ifstream in(arg);
    if (!in)
        raw::fatal("cannot open input: " + arg);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace raw;

    // `rawcc serve ...`: hand the rest of argv to the daemon
    // (src/serve/server.hpp); everything below is the one-shot CLI.
    if (argc >= 2 && std::string(argv[1]) == "serve")
        return serve::serve_main(argc - 2, argv + 2);

    long tiles = 4;
    std::string config = "base";
    std::string input;
    std::string trace_out;
    bool baseline = false, dump_ir = false, disasm = false;
    bool stats = false, do_run = true, speedup = false;
    bool profile = false;
    CompilerOptions opts;
    FaultConfig faults;
    CheckConfig checks;
    SimBackend sim_backend = SimBackend::kReference;
    bool sim_diff = false;
    long fault_campaign = 0;
    long point_timeout = 0;
    long jobs = 0;
    std::string campaign_out;

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "rawcc: %s requires an argument\n",
                             a.c_str());
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        // NaN-proof: !(v in [0,1]) rejects NaN, which every
        // comparison-based range check silently accepts.
        auto parse_rate = [&](const char *flag) {
            double v = parse_double(next(), flag);
            if (!(v >= 0.0 && v <= 1.0))
                bad_value(flag, argv[i], "a probability in [0,1]");
            return v;
        };
        auto parse_cycles = [&](const char *flag) {
            long p = parse_long(next(), flag);
            if (p < 0 || p > 1000000)
                bad_value(flag, argv[i],
                          "a cycle count in 0..1000000");
            return static_cast<int>(p);
        };
        if (a == "--tiles") {
            tiles = raw::cli::parse_tiles("rawcc", next(), "--tiles");
        } else if (a == "--config")
            config = next();
        else if (a == "--baseline")
            baseline = true;
        else if (a == "--dump-ir")
            dump_ir = true;
        else if (a == "--disasm")
            disasm = true;
        else if (a == "--stats")
            stats = true;
        else if (a == "--no-run")
            do_run = false;
        else if (a == "--speedup")
            speedup = true;
        else if (a == "--profile")
            profile = true;
        else if (a == "--trace-out")
            trace_out = next();
        else if (a == "--miss-rate")
            faults.miss_rate = parse_rate("--miss-rate");
        else if (a == "--miss-penalty")
            faults.penalty = parse_cycles("--miss-penalty");
        else if (a == "--seed")
            faults.seed = parse_u64(next(), "--seed");
        else if (a == "--route-stall-rate")
            faults.route_stall_rate = parse_rate("--route-stall-rate");
        else if (a == "--route-stall-cycles")
            faults.route_stall_cycles =
                parse_cycles("--route-stall-cycles");
        else if (a == "--dyn-delay-rate")
            faults.dyn_delay_rate = parse_rate("--dyn-delay-rate");
        else if (a == "--dyn-delay-cycles")
            faults.dyn_delay_cycles =
                parse_cycles("--dyn-delay-cycles");
        else if (a == "--jitter-rate")
            faults.jitter_rate = parse_rate("--jitter-rate");
        else if (a == "--check") {
            checks.provenance = true;
            checks.fifo_bounds = true;
        } else if (a == "--fault-campaign") {
            fault_campaign = parse_long(next(), "--fault-campaign");
            if (fault_campaign <= 0 || fault_campaign > 100000)
                bad_value("--fault-campaign", argv[i],
                          "a point count in 1..100000");
        } else if (a == "--campaign-out")
            campaign_out = next();
        else if (a == "--point-timeout") {
            point_timeout = parse_long(next(), "--point-timeout");
            if (point_timeout <= 0 || point_timeout > 86400000)
                bad_value("--point-timeout", argv[i],
                          "a budget in milliseconds (1..86400000)");
        }
        else if (a == "--jobs") {
            jobs = parse_long(next(), "--jobs");
            if (jobs < 0 || jobs > 4096)
                bad_value("--jobs", argv[i],
                          "a worker count in 0..4096");
            opts.orch.jobs = static_cast<int>(jobs);
        } else if (a == "--cache-dir")
            opts.orch.cache_dir = next();
        else if (a == "--no-sched-cache")
            opts.orch.use_cache = false;
        else if (a == "--sched-iters") {
            long n = parse_long(next(), "--sched-iters");
            if (n < 0 || n > 16)
                bad_value("--sched-iters", argv[i],
                          "a pass count in 0..16");
            opts.orch.sched.sched_iters = static_cast<int>(n);
        } else if (a == "--route-select")
            opts.orch.sched.route_select = true;
        else if (a == "--modulo")
            opts.orch.sched.modulo = true;
        else if (a == "--mii-cap") {
            long n = parse_long(next(), "--mii-cap");
            if (n < 1 || n > 65536)
                bad_value("--mii-cap", argv[i],
                          "an initiation-interval cap in 1..65536");
            opts.orch.sched.mii_cap = static_cast<int>(n);
        } else if (a == "--oracle-budget") {
            long n = parse_long(next(), "--oracle-budget");
            if (n < 0 || n > 100000000)
                bad_value("--oracle-budget", argv[i],
                          "a state budget in 0..100000000");
            opts.orch.sched.oracle_budget = n;
        } else if (a == "--sim-backend") {
            std::string b = next();
            if (b == "reference")
                sim_backend = SimBackend::kReference;
            else if (b == "threaded")
                sim_backend = SimBackend::kThreaded;
            else if (b == "region")
                sim_backend = SimBackend::kRegion;
            else
                bad_value("--sim-backend", argv[i],
                          "reference, threaded or region");
        } else if (a == "--sim-diff")
            sim_diff = true;
        else if (a == "--pgo")
            opts.pgo = true;
        else if (a == "--no-unroll")
            opts.unroll.enable = false;
        else if (a == "--no-replication")
            opts.orch.enable_replication = false;
        else if (a == "--no-port-fold")
            opts.orch.fold_ports = false;
        else if (a == "--list-benchmarks") {
            for (const BenchmarkProgram &b : benchmark_suite())
                std::printf("%-14s %s\n", b.name.c_str(),
                            b.description.c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage();
            return 2;
        } else {
            input = a;
        }
    }
    if (input.empty()) {
        usage();
        return 2;
    }

    try {
        if (!opts.orch.cache_dir.empty())
            validate_cache_dir(opts.orch.cache_dir);
        std::string src = load_input(input);
        int n_tiles = static_cast<int>(tiles);
        MachineConfig machine;
        if (config == "base")
            machine = MachineConfig::base(n_tiles);
        else if (config == "inf-reg")
            machine = MachineConfig::inf_reg(n_tiles);
        else if (config == "1-cycle")
            machine = MachineConfig::one_cycle(n_tiles);
        else
            fatal("unknown config: " + config);

        if (fault_campaign > 0) {
            // Campaign mode: the input must name a built-in
            // benchmark; benchmark() rejects anything else.
            CampaignReport rep = run_fault_campaign(
                input, machine, static_cast<int>(fault_campaign),
                faults.seed, static_cast<int>(jobs), opts,
                point_timeout);
            std::printf("%s\n", rep.summary().c_str());
            std::string path =
                campaign_out.empty()
                    ? "campaign_" + input + "_n" +
                          std::to_string(n_tiles) + ".json"
                    : campaign_out;
            std::ofstream js(path);
            if (!js)
                fatal("cannot write campaign report: " + path);
            js << rep.to_json();
            std::printf("campaign report written to %s\n",
                        path.c_str());
            return rep.clean() ? 0 : 1;
        }

        CompileOutput out =
            baseline ? compile_baseline_for(
                           src, config == "base"
                                    ? MachineConfig::base(1)
                                    : (config == "inf-reg"
                                           ? MachineConfig::inf_reg(1)
                                           : MachineConfig::one_cycle(
                                                 1)))
                     : compile_source(src, machine, opts);

        if (dump_ir)
            std::printf("%s\n", print_function(out.fn).c_str());
        if (disasm)
            std::printf("%s\n",
                        disasm_program(out.program).c_str());
        if (stats) {
            std::printf("machine:             %s\n",
                        out.program.machine.name().c_str());
            std::printf("IR instructions:     %lld\n",
                        static_cast<long long>(out.stats.ir_instrs));
            std::printf("machine instrs:      %lld\n",
                        static_cast<long long>(
                            out.stats.static_instrs));
            std::printf("loops u/p:           %d/%d of %d\n",
                        out.stats.unroll.loops_unrolled,
                        out.stats.unroll.loops_peeled,
                        out.stats.unroll.loops_seen);
            std::printf("dynamic refs:        %d\n",
                        out.stats.dynamic_refs);
            std::printf("branches repl/bcast: %d/%d\n",
                        out.stats.replicated_branches,
                        out.stats.broadcast_branches);
            std::printf("spill ops:           %lld\n",
                        static_cast<long long>(out.stats.spill_ops));
            std::printf("folded port ops:     %d\n",
                        out.stats.folded_port_ops);
            if (!out.stats.block_pipeline.empty()) {
                int piped = 0;
                for (const auto &p : out.stats.block_pipeline)
                    piped += p.pipelined ? 1 : 0;
                std::printf("loop blocks piped:   %d of %zu\n", piped,
                            out.stats.block_pipeline.size());
                for (const auto &p : out.stats.block_pipeline)
                    std::printf(
                        "  block %-4d loop %-3d ii %-5lld mii %-5lld "
                        "(res %lld rec %lld flat %lld)%s\n",
                        p.block, p.src_loop, static_cast<long long>(p.ii),
                        static_cast<long long>(p.mii),
                        static_cast<long long>(p.res_mii),
                        static_cast<long long>(p.rec_mii),
                        static_cast<long long>(p.flat_mii),
                        p.pipelined ? " [pipelined]" : "");
            }
            if (!out.stats.oracle_reports.empty()) {
                int proved = 0;
                int64_t gap = 0;
                for (const auto &o : out.stats.oracle_reports) {
                    proved += o.proved_optimal ? 1 : 0;
                    gap += o.greedy_makespan - o.best_makespan;
                }
                std::printf("oracle blocks:       %zu (%d proved, "
                            "total gap %lld cycles)\n",
                            out.stats.oracle_reports.size(), proved,
                            static_cast<long long>(gap));
            }
            print_compile_timing(out.stats);
        }
        if (!do_run)
            return 0;

        SimResult r;
        if (sim_diff) {
            r = diff_sim_backends(out.program, faults, checks,
                                  !trace_out.empty());
            std::printf("[sim-diff: reference, threaded and region "
                        "backends identical]\n");
        } else {
            Simulator sim(out.program, faults, checks, sim_backend);
            if (!trace_out.empty())
                sim.set_trace_enabled(true);
            r = sim.run();
        }
        std::fputs(r.print_text().c_str(), stdout);
        std::printf("[%lld cycles, %lld instrs, %lld words routed, "
                    "%lld dynamic msgs]\n",
                    static_cast<long long>(r.cycles),
                    static_cast<long long>(r.instrs_executed),
                    static_cast<long long>(r.words_routed),
                    static_cast<long long>(r.dyn_messages));
        if (checks.enabled()) {
            std::printf("[self-check: %lld failure(s), provenance "
                        "hash 0x%llx]\n",
                        static_cast<long long>(
                            r.check_failure_count),
                        static_cast<unsigned long long>(
                            r.prov_hash));
            for (const CheckFailure &f : r.check_failures)
                std::fprintf(stderr, "rawcc: self-check: %s\n",
                             f.to_string().c_str());
            if (r.check_failure_count > 0)
                return 1;
        }

        if (profile) {
            std::fputs(
                format_profile(r, out.stats.estimated_makespan())
                    .c_str(),
                stdout);
            if (!stats) // --stats already printed these
                print_compile_timing(out.stats);
        }
        if (!trace_out.empty()) {
            write_chrome_trace(trace_out, r.profile);
            std::printf("trace written to %s\n", trace_out.c_str());
        }

        if (speedup && !baseline) {
            RunResult base = run_baseline(src);
            std::printf("baseline: %lld cycles -> speedup %.2f\n",
                        static_cast<long long>(base.cycles),
                        static_cast<double>(base.cycles) /
                            static_cast<double>(r.cycles));
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rawcc: %s\n", e.what());
        return 1;
    }
}
