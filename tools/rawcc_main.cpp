/**
 * @file
 * rawcc — command-line driver for the Raw compiler and simulator.
 *
 * Usage:
 *   rawcc [options] <file.rawc | benchmark-name>
 *
 * Options:
 *   --tiles N          machine size (default 4)
 *   --config C         base | inf-reg | 1-cycle      (default base)
 *   --baseline         compile sequentially instead of with RAWCC
 *   --dump-ir          print the IR after renaming
 *   --disasm           print the per-tile / per-switch streams
 *   --stats            print compile statistics
 *   --no-run           compile only
 *   --speedup          also run the sequential baseline and report
 *   --miss-rate R      inject cache misses with probability R
 *   --miss-penalty P   extra cycles per miss (default 20)
 *   --seed S           fault-injection seed
 *   --no-unroll        disable affine staticization (ablation)
 *   --no-replication   broadcast every branch (ablation)
 *   --no-port-fold     keep explicit send/receive instructions
 *   --list-benchmarks  list the built-in Table 2 programs
 *
 * The input is a rawc source file, or the name of a built-in
 * benchmark (life, vpenta, cholesky, tomcatv, fpppp-kernel, mxm,
 * jacobi).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/harness.hpp"
#include "ir/printer.hpp"
#include "sim/disasm.hpp"

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: rawcc [options] <file.rawc | benchmark>\n"
        "  --tiles N --config base|inf-reg|1-cycle --baseline\n"
        "  --dump-ir --disasm --stats --no-run --speedup\n"
        "  --miss-rate R --miss-penalty P --seed S\n"
        "  --no-unroll --no-replication --no-port-fold\n"
        "  --list-benchmarks\n");
}

std::string
load_input(const std::string &arg)
{
    for (const raw::BenchmarkProgram &b : raw::benchmark_suite())
        if (b.name == arg)
            return b.source;
    std::ifstream in(arg);
    if (!in)
        raw::fatal("cannot open input: " + arg);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace raw;

    int tiles = 4;
    std::string config = "base";
    std::string input;
    bool baseline = false, dump_ir = false, disasm = false;
    bool stats = false, do_run = true, speedup = false;
    CompilerOptions opts;
    FaultConfig faults;

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--tiles")
            tiles = std::atoi(next());
        else if (a == "--config")
            config = next();
        else if (a == "--baseline")
            baseline = true;
        else if (a == "--dump-ir")
            dump_ir = true;
        else if (a == "--disasm")
            disasm = true;
        else if (a == "--stats")
            stats = true;
        else if (a == "--no-run")
            do_run = false;
        else if (a == "--speedup")
            speedup = true;
        else if (a == "--miss-rate")
            faults.miss_rate = std::atof(next());
        else if (a == "--miss-penalty")
            faults.penalty = std::atoi(next());
        else if (a == "--seed")
            faults.seed = std::strtoull(next(), nullptr, 10);
        else if (a == "--no-unroll")
            opts.unroll.enable = false;
        else if (a == "--no-replication")
            opts.orch.enable_replication = false;
        else if (a == "--no-port-fold")
            opts.orch.fold_ports = false;
        else if (a == "--list-benchmarks") {
            for (const BenchmarkProgram &b : benchmark_suite())
                std::printf("%-14s %s\n", b.name.c_str(),
                            b.description.c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage();
            return 2;
        } else {
            input = a;
        }
    }
    if (input.empty()) {
        usage();
        return 2;
    }

    try {
        std::string src = load_input(input);
        MachineConfig machine;
        if (config == "base")
            machine = MachineConfig::base(tiles);
        else if (config == "inf-reg")
            machine = MachineConfig::inf_reg(tiles);
        else if (config == "1-cycle")
            machine = MachineConfig::one_cycle(tiles);
        else
            fatal("unknown config: " + config);

        CompileOutput out =
            baseline ? compile_baseline_for(
                           src, config == "base"
                                    ? MachineConfig::base(1)
                                    : (config == "inf-reg"
                                           ? MachineConfig::inf_reg(1)
                                           : MachineConfig::one_cycle(
                                                 1)))
                     : compile_source(src, machine, opts);

        if (dump_ir)
            std::printf("%s\n", print_function(out.fn).c_str());
        if (disasm)
            std::printf("%s\n",
                        disasm_program(out.program).c_str());
        if (stats) {
            std::printf("machine:             %s\n",
                        out.program.machine.name().c_str());
            std::printf("IR instructions:     %lld\n",
                        static_cast<long long>(out.stats.ir_instrs));
            std::printf("machine instrs:      %lld\n",
                        static_cast<long long>(
                            out.stats.static_instrs));
            std::printf("loops u/p:           %d/%d of %d\n",
                        out.stats.unroll.loops_unrolled,
                        out.stats.unroll.loops_peeled,
                        out.stats.unroll.loops_seen);
            std::printf("dynamic refs:        %d\n",
                        out.stats.dynamic_refs);
            std::printf("branches repl/bcast: %d/%d\n",
                        out.stats.replicated_branches,
                        out.stats.broadcast_branches);
            std::printf("spill ops:           %lld\n",
                        static_cast<long long>(out.stats.spill_ops));
            std::printf("folded port ops:     %d\n",
                        out.stats.folded_port_ops);
        }
        if (!do_run)
            return 0;

        Simulator sim(out.program, faults);
        SimResult r = sim.run();
        std::fputs(r.print_text().c_str(), stdout);
        std::printf("[%lld cycles, %lld instrs, %lld words routed, "
                    "%lld dynamic msgs]\n",
                    static_cast<long long>(r.cycles),
                    static_cast<long long>(r.instrs_executed),
                    static_cast<long long>(r.words_routed),
                    static_cast<long long>(r.dyn_messages));

        if (speedup && !baseline) {
            RunResult base = run_baseline(src);
            std::printf("baseline: %lld cycles -> speedup %.2f\n",
                        static_cast<long long>(base.cycles),
                        static_cast<double>(base.cycles) /
                            static_cast<double>(r.cycles));
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rawcc: %s\n", e.what());
        return 1;
    }
}
