/**
 * @file
 * Backend-differential suite: run the reference and the threaded
 * execution cores over the full golden corpus (every point in
 * tests/goldens/, at its native machine size and fault/scheduler
 * configuration), a tile sweep of the golden benchmarks, and a
 * fault-channel matrix point, asserting bit-identical observable
 * results via diff_sim_backends — cycle count, every aggregate
 * counter, print trace, prov_hash, per-tile profile and final array
 * contents.  The checker is armed on the _sched and fault points
 * (covering the kRouteN + provenance paths) and left off on the
 * plain points so the kRoute1 fast path is the one being compared.
 */

#include <string>

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "programs/programs.hpp"
#include "rawcc/compiler.hpp"

namespace raw {
namespace {

struct DiffPoint
{
    const char *bench;
    int tiles;
    FaultConfig faults;
    bool sched_opt = false;
    bool check = false;
};

std::string
point_name(const DiffPoint &p)
{
    std::string n = std::string(p.bench) + "_n" +
                    std::to_string(p.tiles);
    if (p.sched_opt)
        n += "_sched";
    if (p.faults.any())
        n += "_fault";
    if (p.check)
        n += "_check";
    return n;
}

void
diff_point(const DiffPoint &p)
{
    const BenchmarkProgram &prog = benchmark(p.bench);
    CompilerOptions opts;
    if (p.sched_opt) {
        opts.orch.sched.sched_iters = 3;
        opts.orch.sched.route_select = true;
    }
    CompileOutput out = compile_source(
        prog.source, MachineConfig::base(p.tiles), opts);
    CheckConfig checks;
    if (p.check) {
        checks.provenance = true;
        checks.fifo_bounds = true;
    }
    SCOPED_TRACE(point_name(p));
    EXPECT_NO_THROW(diff_sim_backends(out.program, p.faults, checks))
        << point_name(p);
}

// Mirror of the golden corpus (tools/golden_gen.cpp kPoints): every
// recorded point at its native size.  Checker armed on the _sched
// and fault points, off on the plain ones (kRoute1 coverage).
const DiffPoint kGoldenPoints[] = {
    {"life", 1, {}},
    {"life", 4, {}},
    {"life", 16, {}},
    {"cholesky", 1, {}},
    {"cholesky", 4, {}},
    {"cholesky", 16, {}},
    {"mxm", 1, {}},
    {"mxm", 4, {}},
    {"mxm", 16, {}},
    {"jacobi", 1, {}},
    {"jacobi", 4, {}},
    {"jacobi", 16, {}},
    {"jacobi", 4, {0.01, 20, 42}, false, true},
    {"jacobi", 4, {0.02, 9, 7, 0.05, 3, 0.05, 6, 0.02}, false, true},
    {"life", 16, {}, true, true},
    {"cholesky", 16, {}, true, true},
    {"mxm", 16, {}, true, true},
    {"jacobi", 16, {}, true, true},
};

TEST(SimBackend, GoldenCorpusDifferential)
{
    for (const DiffPoint &p : kGoldenPoints)
        diff_point(p);
}

TEST(SimBackend, GoldenBenchTileSweep)
{
    // Plain compiles across machine sizes: small meshes exercise the
    // sprint solo path, big ones the fused per-tile scan and the
    // predictive-sleep machinery.
    for (const char *b : {"life", "cholesky", "mxm", "jacobi"})
        for (int n : {4, 16, 32})
            diff_point({b, n, {}});
}

TEST(SimBackend, FaultChannelMatrix)
{
    // All four channels at once: memory miss, route stall, dynamic
    // delay and jitter (jitter disables predictive proc sleep and
    // quiescence fast-forward, so this pins the spin paths too).
    FaultConfig all{};
    all.miss_rate = 0.05;
    all.penalty = 20;
    all.seed = 42;
    all.route_stall_rate = 0.05;
    all.route_stall_cycles = 3;
    all.dyn_delay_rate = 0.2;
    all.dyn_delay_cycles = 5;
    all.jitter_rate = 0.01;
    diff_point({"life", 16, all});

    // Checker armed on top of miss faults: provenance tagging and
    // self-checking must agree between backends under perturbation.
    FaultConfig miss{};
    miss.miss_rate = 0.1;
    miss.penalty = 10;
    miss.seed = 3;
    diff_point({"tomcatv", 16, miss, false, true});
}

} // namespace
} // namespace raw
