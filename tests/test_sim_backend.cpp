/**
 * @file
 * Backend-differential suite: run the reference, threaded and
 * region-compiled execution cores over the full golden corpus (every
 * point in tests/goldens/, at its native machine size and
 * fault/scheduler configuration), a tile sweep of the golden
 * benchmarks extended to the 64/128-tile scaling meshes, and a
 * fault-channel matrix point, asserting bit-identical observable
 * results via diff_sim_backends — cycle count, every aggregate
 * counter, print trace, prov_hash, per-tile profile and final array
 * contents.  The checker is armed on the _sched and fault points
 * (covering the kRouteN + provenance paths) and left off on the
 * plain points so the kRoute1 fast path is the one being compared.
 * Also pins the region-formation gates (regions must be off under
 * every fault channel and under the checker) and deadlock-set parity
 * across all three cores.
 */

#include <string>

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "programs/programs.hpp"
#include "rawcc/compiler.hpp"

namespace raw {
namespace {

struct DiffPoint
{
    const char *bench;
    int tiles;
    FaultConfig faults;
    bool sched_opt = false;
    bool check = false;
};

std::string
point_name(const DiffPoint &p)
{
    std::string n = std::string(p.bench) + "_n" +
                    std::to_string(p.tiles);
    if (p.sched_opt)
        n += "_sched";
    if (p.faults.any())
        n += "_fault";
    if (p.check)
        n += "_check";
    return n;
}

void
diff_point(const DiffPoint &p)
{
    const BenchmarkProgram &prog = benchmark(p.bench);
    CompilerOptions opts;
    if (p.sched_opt) {
        opts.orch.sched.sched_iters = 3;
        opts.orch.sched.route_select = true;
    }
    CompileOutput out = compile_source(
        prog.source, MachineConfig::base(p.tiles), opts);
    CheckConfig checks;
    if (p.check) {
        checks.provenance = true;
        checks.fifo_bounds = true;
    }
    SCOPED_TRACE(point_name(p));
    EXPECT_NO_THROW(diff_sim_backends(out.program, p.faults, checks))
        << point_name(p);
}

// Mirror of the golden corpus (tools/golden_gen.cpp kPoints): every
// recorded point at its native size.  Checker armed on the _sched
// and fault points, off on the plain ones (kRoute1 coverage).
const DiffPoint kGoldenPoints[] = {
    {"life", 1, {}},
    {"life", 4, {}},
    {"life", 16, {}},
    {"cholesky", 1, {}},
    {"cholesky", 4, {}},
    {"cholesky", 16, {}},
    {"mxm", 1, {}},
    {"mxm", 4, {}},
    {"mxm", 16, {}},
    {"jacobi", 1, {}},
    {"jacobi", 4, {}},
    {"jacobi", 16, {}},
    {"jacobi", 4, {0.01, 20, 42}, false, true},
    {"jacobi", 4, {0.02, 9, 7, 0.05, 3, 0.05, 6, 0.02}, false, true},
    {"life", 16, {}, true, true},
    {"cholesky", 16, {}, true, true},
    {"mxm", 16, {}, true, true},
    {"jacobi", 16, {}, true, true},
};

TEST(SimBackend, GoldenCorpusDifferential)
{
    for (const DiffPoint &p : kGoldenPoints)
        diff_point(p);
}

TEST(SimBackend, GoldenBenchTileSweep)
{
    // Plain compiles across machine sizes: small meshes exercise the
    // sprint solo path, big ones the fused per-tile scan and the
    // predictive-sleep machinery.
    for (const char *b : {"life", "cholesky", "mxm", "jacobi"})
        for (int n : {4, 16, 32})
            diff_point({b, n, {}});
}

TEST(SimBackend, LargeMeshSweep)
{
    // The scaling-study meshes, past Table 3's 32-tile ceiling.
    // jacobi n=64 runs the fused scan over an 8x8 mesh; fpppp-kernel
    // is cheap enough at n=128 (8x16) to diff in milliseconds.
    diff_point({"jacobi", 64, {}});
    diff_point({"jacobi", 64, {}, true, true}); // checker on _sched
    diff_point({"fpppp-kernel", 128, {}});

    // Fault point at 64 tiles with the checker armed: regions are
    // forced off, so this pins the large-mesh threaded paths too.
    FaultConfig miss{};
    miss.miss_rate = 0.05;
    miss.penalty = 12;
    miss.seed = 9;
    diff_point({"jacobi", 64, miss, false, true});
}

TEST(SimBackend, FaultChannelMatrix)
{
    // All four channels at once: memory miss, route stall, dynamic
    // delay and jitter (jitter disables predictive proc sleep and
    // quiescence fast-forward, so this pins the spin paths too).
    FaultConfig all{};
    all.miss_rate = 0.05;
    all.penalty = 20;
    all.seed = 42;
    all.route_stall_rate = 0.05;
    all.route_stall_cycles = 3;
    all.dyn_delay_rate = 0.2;
    all.dyn_delay_cycles = 5;
    all.jitter_rate = 0.01;
    diff_point({"life", 16, all});

    // Checker armed on top of miss faults: provenance tagging and
    // self-checking must agree between backends under perturbation.
    FaultConfig miss{};
    miss.miss_rate = 0.1;
    miss.penalty = 10;
    miss.seed = 3;
    diff_point({"tomcatv", 16, miss, false, true});
}

TEST(SimBackend, RegionsDisabledUnderEveryFaultChannel)
{
    // Region formation must turn itself off whenever any fault
    // channel or the runtime checker is armed (those paths consume
    // per-cycle randomness / per-step checks a fused run would skip),
    // and the plain threaded core must never form regions at all.
    CompileOutput out = compile_source(benchmark("jacobi").source,
                                       MachineConfig::base(4));
    auto regions = [&](const FaultConfig &f, const CheckConfig &c,
                       SimBackend b = SimBackend::kRegion) {
        Simulator sim(out.program, f, c, b);
        return sim.run().regions_entered;
    };

    EXPECT_GT(regions({}, {}), 0) << "clean region run must fuse";
    EXPECT_EQ(regions({}, {}, SimBackend::kThreaded), 0);
    EXPECT_EQ(regions({}, {}, SimBackend::kReference), 0);

    FaultConfig miss{};
    miss.miss_rate = 0.1;
    miss.penalty = 10;
    miss.seed = 1;
    EXPECT_EQ(regions(miss, {}), 0) << "memory-miss channel";

    FaultConfig route{};
    route.route_stall_rate = 0.1;
    route.route_stall_cycles = 3;
    route.seed = 1;
    EXPECT_EQ(regions(route, {}), 0) << "route-stall channel";

    FaultConfig dyn{};
    dyn.dyn_delay_rate = 0.2;
    dyn.dyn_delay_cycles = 5;
    dyn.seed = 1;
    EXPECT_EQ(regions(dyn, {}), 0) << "dyn-delay channel";

    FaultConfig jit{};
    jit.jitter_rate = 0.01;
    jit.seed = 1;
    EXPECT_EQ(regions(jit, {}), 0) << "jitter channel";

    CheckConfig checks;
    checks.provenance = true;
    checks.fifo_bounds = true;
    EXPECT_EQ(regions({}, checks), 0) << "runtime checker";
}

// Minimal hand-built deadlock: two switches each waiting for a word
// from the other before forwarding to their processor (mirror of the
// tests/test_faults.cpp routing-cycle program).
CompiledProgram
routing_cycle()
{
    CompiledProgram cp;
    cp.machine = MachineConfig::base(2);
    cp.tiles.resize(2);
    cp.switches.resize(2);
    cp.total_words = 16;
    auto pi = [](Op op, int dst = -1, int a = -1) {
        PInstr p;
        p.op = op;
        p.dst = dst;
        p.src[0] = a;
        return p;
    };
    auto route1 = [](Dir in, Dir out) {
        SInstr s;
        s.k = SInstr::K::kRoute;
        s.routes = {{in, static_cast<uint8_t>(
                             1u << static_cast<int>(out)),
                     -1}};
        return s;
    };
    SInstr halt;
    halt.k = SInstr::K::kHalt;
    for (int t : {0, 1})
        cp.tiles[t].code = {pi(Op::kRecv, 1), pi(Op::kSend, -1, 1),
                            pi(Op::kHalt)};
    cp.switches[0].code = {route1(Dir::kEast, Dir::kProc),
                           route1(Dir::kProc, Dir::kEast), halt};
    cp.switches[1].code = {route1(Dir::kWest, Dir::kProc),
                           route1(Dir::kProc, Dir::kWest), halt};
    return cp;
}

TEST(SimBackend, DeadlockSetParity)
{
    // All three cores must diagnose the same deadlock *set* (blocking
    // cycle + blocked units).  The cycle *number* is allowed to
    // differ — the threaded cores sleep through quiescent stretches
    // and notice the freeze at a later timestamp (see "Error-path
    // divergence" in docs/performance.md) — which is exactly why
    // DeadlockError::deadlock_set() excludes it.
    CompiledProgram cp = routing_cycle();
    auto set_of = [&](SimBackend b) {
        Simulator sim(cp, {}, {}, b);
        try {
            sim.run();
        } catch (const DeadlockError &e) {
            return e.deadlock_set();
        }
        ADD_FAILURE() << "routing cycle must deadlock ("
                      << sim_backend_name(b) << ")";
        return std::string();
    };
    std::string ref = set_of(SimBackend::kReference);
    EXPECT_NE(ref.find("blocking cycle"), std::string::npos) << ref;
    EXPECT_NE(ref.find("sw0@pc0"), std::string::npos) << ref;
    EXPECT_NE(ref.find("sw1@pc0"), std::string::npos) << ref;
    EXPECT_EQ(set_of(SimBackend::kThreaded), ref);
    EXPECT_EQ(set_of(SimBackend::kRegion), ref);
}

} // namespace
} // namespace raw
