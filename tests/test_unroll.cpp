/**
 * @file
 * Unroller tests (Section 5.3): repetition-distance-driven unroll
 * factors, full peeling, congruence annotations, remainder handling,
 * and the cases that must be left alone.
 */

#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "frontend/unroll.hpp"

namespace raw {
namespace {

/** Find the first kFor statement, recursively. */
const Stmt *
find_for(const std::vector<StmtPtr> &stmts)
{
    for (const StmtPtr &s : stmts) {
        if (s->kind == StmtKind::kFor)
            return s.get();
        const Stmt *inner = find_for(s->body);
        if (inner)
            return inner;
        inner = find_for(s->else_body);
        if (inner)
            return inner;
    }
    return nullptr;
}

int
count_stmts(const std::vector<StmtPtr> &stmts)
{
    int n = 0;
    for (const StmtPtr &s : stmts) {
        n += 1 + count_stmts(s->body) + count_stmts(s->else_body);
    }
    return n;
}

UnrollOptions
opts_for(int n)
{
    UnrollOptions o;
    o.n_tiles = n;
    return o;
}

TEST(Unroll, UnitStrideUnrollsByN)
{
    // A[i], stride 1, 4 tiles: repetition distance 4; trip 64 is too
    // large to peel under the default budget scaled down here.
    Program p = parse_program(R"(
int A[256];
int i;
for (i = 0; i < 256; i = i + 1) { A[i] = i; }
)");
    UnrollOptions o = opts_for(4);
    o.small_peel_limit = 10;
    o.forced_peel_limit = 100; // force partial unrolling
    UnrollStats st = unroll_program(p, o);
    EXPECT_EQ(st.loops_unrolled, 1);
    const Stmt *f = find_for(p.stmts);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->step, 4) << "unrolled by the repetition distance";
    EXPECT_EQ(f->iv_modulus, 4);
    EXPECT_EQ(f->iv_residue, 0);
    EXPECT_EQ(count_stmts(f->body), 4) << "4 copies of the body";
}

TEST(Unroll, RowStrideNeedsNoUnrolling)
{
    // A[i][j] with the loop over i (stride 32): 32 % 4 == 0, so the
    // home tile never varies with i; distance 1, loop kept rolled.
    Program p = parse_program(R"(
int A[64][32];
int i; int j;
j = 3;
for (i = 0; i < 64; i = i + 1) { A[i][j] = i; }
)");
    UnrollOptions o = opts_for(4);
    o.small_peel_limit = 10;
    UnrollStats st = unroll_program(p, o);
    EXPECT_EQ(st.loops_unrolled, 0);
    EXPECT_EQ(st.loops_peeled, 0);
    const Stmt *f = find_for(p.stmts);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->step, 1);
}

TEST(Unroll, LcmOfMultipleAccesses)
{
    // A[i] (distance 8) and B[2*i] (distance 4) on 8 tiles: lcm 8.
    Program p = parse_program(R"(
int A[512];
int B[512];
int i;
for (i = 0; i < 128; i = i + 1) { A[i] = B[2 * i]; }
)");
    UnrollOptions o = opts_for(8);
    o.small_peel_limit = 10;
    o.forced_peel_limit = 100;
    unroll_program(p, o);
    const Stmt *f = find_for(p.stmts);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->step, 8);
    EXPECT_EQ(f->iv_modulus, 8);
}

TEST(Unroll, RemainderIsPeeledExactly)
{
    // Trip 10, unroll 4 -> main loop 8 iterations + 2 peeled.
    Program p = parse_program(R"(
int A[64];
int i;
for (i = 0; i < 10; i = i + 1) { A[i] = i; }
)");
    UnrollOptions o = opts_for(4);
    o.small_peel_limit = 1;
    o.forced_peel_limit = 50;
    unroll_program(p, o);
    const Stmt *f = find_for(p.stmts);
    ASSERT_NE(f, nullptr);
    ASSERT_TRUE(f->bound != nullptr);
    EXPECT_EQ(f->bound->int_val, 8);
    // Two peeled iterations plus the final iv assignment follow.
    EXPECT_GE(count_stmts(p.stmts), 3);
}

TEST(Unroll, FullPeelWhenRequiredFactorExceedsTrip)
{
    // Trip 6 < distance 8: peeling is the only way to staticize.
    Program p = parse_program(R"(
int A[64];
int i;
for (i = 0; i < 6; i = i + 1) { A[i] = i; }
)");
    UnrollStats st = unroll_program(p, opts_for(8));
    EXPECT_EQ(st.loops_peeled, 1);
    EXPECT_EQ(find_for(p.stmts), nullptr) << "no loop remains";
}

TEST(Unroll, CongruenceResidueTracksStart)
{
    Program p = parse_program(R"(
int A[256];
int i;
for (i = 3; i < 130; i = i + 1) { A[i] = i; }
)");
    UnrollOptions o = opts_for(4);
    o.small_peel_limit = 1;
    o.forced_peel_limit = 10;
    unroll_program(p, o);
    const Stmt *f = find_for(p.stmts);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->iv_modulus, 4);
    EXPECT_EQ(f->iv_residue, 3);
}

TEST(Unroll, NonConstantBoundsLeftAlone)
{
    Program p = parse_program(R"(
int A[64];
int n; int i;
n = 13;
while (n > 10) { n = n - 1; }
for (i = 0; i < n; i = i + 1) { A[i] = i; }
)");
    UnrollStats st = unroll_program(p, opts_for(4));
    EXPECT_EQ(st.loops_unrolled, 0);
    EXPECT_EQ(st.loops_peeled, 0);
    EXPECT_NE(find_for(p.stmts), nullptr);
}

TEST(Unroll, BodyAssigningIvLeftAlone)
{
    Program p = parse_program(R"(
int A[64];
int i;
for (i = 0; i < 8; i = i + 1) { i = i + 1; A[i] = i; }
)");
    UnrollStats st = unroll_program(p, opts_for(4));
    EXPECT_EQ(st.loops_unrolled + st.loops_peeled, 0);
}

TEST(Unroll, ZeroTripLoopVanishes)
{
    Program p = parse_program(R"(
int A[8];
int i;
for (i = 5; i < 5; i = i + 1) { A[0] = 1; }
print(i);
)");
    unroll_program(p, opts_for(4));
    EXPECT_EQ(find_for(p.stmts), nullptr);
    // i still ends up with its initial value via an assignment.
    bool assigns_i = false;
    for (const StmtPtr &s : p.stmts)
        if (s->kind == StmtKind::kAssign && s->name == "i")
            assigns_i = true;
    EXPECT_TRUE(assigns_i);
}

TEST(Unroll, ConstPropagatedBounds)
{
    // Bounds referencing never-reassigned scalars fold.
    Program p = parse_program(R"(
int n = 8;
int A[64];
int i;
for (i = 0; i < n; i = i + 1) { A[i] = i; }
)");
    UnrollStats st = unroll_program(p, opts_for(16));
    EXPECT_EQ(st.loops_peeled, 1) << "trip 8 < distance 16";
}

TEST(Unroll, DisabledByOption)
{
    Program p = parse_program(R"(
int A[64];
int i;
for (i = 0; i < 6; i = i + 1) { A[i] = i; }
)");
    UnrollOptions o = opts_for(8);
    o.enable = false;
    UnrollStats st = unroll_program(p, o);
    EXPECT_EQ(st.loops_unrolled + st.loops_peeled, 0);
}

TEST(Unroll, StmtWeight)
{
    Program p = parse_program("int x; x = 1 + 2 * 3;");
    EXPECT_GT(stmt_weight(*p.stmts[1]), 4);
}

} // namespace
} // namespace raw
