/**
 * @file
 * IR tests: construction, opcode metadata, word-exact evaluation
 * semantics, printer and verifier.
 */

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace raw {
namespace {

TEST(Opcode, Metadata)
{
    EXPECT_EQ(op_num_srcs(Op::kAdd), 2);
    EXPECT_EQ(op_num_srcs(Op::kNeg), 1);
    EXPECT_EQ(op_num_srcs(Op::kConst), 0);
    EXPECT_EQ(op_num_srcs(Op::kStore), 2);
    EXPECT_TRUE(op_is_terminator(Op::kHalt));
    EXPECT_TRUE(op_is_terminator(Op::kBranch));
    EXPECT_FALSE(op_is_terminator(Op::kAdd));
    EXPECT_TRUE(op_is_memory(Op::kDynLoad));
    EXPECT_FALSE(op_has_dst(Op::kStore));
    EXPECT_TRUE(op_has_dst(Op::kRecv));
    EXPECT_TRUE(op_is_commutative(Op::kAdd));
    EXPECT_FALSE(op_is_commutative(Op::kSub));
    EXPECT_TRUE(op_is_replicable(Op::kAdd));
    EXPECT_FALSE(op_is_replicable(Op::kFAdd));
    EXPECT_FALSE(op_is_replicable(Op::kLoad));
    EXPECT_EQ(op_fu(Op::kMul), FuOp::kIntMul);
    EXPECT_EQ(op_fu(Op::kFSqrt), FuOp::kFpDiv);
}

TEST(Eval, IntegerSemantics)
{
    uint32_t out;
    ASSERT_TRUE(eval_op(Op::kAdd, int_bits(3), int_bits(4), out));
    EXPECT_EQ(bits_int(out), 7);
    // Wraparound.
    ASSERT_TRUE(eval_op(Op::kAdd, int_bits(INT32_MAX), int_bits(1),
                        out));
    EXPECT_EQ(bits_int(out), INT32_MIN);
    ASSERT_TRUE(eval_op(Op::kMul, int_bits(1 << 20), int_bits(1 << 20),
                        out));
    EXPECT_EQ(bits_int(out), 0);
    // Division by zero yields zero (documented rawc semantics).
    ASSERT_TRUE(eval_op(Op::kDiv, int_bits(5), int_bits(0), out));
    EXPECT_EQ(bits_int(out), 0);
    ASSERT_TRUE(eval_op(Op::kRem, int_bits(5), int_bits(0), out));
    EXPECT_EQ(bits_int(out), 0);
    ASSERT_TRUE(eval_op(Op::kShl, int_bits(1), int_bits(5), out));
    EXPECT_EQ(bits_int(out), 32);
    ASSERT_TRUE(eval_op(Op::kCmpLt, int_bits(-1), int_bits(0), out));
    EXPECT_EQ(bits_int(out), 1);
}

TEST(Eval, FloatSemantics)
{
    uint32_t out;
    ASSERT_TRUE(eval_op(Op::kFAdd, float_bits(1.5f), float_bits(2.25f),
                        out));
    EXPECT_EQ(bits_float(out), 3.75f);
    ASSERT_TRUE(eval_op(Op::kFSqrt, float_bits(9.0f), 0, out));
    EXPECT_EQ(bits_float(out), 3.0f);
    ASSERT_TRUE(eval_op(Op::kItoF, int_bits(-7), 0, out));
    EXPECT_EQ(bits_float(out), -7.0f);
    ASSERT_TRUE(eval_op(Op::kFtoI, float_bits(3.9f), 0, out));
    EXPECT_EQ(bits_int(out), 3);
    // NaN-safe and saturating conversions.
    ASSERT_TRUE(eval_op(Op::kFtoI, float_bits(1e30f), 0, out));
    EXPECT_EQ(bits_int(out), INT32_MAX);
    ASSERT_TRUE(
        eval_op(Op::kFtoI, float_bits(0.0f / 0.0f), 0, out));
    EXPECT_EQ(bits_int(out), 0);
}

TEST(Eval, RejectsNonComputational)
{
    uint32_t out;
    EXPECT_FALSE(eval_op(Op::kLoad, 0, 0, out));
    EXPECT_FALSE(eval_op(Op::kJump, 0, 0, out));
    EXPECT_FALSE(eval_op(Op::kSend, 0, 0, out));
}

Function
make_simple()
{
    Function fn;
    int b = fn.new_block("entry");
    IRBuilder ib(fn);
    ib.set_block(b);
    ValueId x = ib.const_int(21);
    ValueId y = ib.emit(Op::kAdd, Type::kI32, x, x);
    ib.print(y);
    ib.halt();
    return fn;
}

TEST(IR, BuilderAndPrinter)
{
    Function fn = make_simple();
    EXPECT_EQ(fn.blocks.size(), 1u);
    EXPECT_EQ(fn.blocks[0].instrs.size(), 4u);
    std::string text = print_function(fn);
    EXPECT_NE(text.find("add"), std::string::npos);
    EXPECT_NE(text.find("21"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(IR, Successors)
{
    Function fn;
    int a = fn.new_block("a");
    int b = fn.new_block("b");
    int c = fn.new_block("c");
    IRBuilder ib(fn);
    ib.set_block(a);
    ValueId cond = ib.const_int(1);
    ib.branch(cond, b, c);
    ib.set_block(b);
    ib.jump(c);
    ib.set_block(c);
    ib.halt();
    EXPECT_EQ(fn.blocks[a].successors(), (std::vector<int>{b, c}));
    EXPECT_EQ(fn.blocks[b].successors(), (std::vector<int>{c}));
    EXPECT_TRUE(fn.blocks[c].successors().empty());
    auto preds = fn.predecessors();
    EXPECT_EQ(preds[c].size(), 2u);
}

TEST(Verifier, AcceptsWellFormed)
{
    Function fn = make_simple();
    EXPECT_EQ(verify_function(fn), "");
}

TEST(Verifier, RejectsMissingTerminator)
{
    Function fn = make_simple();
    fn.blocks[0].instrs.pop_back();
    EXPECT_NE(verify_function(fn), "");
}

TEST(Verifier, RejectsUseBeforeDef)
{
    Function fn;
    int b = fn.new_block("entry");
    ValueId x = fn.new_value(Type::kI32);
    ValueId y = fn.new_value(Type::kI32);
    IRBuilder ib(fn);
    ib.set_block(b);
    ib.append(Instr::make(Op::kAdd, Type::kI32, y, x, x)); // x undefined
    ib.halt();
    EXPECT_NE(verify_function(fn), "");
}

TEST(Verifier, RejectsTypeMismatch)
{
    Function fn;
    int b = fn.new_block("entry");
    IRBuilder ib(fn);
    ib.set_block(b);
    ValueId f = ib.const_float(1.0f);
    ValueId d = fn.new_value(Type::kI32);
    ib.append(Instr::make(Op::kAdd, Type::kI32, d, f, f));
    ib.halt();
    EXPECT_NE(verify_function(fn), "");
}

TEST(Verifier, RejectsBadBranchTarget)
{
    Function fn = make_simple();
    Instr j;
    j.op = Op::kJump;
    j.target[0] = 99;
    fn.blocks[0].instrs.back() = j;
    EXPECT_NE(verify_function(fn), "");
}

TEST(Verifier, RejectsBadArrayIndexType)
{
    Function fn;
    int b = fn.new_block("entry");
    int arr = fn.new_array("A", Type::kI32, {8});
    IRBuilder ib(fn);
    ib.set_block(b);
    ValueId f = ib.const_float(0.0f);
    ValueId d = fn.new_value(Type::kI32);
    Instr ld = Instr::make(Op::kLoad, Type::kI32, d, f);
    ld.array = arr;
    ib.append(ld);
    ib.halt();
    EXPECT_NE(verify_function(fn), "");
}

} // namespace
} // namespace raw
