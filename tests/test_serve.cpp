/**
 * @file
 * Unit tests of the serve daemon's building blocks: the hostile-input
 * JSON parser, the bounded admission queue, and — the heart of the
 * PR — the single-flight request cache: N concurrent identical
 * requests run exactly one compile, a failed leader hands off to a
 * waiter and the error is never cached, waiters honor deadlines, and
 * LRU eviction respects both capacity axes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "rawcc/compiler.hpp"
#include "serve/flight_cache.hpp"
#include "serve/json.hpp"
#include "serve/queue.hpp"
#include "support/error.hpp"

namespace raw {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------
// JSON
// ---------------------------------------------------------------

Json
parse_ok(const std::string &text)
{
    Json j;
    std::string err;
    EXPECT_TRUE(json_parse(text, j, err)) << text << ": " << err;
    return j;
}

void
parse_fail(const std::string &text)
{
    Json j;
    std::string err;
    EXPECT_FALSE(json_parse(text, j, err)) << text;
    EXPECT_FALSE(err.empty());
}

TEST(ServeJson, ParsesScalarsAndContainers)
{
    EXPECT_EQ(parse_ok("null").kind, Json::Kind::kNull);
    EXPECT_TRUE(parse_ok("true").boolean);
    EXPECT_FALSE(parse_ok("false").boolean);
    Json n = parse_ok("-42");
    EXPECT_TRUE(n.is_int);
    EXPECT_EQ(n.integer, -42);
    Json f = parse_ok("2.5e2");
    EXPECT_FALSE(f.is_int);
    EXPECT_DOUBLE_EQ(f.number, 250.0);
    Json s = parse_ok("\"a\\nb\\u0041\"");
    EXPECT_EQ(s.string, "a\nbA");
    Json arr = parse_ok("[1, [2, 3], {\"k\": 4}]");
    ASSERT_EQ(arr.array.size(), 3u);
    EXPECT_EQ(arr.array[1].array[1].integer, 3);
    Json obj = parse_ok(
        " {\"op\": \"compile\", \"tiles\": 16, \"x\": null} ");
    EXPECT_EQ(obj.str_or("op", ""), "compile");
    EXPECT_EQ(obj.int_or("tiles", 0), 16);
    EXPECT_EQ(obj.int_or("missing", 7), 7);
}

TEST(ServeJson, SurrogatePairsBecomeUtf8)
{
    // U+1F600 as a surrogate pair.
    Json s = parse_ok("\"\\uD83D\\uDE00\"");
    EXPECT_EQ(s.string, "\xF0\x9F\x98\x80");
    parse_fail("\"\\uD83D\"");       // lone high surrogate
    parse_fail("\"\\uDE00\"");       // stray low surrogate
    parse_fail("\"\\uD83D\\u0041\""); // high + non-surrogate
}

TEST(ServeJson, RejectsHostileInput)
{
    parse_fail("");
    parse_fail("{");
    parse_fail("[1, 2");
    parse_fail("{\"a\" 1}");
    parse_fail("{\"a\": 1,}");
    parse_fail("tru");
    parse_fail("1 2");          // trailing garbage
    parse_fail("\"raw \x01\""); // control char in string
    parse_fail("01x");
    parse_fail("1.e5");
    // Depth bomb: far past the recursion cap, must fail cleanly.
    std::string bomb(1000, '[');
    parse_fail(bomb);
}

TEST(ServeJson, QuoteAndBuilderRoundTrip)
{
    JsonBuilder b;
    b.kv("s", std::string("a\"b\\c\nd"))
        .kv("i", static_cast<int64_t>(-5))
        .kv("d", 1.5)
        .kv("t", true);
    Json j = parse_ok(b.str());
    EXPECT_EQ(j.str_or("s", ""), "a\"b\\c\nd");
    EXPECT_EQ(j.int_or("i", 0), -5);
    EXPECT_DOUBLE_EQ(j.num_or("d", 0), 1.5);
    EXPECT_TRUE(j.bool_or("t", false));
}

// ---------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------

TEST(AdmissionQueue, BoundsDepthAndSheds)
{
    AdmissionQueue<int> q(2);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_FALSE(q.try_push(3)) << "depth must be a hard bound";
    int v;
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.try_push(3));
}

TEST(AdmissionQueue, CloseAdmissionDrainsButRejects)
{
    AdmissionQueue<int> q(4);
    EXPECT_TRUE(q.try_push(1));
    q.close_admission();
    EXPECT_FALSE(q.try_push(2));
    int v;
    EXPECT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_FALSE(q.try_pop(v));
}

TEST(AdmissionQueue, CloseReleasesBlockedPoppers)
{
    AdmissionQueue<int> q(4);
    std::atomic<int> popped{0};
    std::thread worker([&] {
        int v;
        while (q.pop(v))
            popped.fetch_add(1);
    });
    EXPECT_TRUE(q.try_push(7));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    worker.join();
    EXPECT_EQ(popped.load(), 1);
}

// ---------------------------------------------------------------
// FlightCache
// ---------------------------------------------------------------

FlightCache::Value
tiny_output()
{
    auto out = std::make_shared<CompileOutput>();
    out->program.tiles.resize(1);
    return out;
}

Clock::time_point
in_ms(int64_t ms)
{
    return Clock::now() + std::chrono::milliseconds(ms);
}

TEST(FlightCache, DigestsAreStableAndDistinct)
{
    Digest a = digest_bytes("hello");
    EXPECT_EQ(a, digest_bytes("hello"));
    EXPECT_FALSE(a == digest_bytes("hellp"));
    EXPECT_FALSE(a == digest_bytes("ehllo")); // transposition
    EXPECT_EQ(a.hex().size(), 32u);
}

TEST(FlightCache, SingleFlightCompilesOnce)
{
    FlightCache cache(16, 64 << 20);
    const Digest key = digest_bytes("workload");
    constexpr int kThreads = 8;

    std::atomic<int> computes{0};
    std::atomic<int> entered{0};
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;

    std::vector<std::thread> ts;
    std::vector<FlightOutcome> outcomes(kThreads);
    std::vector<FlightCache::Value> values(kThreads);
    for (int i = 0; i < kThreads; i++)
        ts.emplace_back([&, i] {
            values[i] = cache.get_or_compute(
                key,
                [&]() -> FlightCache::Value {
                    computes.fetch_add(1);
                    entered.fetch_add(1);
                    // Hold the flight until every thread has had
                    // time to pile up behind the leader.
                    std::unique_lock<std::mutex> lock(mu);
                    cv.wait(lock, [&] { return release; });
                    return tiny_output();
                },
                in_ms(10000), outcomes[i]);
        });

    // Wait until the leader is inside compute, give the others time
    // to reach the wait path, then release.
    while (entered.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    for (auto &t : ts)
        t.join();

    EXPECT_EQ(computes.load(), 1)
        << "N identical in-flight requests must compile exactly once";
    int leaders = 0, waiters = 0;
    for (int i = 0; i < kThreads; i++) {
        ASSERT_TRUE(values[i] != nullptr);
        EXPECT_EQ(values[i], values[0]) << "all share one result";
        if (outcomes[i] == FlightOutcome::kLeader)
            leaders++;
        else if (outcomes[i] == FlightOutcome::kWaited)
            waiters++;
    }
    EXPECT_EQ(leaders, 1);
    EXPECT_EQ(waiters, kThreads - 1);
    EXPECT_EQ(cache.stats().compiles, 1);
    EXPECT_EQ(cache.stats().misses, 1);

    // A later call is a plain hit.
    FlightOutcome o;
    EXPECT_TRUE(cache.get_or_compute(
                    key,
                    []() -> FlightCache::Value {
                        ADD_FAILURE() << "must not recompute";
                        return nullptr;
                    },
                    in_ms(1000), o) != nullptr);
    EXPECT_EQ(o, FlightOutcome::kHit);
}

TEST(FlightCache, LeaderFailureHandsOffAndErrorIsNotCached)
{
    FlightCache cache(16, 64 << 20);
    const Digest key = digest_bytes("flaky");

    std::atomic<int> attempts{0};
    std::atomic<int> leader_inside{0};

    // Leader: enters compute, fails once the waiter is queued.
    std::atomic<bool> waiter_ready{false};
    std::thread leader([&] {
        FlightOutcome o;
        EXPECT_THROW(
            cache.get_or_compute(
                key,
                [&]() -> FlightCache::Value {
                    attempts.fetch_add(1);
                    leader_inside.store(1);
                    while (!waiter_ready.load())
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                    throw FatalError("transient failure");
                },
                in_ms(10000), o),
            FatalError);
    });

    while (!leader_inside.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    FlightOutcome waiter_outcome;
    std::thread waiter([&] {
        FlightCache::Value v = cache.get_or_compute(
            key,
            [&]() -> FlightCache::Value {
                // The promoted waiter's own compute succeeds.
                attempts.fetch_add(1);
                return tiny_output();
            },
            in_ms(10000), waiter_outcome);
        EXPECT_TRUE(v != nullptr)
            << "waiter must recover from the leader's failure";
    });
    // Give the waiter time to actually block on the flight before
    // triggering the leader's throw.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    waiter_ready.store(true);

    leader.join();
    waiter.join();

    EXPECT_EQ(attempts.load(), 2)
        << "failed leader + one promoted retry";
    FlightCache::Stats st = cache.stats();
    EXPECT_EQ(st.leader_failures, 1);
    EXPECT_EQ(st.retries, 1);
    EXPECT_EQ(st.compiles, 1);

    // The error was not cached: the key now maps to the good value.
    FlightOutcome o;
    EXPECT_TRUE(cache.get_or_compute(
                    key,
                    []() -> FlightCache::Value {
                        ADD_FAILURE() << "error must not be cached";
                        return nullptr;
                    },
                    in_ms(1000), o) != nullptr);
    EXPECT_EQ(o, FlightOutcome::kHit);
}

TEST(FlightCache, WaiterDeadlineExpiresWithoutKillingTheFlight)
{
    FlightCache cache(16, 64 << 20);
    const Digest key = digest_bytes("slow");

    std::atomic<bool> release{false};
    std::atomic<int> inside{0};
    std::thread leader([&] {
        FlightOutcome o;
        FlightCache::Value v = cache.get_or_compute(
            key,
            [&]() -> FlightCache::Value {
                inside.store(1);
                while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                return tiny_output();
            },
            in_ms(10000), o);
        EXPECT_TRUE(v != nullptr);
    });
    while (!inside.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Impatient waiter: 30ms deadline against a held flight.
    FlightOutcome o;
    FlightCache::Value v = cache.get_or_compute(
        key,
        []() -> FlightCache::Value {
            ADD_FAILURE() << "waiter must not become leader here";
            return nullptr;
        },
        in_ms(30), o);
    EXPECT_TRUE(v == nullptr);
    EXPECT_EQ(o, FlightOutcome::kTimeout);
    EXPECT_EQ(cache.stats().wait_timeouts, 1);

    release.store(true);
    leader.join();
    // The flight still completed and populated the cache.
    EXPECT_TRUE(cache.peek(key) != nullptr);
}

TEST(FlightCache, LruEvictsByEntriesAndBytes)
{
    FlightCache by_entries(2, 1 << 30);
    FlightOutcome o;
    for (int i = 0; i < 3; i++)
        by_entries.get_or_compute(
            digest_bytes("k" + std::to_string(i)),
            [] { return tiny_output(); }, in_ms(1000), o);
    FlightCache::Stats st = by_entries.stats();
    EXPECT_EQ(st.entries, 2);
    EXPECT_EQ(st.evictions, 1);
    // k0 was the coldest; k2 and k1 survive.
    EXPECT_TRUE(by_entries.peek(digest_bytes("k0")) == nullptr);
    EXPECT_TRUE(by_entries.peek(digest_bytes("k2")) != nullptr);

    // A byte cap far below two entries keeps only the newest.
    int64_t one = approx_output_bytes(*tiny_output());
    FlightCache by_bytes(16, one + one / 2);
    for (int i = 0; i < 3; i++)
        by_bytes.get_or_compute(
            digest_bytes("b" + std::to_string(i)),
            [] { return tiny_output(); }, in_ms(1000), o);
    EXPECT_EQ(by_bytes.stats().entries, 1);
    EXPECT_GE(by_bytes.stats().evictions, 2);
}

TEST(FlightCache, ConcurrentDistinctKeysDontSerialize)
{
    FlightCache cache(64, 1 << 30);
    constexpr int kThreads = 8;
    std::atomic<int> computes{0};
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; i++)
        ts.emplace_back([&, i] {
            FlightOutcome o;
            for (int k = 0; k < 50; k++) {
                FlightCache::Value v = cache.get_or_compute(
                    digest_bytes("key" + std::to_string(k % 10)),
                    [&]() -> FlightCache::Value {
                        computes.fetch_add(1);
                        return tiny_output();
                    },
                    in_ms(10000), o);
                EXPECT_TRUE(v != nullptr);
            }
        });
    for (auto &t : ts)
        t.join();
    // Single-flight may let two leaders race on distinct keys, but
    // every key compiles at least once and far fewer than per-call.
    EXPECT_GE(computes.load(), 10);
    EXPECT_LE(computes.load(), 10 + kThreads);
    FlightCache::Stats st = cache.stats();
    EXPECT_EQ(st.hits + st.waits + st.misses,
              kThreads * 50);
}

} // namespace
} // namespace serve
} // namespace raw
