/**
 * @file
 * Robustness property tests: malformed or randomly mutated inputs
 * must produce clean FatalError diagnostics — never crashes, hangs
 * or internal panics from the frontend; and randomly generated valid
 * programs must survive the whole pipeline.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/harness.hpp"

namespace raw {
namespace {

/** Compile must either succeed or throw FatalError — never crash or
 *  throw PanicError (which would indicate an internal bug). */
void
expect_clean(const std::string &src)
{
    try {
        compile_source(src, MachineConfig::base(4),
                       CompilerOptions{});
    } catch (const FatalError &) {
        // Clean user-facing diagnostic: fine.
    }
}

TEST(Fuzz, MalformedPrograms)
{
    const char *cases[] = {
        "",
        ";",
        "int",
        "int ;",
        "int x = ;",
        "print();",
        "print(1)",
        "int A[]; ",
        "int A[-1];",
        "int x; x = (1 + ;",
        "if (1) { ",
        "for (;;) { }",
        "int i; for (i = 0; i < 10; j = j + 1) { }",
        "int x; x = y;",
        "float f; int i; i = f;",
        "int A[4]; A[1][2] = 3;",
        "int x; x = 5 @ 3;",
        "/* unterminated",
        "int x; x = ((((((1))))));",
        "int sqrt; sqrt = 1;", // builtin name as variable is allowed
        "int x; x = sqrt(;",
    };
    for (const char *c : cases)
        expect_clean(c);
}

/** Token-level mutations of a valid program. */
TEST(Fuzz, MutatedValidProgram)
{
    const std::string base = R"(
int A[16];
int i; int s;
for (i = 0; i < 16; i = i + 1) { A[i] = i * 3; }
s = 0;
for (i = 0; i < 16; i = i + 1) { s = s + A[i]; }
print(s);
)";
    uint64_t rng = 12345;
    auto rnd = [&](int m) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return static_cast<int>(rng % static_cast<uint64_t>(m));
    };
    const char glyphs[] = "(){}[];=+-*/<>!&|^%a1 ";
    for (int trial = 0; trial < 200; trial++) {
        std::string s = base;
        int edits = 1 + rnd(4);
        for (int e = 0; e < edits; e++) {
            int pos = rnd(static_cast<int>(s.size()));
            switch (rnd(3)) {
              case 0:
                s[pos] = glyphs[rnd(sizeof(glyphs) - 1)];
                break;
              case 1:
                s.erase(pos, 1);
                break;
              default:
                s.insert(s.begin() + pos,
                         glyphs[rnd(sizeof(glyphs) - 1)]);
                break;
            }
        }
        expect_clean(s);
    }
}

/** Structured random generation: always-valid programs that must
 *  compile AND verify against the baseline on two machine sizes. */
TEST(Fuzz, RandomValidProgramsVerify)
{
    uint64_t rng = 777;
    auto rnd = [&](int m) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return static_cast<int>(rng % static_cast<uint64_t>(m));
    };
    for (int trial = 0; trial < 8; trial++) {
        std::ostringstream os;
        os << "int A[24];\nint i; int t;\n";
        os << "for (i = 0; i < 24; i = i + 1) { A[i] = (i * "
           << (1 + rnd(9)) << ") % " << (2 + rnd(7)) << "; }\n";
        for (int k = 0; k < 3 + rnd(4); k++) {
            switch (rnd(3)) {
              case 0:
                os << "for (i = " << rnd(3) << "; i < "
                   << (10 + rnd(14)) << "; i = i + " << (1 + rnd(2))
                   << ") { A[i] = A[i] * " << (1 + rnd(4)) << " + "
                   << rnd(5) << "; }\n";
                break;
              case 1:
                os << "t = A[" << rnd(24) << "];\n"
                   << "if (t > " << rnd(6) << ") { A[" << rnd(24)
                   << "] = t - 1; } else { A[" << rnd(24)
                   << "] = t + 1; }\n";
                break;
              default:
                os << "t = " << (3 + rnd(20)) << ";\n"
                   << "while (t > 1) { t = t - 2; }\n"
                   << "A[" << rnd(24) << "] = t;\n";
                break;
            }
        }
        os << "int cs;\ncs = 0;\n"
           << "for (i = 0; i < 24; i = i + 1) { cs = cs + A[i]; }\n"
           << "print(cs);\n";
        std::string src = os.str();
        RunResult base = run_baseline(src, "A");
        for (int n : {4, 16}) {
            RunResult par =
                run_rawcc(src, MachineConfig::base(n), "A");
            EXPECT_EQ(par.check_words, base.check_words)
                << "trial " << trial << " n " << n << "\n"
                << src;
            EXPECT_EQ(par.prints, base.prints)
                << "trial " << trial << " n " << n;
        }
    }
}

} // namespace
} // namespace raw
