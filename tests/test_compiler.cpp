/**
 * @file
 * Whole-compiler tests: the driver's statistics, ablation options,
 * program structure invariants of the emitted machine code, and the
 * machine-size sweep on small kernels.
 */

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "ir/builder.hpp"
#include "sim/disasm.hpp"

namespace raw {
namespace {

// Trip counts large enough that loops unroll rather than fully peel.
const char *kLoopy = R"(
int A[256];
int i; int s;
for (i = 0; i < 256; i = i + 1) { A[i] = i * 2; }
s = 0;
for (i = 0; i < 256; i = i + 1) { s = s + A[i]; }
print(s);
)";

TEST(Compiler, StatsPopulated)
{
    CompileOutput out =
        compile_source(kLoopy, MachineConfig::base(4),
                       CompilerOptions{});
    EXPECT_GT(out.stats.ir_instrs, 0);
    EXPECT_GT(out.stats.static_instrs, 0);
    EXPECT_FALSE(out.stats.block_makespan.empty());
    EXPECT_EQ(out.program.num_prints, 1);
    EXPECT_EQ(out.program.machine.n_tiles, 4);
    EXPECT_EQ(out.program.tiles.size(), 4u);
    EXPECT_EQ(out.program.switches.size(), 4u);
}

TEST(Compiler, EveryTileStreamEndsInHalt)
{
    CompileOutput out =
        compile_source(kLoopy, MachineConfig::base(8),
                       CompilerOptions{});
    for (const TileProgram &t : out.program.tiles) {
        ASSERT_FALSE(t.code.empty());
        bool has_halt = false;
        for (const PInstr &p : t.code)
            if (p.op == Op::kHalt)
                has_halt = true;
        EXPECT_TRUE(has_halt);
    }
}

TEST(Compiler, BranchTargetsInRange)
{
    CompileOutput out =
        compile_source(kLoopy, MachineConfig::base(8),
                       CompilerOptions{});
    for (const TileProgram &t : out.program.tiles)
        for (const PInstr &p : t.code)
            if (p.op == Op::kJump || p.op == Op::kBranch) {
                EXPECT_GE(p.target, 0);
                EXPECT_LT(p.target,
                          static_cast<int64_t>(t.code.size()));
            }
    for (const SwitchProgram &s : out.program.switches)
        for (const SInstr &in : s.code)
            if (in.k == SInstr::K::kJump ||
                in.k == SInstr::K::kBnez) {
                EXPECT_GE(in.target, 0);
                EXPECT_LT(in.target,
                          static_cast<int64_t>(s.code.size()));
            }
}

TEST(Compiler, RegisterIndicesInRange)
{
    MachineConfig m = MachineConfig::base(4);
    CompileOutput out = compile_source(kLoopy, m, CompilerOptions{});
    for (const TileProgram &t : out.program.tiles)
        for (const PInstr &p : t.code) {
            EXPECT_LT(p.dst, m.num_registers);
            EXPECT_LT(p.src[0], m.num_registers);
            EXPECT_LT(p.src[1], m.num_registers);
        }
    for (const SwitchProgram &s : out.program.switches)
        for (const SInstr &in : s.code) {
            EXPECT_LT(in.dst, m.num_switch_registers);
            EXPECT_LT(in.a, m.num_switch_registers);
            EXPECT_LT(in.b, m.num_switch_registers);
            for (const RoutePair &r : in.routes)
                EXPECT_LT(r.reg_dst, m.num_switch_registers);
        }
}

TEST(Compiler, CountedLoopsNeedNoBroadcast)
{
    CompileOutput out =
        compile_source(kLoopy, MachineConfig::base(4),
                       CompilerOptions{});
    EXPECT_EQ(out.stats.broadcast_branches, 0)
        << "constant-trip loops replicate control";
    EXPECT_GE(out.stats.replicated_branches, 1);
}

TEST(Compiler, DataDependentControlBroadcasts)
{
    const char *src = R"(
int A[8];
int i;
for (i = 0; i < 8; i = i + 1) { A[i] = i; }
int x;
x = A[5];
while (x > 0) { x = x - A[0]; }
print(x);
)";
    CompileOutput out = compile_source(src, MachineConfig::base(4),
                                       CompilerOptions{});
    EXPECT_GE(out.stats.broadcast_branches, 1);
}

TEST(Compiler, ReplicationAblationForcesBroadcast)
{
    CompilerOptions opts;
    opts.orch.enable_replication = false;
    CompileOutput out =
        compile_source(kLoopy, MachineConfig::base(4), opts);
    EXPECT_EQ(out.stats.replicated_branches, 0);
    EXPECT_GE(out.stats.broadcast_branches, 1);
    // And it still runs correctly.
    Simulator sim(out.program);
    SimResult r = sim.run();
    RunResult base = run_baseline(kLoopy);
    EXPECT_EQ(r.print_text(), base.prints);
}

TEST(Compiler, UnusedSwitchesStayEmpty)
{
    // One tile: no communication, so the switch program is empty and
    // the simulator halts it immediately.
    CompileOutput out =
        compile_source(kLoopy, MachineConfig::base(1),
                       CompilerOptions{});
    EXPECT_TRUE(out.program.switches[0].code.empty());
}

TEST(Compiler, CompileFunctionEntryPoint)
{
    Function fn;
    int b = fn.new_block("entry");
    IRBuilder ib(fn);
    ib.set_block(b);
    int arr = fn.new_array("A", Type::kI32, {4});
    ValueId idx = ib.const_int(2);
    ValueId v = ib.const_int(123);
    ib.store(arr, idx, v);
    ValueId x = ib.load(arr, idx);
    ib.print(x);
    ib.halt();
    CompileOutput out = compile_function(std::move(fn),
                                         MachineConfig::base(2),
                                         CompilerOptions{});
    Simulator sim(out.program);
    SimResult r = sim.run();
    ASSERT_EQ(r.prints.size(), 1u);
    EXPECT_EQ(bits_int(r.prints[0].bits), 123);
}

TEST(Compiler, VerifierCatchesMalformedInput)
{
    Function fn;
    fn.new_block("entry"); // empty block: no terminator
    EXPECT_THROW(compile_function(std::move(fn),
                                  MachineConfig::base(2),
                                  CompilerOptions{}),
                 PanicError);
}

/** Machine-size sweep over a mixed kernel. */
class MachineSweep : public ::testing::TestWithParam<int>
{};

TEST_P(MachineSweep, MixedKernelBitExact)
{
    const char *src = R"(
float V[40];
int P[40];
int i;
for (i = 0; i < 40; i = i + 1) {
  V[i] = (float)(i * 3 % 11) * 0.5;
  P[i] = (i * 7) % 13;
}
float acc; int chk;
acc = 0.0;
chk = 0;
for (i = 0; i < 40; i = i + 1) {
  if (P[i] > 6) {
    acc = acc + V[i] * V[i];
    chk = chk + 1;
  } else {
    acc = acc - V[i];
  }
}
print(acc);
print(chk);
)";
    int n = GetParam();
    RunResult base = run_baseline(src, "V");
    RunResult par = run_rawcc(src, MachineConfig::base(n), "V");
    EXPECT_EQ(par.prints, base.prints);
    EXPECT_EQ(par.check_words, base.check_words);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MachineSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

} // namespace
} // namespace raw
