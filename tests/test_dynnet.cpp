/**
 * @file
 * Dynamic wormhole network tests: header encoding, request/reply
 * round trips, handler serialization under contention, worm ordering,
 * and interaction with the static network.
 */

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "sim/simulator.hpp"

namespace raw {
namespace {

TEST(DynHeader, RoundTrip)
{
    for (int dst : {0, 3, 31, 1023}) {
        for (int src : {0, 7, 1023}) {
            for (int len : {0, 1, 2, 15}) {
                for (DynKind k :
                     {DynKind::kLoadReq, DynKind::kStoreReq,
                      DynKind::kLoadReply, DynKind::kStoreAck}) {
                    uint32_t h = dyn_header(dst, src, len, k);
                    EXPECT_EQ(dyn_hdr_dst(h), dst);
                    EXPECT_EQ(dyn_hdr_src(h), src);
                    EXPECT_EQ(dyn_hdr_len(h), len);
                    EXPECT_EQ(dyn_hdr_kind(h), k);
                }
            }
        }
    }
}

PInstr
pi(Op op, int dst = -1, int a = -1, int b = -1)
{
    PInstr p;
    p.op = op;
    p.dst = dst;
    p.src[0] = a;
    p.src[1] = b;
    return p;
}

CompiledProgram
skeleton(int n)
{
    CompiledProgram cp;
    cp.machine = MachineConfig::base(n);
    cp.tiles.resize(n);
    cp.switches.resize(n);
    cp.arrays.push_back({"A", Type::kI32, 0, 64});
    cp.total_words = 64;
    return cp;
}

/** Every tile dyn-stores then dyn-loads a remote word. */
TEST(DynNet, AllToOneContention)
{
    const int n = 8;
    CompiledProgram cp = skeleton(n);
    // Every tile writes A[7 + 8*t]... all homes on tile 7.
    for (int t = 0; t < n; t++) {
        PInstr addr = pi(Op::kConst, 1);
        addr.imm = int_bits(7 + 8 * t); // home 7 for every tile
        PInstr val = pi(Op::kConst, 2);
        val.imm = int_bits(100 + t);
        PInstr st = pi(Op::kDynStore, -1, 1, 2);
        st.array = 0;
        PInstr ld = pi(Op::kDynLoad, 3, 1);
        ld.array = 0;
        PInstr pr = pi(Op::kPrint, -1, 3);
        pr.print_seq = t;
        cp.tiles[t].code = {addr, val, st, ld, pr, pi(Op::kHalt)};
    }
    Simulator sim(cp);
    SimResult r = sim.run();
    ASSERT_EQ(r.prints.size(), static_cast<size_t>(n));
    for (int t = 0; t < n; t++)
        EXPECT_EQ(bits_int(r.prints[t].bits), 100 + t);
    // 2 messages per tile, all serialized at tile 7's handler.
    // Tile 7 finds its word local, so it sends no messages.
    EXPECT_EQ(r.dyn_messages, 2 * (n - 1));
    EXPECT_GT(r.cycles, 2 * (n - 1) * cp.machine.dyn_handler_cycles)
        << "handler serialization must show in the cycle count";
}

TEST(DynNet, LatencyGrowsWithDistance)
{
    // One dyn load from tile 0 to the far corner vs. a neighbor.
    auto run_one = [&](int n_tiles, int home) {
        CompiledProgram cp = skeleton(n_tiles);
        PInstr addr = pi(Op::kConst, 1);
        addr.imm = int_bits(home);
        PInstr ld = pi(Op::kDynLoad, 3, 1);
        ld.array = 0;
        cp.tiles[0].code = {addr, ld, pi(Op::kHalt)};
        for (int t = 1; t < n_tiles; t++)
            cp.tiles[t].code = {pi(Op::kHalt)};
        Simulator sim(cp);
        return sim.run().cycles;
    };
    int64_t near = run_one(32, 1);
    int64_t far = run_one(32, 31);
    EXPECT_GT(far, near + 6)
        << "round trip to the far corner crosses ~2x8 more links";
}

TEST(DynNet, StoreThenLoadSameTileOrdered)
{
    // A tile's own requests complete in order (it blocks on each),
    // so a dyn store followed by a dyn load of the same address
    // observes the stored value.
    CompiledProgram cp = skeleton(2);
    PInstr addr = pi(Op::kConst, 1);
    addr.imm = int_bits(9); // home 1
    PInstr v1 = pi(Op::kConst, 2);
    v1.imm = int_bits(41);
    PInstr st1 = pi(Op::kDynStore, -1, 1, 2);
    st1.array = 0;
    PInstr v2 = pi(Op::kConst, 2);
    v2.imm = int_bits(42);
    PInstr st2 = pi(Op::kDynStore, -1, 1, 2);
    st2.array = 0;
    PInstr ld = pi(Op::kDynLoad, 3, 1);
    ld.array = 0;
    PInstr pr = pi(Op::kPrint, -1, 3);
    pr.print_seq = 0;
    cp.tiles[0].code = {addr, v1, st1, v2, st2, ld, pr,
                        pi(Op::kHalt)};
    cp.tiles[1].code = {pi(Op::kHalt)};
    Simulator sim(cp);
    SimResult r = sim.run();
    EXPECT_EQ(bits_int(r.prints[0].bits), 42);
}

TEST(DynNet, MixedStaticAndDynamicProgram)
{
    // End-to-end: a program with an opaque index ensures both
    // networks carry traffic and the results stay bit-exact.
    const char *src = R"(
int A[64];
int idx; int i; int s;
idx = 0;
while (idx < 5) { idx = idx + 1; }
// idx == 5 but unknown to the compiler.
for (i = 0; i < 50; i = i + 1) {
  A[i + idx] = i * 3;
}
s = 0;
for (i = 5; i < 55; i = i + 1) {
  s = s + A[i];
}
print(s);
)";
    RunResult base = run_baseline(src, "A");
    for (int n : {2, 4, 16}) {
        RunResult par = run_rawcc(src, MachineConfig::base(n), "A");
        EXPECT_EQ(par.prints, base.prints) << n;
        EXPECT_EQ(par.check_words, base.check_words) << n;
        if (n > 1)
            EXPECT_GT(par.sim.dyn_messages, 0) << n;
    }
}

TEST(DynNet, FaultsDoNotChangeDynResults)
{
    const char *src = R"(
int A[32];
int k; int i;
k = 0;
while (k < 3) { k = k + 1; }
for (i = 0; i < 29; i = i + 1) {
  A[i + k] = i * i;
}
print(A[17]);
)";
    CompileOutput out =
        compile_source(src, MachineConfig::base(4), CompilerOptions{});
    std::string ref;
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        FaultConfig f;
        f.miss_rate = 0.4;
        f.penalty = 11;
        f.seed = seed;
        Simulator sim(out.program, f);
        std::string got = sim.run().print_text();
        if (ref.empty())
            ref = got;
        EXPECT_EQ(got, ref);
    }
}

TEST(DynNet, ReadModifyWriteRaceRegression)
{
    // Regression: bins[key[i]] += 1 is a loop-carried read-modify-
    // write through statically unanalyzable addresses.  Conservative
    // handling must pin every access of `bins` to one tile so the
    // cross-block order is the program order.
    const char *src = R"(
int key[40];
int bins[8];
int i;
for (i = 0; i < 8; i = i + 1) { bins[i] = 0; }
for (i = 0; i < 40; i = i + 1) { key[i] = (i * 7 + 2) % 8; }
for (i = 0; i < 40; i = i + 1) {
  bins[key[i]] = bins[key[i]] + 1;
}
int cs;
cs = 0;
for (i = 0; i < 8; i = i + 1) { cs = cs + bins[i] * (i + 1); }
print(cs);
)";
    RunResult base = run_baseline(src, "bins");
    for (int n : {2, 4, 8, 16, 32}) {
        RunResult par = run_rawcc(src, MachineConfig::base(n), "bins");
        EXPECT_EQ(par.check_words, base.check_words) << "n=" << n;
        EXPECT_EQ(par.prints, base.prints) << "n=" << n;
    }
}

} // namespace
} // namespace raw
