/**
 * @file
 * Transform tests: constant folding + DCE, software renaming,
 * CFG simplification, strength reduction, block splitting.
 */

#include <gtest/gtest.h>

#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "ir/verifier.hpp"
#include "transform/congruence.hpp"
#include "transform/constfold.hpp"
#include "transform/rename.hpp"
#include "transform/simplify.hpp"
#include "transform/split.hpp"
#include "transform/strength.hpp"

namespace raw {
namespace {

int
count_op(const Function &fn, Op op)
{
    int n = 0;
    for (const Block &b : fn.blocks)
        for (const Instr &in : b.instrs)
            if (in.op == op)
                n++;
    return n;
}

TEST(ConstFold, FoldsChains)
{
    Function fn;
    int b = fn.new_block("entry");
    IRBuilder ib(fn);
    ib.set_block(b);
    ValueId x = ib.const_int(6);
    ValueId y = ib.const_int(7);
    ValueId z = ib.emit(Op::kMul, Type::kI32, x, y);
    ValueId w = ib.emit(Op::kAdd, Type::kI32, z, z);
    ib.print(w);
    ib.halt();
    constfold_function(fn);
    // mul and add fold to constants; dead producers removed.
    EXPECT_EQ(count_op(fn, Op::kMul), 0);
    EXPECT_EQ(count_op(fn, Op::kAdd), 0);
    bool found84 = false;
    for (const Instr &in : fn.blocks[0].instrs)
        if (in.op == Op::kConst && bits_int(in.imm_bits) == 84)
            found84 = true;
    EXPECT_TRUE(found84);
}

TEST(ConstFold, VariableKill)
{
    // A variable's constness dies at reassignment.
    Program p = parse_program(R"(
int A[4];
int x;
x = 5;
A[0] = x;       // foldable index and value
x = A[1];       // x no longer constant
A[2] = x + 1;   // must keep the add
)");
    Function fn = lower_program(p);
    constfold_function(fn);
    EXPECT_GE(count_op(fn, Op::kAdd), 1);
}

TEST(ConstFold, KeepsSideEffects)
{
    Program p = parse_program("print(2 + 3);");
    Function fn = lower_program(p);
    constfold_function(fn);
    EXPECT_EQ(count_op(fn, Op::kPrint), 1);
}

TEST(Rename, SingleAssignmentWithTrailingWritebacks)
{
    Program p = parse_program(R"(
int a; int b;
a = 1;
b = a + 1;
a = b + 2;
b = a + 3;
print(b);
)");
    Function fn = lower_program(p);
    rename_function(fn);
    EXPECT_EQ(verify_function(fn), "");
    const Block &blk = fn.blocks[0];
    // All writes to a variable are trailing write-back moves, and
    // they come after every non-writeback instruction.
    bool seen_writeback = false;
    int writebacks = 0;
    for (size_t k = 0; k + 1 < blk.instrs.size(); k++) {
        const Instr &in = blk.instrs[k];
        bool wb = is_writeback(fn, in);
        if (wb) {
            seen_writeback = true;
            writebacks++;
        } else {
            EXPECT_FALSE(seen_writeback)
                << "non-writeback after writeback at " << k;
            if (in.has_dst())
                EXPECT_FALSE(fn.values[in.dst].is_var)
                    << "variable written mid-block";
        }
    }
    EXPECT_EQ(writebacks, 2) << "one write-back per written variable";
}

TEST(Rename, ReadsBecomeLiveInOnly)
{
    Program p = parse_program(R"(
int a;
a = 3;
a = a + a;
print(a);
)");
    Function fn = lower_program(p);
    rename_function(fn);
    // After renaming, `a` may appear as a source only before its
    // local redefinition... which renaming moved to the end, so the
    // print must read a temp, not the variable.
    const Block &blk = fn.blocks[0];
    for (const Instr &in : blk.instrs)
        if (in.op == Op::kPrint)
            EXPECT_FALSE(fn.values[in.src[0]].is_var);
}

TEST(Simplify, FoldsConstantBranches)
{
    Program p = parse_program(R"(
int x;
if (3 > 2) { x = 1; } else { x = 2; }
print(x);
)");
    Function fn = lower_program(p);
    constfold_function(fn);
    while (simplify_cfg(fn))
        constfold_function(fn);
    EXPECT_EQ(verify_function(fn), "");
    EXPECT_EQ(count_op(fn, Op::kBranch), 0);
    EXPECT_EQ(fn.blocks.size(), 1u) << "everything merges into entry";
}

TEST(Simplify, RemovesUnreachable)
{
    Program p = parse_program(R"(
int x;
x = 0;
if (1 == 0) { x = 99; }
print(x);
)");
    Function fn = lower_program(p);
    size_t before = fn.blocks.size();
    constfold_function(fn);
    while (simplify_cfg(fn))
        constfold_function(fn);
    EXPECT_LT(fn.blocks.size(), before);
    EXPECT_EQ(verify_function(fn), "");
}

TEST(Simplify, PreservesLoops)
{
    Program p = parse_program(R"(
int i; int s;
s = 0;
for (i = 0; i < 10; i = i + 1) { s = s + i; }
print(s);
)");
    Function fn = lower_program(p);
    constfold_function(fn);
    while (simplify_cfg(fn))
        constfold_function(fn);
    EXPECT_EQ(verify_function(fn), "");
    EXPECT_EQ(count_op(fn, Op::kBranch), 1) << "loop back-edge stays";
}

TEST(Strength, PowerOfTwoBecomesShift)
{
    Program p = parse_program(R"(
int A[4];
int x; int y;
x = A[0];
y = x * 32;
print(y);
)");
    Function fn = lower_program(p);
    constfold_function(fn);
    strength_reduce(fn);
    EXPECT_EQ(count_op(fn, Op::kMul), 0);
    EXPECT_GE(count_op(fn, Op::kShl), 1);
}

TEST(Strength, TwoTermDecompositions)
{
    for (const char *expr : {"x * 3", "x * 5", "x * 7", "x * 240",
                             "x * 17", "x * 96"}) {
        Program p = parse_program(std::string(R"(
int A[4];
int x; int y;
x = A[0];
y = )") + expr + "; print(y);");
        Function fn = lower_program(p);
        constfold_function(fn);
        strength_reduce(fn);
        EXPECT_EQ(count_op(fn, Op::kMul), 0) << expr;
    }
    // Three-plus-term constants stay as multiplies.
    Program p = parse_program(R"(
int A[4];
int x; int y;
x = A[0];
y = x * 73;  // 64 + 8 + 1: three terms
print(y);
)");
    Function fn = lower_program(p);
    constfold_function(fn);
    strength_reduce(fn);
    EXPECT_EQ(count_op(fn, Op::kMul), 1);
}

TEST(Strength, PreservesSemantics)
{
    // Exhaustive check of the rewrite against plain multiplication.
    for (int c : {1, 2, 3, 5, 7, 12, 15, 16, 17, 24, 48, 96, 240}) {
        Function fn;
        int b = fn.new_block("entry");
        int arr = fn.new_array("A", Type::kI32, {1});
        IRBuilder ib(fn);
        ib.set_block(b);
        ValueId z = ib.const_int(0);
        ib.store(arr, z, ib.const_int(-37));
        ValueId x = ib.load(arr, z);
        ValueId cc = ib.const_int(c);
        ValueId y = ib.emit(Op::kMul, Type::kI32, x, cc);
        ib.print(y);
        ib.halt();
        strength_reduce(fn);
        EXPECT_EQ(verify_function(fn), "") << c;
        // Interpret the block by hand.
        std::vector<uint32_t> vals(fn.values.size(), 0);
        uint32_t printed = 0;
        uint32_t mem = 0;
        for (const Instr &in : fn.blocks[0].instrs) {
            if (in.op == Op::kConst)
                vals[in.dst] = in.imm_bits;
            else if (in.op == Op::kStore)
                mem = vals[in.src[1]];
            else if (in.op == Op::kLoad)
                vals[in.dst] = mem;
            else if (in.op == Op::kPrint)
                printed = vals[in.src[0]];
            else if (in.has_dst()) {
                uint32_t out;
                ASSERT_TRUE(eval_op(in.op, vals[in.src[0]],
                                    in.src[1] >= 0 ? vals[in.src[1]]
                                                   : 0,
                                    out));
                vals[in.dst] = out;
            }
        }
        EXPECT_EQ(bits_int(printed), -37 * c) << c;
    }
}

TEST(Split, CutsLongBlocksAndPreservesFacts)
{
    Function fn;
    int b = fn.new_block("entry");
    int arr = fn.new_array("A", Type::kI32, {1024});
    ValueId iv = fn.new_value(Type::kI32, "i", true);
    fn.blocks[b].entry_facts.push_back({iv, Congruence::mod(0, 4)});
    IRBuilder ib(fn);
    ib.set_block(b);
    // A long chain with a value defined early and used late.
    ValueId early = ib.emit(Op::kAdd, Type::kI32, iv, iv);
    ValueId x = early;
    for (int k = 0; k < 100; k++)
        x = ib.emit(Op::kAdd, Type::kI32, x, iv);
    ValueId y = ib.emit(Op::kAdd, Type::kI32, early, x);
    ib.store(arr, y, y);
    ib.halt();

    int cuts = split_large_blocks(fn, 32);
    EXPECT_GT(cuts, 0);
    EXPECT_EQ(verify_function(fn), "");
    for (const Block &blk : fn.blocks)
        EXPECT_LE(blk.instrs.size(), 34u);
    // `early` crosses a cut: it must now be a variable.
    EXPECT_TRUE(fn.values[early].is_var);
    // The iv fact survives into continuation chunks (iv never
    // written), and the promoted value carries its own congruence.
    bool fact_in_later_chunk = false;
    for (size_t k = 1; k < fn.blocks.size(); k++)
        for (const EntryFact &f : fn.blocks[k].entry_facts)
            if (f.var == iv)
                fact_in_later_chunk = true;
    EXPECT_TRUE(fact_in_later_chunk);
}

TEST(Congruence, TracksThroughBlock)
{
    Function fn;
    int b = fn.new_block("entry");
    ValueId iv = fn.new_value(Type::kI32, "i", true);
    fn.blocks[b].entry_facts.push_back({iv, Congruence::mod(2, 8)});
    IRBuilder ib(fn);
    ib.set_block(b);
    ValueId c32 = ib.const_int(32);
    ValueId row = ib.emit(Op::kMul, Type::kI32, iv, c32);
    ValueId c3 = ib.const_int(3);
    ValueId idx = ib.emit(Op::kAdd, Type::kI32, row, c3);
    ValueId sh = ib.const_int(2);
    ValueId quad = ib.emit(Op::kShl, Type::kI32, iv, sh);
    ib.halt();

    CongruenceMap cm(fn, b);
    EXPECT_EQ(cm.get(iv).residue_mod(8), 2);
    EXPECT_EQ(cm.get(row).residue_mod(32), 0) << "i*32 == 0 mod 32";
    EXPECT_EQ(cm.get(idx).residue_mod(32), 3);
    EXPECT_EQ(cm.get(quad).residue_mod(32), 8) << "(i<<2) == 8 mod 32";
    EXPECT_EQ(cm.residue_mod(idx, 64), 3)
        << "i*32 == 64 (mod 256) makes idx known even mod 64";
    EXPECT_EQ(cm.residue_mod(idx, 512), -1) << "not known mod 512";
}

} // namespace
} // namespace raw
