/**
 * @file
 * Cross-tile modulo scheduling tests (--modulo, schedule/modulo.hpp)
 * and the small-block optimal oracle (--oracle-budget):
 *
 *  - loop_blocks finds exactly the blocks on CFG cycles;
 *  - a pipelined schedule is only adopted when its modeled
 *    steady-state II strictly beats the greedy schedule's, and the
 *    reported II is certified: every per-tile window, per-switch
 *    window (counting same-cycle hops as separate ROUTE slots) and
 *    wrap constraint holds at that II, and the mod-II projection of
 *    every reservation table stays conflict-free;
 *  - --modulo is semantics-neutral over the whole benchmark suite:
 *    identical prints and check arrays with the runtime checker
 *    (provenance + FIFO bounds) armed;
 *  - pipelined programs are bit-identical across --jobs widths and
 *    both simulator backends;
 *  - the oracle's incumbent is the greedy ordering, so its best
 *    makespan never exceeds the greedy makespan, and its greedy
 *    figure agrees with the schedule the compiler actually emitted.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/liveness.hpp"
#include "analysis/replication.hpp"
#include "analysis/taskgraph.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "frontend/unroll.hpp"
#include "harness/harness.hpp"
#include "rawcc/schedcache.hpp"
#include "schedule/modulo.hpp"
#include "schedule/oracle.hpp"
#include "sim/disasm.hpp"
#include "transform/congruence.hpp"
#include "transform/constfold.hpp"
#include "transform/rename.hpp"

namespace raw {
namespace {

// ---------------------------------------------------------------
// Unit harness: lower a loop program, build the task graph of one
// block, partition, derive paths, and schedule it with or without
// modulo scheduling — the same pipeline as test_schedule.cpp plus
// the loop analysis the orchestrater performs for --modulo.

struct LoopCtx
{
    Function fn;
    std::unique_ptr<ReplicationAnalysis> repl;
    std::unique_ptr<VarLiveness> live;
    HomeMap homes;
    MachineConfig machine;
    std::vector<uint8_t> on_cycle;
};

LoopCtx
make_ctx(const std::string &src, int n_tiles)
{
    LoopCtx c;
    Program prog = parse_program(src);
    // Unrolling disabled keeps the loop bodies rolled (small, one
    // iteration each) but still stamps every for statement's
    // loop_id, which lower_for forwards to Block::src_loop.
    UnrollOptions uo;
    uo.n_tiles = n_tiles;
    uo.enable = false;
    unroll_program(prog, uo);
    c.fn = lower_program(prog);
    constfold_function(c.fn);
    rename_function(c.fn);
    c.repl = std::make_unique<ReplicationAnalysis>(c.fn, 8, 12, true);
    c.live = std::make_unique<VarLiveness>(c.fn);
    c.homes.n_tiles = n_tiles;
    c.homes.var_home.assign(c.fn.values.size(), 0);
    int next = 0;
    for (ValueId v : c.fn.var_ids())
        if (!c.repl->var_replicated(v)) {
            c.homes.var_home[v] = next;
            next = (next + 1) % n_tiles;
        }
    int64_t off = 0;
    for (const ArrayInfo &a : c.fn.arrays) {
        c.homes.array_base.push_back(off);
        off += a.size();
    }
    c.machine = MachineConfig::base(n_tiles);
    c.on_cycle = loop_blocks(c.fn);
    return c;
}

struct BlockCtx
{
    std::unique_ptr<TaskGraph> graph;
    Partition part;
    std::vector<CommPath> paths;
    LoopPipelineInfo loop;
    BlockSchedule sched;
};

BlockCtx
schedule_one(LoopCtx &c, int b, bool modulo)
{
    BlockCtx bc;
    CongruenceMap cong(c.fn, b);
    bc.graph = std::make_unique<TaskGraph>(
        c.fn, b, c.machine, cong, *c.repl, *c.live, c.homes);
    bc.part =
        partition_taskgraph(*bc.graph, c.machine, PartitionOptions{});
    bc.paths =
        build_comm_paths(*bc.graph, bc.part, c.machine, -1, {});
    bc.loop = analyze_loop_block(c.fn, b, *bc.graph,
                                 c.on_cycle[b] != 0, 1, true);
    SchedOptions so;
    so.modulo = modulo;
    bc.sched = schedule_block_pipelined(*bc.graph, bc.part, c.machine,
                                        bc.paths, so, bc.loop);
    return bc;
}

/** Loop-body blocks (stamped with their source loop by lower_for). */
std::vector<int>
body_blocks(const LoopCtx &c)
{
    std::vector<int> out;
    for (size_t b = 0; b < c.fn.blocks.size(); b++)
        if (c.fn.blocks[b].src_loop >= 0 && c.on_cycle[b])
            out.push_back(static_cast<int>(b));
    return out;
}

// A cheap loop-carried chain (the accumulator) next to deep
// independent per-iteration work: the greedy scheduler sinks the
// accumulator's write-back to the end of the block, serializing
// iterations, which is exactly the shape modulo scheduling recovers.
// Constant indices keep every reference static (this harness runs
// the task graph without the orchestrater's dynamic-ref demotion).
const char *kAccLoop = R"(
float A[8];
float B[8];
int i; float s;
A[0] = 1.0; A[1] = 2.0; A[2] = 3.0; A[3] = 4.0;
A[4] = 5.0; A[5] = 6.0; A[6] = 7.0; A[7] = 8.0;
s = 0.0;
for (i = 0; i < 64; i = i + 1) {
  B[0] = (A[0] * 1.5 + 0.25) * A[1] + A[2];
  B[1] = (A[3] + 0.5) * A[4] - A[5];
  B[2] = A[6] * A[7] + A[0];
  s = s + 1.0;
}
print(s);
)";

// Two carried recurrences of different depths plus parallel work.
const char *kTwoChains = R"(
float A[8];
int i; float p; float q;
A[0] = 0.5; A[1] = 1.5; A[2] = 2.5; A[3] = 3.5;
A[4] = 4.5; A[5] = 5.5; A[6] = 6.5; A[7] = 0.25;
p = 1.0;
q = 0.0;
for (i = 0; i < 32; i = i + 1) {
  p = p * 0.99 + A[0];
  q = q + A[1] * A[2] - 0.001;
}
print(p);
print(q);
)";

// ---------------------------------------------------------------
// loop_blocks: exactly the blocks on CFG cycles.

TEST(Modulo, LoopBlocksFindsCycles)
{
    LoopCtx c = make_ctx(kAccLoop, 4);
    // Both for loops contribute cycle blocks; the straight-line
    // prologue and the body blocks disagree.
    int cyclic = 0;
    for (uint8_t v : c.on_cycle)
        cyclic += v;
    EXPECT_GT(cyclic, 0);
    EXPECT_LT(cyclic, static_cast<int>(c.fn.blocks.size()));
    EXPECT_GE(body_blocks(c).size(), 1u);
    for (int b : body_blocks(c))
        EXPECT_TRUE(c.on_cycle[b]);

    // A straight-line program has no loop blocks at all.
    LoopCtx line = make_ctx("int x; x = 1 + 2; print(x);\n", 4);
    for (uint8_t v : line.on_cycle)
        EXPECT_EQ(v, 0);
}

// ---------------------------------------------------------------
// Modulo never loses in the model, and MII bookkeeping is sound.

TEST(Modulo, NeverWorseThanGreedyModel)
{
    int adopted = 0;
    for (const char *src : {kAccLoop, kTwoChains}) {
        for (int n : {2, 4, 16}) {
            LoopCtx c = make_ctx(src, n);
            for (int b : body_blocks(c)) {
                BlockCtx greedy = schedule_one(c, b, false);
                BlockCtx piped = schedule_one(c, b, true);
                int64_t gii = steady_state_ii(
                    greedy.sched, *greedy.graph, greedy.part,
                    greedy.paths, greedy.loop);
                ASSERT_GE(piped.sched.mii, 1);
                EXPECT_EQ(piped.sched.mii,
                          std::max(std::max(piped.sched.res_mii,
                                            piped.sched.rec_mii),
                                   piped.sched.flat_mii));
                EXPECT_GE(piped.sched.ii, piped.sched.mii)
                    << "achieved II below its own lower bound";
                EXPECT_LE(piped.sched.ii, gii)
                    << "modulo must never lose to greedy, n=" << n;
                if (piped.sched.pipelined) {
                    adopted++;
                    EXPECT_LT(piped.sched.ii, gii)
                        << "adoption requires a strict model win";
                }
            }
        }
    }
    EXPECT_GT(adopted, 0)
        << "corpus must exercise at least one adopted pipeline";
}

// ---------------------------------------------------------------
// Certification: the reported II of an adopted schedule satisfies
// the full steady-state constraint system, re-derived here from the
// raw schedule data (not via the scheduler's own model).

TEST(Modulo, WindowWrapAndFifoInvariantsAtII)
{
    int checked = 0;
    for (const char *src : {kAccLoop, kTwoChains}) {
        for (int n : {2, 4, 16}) {
            LoopCtx c = make_ctx(src, n);
            for (int b : body_blocks(c)) {
                BlockCtx bc = schedule_one(c, b, true);
                const BlockSchedule &s = bc.sched;
                if (!s.pipelined)
                    continue;
                checked++;
                int64_t ii = s.ii;
                // The public model agrees with the reported II.
                EXPECT_EQ(steady_state_ii(s, *bc.graph, bc.part,
                                          bc.paths, bc.loop),
                          ii);
                // Per-tile windows: span + control tail fits in II.
                for (int t = 0; t < n; t++) {
                    const auto &tile = s.tiles[t];
                    if (tile.empty())
                        continue;
                    int64_t span = tile.back().cycle -
                                   tile.front().cycle + 1;
                    EXPECT_LE(span + bc.loop.proc_tail, ii)
                        << "tile window overflows II, tile " << t;
                    // Mod-II issue slots stay exclusive, so the
                    // periodic repetition never double-books a
                    // processor cycle.
                    std::set<int64_t> mod;
                    for (const TileItem &it : tile)
                        EXPECT_TRUE(
                            mod.insert(it.cycle % ii).second)
                            << "mod-II slot collision, tile " << t;
                }
                // Per-switch windows: same-cycle hops are separate
                // ROUTE instructions, so the stream length binds the
                // period along with the flat span; mod-II port
                // reservations stay exclusive (this is what keeps
                // cross-iteration words within the FIFO bounds).
                for (int t = 0; t < n; t++) {
                    const auto &sw = s.switches[t];
                    if (sw.empty())
                        continue;
                    int64_t span =
                        std::max(sw.back().cycle -
                                     sw.front().cycle + 1,
                                 static_cast<int64_t>(sw.size()));
                    EXPECT_LE(span + bc.loop.sw_tail, ii)
                        << "switch window overflows II, tile " << t;
                    std::map<int64_t, uint8_t> in_used, out_used;
                    for (const SwitchItem &it : sw) {
                        int64_t m = it.cycle % ii;
                        uint8_t in_bit = static_cast<uint8_t>(
                            1u << static_cast<int>(it.in));
                        EXPECT_EQ(in_used[m] & in_bit, 0)
                            << "mod-II input port reuse, tile " << t;
                        EXPECT_EQ(out_used[m] & it.out_mask, 0)
                            << "mod-II output port reuse, tile "
                            << t;
                        in_used[m] |= in_bit;
                        out_used[m] |= it.out_mask;
                    }
                }
            }
        }
    }
    EXPECT_GT(checked, 0)
        << "corpus must exercise at least one adopted pipeline";
}

// ---------------------------------------------------------------
// End to end: --modulo trades cycles, never results.  Checker armed.

TEST(Modulo, OnOffDifferentialBitExact)
{
    CheckConfig checks;
    checks.provenance = true;
    checks.fifo_bounds = true;
    MachineConfig m = MachineConfig::base(16);
    for (const BenchmarkProgram &prog : benchmark_suite()) {
        RunResult off =
            run_rawcc(prog.source, m, prog.check_array,
                      CompilerOptions{}, FaultConfig{}, checks);
        CompilerOptions mod;
        mod.orch.sched.modulo = true;
        RunResult on = run_rawcc(prog.source, m, prog.check_array,
                                 mod, FaultConfig{}, checks);
        EXPECT_EQ(on.prints, off.prints) << prog.name;
        EXPECT_EQ(on.check_words, off.check_words) << prog.name;
    }
}

// ---------------------------------------------------------------
// Determinism: a pipelined compile is bit-identical across --jobs
// widths, and the program runs identically under both simulator
// backends with the checker armed (prov_hash included in the diff).

TEST(Modulo, PipelinedBitIdenticalAcrossJobsAndBackends)
{
    const BenchmarkProgram &prog = benchmark("life");
    MachineConfig m = MachineConfig::base(16);
    CompilerOptions opts;
    opts.orch.sched.modulo = true;

    CompileOutput serial = compile_source(prog.source, m, opts);
    bool any_pipelined = false;
    for (const BlockPipelineStats &p :
         serial.stats.block_pipeline)
        any_pipelined |= p.pipelined;
    EXPECT_TRUE(any_pipelined)
        << "life\'s loops must pipeline at 16 tiles";

    for (int jobs : {2, 4}) {
        CompilerOptions par = opts;
        par.orch.jobs = jobs;
        SchedCache::instance().clear_memory();
        CompileOutput out = compile_source(prog.source, m, par);
        EXPECT_EQ(disasm_program(out.program),
                  disasm_program(serial.program))
            << "jobs=" << jobs;
    }

    CheckConfig checks;
    checks.provenance = true;
    checks.fifo_bounds = true;
    // Throws on the first divergent field (including prov_hash).
    SimResult r =
        diff_sim_backends(serial.program, FaultConfig{}, checks);
    EXPECT_GT(r.cycles, 0);
    EXPECT_NE(r.prov_hash, 0u);
}

// ---------------------------------------------------------------
// Oracle: greedy is the incumbent, so best <= greedy always; its
// greedy figure agrees with the emitted schedule; reports only
// appear for blocks within the task limit.

// Small enough (a handful of compute nodes and paths) to sit within
// kOracleTaskLimit on every block.
const char *kTinyOracle = R"(
float a; float b;
a = 1.5;
b = a * 2.0 + a;
print(b);
)";

TEST(Oracle, BestNeverWorseAndAgreesWithGreedy)
{
    CompilerOptions opts;
    opts.orch.sched.oracle_budget = 200000;
    CompileOutput out = compile_source(
        kTinyOracle, MachineConfig::base(2), opts);
    ASSERT_FALSE(out.stats.oracle_reports.empty())
        << "small loop blocks must be within the oracle task limit";
    for (const OracleReport &r : out.stats.oracle_reports) {
        EXPECT_LE(r.best_makespan, r.greedy_makespan)
            << "block " << r.block;
        EXPECT_LE(r.tasks, kOracleTaskLimit);
        EXPECT_GT(r.states, 0);
        ASSERT_GE(r.block, 0);
        ASSERT_LT(static_cast<size_t>(r.block),
                  out.stats.block_makespan.size());
        EXPECT_EQ(r.greedy_makespan,
                  out.stats.block_makespan[r.block])
            << "oracle incumbent must be the emitted schedule";
    }
}

TEST(Oracle, ZeroBudgetProducesNoReports)
{
    CompilerOptions opts;
    opts.orch.sched.oracle_budget = 0;
    CompileOutput out = compile_source(
        kTinyOracle, MachineConfig::base(2), opts);
    EXPECT_TRUE(out.stats.oracle_reports.empty());
}

} // namespace
} // namespace raw
