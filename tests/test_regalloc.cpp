/**
 * @file
 * Register allocator tests: persistent vs. temporary classes, spill
 * insertion under pressure, and end-to-end correctness with tiny
 * register files.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/harness.hpp"
#include "rawcc/regalloc.hpp"

namespace raw {
namespace {

TEST(Regalloc, NoSpillsWhenRegistersSuffice)
{
    Function fn;
    ValueId a = fn.new_value(Type::kI32, "a", true);
    std::vector<std::vector<VInstr>> blocks(1);
    VInstr c;
    c.op = Op::kConst;
    c.dst = a;
    c.imm = int_bits(5);
    blocks[0].push_back(c);
    VInstr h;
    h.op = Op::kHalt;
    blocks[0].push_back(h);
    RegallocResult r = allocate_registers(fn, blocks, {a}, 32);
    EXPECT_EQ(r.spill_ops, 0);
    EXPECT_EQ(r.spill_slots, 0);
    EXPECT_EQ(r.blocks[0].size(), 2u);
}

TEST(Regalloc, TempPressureSpills)
{
    // 40 simultaneously-live temps cannot fit in 16 registers.
    Function fn;
    std::vector<std::vector<VInstr>> blocks(1);
    std::vector<ValueId> temps;
    for (int i = 0; i < 40; i++) {
        ValueId t = fn.new_value(Type::kI32);
        temps.push_back(t);
        VInstr c;
        c.op = Op::kConst;
        c.dst = t;
        c.imm = int_bits(i);
        blocks[0].push_back(c);
    }
    // Consume them all afterwards so every interval overlaps.
    ValueId acc = fn.new_value(Type::kI32);
    VInstr c0;
    c0.op = Op::kConst;
    c0.dst = acc;
    blocks[0].push_back(c0);
    for (ValueId t : temps) {
        ValueId next = fn.new_value(Type::kI32);
        VInstr add;
        add.op = Op::kAdd;
        add.dst = next;
        add.src[0] = acc;
        add.src[1] = t;
        blocks[0].push_back(add);
        acc = next;
    }
    VInstr h;
    h.op = Op::kHalt;
    blocks[0].push_back(h);

    RegallocResult r = allocate_registers(fn, blocks, {}, 16);
    EXPECT_GT(r.spill_ops, 0);
    EXPECT_GT(r.spill_slots, 0);
    // Every physical register index stays within bounds.
    for (const PInstr &p : r.blocks[0]) {
        EXPECT_LT(p.dst, 16);
        EXPECT_LT(p.src[0], 16);
        EXPECT_LT(p.src[1], 16);
    }
}

TEST(Regalloc, ManyPersistentVarsGoMemoryResident)
{
    Function fn;
    std::vector<ValueId> vars;
    std::vector<std::vector<VInstr>> blocks(1);
    for (int i = 0; i < 60; i++) {
        ValueId v =
            fn.new_value(Type::kI32, "v" + std::to_string(i), true);
        vars.push_back(v);
        VInstr c;
        c.op = Op::kConst;
        c.dst = v;
        c.imm = int_bits(i);
        blocks[0].push_back(c);
    }
    VInstr h;
    h.op = Op::kHalt;
    blocks[0].push_back(h);
    RegallocResult r = allocate_registers(fn, blocks, vars, 32);
    EXPECT_GT(r.spill_slots, 0) << "60 vars cannot all live in regs";
    EXPECT_GT(r.spill_ops, 0);
}

/** End-to-end pressure sweep: reduced register files still compute
 *  the right answer, just with more spill traffic. */
class RegisterSweep : public ::testing::TestWithParam<int>
{};

TEST_P(RegisterSweep, CorrectUnderPressure)
{
    int regs = GetParam();
    // Wide FP block with many live values.
    std::ostringstream src;
    src << "float A[24];\nint i;\n";
    src << "for (i = 0; i < 24; i = i + 1) { A[i] = (float)(i + 1); }\n";
    for (int k = 0; k < 12; k++)
        src << "float x" << k << ";\n"
            << "x" << k << " = A[" << k << "] * A[" << (k + 12)
            << "] + " << k << ".5;\n";
    src << "float s;\ns = 0.0;\n";
    for (int k = 0; k < 12; k++)
        src << "s = s + x" << k << ";\n";
    src << "print(s);\n";

    RunResult base = run_baseline(src.str());
    MachineConfig m = MachineConfig::base(4);
    m.num_registers = regs;
    CompilerOptions opts;
    RunResult par = run_rawcc(src.str(), m, "", opts);
    EXPECT_EQ(par.prints, base.prints) << regs << " registers";
    if (regs <= 12)
        EXPECT_GT(par.stats.spill_ops, 0);
}

INSTANTIATE_TEST_SUITE_P(Pressure, RegisterSweep,
                         ::testing::Values(10, 12, 16, 24, 32, 64));

TEST(Regalloc, InfRegEliminatesSpills)
{
    const BenchmarkProgram &prog = benchmark("fpppp-kernel");
    RunResult base32 = run_rawcc(prog.source, MachineConfig::base(1),
                                 prog.check_array);
    RunResult inf = run_rawcc(prog.source, MachineConfig::inf_reg(1),
                              prog.check_array);
    EXPECT_EQ(inf.stats.spill_ops, 0);
    EXPECT_EQ(inf.check_words, base32.check_words);
    EXPECT_LE(inf.cycles, base32.cycles)
        << "no register pressure can only help";
}

} // namespace
} // namespace raw
