/**
 * @file
 * Profiling-layer tests: cycle categories sum exactly to the total
 * cycle count on every tile, single-tile runs see no network stalls,
 * trace spans are well-formed and monotone, the Fifo visibility
 * invariants are enforced, dynamic-network contention counters move,
 * the deadlock diagnostic names the stall reason, and the CLI
 * round-trips --profile / --trace-out.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "sim/profile.hpp"

namespace raw {
namespace {

const char *kSmallLoop = R"(
int A[16];
int i; int s;
s = 0;
for (i = 0; i < 16; i = i + 1) {
  A[i] = i * 3 + 1;
}
for (i = 0; i < 16; i = i + 1) {
  s = s + A[i];
}
print(s);
)";

/** Every tile's category counts must sum exactly to the run total. */
void
expect_profile_consistent(const RunResult &r, int n_tiles)
{
    const SimProfile &p = r.sim.profile;
    ASSERT_EQ(static_cast<int>(p.tiles.size()), n_tiles);
    int64_t issued_total = 0;
    for (int t = 0; t < n_tiles; t++) {
        const TileProfile &tp = p.tiles[t];
        EXPECT_EQ(tp.proc_total(), r.cycles)
            << "proc categories must sum to cycles on tile " << t;
        EXPECT_EQ(tp.switch_total(), r.cycles)
            << "switch categories must sum to cycles on tile " << t;
        // Every retired instruction lands in exactly one histogram
        // class, and every issue cycle retires one instruction.
        int64_t hist = 0;
        for (int64_t v : tp.issued)
            hist += v;
        EXPECT_EQ(hist,
                  tp.proc_cycles[static_cast<int>(
                      ProcCycle::kIssued)])
            << "histogram must match issued cycles on tile " << t;
        issued_total += hist;
    }
    // kHalt retires into the histogram but is not counted in
    // instrs_executed, at most once per tile.
    EXPECT_GE(issued_total, r.sim.instrs_executed);
    EXPECT_LE(issued_total, r.sim.instrs_executed + n_tiles);
}

TEST(Profile, CategoriesSumToTotalCyclesPerTile)
{
    for (int n : {1, 2, 4}) {
        RunResult r = run_rawcc(kSmallLoop, MachineConfig::base(n));
        expect_profile_consistent(r, n);
    }
}

TEST(Profile, CategoriesSumOnRealBenchmark)
{
    const BenchmarkProgram &prog = benchmark("jacobi");
    RunResult r =
        run_rawcc(prog.source, MachineConfig::base(4),
                  prog.check_array);
    expect_profile_consistent(r, 4);
    // A multi-tile run of a real benchmark must communicate.
    int64_t comm = 0;
    for (const TileProfile &tp : r.sim.profile.tiles)
        comm += tp.issued[static_cast<int>(OpClass::kComm)] +
                tp.words_routed;
    EXPECT_GT(comm, 0);
}

TEST(Profile, SingleTileRunHasNoNetworkStalls)
{
    RunResult r = run_rawcc(kSmallLoop, MachineConfig::base(1));
    const TileProfile &tp = r.sim.profile.tiles[0];
    EXPECT_EQ(tp.proc_cycles[static_cast<int>(
                  ProcCycle::kSendBlocked)],
              0);
    EXPECT_EQ(tp.proc_cycles[static_cast<int>(
                  ProcCycle::kRecvBlocked)],
              0);
    EXPECT_EQ(tp.proc_cycles[static_cast<int>(ProcCycle::kMemWait)],
              0);
    EXPECT_EQ(tp.words_routed, 0);
    EXPECT_EQ(tp.dyn_requests_served, 0);
}

TEST(Profile, SchedulerEstimateSurfaced)
{
    CompileOutput out = compile_source(
        kSmallLoop, MachineConfig::base(4), CompilerOptions{});
    EXPECT_GT(out.stats.estimated_makespan(), 0);
    ASSERT_EQ(out.stats.est_tile_busy.size(), 4u);
    int64_t busy = 0;
    for (int64_t v : out.stats.est_tile_busy)
        busy += v;
    EXPECT_GT(busy, 0);
    EXPECT_GE(out.stats.timings.total_ms, 0.0);
}

TEST(Profile, TraceSpansMonotoneAndComplete)
{
    CompileOutput out = compile_source(
        kSmallLoop, MachineConfig::base(2), CompilerOptions{});
    Simulator sim(out.program);
    sim.set_trace_enabled(true);
    SimResult r = sim.run();
    ASSERT_TRUE(r.profile.trace_enabled);
    for (const auto &spans :
         {r.profile.proc_spans, r.profile.switch_spans}) {
        ASSERT_EQ(spans.size(), 2u);
        for (const std::vector<TraceSpan> &track : spans) {
            int64_t covered = 0;
            int64_t prev_end = 0;
            for (const TraceSpan &s : track) {
                EXPECT_LT(s.begin, s.end);
                EXPECT_EQ(s.begin, prev_end)
                    << "spans must tile the timeline gaplessly";
                prev_end = s.end;
                covered += s.end - s.begin;
            }
            EXPECT_EQ(covered, r.cycles)
                << "spans must cover every cycle";
        }
    }
}

TEST(Profile, ChromeTraceJsonIsWellFormed)
{
    CompileOutput out = compile_source(
        kSmallLoop, MachineConfig::base(2), CompilerOptions{});
    Simulator sim(out.program);
    sim.set_trace_enabled(true);
    SimResult r = sim.run();
    std::string json = chrome_trace_json(r.profile);
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"tile0.proc\""), std::string::npos);
    EXPECT_NE(json.find("\"tile1.switch\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Balanced-ish sanity: equal open and close braces.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    // Untraced runs must refuse to export a trace.
    Simulator cold(out.program);
    SimResult rc = cold.run();
    EXPECT_THROW(chrome_trace_json(rc.profile), PanicError);
}

TEST(Profile, DynamicNetworkCountersMove)
{
    // A load whose home is the other tile goes over the dynamic
    // network: requester waits, home tile's handler serves.
    CompiledProgram cp;
    cp.machine = MachineConfig::base(2);
    cp.tiles.resize(2);
    cp.switches.resize(2);
    cp.arrays.push_back({"A", Type::kI32, 0, 8});
    cp.total_words = 8;
    PInstr addr;
    addr.op = Op::kConst;
    addr.dst = 1;
    addr.imm = int_bits(3); // odd address: homed on tile 1
    PInstr ld;
    ld.op = Op::kDynLoad;
    ld.dst = 2;
    ld.src[0] = 1;
    ld.array = 0;
    PInstr halt;
    halt.op = Op::kHalt;
    cp.tiles[0].code = {addr, ld, halt};
    cp.tiles[1].code = {halt};
    Simulator sim(cp);
    SimResult r = sim.run();
    const TileProfile &req = r.profile.tiles[0];
    const TileProfile &home = r.profile.tiles[1];
    EXPECT_GT(req.proc_cycles[static_cast<int>(ProcCycle::kMemWait)],
              0);
    EXPECT_EQ(home.dyn_requests_served, 1);
    EXPECT_GT(home.dyn_handler_busy, 0);
    EXPECT_EQ(req.proc_total(), r.cycles);
    EXPECT_EQ(home.proc_total(), r.cycles);
}

TEST(Fifo, PushWithoutSpacePanics)
{
    Fifo f(1);
    f.push(0, 1);
    EXPECT_THROW(f.push(0, 2), PanicError);
}

TEST(Fifo, SameCyclePopPanics)
{
    // A value pushed in cycle t must not be poppable before t+1:
    // pop() without a can_pop()-visible word is a simulator bug.
    Fifo f(2);
    f.push(0, 7);
    EXPECT_FALSE(f.can_pop(0));
    EXPECT_THROW(f.pop(0), PanicError);
    EXPECT_THROW(f.front(0), PanicError);
    EXPECT_TRUE(f.can_pop(1));
    EXPECT_EQ(f.pop(1), 7u);
}

TEST(Fifo, FreedSpaceNotReusableSameCycle)
{
    Fifo f(1);
    f.push(0, 1);
    EXPECT_EQ(f.pop(1), 1u);
    // Space freed by the pop opens at the next cycle edge.
    EXPECT_THROW(f.push(1, 2), PanicError);
    f.push(2, 2);
}

TEST(Deadlock, DiagnosticNamesStallReason)
{
    // Two processors that both receive before sending (cycle), as in
    // test_sim, but assert on the enriched diagnostic.
    CompiledProgram cp;
    cp.machine = MachineConfig::base(2);
    cp.tiles.resize(2);
    cp.switches.resize(2);
    cp.total_words = 4;
    PInstr recv;
    recv.op = Op::kRecv;
    recv.dst = 1;
    PInstr halt;
    halt.op = Op::kHalt;
    cp.tiles[0].code = {recv, halt};
    cp.tiles[1].code = {recv, halt};
    SInstr h;
    h.k = SInstr::K::kHalt;
    cp.switches[0].code = {h};
    cp.switches[1].code = {h};
    try {
        Simulator sim(cp);
        sim.run();
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("proc0@pc0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("recv-blocked"), std::string::npos) << msg;
    }
}

#ifdef RAWCC_BIN
TEST(ProfileCli, ProfileAndTraceRoundTrip)
{
    std::string trace = "test_profile_cli_trace.json";
    std::string cmd = std::string(RAWCC_BIN) +
                      " --tiles 2 --profile --trace-out " + trace +
                      " jacobi > test_profile_cli_out.txt 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    std::ifstream out("test_profile_cli_out.txt");
    std::stringstream ss;
    ss << out.rdbuf();
    std::string text = ss.str();
    EXPECT_NE(text.find("processor occupancy"), std::string::npos);
    EXPECT_NE(text.find("issue histogram"), std::string::npos);
    std::ifstream tf(trace);
    ASSERT_TRUE(tf.good()) << "trace file must exist";
    std::stringstream ts;
    ts << tf.rdbuf();
    EXPECT_NE(ts.str().find("\"thread_name\""), std::string::npos);
    std::remove(trace.c_str());
    std::remove("test_profile_cli_out.txt");
}

TEST(ProfileCli, RejectsGarbageNumerics)
{
    // Exit status must be nonzero and the machine must not run.
    std::string base = std::string(RAWCC_BIN);
    EXPECT_NE(std::system((base + " --tiles x jacobi "
                                  "> /dev/null 2>&1")
                              .c_str()),
              0);
    EXPECT_NE(std::system((base + " --tiles 0 jacobi "
                                  "> /dev/null 2>&1")
                              .c_str()),
              0);
    EXPECT_NE(std::system((base + " --miss-rate 2.0 jacobi "
                                  "> /dev/null 2>&1")
                              .c_str()),
              0);
    EXPECT_NE(std::system((base + " --miss-penalty -3 jacobi "
                                  "> /dev/null 2>&1")
                              .c_str()),
              0);
}
#endif

} // namespace
} // namespace raw
