/**
 * @file
 * Block-schedule cache tests: key canonicalization (alpha-equivalent
 * blocks hit, scheduling-relevant option changes miss), warm-compile
 * identity, the on-disk tier (survival across a simulated restart,
 * corruption and truncation recovery, concurrent reader/writer/vandal
 * stress, stale-temp sweeping), cache-dir validation, and the PGO
 * candidate dedupe built on options_fingerprint().
 */

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "rawcc/schedcache.hpp"
#include "sim/disasm.hpp"
#include "support/error.hpp"

namespace raw {
namespace {

namespace fs = std::filesystem;

// Two loops plus a data-dependent branch: enough blocks to exercise
// partition and schedule entries, small enough to compile fast.
const char *kProg = R"(
int A[64];
int i; int s;
for (i = 0; i < 64; i = i + 1) { A[i] = i * 3; }
s = 0;
for (i = 0; i < 64; i = i + 1) {
  if (A[i] > 90) { s = s + A[i]; }
}
print(s);
)";

// kProg with every identifier renamed; lowers to alpha-equivalent IR.
const char *kProgRenamed = R"(
int B[64];
int j; int t;
for (j = 0; j < 64; j = j + 1) { B[j] = j * 3; }
t = 0;
for (j = 0; j < 64; j = j + 1) {
  if (B[j] > 90) { t = t + B[j]; }
}
print(t);
)";

CompileOutput
compile_with(const char *src, CompilerOptions opts)
{
    return compile_source(src, MachineConfig::base(4), opts);
}

/** Unique empty scratch directory under the test temp root. */
std::string
fresh_dir(const char *tag)
{
    fs::path d = fs::path(::testing::TempDir()) /
                 (std::string("rawsc_") + tag + "_" +
                  std::to_string(::getpid()));
    fs::remove_all(d);
    fs::create_directories(d);
    return d.string();
}

TEST(SchedCache, WarmRecompileHitsEverything)
{
    SchedCache::instance().clear_memory();
    CompilerOptions opts;
    CompileOutput cold = compile_with(kProg, opts);
    EXPECT_GT(cold.stats.cache.part_misses, 0);
    EXPECT_GT(cold.stats.cache.sched_misses, 0);

    CompileOutput warm = compile_with(kProg, opts);
    EXPECT_EQ(warm.stats.cache.part_misses, 0);
    EXPECT_EQ(warm.stats.cache.sched_misses, 0);
    EXPECT_GT(warm.stats.cache.part_hits, 0);
    EXPECT_GT(warm.stats.cache.sched_hits, 0);
    EXPECT_EQ(disasm_program(warm.program),
              disasm_program(cold.program));
}

TEST(SchedCache, AlphaEquivalentSourcesShareEntries)
{
    SchedCache::instance().clear_memory();
    CompilerOptions opts;
    CompileOutput a = compile_with(kProg, opts);
    // Identifier names never enter the cache key, so the renamed
    // program must be a full hit of the first compile.
    CompileOutput b = compile_with(kProgRenamed, opts);
    EXPECT_EQ(b.stats.cache.part_misses, 0);
    EXPECT_EQ(b.stats.cache.sched_misses, 0);
    EXPECT_EQ(b.program.tiles.size(), a.program.tiles.size());
}

TEST(SchedCache, SchedOptionChangeMissesScheduleOnly)
{
    SchedCache::instance().clear_memory();
    CompilerOptions opts;
    compile_with(kProg, opts);

    CompilerOptions changed = opts;
    changed.orch.sched.level_weight *= 2;
    CompileOutput c = compile_with(kProg, changed);
    // Partition entries are keyed only on partition-relevant inputs,
    // so they survive a scheduler priority change; schedule entries
    // must not.
    EXPECT_EQ(c.stats.cache.part_misses, 0);
    EXPECT_GT(c.stats.cache.sched_misses, 0);
}

// The modulo-scheduling knobs are schedule-stage inputs: every one
// of them must churn the schedule key (a cached greedy schedule must
// never satisfy a --modulo compile or vice versa), and none of them
// may touch the partition key.
TEST(SchedCache, ModuloKnobsChangeScheduleKey)
{
    BlockKey pk;
    pk.h1 = 0x1234567890abcdefULL;
    pk.h2 = 0xfedcba0987654321ULL;
    std::vector<bool> sw = {true, false, true, true};
    auto key = [&](const SchedOptions &so) {
        BlockKey k = block_schedule_key(pk, so, sw);
        return std::make_pair(k.h1, k.h2);
    };

    SchedOptions base;
    auto base_key = key(base);
    EXPECT_EQ(key(base), base_key) << "key must be deterministic";

    SchedOptions m = base;
    m.modulo = !m.modulo;
    EXPECT_NE(key(m), base_key) << "--modulo must churn the key";

    SchedOptions c = base;
    c.mii_cap = base.mii_cap * 2;
    EXPECT_NE(key(c), base_key) << "--mii-cap must churn the key";

    SchedOptions o = base;
    o.oracle_budget = base.oracle_budget + 50000;
    EXPECT_NE(key(o), base_key)
        << "--oracle-budget must churn the key";

    // All three knobs produce mutually distinct keys.
    std::set<std::pair<uint64_t, uint64_t>> keys = {
        base_key, key(m), key(c), key(o)};
    EXPECT_EQ(keys.size(), 4u);
}

TEST(SchedCache, ModuloChangeMissesScheduleOnly)
{
    SchedCache::instance().clear_memory();
    CompilerOptions opts;
    compile_with(kProg, opts);

    CompilerOptions changed = opts;
    changed.orch.sched.modulo = true;
    CompileOutput c = compile_with(kProg, changed);
    // Partitions are schedule-agnostic; the schedule tier must be
    // recomputed under pipelining.
    EXPECT_EQ(c.stats.cache.part_misses, 0);
    EXPECT_GT(c.stats.cache.sched_misses, 0);

    // And the pipelined entries hit on a warm recompile.
    CompileOutput warm = compile_with(kProg, changed);
    EXPECT_EQ(warm.stats.cache.sched_misses, 0);
    EXPECT_EQ(disasm_program(warm.program),
              disasm_program(c.program));
}

TEST(SchedCache, PartitionOptionChangeMisses)
{
    SchedCache::instance().clear_memory();
    CompilerOptions opts;
    compile_with(kProg, opts);

    CompilerOptions changed = opts;
    changed.orch.partition.seed = 1234;
    CompileOutput c = compile_with(kProg, changed);
    EXPECT_GT(c.stats.cache.part_misses, 0);
}

TEST(SchedCache, CacheOffMatchesCacheOn)
{
    SchedCache::instance().clear_memory();
    CompilerOptions off;
    off.orch.use_cache = false;
    CompileOutput plain = compile_with(kProg, off);
    EXPECT_EQ(plain.stats.cache.hits() + plain.stats.cache.misses(),
              0);

    CompilerOptions on;
    CompileOutput cold = compile_with(kProg, on);
    CompileOutput warm = compile_with(kProg, on);
    EXPECT_EQ(disasm_program(cold.program),
              disasm_program(plain.program));
    EXPECT_EQ(disasm_program(warm.program),
              disasm_program(plain.program));
}

TEST(SchedCache, ParallelJobsMatchSerial)
{
    SchedCache::instance().clear_memory();
    CompilerOptions serial;
    serial.orch.use_cache = false;
    CompileOutput base = compile_with(kProg, serial);

    for (int jobs : {2, 4}) {
        SchedCache::instance().clear_memory();
        CompilerOptions par;
        par.orch.jobs = jobs;
        CompileOutput c = compile_with(kProg, par);
        EXPECT_EQ(disasm_program(c.program),
                  disasm_program(base.program))
            << "jobs=" << jobs;
    }
}

TEST(SchedCache, DiskTierSurvivesRestart)
{
    std::string dir = fresh_dir("disk");
    SchedCache::instance().clear_memory();
    CompilerOptions opts;
    opts.orch.cache_dir = dir;
    CompileOutput cold = compile_with(kProg, opts);
    EXPECT_GT(cold.stats.cache.bytes_written, 0);

    // Dropping the in-memory tier simulates a fresh process; every
    // entry must come back from disk.
    SchedCache::instance().clear_memory();
    CompileOutput warm = compile_with(kProg, opts);
    EXPECT_EQ(warm.stats.cache.part_misses, 0);
    EXPECT_EQ(warm.stats.cache.sched_misses, 0);
    EXPECT_GT(warm.stats.cache.disk_hits, 0);
    EXPECT_EQ(warm.stats.cache.disk_corrupt, 0);
    EXPECT_EQ(disasm_program(warm.program),
              disasm_program(cold.program));
    fs::remove_all(dir);
}

TEST(SchedCache, CorruptDiskEntriesRecomputedCleanly)
{
    std::string dir = fresh_dir("corrupt");
    SchedCache::instance().clear_memory();
    CompilerOptions opts;
    opts.orch.cache_dir = dir;
    CompileOutput cold = compile_with(kProg, opts);

    // Damage every entry a different way: truncation, checksum
    // flips, garbage, and an empty file.
    int i = 0;
    for (const fs::directory_entry &e : fs::directory_iterator(dir)) {
        std::string path = e.path().string();
        std::ifstream in(path, std::ios::binary);
        std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        in.close();
        switch (i++ % 4) {
        case 0:
            body.resize(body.size() / 2); // truncate
            break;
        case 1:
            body[body.size() / 2] ^= 0x5a; // flip payload byte
            break;
        case 2:
            body = "not a cache entry"; // garbage
            break;
        case 3:
            body.clear(); // empty file
            break;
        }
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out << body;
    }

    SchedCache::instance().clear_memory();
    CompileOutput again = compile_with(kProg, opts);
    EXPECT_GT(again.stats.cache.disk_corrupt, 0);
    EXPECT_EQ(again.stats.cache.disk_hits, 0);
    // Corruption must never change the program, only cost a
    // recompute (and a rewrite of the damaged entries).
    EXPECT_EQ(disasm_program(again.program),
              disasm_program(cold.program));
    EXPECT_GT(again.stats.cache.bytes_written, 0);

    // The rewritten entries are valid again.
    SchedCache::instance().clear_memory();
    CompileOutput fixed = compile_with(kProg, opts);
    EXPECT_GT(fixed.stats.cache.disk_hits, 0);
    EXPECT_EQ(fixed.stats.cache.disk_corrupt, 0);
    fs::remove_all(dir);
}

TEST(SchedCache, VersionStampMismatchDropsEntry)
{
    std::string dir = fresh_dir("version");
    SchedCache::instance().clear_memory();
    CompilerOptions opts;
    opts.orch.cache_dir = dir;
    compile_with(kProg, opts);

    // Rewrite each entry's version header; everything else is
    // intact, but a stamp mismatch alone must force a recompute.
    for (const fs::directory_entry &e : fs::directory_iterator(dir)) {
        std::string path = e.path().string();
        std::ifstream in(path, std::ios::binary);
        std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        in.close();
        size_t at = body.find(kSchedCacheVersion);
        ASSERT_NE(at, std::string::npos);
        body[at + 1] = 'X';
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out << body;
    }

    SchedCache::instance().clear_memory();
    CompileOutput again = compile_with(kProg, opts);
    EXPECT_EQ(again.stats.cache.disk_hits, 0);
    EXPECT_GT(again.stats.cache.disk_corrupt, 0);
    fs::remove_all(dir);
}

TEST(SchedCache, ValidateCacheDirErrors)
{
    EXPECT_THROW(validate_cache_dir(""), FatalError);
    // A path under /proc cannot be created.
    EXPECT_THROW(validate_cache_dir("/proc/rawsc-no-such-dir"),
                 FatalError);
    // A regular file is not a usable directory.
    std::string dir = fresh_dir("file");
    std::string file = dir + "/plain";
    std::ofstream(file) << "x";
    EXPECT_THROW(validate_cache_dir(file), FatalError);
    // A writable directory validates (and is created on demand).
    EXPECT_NO_THROW(validate_cache_dir(dir + "/sub/dir"));
    fs::remove_all(dir);
}

TEST(SchedCache, PgoCandidatesDuplicateFree)
{
    CompilerOptions base;
    base.pgo = true;
    PlacementFeedback fb;
    fb.comm_penalty = {3, 0, 7, 1};
    fb.proc_penalty = {1, 2, 0, 4};
    for (const PlacementFeedback &f :
         {PlacementFeedback{}, fb}) {
        std::vector<CompilerOptions> cands = pgo_candidates(base, f);
        std::set<std::string> seen;
        for (const CompilerOptions &c : cands) {
            EXPECT_FALSE(c.pgo);
            EXPECT_TRUE(
                seen.insert(options_fingerprint(c)).second)
                << "duplicate candidate fingerprint";
        }
        EXPECT_EQ(seen.size(), cands.size());
    }

    // A base that already carries a portfolio knob collapses the
    // matching candidate instead of racing it twice.
    CompilerOptions pre = base;
    pre.orch.partition.crit_weight = 8;
    size_t plain_n = pgo_candidates(base, fb).size();
    size_t pre_n = pgo_candidates(pre, fb).size();
    EXPECT_LT(pre_n, plain_n);
}

TEST(SchedCache, FingerprintTracksEffectiveOptions)
{
    CompilerOptions a;
    CompilerOptions b;
    EXPECT_EQ(options_fingerprint(a), options_fingerprint(b));
    // Driver-only knobs don't change the fingerprint...
    b.verify_ir = !b.verify_ir;
    b.pgo = !b.pgo;
    b.orch.jobs = 8;
    b.orch.use_cache = false;
    b.orch.cache_dir = "/tmp/x";
    EXPECT_EQ(options_fingerprint(a), options_fingerprint(b));
    // ...every program-affecting knob does.
    b.orch.sched.sched_iters = 5;
    EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
    b = a;
    b.orch.partition.seed = 99;
    EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
    b = a;
    b.unroll.small_peel_limit *= 2;
    EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
    b = a;
    b.smart_homes = true;
    EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
    b = a;
    b.orch.sched.modulo = true;
    EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
    b = a;
    b.orch.sched.mii_cap *= 2;
    EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
}

// Concurrent writers, readers and an active vandal on one shared
// --cache-dir: the serve daemon's workers do exactly this.  Torn or
// damaged entries may cost recomputes (counted as disk_corrupt) but
// must never change the compiled program or crash a compile.
TEST(SchedCache, ConcurrentDiskTierStressStaysConsistent)
{
    std::string dir = fresh_dir("stress");
    SchedCache::instance().clear_memory();
    CompilerOptions opts;
    opts.orch.cache_dir = dir;

    // Reference programs, compiled before the chaos starts.
    const std::string want_a = disasm_program(
        compile_with(kProg, opts).program);
    const std::string want_b = disasm_program(
        compile_with(kProgRenamed, opts).program);

    std::atomic<bool> stop{false};
    std::atomic<int> mismatches{0};
    std::atomic<int> throws{0};

    // Vandal: continuously truncate / byte-flip / vaporize entries
    // while compilers read and rewrite them.
    std::thread vandal([&] {
        namespace fs = std::filesystem;
        uint64_t k = 0;
        while (!stop.load()) {
            std::error_code ec;
            for (const auto &ent : fs::directory_iterator(dir, ec)) {
                if (ec)
                    break;
                std::string path = ent.path().string();
                if (path.find(".tmp") != std::string::npos)
                    continue; // never race a live writer's temp
                switch (k++ % 3) {
                case 0:
                    fs::resize_file(path, 7, ec);
                    break;
                case 1: {
                    std::ofstream f(path, std::ios::binary |
                                              std::ios::app);
                    f << "junk";
                    break;
                }
                case 2:
                    fs::remove(path, ec);
                    break;
                }
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    });

    constexpr int kThreads = 4;
    constexpr int kIters = 6;
    std::vector<std::thread> compilers;
    for (int t = 0; t < kThreads; t++)
        compilers.emplace_back([&, t] {
            for (int i = 0; i < kIters; i++) {
                // Drop the memory tier so every iteration actually
                // exercises the (vandalized) disk tier.
                SchedCache::instance().clear_memory();
                const char *src = (t + i) % 2 ? kProgRenamed : kProg;
                const std::string &want =
                    (t + i) % 2 ? want_b : want_a;
                try {
                    CompileOutput out = compile_with(src, opts);
                    if (disasm_program(out.program) != want)
                        mismatches.fetch_add(1);
                } catch (const std::exception &) {
                    throws.fetch_add(1);
                }
            }
        });
    for (auto &t : compilers)
        t.join();
    stop.store(true);
    vandal.join();

    EXPECT_EQ(mismatches.load(), 0)
        << "disk-tier damage must never change compiled output";
    EXPECT_EQ(throws.load(), 0)
        << "disk-tier damage must never escape as an exception";

    // The directory is still a valid cache after the abuse.
    SchedCache::instance().clear_memory();
    CompileOutput fixed = compile_with(kProg, opts);
    EXPECT_EQ(disasm_program(fixed.program), want_a);
    std::filesystem::remove_all(dir);
}

// Orphaned writer temps (a writer killed mid-publish) are swept by
// validate_cache_dir once they are clearly stale; a fresh temp — a
// live concurrent writer — must survive the sweep.
TEST(SchedCache, StaleTempSweepSparesLiveWriters)
{
    namespace fs = std::filesystem;
    std::string dir = fresh_dir("sweep");

    std::string stale = dir + "/deadbeef.rsc.tmp12345.0";
    std::string live = dir + "/deadbeef.rsc.tmp12345.1";
    {
        std::ofstream(stale, std::ios::binary) << "half-written";
        std::ofstream(live, std::ios::binary) << "half-written";
    }
    // Age the stale temp past the 10-minute sweep threshold.
    fs::last_write_time(
        stale, fs::file_time_type::clock::now() -
                   std::chrono::minutes(60));

    validate_cache_dir(dir);
    EXPECT_FALSE(fs::exists(stale))
        << "orphaned temp must be swept";
    EXPECT_TRUE(fs::exists(live))
        << "a recent temp may belong to a live writer";
    fs::remove_all(dir);
}

} // namespace
} // namespace raw
