/**
 * @file
 * Communication and event-scheduler tests: dimension-ordered
 * multicast trees, comm path derivation, and structural validity of
 * block schedules (slot exclusivity, end-to-end contiguous paths,
 * dependence-respecting times).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "analysis/liveness.hpp"
#include "analysis/replication.hpp"
#include "analysis/taskgraph.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "schedule/event_scheduler.hpp"
#include "transform/congruence.hpp"
#include "transform/constfold.hpp"
#include "transform/rename.hpp"

namespace raw {
namespace {

TEST(RouteTree, SingleDestNeighbor)
{
    MachineConfig m = MachineConfig::base(4); // 2x2
    CommPath p;
    p.src_tile = 0;
    p.dests = {{1, true, false}};
    RouteTree t = build_route_tree(m, p);
    ASSERT_EQ(t.hops.size(), 2u);
    EXPECT_EQ(t.hops[0].tile, 0);
    EXPECT_EQ(t.hops[0].in, Dir::kProc);
    EXPECT_EQ(t.hops[0].out_mask,
              1u << static_cast<int>(Dir::kEast));
    EXPECT_EQ(t.hops[1].tile, 1);
    EXPECT_EQ(t.hops[1].in, Dir::kWest);
    EXPECT_TRUE(t.hops[1].out_mask &
                (1u << static_cast<int>(Dir::kProc)));
    ASSERT_EQ(t.proc_recvs.size(), 1u);
    EXPECT_EQ(t.proc_recvs[0], (std::pair<int, int>{1, 1}));
    EXPECT_EQ(t.max_depth, 1);
}

TEST(RouteTree, DimensionOrderXThenY)
{
    MachineConfig m = MachineConfig::base(16); // 4x4
    CommPath p;
    p.src_tile = 0;
    p.dests = {{10, true, false}}; // row 2, col 2
    RouteTree t = build_route_tree(m, p);
    // Path: 0 ->E 1 ->E 2 ->S 6 ->S 10.
    std::map<int, Dir> in_of;
    for (const TreeHop &h : t.hops)
        in_of[h.tile] = h.in;
    EXPECT_TRUE(in_of.count(1));
    EXPECT_TRUE(in_of.count(2));
    EXPECT_TRUE(in_of.count(6));
    EXPECT_TRUE(in_of.count(10));
    EXPECT_EQ(in_of[6], Dir::kNorth);
    EXPECT_EQ(t.max_depth, 4);
}

TEST(RouteTree, MulticastSharesPrefix)
{
    MachineConfig m = MachineConfig::base(16); // 4x4
    CommPath p;
    p.src_tile = 0;
    p.dests = {{2, true, false}, {3, true, false}};
    RouteTree t = build_route_tree(m, p);
    // Tiles 0,1,2,3 each appear once; tile 2 forwards east AND
    // delivers to its processor.
    EXPECT_EQ(t.hops.size(), 4u);
    for (const TreeHop &h : t.hops) {
        if (h.tile == 2) {
            EXPECT_TRUE(h.out_mask &
                        (1u << static_cast<int>(Dir::kProc)));
            EXPECT_TRUE(h.out_mask &
                        (1u << static_cast<int>(Dir::kEast)));
        }
    }
}

TEST(RouteTree, SwitchRegisterDelivery)
{
    MachineConfig m = MachineConfig::base(4);
    CommPath p;
    p.src_tile = 0;
    p.broadcast = true;
    p.dests = {{0, false, true}, {1, true, true}};
    RouteTree t = build_route_tree(m, p);
    for (const TreeHop &h : t.hops) {
        if (h.tile == 0)
            EXPECT_TRUE(h.to_reg);
        if (h.tile == 1) {
            EXPECT_TRUE(h.to_reg);
            EXPECT_TRUE(h.out_mask &
                        (1u << static_cast<int>(Dir::kProc)));
        }
    }
}

// ---------------------------------------------------------------
// Whole-block schedule validity.

struct Ctx
{
    Function fn;
    std::unique_ptr<ReplicationAnalysis> repl;
    std::unique_ptr<VarLiveness> live;
    HomeMap homes;
    std::unique_ptr<TaskGraph> graph;
    Partition part;
    std::vector<CommPath> paths;
    BlockSchedule sched;
    MachineConfig machine;
};

Ctx
schedule(const char *src, int n_tiles, int block = 0)
{
    Ctx c;
    c.fn = lower_program(parse_program(src));
    constfold_function(c.fn);
    rename_function(c.fn);
    c.repl =
        std::make_unique<ReplicationAnalysis>(c.fn, 8, 12, true);
    c.live = std::make_unique<VarLiveness>(c.fn);
    c.homes.n_tiles = n_tiles;
    c.homes.var_home.assign(c.fn.values.size(), 0);
    int next = 0;
    for (ValueId v : c.fn.var_ids())
        if (!c.repl->var_replicated(v)) {
            c.homes.var_home[v] = next;
            next = (next + 1) % n_tiles;
        }
    int64_t off = 0;
    for (const ArrayInfo &a : c.fn.arrays) {
        c.homes.array_base.push_back(off);
        off += a.size();
    }
    c.machine = MachineConfig::base(n_tiles);
    CongruenceMap cong(c.fn, block);
    c.graph = std::make_unique<TaskGraph>(c.fn, block, c.machine, cong,
                                          *c.repl, *c.live, c.homes);
    c.part = partition_taskgraph(*c.graph, c.machine,
                                 PartitionOptions{});
    c.paths = build_comm_paths(*c.graph, c.part, c.machine, -1, {});
    c.sched = schedule_block(*c.graph, c.part, c.machine, c.paths,
                             SchedOptions{});
    return c;
}

const char *kSpread = R"(
float A[8];
float B[8];
A[0] = 1.0; A[1] = 2.0; A[2] = 3.0; A[3] = 4.0;
A[4] = 5.0; A[5] = 6.0; A[6] = 7.0; A[7] = 8.0;
B[0] = A[0] * A[1] + A[2];
B[1] = A[3] * A[4] + A[5];
B[2] = A[6] * A[7] + A[0];
B[3] = A[1] + A[4] + A[7];
)";

TEST(Scheduler, OneItemPerTilePerCycle)
{
    Ctx c = schedule(kSpread, 4);
    for (int t = 0; t < 4; t++) {
        std::set<int64_t> used;
        for (const TileItem &it : c.sched.tiles[t])
            EXPECT_TRUE(used.insert(it.cycle).second)
                << "double-booked processor slot, tile " << t;
    }
}

TEST(Scheduler, SwitchPortExclusivity)
{
    Ctx c = schedule(kSpread, 4);
    for (int t = 0; t < 4; t++) {
        std::map<int64_t, uint8_t> in_used, out_used;
        for (const SwitchItem &it : c.sched.switches[t]) {
            uint8_t in_bit = static_cast<uint8_t>(
                1u << static_cast<int>(it.in));
            EXPECT_EQ(in_used[it.cycle] & in_bit, 0)
                << "input port reused, tile " << t;
            EXPECT_EQ(out_used[it.cycle] & it.out_mask, 0)
                << "output port collision, tile " << t;
            in_used[it.cycle] |= in_bit;
            out_used[it.cycle] |= it.out_mask;
        }
    }
}

TEST(Scheduler, ComputeRespectsDataDependences)
{
    Ctx c = schedule(kSpread, 4);
    // Map node -> issue cycle and finish.
    std::map<int, int64_t> issue;
    for (int t = 0; t < 4; t++)
        for (const TileItem &it : c.sched.tiles[t])
            if (it.kind == TileItem::Kind::kCompute)
                issue[it.node] = it.cycle;
    for (const TGEdge &e : c.graph->edges()) {
        if (e.kind != DepKind::kData)
            continue;
        if (!issue.count(e.from) || !issue.count(e.to))
            continue; // imports / cross-tile pairs
        if (c.part.tile_of[e.from] != c.part.tile_of[e.to])
            continue;
        const TGNode &p = c.graph->nodes()[e.from];
        EXPECT_GE(issue[e.to], issue[e.from] + std::max(1, p.cost))
            << "consumer issued before producer finished";
    }
}

TEST(Scheduler, PathsAreContiguous)
{
    Ctx c = schedule(kSpread, 4);
    // Each send at cycle s implies switch hops at s+1+depth and
    // receives at s+2+depth.
    for (int t = 0; t < 4; t++) {
        for (const TileItem &it : c.sched.tiles[t]) {
            if (it.kind != TileItem::Kind::kSend)
                continue;
            const CommPath &p = c.paths[it.path];
            RouteTree tree = build_route_tree(c.machine, p);
            for (const TreeHop &h : tree.hops) {
                bool found = false;
                for (const SwitchItem &sw : c.sched.switches[h.tile])
                    if (sw.path == it.path &&
                        sw.cycle == it.cycle + 1 + h.depth)
                        found = true;
                EXPECT_TRUE(found) << "missing contiguous hop";
            }
            for (auto &[tile, depth] : tree.proc_recvs) {
                bool found = false;
                for (const TileItem &rv : c.sched.tiles[tile])
                    if (rv.kind == TileItem::Kind::kRecv &&
                        rv.path == it.path &&
                        rv.cycle == it.cycle + 2 + depth)
                        found = true;
                EXPECT_TRUE(found) << "missing contiguous recv";
            }
        }
    }
}

TEST(Scheduler, EveryNodeScheduledExactlyOnce)
{
    Ctx c = schedule(kSpread, 4);
    std::map<int, int> times;
    for (int t = 0; t < 4; t++)
        for (const TileItem &it : c.sched.tiles[t])
            if (it.kind == TileItem::Kind::kCompute) {
                times[it.node]++;
                EXPECT_EQ(c.part.tile_of[it.node], t)
                    << "node on wrong tile";
            }
    int instr_nodes = 0;
    for (const TGNode &nd : c.graph->nodes())
        if (nd.kind == TGKind::kInstr)
            instr_nodes++;
    EXPECT_EQ(static_cast<int>(times.size()), instr_nodes);
    for (auto &[node, count] : times)
        EXPECT_EQ(count, 1);
}

TEST(Scheduler, MakespanCoversEverything)
{
    Ctx c = schedule(kSpread, 4);
    for (int t = 0; t < 4; t++) {
        for (const TileItem &it : c.sched.tiles[t])
            EXPECT_LE(it.cycle, c.sched.makespan);
        for (const SwitchItem &it : c.sched.switches[t])
            EXPECT_LE(it.cycle, c.sched.makespan);
    }
}

TEST(Scheduler, FifoModeStillValid)
{
    Ctx c;
    c.fn = lower_program(parse_program(kSpread));
    constfold_function(c.fn);
    rename_function(c.fn);
    c.repl =
        std::make_unique<ReplicationAnalysis>(c.fn, 8, 12, true);
    c.live = std::make_unique<VarLiveness>(c.fn);
    c.homes.n_tiles = 4;
    c.homes.var_home.assign(c.fn.values.size(), 0);
    int64_t off = 0;
    for (const ArrayInfo &a : c.fn.arrays) {
        c.homes.array_base.push_back(off);
        off += a.size();
    }
    c.machine = MachineConfig::base(4);
    CongruenceMap cong(c.fn, 0);
    c.graph = std::make_unique<TaskGraph>(c.fn, 0, c.machine, cong,
                                          *c.repl, *c.live, c.homes);
    c.part = partition_taskgraph(*c.graph, c.machine,
                                 PartitionOptions{});
    c.paths = build_comm_paths(*c.graph, c.part, c.machine, -1, {});
    SchedOptions so;
    so.fifo_priority = true;
    BlockSchedule s =
        schedule_block(*c.graph, c.part, c.machine, c.paths, so);
    EXPECT_GT(s.makespan, 0);
}

TEST(CommPaths, OnePathPerProducerWithRemoteConsumers)
{
    Ctx c = schedule(kSpread, 4);
    std::set<int> srcs;
    for (const CommPath &p : c.paths) {
        EXPECT_TRUE(srcs.insert(p.src_node).second)
            << "multiple data paths from one node";
        EXPECT_FALSE(p.dests.empty());
        for (const CommDest &d : p.dests)
            EXPECT_NE(d.tile, p.src_tile);
    }
}

TEST(CommPaths, BroadcastCoversAllProcsAndTargetSwitches)
{
    Ctx c = schedule(kSpread, 4);
    // Rebuild with a broadcast from node 0.
    std::vector<bool> sw(4, true);
    std::vector<CommPath> paths =
        build_comm_paths(*c.graph, c.part, c.machine, 0, sw);
    const CommPath *bc = nullptr;
    for (const CommPath &p : paths)
        if (p.broadcast)
            bc = &p;
    ASSERT_NE(bc, nullptr);
    int procs = 0, regs = 0;
    for (const CommDest &d : bc->dests) {
        if (d.to_proc)
            procs++;
        if (d.to_sw_reg)
            regs++;
    }
    EXPECT_EQ(procs, 3) << "every processor except the source";
    EXPECT_EQ(regs, 4) << "every switch register";
}

} // namespace
} // namespace raw
