/**
 * @file
 * End-to-end pipeline tests: rawc source -> RAWCC -> simulator, with
 * results verified bit-exactly against the sequential baseline.
 */

#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace raw {
namespace {

/** Trivial straight-line program. */
TEST(EndToEnd, ScalarArithmetic)
{
    const char *src = R"(
int a = 3;
int b = 4;
int c;
c = a * b + 2;
print(c);
)";
    RunResult base = run_baseline(src);
    EXPECT_EQ(base.prints, "14\n");
    for (int n : {1, 2, 4}) {
        RunResult par = run_rawcc(src, MachineConfig::base(n));
        EXPECT_EQ(par.prints, "14\n") << "n=" << n;
    }
}

TEST(EndToEnd, FloatArithmetic)
{
    const char *src = R"(
float x = 1.5;
float y = 2.25;
float z;
z = x * y + sqrt(4.0);
print(z);
)";
    RunResult base = run_baseline(src);
    RunResult par = run_rawcc(src, MachineConfig::base(4));
    EXPECT_EQ(base.prints, par.prints);
    EXPECT_EQ(base.prints, "5.375\n");
}

/** The paper's Figure 6 example program. */
TEST(EndToEnd, Figure6Example)
{
    const char *src = R"(
int a = 5;
int b = 7;
int x; int y; int z;
y = a + b;
z = a * a;
x = y * a * 5;
y = y * b * 6;
print(x);
print(y);
print(z);
)";
    RunResult base = run_baseline(src);
    EXPECT_EQ(base.prints, "300\n504\n25\n");
    for (int n : {1, 2, 4, 8}) {
        RunResult par = run_rawcc(src, MachineConfig::base(n));
        EXPECT_EQ(par.prints, base.prints) << "n=" << n;
    }
}

TEST(EndToEnd, IfElse)
{
    const char *src = R"(
int a = 10;
int r;
if (a > 5) {
  r = 1;
} else {
  r = 2;
}
print(r);
int b;
b = a - 20;
if (b > 0) {
  r = 3;
} else {
  r = 4;
}
print(r);
)";
    RunResult base = run_baseline(src);
    EXPECT_EQ(base.prints, "1\n4\n");
    for (int n : {1, 2, 4}) {
        RunResult par = run_rawcc(src, MachineConfig::base(n));
        EXPECT_EQ(par.prints, base.prints) << "n=" << n;
    }
}

TEST(EndToEnd, WhileLoop)
{
    const char *src = R"(
int i = 0;
int s = 0;
while (i < 10) {
  s = s + i * i;
  i = i + 1;
}
print(s);
)";
    RunResult base = run_baseline(src);
    EXPECT_EQ(base.prints, "285\n");
    for (int n : {1, 4}) {
        RunResult par = run_rawcc(src, MachineConfig::base(n));
        EXPECT_EQ(par.prints, base.prints) << "n=" << n;
    }
}

TEST(EndToEnd, ArraySum)
{
    const char *src = R"(
int A[64];
int i;
for (i = 0; i < 64; i = i + 1) {
  A[i] = i * 3 + 1;
}
int s = 0;
for (i = 0; i < 64; i = i + 1) {
  s = s + A[i];
}
print(s);
)";
    RunResult base = run_baseline(src, "A");
    EXPECT_EQ(base.prints, "6112\n");
    for (int n : {1, 2, 4, 8, 16, 32}) {
        RunResult par = run_rawcc(src, MachineConfig::base(n), "A");
        EXPECT_EQ(par.prints, base.prints) << "n=" << n;
        EXPECT_EQ(par.check_words, base.check_words) << "n=" << n;
    }
}

TEST(EndToEnd, TwoDimStencil)
{
    const char *src = R"(
float A[8][8];
float B[8][8];
int i; int j;
for (i = 0; i < 8; i = i + 1) {
  for (j = 0; j < 8; j = j + 1) {
    A[i][j] = (float)(i * 8 + j);
    B[i][j] = 0.0;
  }
}
for (i = 1; i < 7; i = i + 1) {
  for (j = 1; j < 7; j = j + 1) {
    B[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1];
  }
}
print(B[3][3]);
print(B[6][6]);
)";
    RunResult base = run_baseline(src, "B");
    for (int n : {1, 4, 16}) {
        RunResult par = run_rawcc(src, MachineConfig::base(n), "B");
        EXPECT_EQ(par.prints, base.prints) << "n=" << n;
        EXPECT_EQ(par.check_words, base.check_words) << "n=" << n;
    }
}

/** Non-constant bounds force the dynamic-network fallback. */
TEST(EndToEnd, DynamicReferences)
{
    const char *src = R"(
int A[40];
int n = 0;
int i;
while (n < 3) {
  n = n + 1;
}
// n is now 3, but not a compile-time constant.
for (i = 0; i < 37; i = i + 1) {
  A[i + n] = i * 2;
}
int s = 0;
for (i = 3; i < 40; i = i + 1) {
  s = s + A[i];
}
print(s);
)";
    RunResult base = run_baseline(src, "A");
    for (int n : {2, 4}) {
        RunResult par = run_rawcc(src, MachineConfig::base(n), "A");
        EXPECT_EQ(par.prints, base.prints) << "n=" << n;
        EXPECT_EQ(par.check_words, base.check_words) << "n=" << n;
        EXPECT_GT(par.stats.dynamic_refs, 0);
    }
}

TEST(EndToEnd, SpeedupOnParallelCode)
{
    // A wide, independent computation should speed up with tiles.
    const char *src = R"(
float A[32];
float B[32];
int i;
for (i = 0; i < 32; i = i + 1) {
  A[i] = (float)(i + 1);
}
for (i = 0; i < 32; i = i + 1) {
  B[i] = A[i] * A[i] + A[i] * 3.0 + sqrt(A[i]);
}
print(B[31]);
)";
    RunResult base = run_baseline(src, "B");
    RunResult par16 = run_rawcc(src, MachineConfig::base(16), "B");
    EXPECT_EQ(par16.check_words, base.check_words);
    double speedup = static_cast<double>(base.cycles) /
                     static_cast<double>(par16.cycles);
    EXPECT_GT(speedup, 1.5) << "base=" << base.cycles
                            << " par=" << par16.cycles;
}

} // namespace
} // namespace raw
