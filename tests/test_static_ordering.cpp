/**
 * @file
 * Appendix A property tests: the static ordering property.
 *
 * "The result produced by a static schedule is independent of the
 *  specific timing of the execution ... whether a schedule deadlocks
 *  is a timing independent property as well."
 *
 * We compile a batch of randomly generated programs plus the real
 * benchmarks, then execute each schedule under many different timing
 * perturbations (random extra memory latency, different seeds and
 * rates).  Every run must terminate (no deadlock) and produce
 * bit-identical memory and print results.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/harness.hpp"

namespace raw {
namespace {

/** Deterministic random rawc program generator. */
std::string
random_program(uint64_t seed)
{
    uint64_t s = seed * 6364136223846793005ULL + 1;
    auto rnd = [&](int m) {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return static_cast<int>(s % static_cast<uint64_t>(m));
    };
    std::ostringstream os;
    os << "int A[32];\nfloat F[16];\nint i; int t;\n";
    os << "for (i = 0; i < 32; i = i + 1) { A[i] = (i * "
       << (1 + rnd(7)) << ") % " << (3 + rnd(9)) << "; }\n";
    os << "for (i = 0; i < 16; i = i + 1) { F[i] = (float)A[i] * 0."
       << (1 + rnd(8)) << "; }\n";
    int n_stmts = 4 + rnd(6);
    for (int k = 0; k < n_stmts; k++) {
        switch (rnd(4)) {
          case 0:
            os << "for (i = 1; i < " << (8 + rnd(20))
               << "; i = i + 1) { A[i] = A[i] + A[i-1] * "
               << (1 + rnd(3)) << "; }\n";
            break;
          case 1:
            os << "for (i = 0; i < 15; i = i + 1) { F[i] = F[i] + "
                  "F[i+1] * 0.5; }\n";
            break;
          case 2:
            os << "if (A[" << rnd(32) << "] > " << rnd(5)
               << ") { A[" << rnd(32) << "] = " << rnd(90)
               << "; } else { A[" << rnd(32) << "] = A[" << rnd(32)
               << "]; }\n";
            break;
          default:
            os << "t = A[" << rnd(32) << "];\n"
               << "while (t > 2) { t = t / 2; }\n"
               << "A[" << rnd(32) << "] = t;\n";
            break;
        }
    }
    os << "int cs;\ncs = 0;\n"
       << "for (i = 0; i < 32; i = i + 1) { cs = cs + A[i]; }\n"
       << "print(cs);\nprint(F[7]);\n";
    return os.str();
}

/** Run one compiled program under several timings; all must agree. */
void
expect_timing_independent(const CompiledProgram &prog,
                          const std::string &check_array,
                          const std::string &label)
{
    std::vector<uint32_t> ref_words;
    std::string ref_prints;
    int64_t ref_cycles = 0;
    bool first = true;
    bool some_timing_differs = false;
    for (FaultConfig f :
         {FaultConfig{0.0, 20, 0}, FaultConfig{0.05, 7, 1},
          FaultConfig{0.3, 23, 2}, FaultConfig{0.3, 23, 77},
          FaultConfig{0.9, 3, 5}}) {
        Simulator sim(prog, f);
        SimResult r;
        ASSERT_NO_THROW(r = sim.run()) << label << " deadlocked";
        std::vector<uint32_t> words;
        if (!check_array.empty() &&
            prog.find_array(check_array) >= 0)
            words = sim.read_array(check_array);
        if (first) {
            ref_words = words;
            ref_prints = r.print_text();
            ref_cycles = r.cycles;
            first = false;
        } else {
            EXPECT_EQ(words, ref_words) << label;
            EXPECT_EQ(r.print_text(), ref_prints) << label;
            if (r.cycles != ref_cycles)
                some_timing_differs = true;
        }
    }
    EXPECT_TRUE(some_timing_differs)
        << label << ": perturbations should change timing";
}

class RandomPrograms : public ::testing::TestWithParam<int>
{};

TEST_P(RandomPrograms, TimingIndependent)
{
    std::string src = random_program(GetParam());
    for (int n : {2, 4, 8}) {
        CompileOutput out = compile_source(
            src, MachineConfig::base(n), CompilerOptions{});
        expect_timing_independent(out.program, "A",
                                  "random#" +
                                      std::to_string(GetParam()) +
                                      "/n" + std::to_string(n));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomPrograms,
                         ::testing::Range(1, 13));

TEST(StaticOrdering, BenchmarksUnderFaults)
{
    for (const char *name : {"jacobi", "life", "mxm"}) {
        const BenchmarkProgram &prog = benchmark(name);
        CompileOutput out = compile_source(
            prog.source, MachineConfig::base(16), CompilerOptions{});
        expect_timing_independent(out.program, prog.check_array,
                                  name);
    }
}

TEST(StaticOrdering, RandomProgramsMatchBaseline)
{
    // Beyond timing independence: the parallel result equals the
    // sequential result for the same random programs.
    for (int seed : {21, 22, 23, 24}) {
        std::string src = random_program(seed);
        RunResult base = run_baseline(src, "A");
        for (int n : {3, 4, 8}) {
            RunResult par =
                run_rawcc(src, MachineConfig::base(n), "A");
            EXPECT_EQ(par.check_words, base.check_words)
                << "seed " << seed << " n " << n;
            EXPECT_EQ(par.prints, base.prints)
                << "seed " << seed << " n " << n;
        }
    }
}

} // namespace
} // namespace raw
